// Enginecompare: the paper's all-pairs attack vs the Bernstein batch-GCD
// baseline (the algorithm behind fastgcd) vs the hybrid tiled
// product-filter engine, on the same weak corpus. All engines find
// exactly the same broken keys; their costs scale differently -
// all-pairs is O(m^2) trivially-parallel work with the paper's fast
// per-pair kernel, batch GCD is O(m log^2 m) big-multiplication work,
// and the hybrid spends one subproduct GCD per row and tile to skip
// the provably coprime bulk of the pair triangle.
//
//	go run ./examples/enginecompare
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"bulkgcd"
)

func main() {
	log.SetFlags(0)
	ctx := context.Background()

	moduli, planted, err := bulkgcd.GenerateWeakCorpus(96, 512, 4, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("corpus: %d RSA-512 moduli, %d planted weak pairs\n\n", len(moduli), len(planted))

	type engine struct {
		name string
		opts []bulkgcd.Option
	}
	engines := []engine{
		{"all-pairs Approximate (this paper)", []bulkgcd.Option{bulkgcd.WithAlgorithm(bulkgcd.Approximate)}},
		{"all-pairs Binary (baseline C)", []bulkgcd.Option{bulkgcd.WithAlgorithm(bulkgcd.Binary)}},
		{"batch GCD (Bernstein)", []bulkgcd.Option{bulkgcd.WithEngine(bulkgcd.EngineBatch)}},
		{"hybrid product filter (tile 16)", []bulkgcd.Option{bulkgcd.WithEngine(bulkgcd.EngineHybrid), bulkgcd.WithTileSize(16)}},
	}
	var reference []int
	for _, e := range engines {
		start := time.Now()
		rep, err := bulkgcd.New(e.opts...).Run(ctx, moduli)
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)
		var idx []int
		for _, bk := range rep.Broken {
			idx = append(idx, bk.Index)
		}
		fmt.Printf("%-36s %8v  broke keys %v\n", e.name, elapsed.Round(time.Millisecond), idx)
		if reference == nil {
			reference = idx
			continue
		}
		if len(idx) != len(reference) {
			log.Fatalf("engines disagree: %v vs %v", idx, reference)
		}
		for i := range idx {
			if idx[i] != reference[i] {
				log.Fatalf("engines disagree at %d", i)
			}
		}
	}
	fmt.Printf("\nall engines agree on the %d broken keys\n", len(reference))
}
