// Weakkeys: the complete break, end to end. A "web crawl" of public keys
// contains two keys generated with bad randomness (shared prime). A secret
// message is encrypted to one of them; the attack factors the modulus,
// reconstructs the private key and decrypts the message - the full threat
// model of the paper's introduction.
//
//	go run ./examples/weakkeys
package main

import (
	"fmt"
	"log"
	"math/big"

	"bulkgcd"
	"bulkgcd/internal/rsakey"
)

func main() {
	log.SetFlags(0)

	// A corpus of 32 RSA-512 keys, one weak pair among them.
	moduli, planted, err := bulkgcd.GenerateWeakCorpus(32, 512, 1, 99)
	if err != nil {
		log.Fatal(err)
	}
	victim := planted[0].I
	fmt.Printf("collected %d public keys; key %d secretly shares a prime with key %d\n",
		len(moduli), planted[0].I, planted[0].J)

	// Encrypt a message to the victim's public key (n, e=65537).
	msg := new(big.Int).SetBytes([]byte("attack at dawn"))
	ct := rsakey.Encrypt(moduli[victim], rsakey.DefaultExponent, msg)
	fmt.Printf("intercepted ciphertext to key %d: %s...\n", victim, ct.Text(16)[:24])

	// Run the attack over the public corpus only.
	report, err := bulkgcd.FindSharedPrimes(moduli, &bulkgcd.AttackOptions{
		Algorithm: bulkgcd.Approximate,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("attack: %d pair GCDs computed, %d keys broken\n",
		report.Pairs, len(report.Broken))

	for _, bk := range report.Broken {
		if bk.Index != victim {
			continue
		}
		if bk.D == nil {
			log.Fatal("factored the modulus but no private exponent")
		}
		pt := rsakey.Decrypt(bk.N, bk.D, ct)
		fmt.Printf("recovered private key for key %d\n", bk.Index)
		fmt.Printf("decrypted message: %q\n", string(pt.Bytes()))
		if string(pt.Bytes()) != "attack at dawn" {
			log.Fatal("decryption mismatch")
		}
		return
	}
	log.Fatal("victim key not broken")
}
