// Ummdemo: bulk execution on the simulated GPU. Shows the three memory
// phenomena Section VI builds on: (1) Theorem 1 - oblivious bulk execution
// in column-wise layout costs exactly (p/w + l - 1) * t; (2) row-wise
// layout destroys coalescing; (3) the real bulk Approximate-GCD execution
// is semi-oblivious: nearly coalesced, within a small factor of the
// oblivious bound.
//
//	go run ./examples/ummdemo
package main

import (
	"fmt"
	"log"

	"bulkgcd/internal/experiments"
	"bulkgcd/internal/gcd"
	"bulkgcd/internal/umm"
)

func main() {
	log.SetFlags(0)
	const (
		width   = 32  // warp width w
		latency = 200 // memory latency l
		threads = 128 // bulk width p
	)

	// (1) + (2): layout experiment.
	lay, err := experiments.RunLayout(width, latency, threads, 64, 32, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("UMM w=%d l=%d, p=%d threads, 64 oblivious memory steps\n", width, latency, threads)
	fmt.Printf("  column-wise: %6d units (Theorem 1 predicts %d), coalesced %.0f%%\n",
		lay.ColumnTime, lay.TheoremTime, 100*lay.ColumnCoalesced)
	fmt.Printf("  row-wise:    %6d units, coalesced %.0f%%  (%.1fx slower)\n",
		lay.RowTime, 100*lay.RowCoalesced, float64(lay.RowTime)/float64(lay.ColumnTime))

	// (3): the real bulk GCD, one 512-bit pair per thread.
	m, err := umm.New(width, latency)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbulk GCD of %d random 512-bit pairs (early-terminate):\n", threads)
	for _, alg := range []gcd.Algorithm{gcd.Binary, gcd.FastBinary, gcd.Approximate} {
		res, err := experiments.RunSemiOblivious(m, alg, 512, threads, true, 2)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  (%s) %-12s %9.0f units/GCD, coalesced %4.1f%%, %.2fx oblivious bound\n",
			alg.Letter(), alg, res.TimePerGCD, 100*res.CoalescedFrac,
			res.TimePerGCD/res.ObliviousLower)
	}
	fmt.Println("\nApproximate wins on the simulated GPU exactly as in Table V:")
	fmt.Println("fewer iterations than (C)/(D) at the same per-iteration memory cost.")
}
