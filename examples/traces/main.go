// Traces: reproduce the paper's worked examples, Tables I-III, step for
// step. All five Euclidean algorithms run on the paper's inputs
// X = 1111,1110,1101,1100,1011 (1043915), Y = 1011,1011,1011,1011,1011
// (768955) with 4-bit words, printing each iteration in the paper's
// binary-grouped notation.
//
//	go run ./examples/traces
package main

import (
	"fmt"
	"log"
	"math/big"

	"bulkgcd/internal/refgcd"
	"bulkgcd/internal/tabfmt"
)

func main() {
	log.SetFlags(0)
	x := big.NewInt(1043915)
	y := big.NewInt(768955)
	opt := refgcd.Options{WordBits: 4, RecordSteps: true}

	fmt.Printf("inputs: X = %s, Y = %s\n\n",
		tabfmt.BinaryDecimal(x, 4), tabfmt.BinaryDecimal(y, 4))

	// Table I: Binary vs Fast Binary.
	fmt.Println("Table I - Binary Euclidean vs Fast Binary Euclidean")
	binary := run(refgcd.Binary, x, y, opt)
	fastBin := run(refgcd.FastBinary, x, y, opt)
	t1 := tabfmt.NewTable("#", "Binary X", "Binary Y", "FastBinary X", "FastBinary Y")
	for i := 0; i < len(binary.Steps) || i < len(fastBin.Steps); i++ {
		row := []string{fmt.Sprintf("%d", i+1), "", "", "", ""}
		if i < len(binary.Steps) {
			row[1] = tabfmt.Binary(binary.Steps[i].X, 4)
			row[2] = tabfmt.Binary(binary.Steps[i].Y, 4)
		}
		if i < len(fastBin.Steps) {
			row[3] = tabfmt.Binary(fastBin.Steps[i].X, 4)
			row[4] = tabfmt.Binary(fastBin.Steps[i].Y, 4)
		}
		t1.AddRowF(row...)
	}
	fmt.Print(t1.String())
	fmt.Printf("iterations: Binary %d (paper: 24), FastBinary %d (paper: 16)\n\n",
		binary.Iterations, fastBin.Iterations)

	// Table II: Original vs Fast Euclidean (with quotients).
	fmt.Println("Table II - Original vs Fast Euclidean")
	orig := run(refgcd.Original, x, y, opt)
	fast := run(refgcd.Fast, x, y, opt)
	t2 := tabfmt.NewTable("#", "Original X", "Q", "Fast X", "Q")
	for i := 0; i < len(orig.Steps) || i < len(fast.Steps); i++ {
		row := []string{fmt.Sprintf("%d", i+1), "", "", "", ""}
		if i < len(orig.Steps) {
			row[1] = tabfmt.Binary(orig.Steps[i].X, 4)
			row[2] = orig.Steps[i].Q.String()
		}
		if i < len(fast.Steps) {
			row[3] = tabfmt.Binary(fast.Steps[i].X, 4)
			row[4] = fast.Steps[i].Q.String()
		}
		t2.AddRowF(row...)
	}
	fmt.Print(t2.String())
	fmt.Printf("iterations: Original %d (paper: 11), Fast %d (paper: 8)\n\n",
		orig.Iterations, fast.Iterations)

	// Table III: Approximate Euclidean with (alpha, beta) and cases.
	fmt.Println("Table III - Approximate Euclidean (d = 4, D = 16)")
	approx := run(refgcd.Approximate, x, y, opt)
	t3 := tabfmt.NewTable("#", "X", "Y", "case", "(alpha,beta)")
	for i, s := range approx.Steps {
		t3.AddRowF(
			fmt.Sprintf("%d", i+1),
			tabfmt.Binary(s.X, 4),
			tabfmt.Binary(s.Y, 4),
			s.Case,
			fmt.Sprintf("(%s,%d)", s.Alpha, s.Beta),
		)
	}
	fmt.Print(t3.String())
	fmt.Printf("iterations: Approximate %d (paper: 9)\n\n", approx.Iterations)

	fmt.Printf("all algorithms output gcd = %s (paper: 0101 (5))\n",
		tabfmt.BinaryDecimal(approx.GCD, 4))
}

func run(alg refgcd.Algorithm, x, y *big.Int, opt refgcd.Options) *refgcd.Result {
	res, err := refgcd.Run(alg, x, y, opt)
	if err != nil {
		log.Fatal(err)
	}
	return res
}
