// Quickstart: generate a small corpus with planted weak keys and break
// them with the public API, in under a second.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"math/big"

	"bulkgcd"
)

func main() {
	log.SetFlags(0)

	// 64 RSA-512 moduli, three pairs of which share a prime - the
	// bad-randomness situation the paper attacks.
	moduli, planted, err := bulkgcd.GenerateWeakCorpus(64, 512, 3, 2015)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("corpus: %d moduli of %d bits, %d weak pairs planted\n",
		len(moduli), moduli[0].BitLen(), len(planted))

	// The attack: all-pairs GCD with the Approximate Euclidean algorithm
	// (the defaults; every knob is an Option on New).
	report, err := bulkgcd.New().Run(context.Background(), moduli)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("computed %d pair GCDs (%d loop iterations total)\n",
		report.Pairs, report.Stats.Iterations)

	for _, bk := range report.Broken {
		fmt.Printf("\nbroken key %d (shares a prime with key %d)\n", bk.Index, bk.FoundWith)
		fmt.Printf("  p = %s...\n", shortHex(bk.P))
		fmt.Printf("  q = %s...\n", shortHex(bk.Q))
		fmt.Printf("  factorization verified: %v\n",
			new(big.Int).Mul(bk.P, bk.Q).Cmp(bk.N) == 0)
		fmt.Printf("  private exponent recovered: %v\n", bk.D != nil)
	}

	// Cross-check against the generator's ground truth.
	want := map[int]bool{}
	for _, pp := range planted {
		want[pp.I], want[pp.J] = true, true
	}
	ok := len(report.Broken) == len(want)
	for _, bk := range report.Broken {
		ok = ok && want[bk.Index]
	}
	fmt.Printf("\nground truth match: %v (%d/%d weak keys broken)\n",
		ok, len(report.Broken), len(want))
}

func shortHex(v *big.Int) string {
	s := v.Text(16)
	if len(s) > 16 {
		s = s[:16]
	}
	return s
}
