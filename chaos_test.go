package bulkgcd

// Chaos suite: deterministic fault-injection campaigns over the full
// attack stack. Each round builds a weak corpus, computes an oracle with
// an uninterrupted run, then kills, panics, or resumes a journaled run at
// seeded points and asserts the surviving findings match the oracle.
// Unlike the soak tests, these stay enabled under -short (with reduced
// rounds) so the CI chaos job covers them under the race detector.

import (
	"context"
	"math/rand"
	"path/filepath"
	"testing"

	"bulkgcd/internal/attack"
	"bulkgcd/internal/checkpoint"
	"bulkgcd/internal/faultinject"
	"bulkgcd/internal/mpnat"
)

func chaosRounds(full int) int {
	if testing.Short() {
		if full > 2 {
			return 2
		}
	}
	return full
}

func chaosCorpus(t *testing.T, r *rand.Rand, seed int64) ([]*mpnat.Nat, []PlantedPair) {
	t.Helper()
	count := 10 + r.Intn(10)
	weak := 1 + r.Intn(3)
	moduli, planted, err := GenerateWeakCorpus(count, 128, weak, seed)
	if err != nil {
		t.Fatal(err)
	}
	nats := make([]*mpnat.Nat, len(moduli))
	for i, m := range moduli {
		nats[i] = mpnat.FromBig(m)
	}
	return nats, planted
}

func sameBroken(t *testing.T, label string, got, want []attack.BrokenKey) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: broke %d keys, oracle broke %d", label, len(got), len(want))
	}
	for i := range want {
		g, w := got[i], want[i]
		if g.Index != w.Index || g.P.Cmp(w.P) != 0 || g.Q.Cmp(w.Q) != 0 {
			t.Fatalf("%s: broken key %d differs from oracle", label, i)
		}
		if (g.D == nil) != (w.D == nil) || (g.D != nil && g.D.Cmp(w.D) != 0) {
			t.Fatalf("%s: key %d private exponent differs from oracle", label, i)
		}
	}
}

// TestChaosKillResume kills journaled runs at randomized pair ordinals —
// including repeated kills across successive resumes — and asserts the
// eventually-completed run reproduces the uninterrupted oracle exactly.
func TestChaosKillResume(t *testing.T) {
	r := rand.New(rand.NewSource(2001))
	for round := 0; round < chaosRounds(8); round++ {
		nats, _ := chaosCorpus(t, r, int64(5000+round))
		oracle, err := attack.Run(nats, attack.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		total := int64(len(nats)*(len(nats)-1)) / 2

		path := filepath.Join(t.TempDir(), "chaos.jsonl")
		w, err := checkpoint.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		killAt := r.Int63n(total)
		var rep *attack.Report
		for attempt := 0; ; attempt++ {
			if attempt > 50 {
				t.Fatalf("round %d: run never completed", round)
			}
			ctx, cancel := context.WithCancel(context.Background())
			plan := faultinject.NewPlan()
			plan.CancelAtPair = killAt
			plan.Cancel = cancel
			opt := attack.DefaultOptions()
			opt.Workers = 1 + r.Intn(4)
			opt.Checkpoint = w
			opt.Fault = plan.Hook()
			if attempt > 0 {
				st, err := checkpoint.Load(path)
				if err != nil {
					t.Fatal(err)
				}
				opt.Resume = st
			}
			rep, err = attack.RunContext(ctx, nats, opt)
			cancel()
			if err != nil {
				t.Fatalf("round %d attempt %d: %v", round, attempt, err)
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			if !rep.Canceled {
				break
			}
			// Partial findings must already be a subset of the oracle.
			seen := map[int]bool{}
			for _, bk := range oracle.Broken {
				seen[bk.Index] = true
			}
			for _, bk := range rep.Broken {
				if !seen[bk.Index] {
					t.Fatalf("round %d: partial run broke key %d the oracle did not", round, bk.Index)
				}
			}
			// Kill the next attempt a bit later, so runs make progress and
			// eventually finish.
			killAt += 1 + r.Int63n(total/2+1)
			w, err = checkpoint.OpenAppend(path)
			if err != nil {
				t.Fatal(err)
			}
		}
		sameBroken(t, "kill/resume", rep.Broken, oracle.Broken)
	}
}

// TestChaosInjectedPanics panics a worker at a seeded pair whose moduli
// share nothing; the pair must be quarantined as a BadPair and every
// oracle finding must survive.
func TestChaosInjectedPanics(t *testing.T) {
	r := rand.New(rand.NewSource(2002))
	for round := 0; round < chaosRounds(6); round++ {
		nats, planted := chaosCorpus(t, r, int64(6000+round))
		oracle, err := attack.Run(nats, attack.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		weak := map[int]bool{}
		for _, pp := range planted {
			weak[pp.I] = true
			weak[pp.J] = true
		}
		// Target a pair of strong keys: its GCD is 1, so quarantining it
		// provably loses no findings.
		var target [2]int
		for {
			i, j := r.Intn(len(nats)), r.Intn(len(nats))
			if i != j && !weak[i] && !weak[j] {
				if i > j {
					i, j = j, i
				}
				target = [2]int{i, j}
				break
			}
		}
		plan := faultinject.NewPlan()
		plan.PanicAtIJ = &target
		opt := attack.DefaultOptions()
		opt.Workers = 1 + r.Intn(4)
		opt.Fault = plan.Hook()
		rep, err := attack.Run(nats, opt)
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.BadPairs) != 1 || rep.BadPairs[0].I != target[0] || rep.BadPairs[0].J != target[1] {
			t.Fatalf("round %d: BadPairs = %+v, want exactly (%d,%d)", round, rep.BadPairs, target[0], target[1])
		}
		sameBroken(t, "panic quarantine", rep.Broken, oracle.Broken)
	}
}

// TestChaosIncrementalKillResume is the kill/resume campaign for the
// incremental engine: an old corpus meets a batch of new moduli, the
// stripe run is killed and resumed, and the outcome must match an
// uninterrupted incremental run.
func TestChaosIncrementalKillResume(t *testing.T) {
	r := rand.New(rand.NewSource(2003))
	for round := 0; round < chaosRounds(6); round++ {
		nats, _ := chaosCorpus(t, r, int64(7000+round))
		split := len(nats)/2 + r.Intn(len(nats)/4+1)
		old, newer := nats[:split], nats[split:]
		if len(newer) == 0 {
			old, newer = nats[:len(nats)-2], nats[len(nats)-2:]
		}
		oracle, err := attack.RunIncremental(old, newer, attack.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}

		path := filepath.Join(t.TempDir(), "inc.jsonl")
		w, err := checkpoint.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		plan := faultinject.NewPlan()
		plan.CancelAtPair = r.Int63n(int64(len(newer)) + 1)
		plan.Cancel = cancel
		opt := attack.DefaultOptions()
		opt.Workers = 1 + r.Intn(3)
		opt.Checkpoint = w
		opt.Fault = plan.Hook()
		partial, err := attack.RunIncrementalContext(ctx, old, newer, opt)
		cancel()
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}

		final := partial
		if partial.Canceled {
			st, err := checkpoint.Load(path)
			if err != nil {
				t.Fatal(err)
			}
			w2, err := checkpoint.OpenAppend(path)
			if err != nil {
				t.Fatal(err)
			}
			ropt := attack.DefaultOptions()
			ropt.Resume = st
			ropt.Checkpoint = w2
			final, err = attack.RunIncremental(old, newer, ropt)
			if err != nil {
				t.Fatal(err)
			}
			if err := w2.Close(); err != nil {
				t.Fatal(err)
			}
			if final.Canceled {
				t.Fatalf("round %d: resumed run still canceled", round)
			}
		}
		sameBroken(t, "incremental kill/resume", final.Broken, oracle.Broken)
	}
}

// TestChaosBigIntOracle cross-checks one chaos round against the public
// big.Int API, tying the internal campaigns back to the documented
// surface: FindSharedPrimesContext with a dead context reports Canceled
// with a subset of the full findings.
func TestChaosBigIntOracle(t *testing.T) {
	moduli, _, err := GenerateWeakCorpus(12, 128, 2, 8001)
	if err != nil {
		t.Fatal(err)
	}
	full, err := FindSharedPrimes(moduli, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := FindSharedPrimesContext(ctx, moduli, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Canceled {
		t.Fatal("dead context did not report Canceled")
	}
	if len(rep.Broken) != 0 {
		t.Fatalf("pre-canceled run broke %d keys", len(rep.Broken))
	}
	if len(full.Broken) != 4 {
		t.Fatalf("oracle broke %d keys, want 4", len(full.Broken))
	}
}
