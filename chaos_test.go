package bulkgcd

// Chaos suite: deterministic fault-injection campaigns over the full
// attack stack. Each round builds a weak corpus, computes an oracle with
// an uninterrupted run, then kills, panics, or resumes a journaled run at
// seeded points and asserts the surviving findings match the oracle.
// Unlike the soak tests, these stay enabled under -short (with reduced
// rounds) so the CI chaos job covers them under the race detector.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"bulkgcd/internal/attack"
	"bulkgcd/internal/bulk"
	"bulkgcd/internal/checkpoint"
	"bulkgcd/internal/engine"
	"bulkgcd/internal/faultinject"
	"bulkgcd/internal/fleet"
	"bulkgcd/internal/mpnat"
	"bulkgcd/internal/obs"
)

func chaosRounds(full int) int {
	if testing.Short() {
		if full > 2 {
			return 2
		}
	}
	return full
}

func chaosCorpus(t *testing.T, r *rand.Rand, seed int64) ([]*mpnat.Nat, []PlantedPair) {
	t.Helper()
	count := 10 + r.Intn(10)
	weak := 1 + r.Intn(3)
	moduli, planted, err := GenerateWeakCorpus(count, 128, weak, seed)
	if err != nil {
		t.Fatal(err)
	}
	nats := make([]*mpnat.Nat, len(moduli))
	for i, m := range moduli {
		nats[i] = mpnat.FromBig(m)
	}
	return nats, planted
}

func sameBroken(t *testing.T, label string, got, want []attack.BrokenKey) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: broke %d keys, oracle broke %d", label, len(got), len(want))
	}
	for i := range want {
		g, w := got[i], want[i]
		if g.Index != w.Index || g.P.Cmp(w.P) != 0 || g.Q.Cmp(w.Q) != 0 {
			t.Fatalf("%s: broken key %d differs from oracle", label, i)
		}
		if (g.D == nil) != (w.D == nil) || (g.D != nil && g.D.Cmp(w.D) != 0) {
			t.Fatalf("%s: key %d private exponent differs from oracle", label, i)
		}
	}
}

// TestChaosKillResume kills journaled runs at randomized pair ordinals —
// including repeated kills across successive resumes — and asserts the
// eventually-completed run reproduces the uninterrupted oracle exactly.
func TestChaosKillResume(t *testing.T) {
	r := rand.New(rand.NewSource(2001))
	for round := 0; round < chaosRounds(8); round++ {
		nats, _ := chaosCorpus(t, r, int64(5000+round))
		oracle, err := attack.Run(nats, attack.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		total := int64(len(nats)*(len(nats)-1)) / 2

		path := filepath.Join(t.TempDir(), "chaos.jsonl")
		w, err := checkpoint.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		killAt := r.Int63n(total)
		var rep *attack.Report
		for attempt := 0; ; attempt++ {
			if attempt > 50 {
				t.Fatalf("round %d: run never completed", round)
			}
			ctx, cancel := context.WithCancel(context.Background())
			plan := faultinject.NewPlan()
			plan.CancelAtPair = killAt
			plan.Cancel = cancel
			opt := attack.DefaultOptions()
			opt.Workers = 1 + r.Intn(4)
			opt.Checkpoint = w
			opt.Fault = plan.Hook()
			if attempt > 0 {
				st, err := checkpoint.Load(path)
				if err != nil {
					t.Fatal(err)
				}
				opt.Resume = st
			}
			rep, err = attack.RunContext(ctx, nats, opt)
			cancel()
			if err != nil {
				t.Fatalf("round %d attempt %d: %v", round, attempt, err)
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			if !rep.Canceled {
				break
			}
			// Partial findings must already be a subset of the oracle.
			seen := map[int]bool{}
			for _, bk := range oracle.Broken {
				seen[bk.Index] = true
			}
			for _, bk := range rep.Broken {
				if !seen[bk.Index] {
					t.Fatalf("round %d: partial run broke key %d the oracle did not", round, bk.Index)
				}
			}
			// Kill the next attempt a bit later, so runs make progress and
			// eventually finish.
			killAt += 1 + r.Int63n(total/2+1)
			w, err = checkpoint.OpenAppend(path)
			if err != nil {
				t.Fatal(err)
			}
		}
		sameBroken(t, "kill/resume", rep.Broken, oracle.Broken)
	}
}

// TestChaosInjectedPanics panics a worker at a seeded pair whose moduli
// share nothing; the pair must be quarantined as a BadPair and every
// oracle finding must survive.
func TestChaosInjectedPanics(t *testing.T) {
	r := rand.New(rand.NewSource(2002))
	for round := 0; round < chaosRounds(6); round++ {
		nats, planted := chaosCorpus(t, r, int64(6000+round))
		oracle, err := attack.Run(nats, attack.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		weak := map[int]bool{}
		for _, pp := range planted {
			weak[pp.I] = true
			weak[pp.J] = true
		}
		// Target a pair of strong keys: its GCD is 1, so quarantining it
		// provably loses no findings.
		var target [2]int
		for {
			i, j := r.Intn(len(nats)), r.Intn(len(nats))
			if i != j && !weak[i] && !weak[j] {
				if i > j {
					i, j = j, i
				}
				target = [2]int{i, j}
				break
			}
		}
		plan := faultinject.NewPlan()
		plan.PanicAtIJ = &target
		opt := attack.DefaultOptions()
		opt.Workers = 1 + r.Intn(4)
		opt.Fault = plan.Hook()
		rep, err := attack.Run(nats, opt)
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.BadPairs) != 1 || rep.BadPairs[0].I != target[0] || rep.BadPairs[0].J != target[1] {
			t.Fatalf("round %d: BadPairs = %+v, want exactly (%d,%d)", round, rep.BadPairs, target[0], target[1])
		}
		sameBroken(t, "panic quarantine", rep.Broken, oracle.Broken)
	}
}

// TestChaosIncrementalKillResume is the kill/resume campaign for the
// incremental engine: an old corpus meets a batch of new moduli, the
// stripe run is killed and resumed, and the outcome must match an
// uninterrupted incremental run.
func TestChaosIncrementalKillResume(t *testing.T) {
	r := rand.New(rand.NewSource(2003))
	for round := 0; round < chaosRounds(6); round++ {
		nats, _ := chaosCorpus(t, r, int64(7000+round))
		split := len(nats)/2 + r.Intn(len(nats)/4+1)
		old, newer := nats[:split], nats[split:]
		if len(newer) == 0 {
			old, newer = nats[:len(nats)-2], nats[len(nats)-2:]
		}
		oracle, err := attack.RunIncremental(old, newer, attack.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}

		path := filepath.Join(t.TempDir(), "inc.jsonl")
		w, err := checkpoint.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		plan := faultinject.NewPlan()
		plan.CancelAtPair = r.Int63n(int64(len(newer)) + 1)
		plan.Cancel = cancel
		opt := attack.DefaultOptions()
		opt.Workers = 1 + r.Intn(3)
		opt.Checkpoint = w
		opt.Fault = plan.Hook()
		partial, err := attack.RunIncrementalContext(ctx, old, newer, opt)
		cancel()
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}

		final := partial
		if partial.Canceled {
			st, err := checkpoint.Load(path)
			if err != nil {
				t.Fatal(err)
			}
			w2, err := checkpoint.OpenAppend(path)
			if err != nil {
				t.Fatal(err)
			}
			ropt := attack.DefaultOptions()
			ropt.Resume = st
			ropt.Checkpoint = w2
			final, err = attack.RunIncremental(old, newer, ropt)
			if err != nil {
				t.Fatal(err)
			}
			if err := w2.Close(); err != nil {
				t.Fatal(err)
			}
			if final.Canceled {
				t.Fatalf("round %d: resumed run still canceled", round)
			}
		}
		sameBroken(t, "incremental kill/resume", final.Broken, oracle.Broken)
	}
}

// TestChaosBigIntOracle cross-checks one chaos round against the public
// big.Int API, tying the internal campaigns back to the documented
// surface: FindSharedPrimesContext with a dead context reports Canceled
// with a subset of the full findings.
func TestChaosBigIntOracle(t *testing.T) {
	moduli, _, err := GenerateWeakCorpus(12, 128, 2, 8001)
	if err != nil {
		t.Fatal(err)
	}
	full, err := FindSharedPrimes(moduli, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := FindSharedPrimesContext(ctx, moduli, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Canceled {
		t.Fatal("dead context did not report Canceled")
	}
	if len(rep.Broken) != 0 {
		t.Fatalf("pre-canceled run broke %d keys", len(rep.Broken))
	}
	if len(full.Broken) != 4 {
		t.Fatalf("oracle broke %d keys, want 4", len(full.Broken))
	}
}

// chaosFleetOptions builds a randomized hybrid attack configuration for
// the fleet campaigns (fleet mode distributes hybrid cells).
func chaosFleetOptions(r *rand.Rand) attack.Options {
	opt := attack.DefaultOptions()
	opt.Engine = engine.Hybrid
	opt.TileSize = 3 + r.Intn(4)
	return opt
}

// chaosFleetWorkers runs n workers concurrently with per-worker configs
// and fails the test on any worker error.
func chaosFleetWorkers(t *testing.T, ctx context.Context, n int, mk func(i int) fleet.WorkerConfig) {
	t.Helper()
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = fleet.RunWorker(ctx, mk(i))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
}

// assembleFleet rebuilds the attack report from the coordinator's
// records, exactly as rsafactor -serve does after the scan.
func assembleFleet(t *testing.T, nats []*mpnat.Nat, opt attack.Options, coord *fleet.Coordinator) *attack.Report {
	t.Helper()
	runner, err := bulk.NewCellRunner(nats, opt.BulkConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := runner.Assemble(coord.Records())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := attack.Interpret(nats, res, opt)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// assertFleetJournal asserts the exactly-once contract: the journal
// holds one record per cell (completed or quarantined), nothing ignored.
func assertFleetJournal(t *testing.T, path string, hdr checkpoint.Header, wantQuarantined int) {
	t.Helper()
	st, err := checkpoint.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Verify(hdr); err != nil {
		t.Fatal(err)
	}
	if len(st.Done) != hdr.Units || st.Ignored != 0 {
		t.Fatalf("journal: %d/%d cells recorded, %d lines ignored", len(st.Done), hdr.Units, st.Ignored)
	}
	if q := st.Quarantined(); len(q) != wantQuarantined {
		t.Fatalf("journal: %d quarantined cells, want %d: %v", len(q), wantQuarantined, q)
	}
}

// TestChaosFleetPartition drops, duplicates and stalls protocol messages
// between three workers and the coordinator — stalls longer than the
// lease TTL, so leases expire under their holders and cells are
// re-leased mid-compute — and asserts the assembled findings are
// identical to an undisturbed single-process run, with every cell
// journaled exactly once.
func TestChaosFleetPartition(t *testing.T) {
	r := rand.New(rand.NewSource(2004))
	for round := 0; round < chaosRounds(4); round++ {
		nats, _ := chaosCorpus(t, r, int64(8000+round))
		opt := chaosFleetOptions(r)
		oracle, err := attack.Run(nats, opt)
		if err != nil {
			t.Fatal(err)
		}
		hdr, err := attack.JournalHeader(nats, opt)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(t.TempDir(), "fleet.jsonl")
		w, err := checkpoint.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		coord, err := fleet.NewCoordinator(fleet.CoordinatorConfig{
			Header: hdr, LeaseTTL: 60 * time.Millisecond, Journal: w, Metrics: obs.NewRegistry(),
		})
		if err != nil {
			t.Fatal(err)
		}
		lb := fleet.NewLoopback(coord)

		ctx := context.Background()
		chaosFleetWorkers(t, ctx, 3, func(i int) fleet.WorkerConfig {
			wcfg := opt.BulkConfig()
			wcfg.Metrics = obs.NewRegistry()
			return fleet.WorkerConfig{
				ID: fmt.Sprintf("w%d", i),
				Transport: &fleet.ChaosTransport{Inner: lb, Plan: &faultinject.RPCPlan{
					PDropRequest: 0.1, PDropReply: 0.1, PDuplicate: 0.15,
					PDelay: 0.05, Delay: 70 * time.Millisecond,
					Seed: int64(100*round + i + 1),
				}},
				Moduli: nats, Config: wcfg,
				Backoff: fleet.Backoff{Base: time.Millisecond, Max: 5 * time.Millisecond, Attempts: 200},
			}
		})
		waitCtx, cancel := context.WithTimeout(ctx, 60*time.Second)
		err = coord.Wait(waitCtx)
		cancel()
		if err != nil {
			t.Fatalf("round %d: scan never finished: %v", round, err)
		}
		rep := assembleFleet(t, nats, opt, coord)
		sameBroken(t, "fleet partition", rep.Broken, oracle.Broken)
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		assertFleetJournal(t, path, hdr, 0)
	}
}

// TestChaosFleetCoordinatorCrash kills the coordinator twice mid-scan —
// in-flight leases and unsent acks die with it — rebuilds it from its
// journal and swaps it back in while the workers are still retrying.
// The finished scan must match the oracle and the journal must hold
// every cell exactly once across all three coordinator incarnations.
func TestChaosFleetCoordinatorCrash(t *testing.T) {
	r := rand.New(rand.NewSource(2005))
	for round := 0; round < chaosRounds(3); round++ {
		nats, _ := chaosCorpus(t, r, int64(8500+round))
		opt := chaosFleetOptions(r)
		oracle, err := attack.Run(nats, opt)
		if err != nil {
			t.Fatal(err)
		}
		hdr, err := attack.JournalHeader(nats, opt)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(t.TempDir(), "crash.jsonl")
		w, err := checkpoint.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		coord, err := fleet.NewCoordinator(fleet.CoordinatorConfig{
			Header: hdr, LeaseTTL: 50 * time.Millisecond, Journal: w, Metrics: obs.NewRegistry(),
		})
		if err != nil {
			t.Fatal(err)
		}
		lb := fleet.NewLoopback(coord)

		ctx := context.Background()
		workersDone := make(chan struct{})
		go func() {
			defer close(workersDone)
			chaosFleetWorkers(t, ctx, 3, func(i int) fleet.WorkerConfig {
				wcfg := opt.BulkConfig()
				wcfg.Metrics = obs.NewRegistry()
				return fleet.WorkerConfig{
					ID: fmt.Sprintf("w%d", i), Transport: lb, Moduli: nats, Config: wcfg,
					Backoff: fleet.Backoff{Base: time.Millisecond, Max: 10 * time.Millisecond, Attempts: 2000},
				}
			})
		}()

		for crash := 0; crash < 2 && !coord.Done(); crash++ {
			time.Sleep(time.Duration(5+r.Intn(20)) * time.Millisecond)
			// Kill: every call now fails like a refused connection, and the
			// journal file is all that survives.
			lb.SetDown(true)
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			st, err := checkpoint.Load(path)
			if err != nil {
				t.Fatal(err)
			}
			w, err = checkpoint.OpenAppend(path)
			if err != nil {
				t.Fatal(err)
			}
			coord, err = fleet.NewCoordinator(fleet.CoordinatorConfig{
				Header: hdr, LeaseTTL: 50 * time.Millisecond, Journal: w, Resume: st,
				Metrics: obs.NewRegistry(),
			})
			if err != nil {
				t.Fatalf("round %d crash %d: restart from journal: %v", round, crash, err)
			}
			lb.Swap(coord)
		}

		select {
		case <-workersDone:
		case <-time.After(60 * time.Second):
			t.Fatalf("round %d: workers never finished", round)
		}
		waitCtx, cancel := context.WithTimeout(ctx, time.Second)
		err = coord.Wait(waitCtx)
		cancel()
		if err != nil {
			t.Fatalf("round %d: final coordinator not done: %v", round, err)
		}
		rep := assembleFleet(t, nats, opt, coord)
		sameBroken(t, "coordinator crash", rep.Broken, oracle.Broken)
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		assertFleetJournal(t, path, hdr, 0)
	}
}

// TestChaosFleetPoisonedCell panics every worker on one randomly chosen
// cell: the distinct-worker quorum must quarantine exactly that cell,
// the scan must still terminate, and the findings must equal a local
// assembly of every *other* cell — quarantine loses only the poisoned
// cell's pairs, never a healthy cell's findings.
func TestChaosFleetPoisonedCell(t *testing.T) {
	r := rand.New(rand.NewSource(2006))
	for round := 0; round < chaosRounds(3); round++ {
		nats, _ := chaosCorpus(t, r, int64(9000+round))
		opt := chaosFleetOptions(r)
		runner, err := bulk.NewCellRunner(nats, opt.BulkConfig())
		if err != nil {
			t.Fatal(err)
		}
		hdr := runner.Header()
		poison := r.Intn(hdr.Units)

		// Expected findings: every cell but the poisoned one, computed
		// locally.
		records := map[int]checkpoint.Record{}
		for u := 0; u < hdr.Units; u++ {
			if u == poison {
				continue
			}
			rec, err := runner.RunUnit(context.Background(), u)
			if err != nil {
				t.Fatal(err)
			}
			records[u] = rec
		}
		res, err := runner.Assemble(records)
		if err != nil {
			t.Fatal(err)
		}
		expected, err := attack.Interpret(nats, res, opt)
		if err != nil {
			t.Fatal(err)
		}

		path := filepath.Join(t.TempDir(), "poison.jsonl")
		w, err := checkpoint.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		coord, err := fleet.NewCoordinator(fleet.CoordinatorConfig{
			Header: hdr, LeaseTTL: 200 * time.Millisecond, FailQuorum: 2,
			Journal: w, Metrics: obs.NewRegistry(),
		})
		if err != nil {
			t.Fatal(err)
		}
		lb := fleet.NewLoopback(coord)
		ctx := context.Background()
		chaosFleetWorkers(t, ctx, 3, func(i int) fleet.WorkerConfig {
			wcfg := opt.BulkConfig()
			wcfg.Metrics = obs.NewRegistry()
			wcfg.Fault = &faultinject.Hook{Block: func(u int) {
				if u == poison {
					panic("chaos: poisoned cell")
				}
			}}
			return fleet.WorkerConfig{
				ID: fmt.Sprintf("w%d", i), Transport: lb, Moduli: nats, Config: wcfg,
				Backoff: fleet.Backoff{Base: time.Millisecond, Attempts: 50},
			}
		})
		waitCtx, cancel := context.WithTimeout(ctx, 60*time.Second)
		err = coord.Wait(waitCtx)
		cancel()
		if err != nil {
			t.Fatalf("round %d: scan never finished: %v", round, err)
		}
		bad := coord.BadCells()
		if len(bad) != 1 || bad[poison] == "" {
			t.Fatalf("round %d: BadCells() = %v, want exactly cell %d", round, bad, poison)
		}
		rep := assembleFleet(t, nats, opt, coord)
		sameBroken(t, "poisoned cell", rep.Broken, expected.Broken)
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		assertFleetJournal(t, path, hdr, 1)
	}
}

// chaosAttrInt reads an int-valued trace attribute (int in-process,
// float64 after a JSON round trip).
func chaosAttrInt(v any) int {
	switch n := v.(type) {
	case int:
		return n
	case int64:
		return int(n)
	case float64:
		return int(n)
	}
	return -1
}

// TestChaosFleetTraceContinuity kills and rebuilds the coordinator
// mid-scan under a lossy transport, with every incarnation tracing into
// the same sink (the append-mode trace file in production). The merged
// trace must stay coherent across the crash: exactly one cell span per
// completed cell regardless of retries, duplications and re-leases;
// retry events present; every parent reference resolving to an emitted
// span (the deterministic coordinator:1 run-span ID is what re-adopts
// pre-crash cell spans); and findings identical to the oracle.
func TestChaosFleetTraceContinuity(t *testing.T) {
	r := rand.New(rand.NewSource(2008))
	nats, _ := chaosCorpus(t, r, 8800)
	opt := chaosFleetOptions(r)
	oracle, err := attack.Run(nats, opt)
	if err != nil {
		t.Fatal(err)
	}
	hdr, err := attack.JournalHeader(nats, opt)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "continuity.jsonl")
	w, err := checkpoint.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	col := &obs.Collector{} // stands in for the append-mode trace file
	mkCoord := func(journal *checkpoint.Writer, st *checkpoint.State) *fleet.Coordinator {
		coord, err := fleet.NewCoordinator(fleet.CoordinatorConfig{
			Header: hdr, LeaseTTL: 50 * time.Millisecond, Journal: journal, Resume: st,
			Metrics: obs.NewRegistry(), Trace: obs.NewTracerSink(col),
		})
		if err != nil {
			t.Fatalf("coordinator: %v", err)
		}
		return coord
	}
	coord := mkCoord(w, nil)
	lb := fleet.NewLoopback(coord)

	ctx := context.Background()
	workersDone := make(chan struct{})
	go func() {
		defer close(workersDone)
		chaosFleetWorkers(t, ctx, 3, func(i int) fleet.WorkerConfig {
			wcfg := opt.BulkConfig()
			wcfg.Metrics = obs.NewRegistry()
			return fleet.WorkerConfig{
				ID: fmt.Sprintf("w%d", i),
				Transport: &fleet.ChaosTransport{Inner: lb, Plan: &faultinject.RPCPlan{
					PDropRequest: 0.1, PDropReply: 0.1, PDuplicate: 0.1,
					Seed: int64(300 + i),
				}},
				Moduli: nats, Config: wcfg,
				Backoff: fleet.Backoff{Base: time.Millisecond, Max: 10 * time.Millisecond, Attempts: 2000},
			}
		})
	}()

	for crash := 0; crash < 2 && !coord.Done(); crash++ {
		time.Sleep(time.Duration(5+r.Intn(20)) * time.Millisecond)
		lb.SetDown(true)
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		st, err := checkpoint.Load(path)
		if err != nil {
			t.Fatal(err)
		}
		w, err = checkpoint.OpenAppend(path)
		if err != nil {
			t.Fatal(err)
		}
		coord = mkCoord(w, st)
		lb.Swap(coord)
	}

	select {
	case <-workersDone:
	case <-time.After(60 * time.Second):
		t.Fatal("workers never finished")
	}
	waitCtx, cancel := context.WithTimeout(ctx, time.Second)
	err = coord.Wait(waitCtx)
	cancel()
	if err != nil {
		t.Fatalf("final coordinator not done: %v", err)
	}
	rep := assembleFleet(t, nats, opt, coord)
	sameBroken(t, "trace continuity", rep.Broken, oracle.Broken)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	evs := col.Drain()
	spanIDs := map[string]bool{}
	cellSpans := map[int]int{}
	var runSpans, retries int
	for _, ev := range evs {
		if ev.Kind != "span" {
			if ev.Name == "retry" {
				retries++
			}
			continue
		}
		spanIDs[ev.SpanID] = true
		switch ev.Name {
		case "fleet_run":
			runSpans++
			if ev.SpanID != "coordinator:1" {
				t.Fatalf("run span ID %q: the crash-heal parentage contract needs coordinator:1", ev.SpanID)
			}
		case "cell":
			cellSpans[chaosAttrInt(ev.Attrs["cell"])]++
		}
	}
	// Normally exactly one (only the finishing incarnation ends its run
	// span), but a crash landing after the last completion resumes an
	// already-done grid and seals again — both spans share the
	// deterministic ID, so parentage still resolves.
	if runSpans < 1 {
		t.Fatal("no fleet_run span in merged trace")
	}
	if len(cellSpans) != hdr.Units {
		t.Fatalf("cell spans cover %d of %d cells", len(cellSpans), hdr.Units)
	}
	for unit, n := range cellSpans {
		if n != 1 {
			t.Fatalf("cell %d has %d spans, want exactly one", unit, n)
		}
	}
	if retries == 0 {
		t.Fatal("lossy transport produced no retry events in the merged trace")
	}
	for _, ev := range evs {
		if ev.Parent != "" && !spanIDs[ev.Parent] {
			t.Fatalf("orphan parent %q on %s %q", ev.Parent, ev.Kind, ev.Name)
		}
	}
}

// TestChaosFleetStraggler plants a faultinject delay on one cell and
// asserts the coordinator's straggler detector flags exactly that cell
// while the scan still completes with oracle-identical findings.
func TestChaosFleetStraggler(t *testing.T) {
	r := rand.New(rand.NewSource(2009))
	nats, _ := chaosCorpus(t, r, 8900)
	opt := attack.DefaultOptions()
	opt.Engine = engine.Hybrid
	opt.TileSize = 3 // enough cells for the median to form first
	oracle, err := attack.Run(nats, opt)
	if err != nil {
		t.Fatal(err)
	}
	hdr, err := attack.JournalHeader(nats, opt)
	if err != nil {
		t.Fatal(err)
	}
	// The last cell sleeps 1.5s; the rest finish in microseconds, so the
	// median forms long before the sleeper passes 4x median, and the
	// other worker's requests (or the sleeper's own heartbeats at TTL/3 =
	// 1s) sweep it into the flagged state well before it completes.
	slow := hdr.Units - 1
	coord, err := fleet.NewCoordinator(fleet.CoordinatorConfig{
		Header: hdr, LeaseTTL: 3 * time.Second, Metrics: obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	lb := fleet.NewLoopback(coord)
	ctx := context.Background()
	chaosFleetWorkers(t, ctx, 2, func(i int) fleet.WorkerConfig {
		wcfg := opt.BulkConfig()
		wcfg.Metrics = obs.NewRegistry()
		plan := faultinject.NewPlan()
		plan.SlowUnit = slow
		plan.SlowFor = 1500 * time.Millisecond
		wcfg.Fault = plan.Hook()
		return fleet.WorkerConfig{
			ID: fmt.Sprintf("w%d", i), Transport: lb, Moduli: nats, Config: wcfg,
			Backoff: fleet.Backoff{Base: time.Millisecond, Attempts: 50},
		}
	})
	waitCtx, cancel := context.WithTimeout(ctx, 60*time.Second)
	err = coord.Wait(waitCtx)
	cancel()
	if err != nil {
		t.Fatalf("scan never finished: %v", err)
	}

	cells, err := coord.Cells(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, cs := range cells.Cells {
		if cs.Straggler != (cs.Unit == slow) {
			t.Fatalf("cell %d straggler=%v, want flagged only on the delayed cell %d", cs.Unit, cs.Straggler, slow)
		}
	}
	if got := coord.MergedSnapshot().Counters["fleet_stragglers_total"]; got < 1 {
		t.Fatalf("fleet_stragglers_total = %d, want >= 1", got)
	}
	rep := assembleFleet(t, nats, opt, coord)
	sameBroken(t, "straggler", rep.Broken, oracle.Broken)
}

// TestChaosFleetWorkerKills runs workers in waves, killing each wave
// mid-cell at a seeded deadline, until surviving waves finish the scan.
// Killed workers abandon their leases (no Fail report, no spill), the
// leases expire, and the cells are recomputed — findings must still be
// byte-identical to the oracle with every cell journaled exactly once.
func TestChaosFleetWorkerKills(t *testing.T) {
	r := rand.New(rand.NewSource(2007))
	for round := 0; round < chaosRounds(3); round++ {
		nats, _ := chaosCorpus(t, r, int64(9500+round))
		opt := chaosFleetOptions(r)
		oracle, err := attack.Run(nats, opt)
		if err != nil {
			t.Fatal(err)
		}
		hdr, err := attack.JournalHeader(nats, opt)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(t.TempDir(), "kills.jsonl")
		w, err := checkpoint.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		coord, err := fleet.NewCoordinator(fleet.CoordinatorConfig{
			Header: hdr, LeaseTTL: 20 * time.Millisecond, Journal: w, Metrics: obs.NewRegistry(),
		})
		if err != nil {
			t.Fatal(err)
		}
		lb := fleet.NewLoopback(coord)

		for wave := 0; !coord.Done(); wave++ {
			if wave > 100 {
				t.Fatalf("round %d: scan never finished", round)
			}
			wctx, cancel := context.WithTimeout(context.Background(),
				time.Duration(10+r.Intn(40))*time.Millisecond)
			var wg sync.WaitGroup
			for i := 0; i < 2; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					wcfg := opt.BulkConfig()
					wcfg.Metrics = obs.NewRegistry()
					_, werr := fleet.RunWorker(wctx, fleet.WorkerConfig{
						ID: fmt.Sprintf("wave%d-w%d", wave, i), Transport: lb, Moduli: nats, Config: wcfg,
						Backoff: fleet.Backoff{Base: time.Millisecond, Max: 5 * time.Millisecond, Attempts: 20},
					})
					// Being killed is the point; anything else (integrity,
					// fingerprint) is a real failure.
					if werr != nil && !errors.Is(werr, context.DeadlineExceeded) && !errors.Is(werr, context.Canceled) {
						t.Errorf("wave %d worker %d: %v", wave, i, werr)
					}
				}(i)
			}
			wg.Wait()
			cancel()
		}

		rep := assembleFleet(t, nats, opt, coord)
		sameBroken(t, "worker kills", rep.Broken, oracle.Broken)
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		assertFleetJournal(t, path, hdr, 0)
	}
}
