package bulkgcd

// Soak tests: wider randomized campaigns over the whole stack. They run
// in a few seconds and are skipped under -short.

import (
	"bytes"
	"math/big"
	"math/rand"
	"testing"
)

// TestSoakPublicGCD hammers the public GCD with structured inputs:
// powers of two, planted factors, huge quotients, near-equal values.
func TestSoakPublicGCD(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	r := rand.New(rand.NewSource(1001))
	randN := func(bits int) *big.Int {
		v := new(big.Int)
		for v.BitLen() < bits {
			v.Lsh(v, 32)
			v.Or(v, new(big.Int).SetUint64(uint64(r.Uint32())))
		}
		return v
	}
	for i := 0; i < 1500; i++ {
		var x, y *big.Int
		switch i % 5 {
		case 0: // plain random
			x, y = randN(1+r.Intn(700)), randN(1+r.Intn(700))
		case 1: // shared structured factor with trailing zeros
			g := new(big.Int).Lsh(randN(1+r.Intn(100)), uint(r.Intn(40)))
			x = new(big.Int).Mul(randN(1+r.Intn(200)), g)
			y = new(big.Int).Mul(randN(1+r.Intn(200)), g)
		case 2: // huge quotient: tiny y
			x = randN(500 + r.Intn(200))
			y = big.NewInt(int64(1 + r.Intn(1000)))
		case 3: // near-equal
			x = randN(400)
			y = new(big.Int).Add(x, big.NewInt(int64(r.Intn(64))))
		default: // powers of two
			x = new(big.Int).Lsh(big.NewInt(1), uint(r.Intn(300)))
			y = new(big.Int).Lsh(big.NewInt(1), uint(r.Intn(300)))
		}
		want := new(big.Int).GCD(nil, nil, x, y)
		if got := GCD(x, y); got.Cmp(want) != 0 {
			t.Fatalf("case %d: GCD(%v, %v) = %v, want %v", i, x, y, got, want)
		}
	}
}

// TestSoakAttackRandomCorpora runs the full attack over many random weak
// corpora of varying shapes, verifying ground truth every time.
func TestSoakAttackRandomCorpora(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	r := rand.New(rand.NewSource(1002))
	for round := 0; round < 12; round++ {
		count := 6 + r.Intn(20)
		weak := r.Intn(count/2 + 1)
		bits := 128
		moduli, planted, err := GenerateWeakCorpus(count, bits, weak, int64(3000+round))
		if err != nil {
			t.Fatal(err)
		}
		opts := &AttackOptions{
			Algorithm:             Algorithms[r.Intn(len(Algorithms))],
			DisableEarlyTerminate: r.Intn(2) == 0,
			BatchGCD:              weak > 0 && r.Intn(3) == 0,
		}
		if opts.BatchGCD {
			opts.Algorithm = Approximate
		}
		rep, err := FindSharedPrimes(moduli, opts)
		if err != nil {
			t.Fatal(err)
		}
		want := map[int]*big.Int{}
		for _, pp := range planted {
			want[pp.I] = pp.P
			want[pp.J] = pp.P
		}
		if len(rep.Broken) != len(want) {
			t.Fatalf("round %d (%+v): broke %d keys, want %d", round, opts, len(rep.Broken), len(want))
		}
		for _, bk := range rep.Broken {
			p, ok := want[bk.Index]
			if !ok {
				t.Fatalf("round %d: unexpected break at %d", round, bk.Index)
			}
			if bk.P.Cmp(p) != 0 && bk.Q.Cmp(p) != 0 {
				t.Fatalf("round %d: key %d broken without planted prime", round, bk.Index)
			}
			if new(big.Int).Mul(bk.P, bk.Q).Cmp(bk.N) != 0 {
				t.Fatalf("round %d: key %d factorization inconsistent", round, bk.Index)
			}
		}
	}
}

// TestSoakCorpusFormats round-trips random corpora through both the hex
// and in-memory paths at many shapes.
func TestSoakCorpusFormats(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	r := rand.New(rand.NewSource(1003))
	for round := 0; round < 10; round++ {
		count := 1 + r.Intn(30)
		bits := 64 * (1 + r.Intn(8))
		moduli, _, err := GenerateWeakCorpus(count, bits, 0, int64(4000+round))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteCorpus(&buf, moduli, "soak"); err != nil {
			t.Fatal(err)
		}
		got, err := ReadCorpus(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != count {
			t.Fatalf("round %d: %d moduli after round trip", round, len(got))
		}
		for i := range got {
			if got[i].Cmp(moduli[i]) != 0 {
				t.Fatalf("round %d: modulus %d mismatch", round, i)
			}
		}
	}
}
