package bulkgcd

import (
	"math/big"
	"strings"
	"testing"
)

// TestOpenRegistry exercises the public streaming surface end to end:
// options, verdict mapping, the findings channel, durability across
// reopen, and the metrics snapshot on Close.
func TestOpenRegistry(t *testing.T) {
	dir := t.TempDir()
	var metrics strings.Builder
	r, err := OpenRegistry(dir,
		WithWorkers(2),
		WithSubproductBudget(1<<20),
		WithMetrics(&metrics),
	)
	if err != nil {
		t.Fatal(err)
	}

	moduli, planted, err := GenerateWeakCorpus(24, 96, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	vs, err := r.SubmitBatch(moduli)
	if err != nil {
		t.Fatal(err)
	}
	shared := map[int]bool{}
	for _, v := range vs {
		if v.Kind == VerdictMalformed {
			t.Fatalf("generated modulus rejected: %+v", v)
		}
		if v.Kind == VerdictShared {
			shared[v.Index] = true
			for _, p := range v.Partners {
				shared[p.Index] = true
			}
		}
	}
	for _, pp := range planted {
		if !shared[pp.I] || !shared[pp.J] {
			t.Fatalf("planted pair (%d,%d) not detected; shared=%v", pp.I, pp.J, shared)
		}
	}

	// Duplicate and malformed verdicts map through.
	if v, _ := r.Submit(moduli[0]); v.Kind != VerdictDuplicate || v.Kind.String() != "duplicate" {
		t.Fatalf("duplicate verdict: %+v", v)
	}
	if v, _ := r.Submit(big.NewInt(42)); v.Kind != VerdictMalformed || v.Index != -1 {
		t.Fatalf("malformed verdict: %+v", v)
	}

	broken := r.Broken()
	if len(broken) < 2*len(planted) {
		t.Fatalf("Broken() = %d entries, want >= %d", len(broken), 2*len(planted))
	}
	for _, b := range broken {
		if b.N == nil || b.G == nil {
			t.Fatalf("broken modulus %+v missing values", b)
		}
		if b.Index < len(moduli) && b.N.Cmp(moduli[b.Index]) != 0 {
			t.Fatalf("broken modulus %d: N mismatch", b.Index)
		}
	}
	st := r.Stats()
	if st.Keys != len(moduli)+1 || st.Submissions != int64(len(moduli)+2) {
		t.Fatalf("stats: %+v", st)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	// Findings were streamed (channel closed by Close).
	n := 0
	for f := range r.Findings() {
		if f.Factor == nil || f.Index <= f.Partner {
			t.Fatalf("finding %+v malformed", f)
		}
		n++
	}
	if n == 0 {
		t.Fatal("no findings streamed")
	}
	if !strings.Contains(metrics.String(), "registry_submissions_total") {
		t.Fatalf("metrics snapshot missing registry counters:\n%s", metrics.String())
	}

	// Reopen: identical broken set, no recomputation.
	r2, err := OpenRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if got := r2.Broken(); len(got) != len(broken) {
		t.Fatalf("reopened Broken() = %d, want %d", len(got), len(broken))
	}
	if st := r2.Stats(); st.Replayed != 0 {
		t.Fatalf("clean reopen replayed %d", st.Replayed)
	}
}
