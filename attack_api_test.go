package bulkgcd

import (
	"bytes"
	"context"
	"fmt"
	"math/big"
	"path/filepath"
	"strings"
	"testing"
)

// apiCorpus builds a small planted corpus plus the set of indices the
// attack must break.
func apiCorpus(t *testing.T) ([]*big.Int, map[int]bool) {
	t.Helper()
	moduli, planted, err := GenerateWeakCorpus(24, 256, 3, 41)
	if err != nil {
		t.Fatal(err)
	}
	want := map[int]bool{}
	for _, pp := range planted {
		want[pp.I], want[pp.J] = true, true
	}
	return moduli, want
}

// checkBroken asserts the report breaks exactly the planted indices with
// verified factorizations.
func checkBroken(t *testing.T, rep *Report, want map[int]bool) {
	t.Helper()
	if len(rep.Broken) != len(want) {
		t.Fatalf("broke %d keys, want %d", len(rep.Broken), len(want))
	}
	for _, bk := range rep.Broken {
		if !want[bk.Index] {
			t.Errorf("key %d broken but not planted", bk.Index)
		}
		if new(big.Int).Mul(bk.P, bk.Q).Cmp(bk.N) != 0 {
			t.Errorf("key %d: P*Q != N", bk.Index)
		}
		if bk.D == nil {
			t.Errorf("key %d: private exponent not recovered", bk.Index)
		}
	}
}

// TestAttackAPIEngines runs the redesigned public API with every engine
// and asserts identical findings.
func TestAttackAPIEngines(t *testing.T) {
	moduli, want := apiCorpus(t)
	for _, eng := range Engines {
		t.Run(eng.String(), func(t *testing.T) {
			rep, err := New(WithEngine(eng), WithWorkers(2), WithTileSize(4)).
				Run(context.Background(), moduli)
			if err != nil {
				t.Fatal(err)
			}
			checkBroken(t, rep, want)
			if rep.Engine != eng {
				t.Errorf("Report.Engine = %v, want %v", rep.Engine, eng)
			}
			if eng != EngineBatch && rep.Pairs != rep.TotalPairs {
				t.Errorf("covered %d of %d pairs", rep.Pairs, rep.TotalPairs)
			}
		})
	}
}

// TestAttackAPIDefaults exercises plain New(): pairs engine, early
// termination, Approximate, e = 65537.
func TestAttackAPIDefaults(t *testing.T) {
	moduli, want := apiCorpus(t)
	rep, err := New().Run(context.Background(), moduli)
	if err != nil {
		t.Fatal(err)
	}
	checkBroken(t, rep, want)
	if rep.Engine != EnginePairs {
		t.Errorf("default engine = %v, want pairs", rep.Engine)
	}
	if rep.Stats.Iterations == 0 {
		t.Error("no iteration statistics collected")
	}
}

// TestAttackAPIWrapperParity asserts the deprecated FindSharedPrimes
// wrapper reports exactly what the new API does.
func TestAttackAPIWrapperParity(t *testing.T) {
	moduli, _ := apiCorpus(t)
	newRep, err := New(WithWorkers(2)).Run(context.Background(), moduli)
	if err != nil {
		t.Fatal(err)
	}
	oldRep, err := FindSharedPrimes(moduli, &AttackOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(oldRep.Broken) != len(newRep.Broken) {
		t.Fatalf("wrapper broke %d keys, new API %d", len(oldRep.Broken), len(newRep.Broken))
	}
	for i := range oldRep.Broken {
		o, n := oldRep.Broken[i], newRep.Broken[i]
		if o.Index != n.Index || o.P.Cmp(n.P) != 0 || o.Q.Cmp(n.Q) != 0 {
			t.Fatalf("broken key %d differs between wrapper and new API", i)
		}
	}
	if oldRep.Pairs != newRep.Pairs {
		t.Errorf("wrapper pairs %d, new API %d", oldRep.Pairs, newRep.Pairs)
	}
}

// TestAttackAPICheckpointResume interrupts a checkpointed hybrid run,
// then reruns with the same journal path: the second run must resume
// (not restart) and produce the complete findings.
func TestAttackAPICheckpointResume(t *testing.T) {
	moduli, want := apiCorpus(t)
	path := filepath.Join(t.TempDir(), "run.jsonl")

	ctx, cancel := context.WithCancel(context.Background())
	a := New(
		WithEngine(EngineHybrid), WithTileSize(4), WithWorkers(1),
		WithCheckpoint(path),
		WithProgress(func(done, total int64) {
			if done > 0 {
				cancel()
			}
		}),
	)
	rep, err := a.Run(ctx, moduli)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Canceled {
		t.Skip("run completed before the cancel landed; nothing to resume")
	}

	rep2, err := New(
		WithEngine(EngineHybrid), WithTileSize(4), WithWorkers(1),
		WithCheckpoint(path),
	).Run(context.Background(), moduli)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Canceled {
		t.Fatal("resumed run reported canceled")
	}
	if rep2.ResumedPairs == 0 {
		t.Error("second run did not resume from the journal")
	}
	checkBroken(t, rep2, want)
}

// TestAttackAPICheckpointMismatch points a run at a journal from a
// different configuration: it must start over (fresh journal), not fail
// or resume.
func TestAttackAPICheckpointMismatch(t *testing.T) {
	moduli, want := apiCorpus(t)
	path := filepath.Join(t.TempDir(), "run.jsonl")
	if _, err := New(WithTileSize(4), WithEngine(EngineHybrid), WithCheckpoint(path)).
		Run(context.Background(), moduli); err != nil {
		t.Fatal(err)
	}
	rep, err := New(WithTileSize(8), WithEngine(EngineHybrid), WithCheckpoint(path)).
		Run(context.Background(), moduli)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ResumedPairs != 0 {
		t.Errorf("resumed %d pairs from a mismatched journal", rep.ResumedPairs)
	}
	checkBroken(t, rep, want)
}

// TestAttackAPIMetricsAndTrace asserts WithMetrics emits Prometheus
// text including the hybrid filter counters and WithTrace emits JSONL.
func TestAttackAPIMetricsAndTrace(t *testing.T) {
	moduli, _ := apiCorpus(t)
	var metrics, trace bytes.Buffer
	_, err := New(
		WithEngine(EngineHybrid), WithTileSize(4),
		WithMetrics(&metrics), WithTrace(&trace),
	).Run(context.Background(), moduli)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"bulk_hybrid_filter_gcds_total", "attack_broken_keys_total", "# TYPE"} {
		if !strings.Contains(metrics.String(), want) {
			t.Errorf("metrics output missing %q:\n%s", want, metrics.String())
		}
	}
	if !strings.Contains(trace.String(), `"name":"run"`) {
		t.Errorf("trace output missing run span:\n%s", trace.String())
	}
}

// TestAttackAPIQuarantine feeds a corrupted corpus under WithQuarantine.
func TestAttackAPIQuarantine(t *testing.T) {
	moduli, want := apiCorpus(t)
	bad := append(append([]*big.Int{}, moduli...), big.NewInt(0), big.NewInt(1<<20))
	if _, err := New().Run(context.Background(), bad); err == nil {
		t.Fatal("zero/even moduli accepted without quarantine")
	}
	rep, err := New(WithQuarantine()).Run(context.Background(), bad)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Quarantined) != 2 {
		t.Fatalf("quarantined %d moduli, want 2: %v", len(rep.Quarantined), rep.Quarantined)
	}
	checkBroken(t, rep, want)
}

// TestAttackAPIErrors covers the configuration error paths surfaced by
// Run rather than New.
func TestAttackAPIErrors(t *testing.T) {
	moduli, _ := apiCorpus(t)
	cases := []struct {
		name string
		a    *Attack
		want string
	}{
		{"bad engine", New(WithEngine(Engine(42))), "unknown engine"},
		{"bad algorithm", New(WithAlgorithm(Algorithm(42))), "unknown algorithm"},
		{"batch checkpoint", New(WithEngine(EngineBatch), WithCheckpoint(filepath.Join(t.TempDir(), "j.jsonl"))), "pairs or hybrid"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := tc.a.Run(context.Background(), moduli)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want substring %q", err, tc.want)
			}
		})
	}
}

// TestEngineParse covers the Engine enum round trip and the legacy
// "allpairs" spelling.
func TestEngineParse(t *testing.T) {
	for _, eng := range Engines {
		got, err := ParseEngine(eng.String())
		if err != nil || got != eng {
			t.Errorf("ParseEngine(%q) = %v, %v", eng.String(), got, err)
		}
	}
	if got, err := ParseEngine("AllPairs"); err != nil || got != EnginePairs {
		t.Errorf("ParseEngine(AllPairs) = %v, %v", got, err)
	}
	if _, err := ParseEngine("gpu"); err == nil {
		t.Error("ParseEngine accepted an unknown engine")
	}
	if s := Engine(42).String(); s != "Engine(42)" {
		t.Errorf("unknown engine String = %q", s)
	}
	if s := fmt.Sprint(EnginePairs, EngineBatch, EngineHybrid); s != "pairs batch hybrid" {
		t.Errorf("engine names = %q", s)
	}
}

// TestAttackAPIHybridMatchesPairsModerate is the byte-level parity
// check at the public surface on a moderate corpus: identical Broken
// and Duplicates at several tile sizes. (The full 4096-modulus corpus
// parity run lives in the internal bulk tests and the soak suite.)
func TestAttackAPIHybridMatchesPairsModerate(t *testing.T) {
	count := 96
	if testing.Short() {
		count = 32
	}
	moduli, _, err := GenerateWeakCorpus(count, 256, 4, 97)
	if err != nil {
		t.Fatal(err)
	}
	moduli = append(moduli, moduli[3]) // plant a duplicate
	base, err := New(WithWorkers(2)).Run(context.Background(), moduli)
	if err != nil {
		t.Fatal(err)
	}
	for _, tile := range []int{1, 4, 16, count} {
		rep, err := New(
			WithEngine(EngineHybrid), WithTileSize(tile), WithWorkers(2),
		).Run(context.Background(), moduli)
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Broken) != len(base.Broken) {
			t.Fatalf("tile=%d: broke %d keys, pairs engine %d", tile, len(rep.Broken), len(base.Broken))
		}
		for i := range rep.Broken {
			h, p := rep.Broken[i], base.Broken[i]
			if h.Index != p.Index || h.P.Cmp(p.P) != 0 || h.Q.Cmp(p.Q) != 0 || h.FoundWith != p.FoundWith {
				t.Fatalf("tile=%d: broken key %d differs from the pairs engine", tile, i)
			}
		}
		if len(rep.Duplicates) != len(base.Duplicates) {
			t.Fatalf("tile=%d: duplicates %v vs %v", tile, rep.Duplicates, base.Duplicates)
		}
		for i := range rep.Duplicates {
			if rep.Duplicates[i] != base.Duplicates[i] {
				t.Fatalf("tile=%d: duplicate %d differs", tile, i)
			}
		}
	}
}
