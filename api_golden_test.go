package bulkgcd

import (
	"bytes"
	"flag"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the public-API golden file")

// TestPublicAPIGolden locks the package's exported surface: every
// exported function, method, type (with its exported fields), constant
// and variable is rendered from the parsed source and compared against
// testdata/public_api.golden. An intentional API change regenerates the
// file with `go test -run TestPublicAPIGolden -update`; an accidental
// one fails CI with a diff-able mismatch.
func TestPublicAPIGolden(t *testing.T) {
	got := renderPublicAPI(t, ".")
	goldenPath := filepath.Join("testdata", "public_api.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", goldenPath)
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create it): %v", err)
	}
	if got != string(want) {
		t.Fatalf("public API changed; if intentional, regenerate with -update.\n--- want\n%s\n--- got\n%s", want, got)
	}
}

// renderPublicAPI parses the package in dir (tests excluded) and renders
// its exported declarations as sorted, comment-free source snippets.
func renderPublicAPI(t *testing.T, dir string) string {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	pkg, ok := pkgs["bulkgcd"]
	if !ok {
		t.Fatalf("package bulkgcd not found in %s", dir)
	}
	var lines []string
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			for _, snip := range renderDecl(t, fset, decl) {
				lines = append(lines, snip)
			}
		}
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n\n") + "\n"
}

// renderDecl renders one top-level declaration's exported parts, or
// nothing when the declaration is unexported.
func renderDecl(t *testing.T, fset *token.FileSet, decl ast.Decl) []string {
	t.Helper()
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() || !exportedRecv(d.Recv) {
			return nil
		}
		cp := *d
		cp.Body = nil
		cp.Doc = nil
		return []string{render(t, fset, &cp)}
	case *ast.GenDecl:
		var out []string
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if !s.Name.IsExported() {
					continue
				}
				cp := *s
				cp.Doc, cp.Comment = nil, nil
				if st, ok := cp.Type.(*ast.StructType); ok {
					cp.Type = exportedStruct(st)
				}
				out = append(out, render(t, fset, &ast.GenDecl{Tok: token.TYPE, Specs: []ast.Spec{&cp}}))
			case *ast.ValueSpec:
				if len(s.Names) == 0 || !s.Names[0].IsExported() {
					continue
				}
				cp := *s
				cp.Doc, cp.Comment = nil, nil
				out = append(out, render(t, fset, &ast.GenDecl{Tok: d.Tok, Specs: []ast.Spec{&cp}}))
			}
		}
		return out
	}
	return nil
}

// exportedRecv reports whether a method receiver names an exported type
// (a nil receiver is a plain function and counts as exported).
func exportedRecv(recv *ast.FieldList) bool {
	if recv == nil || len(recv.List) == 0 {
		return true
	}
	typ := recv.List[0].Type
	if star, ok := typ.(*ast.StarExpr); ok {
		typ = star.X
	}
	id, ok := typ.(*ast.Ident)
	return ok && id.IsExported()
}

// exportedStruct strips unexported fields (and all field comments) so
// the golden file tracks only the public shape.
func exportedStruct(st *ast.StructType) *ast.StructType {
	fields := &ast.FieldList{}
	for _, f := range st.Fields.List {
		cp := *f
		cp.Doc, cp.Comment = nil, nil
		if len(cp.Names) == 0 {
			// Embedded field: keep when the embedded type is exported.
			typ := cp.Type
			if star, ok := typ.(*ast.StarExpr); ok {
				typ = star.X
			}
			if sel, ok := typ.(*ast.SelectorExpr); ok {
				typ = sel.Sel
			}
			if id, ok := typ.(*ast.Ident); ok && id.IsExported() {
				fields.List = append(fields.List, &cp)
			}
			continue
		}
		var names []*ast.Ident
		for _, n := range cp.Names {
			if n.IsExported() {
				names = append(names, n)
			}
		}
		if len(names) == 0 {
			continue
		}
		cp.Names = names
		fields.List = append(fields.List, &cp)
	}
	return &ast.StructType{Struct: st.Struct, Fields: fields}
}

func render(t *testing.T, fset *token.FileSet, node any) string {
	t.Helper()
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, node); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}
