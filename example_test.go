package bulkgcd_test

import (
	"fmt"
	"math/big"

	"bulkgcd"
)

// ExampleGCD computes one GCD with the paper's Approximate Euclidean
// algorithm, on the running example of Tables I-III.
func ExampleGCD() {
	x := big.NewInt(1043915) // 1111,1110,1101,1100,1011
	y := big.NewInt(768955)  // 1011,1011,1011,1011,1011
	fmt.Println(bulkgcd.GCD(x, y))
	// Output: 5
}

// ExampleGCDWith selects a specific algorithm and inspects the iteration
// statistics the paper's Table IV reports.
func ExampleGCDWith() {
	x := big.NewInt(1043915)
	y := big.NewInt(768955)
	for _, alg := range []bulkgcd.Algorithm{bulkgcd.Binary, bulkgcd.Approximate} {
		g, st, err := bulkgcd.GCDWith(alg, x, y)
		if err != nil {
			panic(err)
		}
		fmt.Printf("(%s) %s: gcd %v in %d iterations\n", alg.Letter(), alg, g, st.Iterations)
	}
	// Output:
	// (C) Binary: gcd 5 in 24 iterations
	// (E) Approximate: gcd 5 in 8 iterations
}

// ExampleFindSharedPrimes runs the weak-key attack over a small corpus
// with one planted shared prime.
func ExampleFindSharedPrimes() {
	moduli, planted, err := bulkgcd.GenerateWeakCorpus(8, 128, 1, 4)
	if err != nil {
		panic(err)
	}
	report, err := bulkgcd.FindSharedPrimes(moduli, nil)
	if err != nil {
		panic(err)
	}
	for _, bk := range report.Broken {
		fmt.Printf("broke key %d (pair with %d), private exponent recovered: %v\n",
			bk.Index, bk.FoundWith, bk.D != nil)
	}
	fmt.Println("planted pair:", planted[0].I, planted[0].J)
	// Output:
	// broke key 5 (pair with 6), private exponent recovered: true
	// broke key 6 (pair with 5), private exponent recovered: true
	// planted pair: 5 6
}
