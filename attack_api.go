package bulkgcd

import (
	"context"
	"fmt"
	"io"
	"math/big"
	"time"

	"bulkgcd/internal/attack"
	"bulkgcd/internal/checkpoint"
	"bulkgcd/internal/engine"
	"bulkgcd/internal/mpnat"
	"bulkgcd/internal/obs"
	"bulkgcd/internal/rsakey"
)

// Engine selects the attack engine. The zero value is EnginePairs, the
// paper's all-pairs computation.
type Engine int

const (
	// EnginePairs is the paper's all-pairs GCD computation: every pair
	// (i, j) gets one GCD with the configured Algorithm. It supports
	// every feature: checkpointing, quarantine, per-pair statistics.
	EnginePairs Engine = iota
	// EngineBatch is the Bernstein product/remainder-tree batch GCD.
	// Asymptotically fastest, but Algorithm and early termination do not
	// apply and checkpointing is not supported.
	EngineBatch
	// EngineHybrid is the tiled product-filter engine: one filter GCD
	// against a cached tile subproduct proves most rows coprime, and only
	// rows that survive the filter descend to per-pair GCDs. Findings are
	// byte-identical to EnginePairs at every tile size.
	EngineHybrid
)

// Engines lists every engine.
var Engines = []Engine{EnginePairs, EngineBatch, EngineHybrid}

// kind maps the public enum onto the internal engine registry.
func (e Engine) kind() (engine.Kind, error) {
	switch e {
	case EnginePairs:
		return engine.Pairs, nil
	case EngineBatch:
		return engine.Batch, nil
	case EngineHybrid:
		return engine.Hybrid, nil
	}
	return 0, fmt.Errorf("bulkgcd: unknown engine %d", int(e))
}

// String returns the engine name: "pairs", "batch" or "hybrid".
func (e Engine) String() string {
	k, err := e.kind()
	if err != nil {
		return fmt.Sprintf("Engine(%d)", int(e))
	}
	return k.String()
}

// ParseEngine parses an engine name as accepted by the -engine flags of
// the cmd/ tools: "pairs" (or the legacy "allpairs"), "batch", "hybrid".
// Matching is case-insensitive.
func ParseEngine(s string) (Engine, error) {
	k, err := engine.ParseKind(s)
	if err != nil {
		return 0, fmt.Errorf("bulkgcd: unknown engine %q (want pairs, batch or hybrid)", s)
	}
	switch k {
	case engine.Batch:
		return EngineBatch, nil
	case engine.Hybrid:
		return EngineHybrid, nil
	default:
		return EnginePairs, nil
	}
}

// Kernel selects the per-pair GCD executor of the pairs and hybrid
// engines. The zero value is KernelScalar.
type Kernel int

const (
	// KernelScalar computes one GCD at a time, the default.
	KernelScalar Kernel = iota
	// KernelLanes computes a lane's worth of GCDs in lockstep over a
	// column-major operand matrix, the CPU analog of the paper's bulk GPU
	// execution. It requires the Approximate algorithm. Findings are
	// byte-identical to KernelScalar at every lane width; only throughput
	// and the iteration statistics differ.
	KernelLanes
)

// Kernels lists every kernel.
var Kernels = []Kernel{KernelScalar, KernelLanes}

// kind maps the public enum onto the internal kernel registry.
func (k Kernel) kind() (engine.KernelKind, error) {
	switch k {
	case KernelScalar:
		return engine.KernelScalar, nil
	case KernelLanes:
		return engine.KernelLanes, nil
	}
	return 0, fmt.Errorf("bulkgcd: unknown kernel %d", int(k))
}

// String returns the kernel name: "scalar" or "lanes".
func (k Kernel) String() string {
	ik, err := k.kind()
	if err != nil {
		return fmt.Sprintf("Kernel(%d)", int(k))
	}
	return ik.String()
}

// ParseKernel parses a kernel name as accepted by the -kernel flags of
// the cmd/ tools: "scalar" or "lanes". Matching is case-insensitive.
func ParseKernel(s string) (Kernel, error) {
	ik, err := engine.ParseKernelKind(s)
	if err != nil {
		return 0, fmt.Errorf("bulkgcd: unknown kernel %q (want scalar or lanes)", s)
	}
	if ik == engine.KernelLanes {
		return KernelLanes, nil
	}
	return KernelScalar, nil
}

// Attack is a configured weak-RSA-key attack. Build one with New and
// the With... options, then call Run; the zero configuration (plain
// New()) is the recommended default: all-pairs engine, Approximate
// Euclidean with early termination, e = 65537, one worker per CPU.
//
// An Attack is immutable after New and safe for concurrent Runs, except
// when WithCheckpoint, WithMetrics or WithTrace are set (concurrent runs
// would interleave on the shared file or writer).
type Attack struct {
	engine        Engine
	algorithm     Algorithm
	kernel        Kernel
	laneWidth     int
	noEarly       bool
	workers       int
	exponent      uint64
	groupSize     int
	tileSize      int
	subprodBudget int64
	quarantine    bool
	progress      func(done, total int64)
	metricsW      io.Writer
	traceW        io.Writer
	journalPath   string
}

// Option configures an Attack. Options are applied in order by New;
// later options win.
type Option func(*Attack)

// WithEngine selects the attack engine (default EnginePairs).
func WithEngine(e Engine) Option { return func(a *Attack) { a.engine = e } }

// WithAlgorithm selects the GCD algorithm for the pairs and hybrid
// engines (default Approximate). EngineBatch ignores it.
func WithAlgorithm(alg Algorithm) Option { return func(a *Attack) { a.algorithm = alg } }

// WithKernel selects the per-pair GCD executor of the pairs and hybrid
// engines (default KernelScalar). KernelLanes requires the Approximate
// algorithm and runs a lane's worth of GCDs in lockstep; findings are
// identical, throughput is higher on bulk corpora. EngineBatch ignores
// the kernel.
func WithKernel(k Kernel) Option { return func(a *Attack) { a.kernel = k } }

// WithLaneWidth sets the lane count of KernelLanes (default 16).
// Findings are identical at every width; only throughput changes.
func WithLaneWidth(l int) Option { return func(a *Attack) { a.laneWidth = l } }

// WithoutEarlyTermination disables the s/2 early-termination shortcut.
// Early termination never misses a shared prime of RSA moduli; turning
// it off is only useful for measurement.
func WithoutEarlyTermination() Option { return func(a *Attack) { a.noEarly = true } }

// WithWorkers sets the worker-pool size (default: GOMAXPROCS).
func WithWorkers(n int) Option { return func(a *Attack) { a.workers = n } }

// WithExponent sets the RSA public exponent used for private-key
// recovery (default 65537).
func WithExponent(e uint64) Option { return func(a *Attack) { a.exponent = e } }

// WithGroupSize sets the pairs engine's scheduling group size, the
// paper's r parameter (default: the corpus size). Findings are
// identical at every value.
func WithGroupSize(r int) Option { return func(a *Attack) { a.groupSize = r } }

// WithTileSize sets the hybrid engine's tile width T (default 64).
// Findings are identical at every value; only the filter's selectivity
// and the subproduct cache footprint change.
func WithTileSize(t int) Option { return func(a *Attack) { a.tileSize = t } }

// WithSubproductBudget caps the bytes the hybrid engine may hold in its
// tile-subproduct cache; least-recently-used entries are evicted and
// rebuilt on demand. 0 (the default) means unlimited.
func WithSubproductBudget(bytes int64) Option { return func(a *Attack) { a.subprodBudget = bytes } }

// WithQuarantine makes the pairs and hybrid engines skip zero or even
// moduli and report them in Report.Quarantined instead of failing the
// run. EngineBatch rejects it (the product tree cannot excise inputs).
func WithQuarantine() Option { return func(a *Attack) { a.quarantine = true } }

// WithProgress installs a progress callback receiving completed/total
// counts: pairs for the pairs and hybrid engines (the hybrid counts
// filter-skipped pairs as done — they are proven coprime), tree
// operations for batch GCD.
func WithProgress(fn func(done, total int64)) Option { return func(a *Attack) { a.progress = fn } }

// WithMetrics writes the run's metrics to w in Prometheus text
// exposition format after the run completes. The counters and
// histograms cover the engine internals: per-pair GCDs, hybrid filter
// hits and skips, subproduct-cache behaviour, checkpoint activity.
func WithMetrics(w io.Writer) Option { return func(a *Attack) { a.metricsW = w } }

// WithTrace streams structured run events (JSON Lines, one object per
// line) to w as the run executes: run/block spans, quarantine and
// panic-recovery events.
func WithTrace(w io.Writer) Option { return func(a *Attack) { a.traceW = w } }

// WithCheckpoint journals run progress to the file at path so an
// interrupted run can resume. If the file already holds a journal that
// matches this exact run (same corpus, engine and configuration), the
// run resumes after the recorded work units and appends; a missing,
// stale or foreign journal is replaced and the run starts over.
// Supported by EnginePairs and EngineHybrid; EngineBatch rejects it.
func WithCheckpoint(path string) Option { return func(a *Attack) { a.journalPath = path } }

// New builds an Attack from the options. New never fails;
// configuration errors (an unknown engine or algorithm, an option the
// selected engine does not support) surface from Run.
func New(opts ...Option) *Attack {
	a := &Attack{
		engine:    EnginePairs,
		algorithm: Approximate,
		exponent:  rsakey.DefaultExponent,
	}
	for _, o := range opts {
		o(a)
	}
	return a
}

// BadPair is one pair computation quarantined after a worker panic; the
// run completed without it.
type BadPair struct {
	// I, J are the corpus indices of the pair.
	I, J int
	// Err is the recovered panic message.
	Err string
}

// QuarantinedModulus is one input modulus excluded from a run under
// WithQuarantine, with the validation reason ("zero", "even").
type QuarantinedModulus struct {
	Index  int
	Reason string
}

// Report is the outcome of an Attack run.
type Report struct {
	// Broken lists factored keys ordered by index (one entry per
	// modulus, even when several pairs reveal it).
	Broken []BrokenKey
	// Duplicates lists index pairs of identical moduli: compromised, but
	// not factorable by the GCD attack.
	Duplicates [][2]int
	// Engine is the engine that ran.
	Engine Engine
	// Pairs is the number of pairs accounted for, including pairs
	// restored from a resumed journal and pairs the hybrid filter proved
	// coprime. A complete pairs/hybrid run has Pairs == TotalPairs; batch
	// GCD reports zero (it has no per-pair accounting).
	Pairs int64
	// TotalPairs is m(m-1)/2 over the active moduli (zero for batch GCD).
	TotalPairs int64
	// ResumedPairs counts pairs replayed from the checkpoint journal.
	ResumedPairs int64
	// Stats aggregates the statistics of the individually computed GCDs.
	// The hybrid engine's filter GCDs are excluded — Stats counts only
	// the full per-pair descents, so comparing it across engines shows
	// the filter's savings directly.
	Stats Stats
	// Elapsed is the wall-clock time of the engine run.
	Elapsed time.Duration
	// Workers is the pool size actually used.
	Workers int
	// Canceled reports that the context was canceled mid-run: the
	// findings cover only the completed work units.
	Canceled bool
	// BadPairs lists pair computations quarantined after worker panics.
	BadPairs []BadPair
	// Quarantined lists input moduli excluded under WithQuarantine.
	Quarantined []QuarantinedModulus
}

// Run executes the attack over the corpus of RSA moduli. All moduli
// must be positive; zero or even moduli fail the run unless
// WithQuarantine is set. On context cancellation the run stops at the
// next work-unit boundary and returns the findings completed so far
// with Report.Canceled set, not an error.
func (a *Attack) Run(ctx context.Context, moduli []*big.Int) (*Report, error) {
	kind, err := a.engine.kind()
	if err != nil {
		return nil, err
	}
	ialg, err := a.algorithm.internalAlg()
	if err != nil {
		return nil, err
	}
	ikern, err := a.kernel.kind()
	if err != nil {
		return nil, err
	}
	ms := make([]*mpnat.Nat, len(moduli))
	for i, m := range moduli {
		if m == nil || m.Sign() < 0 {
			return nil, fmt.Errorf("bulkgcd: modulus %d is not positive", i)
		}
		if !a.quarantine {
			if m.Sign() == 0 {
				return nil, fmt.Errorf("bulkgcd: modulus %d is not positive", i)
			}
			if m.Bit(0) == 0 {
				return nil, fmt.Errorf("bulkgcd: modulus %d is even (not an RSA modulus)", i)
			}
		}
		ms[i] = mpnat.FromBig(m)
	}

	opt := attack.Options{
		Config: engine.Config{
			Workers:  a.workers,
			Progress: a.progress,
		},
		Algorithm:     ialg,
		Early:         !a.noEarly,
		GroupSize:     a.groupSize,
		Exponent:      a.exponent,
		Engine:        kind,
		Quarantine:    a.quarantine,
		TileSize:      a.tileSize,
		SubprodBudget: a.subprodBudget,
		Kernel:        ikern,
		LaneWidth:     a.laneWidth,
	}
	if a.metricsW != nil {
		opt.Metrics = obs.NewRegistry()
	}
	if a.traceW != nil {
		opt.Trace = obs.NewTracer(a.traceW)
	}
	if a.journalPath != "" {
		hdr, err := attack.JournalHeader(ms, opt)
		if err != nil {
			return nil, err
		}
		if st, lerr := checkpoint.Load(a.journalPath); lerr == nil && st.Verify(hdr) == nil {
			w, err := checkpoint.OpenAppend(a.journalPath)
			if err != nil {
				return nil, err
			}
			opt.Resume = st
			opt.Checkpoint = w
		} else {
			w, err := checkpoint.Create(a.journalPath)
			if err != nil {
				return nil, err
			}
			opt.Checkpoint = w
		}
		defer opt.Checkpoint.Close()
	}

	rep, err := attack.RunContext(ctx, ms, opt)
	if err != nil {
		return nil, err
	}
	out := &Report{
		Duplicates:   rep.Duplicates,
		Engine:       a.engine,
		Pairs:        rep.Bulk.Pairs,
		TotalPairs:   rep.Bulk.Total,
		ResumedPairs: rep.Bulk.ResumedPairs,
		Elapsed:      rep.Bulk.Elapsed,
		Workers:      rep.Bulk.Workers,
		Canceled:     rep.Canceled,
		Stats: Stats{
			Iterations:  rep.Bulk.Stats.Iterations,
			BetaNonZero: rep.Bulk.Stats.BetaNonZero,
			MemOps:      rep.Bulk.Stats.MemOps,
		},
	}
	for _, bk := range rep.Broken {
		out.Broken = append(out.Broken, BrokenKey{
			Index: bk.Index, N: bk.N, P: bk.P, Q: bk.Q, D: bk.D, FoundWith: bk.FoundWith,
		})
	}
	for _, bp := range rep.BadPairs {
		out.BadPairs = append(out.BadPairs, BadPair{I: bp.I, J: bp.J, Err: bp.Err})
	}
	for _, q := range rep.Quarantined {
		out.Quarantined = append(out.Quarantined, QuarantinedModulus{Index: q.Index, Reason: q.Reason})
	}
	if a.metricsW != nil {
		if err := opt.Metrics.Snapshot().WritePrometheus(a.metricsW); err != nil {
			return out, fmt.Errorf("bulkgcd: writing metrics: %w", err)
		}
	}
	return out, nil
}
