module bulkgcd

go 1.22
