package bulkgcd

// Doc parity: DESIGN.md section 5c's metric table and the obs help
// registry (populated by each engine package's init) must agree in both
// directions. A new metric without a doc row, or a doc row for a metric
// that no longer registers, fails here.

import (
	"os"
	"regexp"
	"strings"
	"testing"

	_ "bulkgcd/internal/attack"
	_ "bulkgcd/internal/batchgcd"
	_ "bulkgcd/internal/bulk"
	_ "bulkgcd/internal/fleet"
	"bulkgcd/internal/gcd"
	"bulkgcd/internal/obs"
	_ "bulkgcd/internal/registry"
)

// designMetricNames extracts every backticked metric name from the 5c
// table rows, expanding the `<alg>` placeholder over gcd.Algorithms.
func designMetricNames(t *testing.T) map[string]bool {
	t.Helper()
	data, err := os.ReadFile("DESIGN.md")
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	start := strings.Index(text, "## 5c.")
	if start < 0 {
		t.Fatal("DESIGN.md has no section 5c")
	}
	rest := text[start:]
	if end := strings.Index(rest[1:], "\n## "); end >= 0 {
		rest = rest[:end+1]
	}
	token := regexp.MustCompile("`([a-z][a-z0-9_<>]*_[a-z0-9_<>]*)`")
	names := map[string]bool{}
	for _, line := range strings.Split(rest, "\n") {
		if !strings.HasPrefix(line, "|") {
			continue
		}
		for _, m := range token.FindAllStringSubmatch(line, -1) {
			name := m[1]
			if strings.Contains(name, "<alg>") {
				for _, alg := range gcd.Algorithms {
					names[strings.ReplaceAll(name, "<alg>", strings.ToLower(alg.String()))] = true
				}
				continue
			}
			names[name] = true
		}
	}
	if len(names) == 0 {
		t.Fatal("no metric names parsed from the 5c table")
	}
	return names
}

func TestMetricsDocParity(t *testing.T) {
	doc := designMetricNames(t)
	registered := map[string]bool{}
	for _, name := range obs.HelpNames() {
		registered[name] = true
	}
	for name := range registered {
		if !doc[name] {
			t.Errorf("metric %s registers help but has no row in DESIGN.md section 5c", name)
		}
	}
	for name := range doc {
		if !registered[name] {
			t.Errorf("DESIGN.md section 5c documents %s but no package registers it", name)
		}
	}
}
