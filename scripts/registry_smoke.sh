#!/usr/bin/env bash
# Registry smoke test: a real `rsafactor watch` server over loopback
# HTTP, fed a planted-weak-pair corpus in three waves with a hard kill
# (SIGKILL) between waves two and three. After the restart the replayed
# registry must have lost nothing that was acknowledged, and the final
# /broken set must diff clean against a one-shot batch-GCD run of the
# same corpus. Every acknowledged verdict survives the kill because the
# server journals before it answers.
set -euo pipefail

cd "$(dirname "$0")/.."
workdir=$(mktemp -d)
cleanup() {
    local pids
    pids=$(jobs -p)
    [ -n "$pids" ] && kill $pids 2>/dev/null
    wait 2>/dev/null
    rm -rf "$workdir"
    return 0
}
trap cleanup EXIT

go build -o "$workdir/rsafactor" ./cmd/rsafactor
go build -o "$workdir/keygen" ./cmd/keygen

"$workdir/keygen" -n 36 -bits 256 -weak 4 -seed 7 -o "$workdir/corpus.txt"

echo "== one-shot batch-GCD oracle =="
"$workdir/rsafactor" -in "$workdir/corpus.txt" -engine batch > "$workdir/oracle.out"
# keygen indexes keys from 1 in its log but rsafactor reports 0-based
# corpus indices, same as /broken.
grep -E '^BROKEN key' "$workdir/oracle.out" | awk '{print $3}' | sort -n \
    > "$workdir/oracle.idx"
[ -s "$workdir/oracle.idx" ] || { echo "oracle found no broken keys" >&2; exit 1; }

# Strip the keygen header comment so wave line counts equal key counts.
grep -v '^#' "$workdir/corpus.txt" > "$workdir/keys.txt"
sed -n '1,12p'  "$workdir/keys.txt" > "$workdir/wave1.txt"
sed -n '13,24p' "$workdir/keys.txt" > "$workdir/wave2.txt"
sed -n '25,36p' "$workdir/keys.txt" > "$workdir/wave3.txt"

addr=127.0.0.1:39419
base="http://$addr"
wait_bind() {
    local pid=$1
    for _ in $(seq 1 100); do
        if (exec 3<>"/dev/tcp/127.0.0.1/${addr##*:}") 2>/dev/null; then
            return 0
        fi
        kill -0 "$pid" 2>/dev/null || { cat "$workdir/watch.err"; echo "watch server died"; exit 1; }
        sleep 0.1
    done
    echo "watch server never bound $addr" >&2
    exit 1
}

echo "== life 1: two waves, then SIGKILL =="
"$workdir/rsafactor" watch -dir "$workdir/reg" -addr "$addr" \
    > "$workdir/watch1.out" 2> "$workdir/watch.err" &
watch=$!
wait_bind "$watch"

curl -sf --data-binary @"$workdir/wave1.txt" "$base/submit?sync=1" > "$workdir/job1.json"
curl -sf --data-binary @"$workdir/wave2.txt" "$base/submit?sync=1" > "$workdir/job2.json"
for j in 1 2; do
    state=$(jq -r .state "$workdir/job$j.json")
    n=$(jq '.verdicts | length' "$workdir/job$j.json")
    if [ "$state" != done ] || [ "$n" -ne 12 ]; then
        echo "wave $j job state=$state verdicts=$n" >&2
        cat "$workdir/job$j.json" >&2
        exit 1
    fi
done

# Hard kill: no shutdown hook runs. The durability contract is that
# everything already acknowledged above survives.
kill -9 "$watch"
wait "$watch" 2>/dev/null || true

echo "== life 2: restart, verify replay, final wave =="
"$workdir/rsafactor" watch -dir "$workdir/reg" -addr "$addr" \
    -report "$workdir/report.json" \
    > "$workdir/watch2.out" 2>> "$workdir/watch.err" &
watch=$!
wait_bind "$watch"

keys=$(curl -sf "$base/registry" | jq .Keys)
if [ "$keys" -ne 24 ]; then
    echo "registry lost acknowledged keys across SIGKILL: $keys/24" >&2
    exit 1
fi

curl -sf --data-binary @"$workdir/wave3.txt" "$base/submit?sync=1" > "$workdir/job3.json"
[ "$(jq -r .state "$workdir/job3.json")" = done ]

echo "== diff /broken against the oracle =="
curl -sf "$base/broken" > "$workdir/broken.json"
jq -r '.[].index' "$workdir/broken.json" | sort -n > "$workdir/broken.idx"
diff "$workdir/oracle.idx" "$workdir/broken.idx"

# Every reported g must be a nontrivial divisor of its modulus, and must
# match a factor the oracle recovered (p or q of the same key).
python3 - "$workdir/keys.txt" "$workdir/broken.json" "$workdir/oracle.out" <<'EOF'
import json, re, sys
corpus = [int(l, 16) for l in open(sys.argv[1]) if l.strip()]
broken = json.load(open(sys.argv[2]))
oracle = {}
idx = None
for line in open(sys.argv[3]):
    m = re.match(r'BROKEN key (\d+)', line)
    if m:
        idx = int(m.group(1)); oracle[idx] = set()
    m = re.match(r'  [pq] = ([0-9a-f]+)', line)
    if m and idx is not None:
        oracle[idx].add(int(m.group(1), 16))
assert broken, "empty /broken"
for b in broken:
    i, g = b["index"], int(b["g"], 16)
    n = corpus[i]
    assert 1 < g < n and n % g == 0, f"key {i}: g is not a nontrivial divisor"
    assert g in oracle[i], f"key {i}: g={g:x} not among oracle factors"
print(f"all {len(broken)} g values verified against the oracle factors")
EOF

curl -sf "$base/metrics" | grep -q '^registry_submissions_total'
replayed=$(curl -sf "$base/registry" | jq .Replayed)

echo "== graceful shutdown + report =="
kill -TERM "$watch"
wait "$watch"
grep -q 'shutting down' "$workdir/watch2.out"
jq -e '.tool == "rsafactor-watch" and .summary.keys == 36 and .summary.broken > 0' \
    "$workdir/report.json" > /dev/null

broken_n=$(jq length "$workdir/broken.json")
echo "registry smoke OK: 36 keys in 3 waves across a SIGKILL ($replayed replayed), $broken_n broken keys identical to the batch oracle"
