#!/usr/bin/env bash
# Fleet smoke test: a real coordinator process plus two worker processes
# over loopback HTTP, on a corpus with planted weak pairs. The
# coordinator's findings must diff clean against a single-process run of
# the same corpus, the journal must be compacted to one record per cell,
# and every process must exit 0.
set -euo pipefail

cd "$(dirname "$0")/.."
workdir=$(mktemp -d)
cleanup() {
    local pids
    pids=$(jobs -p)
    [ -n "$pids" ] && kill $pids 2>/dev/null
    wait 2>/dev/null
    rm -rf "$workdir"
    return 0
}
trap cleanup EXIT

go build -o "$workdir/rsafactor" ./cmd/rsafactor
go build -o "$workdir/keygen" ./cmd/keygen

"$workdir/keygen" -n 24 -bits 256 -weak 3 -seed 99 \
    -o "$workdir/corpus.txt" -truth "$workdir/truth.txt"

echo "== single-process oracle =="
"$workdir/rsafactor" -in "$workdir/corpus.txt" -engine hybrid -tile 6 \
    -truth "$workdir/truth.txt" > "$workdir/local.out"

echo "== coordinator + 2 workers =="
addr=127.0.0.1:39317
"$workdir/rsafactor" -in "$workdir/corpus.txt" -serve "$addr" -tile 6 \
    -lease-ttl 5s -checkpoint "$workdir/fleet.jsonl" -truth "$workdir/truth.txt" \
    > "$workdir/fleet.out" 2> "$workdir/fleet.err" &
coord=$!

# Wait for the coordinator to bind before starting workers (their
# backoff would absorb the race, but the smoke test should not rely on
# it).
for _ in $(seq 1 100); do
    if (exec 3<>"/dev/tcp/127.0.0.1/${addr##*:}") 2>/dev/null; then
        break
    fi
    kill -0 "$coord" 2>/dev/null || { cat "$workdir/fleet.err"; echo "coordinator died"; exit 1; }
    sleep 0.1
done

"$workdir/rsafactor" -in "$workdir/corpus.txt" -worker "$addr" -tile 6 -worker-id w1 \
    > "$workdir/w1.out" & w1=$!
"$workdir/rsafactor" -in "$workdir/corpus.txt" -worker "$addr" -tile 6 -worker-id w2 \
    > "$workdir/w2.out" & w2=$!

wait "$w1"; wait "$w2"
wait "$coord"

echo "== diff findings =="
filter() { grep -E '^(BROKEN|DUPLICATE|  [npqd] =|summary:|verification:)' "$1"; }
diff <(filter "$workdir/local.out") <(filter "$workdir/fleet.out")

grep -q 'verification: all 3 planted pairs recovered' "$workdir/fleet.out"
grep -qE 'worker w1: [0-9]+ cells completed' "$workdir/w1.out"
grep -qE 'worker w2: [0-9]+ cells completed' "$workdir/w2.out"

# The compacted journal must hold exactly header + one record per cell.
cells=$(grep -c '"unit"' "$workdir/fleet.jsonl")
units=$(grep -o '"units":[0-9]*' "$workdir/fleet.jsonl" | head -1 | cut -d: -f2)
if [ "$cells" -ne "$units" ]; then
    echo "journal has $cells records for $units cells" >&2
    exit 1
fi

echo "fleet smoke OK: $cells cells, findings identical to single-process run"
