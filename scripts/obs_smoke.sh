#!/usr/bin/env bash
# Observability smoke test: a real coordinator plus two workers over
# loopback HTTP with -trace and -report set, validating every fleet
# observability surface end to end — the merged JSONL trace (one
# fleet_run span, one cell span per cell, every parent resolvable), the
# per-cell attribution endpoint, the /timeline ring, the /dashboard
# page, Prometheus HELP exposition, and the report's attribution tables.
set -euo pipefail

cd "$(dirname "$0")/.."
workdir=$(mktemp -d)
cleanup() {
    local pids
    pids=$(jobs -p)
    [ -n "$pids" ] && kill $pids 2>/dev/null
    wait 2>/dev/null
    rm -rf "$workdir"
    return 0
}
trap cleanup EXIT

fetch() { # fetch <url> <outfile>
    if command -v curl >/dev/null 2>&1; then
        curl -fsS "$1" -o "$2"
    else
        wget -qO "$2" "$1"
    fi
}

go build -o "$workdir/rsafactor" ./cmd/rsafactor
go build -o "$workdir/keygen" ./cmd/keygen

"$workdir/keygen" -n 24 -bits 256 -weak 3 -seed 99 \
    -o "$workdir/corpus.txt" -truth "$workdir/truth.txt"

echo "== coordinator (trace + report) + 2 workers =="
addr=127.0.0.1:39419
"$workdir/rsafactor" -in "$workdir/corpus.txt" -serve "$addr" -tile 6 \
    -lease-ttl 5s -trace "$workdir/fleet-trace.jsonl" -report "$workdir/report.json" \
    -truth "$workdir/truth.txt" \
    > "$workdir/fleet.out" 2> "$workdir/fleet.err" &
coord=$!

for _ in $(seq 1 100); do
    if (exec 3<>"/dev/tcp/127.0.0.1/${addr##*:}") 2>/dev/null; then
        break
    fi
    kill -0 "$coord" 2>/dev/null || { cat "$workdir/fleet.err"; echo "coordinator died"; exit 1; }
    sleep 0.1
done

# Scrape the live surfaces before the workers start: the scan on this
# corpus finishes in well under a second, so the only deterministic
# window is the idle coordinator — /timeline records its first point at
# startup, /fleet/cells already carries the trace identity, and the
# dashboard is static. Completion-dependent facts are validated from
# the trace and report files after exit.
fetch "http://$addr/timeline"    "$workdir/timeline.json"
fetch "http://$addr/dashboard"   "$workdir/dashboard.html"
fetch "http://$addr/fleet/cells" "$workdir/cells_live.json"
fetch "http://$addr/metrics"     "$workdir/metrics.txt"

"$workdir/rsafactor" -in "$workdir/corpus.txt" -worker "$addr" -tile 6 -worker-id w1 \
    > "$workdir/w1.out" & w1=$!
"$workdir/rsafactor" -in "$workdir/corpus.txt" -worker "$addr" -tile 6 -worker-id w2 \
    > "$workdir/w2.out" & w2=$!

wait "$w1"; wait "$w2"
wait "$coord"

echo "== validate live surfaces =="
python3 - "$workdir" <<'EOF'
import json, sys
wd = sys.argv[1]

tl = json.load(open(f"{wd}/timeline.json"))
assert tl["capacity"] > 0, "timeline has no capacity"
assert len(tl["points"]) >= 1, "timeline recorded no points"

html = open(f"{wd}/dashboard.html").read()
for needle in ("<html", "timeline", "fleet/cells"):
    assert needle in html, f"dashboard page missing {needle!r}"

cells = json.load(open(f"{wd}/cells_live.json"))
assert cells["trace"], "live cells response carries no trace id"
assert len(cells["cells"]) > 0, "cells table is empty before the scan"
EOF

echo "== validate merged trace =="
python3 - "$workdir" <<'EOF'
import json, sys
wd = sys.argv[1]

events = [json.loads(l) for l in open(f"{wd}/fleet-trace.jsonl") if l.strip()]
assert events, "trace file is empty"
spans = [e for e in events if e["kind"] == "span"]
runs = [s for s in spans if s["name"] == "fleet_run"]
assert len(runs) == 1, f"{len(runs)} fleet_run spans, want 1"
run = runs[0]
assert run["span"] == "coordinator:1", run["span"]

cells = [s for s in spans if s["name"] == "cell"]
assert cells, "no cell spans in the trace"
seen = set()
for c in cells:
    assert c["trace"] == run["trace"], "cell span outside the fleet trace"
    assert c["parent"] == run["span"], f"cell {c['attrs']['cell']} orphaned"
    assert c["node"] != "coordinator", "cell span attributed to the coordinator"
    cid = c["attrs"]["cell"]
    assert cid not in seen, f"cell {cid} has two spans"
    seen.add(cid)

ids = {s["span"] for s in spans}
for e in events:
    if e.get("parent"):
        assert e["parent"] in ids, f"dangling parent {e['parent']}"
print(f"trace OK: {len(cells)} cell spans under {run['span']}, {len(events)} events")
EOF

echo "== validate report attribution =="
python3 - "$workdir" <<'EOF'
import json, sys
wd = sys.argv[1]

rep = json.load(open(f"{wd}/report.json"))
assert rep["params"]["mode"] == "fleet-coordinator"
cells = rep["tables"]["fleet_cells"]
workers = rep["tables"]["fleet_workers"]
assert cells and workers, "report attribution tables are empty"
assert rep["summary"]["cells"] == len(cells), "attribution table does not cover every cell"
for c in cells:
    assert c["state"] == "completed", f"cell {c['unit']} is {c['state']}"
    assert c["leases"] >= 1 and c["wall_seconds"] > 0
assert sum(w["completed"] for w in workers) == len(cells)
print(f"report OK: {len(cells)} cells attributed across {len(workers)} workers")
EOF

grep -q 'verification: all 3 planted pairs recovered' "$workdir/fleet.out"
echo "obs smoke OK"
