package bulkgcd

import (
	"bytes"
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGCDMatchesBig(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		x := new(big.Int).Rand(r, new(big.Int).Lsh(big.NewInt(1), uint(1+r.Intn(400))))
		y := new(big.Int).Rand(r, new(big.Int).Lsh(big.NewInt(1), uint(1+r.Intn(400))))
		want := new(big.Int).GCD(nil, nil, x, y)
		if got := GCD(x, y); got.Cmp(want) != 0 {
			t.Fatalf("GCD(%v,%v) = %v, want %v", x, y, got, want)
		}
	}
}

func TestGCDHandlesSignsZerosAndEvens(t *testing.T) {
	cases := []struct{ x, y, want int64 }{
		{0, 0, 0},
		{0, 12, 12},
		{12, 0, 12},
		{-12, 18, 6},
		{12, -18, 6},
		{-12, -18, 6},
		{1 << 20, 1 << 10, 1 << 10},
		{48, 36, 12},
		{1043915, 768955, 5},
	}
	for _, c := range cases {
		if got := GCD(big.NewInt(c.x), big.NewInt(c.y)); got.Int64() != c.want {
			t.Errorf("GCD(%d,%d) = %v, want %d", c.x, c.y, got, c.want)
		}
	}
}

func TestGCDWithAllAlgorithmsAgree(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 50; i++ {
		x := new(big.Int).Rand(r, new(big.Int).Lsh(big.NewInt(1), 300))
		y := new(big.Int).Rand(r, new(big.Int).Lsh(big.NewInt(1), 300))
		want := new(big.Int).GCD(nil, nil, x, y)
		for _, alg := range Algorithms {
			got, st, err := GCDWith(alg, x, y)
			if err != nil {
				t.Fatal(err)
			}
			if got.Cmp(want) != 0 {
				t.Fatalf("%v wrong", alg)
			}
			if x.Sign() != 0 && y.Sign() != 0 && st.Iterations == 0 {
				t.Fatalf("%v reported zero iterations", alg)
			}
		}
	}
}

func TestGCDWithUnknownAlgorithm(t *testing.T) {
	if _, _, err := GCDWith(Algorithm(99), big.NewInt(3), big.NewInt(5)); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestGCDQuickProperty(t *testing.T) {
	f := func(a, b uint64) bool {
		x := new(big.Int).SetUint64(a)
		y := new(big.Int).SetUint64(b)
		g := GCD(x, y)
		if a == 0 && b == 0 {
			return g.Sign() == 0
		}
		// g divides both and matches the stdlib.
		want := new(big.Int).GCD(nil, nil, x, y)
		return g.Cmp(want) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestAlgorithmNamesAndLetters(t *testing.T) {
	if Approximate.String() != "Approximate" || Approximate.Letter() != "E" {
		t.Error("Approximate metadata wrong")
	}
	if Original.Letter() != "A" || Binary.Letter() != "C" {
		t.Error("letters wrong")
	}
	if Algorithm(99).Letter() != "?" || Algorithm(99).String() != "Algorithm(99)" {
		t.Error("out-of-range handling wrong")
	}
	var zero Algorithm
	if zero != Approximate {
		t.Error("zero value is not Approximate")
	}
}

func TestEndToEndAttack(t *testing.T) {
	moduli, planted, err := GenerateWeakCorpus(16, 128, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := FindSharedPrimes(moduli, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pairs != 16*15/2 {
		t.Fatalf("pairs = %d", rep.Pairs)
	}
	if len(rep.Broken) != 4 {
		t.Fatalf("broke %d keys, want 4", len(rep.Broken))
	}
	wantIdx := map[int]*big.Int{}
	for _, pp := range planted {
		wantIdx[pp.I] = pp.P
		wantIdx[pp.J] = pp.P
	}
	for _, bk := range rep.Broken {
		p, ok := wantIdx[bk.Index]
		if !ok {
			t.Fatalf("unexpected broken index %d", bk.Index)
		}
		if bk.P.Cmp(p) != 0 && bk.Q.Cmp(p) != 0 {
			t.Fatalf("key %d factored without planted prime", bk.Index)
		}
		if bk.D == nil {
			t.Fatalf("key %d: no private exponent", bk.Index)
		}
		if new(big.Int).Mul(bk.P, bk.Q).Cmp(bk.N) != 0 {
			t.Fatalf("key %d: P*Q != N", bk.Index)
		}
	}
}

func TestAttackOptionsVariants(t *testing.T) {
	moduli, _, err := GenerateWeakCorpus(10, 128, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range Algorithms {
		rep, err := FindSharedPrimes(moduli, &AttackOptions{
			Algorithm:             alg,
			DisableEarlyTerminate: alg == Binary,
			Workers:               2,
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Broken) != 2 {
			t.Fatalf("%v: broke %d keys, want 2", alg, len(rep.Broken))
		}
	}
}

func TestFindSharedPrimesValidation(t *testing.T) {
	odd := big.NewInt(15)
	if _, err := FindSharedPrimes([]*big.Int{odd, big.NewInt(4)}, nil); err == nil {
		t.Error("even modulus accepted")
	}
	if _, err := FindSharedPrimes([]*big.Int{odd, big.NewInt(-3)}, nil); err == nil {
		t.Error("negative modulus accepted")
	}
	if _, err := FindSharedPrimes([]*big.Int{odd, nil}, nil); err == nil {
		t.Error("nil modulus accepted")
	}
	if _, err := FindSharedPrimes([]*big.Int{odd, odd}, &AttackOptions{Algorithm: Algorithm(9)}); err == nil {
		t.Error("bad algorithm accepted")
	}
}

func TestCorpusRoundTripPublicAPI(t *testing.T) {
	moduli, _, err := GenerateWeakCorpus(6, 64, 0, 9)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCorpus(&buf, moduli, "public API round trip"); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCorpus(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range moduli {
		if got[i].Cmp(moduli[i]) != 0 {
			t.Fatalf("modulus %d mismatch", i)
		}
	}
	if err := WriteCorpus(&buf, []*big.Int{nil}, ""); err == nil {
		t.Error("nil modulus accepted by WriteCorpus")
	}
}

func TestGenerateWeakCorpusValidation(t *testing.T) {
	if _, _, err := GenerateWeakCorpus(0, 64, 0, 1); err == nil {
		t.Error("count 0 accepted")
	}
	if _, _, err := GenerateWeakCorpus(4, 64, 3, 1); err == nil {
		t.Error("too many weak pairs accepted")
	}
}

// TestBatchGCDOption: the public batch-GCD switch finds the same keys as
// the all-pairs default.
func TestBatchGCDOption(t *testing.T) {
	moduli, _, err := GenerateWeakCorpus(14, 128, 2, 21)
	if err != nil {
		t.Fatal(err)
	}
	pairwise, err := FindSharedPrimes(moduli, nil)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := FindSharedPrimes(moduli, &AttackOptions{BatchGCD: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(batch.Broken) != len(pairwise.Broken) {
		t.Fatalf("batch broke %d, pairwise %d", len(batch.Broken), len(pairwise.Broken))
	}
	for i := range batch.Broken {
		if batch.Broken[i].Index != pairwise.Broken[i].Index ||
			batch.Broken[i].P.Cmp(pairwise.Broken[i].P) != 0 {
			t.Fatalf("engines disagree on broken key %d", i)
		}
	}
}

func TestConstantTimeGCD(t *testing.T) {
	r := rand.New(rand.NewSource(70))
	for i := 0; i < 200; i++ {
		x := new(big.Int).Rand(r, new(big.Int).Lsh(big.NewInt(1), uint(1+r.Intn(400))))
		y := new(big.Int).Rand(r, new(big.Int).Lsh(big.NewInt(1), uint(1+r.Intn(400))))
		want := new(big.Int).GCD(nil, nil, x, y)
		if got := ConstantTimeGCD(x, y); got.Cmp(want) != 0 {
			t.Fatalf("ConstantTimeGCD(%v,%v) = %v, want %v", x, y, got, want)
		}
	}
	cases := []struct{ x, y, want int64 }{
		{0, 0, 0}, {0, 12, 12}, {12, 0, 12}, {-12, 18, 6}, {48, 36, 12}, {1043915, 768955, 5},
	}
	for _, c := range cases {
		if got := ConstantTimeGCD(big.NewInt(c.x), big.NewInt(c.y)); got.Int64() != c.want {
			t.Errorf("ConstantTimeGCD(%d,%d) = %v, want %d", c.x, c.y, got, c.want)
		}
	}
}
