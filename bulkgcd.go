// Package bulkgcd breaks weak RSA keys by bulk GCD computation, a Go
// reproduction of "Bulk GCD Computation Using a GPU to Break Weak RSA
// Keys" (Fujita, Nakano, Ito; IEEE IPDPSW 2015).
//
// The package exposes three layers:
//
//   - Pairwise GCD with the paper's algorithms ([GCD], [GCDWith]): the
//     contribution is the Approximate Euclidean algorithm, which converges
//     like the quotient-based Euclid while paying only one 64-bit division
//     per iteration.
//
//   - The attack ([New], [Attack.Run]): GCD over all pairs of a corpus of
//     RSA moduli, factoring every pair that shares a prime and
//     reconstructing the private keys. Three engines are available
//     ([EnginePairs], [EngineBatch], [EngineHybrid]) behind one
//     functional-options API:
//
//     rep, err := bulkgcd.New(
//     bulkgcd.WithEngine(bulkgcd.EngineHybrid),
//     bulkgcd.WithWorkers(8),
//     ).Run(ctx, moduli)
//
//   - Corpus utilities ([GenerateWeakCorpus], [ReadCorpus], [WriteCorpus])
//     to synthesize and exchange key sets with planted weak pairs.
//
// The GPU of the paper is replaced by two faithful substitutes, available
// through the internal packages and the cmd/ tools: a host-parallel bulk
// executor (goroutine pool, zero allocation per pair) and a simulator of
// the UMM model the paper itself uses to analyse GPU memory behaviour.
package bulkgcd

import (
	"context"
	"fmt"
	"io"
	"math/big"

	"bulkgcd/internal/corpus"
	"bulkgcd/internal/gcd"
	"bulkgcd/internal/mpnat"
	"bulkgcd/internal/rsakey"
)

// Algorithm selects a GCD algorithm. The zero value is Approximate, the
// paper's contribution and the recommended default.
type Algorithm int

const (
	// Approximate is (E), the paper's Approximate Euclidean algorithm.
	// It is the zero value, the default, and the fastest on every input
	// size.
	Approximate Algorithm = iota
	// Original is (A), the classical modulo-based Euclid.
	Original
	// Fast is (B), exact-quotient Euclid with odd quotients and rshift.
	Fast
	// Binary is (C), Stein's subtract-and-halve algorithm.
	Binary
	// FastBinary is (D), subtract-and-strip-zeros.
	FastBinary
)

// internalAlg maps the public enum onto the engine's (A)-(E) ids.
func (a Algorithm) internalAlg() (gcd.Algorithm, error) {
	switch a {
	case Approximate:
		return gcd.Approximate, nil
	case Original:
		return gcd.Original, nil
	case Fast:
		return gcd.Fast, nil
	case Binary:
		return gcd.Binary, nil
	case FastBinary:
		return gcd.FastBinary, nil
	default:
		return 0, fmt.Errorf("bulkgcd: unknown algorithm %d", int(a))
	}
}

// String returns the algorithm name.
func (a Algorithm) String() string {
	ia, err := a.internalAlg()
	if err != nil {
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
	return ia.String()
}

// Letter returns the paper's (A)-(E) label for the algorithm.
func (a Algorithm) Letter() string {
	ia, err := a.internalAlg()
	if err != nil {
		return "?"
	}
	return ia.Letter()
}

// Algorithms lists all five algorithms in the paper's (A)-(E) order.
var Algorithms = []Algorithm{Original, Fast, Binary, FastBinary, Approximate}

// Stats reports what a GCD computation did.
type Stats struct {
	// Iterations counts do-while iterations of the core loop.
	Iterations int
	// BetaNonZero counts Approximate iterations on the rare beta > 0 path.
	BetaNonZero int
	// MemOps counts word-level memory operations (Section IV accounting).
	MemOps int64
}

// GCD returns the greatest common divisor of x and y, computed with the
// Approximate Euclidean algorithm. Unlike the core loops, it accepts any
// integers: signs are ignored and even inputs are reduced by the
// factor-of-two identities of Section II. GCD(0, 0) = 0.
func GCD(x, y *big.Int) *big.Int {
	g, _, err := GCDWith(Approximate, x, y)
	if err != nil {
		// The only error paths are invalid algorithms; Approximate is valid.
		panic("bulkgcd: " + err.Error())
	}
	return g
}

// GCDWith is GCD with an explicit algorithm choice and statistics.
func GCDWith(alg Algorithm, x, y *big.Int) (*big.Int, Stats, error) {
	ialg, err := alg.internalAlg()
	if err != nil {
		return nil, Stats{}, err
	}
	ax := new(big.Int).Abs(x)
	ay := new(big.Int).Abs(y)
	switch {
	case ax.Sign() == 0:
		return ay, Stats{}, nil
	case ay.Sign() == 0:
		return ax, Stats{}, nil
	}
	// gcd(X, Y) = 2^k * gcd(X >> tzx, Y >> tzy) with k = min(tzx, tzy):
	// the Section II reduction to odd inputs.
	tzx := trailingZeros(ax)
	tzy := trailingZeros(ay)
	k := tzx
	if tzy < k {
		k = tzy
	}
	ax.Rsh(ax, uint(tzx))
	ay.Rsh(ay, uint(tzy))
	g, st := gcd.Compute(ialg, mpnat.FromBig(ax), mpnat.FromBig(ay), gcd.Options{})
	out := g.ToBig()
	out.Lsh(out, uint(k))
	return out, Stats{Iterations: st.Iterations, BetaNonZero: st.BetaNonZero, MemOps: st.MemOps}, nil
}

func trailingZeros(v *big.Int) int {
	k := 0
	for v.Bit(k) == 0 {
		k++
	}
	return k
}

// AttackOptions configures FindSharedPrimes. The zero value selects the
// recommended configuration: Approximate Euclidean, early termination,
// public exponent 65537, one worker per CPU.
//
// Deprecated: use [New] with [Option] values; each field maps onto one
// option (see the field comments).
type AttackOptions struct {
	// Algorithm selects the GCD engine (default Approximate).
	// Equivalent to [WithAlgorithm].
	Algorithm Algorithm
	// DisableEarlyTerminate turns off the s/2 early termination. It is
	// only useful for measurement; early termination never misses a
	// shared prime of RSA moduli. Equivalent to
	// [WithoutEarlyTermination].
	DisableEarlyTerminate bool
	// Workers is the parallelism of whichever engine runs, all-pairs or
	// batch GCD (default: GOMAXPROCS). Equivalent to [WithWorkers].
	Workers int
	// Exponent is the RSA public exponent for key recovery (default 65537).
	// Equivalent to [WithExponent].
	Exponent uint64
	// Progress, when non-nil, receives completed/total counts: pairs in
	// all-pairs mode, tree operations in batch mode. Equivalent to
	// [WithProgress].
	Progress func(done, total int64)
	// BatchGCD switches to the Bernstein product-tree batch GCD engine
	// instead of the paper's all-pairs computation. Algorithm and
	// DisableEarlyTerminate are ignored; Workers and Progress are
	// honored. The report's Pairs and Stats are zero (batch GCD has no
	// per-pair accounting). Equivalent to WithEngine(EngineBatch).
	BatchGCD bool
}

// BrokenKey is one factored modulus.
type BrokenKey struct {
	// Index is the modulus position in the input slice.
	Index int
	// N is the modulus and P, Q its recovered factors, P <= Q.
	N, P, Q *big.Int
	// D is the recovered private exponent (nil if the cofactors are not
	// both prime).
	D *big.Int
	// FoundWith is the index of the other modulus in the revealing pair.
	FoundWith int
}

// AttackReport is the outcome of FindSharedPrimes.
//
// Deprecated: [Attack.Run] returns the richer [Report].
type AttackReport struct {
	// Broken lists factored keys ordered by index.
	Broken []BrokenKey
	// Duplicates lists index pairs of identical moduli.
	Duplicates [][2]int
	// Pairs is the number of GCDs computed: m(m-1)/2.
	Pairs int64
	// Stats aggregates the per-pair GCD statistics.
	Stats Stats
	// Canceled reports that the run was interrupted via the context passed
	// to FindSharedPrimesContext; Broken/Duplicates then cover only the
	// pairs completed before cancellation.
	Canceled bool
}

// FindSharedPrimes runs the weak-key attack over a corpus of RSA moduli:
// it computes the GCD of all pairs, factors every modulus that shares a
// prime with another, and reconstructs the corresponding private keys.
// All moduli must be positive and odd. opts may be nil for defaults.
//
// Deprecated: use [New] and [Attack.Run], which add engine selection,
// checkpointing, quarantine, metrics and tracing. FindSharedPrimes is
// equivalent to New().Run(context.Background(), moduli) with the
// AttackOptions fields mapped onto their options.
func FindSharedPrimes(moduli []*big.Int, opts *AttackOptions) (*AttackReport, error) {
	return FindSharedPrimesContext(context.Background(), moduli, opts)
}

// FindSharedPrimesContext is FindSharedPrimes with cooperative
// cancellation: when ctx is canceled mid-run the attack stops at the next
// block boundary and returns the findings of the completed pairs with
// AttackReport.Canceled set, rather than an error.
//
// Deprecated: use [New] and [Attack.Run] (see [FindSharedPrimes]).
func FindSharedPrimesContext(ctx context.Context, moduli []*big.Int, opts *AttackOptions) (*AttackReport, error) {
	var o AttackOptions
	if opts != nil {
		o = *opts
	}
	av := []Option{
		WithAlgorithm(o.Algorithm),
		WithWorkers(o.Workers),
	}
	if o.DisableEarlyTerminate {
		av = append(av, WithoutEarlyTermination())
	}
	if o.Exponent != 0 {
		av = append(av, WithExponent(o.Exponent))
	}
	if o.Progress != nil {
		av = append(av, WithProgress(o.Progress))
	}
	if o.BatchGCD {
		av = append(av, WithEngine(EngineBatch))
	}
	rep, err := New(av...).Run(ctx, moduli)
	if err != nil {
		return nil, err
	}
	return &AttackReport{
		Broken:     rep.Broken,
		Duplicates: rep.Duplicates,
		Pairs:      rep.Pairs,
		Stats:      rep.Stats,
		Canceled:   rep.Canceled,
	}, nil
}

// PlantedPair records the ground truth of one generated weak pair.
type PlantedPair struct {
	// I, J are the corpus indices sharing the prime P, I < J.
	I, J int
	P    *big.Int
}

// GenerateWeakCorpus synthesizes count RSA moduli of the given bit size
// with weakPairs planted pairs sharing a prime, deterministically from
// seed. It returns the moduli and the ground truth.
func GenerateWeakCorpus(count, bits, weakPairs int, seed int64) ([]*big.Int, []PlantedPair, error) {
	c, err := rsakey.GenerateCorpus(rsakey.CorpusSpec{
		Count: count, Bits: bits, WeakPairs: weakPairs, Seed: seed,
	})
	if err != nil {
		return nil, nil, err
	}
	moduli := make([]*big.Int, count)
	for i, k := range c.Keys {
		moduli[i] = k.N.ToBig()
	}
	planted := make([]PlantedPair, len(c.Planted))
	for i, pp := range c.Planted {
		planted[i] = PlantedPair{I: pp.I, J: pp.J, P: pp.P}
	}
	return moduli, planted, nil
}

// WriteCorpus serializes moduli to w in the line-oriented hex corpus
// format (one modulus per line, '#' comments), the interchange format of
// the cmd/keygen and cmd/rsafactor tools.
func WriteCorpus(w io.Writer, moduli []*big.Int, comment string) error {
	ms := make([]*mpnat.Nat, len(moduli))
	for i, m := range moduli {
		if m == nil || m.Sign() <= 0 {
			return fmt.Errorf("bulkgcd: modulus %d is not positive", i)
		}
		ms[i] = mpnat.FromBig(m)
	}
	return corpus.Write(w, ms, comment)
}

// ReadCorpus parses a corpus written by WriteCorpus (or assembled by hand
// from collected public keys).
func ReadCorpus(r io.Reader) ([]*big.Int, error) {
	ms, err := corpus.Read(r)
	if err != nil {
		return nil, err
	}
	out := make([]*big.Int, len(ms))
	for i, m := range ms {
		out[i] = m.ToBig()
	}
	return out, nil
}

// ConstantTimeGCD returns gcd(x, y) computed with a fully oblivious
// (input-independent address trace, branchless) binary GCD: the memory
// and control behaviour depend only on the operands' bit capacity, never
// on their values. It always performs exactly 2*ceil(s/32)*32 iterations
// over fixed-width operands, so it is substantially slower than GCD
// (see EXPERIMENTS.md, "Obliviousness tax") - use it when the operands
// are secrets, not for bulk scanning of public moduli.
//
// Signs are ignored; even inputs are reduced as in GCD.
func ConstantTimeGCD(x, y *big.Int) *big.Int {
	ax := new(big.Int).Abs(x)
	ay := new(big.Int).Abs(y)
	switch {
	case ax.Sign() == 0:
		return ay
	case ay.Sign() == 0:
		return ax
	}
	// Note: the two's-power reduction leaks the trailing-zero counts; the
	// oblivious guarantee covers the odd-part computation, which is where
	// the Euclidean structure (and the secret-dependent trajectory of a
	// conventional GCD) lives.
	tzx := trailingZeros(ax)
	tzy := trailingZeros(ay)
	k := tzx
	if tzy < k {
		k = tzy
	}
	ax.Rsh(ax, uint(tzx))
	ay.Rsh(ay, uint(tzy))
	bits := ax.BitLen()
	if yb := ay.BitLen(); yb > bits {
		bits = yb
	}
	g, _ := gcd.NewScratch(bits).ComputeOblivious(mpnat.FromBig(ax), mpnat.FromBig(ay), gcd.Options{})
	out := g.ToBig()
	out.Lsh(out, uint(k))
	return out
}
