// Fleet modes: rsafactor -serve runs the cell-lease coordinator,
// rsafactor -worker dials one. The coordinator owns the journal and the
// assembled findings; workers are stateless compute that can crash,
// restart or change count mid-scan without changing the result.
package main

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"bulkgcd/internal/attack"
	"bulkgcd/internal/bulk"
	"bulkgcd/internal/checkpoint"
	"bulkgcd/internal/fleet"
	"bulkgcd/internal/mpnat"
	"bulkgcd/internal/obs"
	"bulkgcd/internal/pemkeys"
)

type coordinatorFlags struct {
	addr       string
	ckptPath   string
	leaseTTL   time.Duration
	failQuorum int
	verbose    bool
	truth      string
	emit       string
	exponent   uint64
	report     string
	tracePath  string
}

// runCoordinator serves the lease protocol until every cell is terminal,
// then assembles and prints the findings exactly as a local run would.
func runCoordinator(ctx context.Context, cf coordinatorFlags, moduli []*mpnat.Nat, sources []pemkeys.Source, opt attack.Options, stdout, stderr io.Writer) error {
	hdr, err := attack.JournalHeader(moduli, opt)
	if err != nil {
		return err
	}
	reg := obs.NewRegistry()
	ccfg := fleet.CoordinatorConfig{
		Header:     hdr,
		LeaseTTL:   cf.leaseTTL,
		FailQuorum: cf.failQuorum,
		Metrics:    reg,
	}

	// The merged fleet trace: the coordinator's run span and events plus
	// every worker's shipped cell spans, one JSONL timeline. Append mode
	// so a resumed coordinator extends the interrupted run's trace (the
	// deterministic run-span ID re-parents earlier cells correctly).
	if cf.tracePath != "" {
		tf, err := os.OpenFile(cf.tracePath, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			return err
		}
		defer tf.Close()
		ccfg.Trace = obs.NewTracer(tf)
	}

	var frep *obs.Report
	if cf.report != "" {
		frep = obs.NewReport("rsafactor")
		frep.Params = map[string]any{
			"mode":        "fleet-coordinator",
			"lease_ttl":   cf.leaseTTL.String(),
			"fail_quorum": cf.failQuorum,
			"checkpoint":  cf.ckptPath,
			"trace":       cf.tracePath,
		}
	}

	// The journal auto-resumes: an existing file that verifies against
	// this run's header seeds the grid and is appended to; a missing file
	// starts fresh. A mismatched journal is an error — silently starting
	// over would discard someone's completed work.
	if cf.ckptPath != "" {
		st, lerr := checkpoint.Load(cf.ckptPath)
		switch {
		case lerr == nil:
			if err := st.Verify(hdr); err != nil {
				return fmt.Errorf("journal %s: %w (move it aside to start fresh)", cf.ckptPath, err)
			}
			w, err := checkpoint.OpenAppend(cf.ckptPath)
			if err != nil {
				return err
			}
			defer w.Close()
			ccfg.Journal = w
			ccfg.Resume = st
			fmt.Fprintf(stdout, "resuming from %s: %d/%d cells done (%d pairs)\n",
				cf.ckptPath, len(st.Done), hdr.Units, st.Pairs())
		case errors.Is(lerr, os.ErrNotExist):
			w, err := checkpoint.Create(cf.ckptPath)
			if err != nil {
				return err
			}
			defer w.Close()
			ccfg.Journal = w
		default:
			return lerr
		}
	}

	coord, err := fleet.NewCoordinator(ccfg)
	if err != nil {
		return err
	}
	srv, err := obs.ServeStatusOptions(cf.addr, obs.StatusOptions{
		Registry: reg,
		Snapshot: coord.MergedSnapshot,
		Handlers: coord.Handlers(),
		Ready:    true,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(stderr, "rsafactor: fleet coordinator on http://%s (protocol at /lease, progress at /fleet/status)\n", srv.Addr())

	if cf.verbose {
		go pollProgress(ctx, coord, stderr)
	}

	waitErr := coord.Wait(ctx)

	// Drain before reporting: flip /readyz so probes stop routing new
	// workers here, then let in-flight replies finish.
	srv.SetReady(false)
	shCtx, shCancel := context.WithTimeout(context.Background(), 5*time.Second)
	_ = srv.Shutdown(shCtx)
	shCancel()

	st, _ := coord.Status(context.Background())
	if waitErr != nil {
		if cf.ckptPath != "" {
			return &exitError{code: exitCanceled, err: fmt.Errorf("interrupted with %d/%d cells complete; re-run -serve with -checkpoint %s to resume",
				st.Completed, st.Units, cf.ckptPath)}
		}
		return &exitError{code: exitCanceled, err: fmt.Errorf("interrupted with %d/%d cells complete (run with -checkpoint to make interrupted scans resumable)",
			st.Completed, st.Units)}
	}

	// Every cell is terminal: assemble the same Report a single-process
	// hybrid run produces from these records.
	runner, err := bulk.NewCellRunner(moduli, opt.BulkConfig())
	if err != nil {
		return err
	}
	res, err := runner.Assemble(coord.Records())
	if err != nil {
		return err
	}
	rep, err := attack.Interpret(moduli, res, opt)
	if err != nil {
		return err
	}

	fmt.Fprintf(stdout, "corpus: %d moduli, %d bits\n", rep.Moduli, moduli[0].BitLen())
	fmt.Fprintf(stdout, "method: fleet scan of %d hybrid cells across %d workers (%d pairs)\n",
		st.Units, st.Workers, st.DonePairs)
	bad := coord.BadCells()
	for _, unit := range sortedKeys(bad) {
		fmt.Fprintf(stdout, "quarantined cell %d: %s (its pairs are NOT covered)\n", unit, bad[unit])
	}
	printFindings(stdout, rep)

	if frep != nil {
		cells, cerr := coord.Cells(context.Background())
		frep.Summary = map[string]any{
			"moduli":      rep.Moduli,
			"cells":       st.Units,
			"pairs":       st.DonePairs,
			"workers":     st.Workers,
			"quarantined": st.Quarantined,
			"broken_keys": len(rep.Broken),
			"duplicates":  len(rep.Duplicates),
		}
		if cerr == nil {
			frep.Tables["fleet_cells"] = cells.Cells
			frep.Tables["fleet_workers"] = cells.Workers
		}
		frep.Finish(nil)
		// The fleet's metrics are the union of every worker's shipped
		// snapshots plus the coordinator's own counters, not the local
		// registry alone.
		frep.Metrics = coord.MergedSnapshot()
		if err := frep.WriteFile(cf.report); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "report written to %s\n", cf.report)
	}

	if ccfg.Journal != nil {
		if err := ccfg.Journal.Close(); err != nil {
			return err
		}
		if dropped, err := checkpoint.Compact(cf.ckptPath); err != nil {
			fmt.Fprintf(stderr, "rsafactor: journal compaction failed: %v\n", err)
		} else if dropped > 0 {
			fmt.Fprintf(stdout, "journal %s compacted: %d redundant lines dropped\n", cf.ckptPath, dropped)
		}
	}

	if len(bad) > 0 {
		// Findings are real but coverage is not complete; emit/truth would
		// operate on partial results, so they are skipped.
		return &exitError{code: exitQuarantined,
			err: fmt.Errorf("%d of %d cells quarantined; findings above are incomplete", len(bad), st.Units)}
	}
	if cf.emit != "" {
		if err := emitPrivateKeys(stdout, cf.emit, rep, sources, cf.exponent); err != nil {
			return err
		}
	}
	if cf.truth != "" {
		return verifyTruth(stdout, cf.truth, rep)
	}
	return nil
}

// sortedKeys returns the map's keys in ascending order.
func sortedKeys(m map[int]string) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// pollProgress prints coordinator progress lines until ctx ends or the
// scan completes.
func pollProgress(ctx context.Context, coord *fleet.Coordinator, stderr io.Writer) {
	t := time.NewTicker(2 * time.Second)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			st, err := coord.Status(ctx)
			if err != nil {
				return
			}
			fmt.Fprintf(stderr, "rsafactor: fleet: %d/%d cells (%d leased, %d quarantined), %d/%d pairs, %d workers\n",
				st.Completed, st.Units, st.Leased, st.Quarantined, st.DonePairs, st.TotalPairs, st.Workers)
			if st.Done {
				return
			}
		}
	}
}

type fleetWorkerFlags struct {
	url     string
	id      string
	spill   string
	status  string
	verbose bool
}

// runFleetWorker dials the coordinator and computes cells until the scan
// is done or the coordinator disappears (a clean exit either way).
func runFleetWorker(ctx context.Context, wf fleetWorkerFlags, moduli []*mpnat.Nat, opt attack.Options, stdout, stderr io.Writer) error {
	id := wf.id
	if id == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "worker"
		}
		id = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	base := wf.url
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}

	// Workers always carry a registry: its snapshot rides every lease
	// renewal, feeding the coordinator's fleet-wide /metrics.
	reg := obs.NewRegistry()
	opt.Metrics = reg
	if wf.status != "" {
		srv, err := obs.ServeStatus(wf.status, reg)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(stderr, "rsafactor: status on http://%s/metrics\n", srv.Addr())
	}

	logf := func(string, ...any) {}
	if wf.verbose {
		logf = func(format string, args ...any) {
			fmt.Fprintf(stderr, "rsafactor: "+format+"\n", args...)
		}
	}

	rep, err := fleet.RunWorker(ctx, fleet.WorkerConfig{
		ID:        id,
		Transport: &fleet.HTTPTransport{Base: base},
		Moduli:    moduli,
		Config:    opt.BulkConfig(),
		SpillPath: wf.spill,
		Logf:      logf,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "worker %s: %d cells completed, %d failed, %d abandoned\n",
		id, rep.Completed, rep.Failed, rep.Abandoned)
	if rep.CoordinatorLost {
		msg := "coordinator lost; exiting cleanly"
		if rep.Spilled != "" {
			msg += fmt.Sprintf(" (unacknowledged cell spilled to %s)", rep.Spilled)
		}
		fmt.Fprintf(stdout, "worker %s: %s\n", id, msg)
	}
	return nil
}
