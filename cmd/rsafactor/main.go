// Command rsafactor is the weak-RSA-key attack tool: it reads a corpus of
// moduli, computes the GCD of all pairs with the selected Euclidean
// algorithm (Approximate by default), and reports every factored key.
//
// Usage:
//
//	rsafactor -in corpus.txt [-alg approximate] [-no-early] [-workers N] [-v]
//	rsafactor -in corpus.txt -engine=batch   # Bernstein batch-GCD engine
//	rsafactor -in corpus.txt -engine=hybrid -tile 64  # tiled product-filter
//	                                         # (-workers and -v apply everywhere)
//	rsafactor -in corpus.txt -kernel lanes   # lockstep lane-batched GCD kernel
//	rsafactor -in corpus.txt -truth truth.txt # verify against ground truth
//	rsafactor -in corpus.txt -checkpoint run.jsonl   # journal progress
//	rsafactor -in corpus.txt -resume run.jsonl       # continue after a kill
//	rsafactor -in corpus.txt -status :8080           # live /metrics + pprof
//	rsafactor -in corpus.txt -report out.json        # end-of-run JSON artifact
//	rsafactor -in corpus.txt -trace run-trace.jsonl  # span/event trace
//	rsafactor -in corpus.txt -serve :9090 -checkpoint fleet.jsonl
//	                                         # fleet coordinator (leases cells)
//	rsafactor -in corpus.txt -worker host:9090 [-spill spill.jsonl]
//	                                         # fleet worker (same corpus file)
//
// Output lists, per broken key, the corpus index, the prime factors and
// the recovered private exponent for e = 65537.
//
// A run with -checkpoint journals every completed block; SIGINT/SIGTERM
// cancels cooperatively (in-flight blocks finish, the journal is flushed,
// partial findings are printed). Re-running with -resume picks up where
// the journal left off and produces the same findings an uninterrupted
// run would have.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"math/big"
	"os"
	"path/filepath"
	"strings"
	"time"

	"bulkgcd/internal/attack"
	"bulkgcd/internal/checkpoint"
	"bulkgcd/internal/corpus"
	"bulkgcd/internal/engine"
	"bulkgcd/internal/fleet"
	"bulkgcd/internal/gcd"
	"bulkgcd/internal/mpnat"
	"bulkgcd/internal/obs"
	"bulkgcd/internal/pemkeys"
	"bulkgcd/internal/sigctx"
)

var algByName = map[string]gcd.Algorithm{
	"original":    gcd.Original,
	"fast":        gcd.Fast,
	"binary":      gcd.Binary,
	"fastbinary":  gcd.FastBinary,
	"approximate": gcd.Approximate,
}

// Structured exit codes, so orchestration (CI, fleet scripts, cron)
// can distinguish failure modes without parsing stderr. Documented in
// the README; asserted by the CLI acceptance tests.
const (
	exitOK          = 0 // clean completion
	exitFailure     = 1 // generic error (I/O, bad corpus, engine failure)
	exitUsage       = 2 // flag/usage error
	exitCanceled    = 3 // interrupted (signal or -cancel-after)
	exitIntegrity   = 4 // findings failed verification, or conflicting fleet records
	exitQuarantined = 5 // scan finished but cells were quarantined (incomplete coverage)
)

// exitError carries a specific exit code up through run.
type exitError struct {
	code int
	err  error
}

func (e *exitError) Error() string { return e.err.Error() }
func (e *exitError) Unwrap() error { return e.err }

// usagef builds an exitUsage error.
func usagef(format string, args ...any) error {
	return &exitError{code: exitUsage, err: fmt.Errorf(format, args...)}
}

// exitCodeOf maps an error from run to the process exit code.
func exitCodeOf(err error) int {
	if err == nil {
		return exitOK
	}
	var ee *exitError
	if errors.As(err, &ee) {
		return ee.code
	}
	if errors.Is(err, fleet.ErrIntegrity) {
		return exitIntegrity
	}
	// A fingerprint mismatch means this invocation's corpus or engine
	// flags disagree with the coordinator's run — a configuration error.
	if errors.Is(err, fleet.ErrFingerprint) || errors.Is(err, flag.ErrHelp) {
		return exitUsage
	}
	if errors.Is(err, context.Canceled) {
		return exitCanceled
	}
	return exitFailure
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("rsafactor: ")
	ctx, stop := sigctx.WithSignals(context.Background(), os.Stderr, "rsafactor")
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdin, os.Stdout, os.Stderr); err != nil {
		log.Print(err)
		stop()
		os.Exit(exitCodeOf(err))
	}
}

// run implements the tool; factored out of main so tests can drive it.
func run(ctx context.Context, args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	// `rsafactor watch` is the long-lived registry server; everything
	// else is the one-shot scan below.
	if len(args) > 0 && args[0] == "watch" {
		return runWatch(ctx, args[1:], stdout, stderr)
	}
	fs := flag.NewFlagSet("rsafactor", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		in         = fs.String("in", "-", "corpus file (- for stdin)")
		algName    = fs.String("alg", "approximate", "gcd algorithm: original|fast|binary|fastbinary|approximate")
		noEarly    = fs.Bool("no-early", false, "disable s/2 early termination")
		engName    = fs.String("engine", "pairs", "attack engine: pairs|batch|hybrid")
		kernName   = fs.String("kernel", "scalar", "per-pair GCD kernel: scalar|lanes (lanes needs -alg approximate)")
		laneWidth  = fs.Int("lanewidth", 0, "lanes kernel batch width (0 = default)")
		batch      = fs.Bool("batch", false, "deprecated alias for -engine=batch")
		tile       = fs.Int("tile", 0, "hybrid engine tile width (0 = default 64)")
		subBudget  = fs.Int64("subprod-budget", 0, "hybrid subproduct cache byte budget (0 = unlimited)")
		workers    = fs.Int("workers", 0, "parallel workers (0 = all CPUs); more workers than CPUs adds no throughput, only scheduling overhead — the work-stealing pool already keeps every core busy")
		e          = fs.Uint64("e", 65537, "RSA public exponent for key recovery")
		prev       = fs.String("prev", "", "previously scanned corpus (same formats); compute only pairs involving the new corpus")
		truth      = fs.String("truth", "", "ground-truth file from keygen -truth; verify the findings")
		emit       = fs.String("emit", "", "directory to write recovered private keys as PKCS#1 PEM files")
		ckptPath   = fs.String("checkpoint", "", "journal completed blocks to this file (fresh run; see -resume)")
		resumePath = fs.String("resume", "", "resume from this journal, skipping completed blocks, and keep appending to it")
		quarantine = fs.Bool("quarantine", false, "skip zero/even moduli and report them instead of failing the run")
		verbose    = fs.Bool("v", false, "print progress with rate and ETA")
		status     = fs.String("status", "", "serve /healthz, /metrics and /debug/pprof on this address (e.g. :8080) while the run lasts")
		report     = fs.String("report", "", "write an end-of-run JSON report (schema "+obs.ReportSchema+") to this file")
		tracePath  = fs.String("trace", "", "append a JSONL span/event trace of the run to this file")
		serveAddr  = fs.String("serve", "", "run as fleet coordinator: serve the cell-lease protocol plus /metrics on this address (e.g. :9090)")
		workerURL  = fs.String("worker", "", "run as fleet worker: lease cells from the coordinator at this base URL (e.g. http://host:9090)")
		workerID   = fs.String("worker-id", "", "fleet worker identity for leases and the fail quorum (default host-pid)")
		leaseTTL   = fs.Duration("lease-ttl", 0, "coordinator: lease TTL before a silent worker's cell is re-queued (0 = 10s)")
		failQuorum = fs.Int("fail-quorum", 0, "coordinator: distinct workers that must fail a cell before it is quarantined (0 = 3)")
		spillPath  = fs.String("spill", "", "worker: journal a finished-but-unacknowledged cell here if the coordinator is lost")
		// cancelAfter deterministically cancels the run once N pairs have
		// completed; it exists so the interrupt/resume path is testable
		// without racing real signals against the engine.
		cancelAfter = fs.Int64("cancel-after", -1, "")
	)
	if err := fs.Parse(args); err != nil {
		return &exitError{code: exitUsage, err: err}
	}

	alg, ok := algByName[strings.ToLower(*algName)]
	if !ok {
		return usagef("unknown algorithm %q", *algName)
	}
	kind, err := engine.ParseKind(*engName)
	if err != nil {
		return usagef("unknown engine %q (want pairs, batch or hybrid)", *engName)
	}
	kern, err := engine.ParseKernelKind(*kernName)
	if err != nil {
		return &exitError{code: exitUsage, err: err}
	}
	if kern == engine.KernelLanes && kind == engine.Batch {
		return usagef("-kernel=lanes applies to the pairs and hybrid engines, not batch GCD")
	}
	if *batch {
		if kind == engine.Hybrid {
			return usagef("-batch conflicts with -engine=hybrid; drop the deprecated -batch flag")
		}
		kind = engine.Batch
	}
	if *ckptPath != "" && *resumePath != "" {
		return usagef("-checkpoint starts a fresh journal and -resume continues one; use exactly one")
	}

	// Fleet modes: the coordinator serves the lease protocol; workers dial
	// it. Both distribute hybrid cells, so the hybrid engine is implied
	// when -engine is left at its default.
	if *serveAddr != "" && *workerURL != "" {
		return usagef("-serve and -worker are mutually exclusive")
	}
	if *serveAddr != "" || *workerURL != "" {
		engineSet := false
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "engine" {
				engineSet = true
			}
		})
		if !engineSet && !*batch {
			kind = engine.Hybrid
		}
		if kind != engine.Hybrid {
			return usagef("fleet mode distributes hybrid cells; use -engine=hybrid (or leave -engine unset)")
		}
		if *prev != "" {
			return usagef("-prev (incremental mode) is not supported in fleet mode")
		}
		if *cancelAfter >= 0 {
			return usagef("-cancel-after is a single-process testing flag; not supported in fleet mode")
		}
	}
	if *serveAddr != "" {
		if *status != "" {
			return usagef("-serve already serves /metrics and /debug/pprof on the coordinator address; drop -status")
		}
		if *resumePath != "" {
			return usagef("the fleet coordinator journal auto-resumes; use -checkpoint (it reopens an existing journal)")
		}
	}
	if *workerURL != "" {
		if *ckptPath != "" || *resumePath != "" {
			return usagef("-checkpoint/-resume belong to the coordinator; workers spill undeliverable cells with -spill")
		}
		if *truth != "" || *emit != "" || *report != "" {
			return usagef("-truth, -emit and -report apply to the coordinator's assembled findings, not to workers")
		}
		if *tracePath != "" {
			return usagef("workers ship trace events to the coordinator; put -trace on -serve for the merged fleet trace")
		}
	}
	if *spillPath != "" && *workerURL == "" {
		return usagef("-spill applies to fleet workers (-worker)")
	}
	if (*workerID != "" || *leaseTTL != 0 || *failQuorum != 0) && *serveAddr == "" && *workerURL == "" {
		return usagef("-worker-id, -lease-ttl and -fail-quorum apply to fleet modes (-serve / -worker)")
	}

	if (*ckptPath != "" || *resumePath != "") && kind == engine.Batch {
		return usagef("checkpointing requires the pairs or hybrid engine")
	}

	r := stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	moduli, sources, err := readCorpus(r, stderr, *quarantine)
	if err != nil {
		return err
	}

	var oldModuli []*mpnat.Nat
	if *prev != "" {
		pf, err := os.Open(*prev)
		if err != nil {
			return err
		}
		oldModuli, _, err = readCorpus(pf, stderr, *quarantine)
		pf.Close()
		if err != nil {
			return fmt.Errorf("previous corpus: %w", err)
		}
		if *truth != "" {
			return fmt.Errorf("-truth cannot be combined with -prev (indices are offset)")
		}
		if kind != engine.Pairs {
			return fmt.Errorf("-prev requires the pairs engine (incremental mode computes explicit cross pairs)")
		}
		if len(moduli) < 1 {
			return fmt.Errorf("new corpus is empty")
		}
	} else if len(moduli) < 2 {
		return fmt.Errorf("corpus has %d moduli; need at least 2", len(moduli))
	}

	opt := attack.Options{
		Config:        engine.Config{Workers: *workers},
		Algorithm:     alg,
		Early:         !*noEarly,
		Exponent:      *e,
		Engine:        kind,
		Kernel:        kern,
		LaneWidth:     *laneWidth,
		Quarantine:    *quarantine,
		TileSize:      *tile,
		SubprodBudget: *subBudget,
	}

	if *serveAddr != "" {
		return runCoordinator(ctx, coordinatorFlags{
			addr:       *serveAddr,
			ckptPath:   *ckptPath,
			leaseTTL:   *leaseTTL,
			failQuorum: *failQuorum,
			verbose:    *verbose,
			truth:      *truth,
			emit:       *emit,
			exponent:   *e,
			report:     *report,
			tracePath:  *tracePath,
		}, moduli, sources, opt, stdout, stderr)
	}
	if *workerURL != "" {
		return runFleetWorker(ctx, fleetWorkerFlags{
			url:     *workerURL,
			id:      *workerID,
			spill:   *spillPath,
			status:  *status,
			verbose: *verbose,
		}, moduli, opt, stdout, stderr)
	}

	// Observability: the registry feeds both the live status server and
	// the end-of-run report, so either flag turns metrics on.
	var reg *obs.Registry
	if *status != "" || *report != "" {
		reg = obs.NewRegistry()
		opt.Metrics = reg
	}
	if *status != "" {
		srv, err := obs.ServeStatus(*status, reg)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(stderr, "rsafactor: status on http://%s/metrics\n", srv.Addr())
	}
	var rpt *obs.Report
	if *report != "" {
		rpt = obs.NewReport("rsafactor")
		rpt.Params = map[string]any{
			"alg":         alg.String(),
			"early":       !*noEarly,
			"engine":      kind.String(),
			"kernel":      kern.String(),
			"tile":        *tile,
			"workers":     *workers,
			"quarantine":  *quarantine,
			"checkpoint":  *ckptPath,
			"resume":      *resumePath,
			"incremental": *prev != "",
		}
	}
	if *tracePath != "" {
		// Append mode: a resumed run extends the interrupted run's trace.
		tf, err := os.OpenFile(*tracePath, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			return err
		}
		defer tf.Close()
		opt.Trace = obs.NewTracer(tf)
	}
	switch {
	case *ckptPath != "":
		w, err := checkpoint.Create(*ckptPath)
		if err != nil {
			return err
		}
		defer w.Close()
		opt.Checkpoint = w
	case *resumePath != "":
		st, err := checkpoint.Load(*resumePath)
		if err != nil {
			return err
		}
		w, err := checkpoint.OpenAppend(*resumePath)
		if err != nil {
			return err
		}
		defer w.Close()
		opt.Resume = st
		opt.Checkpoint = w
		fmt.Fprintf(stdout, "resuming from %s: %d/%d blocks done (%d pairs)\n",
			*resumePath, len(st.Done), st.Header.Units, st.Pairs())
	}
	var pp *obs.ProgressPrinter
	if *verbose {
		unit := "pairs"
		if kind == engine.Batch {
			unit = "tree ops"
		}
		pp = obs.NewProgressPrinter(stderr, unit, 250*time.Millisecond)
		opt.Progress = pp.Update
	}
	if *cancelAfter >= 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithCancel(ctx)
		defer cancel()
		inner := opt.Progress
		opt.Progress = func(done, total int64) {
			if done >= *cancelAfter {
				cancel()
			}
			if inner != nil {
				inner(done, total)
			}
		}
	}
	var rep *attack.Report
	if *prev != "" {
		rep, err = attack.RunIncrementalContext(ctx, oldModuli, moduli, opt)
	} else {
		rep, err = attack.RunContext(ctx, moduli, opt)
	}
	if err != nil {
		return err
	}
	if opt.Checkpoint != nil {
		if err := opt.Checkpoint.Sync(); err != nil {
			return err
		}
	}
	if pp != nil {
		pp.Finish()
	}
	if *prev != "" {
		fmt.Fprintf(stdout, "incremental scan: %d previous + %d new moduli (indices are global)\n",
			len(oldModuli), len(moduli))
	}

	fmt.Fprintf(stdout, "corpus: %d moduli, %d bits\n", rep.Moduli, moduli[0].BitLen())
	switch kind {
	case engine.Batch:
		fmt.Fprintf(stdout, "method: batch GCD (product/remainder tree, %d workers) in %v\n",
			rep.Bulk.Workers, rep.Bulk.Elapsed.Round(1000))
	case engine.Hybrid:
		fmt.Fprintf(stdout, "method: hybrid tiled product filter with %s (%d workers) in %v\n",
			alg, rep.Bulk.Workers, rep.Bulk.Elapsed.Round(1000))
		fmt.Fprintf(stdout, "pairs: %d covered (%.0f pairs/s); %d GCD iterations on the descended pairs\n",
			rep.Bulk.Pairs, rep.Bulk.PairsPerSecond(), rep.Bulk.Stats.Iterations)
	default:
		fmt.Fprintf(stdout, "pairs: %d computed with %s (%d workers) in %v (%.0f pairs/s)\n",
			rep.Bulk.Pairs, alg, rep.Bulk.Workers, rep.Bulk.Elapsed.Round(1000),
			rep.Bulk.PairsPerSecond())
		fmt.Fprintf(stdout, "iterations: %d total, %.1f per pair\n",
			rep.Bulk.Stats.Iterations, float64(rep.Bulk.Stats.Iterations)/float64(rep.Bulk.Pairs))
	}

	printFindings(stdout, rep)

	if rpt != nil {
		// The summary mirrors the attack Report itself (not the metric
		// counters), so a resumed run's artifact reconciles exactly with
		// the printed findings: resumed pairs count toward pairs here but
		// are excluded from the fresh-pair throughput metrics.
		rpt.Summary = map[string]any{
			"moduli":             rep.Moduli,
			"pairs":              rep.Bulk.Pairs,
			"total_pairs":        rep.Bulk.Total,
			"resumed_pairs":      rep.Bulk.ResumedPairs,
			"workers":            rep.Bulk.Workers,
			"broken":             len(rep.Broken),
			"duplicate_pairs":    len(rep.Duplicates),
			"quarantined_moduli": len(rep.Quarantined),
			"quarantined_pairs":  len(rep.BadPairs),
			"canceled":           rep.Canceled,
		}
		rpt.Finish(reg)
		if err := rpt.WriteFile(*report); err != nil {
			return err
		}
	}

	if rep.Canceled {
		// The findings above cover only the completed blocks; emit/truth
		// would operate on an incomplete report, so they are skipped.
		if opt.Checkpoint != nil {
			return &exitError{code: exitCanceled, err: fmt.Errorf("interrupted after %d/%d pairs; resume with -resume %s",
				rep.Bulk.Pairs, rep.Bulk.Total, opt.Checkpoint.Path())}
		}
		return &exitError{code: exitCanceled, err: fmt.Errorf("interrupted after %d/%d pairs (run with -checkpoint to make interrupted runs resumable)",
			rep.Bulk.Pairs, rep.Bulk.Total)}
	}

	// Clean completion: the journal has served its purpose, but a long
	// resumed run leaves duplicates and torn fragments behind; compact it
	// to the canonical minimal form so archival copies stay small.
	if opt.Checkpoint != nil {
		jpath := opt.Checkpoint.Path()
		if err := opt.Checkpoint.Close(); err != nil {
			return err
		}
		if dropped, err := checkpoint.Compact(jpath); err != nil {
			fmt.Fprintf(stderr, "rsafactor: journal compaction failed: %v\n", err)
		} else if dropped > 0 {
			fmt.Fprintf(stdout, "journal %s compacted: %d redundant lines dropped\n", jpath, dropped)
		}
	}

	if *emit != "" {
		if err := emitPrivateKeys(stdout, *emit, rep, sources, *e); err != nil {
			return err
		}
	}
	if *truth != "" {
		return verifyTruth(stdout, *truth, rep)
	}
	return nil
}

// printFindings prints the findings block — quarantined moduli/pairs,
// BROKEN/DUPLICATE lines and the summary — shared verbatim between the
// single-process and fleet-coordinator paths, so a fleet scan's output
// diffs clean against a local run of the same corpus.
func printFindings(stdout io.Writer, rep *attack.Report) {
	for _, q := range rep.Quarantined {
		fmt.Fprintf(stdout, "quarantined modulus %d: %s (excluded from the scan)\n", q.Index, q.Reason)
	}
	for _, bp := range rep.BadPairs {
		fmt.Fprintf(stdout, "quarantined pair (%d,%d): %s\n", bp.I, bp.J, bp.Err)
	}

	if len(rep.Broken) == 0 && len(rep.Duplicates) == 0 {
		fmt.Fprintln(stdout, "no weak keys found")
	}
	for _, bk := range rep.Broken {
		fmt.Fprintf(stdout, "\nBROKEN key %d (found with key %d)\n", bk.Index, bk.FoundWith)
		fmt.Fprintf(stdout, "  n = %x\n", bk.N)
		fmt.Fprintf(stdout, "  p = %x\n", bk.P)
		fmt.Fprintf(stdout, "  q = %x\n", bk.Q)
		if bk.D != nil {
			fmt.Fprintf(stdout, "  d = %x\n", bk.D)
		} else {
			fmt.Fprintf(stdout, "  d = (factors not both prime; modulus factored but exponent skipped)\n")
		}
	}
	for _, d := range rep.Duplicates {
		fmt.Fprintf(stdout, "\nDUPLICATE moduli: keys %d and %d are identical\n", d[0], d[1])
	}
	fmt.Fprintf(stdout, "\nsummary: %d broken, %d duplicate pairs out of %d keys\n",
		len(rep.Broken), len(rep.Duplicates), rep.Moduli)
}

// readCorpus reads moduli in either format: PEM streams (public keys and
// certificates, the shape of real collected key sets) are detected by the
// PEM armour; anything else is the line-oriented hex corpus format.
// sources is non-nil only for PEM input. With lenient set, zero/even
// moduli pass through to the attack layer's quarantine instead of
// failing the whole corpus.
func readCorpus(r io.Reader, stderr io.Writer, lenient bool) ([]*mpnat.Nat, []pemkeys.Source, error) {
	src := corpus.NewSource(r)
	if lenient {
		src = corpus.NewLenientSource(r)
	}
	var ms []*mpnat.Nat
	var sources []pemkeys.Source
	for src.Next() {
		rec := src.Record()
		ms = append(ms, rec.N)
		if rec.PEM != nil {
			sources = append(sources, *rec.PEM)
		}
	}
	for _, sk := range src.Skipped() {
		fmt.Fprintf(stderr, "rsafactor: skipped PEM block %d (%s): %s\n", sk.Pos, sk.Label, sk.Reason)
	}
	if err := src.Err(); err != nil {
		return nil, nil, err
	}
	return ms, sources, nil
}

// emitPrivateKeys writes each fully recovered key as key<index>.pem under
// dir, re-deriving d with the key's own exponent when PEM sources carry
// one that differs from the default.
func emitPrivateKeys(stdout io.Writer, dir string, rep *attack.Report, sources []pemkeys.Source, defaultE uint64) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	written := 0
	for _, bk := range rep.Broken {
		d := bk.D
		e := defaultE
		if sources != nil && sources[bk.Index].E != 0 {
			e = sources[bk.Index].E
		}
		if d == nil || e != defaultE {
			// Re-derive with the key's own exponent.
			var err error
			d, _, err = recoverWithExponent(bk, e)
			if err != nil {
				fmt.Fprintf(stdout, "key %d: cannot emit (%v)\n", bk.Index, err)
				continue
			}
		}
		key, err := pemkeys.AssemblePrivateKey(bk.N, bk.P, bk.Q, d, e)
		if err != nil {
			fmt.Fprintf(stdout, "key %d: cannot emit (%v)\n", bk.Index, err)
			continue
		}
		path := filepath.Join(dir, fmt.Sprintf("key%d.pem", bk.Index))
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := pemkeys.WritePrivateKey(f, key); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		written++
	}
	fmt.Fprintf(stdout, "emitted %d private keys to %s\n", written, dir)
	return nil
}

// recoverWithExponent recomputes d for a broken key under exponent e.
func recoverWithExponent(bk attack.BrokenKey, e uint64) (d, q *big.Int, err error) {
	phi := new(big.Int).Mul(
		new(big.Int).Sub(bk.P, big.NewInt(1)),
		new(big.Int).Sub(bk.Q, big.NewInt(1)),
	)
	dn := new(mpnat.Nat).ModInverse(mpnat.New(e), mpnat.FromBig(phi))
	if dn == nil {
		return nil, nil, fmt.Errorf("e = %d not invertible", e)
	}
	return dn.ToBig(), bk.Q, nil
}

// verifyTruth compares the attack findings against a keygen ground-truth
// file ("i j prime-hex" lines) and reports mismatches as an error.
func verifyTruth(stdout io.Writer, path string, rep *attack.Report) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()

	brokenBy := map[int]attack.BrokenKey{}
	for _, bk := range rep.Broken {
		brokenBy[bk.Index] = bk
	}
	var missing int
	var pairs int
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		var i, j int
		var primeHex string
		if _, err := fmt.Sscanf(line, "%d %d %s", &i, &j, &primeHex); err != nil {
			return fmt.Errorf("truth file: bad line %q: %v", line, err)
		}
		p, ok := new(big.Int).SetString(primeHex, 16)
		if !ok {
			return fmt.Errorf("truth file: bad prime %q", primeHex)
		}
		pairs++
		for _, idx := range []int{i, j} {
			bk, found := brokenBy[idx]
			if !found {
				fmt.Fprintf(stdout, "MISSED: key %d (planted pair %d,%d) not broken\n", idx, i, j)
				missing++
				continue
			}
			if bk.P.Cmp(p) != 0 && bk.Q.Cmp(p) != 0 {
				fmt.Fprintf(stdout, "WRONG FACTOR: key %d broken without the planted prime\n", idx)
				missing++
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if missing > 0 {
		return &exitError{code: exitIntegrity,
			err: fmt.Errorf("verification failed: %d mismatches against %d planted pairs", missing, pairs)}
	}
	fmt.Fprintf(stdout, "verification: all %d planted pairs recovered\n", pairs)
	return nil
}
