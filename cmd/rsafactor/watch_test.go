package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/big"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"

	"bulkgcd/internal/batchgcd"
	"bulkgcd/internal/rsakey"
)

var watchAddrRE = regexp.MustCompile(`rsafactor watch: serving on ([^\s]+)`)

// startWatch launches `rsafactor watch` against dir and returns its
// base URL, the cancel func, and the run error channel.
func startWatch(t *testing.T, dir string, extra ...string) (string, context.CancelFunc, chan error, *lockedBuf) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	out := &lockedBuf{}
	done := make(chan error, 1)
	args := append([]string{"watch", "-dir", dir, "-addr", "127.0.0.1:0"}, extra...)
	go func() {
		done <- run(ctx, args, nil, out, io.Discard)
	}()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if m := watchAddrRE.FindStringSubmatch(out.String()); m != nil {
			return "http://" + m[1], cancel, done, out
		}
		select {
		case err := <-done:
			t.Fatalf("watch exited before serving: %v\n%s", err, out.String())
		default:
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("watch address never appeared:\n%s", out.String())
	return "", nil, nil, nil
}

// postCorpus submits a hex corpus synchronously and decodes the job.
func postCorpus(t *testing.T, base string, moduli []*big.Int) *watchJob {
	t.Helper()
	var body bytes.Buffer
	for _, m := range moduli {
		fmt.Fprintf(&body, "%x\n", m)
	}
	resp, err := http.Post(base+"/submit?sync=1", "text/plain", &body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("POST /submit: %s\n%s", resp.Status, b)
	}
	var job watchJob
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	return &job
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
}

type brokenLine struct {
	Index int    `json:"index"`
	G     string `json:"g"`
}

// TestWatchServer is the watch-mode acceptance test: keys submitted over
// HTTP in waves, async job status, a kill+restart in the middle, and a
// final /broken diff against the batch-GCD oracle over everything
// submitted across both server lives.
func TestWatchServer(t *testing.T) {
	dir := t.TempDir()
	regDir := filepath.Join(dir, "registry")
	report := filepath.Join(dir, "watch-report.json")
	trace := filepath.Join(dir, "trace.jsonl")

	c, err := rsakey.GenerateCorpus(rsakey.CorpusSpec{Count: 30, Bits: 96, WeakPairs: 4, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	moduli := make([]*big.Int, 0, 30)
	for _, n := range c.Moduli() {
		moduli = append(moduli, n.ToBig())
	}

	// Life 1: two waves, then an async job polled to completion.
	base, cancel, done, _ := startWatch(t, regDir, "-trace", trace)
	job := postCorpus(t, base, moduli[:10])
	if job.State != "done" || len(job.Verdicts) != 10 {
		t.Fatalf("wave 1 job: %+v", job)
	}
	for i, v := range job.Verdicts {
		if v.Index != i {
			t.Fatalf("wave 1 verdict %d has index %d", i, v.Index)
		}
	}
	postCorpus(t, base, moduli[10:18])

	// Async submission + job polling with ?wait=1.
	var body bytes.Buffer
	fmt.Fprintf(&body, "%x\n", moduli[18])
	resp, err := http.Post(base+"/submit", "text/plain", &body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async POST: %s", resp.Status)
	}
	var async watchJob
	if err := json.NewDecoder(resp.Body).Decode(&async); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	var polled watchJob
	getJSON(t, base+"/jobs/"+async.ID+"?wait=1", &polled)
	if polled.State != "done" || len(polled.Verdicts) != 1 || polled.Verdicts[0].Index != 18 {
		t.Fatalf("polled job: %+v", polled)
	}
	if polled.Report == nil || polled.Report.Schema == "" {
		t.Fatalf("finished job carries no report artifact: %+v", polled)
	}

	// Live metrics and timeline while serving.
	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if !strings.Contains(string(mb), "registry_submissions_total") {
		t.Fatalf("/metrics missing registry counters:\n%s", mb)
	}
	var timeline map[string]any
	getJSON(t, base+"/timeline", &timeline)
	if len(timeline) == 0 {
		t.Fatal("/timeline empty")
	}

	// Kill the server (graceful shutdown on signal-context cancel).
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("watch life 1: %v", err)
	}

	// Life 2: restart over the same directory, submit the rest.
	base, cancel, done, out := startWatch(t, regDir, "-report", report)
	var stats struct {
		Keys     int   `json:"Keys"`
		Replayed int64 `json:"Replayed"`
	}
	getJSON(t, base+"/registry", &stats)
	if stats.Keys != 19 {
		t.Fatalf("after restart: %d keys, want 19", stats.Keys)
	}
	if stats.Replayed != 0 {
		t.Fatalf("clean restart replayed %d verdicts", stats.Replayed)
	}
	postCorpus(t, base, moduli[19:])

	// The final broken set must be byte-identical to the batch-GCD
	// oracle over everything submitted across both lives.
	var broken []brokenLine
	getJSON(t, base+"/broken", &broken)
	gs, err := batchgcd.SharedFactors(moduli)
	if err != nil {
		t.Fatal(err)
	}
	oracle := map[int]string{}
	for i, g := range gs {
		if g.Cmp(big.NewInt(1)) > 0 {
			oracle[i] = g.Text(16)
		}
	}
	if len(broken) != len(oracle) {
		t.Fatalf("/broken has %d keys, oracle %d", len(broken), len(oracle))
	}
	for _, b := range broken {
		if oracle[b.Index] != b.G {
			t.Fatalf("index %d: /broken g=%s oracle g=%s", b.Index, b.G, oracle[b.Index])
		}
	}
	for _, pp := range c.Planted {
		if _, ok := oracle[pp.I]; !ok {
			t.Fatalf("planted pair (%d,%d) missing from oracle", pp.I, pp.J)
		}
	}

	cancel()
	if err := <-done; err != nil {
		t.Fatalf("watch life 2: %v\n%s", err, out.String())
	}

	// Shutdown artifacts: report with registry summary, trace spans.
	rep := readReport(t, report)
	if rep.Tool != "rsafactor-watch" {
		t.Fatalf("report tool = %q", rep.Tool)
	}
	if keys := rep.Summary["keys"].(float64); int(keys) != len(moduli) {
		t.Fatalf("report keys = %v, want %d", keys, len(moduli))
	}
	if rep.Summary["broken"].(float64) == 0 {
		t.Fatal("report has no broken keys")
	}
	traceData, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(traceData), `"submit"`) {
		t.Fatalf("trace has no submit spans:\n%.400s", traceData)
	}
}

// TestWatchUsageErrors: watch flag validation exits with usage errors.
func TestWatchUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		{"watch"},
		{"watch", "-dir"},
		{"watch", "-dir", t.TempDir(), "extra"},
	} {
		err := run(context.Background(), args, nil, io.Discard, io.Discard)
		if exitCodeOf(err) != exitUsage {
			t.Fatalf("args %v: exit %d (err %v), want usage", args, exitCodeOf(err), err)
		}
	}
}
