package main

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"bulkgcd/internal/checkpoint"
)

// syncBuffer is a bytes.Buffer safe to read while another goroutine (the
// in-process coordinator) is writing it.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestExitCodes pins the documented exit-code contract: orchestration
// scripts branch on these numbers, so they are part of the CLI surface.
func TestExitCodes(t *testing.T) {
	dir := t.TempDir()
	cp, _ := writeCorpus(t, dir, 8, 128, 1, 3)

	usage := [][]string{
		{"-in", cp, "-alg", "nope"},
		{"-in", cp, "-serve", ":0", "-worker", "http://x"},
		{"-in", cp, "-spill", "s.jsonl"},
		{"-in", cp, "-worker", "http://x", "-checkpoint", "j.jsonl"},
		{"-in", cp, "-worker", "http://x", "-truth", "t.txt"},
		{"-in", cp, "-serve", ":0", "-engine", "batch"},
		{"-in", cp, "-serve", ":0", "-status", ":0"},
		{"-in", cp, "-lease-ttl", "5s"},
		{"-in", cp, "-no-such-flag"},
	}
	for _, args := range usage {
		err := run(context.Background(), args, nil, &bytes.Buffer{}, &bytes.Buffer{})
		if code := exitCodeOf(err); code != exitUsage {
			t.Errorf("args %v: exit code %d (err %v), want %d", args, code, err, exitUsage)
		}
	}

	// Canceled: -cancel-after trips mid-run.
	jp := filepath.Join(dir, "cancel.jsonl")
	err := run(context.Background(), []string{"-in", cp, "-checkpoint", jp, "-cancel-after", "0"},
		nil, &bytes.Buffer{}, &bytes.Buffer{})
	if code := exitCodeOf(err); code != exitCanceled {
		t.Errorf("cancel-after: exit code %d (err %v), want %d", code, err, exitCanceled)
	}

	// Integrity: a truth file claiming a pair the scan cannot find.
	badTruth := filepath.Join(dir, "badtruth.txt")
	if err := os.WriteFile(badTruth, []byte("2 3 ff\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	err = run(context.Background(), []string{"-in", cp, "-truth", badTruth}, nil, &out, &bytes.Buffer{})
	if code := exitCodeOf(err); code != exitIntegrity {
		t.Errorf("bad truth: exit code %d (err %v), want %d\n%s", code, err, exitIntegrity, out.String())
	}

	// OK path for contrast.
	if err := run(context.Background(), []string{"-in", cp}, nil, &bytes.Buffer{}, &bytes.Buffer{}); err != nil {
		t.Errorf("clean run: %v", err)
	}
}

// TestCheckpointCompactedOnCompletion: a clean checkpointed run leaves a
// canonical journal behind (header + one record per unit, loadable).
func TestCheckpointCompactedOnCompletion(t *testing.T) {
	dir := t.TempDir()
	cp, _ := writeCorpus(t, dir, 10, 128, 1, 5)
	jp := filepath.Join(dir, "run.jsonl")
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-in", cp, "-checkpoint", jp, "-engine", "hybrid", "-tile", "4"},
		nil, &out, &bytes.Buffer{}); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	st, err := checkpoint.Load(jp)
	if err != nil {
		t.Fatalf("load compacted journal: %v", err)
	}
	if len(st.Done) != st.Header.Units {
		t.Fatalf("compacted journal has %d/%d units", len(st.Done), st.Header.Units)
	}
}

// TestFleetCLIEndToEnd drives the real binary surface in-process: a
// coordinator on a loopback port, a fingerprint-mismatched worker that
// is turned away, then two good workers that finish the scan. The
// coordinator's findings must match a single-process run byte for byte,
// and its compacted journal must hold every cell.
func TestFleetCLIEndToEnd(t *testing.T) {
	dir := t.TempDir()
	cp, tp := writeCorpus(t, dir, 16, 128, 2, 11)
	jp := filepath.Join(dir, "fleet.jsonl")

	// Local oracle over the same corpus and engine config.
	var localOut bytes.Buffer
	if err := run(context.Background(), []string{"-in", cp, "-engine", "hybrid", "-tile", "4"},
		nil, &localOut, &bytes.Buffer{}); err != nil {
		t.Fatalf("local oracle: %v", err)
	}

	coordErr := &syncBuffer{}
	var coordOut bytes.Buffer
	coordDone := make(chan error, 1)
	go func() {
		coordDone <- run(context.Background(),
			[]string{"-in", cp, "-serve", "127.0.0.1:0", "-checkpoint", jp, "-tile", "4", "-lease-ttl", "2s", "-truth", tp},
			nil, &coordOut, coordErr)
	}()

	// The port is kernel-assigned; scrape it from the startup line.
	addrRE := regexp.MustCompile(`coordinator on (http://[0-9.:]+) `)
	var url string
	for deadline := time.Now().Add(10 * time.Second); time.Now().Before(deadline); time.Sleep(10 * time.Millisecond) {
		if m := addrRE.FindStringSubmatch(coordErr.String()); m != nil {
			url = m[1]
			break
		}
	}
	if url == "" {
		t.Fatalf("coordinator never printed its address:\n%s", coordErr.String())
	}

	// A worker with different engine flags computes a different
	// fingerprint and must be rejected as misconfigured, not retried.
	err := run(context.Background(), []string{"-in", cp, "-worker", url, "-tile", "8", "-worker-id", "misfit"},
		nil, &bytes.Buffer{}, &bytes.Buffer{})
	if code := exitCodeOf(err); code != exitUsage {
		t.Fatalf("mismatched worker: exit code %d (err %v), want %d", code, err, exitUsage)
	}

	var wg sync.WaitGroup
	workerOuts := make([]bytes.Buffer, 2)
	workerErrs := make([]error, 2)
	for i := range workerOuts {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			workerErrs[i] = run(context.Background(),
				[]string{"-in", cp, "-worker", url, "-tile", "4", "-worker-id", fmt.Sprintf("w%d", i)},
				nil, &workerOuts[i], &bytes.Buffer{})
		}(i)
	}
	wg.Wait()
	for i, werr := range workerErrs {
		if werr != nil {
			t.Errorf("worker %d: %v\n%s", i, werr, workerOuts[i].String())
		}
	}

	select {
	case err := <-coordDone:
		if err != nil {
			t.Fatalf("coordinator: %v\n%s", err, coordOut.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("coordinator did not finish")
	}

	if got, want := findings(coordOut.String()), findings(localOut.String()); got != want {
		t.Errorf("fleet findings differ from local run:\n--- fleet ---\n%s\n--- local ---\n%s", got, want)
	}
	if !strings.Contains(coordOut.String(), "verification: all 2 planted pairs recovered") {
		t.Errorf("truth verification missing:\n%s", coordOut.String())
	}

	// Every cell journaled exactly once, in compacted canonical form.
	st, err := checkpoint.Load(jp)
	if err != nil {
		t.Fatalf("load journal: %v", err)
	}
	if len(st.Done) != st.Header.Units || len(st.Quarantined()) != 0 {
		t.Fatalf("journal: %d/%d units done, %d quarantined", len(st.Done), st.Header.Units, len(st.Quarantined()))
	}

	completed := 0
	for i := range workerOuts {
		var c int
		var id string
		if _, err := fmt.Sscanf(workerOuts[i].String(), "worker %s %d cells completed", &id, &c); err == nil {
			completed += c
		}
	}
	if completed != st.Header.Units {
		t.Errorf("workers completed %d cells, journal has %d units", completed, st.Header.Units)
	}
}
