package main

import (
	"bytes"
	"context"
	"crypto/x509"
	"encoding/pem"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bulkgcd/internal/corpus"
	"bulkgcd/internal/mpnat"
	"bulkgcd/internal/pemkeys"
	"bulkgcd/internal/rsakey"
)

// writeCorpus creates a corpus file (and ground truth) in dir.
func writeCorpus(t *testing.T, dir string, count, bits, weak int, seed int64) (string, string) {
	t.Helper()
	c, err := rsakey.GenerateCorpus(rsakey.CorpusSpec{
		Count: count, Bits: bits, WeakPairs: weak, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	cp := filepath.Join(dir, "corpus.txt")
	f, err := os.Create(cp)
	if err != nil {
		t.Fatal(err)
	}
	if err := corpus.Write(f, c.Moduli(), "test"); err != nil {
		t.Fatal(err)
	}
	f.Close()
	tp := filepath.Join(dir, "truth.txt")
	tf, err := os.Create(tp)
	if err != nil {
		t.Fatal(err)
	}
	for _, pp := range c.Planted {
		fmt.Fprintf(tf, "%d %d %x\n", pp.I, pp.J, pp.P)
	}
	tf.Close()
	return cp, tp
}

func TestRunBreaksWeakCorpus(t *testing.T) {
	dir := t.TempDir()
	cp, tp := writeCorpus(t, dir, 12, 128, 2, 7)
	var out, errOut bytes.Buffer
	if err := run(context.Background(), []string{"-in", cp, "-truth", tp}, nil, &out, &errOut); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	s := out.String()
	if got := strings.Count(s, "BROKEN key"); got != 4 {
		t.Fatalf("broke %d keys, want 4:\n%s", got, s)
	}
	if !strings.Contains(s, "verification: all 2 planted pairs recovered") {
		t.Fatalf("truth verification missing:\n%s", s)
	}
	if !strings.Contains(s, "summary: 4 broken") {
		t.Fatalf("summary missing:\n%s", s)
	}
}

func TestRunLanesKernel(t *testing.T) {
	dir := t.TempDir()
	cp, tp := writeCorpus(t, dir, 12, 128, 2, 7)
	for _, eng := range []string{"pairs", "hybrid"} {
		var out bytes.Buffer
		args := []string{"-in", cp, "-truth", tp, "-kernel", "lanes", "-lanewidth", "4", "-engine", eng}
		if err := run(context.Background(), args, nil, &out, &bytes.Buffer{}); err != nil {
			t.Fatalf("engine %s: %v\n%s", eng, err, out.String())
		}
		if !strings.Contains(out.String(), "verification: all 2 planted pairs recovered") {
			t.Fatalf("engine %s: lanes kernel missed planted pairs:\n%s", eng, out.String())
		}
	}

	var sink bytes.Buffer
	if err := run(context.Background(), []string{"-in", cp, "-kernel", "warp"}, nil, &sink, &sink); err == nil {
		t.Error("unknown kernel accepted")
	}
	if err := run(context.Background(), []string{"-in", cp, "-kernel", "lanes", "-engine", "batch"}, nil, &sink, &sink); err == nil {
		t.Error("lanes kernel accepted with the batch engine")
	}
	if err := run(context.Background(), []string{"-in", cp, "-kernel", "lanes", "-alg", "binary"}, nil, &sink, &sink); err == nil {
		t.Error("lanes kernel accepted with a non-approximate algorithm")
	}
}

func TestRunFromStdin(t *testing.T) {
	c, err := rsakey.GenerateCorpus(rsakey.CorpusSpec{Count: 6, Bits: 128, WeakPairs: 1, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	var in bytes.Buffer
	if err := corpus.Write(&in, c.Moduli(), ""); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-v"}, &in, &out, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "BROKEN key") {
		t.Fatalf("no break reported:\n%s", out.String())
	}
}

func TestRunAllAlgorithmsAndBatch(t *testing.T) {
	dir := t.TempDir()
	cp, _ := writeCorpus(t, dir, 10, 128, 1, 9)
	for _, alg := range []string{"original", "fast", "binary", "fastbinary", "approximate"} {
		var out bytes.Buffer
		if err := run(context.Background(), []string{"-in", cp, "-alg", alg, "-no-early"}, nil, &out, &bytes.Buffer{}); err != nil {
			t.Fatalf("alg %s: %v", alg, err)
		}
		if strings.Count(out.String(), "BROKEN key") != 2 {
			t.Fatalf("alg %s: wrong break count:\n%s", alg, out.String())
		}
	}
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-in", cp, "-batch"}, nil, &out, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	if strings.Count(out.String(), "BROKEN key") != 2 {
		t.Fatalf("batch mode wrong break count:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "method: batch GCD") {
		t.Fatalf("batch header missing:\n%s", out.String())
	}
}

// TestRunBatchWorkers: batch mode honors -workers, reports the pool
// size, and finds the same keys at every pool size (the key lines of the
// output are identical; only the timing line may differ).
func TestRunBatchWorkers(t *testing.T) {
	dir := t.TempDir()
	cp, _ := writeCorpus(t, dir, 12, 128, 2, 17)
	keyLines := func(s string) string {
		var kept []string
		for _, ln := range strings.Split(s, "\n") {
			if !strings.HasPrefix(ln, "method:") {
				kept = append(kept, ln)
			}
		}
		return strings.Join(kept, "\n")
	}
	var base string
	for _, w := range []string{"1", "4"} {
		var out, errs bytes.Buffer
		if err := run(context.Background(), []string{"-in", cp, "-batch", "-workers", w, "-v"}, nil, &out, &errs); err != nil {
			t.Fatalf("workers %s: %v", w, err)
		}
		if !strings.Contains(out.String(), w+" workers") {
			t.Fatalf("workers %s: pool size not reported:\n%s", w, out.String())
		}
		if !strings.Contains(errs.String(), "tree ops") {
			t.Fatalf("workers %s: batch progress missing:\n%s", w, errs.String())
		}
		if base == "" {
			base = keyLines(out.String())
			continue
		}
		if got := keyLines(out.String()); got != base {
			t.Fatalf("workers %s: findings differ:\n%s\nvs\n%s", w, got, base)
		}
	}
}

func TestRunCleanCorpus(t *testing.T) {
	dir := t.TempDir()
	cp, _ := writeCorpus(t, dir, 6, 128, 0, 10)
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-in", cp}, nil, &out, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "no weak keys found") {
		t.Fatalf("expected clean report:\n%s", out.String())
	}
}

func TestRunTruthVerificationFailure(t *testing.T) {
	dir := t.TempDir()
	cp, _ := writeCorpus(t, dir, 8, 128, 0, 11) // clean corpus...
	bogus := filepath.Join(dir, "bogus.txt")
	// ... but the truth file claims a planted pair: verification must fail.
	if err := os.WriteFile(bogus, []byte("0 1 abcdef123457\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	err := run(context.Background(), []string{"-in", cp, "-truth", bogus}, nil, &out, &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "verification failed") {
		t.Fatalf("expected verification failure, got %v", err)
	}
	if !strings.Contains(out.String(), "MISSED") {
		t.Fatalf("missing MISSED report:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	var sink bytes.Buffer
	if err := run(context.Background(), []string{"-alg", "nonsense", "-in", "x"}, nil, &sink, &sink); err == nil {
		t.Error("bad algorithm accepted")
	}
	if err := run(context.Background(), []string{"-in", "/nonexistent"}, nil, &sink, &sink); err == nil {
		t.Error("missing file accepted")
	}
	if err := run(context.Background(), []string{"-badflag"}, nil, &sink, &sink); err == nil {
		t.Error("unknown flag accepted")
	}
	in := strings.NewReader("ff\n") // single modulus
	if err := run(context.Background(), nil, in, &sink, &sink); err == nil {
		t.Error("single-modulus corpus accepted")
	}
	in = strings.NewReader("zz\n")
	if err := run(context.Background(), nil, in, &sink, &sink); err == nil {
		t.Error("bad corpus accepted")
	}
}

// TestRunPEMWorkflow: the real-world pipeline - PEM public keys in,
// recovered private keys out as PEM files that crypto/x509 parses.
func TestRunPEMWorkflow(t *testing.T) {
	dir := t.TempDir()
	c, err := rsakey.GenerateCorpus(rsakey.CorpusSpec{Count: 8, Bits: 256, WeakPairs: 1, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	pemPath := filepath.Join(dir, "keys.pem")
	f, err := os.Create(pemPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range c.Keys {
		if err := pemkeys.WritePublicKey(f, k.N.ToBig(), k.E); err != nil {
			t.Fatal(err)
		}
	}
	f.Close()

	emitDir := filepath.Join(dir, "broken")
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-in", pemPath, "-emit", emitDir}, nil, &out, &bytes.Buffer{}); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "emitted 2 private keys") {
		t.Fatalf("emit summary missing:\n%s", out.String())
	}
	// The emitted PEMs must parse and decrypt.
	pp := c.Planted[0]
	for _, idx := range []int{pp.I, pp.J} {
		data, err := os.ReadFile(filepath.Join(emitDir, fmt.Sprintf("key%d.pem", idx)))
		if err != nil {
			t.Fatal(err)
		}
		block, _ := pem.Decode(data)
		if block == nil {
			t.Fatalf("key%d.pem is not PEM", idx)
		}
		key, err := x509.ParsePKCS1PrivateKey(block.Bytes)
		if err != nil {
			t.Fatal(err)
		}
		if key.N.Cmp(c.Keys[idx].N.ToBig()) != 0 {
			t.Fatalf("key%d.pem has wrong modulus", idx)
		}
		if err := key.Validate(); err != nil {
			t.Fatalf("key%d.pem invalid: %v", idx, err)
		}
	}
}

// TestRunPEMSkipsGarbageBlocks: mixed streams warn but work.
func TestRunPEMSkipsGarbageBlocks(t *testing.T) {
	c, err := rsakey.GenerateCorpus(rsakey.CorpusSpec{Count: 4, Bits: 256, WeakPairs: 1, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	var in bytes.Buffer
	for _, k := range c.Keys {
		if err := pemkeys.WritePublicKey(&in, k.N.ToBig(), k.E); err != nil {
			t.Fatal(err)
		}
	}
	pem.Encode(&in, &pem.Block{Type: "EC PRIVATE KEY", Bytes: []byte{1}})
	var out, errOut bytes.Buffer
	if err := run(context.Background(), nil, &in, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(errOut.String(), "skipped PEM block 4 (EC PRIVATE KEY)") ||
		!strings.Contains(errOut.String(), "unsupported block type") {
		t.Fatalf("per-block skip report missing: %q", errOut.String())
	}
	if !strings.Contains(out.String(), "BROKEN key") {
		t.Fatalf("attack failed on PEM input:\n%s", out.String())
	}
}

// TestRunIncrementalFlag: the -prev rolling-scan mode.
func TestRunIncrementalFlag(t *testing.T) {
	dir := t.TempDir()
	c, err := rsakey.GenerateCorpus(rsakey.CorpusSpec{Count: 12, Bits: 128, WeakPairs: 2, Seed: 14})
	if err != nil {
		t.Fatal(err)
	}
	// Ensure at least one planted pair crosses the 6/6 split or lives in
	// the new half; with seed 14 check dynamically.
	moduli := c.Moduli()
	writeHalf := func(name string, ms []*mpnat.Nat) string {
		p := filepath.Join(dir, name)
		f, err := os.Create(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := corpus.Write(f, ms, ""); err != nil {
			t.Fatal(err)
		}
		f.Close()
		return p
	}
	oldPath := writeHalf("old.txt", moduli[:6])
	newPath := writeHalf("new.txt", moduli[6:])

	var out bytes.Buffer
	if err := run(context.Background(), []string{"-in", newPath, "-prev", oldPath}, nil, &out, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "incremental scan: 6 previous + 6 new") {
		t.Fatalf("incremental header missing:\n%s", out.String())
	}
	wantBroken := 0
	for _, pp := range c.Planted {
		if pp.I >= 6 || pp.J >= 6 {
			wantBroken += 2
		}
	}
	if got := strings.Count(out.String(), "BROKEN key"); got != wantBroken {
		t.Fatalf("broke %d keys, want %d:\n%s", got, wantBroken, out.String())
	}
	// Conflicting flags.
	var sink bytes.Buffer
	if err := run(context.Background(), []string{"-in", newPath, "-prev", oldPath, "-batch"}, nil, &sink, &sink); err == nil {
		t.Error("-prev -batch accepted")
	}
	if err := run(context.Background(), []string{"-in", newPath, "-prev", oldPath, "-truth", oldPath}, nil, &sink, &sink); err == nil {
		t.Error("-prev -truth accepted")
	}
	if err := run(context.Background(), []string{"-in", newPath, "-prev", "/nonexistent"}, nil, &sink, &sink); err == nil {
		t.Error("missing -prev file accepted")
	}
}
