package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/big"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"bulkgcd/internal/corpus"
	"bulkgcd/internal/obs"
	"bulkgcd/internal/registry"
)

// runWatch implements `rsafactor watch`: a long-lived registry server.
// Keys arrive over HTTP in any corpus format (hex lines or PEM), each
// submission is checked against the full history with one product-tree
// descent, journaled before it is acknowledged, and answered with a
// clean/shared/duplicate/malformed verdict. The status endpoints
// (/metrics, /timeline, /dashboard, /healthz, pprof) ride on the same
// address; kill + restart replays the journal to an identical registry.
//
// HTTP surface:
//
//	POST /submit            corpus in the body; returns 202 + job id,
//	                        or the finished job with ?sync=1
//	GET  /jobs/<id>         job status; the finished job embeds a
//	                        Report-schema artifact with verdict counts
//	GET  /broken            every broken key: index, modulus, factor
//	GET  /registry          corpus size, removed, broken, spine stats
func runWatch(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("rsafactor watch", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		dir        = fs.String("dir", "", "registry directory (created if absent; holds corpus log, journal, tree nodes)")
		addr       = fs.String("addr", ":8080", "listen address for submissions and status endpoints")
		workers    = fs.Int("workers", 0, "tree build parallelism (0 = all CPUs)")
		nodeBudget = fs.Int64("node-budget", 0, "in-RAM tree node cache byte budget (0 = unlimited)")
		tracePath  = fs.String("trace", "", "append a JSONL span per submission to this file")
		report     = fs.String("report", "", "write an end-of-run JSON report (schema "+obs.ReportSchema+") on shutdown")
		verbose    = fs.Bool("v", false, "log each finding as it is discovered")
	)
	if err := fs.Parse(args); err != nil {
		return &exitError{code: exitUsage, err: err}
	}
	if *dir == "" {
		return usagef("watch: -dir is required")
	}
	if fs.NArg() > 0 {
		return usagef("watch: unexpected argument %q", fs.Arg(0))
	}

	reg := obs.NewRegistry()
	cfg := registry.Config{
		Workers:        *workers,
		NodeBudget:     *nodeBudget,
		Metrics:        reg,
		FindingsBuffer: 4096,
	}
	var traceF *os.File
	if *tracePath != "" {
		f, err := os.OpenFile(*tracePath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		defer f.Close()
		traceF = f
		cfg.Trace = obs.NewTracer(f)
	}

	rep := obs.NewReport("rsafactor-watch")
	rep.Params["dir"] = *dir
	rep.Params["addr"] = *addr

	r, err := registry.Open(*dir, cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "rsafactor watch: registry %s open, %d keys (%d broken)\n", *dir, r.Len(), r.Stats().Broken)

	// Drain findings for the log; they stay visible via /broken.
	var findingWG sync.WaitGroup
	findingWG.Add(1)
	go func() {
		defer findingWG.Done()
		for f := range r.Findings() {
			if *verbose {
				fmt.Fprintf(stdout, "rsafactor watch: key %d shares factor with key %d\n", f.Index, f.Partner)
			}
		}
	}()

	ws := &watchServer{reg: r, jobs: map[string]*watchJob{}}
	srv, err := obs.ServeStatusOptions(*addr, obs.StatusOptions{
		Registry: reg,
		Ready:    true,
		Handlers: map[string]http.Handler{
			"/submit":   http.HandlerFunc(ws.handleSubmit),
			"/jobs/":    http.HandlerFunc(ws.handleJob),
			"/broken":   http.HandlerFunc(ws.handleBroken),
			"/registry": http.HandlerFunc(ws.handleRegistry),
		},
	})
	if err != nil {
		r.Close()
		return err
	}
	fmt.Fprintf(stdout, "rsafactor watch: serving on %s\n", srv.Addr())

	<-ctx.Done()
	fmt.Fprintln(stdout, "rsafactor watch: shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	srv.Shutdown(shutCtx)
	cancel()
	ws.wait() // let in-flight jobs finish against the open registry

	st := r.Stats()
	closeErr := r.Close()
	findingWG.Wait()
	if traceF != nil {
		traceF.Sync()
	}
	if *report != "" {
		rep.Summary["keys"] = st.Keys
		rep.Summary["removed"] = st.Removed
		rep.Summary["broken"] = st.Broken
		rep.Summary["submissions"] = st.Submissions
		rep.Summary["findings"] = st.Findings
		rep.Summary["spine_mults"] = st.SpineMults
		rep.Summary["replayed"] = st.Replayed
		rep.Finish(reg)
		if err := rep.WriteFile(*report); err != nil {
			return err
		}
	}
	return closeErr
}

// watchJob is one asynchronous submission batch.
type watchJob struct {
	ID    string `json:"job"`
	State string `json:"state"` // "running", "done", "failed"
	Error string `json:"error,omitempty"`
	// Verdicts, one per submitted key, in submission order.
	Verdicts []watchVerdict `json:"verdicts,omitempty"`
	// Report is the Report-schema artifact for the finished job.
	Report *obs.Report `json:"report,omitempty"`

	done chan struct{}
}

// watchVerdict is the wire form of one verdict.
type watchVerdict struct {
	Index    int            `json:"index"`
	Kind     string         `json:"kind"`
	Reason   string         `json:"reason,omitempty"`
	G        string         `json:"g,omitempty"` // hex, present when > 1
	Partners []watchPartner `json:"partners,omitempty"`
}

type watchPartner struct {
	Index     int    `json:"index"`
	Factor    string `json:"factor"` // hex
	Duplicate bool   `json:"duplicate,omitempty"`
}

// watchServer carries the HTTP handler state.
type watchServer struct {
	reg *registry.Registry

	mu     sync.Mutex
	jobs   map[string]*watchJob
	nextID int
	wg     sync.WaitGroup
}

func (ws *watchServer) wait() { ws.wg.Wait() }

// handleSubmit parses the posted corpus and runs it through the
// registry as one job. Malformed keys (zero/even) become Malformed
// verdicts rather than failing the job, matching -quarantine semantics;
// a syntactically broken corpus fails the whole job.
func (ws *watchServer) handleSubmit(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		http.Error(w, "POST a corpus (hex lines or PEM) to /submit", http.StatusMethodNotAllowed)
		return
	}
	ws.mu.Lock()
	ws.nextID++
	job := &watchJob{
		ID:    fmt.Sprintf("job-%d", ws.nextID),
		State: "running",
		done:  make(chan struct{}),
	}
	ws.jobs[job.ID] = job
	ws.mu.Unlock()

	// Read the body before returning 202: the request body dies with the
	// handler. Lenient parsing keeps zero/even moduli so the registry
	// can answer Malformed instead of the parse erroring.
	src := corpus.NewLenientSource(req.Body)
	var moduli []*big.Int
	for src.Next() {
		moduli = append(moduli, src.Record().N.ToBig())
	}
	if err := src.Err(); err != nil {
		ws.finishJob(job, nil, nil, err)
		ws.respondJob(w, job, http.StatusBadRequest)
		return
	}

	rep := obs.NewReport("rsafactor-watch")
	rep.Params["job"] = job.ID
	rep.Params["keys"] = len(moduli)
	if n := len(src.Skipped()); n > 0 {
		rep.Summary["skipped_pem_blocks"] = n
	}

	ws.wg.Add(1)
	run := func() {
		defer ws.wg.Done()
		vs, err := ws.reg.SubmitBatch(moduli)
		if err != nil {
			ws.finishJob(job, nil, nil, err)
			return
		}
		counts := map[string]int{}
		verdicts := make([]watchVerdict, len(vs))
		for i, v := range vs {
			verdicts[i] = publicWatchVerdict(v)
			counts[verdicts[i].Kind]++
		}
		for k, n := range counts {
			rep.Summary[k] = n
		}
		rep.Finish(nil)
		ws.finishJob(job, verdicts, rep, nil)
	}

	if req.URL.Query().Get("sync") != "" {
		run()
		ws.respondJob(w, job, http.StatusOK)
		return
	}
	go run()
	ws.respondJob(w, job, http.StatusAccepted)
}

func publicWatchVerdict(v registry.Verdict) watchVerdict {
	out := watchVerdict{Index: v.Index, Kind: v.Kind.String(), Reason: v.Reason}
	if v.G != nil && v.G.BitLen() > 1 {
		out.G = v.G.Text(16)
	}
	for _, p := range v.Partners {
		out.Partners = append(out.Partners, watchPartner{Index: p.Index, Factor: p.Factor.Text(16), Duplicate: p.Dup})
	}
	return out
}

func (ws *watchServer) finishJob(job *watchJob, verdicts []watchVerdict, rep *obs.Report, err error) {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	if err != nil {
		job.State = "failed"
		job.Error = err.Error()
	} else {
		job.State = "done"
		job.Verdicts = verdicts
		job.Report = rep
	}
	close(job.done)
}

// respondJob encodes the job under the mutex: an async job may be
// finishing concurrently on its own goroutine.
func (ws *watchServer) respondJob(w http.ResponseWriter, job *watchJob, code int) {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(job)
}

// handleJob serves GET /jobs/<id>; ?wait=1 blocks until the job leaves
// the running state.
func (ws *watchServer) handleJob(w http.ResponseWriter, req *http.Request) {
	id := strings.TrimPrefix(req.URL.Path, "/jobs/")
	ws.mu.Lock()
	job := ws.jobs[id]
	ws.mu.Unlock()
	if job == nil {
		http.Error(w, "no such job", http.StatusNotFound)
		return
	}
	if req.URL.Query().Get("wait") != "" {
		select {
		case <-job.done:
		case <-req.Context().Done():
			return
		}
	}
	ws.mu.Lock()
	defer ws.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(job)
}

// handleBroken lists every broken key as {index, g} hex pairs — the
// diffable oracle surface the smoke test compares against batch GCD.
func (ws *watchServer) handleBroken(w http.ResponseWriter, _ *http.Request) {
	type brokenOut struct {
		Index int    `json:"index"`
		G     string `json:"g"`
	}
	bs := ws.reg.Broken()
	out := make([]brokenOut, len(bs))
	for i, b := range bs {
		out[i] = brokenOut{Index: b.Index, G: b.G.Text(16)}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}

// handleRegistry serves a point-in-time stats summary.
func (ws *watchServer) handleRegistry(w http.ResponseWriter, _ *http.Request) {
	st := ws.reg.Stats()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(st)
}
