package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"bulkgcd/internal/corpus"
	"bulkgcd/internal/rsakey"
)

// lockedBuf is a Writer safe to read while another goroutine runs the
// tool against it.
type lockedBuf struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuf) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuf) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// writePseudoCorpus builds a corpus big enough that the scan lasts long
// enough to scrape mid-run (pseudo moduli generate fast).
func writePseudoCorpus(t *testing.T, dir string, count, bits, weak int, seed int64) string {
	t.Helper()
	c, err := rsakey.GenerateCorpus(rsakey.CorpusSpec{
		Count: count, Bits: bits, WeakPairs: weak, Seed: seed, Pseudo: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	cp := filepath.Join(dir, "corpus.txt")
	f, err := os.Create(cp)
	if err != nil {
		t.Fatal(err)
	}
	if err := corpus.Write(f, c.Moduli(), "test"); err != nil {
		t.Fatal(err)
	}
	f.Close()
	return cp
}

var statusAddrRE = regexp.MustCompile(`status on http://([^/]+)/metrics`)

// waitStatusAddr polls stderr for the status server's bound address.
func waitStatusAddr(t *testing.T, errs *lockedBuf) string {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if m := statusAddrRE.FindStringSubmatch(errs.String()); m != nil {
			return m[1]
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("status address never appeared on stderr:\n%s", errs.String())
	return ""
}

type reportFile struct {
	Schema  string         `json:"schema"`
	Tool    string         `json:"tool"`
	Summary map[string]any `json:"summary"`
	Metrics struct {
		Counters map[string]int64 `json:"counters"`
	} `json:"metrics"`
}

func readReport(t *testing.T, path string) *reportFile {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var r reportFile
	if err := json.Unmarshal(data, &r); err != nil {
		t.Fatalf("report %s: %v", path, err)
	}
	if r.Schema != "bulkgcd.bench.v1" {
		t.Fatalf("report schema = %q", r.Schema)
	}
	return &r
}

// TestStatusReportKillResume is the PR's observability acceptance test:
// a journaled run killed mid-scan and then resumed serves /healthz and
// /metrics throughout the resumed run, and the final -report artifact
// reconciles exactly with the findings the tool printed.
func TestStatusReportKillResume(t *testing.T) {
	dir := t.TempDir()
	cp := writePseudoCorpus(t, dir, 192, 512, 2, 31)
	journal := filepath.Join(dir, "run.jsonl")
	trace := filepath.Join(dir, "trace.jsonl")
	r1 := filepath.Join(dir, "r1.json")
	r2 := filepath.Join(dir, "r2.json")

	// Phase 1: journal, report, and kill early.
	var out bytes.Buffer
	err := run(context.Background(),
		[]string{"-in", cp, "-checkpoint", journal, "-cancel-after", "200",
			"-report", r1, "-trace", trace},
		nil, &out, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "-resume") {
		t.Fatalf("interrupted run: err = %v", err)
	}
	rep1 := readReport(t, r1)
	if rep1.Summary["canceled"] != true {
		t.Fatalf("phase 1 report not canceled: %v", rep1.Summary)
	}
	total := rep1.Summary["total_pairs"].(float64)
	if pairs := rep1.Summary["pairs"].(float64); pairs <= 0 || pairs >= total {
		t.Fatalf("phase 1 pairs = %v of %v", pairs, total)
	}

	// Phase 2: resume with a live status server, scraping /metrics the
	// whole time the tool runs.
	var out2 bytes.Buffer
	errs := &lockedBuf{}
	done := make(chan error, 1)
	go func() {
		done <- run(context.Background(),
			[]string{"-in", cp, "-resume", journal, "-status", "127.0.0.1:0",
				"-report", r2, "-trace", trace, "-v"},
			nil, &out2, errs)
	}()
	addr := waitStatusAddr(t, errs)

	// Scrape until the server goes away with the tool's exit; every
	// response while it is up must be well-formed.
	var lastMetrics string
	scrapes := 0
	for {
		resp, err := http.Get("http://" + addr + "/metrics")
		if err != nil {
			break
		}
		body, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("scrape %d: status %d err %v", scrapes, resp.StatusCode, rerr)
		}
		lastMetrics = string(body)
		scrapes++

		hr, err := http.Get("http://" + addr + "/healthz")
		if err != nil {
			break
		}
		hr.Body.Close()
		if hr.StatusCode != http.StatusOK {
			t.Fatalf("healthz status %d", hr.StatusCode)
		}
	}
	if err := <-done; err != nil {
		t.Fatalf("resumed run: %v\n%s", err, errs.String())
	}
	if scrapes == 0 {
		t.Fatal("no successful /metrics scrape during the run")
	}
	for _, needle := range []string{"bulk_pairs_total", "bulk_resumed_pairs_total", "gcd_approximate_iterations_count"} {
		if !strings.Contains(lastMetrics, needle) {
			t.Fatalf("last scrape missing %s:\n%s", needle, lastMetrics)
		}
	}
	if !strings.Contains(errs.String(), "eta") {
		t.Fatalf("-v progress line missing rate/ETA:\n%s", errs.String())
	}

	// The final report agrees exactly with the run's printed Result.
	rep2 := readReport(t, r2)
	if rep2.Summary["canceled"] != false {
		t.Fatalf("phase 2 canceled: %v", rep2.Summary)
	}
	if got := rep2.Summary["pairs"].(float64); got != total {
		t.Fatalf("phase 2 pairs = %v, want %v", got, total)
	}
	var sumBroken, sumDup, sumKeys int
	if _, err := fmt.Sscanf(lastLineWith(out2.String(), "summary:"),
		"summary: %d broken, %d duplicate pairs out of %d keys", &sumBroken, &sumDup, &sumKeys); err != nil {
		t.Fatalf("summary line unparsable:\n%s", out2.String())
	}
	if float64(sumBroken) != rep2.Summary["broken"].(float64) ||
		float64(sumDup) != rep2.Summary["duplicate_pairs"].(float64) ||
		float64(sumKeys) != rep2.Summary["moduli"].(float64) {
		t.Fatalf("report summary %v disagrees with printed summary %d/%d/%d",
			rep2.Summary, sumBroken, sumDup, sumKeys)
	}
	if bad := rep2.Summary["quarantined_pairs"].(float64); bad != float64(strings.Count(out2.String(), "quarantined pair")) {
		t.Fatalf("quarantined pairs %v disagree with output", bad)
	}
	// Fresh metric pairs plus journal-replayed pairs cover the whole
	// triangle.
	c := rep2.Metrics.Counters
	if got := c["bulk_pairs_total"] + c["bulk_resumed_pairs_total"]; float64(got) != total {
		t.Fatalf("metrics pairs %d (fresh) + resumed != total %v", got, total)
	}

	// The trace file accumulated valid JSONL spans across both phases,
	// including two run spans (phase 1 and the resumed run).
	data, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	runs := 0
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		var ev map[string]any
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("bad trace line %q: %v", line, err)
		}
		if ev["name"] == "run" {
			runs++
		}
	}
	if runs != 2 {
		t.Fatalf("trace has %d run spans, want 2", runs)
	}
}

func lastLineWith(s, prefix string) string {
	var last string
	for _, line := range strings.Split(s, "\n") {
		if strings.HasPrefix(line, prefix) {
			last = line
		}
	}
	return last
}
