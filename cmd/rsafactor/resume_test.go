package main

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// findings strips an rsafactor transcript down to its attack findings —
// the lines whose content must be identical between an uninterrupted run
// and an interrupted-then-resumed one (timing and resume banners differ
// by construction).
func findings(out string) string {
	var keep []string
	for _, line := range strings.Split(out, "\n") {
		switch {
		case strings.HasPrefix(line, "BROKEN key"),
			strings.HasPrefix(line, "DUPLICATE moduli"),
			strings.HasPrefix(line, "  n = "),
			strings.HasPrefix(line, "  p = "),
			strings.HasPrefix(line, "  q = "),
			strings.HasPrefix(line, "  d = "),
			strings.HasPrefix(line, "summary:"),
			strings.HasPrefix(line, "quarantined"):
			keep = append(keep, line)
		}
	}
	return strings.Join(keep, "\n")
}

// TestCheckpointKillResume is the PR's acceptance test at the CLI level:
// a run with -checkpoint killed mid-run, then resumed with -resume
// (repeatedly, with further kills), ends with findings byte-identical to
// an uninterrupted run.
func TestCheckpointKillResume(t *testing.T) {
	dir := t.TempDir()
	cp, _ := writeCorpus(t, dir, 16, 128, 3, 21)

	var cleanOut bytes.Buffer
	if err := run(context.Background(), []string{"-in", cp}, nil, &cleanOut, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	want := findings(cleanOut.String())
	if !strings.Contains(want, "BROKEN key") {
		t.Fatalf("clean run found nothing:\n%s", cleanOut.String())
	}

	journal := filepath.Join(dir, "run.jsonl")

	// First run: journal and kill early.
	var out bytes.Buffer
	err := run(context.Background(), []string{"-in", cp, "-checkpoint", journal, "-cancel-after", "5"},
		nil, &out, &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "-resume") {
		t.Fatalf("interrupted run: err = %v", err)
	}

	// Resume with further kills at increasing points until one finishes;
	// every intermediate kill must leave a resumable journal.
	var final string
	for attempt, after := 0, int64(20); ; attempt, after = attempt+1, after*3 {
		if attempt > 20 {
			t.Fatal("resume never completed")
		}
		var out bytes.Buffer
		err := run(context.Background(),
			[]string{"-in", cp, "-resume", journal, "-cancel-after", fmt.Sprint(after)},
			nil, &out, &bytes.Buffer{})
		if err == nil {
			final = out.String()
			break
		}
		if !strings.Contains(err.Error(), "interrupted") {
			t.Fatalf("resume attempt %d: %v", attempt, err)
		}
	}
	if !strings.Contains(final, "resuming from") {
		t.Fatalf("resume banner missing:\n%s", final)
	}
	if got := findings(final); got != want {
		t.Fatalf("resumed findings differ from clean run\n--- resumed ---\n%s\n--- clean ---\n%s", got, want)
	}
}

// TestResumeCompletedJournalIsIdempotent: resuming a finished run
// recomputes nothing and reproduces the findings.
func TestResumeCompletedJournalIsIdempotent(t *testing.T) {
	dir := t.TempDir()
	cp, _ := writeCorpus(t, dir, 10, 128, 2, 22)
	journal := filepath.Join(dir, "run.jsonl")

	var first bytes.Buffer
	if err := run(context.Background(), []string{"-in", cp, "-checkpoint", journal}, nil, &first, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	var second bytes.Buffer
	if err := run(context.Background(), []string{"-in", cp, "-resume", journal}, nil, &second, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	if findings(first.String()) != findings(second.String()) {
		t.Fatalf("replay differs:\n%s\nvs\n%s", first.String(), second.String())
	}
}

// TestResumeWrongCorpusRejected: a journal must not be replayed against a
// different corpus.
func TestResumeWrongCorpusRejected(t *testing.T) {
	dir := t.TempDir()
	cp1, _ := writeCorpus(t, dir, 8, 128, 1, 23)
	journal := filepath.Join(dir, "run.jsonl")
	var sink bytes.Buffer
	if err := run(context.Background(), []string{"-in", cp1, "-checkpoint", journal}, nil, &sink, &sink); err != nil {
		t.Fatal(err)
	}
	dir2 := t.TempDir()
	cp2, _ := writeCorpus(t, dir2, 8, 128, 1, 24)
	err := run(context.Background(), []string{"-in", cp2, "-resume", journal}, nil, &sink, &sink)
	if err == nil || !strings.Contains(err.Error(), "different run") {
		t.Fatalf("foreign journal accepted: %v", err)
	}
}

func TestCheckpointFlagConflicts(t *testing.T) {
	dir := t.TempDir()
	cp, _ := writeCorpus(t, dir, 6, 128, 1, 25)
	j := filepath.Join(dir, "j.jsonl")
	var sink bytes.Buffer
	if err := run(context.Background(), []string{"-in", cp, "-checkpoint", j, "-resume", j}, nil, &sink, &sink); err == nil {
		t.Error("-checkpoint with -resume accepted")
	}
	if err := run(context.Background(), []string{"-in", cp, "-batch", "-checkpoint", j}, nil, &sink, &sink); err == nil {
		t.Error("-batch with -checkpoint accepted")
	}
	if err := run(context.Background(), []string{"-in", cp, "-batch", "-resume", j}, nil, &sink, &sink); err == nil {
		t.Error("-batch with -resume accepted")
	}
	if err := run(context.Background(), []string{"-in", cp, "-resume", filepath.Join(dir, "missing.jsonl")}, nil, &sink, &sink); err == nil {
		t.Error("missing journal accepted")
	}
}

// TestQuarantineFlag: -quarantine reports bad moduli per-index and scans
// the rest; without it the corrupted corpus fails the run.
func TestQuarantineFlag(t *testing.T) {
	dir := t.TempDir()
	cp, _ := writeCorpus(t, dir, 10, 128, 2, 26)
	// Corrupt the corpus with an even modulus line.
	data, err := os.ReadFile(cp)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(cp, append(data, []byte("10\n")...), 0o644); err != nil {
		t.Fatal(err)
	}
	var sink bytes.Buffer
	if err := run(context.Background(), []string{"-in", cp}, nil, &sink, &sink); err == nil {
		t.Fatal("corrupted corpus accepted without -quarantine")
	}
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-in", cp, "-quarantine"}, nil, &out, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "quarantined modulus 10: even") {
		t.Fatalf("quarantine report missing:\n%s", out.String())
	}
	if strings.Count(out.String(), "BROKEN key") != 4 {
		t.Fatalf("quarantined run lost findings:\n%s", out.String())
	}
}
