// Command gcdbench regenerates the paper's evaluation tables:
//
//	gcdbench -table 4                reproduce Table IV (iteration counts)
//	gcdbench -table 5                reproduce Table V (CPU vs GPU time)
//	gcdbench -table 4,5 -json b.json both tables, plus a JSON report artifact
//	gcdbench -cores 1,2,4,8          multicore scaling sweep (speedup, efficiency, steals)
//	gcdbench -betastats              Section V beta > 0 statistics
//	gcdbench -memops                 Section IV memory-op accounting (Fig. 1)
//	gcdbench -status :8080           live /metrics + pprof while the sweep runs
//
// Scale flags (-pairs, -moduli, -sizes) trade fidelity for runtime; the
// defaults finish in seconds, while the paper-scale values (-pairs 10000,
// -moduli 16384) run for hours exactly like the original evaluation did.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"
	"strconv"
	"strings"

	"bulkgcd/internal/engine"
	"bulkgcd/internal/experiments"
	"bulkgcd/internal/obs"
	"bulkgcd/internal/sigctx"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gcdbench: ")
	ctx, stop := sigctx.WithSignals(context.Background(), os.Stderr, "gcdbench")
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		log.Fatal(err)
	}
}

// run implements the tool; factored out of main so tests can drive it.
func run(ctx context.Context, args []string, stdout, stderrW io.Writer) error {
	fs := flag.NewFlagSet("gcdbench", flag.ContinueOnError)
	fs.SetOutput(stderrW)
	var (
		table     = fs.String("table", "", "paper tables to reproduce: 4, 5, or a comma list like 4,5")
		betastats = fs.Bool("betastats", false, "measure Section V beta>0 statistics")
		memops    = fs.Bool("memops", false, "measure Section IV memory operations per iteration")
		crossover = fs.Bool("crossover", false, "compare the attack engines over growing corpora (see -engine)")
		engines   = fs.String("engine", "pairs,batch,hybrid", "comma list of engines for -crossover: pairs|batch|hybrid")
		kernel    = fs.String("kernel", "scalar", "per-pair GCD kernel for -crossover: scalar|lanes (lanes = lockstep lane batches)")
		ablation  = fs.Bool("ablation", false, "ablate the design choices: word size d and early-terminate threshold")
		pairs     = fs.Int("pairs", 200, "random pairs per size (Table IV/stats; paper: 10000)")
		moduli    = fs.Int("moduli", 192, "corpus size for the bulk run (Table V; paper: 16384)")
		cpuPairs  = fs.Int("cpupairs", 50, "pairs for sequential CPU timing (Table V)")
		simThr    = fs.Int("simthreads", 128, "bulk width for the UMM simulation (Table V)")
		width     = fs.Int("ummwidth", 32, "UMM width w")
		latency   = fs.Int("ummlatency", 200, "UMM latency l")
		clock     = fs.Float64("clock", 1.0, "simulated clock in GHz for unit->time conversion")
		sms       = fs.Int("sms", 15, "simulated streaming multiprocessors (independent UMM units)")
		early     = fs.Bool("early", true, "use early-terminate variants (Table V)")
		workers   = fs.Int("workers", 0, "worker-pool size for both crossover engines (0 = all CPUs)")
		coresStr  = fs.String("cores", "", "comma list of pool widths for the multicore scaling sweep (e.g. 1,2,4,8); pins GOMAXPROCS per point")
		seed      = fs.Int64("seed", 1, "deterministic seed")
		sizesStr  = fs.String("sizes", "512,1024,2048,4096", "comma-separated modulus sizes")
		ckptDir   = fs.String("checkpoint", "", "journal Table V bulk runs to this directory and resume interrupted cells from it")
		jsonOut   = fs.String("json", "", "write the table results as a JSON report (schema "+obs.ReportSchema+") to this file")
		status    = fs.String("status", "", "serve /healthz, /metrics and /debug/pprof on this address (e.g. :8080) while the run lasts")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	sizes, err := parseSizes(*sizesStr)
	if err != nil {
		return err
	}
	tables, err := parseTables(*table)
	if err != nil {
		return err
	}

	// The registry feeds the live status server and the JSON report;
	// either flag turns metrics on.
	var reg *obs.Registry
	if *status != "" || *jsonOut != "" {
		reg = obs.NewRegistry()
	}
	if *status != "" {
		srv, err := obs.ServeStatus(*status, reg)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(stderrW, "gcdbench: status on http://%s/metrics\n", srv.Addr())
	}
	var rpt *obs.Report
	if *jsonOut != "" {
		rpt = obs.NewReport("gcdbench")
		rpt.Params = map[string]any{
			"tables": *table, "sizes": sizes, "pairs": *pairs,
			"moduli": *moduli, "cpupairs": *cpuPairs, "early": *early,
			"seed": *seed,
		}
	}

	ran := false
	if tables[4] {
		ran = true
		fmt.Fprintf(stdout, "Table IV: mean iterations over %d pairs per size (NT = non-terminate, ET = early-terminate)\n\n", *pairs)
		res, err := experiments.RunTableIV(experiments.TableIVConfig{
			Sizes: sizes, Pairs: *pairs, Seed: *seed, Metrics: reg,
		})
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, res.Table().String())
		if rpt != nil {
			rpt.Tables["table_iv"] = res.JSON()
		}
	}
	if tables[5] {
		ran = true
		mode := "early-terminate"
		if !*early {
			mode = "non-terminate"
		}
		fmt.Fprintf(stdout, "Table V: time per GCD, %s; bulk corpus %d moduli; UMM w=%d l=%d clock=%.2fGHz SMs=%d\n",
			mode, *moduli, *width, *latency, *clock, *sms)
		fmt.Fprintf(stdout, "(GPU-par = host-parallel bulk executor; GPU-sim = UMM model simulation)\n\n")
		if *ckptDir != "" {
			if err := os.MkdirAll(*ckptDir, 0o755); err != nil {
				return err
			}
		}
		res, err := experiments.RunTableVContext(ctx, experiments.TableVConfig{
			Sizes: sizes, CPUPairs: *cpuPairs, BulkModuli: *moduli,
			SimThreads: *simThr, UMMWidth: *width, UMMLatency: *latency,
			ClockGHz: *clock, SMs: *sms, Early: *early, Seed: *seed,
			CheckpointDir: *ckptDir, Metrics: reg,
		})
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, res.Table().String())
		if rpt != nil {
			rpt.Tables["table_v"] = res.JSON()
		}
	}
	if *betastats {
		ran = true
		fmt.Fprintf(stdout, "Section V: approx() beta>0 frequency over %d pairs per size\n\n", *pairs)
		res, err := experiments.RunBetaStats(experiments.BetaStatsConfig{
			Sizes: sizes, Pairs: *pairs, Seed: *seed,
		})
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, res.Table().String())
	}
	if *memops {
		ran = true
		fmt.Fprintf(stdout, "Section IV / Figure 1: word memory operations per iteration (early-terminate Approximate)\n\n")
		res, err := experiments.RunMemOps(sizes, *pairs, *seed)
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, res.Table().String())
	}
	if *crossover {
		ran = true
		size := sizes[0]
		w := *workers
		if w <= 0 {
			w = runtime.GOMAXPROCS(0)
		}
		kinds, err := parseEngines(*engines)
		if err != nil {
			return err
		}
		kk, err := engine.ParseKernelKind(*kernel)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "Engine comparison at %d bits, %d workers per engine: %s (%s kernel)\n\n", size, w, *engines, kk)
		ps, err := experiments.RunEngineComparisonContext(ctx, size, nil, w, *seed, kinds, kk)
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, experiments.EngineComparisonTable(ps, kinds).String())
		if rpt != nil {
			rpt.Tables["engine_comparison"] = experiments.EngineComparisonJSON(ps)
		}
	}
	if *coresStr != "" {
		ran = true
		cores, err := parseCores(*coresStr)
		if err != nil {
			return err
		}
		kk, err := engine.ParseKernelKind(*kernel)
		if err != nil {
			return err
		}
		size := sizes[0]
		fmt.Fprintf(stdout, "Multicore scaling: all-pairs engine, %d moduli at %d bits, %s kernel (this machine: %d CPUs)\n\n",
			*moduli, size, kk, runtime.NumCPU())
		ps, err := experiments.RunCoreScalingContext(ctx, experiments.CoreScalingConfig{
			Cores: cores, Moduli: *moduli, Bits: size, Seed: *seed, Kernel: kk,
		})
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, experiments.CoreScalingTable(ps).String())
		if rpt != nil {
			rpt.Tables["core_scaling"] = experiments.CoreScalingJSON(ps)
		}
	}
	if *ablation {
		ran = true
		size := sizes[0]
		fmt.Fprintf(stdout, "Ablation 1: quotient approximation quality vs word size d (%d-bit moduli, %d pairs)\n\n", size, *pairs)
		wa, err := experiments.RunWordSizeAblation(size, *pairs, nil, *seed)
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, wa.Table().String())
		fmt.Fprintf(stdout, "\nAblation 2: early-terminate threshold (%d-bit moduli, %d pairs)\n\n", size, *pairs)
		ta, err := experiments.RunThresholdAblation(size, *pairs, nil, *seed)
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, ta.Table().String())
	}
	if !ran {
		return fmt.Errorf("nothing to do: pass -table 4, -table 5, -betastats, -memops, -crossover, -cores and/or -ablation")
	}
	if rpt != nil {
		rpt.Finish(reg)
		if err := rpt.WriteFile(*jsonOut); err != nil {
			return err
		}
		fmt.Fprintf(stderrW, "gcdbench: wrote %s\n", *jsonOut)
	}
	return nil
}

// parseEngines parses the -engine comma list into engine kinds,
// preserving order and dropping duplicates.
func parseEngines(s string) ([]engine.Kind, error) {
	var out []engine.Kind
	seen := map[engine.Kind]bool{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		k, err := engine.ParseKind(part)
		if err != nil {
			return nil, fmt.Errorf("bad engine %q (want pairs, batch or hybrid)", part)
		}
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no engines given")
	}
	return out, nil
}

// parseCores parses the -cores comma list into ascending-order-as-given
// pool widths.
func parseCores(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil || v < 1 || v > 1024 {
			return nil, fmt.Errorf("bad core count %q (need integers in 1..1024)", part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no core counts given")
	}
	return out, nil
}

// parseTables parses the -table comma list ("", "4", "4,5") into a set.
func parseTables(s string) (map[int]bool, error) {
	out := map[int]bool{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil || (v != 4 && v != 5) {
			return nil, fmt.Errorf("bad table %q (only 4 and 5 exist)", part)
		}
		out[v] = true
	}
	return out, nil
}

func parseSizes(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil || v < 64 || v%2 != 0 {
			return nil, fmt.Errorf("bad size %q (need even integers >= 64)", part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no sizes given")
	}
	return out, nil
}
