package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestTable4Small(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-table", "4", "-pairs", "10", "-sizes", "256"}, &out, &bytes.Buffer{})
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, needle := range []string{"(A) Original", "(E) Approximate", "(E)-(B)", "NT 256", "ET 256"} {
		if !strings.Contains(s, needle) {
			t.Fatalf("missing %q:\n%s", needle, s)
		}
	}
}

func TestTable5Small(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-table", "5", "-sizes", "256", "-moduli", "24",
		"-cpupairs", "10", "-simthreads", "16"}, &out, &bytes.Buffer{})
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, needle := range []string{"CPU (C)", "GPU-par (E)", "GPU-sim (D)", "CPU/GPU-sim (E)", "coalesced (C)"} {
		if !strings.Contains(s, needle) {
			t.Fatalf("missing %q:\n%s", needle, s)
		}
	}
}

func TestBetaStatsAndMemOps(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-betastats", "-memops", "-pairs", "10", "-sizes", "256"}, &out, &bytes.Buffer{})
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "beta>0") || !strings.Contains(s, "3*s/d") {
		t.Fatalf("stats output wrong:\n%s", s)
	}
}

func TestParseSizes(t *testing.T) {
	got, err := parseSizes("512, 1024 ,2048")
	if err != nil || len(got) != 3 || got[1] != 1024 {
		t.Fatalf("parseSizes = %v, %v", got, err)
	}
	for _, bad := range []string{"", "abc", "63", "0", ","} {
		if _, err := parseSizes(bad); err == nil {
			t.Errorf("parseSizes(%q) accepted", bad)
		}
	}
}

func TestRunErrors(t *testing.T) {
	var sink bytes.Buffer
	if err := run(nil, &sink, &sink); err == nil {
		t.Error("no-op invocation accepted")
	}
	if err := run([]string{"-table", "4", "-sizes", "bogus"}, &sink, &sink); err == nil {
		t.Error("bad sizes accepted")
	}
	if err := run([]string{"-nope"}, &sink, &sink); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestCrossover(t *testing.T) {
	var out bytes.Buffer
	// Default crossover sweep is sized for real measurement; here we just
	// exercise the path with the smallest size and an explicit pool size
	// shared by both engines.
	err := run([]string{"-crossover", "-sizes", "256", "-workers", "2"}, &out, &bytes.Buffer{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "batch GCD") {
		t.Fatalf("crossover output wrong:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "2 workers per engine") {
		t.Fatalf("crossover header missing pool size:\n%s", out.String())
	}
}

func TestAblation(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-ablation", "-sizes", "256", "-pairs", "10"}, &out, &bytes.Buffer{})
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "word size d") || !strings.Contains(s, "0.50*s") {
		t.Fatalf("ablation output wrong:\n%s", s)
	}
}
