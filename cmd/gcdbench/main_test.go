package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestTable4Small(t *testing.T) {
	var out bytes.Buffer
	err := run(context.Background(), []string{"-table", "4", "-pairs", "10", "-sizes", "256"}, &out, &bytes.Buffer{})
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, needle := range []string{"(A) Original", "(E) Approximate", "(E)-(B)", "NT 256", "ET 256"} {
		if !strings.Contains(s, needle) {
			t.Fatalf("missing %q:\n%s", needle, s)
		}
	}
}

func TestTable5Small(t *testing.T) {
	var out bytes.Buffer
	err := run(context.Background(), []string{"-table", "5", "-sizes", "256", "-moduli", "24",
		"-cpupairs", "10", "-simthreads", "16"}, &out, &bytes.Buffer{})
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, needle := range []string{"CPU (C)", "GPU-par (E)", "GPU-sim (D)", "CPU/GPU-sim (E)", "coalesced (C)"} {
		if !strings.Contains(s, needle) {
			t.Fatalf("missing %q:\n%s", needle, s)
		}
	}
}

func TestBetaStatsAndMemOps(t *testing.T) {
	var out bytes.Buffer
	err := run(context.Background(), []string{"-betastats", "-memops", "-pairs", "10", "-sizes", "256"}, &out, &bytes.Buffer{})
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "beta>0") || !strings.Contains(s, "3*s/d") {
		t.Fatalf("stats output wrong:\n%s", s)
	}
}

// TestTable5Checkpoint: a journaled Table V run writes one journal per
// bulk cell, and rerunning against the same directory replays them (the
// resumed run recomputes nothing but still renders the full table).
func TestTable5Checkpoint(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "journals")
	args := []string{"-table", "5", "-sizes", "256", "-moduli", "24",
		"-cpupairs", "10", "-simthreads", "16", "-checkpoint", dir}
	var first bytes.Buffer
	if err := run(context.Background(), args, &first, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	journals, err := filepath.Glob(filepath.Join(dir, "tablev-*-256.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(journals) == 0 {
		t.Fatalf("no journals written to %s", dir)
	}
	var second bytes.Buffer
	if err := run(context.Background(), args, &second, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	for _, needle := range []string{"CPU (C)", "GPU-par (E)", "GPU-sim (D)"} {
		if !strings.Contains(second.String(), needle) {
			t.Fatalf("resumed table missing %q:\n%s", needle, second.String())
		}
	}
}

func TestParseSizes(t *testing.T) {
	got, err := parseSizes("512, 1024 ,2048")
	if err != nil || len(got) != 3 || got[1] != 1024 {
		t.Fatalf("parseSizes = %v, %v", got, err)
	}
	for _, bad := range []string{"", "abc", "63", "0", ","} {
		if _, err := parseSizes(bad); err == nil {
			t.Errorf("parseSizes(%q) accepted", bad)
		}
	}
}

func TestRunErrors(t *testing.T) {
	var sink bytes.Buffer
	if err := run(context.Background(), nil, &sink, &sink); err == nil {
		t.Error("no-op invocation accepted")
	}
	if err := run(context.Background(), []string{"-table", "4", "-sizes", "bogus"}, &sink, &sink); err == nil {
		t.Error("bad sizes accepted")
	}
	if err := run(context.Background(), []string{"-nope"}, &sink, &sink); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestCrossover(t *testing.T) {
	var out bytes.Buffer
	// Default crossover sweep is sized for real measurement; here we just
	// exercise the path with the smallest size and an explicit pool size
	// shared by both engines.
	err := run(context.Background(), []string{"-crossover", "-sizes", "256", "-workers", "2"}, &out, &bytes.Buffer{})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"t(pairs)", "t(batch)", "t(hybrid)"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("crossover output missing %q:\n%s", want, out.String())
		}
	}
	if !strings.Contains(out.String(), "2 workers per engine") {
		t.Fatalf("crossover header missing pool size:\n%s", out.String())
	}

	// An explicit engine subset narrows the columns.
	out.Reset()
	err = run(context.Background(), []string{"-crossover", "-sizes", "256", "-workers", "2", "-engine", "hybrid"}, &out, &bytes.Buffer{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "t(hybrid)") || strings.Contains(out.String(), "t(batch)") {
		t.Fatalf("engine subset not honored:\n%s", out.String())
	}
}

func TestCrossoverLanesKernel(t *testing.T) {
	jsonPath := filepath.Join(t.TempDir(), "bench.json")
	var out bytes.Buffer
	err := run(context.Background(), []string{"-crossover", "-sizes", "256", "-workers", "2",
		"-engine", "pairs,hybrid", "-kernel", "lanes", "-json", jsonPath}, &out, &bytes.Buffer{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "(lanes kernel)") {
		t.Fatalf("crossover header missing kernel:\n%s", out.String())
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"kernel": "lanes"`) &&
		!strings.Contains(string(data), `"kernel":"lanes"`) {
		t.Fatalf("engine_comparison rows missing kernel field:\n%s", data)
	}

	var sink bytes.Buffer
	if err := run(context.Background(), []string{"-crossover", "-kernel", "warp"}, &sink, &sink); err == nil {
		t.Error("unknown kernel accepted")
	}
}

func TestAblation(t *testing.T) {
	var out bytes.Buffer
	err := run(context.Background(), []string{"-ablation", "-sizes", "256", "-pairs", "10"}, &out, &bytes.Buffer{})
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "word size d") || !strings.Contains(s, "0.50*s") {
		t.Fatalf("ablation output wrong:\n%s", s)
	}
}
