package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestJSONReport: -table 4,5 renders both tables and -json writes one
// bulkgcd.bench.v1 artifact carrying both in machine-readable form plus
// the metric snapshot.
func TestJSONReport(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	var stdout, stderr bytes.Buffer
	err := run(context.Background(),
		[]string{"-table", "4,5", "-pairs", "20", "-moduli", "24", "-cpupairs", "5",
			"-simthreads", "8", "-sizes", "128,256", "-json", out},
		&stdout, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	for _, needle := range []string{"Table IV", "Table V", "(E)-(B)", "CPU (C)"} {
		if !strings.Contains(stdout.String(), needle) {
			t.Fatalf("missing %q in output:\n%s", needle, stdout.String())
		}
	}

	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rpt struct {
		Schema string `json:"schema"`
		Tool   string `json:"tool"`
		Tables struct {
			TableIV struct {
				Sizes []int `json:"sizes"`
				Rows  []struct {
					Letter string    `json:"letter"`
					MeanNT []float64 `json:"mean_nt"`
					MeanET []float64 `json:"mean_et"`
				} `json:"rows"`
				DiffEBNT []float64 `json:"diff_eb_nt"`
			} `json:"table_iv"`
			TableV struct {
				Rows []struct {
					Letter string `json:"letter"`
					Cells  []struct {
						Size      int     `json:"size"`
						CPUMicros float64 `json:"cpu_us"`
					} `json:"cells"`
				} `json:"rows"`
			} `json:"table_v"`
		} `json:"tables"`
		Metrics struct {
			Histograms map[string]struct {
				Count int64 `json:"count"`
			} `json:"histograms"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal(data, &rpt); err != nil {
		t.Fatal(err)
	}
	if rpt.Schema != "bulkgcd.bench.v1" || rpt.Tool != "gcdbench" {
		t.Fatalf("schema/tool = %q/%q", rpt.Schema, rpt.Tool)
	}
	if len(rpt.Tables.TableIV.Rows) != 5 || len(rpt.Tables.TableIV.DiffEBNT) != 2 {
		t.Fatalf("table_iv shape wrong: %+v", rpt.Tables.TableIV)
	}
	for _, row := range rpt.Tables.TableIV.Rows {
		for i := range rpt.Tables.TableIV.Sizes {
			if row.MeanNT[i] <= 0 || row.MeanET[i] <= 0 {
				t.Fatalf("row %s has non-positive means: %+v", row.Letter, row)
			}
			// Early termination can only shorten the loop.
			if row.MeanET[i] > row.MeanNT[i] {
				t.Fatalf("row %s: ET mean exceeds NT mean: %+v", row.Letter, row)
			}
		}
	}
	if len(rpt.Tables.TableV.Rows) != 3 {
		t.Fatalf("table_v rows = %d, want 3", len(rpt.Tables.TableV.Rows))
	}
	for _, row := range rpt.Tables.TableV.Rows {
		for _, cell := range row.Cells {
			if cell.CPUMicros <= 0 {
				t.Fatalf("row %s cell %d: cpu_us = %v", row.Letter, cell.Size, cell.CPUMicros)
			}
		}
	}
	// The live registry saw both the Table IV sweep and Table V's bulk runs.
	if h, ok := rpt.Metrics.Histograms["gcd_approximate_iterations"]; !ok || h.Count == 0 {
		t.Fatalf("live gcd histogram missing from snapshot: %v", rpt.Metrics.Histograms)
	}
	if h, ok := rpt.Metrics.Histograms["bulk_block_seconds"]; !ok || h.Count == 0 {
		t.Fatalf("live bulk histogram missing from snapshot: %v", rpt.Metrics.Histograms)
	}
}

func TestBadTableFlag(t *testing.T) {
	var sink bytes.Buffer
	if err := run(context.Background(), []string{"-table", "6"}, &sink, &sink); err == nil {
		t.Error("-table 6 accepted")
	}
	if err := run(context.Background(), []string{"-table", "4,x"}, &sink, &sink); err == nil {
		t.Error("-table 4,x accepted")
	}
}
