package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestSelfTestPasses(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-n", "200", "-maxbits", "512", "-v"}, &out); err != nil {
		t.Fatalf("self test failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "self-test passed: 200 cases") {
		t.Fatalf("summary missing:\n%s", out.String())
	}
}

func TestSelfTestDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := run([]string{"-n", "50", "-maxbits", "256", "-seed", "9"}, &a); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-n", "50", "-maxbits", "256", "-seed", "9"}, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("campaign not reproducible")
	}
}

func TestSelfTestValidation(t *testing.T) {
	var sink bytes.Buffer
	if err := run([]string{"-n", "0"}, &sink); err == nil {
		t.Error("n=0 accepted")
	}
	if err := run([]string{"-maxbits", "4"}, &sink); err == nil {
		t.Error("maxbits=4 accepted")
	}
	if err := run([]string{"-junk"}, &sink); err == nil {
		t.Error("unknown flag accepted")
	}
}
