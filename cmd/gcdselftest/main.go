// Command gcdselftest runs a randomized differential campaign over the
// production GCD engines: every case is checked against math/big, a
// sample additionally against the d-configurable reference implementation
// (values, iteration counts and approx() case mix). It is the
// deploy-time confidence check for the word-level arithmetic.
//
// Usage:
//
//	gcdselftest [-n 2000] [-maxbits 2048] [-seed 1] [-v]
//
// Exit status is non-zero on the first mismatch, with a reproducer line.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"math/big"
	"math/rand"
	"os"

	"bulkgcd/internal/gcd"
	"bulkgcd/internal/mpnat"
	"bulkgcd/internal/refgcd"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gcdselftest: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run implements the tool; factored out of main so tests can drive it.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("gcdselftest", flag.ContinueOnError)
	fs.SetOutput(stdout)
	var (
		n       = fs.Int("n", 2000, "number of random cases")
		maxBits = fs.Int("maxbits", 2048, "maximum operand size in bits")
		seed    = fs.Int64("seed", 1, "PRNG seed (campaigns are reproducible)")
		verbose = fs.Bool("v", false, "progress output")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *n < 1 || *maxBits < 8 {
		return fmt.Errorf("need -n >= 1 and -maxbits >= 8")
	}
	r := rand.New(rand.NewSource(*seed))
	scratch := gcd.NewScratch(*maxBits)
	refChecked := 0
	for i := 0; i < *n; i++ {
		x, y := randCase(r, *maxBits)
		want := new(big.Int).GCD(nil, nil, x, y)
		nx, ny := mpnat.FromBig(x), mpnat.FromBig(y)
		for _, alg := range gcd.Algorithms {
			g, st := scratch.Compute(alg, nx, ny, gcd.Options{})
			if g.ToBig().Cmp(want) != 0 {
				return fmt.Errorf("case %d: %v(%#x, %#x) = %v, want %v", i, alg, x, y, g, want)
			}
			// Sampled deep check against the reference implementation.
			if alg == gcd.Approximate && i%16 == 0 {
				ref, err := refgcd.Run(refgcd.Approximate, x, y, refgcd.Options{WordBits: 32})
				if err != nil {
					return fmt.Errorf("case %d: reference: %v", i, err)
				}
				if ref.Iterations != st.Iterations || ref.BetaNonZero != st.BetaNonZero {
					return fmt.Errorf("case %d: iteration trace diverged from reference: %d/%d vs %d/%d (inputs %#x, %#x)",
						i, st.Iterations, st.BetaNonZero, ref.Iterations, ref.BetaNonZero, x, y)
				}
				refChecked++
			}
		}
		// Early-terminate soundness on a planted shared factor.
		if i%8 == 0 {
			g := randOdd(r, x.BitLen()/2+1)
			px := new(big.Int).Mul(x, g)
			py := new(big.Int).Mul(y, g)
			s := px.BitLen()
			if pb := py.BitLen(); pb < s {
				s = pb
			}
			if g.BitLen() >= (s+1)/2 {
				found, _ := scratch.Compute(gcd.Approximate, mpnat.FromBig(px), mpnat.FromBig(py),
					gcd.Options{EarlyBits: s / 2})
				if found == nil || new(big.Int).Mod(found.ToBig(), g).Sign() != 0 {
					return fmt.Errorf("case %d: early terminate missed planted factor", i)
				}
			}
		}
		if *verbose && (i+1)%500 == 0 {
			fmt.Fprintf(stdout, "%d/%d cases ok\n", i+1, *n)
		}
	}
	fmt.Fprintf(stdout, "self-test passed: %d cases x 5 algorithms vs math/big, %d deep reference checks\n",
		*n, refChecked)
	return nil
}

// randCase draws an odd pair with operand sizes spread over [2, maxBits],
// mixing in small gcd-rich structures.
func randCase(r *rand.Rand, maxBits int) (*big.Int, *big.Int) {
	x := randOdd(r, 2+r.Intn(maxBits-1))
	y := randOdd(r, 2+r.Intn(maxBits-1))
	if r.Intn(4) == 0 { // plant a common odd factor
		g := randOdd(r, 1+r.Intn(maxBits/4+1))
		x.Mul(x, g)
		y.Mul(y, g)
	}
	return x, y
}

func randOdd(r *rand.Rand, bits int) *big.Int {
	if bits < 1 {
		bits = 1
	}
	v := new(big.Int)
	for v.BitLen() < bits {
		v.Lsh(v, 32)
		v.Or(v, new(big.Int).SetUint64(uint64(r.Uint32())))
	}
	v.Rsh(v, uint(v.BitLen()-bits))
	v.SetBit(v, bits-1, 1)
	v.SetBit(v, 0, 1)
	return v
}
