package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestFigure2(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-fig", "2"}, &out, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "8 time units") {
		t.Fatalf("Figure 2 output wrong:\n%s", out.String())
	}
}

func TestFigure3(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-fig", "3", "-w", "8", "-l", "16", "-p", "64", "-steps", "32"}, &out, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "column-wise") || !strings.Contains(s, "row-wise") {
		t.Fatalf("Figure 3 output wrong:\n%s", s)
	}
	if !strings.Contains(s, "1.000x") {
		t.Fatalf("column-wise should match Theorem 1 exactly:\n%s", s)
	}
}

func TestTheorem1(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-theorem1"}, &out, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "closed form") {
		t.Fatalf("Theorem 1 output wrong:\n%s", out.String())
	}
}

func TestSemiOblivious(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-semioblivious", "-bits", "256", "-p", "16", "-w", "8", "-l", "20"}, &out, &bytes.Buffer{})
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, needle := range []string{"(C) Binary", "(D) FastBinary", "(E) Approximate", "oblivious bound"} {
		if !strings.Contains(s, needle) {
			t.Fatalf("missing %q:\n%s", needle, s)
		}
	}
}

func TestRunErrors(t *testing.T) {
	var sink bytes.Buffer
	if err := run(nil, &sink, &sink); err == nil {
		t.Error("no-op invocation accepted")
	}
	if err := run([]string{"-fig", "9"}, &sink, &sink); err == nil {
		t.Error("unknown figure accepted")
	}
	if err := run([]string{"-badflag"}, &sink, &sink); err == nil {
		t.Error("unknown flag accepted")
	}
	if err := run([]string{"-fig", "3", "-p", "63"}, &sink, &sink); err == nil {
		t.Error("non-multiple p accepted")
	}
}

func TestDivergence(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-divergence", "-bits", "256", "-p", "32", "-w", "16"}, &out, &bytes.Buffer{})
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "divergence penalty") || !strings.Contains(s, "(C) Binary") {
		t.Fatalf("divergence output wrong:\n%s", s)
	}
}

func TestOccupancy(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-occupancy", "-bits", "256", "-p", "32"}, &out, &bytes.Buffer{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "resident warps") {
		t.Fatalf("occupancy output wrong:\n%s", out.String())
	}
}

func TestRelated(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-related", "-p", "32"}, &out, &bytes.Buffer{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "this paper") || !strings.Contains(out.String(), "Fujimoto") {
		t.Fatalf("related output wrong:\n%s", out.String())
	}
}

func TestObliviousTax(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-oblivioustax", "-bits", "256", "-p", "32", "-w", "16", "-l", "50"}, &out, &bytes.Buffer{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "tax of full obliviousness") {
		t.Fatalf("tax output wrong:\n%s", out.String())
	}
}
