// Command ummsim runs the UMM (Unified Memory Machine) model experiments
// of Section VI:
//
//	ummsim -fig 2         the worked warp-dispatch example (w=4, l=5)
//	ummsim -fig 3         column-wise vs row-wise layout comparison
//	ummsim -theorem1      sweep validating the O(p*t/w + l*t) bound
//	ummsim -semioblivious coalescing of the real bulk GCD execution
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"bulkgcd/internal/experiments"
	"bulkgcd/internal/gcd"
	"bulkgcd/internal/tabfmt"
	"bulkgcd/internal/umm"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ummsim: ")
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		log.Fatal(err)
	}
}

// run implements the tool; factored out of main so tests can drive it.
func run(args []string, stdout, stderrW io.Writer) error {
	fs := flag.NewFlagSet("ummsim", flag.ContinueOnError)
	fs.SetOutput(stderrW)
	var (
		fig     = fs.Int("fig", 0, "paper figure to reproduce: 2 or 3")
		theorem = fs.Bool("theorem1", false, "validate Theorem 1 over a (p, w, l) sweep")
		semi    = fs.Bool("semioblivious", false, "measure coalescing of the bulk GCD execution")
		diverg  = fs.Bool("divergence", false, "measure SIMT branch divergence of the bulk GCD kernels (Section VII)")
		occup   = fs.Bool("occupancy", false, "sweep resident warps on the integrated device model (latency hiding)")
		related = fs.Bool("related", false, "reproduce the Section I related-work comparison on device presets")
		tax     = fs.Bool("oblivioustax", false, "fully-oblivious GCD vs the paper's semi-oblivious Approximate on the UMM")
		width   = fs.Int("w", 32, "UMM width")
		latency = fs.Int("l", 200, "UMM latency")
		threads = fs.Int("p", 128, "bulk width (threads)")
		size    = fs.Int("bits", 1024, "modulus size for -semioblivious")
		steps   = fs.Int("steps", 64, "memory steps for -fig 3")
		seed    = fs.Int64("seed", 1, "deterministic seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	ran := false
	switch *fig {
	case 2:
		ran = true
		if err := figure2(stdout); err != nil {
			return err
		}
	case 3:
		ran = true
		if err := figure3(stdout, *width, *latency, *threads, *steps, *seed); err != nil {
			return err
		}
	case 0:
	default:
		return fmt.Errorf("unknown figure %d", *fig)
	}
	if *theorem {
		ran = true
		if err := theorem1(stdout); err != nil {
			return err
		}
	}
	if *semi {
		ran = true
		if err := semiOblivious(stdout, *width, *latency, *threads, *size, *seed); err != nil {
			return err
		}
	}
	if *diverg {
		ran = true
		fmt.Fprintf(stdout, "SIMT branch divergence (warp %d, p=%d threads, %d-bit moduli, early-terminate)\n\n",
			*width, *threads, *size)
		rs, err := experiments.RunDivergence(*width, 4, *size, *threads, true, *seed)
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, experiments.DivergenceTable(rs).String())
	}
	if *occup {
		ran = true
		fmt.Fprintf(stdout, "Latency hiding: occupancy sweep on the integrated device (p=%d threads, %d-bit moduli, Approximate)\n\n",
			*threads, *size)
		ps, err := experiments.RunOccupancySweep(nil, gcd.Approximate, *size, *threads, nil, *seed)
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, experiments.OccupancyTable(ps).String())
	}
	if *related {
		ran = true
		fmt.Fprintf(stdout, "Section I related work: published 1024-bit per-GCD times vs the device model (p=%d)\n\n", *threads)
		rows, err := experiments.RunRelatedWork(*threads, *seed)
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, experiments.RelatedWorkTable(rows).String())
	}
	if *tax {
		ran = true
		m, err := umm.New(*width, *latency)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "Obliviousness tax (p=%d threads, %d-bit moduli, UMM w=%d l=%d, non-terminate)\n\n",
			*threads, *size, *width, *latency)
		res, err := experiments.RunObliviousTax(m, *size, *threads, *seed)
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, res.Table().String())
	}
	if !ran {
		return fmt.Errorf("nothing to do: pass -fig 2, -fig 3, -theorem1, -semioblivious, -divergence, -occupancy, -related and/or -oblivioustax")
	}
	return nil
}

// figure2 reproduces the Section VI worked example: two warps on the UMM
// with w = 4 and l = 5, one spanning three address groups and one fully
// coalesced, complete in 3 + 1 + 5 - 1 = 8 time units.
func figure2(w io.Writer) error {
	m, err := umm.New(4, 5)
	if err != nil {
		return err
	}
	addrs := []int64{0, 5, 9, 2, 12, 13, 14, 15}
	b := m.Batch(addrs)
	fmt.Fprintln(w, "Figure 2: UMM with width w=4, latency l=5")
	fmt.Fprintf(w, "  W(0) requests addresses %v -> 3 address groups\n", addrs[:4])
	fmt.Fprintf(w, "  W(1) requests addresses %v -> 1 address group\n", addrs[4:])
	fmt.Fprintf(w, "  completion: (3+1)(groups) + %d(latency) - 1 = %d time units\n",
		5, b.Time)
	if b.Time != 8 {
		return fmt.Errorf("expected 8 time units, simulated %d", b.Time)
	}
	return nil
}

func figure3(out io.Writer, w, l, p, steps int, seed int64) error {
	res, err := experiments.RunLayout(w, l, p, steps, 32, seed)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "Figure 3: bulk execution of an oblivious algorithm, p=%d threads, %d steps, UMM w=%d l=%d\n\n",
		p, steps, w, l)
	t := tabfmt.NewTable("layout", "time units", "coalesced", "vs Theorem 1")
	t.AddRowF("column-wise", fmt.Sprintf("%d", res.ColumnTime),
		fmt.Sprintf("%.2f", res.ColumnCoalesced),
		fmt.Sprintf("%.3fx", float64(res.ColumnTime)/float64(res.TheoremTime)))
	t.AddRowF("row-wise", fmt.Sprintf("%d", res.RowTime),
		fmt.Sprintf("%.2f", res.RowCoalesced),
		fmt.Sprintf("%.3fx", float64(res.RowTime)/float64(res.TheoremTime)))
	fmt.Fprint(out, t.String())
	return nil
}

func theorem1(out io.Writer) error {
	fmt.Fprintln(out, "Theorem 1: bulk execution of an oblivious algorithm costs (p/w + l - 1) * t time units")
	fmt.Fprintln(out)
	t := tabfmt.NewTable("p", "w", "l", "t", "simulated", "closed form")
	for _, c := range []struct{ p, w, l, steps int }{
		{32, 4, 5, 16}, {64, 8, 20, 32}, {128, 32, 100, 64},
		{256, 32, 200, 48}, {512, 16, 50, 24},
	} {
		res, err := experiments.RunLayout(c.w, c.l, c.p, c.steps, 16, 7)
		if err != nil {
			return err
		}
		t.AddRowF(
			fmt.Sprintf("%d", c.p), fmt.Sprintf("%d", c.w), fmt.Sprintf("%d", c.l),
			fmt.Sprintf("%d", c.steps),
			fmt.Sprintf("%d", res.ColumnTime), fmt.Sprintf("%d", res.TheoremTime),
		)
		if res.ColumnTime != res.TheoremTime {
			return fmt.Errorf("Theorem 1 violated at p=%d w=%d l=%d", c.p, c.w, c.l)
		}
	}
	fmt.Fprint(out, t.String())
	return nil
}

func semiOblivious(out io.Writer, w, l, p, bits int, seed int64) error {
	m, err := umm.New(w, l)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "Semi-obliviousness of the bulk GCD (p=%d threads, %d-bit moduli, UMM w=%d l=%d)\n\n",
		p, bits, w, l)
	t := tabfmt.NewTable("algorithm", "coalesced frac", "units/GCD", "oblivious bound", "overhead")
	for _, alg := range []gcd.Algorithm{gcd.Binary, gcd.FastBinary, gcd.Approximate} {
		res, err := experiments.RunSemiOblivious(m, alg, bits, p, true, seed)
		if err != nil {
			return err
		}
		t.AddRowF(
			fmt.Sprintf("(%s) %s", alg.Letter(), alg),
			fmt.Sprintf("%.3f", res.CoalescedFrac),
			fmt.Sprintf("%.0f", res.TimePerGCD),
			fmt.Sprintf("%.0f", res.ObliviousLower),
			fmt.Sprintf("%.2fx", res.TimePerGCD/res.ObliviousLower),
		)
	}
	fmt.Fprint(out, t.String())
	return nil
}
