// Command keygen generates a corpus of RSA moduli with planted weak pairs,
// the synthetic stand-in for the paper's OpenSSL-generated and
// Web-collected key sets.
//
// Usage:
//
//	keygen -n 64 -bits 512 -weak 3 -seed 42 -o corpus.txt [-truth truth.txt]
//
// The corpus file holds one hex modulus per line. With -truth, the planted
// ground truth (pair indices and shared primes) is written separately so
// attack results can be verified.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"bulkgcd/internal/corpus"
	"bulkgcd/internal/pemkeys"
	"bulkgcd/internal/rsakey"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("keygen: ")
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		log.Fatal(err)
	}
}

// run implements the tool; factored out of main so tests can drive it.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("keygen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		n      = fs.Int("n", 64, "number of moduli")
		bits   = fs.Int("bits", 512, "modulus size in bits")
		weak   = fs.Int("weak", 2, "number of planted weak pairs (pairs sharing a prime)")
		seed   = fs.Int64("seed", 1, "deterministic generation seed")
		out    = fs.String("o", "-", "output file (- for stdout)")
		truth  = fs.String("truth", "", "optional ground-truth output file")
		pseudo = fs.Bool("pseudo", false, "use fast pseudo-moduli (for benchmarking only)")
		format = fs.String("format", "hex", "output format: hex (corpus lines) or pem (PKIX public keys)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	c, err := rsakey.GenerateCorpus(rsakey.CorpusSpec{
		Count: *n, Bits: *bits, WeakPairs: *weak, Seed: *seed, Pseudo: *pseudo,
	})
	if err != nil {
		return err
	}

	w, closeW, err := openOut(*out, stdout)
	if err != nil {
		return err
	}
	switch *format {
	case "hex":
		comment := fmt.Sprintf("bulkgcd corpus: n=%d bits=%d weak=%d seed=%d pseudo=%v",
			*n, *bits, *weak, *seed, *pseudo)
		if err := corpus.Write(w, c.Moduli(), comment); err != nil {
			return err
		}
	case "pem":
		for _, k := range c.Keys {
			if err := pemkeys.WritePublicKey(w, k.N.ToBig(), k.E); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("unknown format %q (hex or pem)", *format)
	}
	if err := closeW(); err != nil {
		return err
	}

	if *truth != "" {
		f, err := os.Create(*truth)
		if err != nil {
			return err
		}
		fmt.Fprintf(f, "# planted weak pairs: i j shared-prime-hex\n")
		for _, pp := range c.Planted {
			fmt.Fprintf(f, "%d %d %x\n", pp.I, pp.J, pp.P)
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	fmt.Fprintf(stderr, "keygen: wrote %d moduli (%d bits, %d weak pairs)\n", *n, *bits, *weak)
	return nil
}

func openOut(path string, stdout io.Writer) (io.Writer, func() error, error) {
	if path == "-" {
		return stdout, func() error { return nil }, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	return f, f.Close, nil
}
