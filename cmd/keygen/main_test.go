package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bulkgcd/internal/corpus"
)

func TestRunWritesCorpusToStdout(t *testing.T) {
	var out, errOut bytes.Buffer
	err := run([]string{"-n", "8", "-bits", "64", "-weak", "1", "-seed", "3"}, &out, &errOut)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := corpus.Read(&out)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 8 {
		t.Fatalf("wrote %d moduli, want 8", len(ms))
	}
	for i, m := range ms {
		if m.BitLen() != 64 {
			t.Fatalf("modulus %d has %d bits", i, m.BitLen())
		}
	}
	if !strings.Contains(errOut.String(), "wrote 8 moduli") {
		t.Fatalf("status line missing: %q", errOut.String())
	}
}

func TestRunWritesFilesAndTruth(t *testing.T) {
	dir := t.TempDir()
	cp := filepath.Join(dir, "corpus.txt")
	tp := filepath.Join(dir, "truth.txt")
	var errOut bytes.Buffer
	err := run([]string{"-n", "10", "-bits", "64", "-weak", "2", "-seed", "4",
		"-o", cp, "-truth", tp}, &bytes.Buffer{}, &errOut)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(cp)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ms, err := corpus.Read(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 10 {
		t.Fatalf("corpus has %d moduli", len(ms))
	}
	truth, err := os.ReadFile(tp)
	if err != nil {
		t.Fatal(err)
	}
	lines := 0
	for _, l := range strings.Split(string(truth), "\n") {
		l = strings.TrimSpace(l)
		if l != "" && !strings.HasPrefix(l, "#") {
			lines++
		}
	}
	if lines != 2 {
		t.Fatalf("truth file has %d pairs, want 2", lines)
	}
}

func TestRunDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := run([]string{"-n", "4", "-bits", "64", "-seed", "9"}, &a, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-n", "4", "-bits", "64", "-seed", "9"}, &b, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("same seed produced different corpora")
	}
}

func TestRunErrors(t *testing.T) {
	var sink bytes.Buffer
	if err := run([]string{"-n", "0"}, &sink, &sink); err == nil {
		t.Error("n=0 accepted")
	}
	if err := run([]string{"-bits", "63", "-n", "4"}, &sink, &sink); err == nil {
		t.Error("odd bits accepted")
	}
	if err := run([]string{"-bogusflag"}, &sink, &sink); err == nil {
		t.Error("unknown flag accepted")
	}
	if err := run([]string{"-n", "4", "-bits", "64", "-o", "/nonexistent-dir/x"}, &sink, &sink); err == nil {
		t.Error("unwritable output accepted")
	}
}

func TestRunPseudo(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-n", "16", "-bits", "1024", "-pseudo", "-weak", "0"}, &out, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	ms, err := corpus.Read(&out)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 16 || ms[0].BitLen() != 1024 {
		t.Fatal("pseudo corpus wrong shape")
	}
}

func TestRunPEMFormat(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-n", "3", "-bits", "128", "-weak", "0", "-format", "pem"}, &out, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(out.String(), "BEGIN PUBLIC KEY"); got != 3 {
		t.Fatalf("wrote %d PEM blocks, want 3:\n%s", got, out.String())
	}
	var sink bytes.Buffer
	if err := run([]string{"-format", "nonsense"}, &sink, &sink); err == nil {
		t.Error("bad format accepted")
	}
}
