# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test vet race chaos fleet-smoke obs-smoke registry-smoke cover bench bench-smoke fuzz-smoke selftest reproduce clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test -shuffle=on ./...

# Every package with its own goroutine pool: the bulk all-pairs executor,
# the batch-GCD tree engine (both tree backends), the attack pipeline
# that drives both, the lock-free metrics layer, the lane-batched kernel
# (shared per-worker arenas), the subquadratic multiplier + generic tree
# builder they all multiply through, the streaming registry (findings
# forwarder + node store), and the public facade.
race:
	$(GO) test -race ./internal/engine/ ./internal/bulk/ ./internal/batchgcd/ ./internal/attack/ ./internal/obs/ ./internal/lanes/ ./internal/mpnat/ ./internal/subprod/ ./internal/fleet/ ./internal/registry/ .

# Fault-injection hardening: the chaos suite (kill/resume/panic
# campaigns plus the fleet partition/crash/poison campaigns,
# chaos_test.go) and the resilience packages it drives, all under the
# race detector. -short keeps only the soak tests out; the chaos tests
# themselves stay enabled with reduced rounds.
chaos:
	$(GO) test -race -short -run 'TestChaos' .
	$(GO) test -race -short ./internal/checkpoint/ ./internal/faultinject/ ./internal/sigctx/ \
	    ./internal/bulk/ ./internal/attack/ ./internal/fleet/ ./internal/registry/ \
	    ./cmd/rsafactor/ ./cmd/gcdbench/

# Real-process fleet run: one coordinator + two workers as separate
# rsafactor processes over loopback HTTP, findings diffed against a
# single-process run of the same corpus.
fleet-smoke:
	./scripts/fleet_smoke.sh

# Fleet observability end to end: a traced coordinator + 2 workers over
# loopback HTTP, validating the merged JSONL trace (one span per cell,
# no orphan parents), the /fleet/cells attribution, /timeline,
# /dashboard, and the report's attribution tables.
obs-smoke:
	./scripts/obs_smoke.sh

# Streaming registry end to end: a real `rsafactor watch` server fed a
# weak corpus over HTTP in three waves with a SIGKILL between waves two
# and three; the replayed registry must lose nothing acknowledged and
# the final /broken set must diff clean against a one-shot batch run.
registry-smoke:
	./scripts/registry_smoke.sh

cover:
	$(GO) test -cover ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# One-iteration pass over the root benchmark suite (compile + run each
# benchmark once) plus a small gcdbench sweep emitting the JSON report
# artifacts CI uploads; catches benchmark rot without benchmark cost.
# The hybrid line runs BenchmarkHybrid in -short mode (512-moduli corpus),
# which self-enforces the >= 3x full-GCD reduction bound, the trace-
# overhead line self-enforces the <= 2% tracing budget (instrumented vs
# Trace=nil hybrid runs, median of paired diffs), the lane-kernel
# line runs BenchmarkLaneKernel in -short mode (self-enforces the >= 1.5x
# per-pair speedup over the scalar kernel at GOMAXPROCS=1), and the engine
# comparison emits the three-engine timing table as a second artifact.
# The registry line runs BenchmarkRegistrySubmit in -short mode (8192-key
# seed), which self-enforces the O(log N) spine-merge bound per submission
# and a >= 5x advantage over a full batch-GCD rescan.
bench-smoke:
	$(GO) test -run '^$$' -bench=. -benchtime=1x .
	$(GO) test -short -run '^$$' -bench 'BenchmarkRegistrySubmit$$' -benchtime=1x ./internal/registry/
	$(GO) test -short -run '^$$' -bench 'BenchmarkHybrid$$' -benchtime=1x ./internal/bulk/
	$(GO) test -short -run '^$$' -bench 'BenchmarkHybridTraceOverhead$$' -benchtime=1x ./internal/bulk/
	GOMAXPROCS=1 $(GO) test -short -run '^$$' -bench 'BenchmarkLaneKernel$$' -benchtime=1x ./internal/lanes/
	GOMAXPROCS=1 $(GO) test -short -run '^$$' -bench 'BenchmarkTreeMul$$' -benchtime=1x ./internal/mpnat/
	mkdir -p results
	$(GO) run ./cmd/gcdbench -table 4,5 -pairs 100 -moduli 96 -cpupairs 30 \
	    -sizes 256,512 -json results/bench-smoke.json
	$(GO) run ./cmd/gcdbench -crossover -engine pairs,batch,hybrid \
	    -sizes 256 -json results/bench-smoke-engines.json

# 30-second budget per fuzzer over the arithmetic core: the multiplication
# dispatch, division, the fused update, and hex parsing, each differential
# against math/big (the corpus seeds pin the dispatch boundaries).
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzMulMatchesBig -fuzztime 30s ./internal/mpnat/
	$(GO) test -run '^$$' -fuzz FuzzDivMod -fuzztime 30s ./internal/mpnat/
	$(GO) test -run '^$$' -fuzz FuzzSubMulRshift -fuzztime 30s ./internal/mpnat/
	$(GO) test -run '^$$' -fuzz FuzzHexRoundTrip -fuzztime 30s ./internal/mpnat/
	$(GO) test -run '^$$' -fuzz FuzzLanesMatchesScalar -fuzztime 30s ./internal/lanes/
	$(GO) test -run '^$$' -fuzz FuzzRunCoverage -fuzztime 30s ./internal/engine/
	$(GO) test -run '^$$' -fuzz FuzzSpineMerge -fuzztime 30s ./internal/registry/

selftest:
	$(GO) run ./cmd/gcdselftest -n 5000 -v

# Regenerate every table and figure of the paper (see EXPERIMENTS.md).
reproduce:
	mkdir -p results
	$(GO) run ./cmd/gcdbench -table 4 -pairs 500                  | tee results/table4.txt
	$(GO) run ./cmd/gcdbench -table 5 -moduli 128 -cpupairs 100 \
	    -simthreads 96 -clock 0.9 -sms 15                         | tee results/table5_early.txt
	$(GO) run ./cmd/gcdbench -betastats -pairs 400                | tee results/betastats.txt
	$(GO) run ./cmd/gcdbench -memops -pairs 200                   | tee results/memops.txt
	$(GO) run ./cmd/gcdbench -ablation -sizes 512 -pairs 200      | tee results/ablation.txt
	$(GO) run ./cmd/gcdbench -crossover -sizes 512                | tee results/crossover.txt
	$(GO) run ./cmd/ummsim -fig 2                                 | tee results/fig2.txt
	$(GO) run ./cmd/ummsim -fig 3                                 | tee results/fig3.txt
	$(GO) run ./cmd/ummsim -theorem1                              | tee results/theorem1.txt
	$(GO) run ./cmd/ummsim -semioblivious -bits 1024 -p 128       | tee results/semioblivious.txt
	$(GO) run ./cmd/ummsim -divergence -bits 512 -p 64            | tee results/divergence.txt
	$(GO) run ./cmd/ummsim -occupancy -bits 1024 -p 128           | tee results/occupancy.txt
	$(GO) run ./cmd/ummsim -related -p 128                        | tee results/relatedwork.txt
	$(GO) run ./cmd/ummsim -oblivioustax -bits 1024 -p 128        | tee results/oblivioustax.txt

clean:
	rm -f test_output.txt bench_output.txt
