package bulkgcd

import (
	"fmt"
	"math/big"

	"bulkgcd/internal/obs"
	"bulkgcd/internal/registry"
)

// VerdictKind classifies the outcome of one registry submission.
type VerdictKind int

const (
	// VerdictClean: the key shares no factor with any registered key.
	VerdictClean VerdictKind = iota
	// VerdictShared: the key shares at least one prime with registered
	// keys; both sides are broken.
	VerdictShared
	// VerdictDuplicate: the exact modulus is already registered (it is
	// still accepted, and any shared factors are reported too).
	VerdictDuplicate
	// VerdictMalformed: the submission is not a plausible RSA modulus
	// (zero or even) and was rejected without consuming an index.
	VerdictMalformed
)

// String returns the verdict name: "clean", "shared", "duplicate" or
// "malformed".
func (k VerdictKind) String() string {
	switch k {
	case VerdictClean:
		return "clean"
	case VerdictShared:
		return "shared"
	case VerdictDuplicate:
		return "duplicate"
	case VerdictMalformed:
		return "malformed"
	}
	return fmt.Sprintf("VerdictKind(%d)", int(k))
}

// KeyPartner is one registered key sharing a factor with a submission.
type KeyPartner struct {
	// Index is the partner's registry index.
	Index int
	// Factor is the shared factor, gcd of the two moduli.
	Factor *big.Int
	// Duplicate reports that the partner is the identical modulus.
	Duplicate bool
}

// KeyVerdict is the registry's answer to one submission: the batch-GCD
// outcome of the key against the corpus registered before it, computed
// from one remainder-tree descent and durable before it is returned.
type KeyVerdict struct {
	// Index is the key's position in the registry corpus, -1 when the
	// submission was rejected as malformed.
	Index int
	// Kind classifies the outcome.
	Kind VerdictKind
	// Reason explains a malformed rejection.
	Reason string
	// G is gcd(n, Π registered moduli mod n), the per-key batch-GCD
	// value at submission time: 1 for a clean key, the shared portion
	// (possibly n itself) otherwise.
	G *big.Int
	// Partners lists the registered keys sharing a factor, by index.
	Partners []KeyPartner
}

// KeyFinding is one pairwise shared-factor discovery streamed on the
// registry's findings channel.
type KeyFinding struct {
	// Index is the newly broken key, Partner the registered key it
	// shares Factor with.
	Index, Partner int
	Factor         *big.Int
}

// BrokenModulus is one registry key known to share factors.
type BrokenModulus struct {
	// Index is the registry index and N the modulus.
	Index int
	N     *big.Int
	// G is the accumulated shared portion of N (the fold of every
	// factor discovered so far), byte-identical to the batch-GCD g_i
	// over the registry corpus.
	G *big.Int
}

// RegistryStats is a point-in-time snapshot of registry counters.
type RegistryStats struct {
	// Keys is the corpus size (including removed keys, whose indices
	// remain reserved), Removed the tombstoned count, Broken the number
	// of keys known to share factors.
	Keys, Removed, Broken int
	// Submissions counts Submit calls, Findings delivered pairwise
	// discoveries, DroppedFindings discoveries not delivered because the
	// findings channel was full.
	Submissions, Findings, DroppedFindings int64
	// SpineMults counts product-tree merge multiplications (amortized
	// one per accepted key); Replayed counts verdicts recomputed during
	// OpenRegistry after an unclean shutdown; NodeLoads and NodeBuilds
	// count tree nodes reloaded from disk and rebuilt from children.
	SpineMults, Replayed, NodeLoads, NodeBuilds int64
}

// Registry is a long-lived, crash-safe key registry: a persistent
// product-tree index over every submitted modulus. Each submission is
// checked against the full history with one remainder-tree descent
// (O(log N) tree multiplications instead of a full rescan), journaled
// before it is acknowledged, and replayed to an identical state after a
// kill+restart.
//
// Open one with [OpenRegistry]; it is safe for concurrent use.
type Registry struct {
	reg      *registry.Registry
	metrics  *obs.Registry
	a        *Attack // the options the registry was opened with
	findings chan KeyFinding
}

// OpenRegistry opens the persistent key registry rooted at dir, creating
// it if absent, and replays its journal so the in-memory index is
// byte-identical to the state before the last shutdown — clean or not.
//
// The option vocabulary is shared with [New]; OpenRegistry honors
// [WithWorkers] (tree build parallelism), [WithSubproductBudget] (the
// in-RAM node cache byte budget), [WithMetrics] (a Prometheus snapshot
// is written on Close) and [WithTrace] (one span per submission).
// Options that configure the pairwise attack (engine, algorithm, kernel,
// checkpoint path, quarantine) do not apply to a registry and are
// ignored.
func OpenRegistry(dir string, opts ...Option) (*Registry, error) {
	a := New(opts...)
	reg := obs.NewRegistry()
	cfg := registry.Config{
		Workers:    a.workers,
		NodeBudget: a.subprodBudget,
		Metrics:    reg,
	}
	if a.traceW != nil {
		cfg.Trace = obs.NewTracer(a.traceW)
	}
	r, err := registry.Open(dir, cfg)
	if err != nil {
		return nil, err
	}
	pub := &Registry{reg: r, metrics: reg, a: a, findings: make(chan KeyFinding, 256)}
	go func() {
		// Non-blocking forward: a consumer that stops reading never
		// wedges this goroutine (or Close); overflow is counted and the
		// discoveries stay durable and visible via Broken.
		for f := range r.Findings() {
			select {
			case pub.findings <- KeyFinding{Index: f.Index, Partner: f.Partner, Factor: f.Factor}:
			default:
				r.NoteDroppedFinding()
			}
		}
		close(pub.findings)
	}()
	return pub, nil
}

func publicVerdict(v registry.Verdict) KeyVerdict {
	out := KeyVerdict{Index: v.Index, Reason: v.Reason, G: v.G}
	switch v.Kind {
	case registry.Shared:
		out.Kind = VerdictShared
	case registry.Duplicate:
		out.Kind = VerdictDuplicate
	case registry.Malformed:
		out.Kind = VerdictMalformed
	}
	for _, p := range v.Partners {
		out.Partners = append(out.Partners, KeyPartner{Index: p.Index, Factor: p.Factor, Duplicate: p.Dup})
	}
	return out
}

// Submit registers one modulus and returns its verdict. The verdict is
// durable (corpus line and journal record synced) before Submit returns:
// after a crash, OpenRegistry replays to a state that includes it.
func (r *Registry) Submit(n *big.Int) (KeyVerdict, error) {
	v, err := r.reg.Submit(n)
	if err != nil {
		return KeyVerdict{}, err
	}
	return publicVerdict(v), nil
}

// SubmitBatch registers a batch of moduli in order, returning one
// verdict per modulus. The whole batch shares one durability sync, so
// large batches are much cheaper than equivalent Submit loops.
func (r *Registry) SubmitBatch(moduli []*big.Int) ([]KeyVerdict, error) {
	vs, err := r.reg.SubmitBatch(moduli)
	if err != nil {
		return nil, err
	}
	out := make([]KeyVerdict, len(vs))
	for i, v := range vs {
		out[i] = publicVerdict(v)
	}
	return out, nil
}

// Findings returns the channel of pairwise shared-factor discoveries.
// The channel is never closed while the registry is open; Close drains
// and closes it. A slow receiver never blocks submissions — discoveries
// beyond the buffer are dropped from the channel (counted in
// [RegistryStats].DroppedFindings) but remain durable and visible via
// [Registry.Broken].
func (r *Registry) Findings() <-chan KeyFinding { return r.findings }

// Broken lists every registry key known to share factors, ordered by
// index. The G values are byte-identical to what one batch-GCD run over
// the full registry corpus would report for those keys.
func (r *Registry) Broken() []BrokenModulus {
	bs := r.reg.Broken()
	out := make([]BrokenModulus, len(bs))
	for i, b := range bs {
		out[i] = BrokenModulus{Index: b.Index, N: r.reg.Modulus(b.Index), G: b.G}
	}
	return out
}

// Len returns the number of registered keys (including removed ones,
// whose indices stay reserved).
func (r *Registry) Len() int { return r.reg.Len() }

// Remove tombstones a registered key: it stops participating in every
// future product and verdict. The removal is durable immediately.
func (r *Registry) Remove(index int) error { return r.reg.Remove(index) }

// Compact rewrites the journal to one record per key and prunes node
// files that no longer belong to the tree (after removals or a crash),
// returning the number of journal records and files dropped.
func (r *Registry) Compact() (int, error) { return r.reg.Compact() }

// Stats returns a snapshot of the registry counters.
func (r *Registry) Stats() RegistryStats {
	s := r.reg.Stats()
	return RegistryStats{
		Keys:            s.Keys,
		Removed:         s.Removed,
		Broken:          s.Broken,
		Submissions:     s.Submissions,
		Findings:        s.Findings,
		DroppedFindings: s.Dropped,
		SpineMults:      s.SpineMults,
		Replayed:        s.Replayed,
		NodeLoads:       s.NodeLoads,
		NodeBuilds:      s.NodeBuilds,
	}
}

// Close syncs and closes the registry's logs and journal, closes the
// findings channel, and — when the registry was opened [WithMetrics] —
// writes a final Prometheus snapshot to the configured writer.
func (r *Registry) Close() error {
	err := r.reg.Close()
	if r.a.metricsW != nil {
		if werr := r.metrics.Snapshot().WritePrometheus(r.a.metricsW); werr != nil && err == nil {
			err = werr
		}
	}
	return err
}
