// Package sigctx implements the two-stage interrupt contract shared by
// the long-running CLIs (rsafactor, gcdbench): the first SIGINT/SIGTERM
// cancels the returned context, letting the engines finish their in-flight
// blocks, flush checkpoints and report partial findings; a second signal
// force-exits immediately with status 130.
package sigctx

import (
	"context"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sync"
	"syscall"
)

// exit is swapped out by tests; the second signal calls it with 130.
var exit = os.Exit

// WithSignals derives a context canceled by the first SIGINT/SIGTERM. The
// returned stop function releases the signal handler and cancels the
// context; call it (usually via defer) once the run finishes.
func WithSignals(parent context.Context, warn io.Writer, name string) (context.Context, context.CancelFunc) {
	return withSignals(parent, warn, name, os.Interrupt, syscall.SIGTERM)
}

// withSignals is WithSignals with the signal set injectable for tests.
func withSignals(parent context.Context, warn io.Writer, name string, sigs ...os.Signal) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(parent)
	ch := make(chan os.Signal, 2)
	quit := make(chan struct{})
	signal.Notify(ch, sigs...)
	var once sync.Once
	stop := func() {
		once.Do(func() {
			signal.Stop(ch)
			close(quit)
			cancel()
		})
	}
	go func() {
		select {
		case <-ch:
			fmt.Fprintf(warn, "%s: interrupted; finishing in-flight blocks and flushing checkpoints (interrupt again to force exit)\n", name)
			cancel()
		case <-quit:
			return
		}
		select {
		case <-ch:
			fmt.Fprintf(warn, "%s: forced exit\n", name)
			exit(130)
		case <-quit:
		}
	}()
	return ctx, stop
}
