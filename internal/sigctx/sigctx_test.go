package sigctx

import (
	"bytes"
	"context"
	"os"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// raise sends sig to this process.
func raise(t *testing.T, sig syscall.Signal) {
	t.Helper()
	if err := syscall.Kill(os.Getpid(), sig); err != nil {
		t.Fatal(err)
	}
}

func waitDone(t *testing.T, ctx context.Context) {
	t.Helper()
	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("context not canceled")
	}
}

// TestFirstSignalCancels: one signal cancels the context and warns, but
// does not exit the process.
func TestFirstSignalCancels(t *testing.T) {
	var mu sync.Mutex
	var buf bytes.Buffer
	w := &lockedWriter{mu: &mu, w: &buf}
	ctx, stop := withSignals(context.Background(), w, "testtool", syscall.SIGUSR1)
	defer stop()
	raise(t, syscall.SIGUSR1)
	waitDone(t, ctx)
	// The warning is written just before cancel; give the goroutine a beat.
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		s := buf.String()
		mu.Unlock()
		if strings.Contains(s, "testtool: interrupted") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("warning missing: %q", s)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSecondSignalForcesExit: the second signal calls exit(130) instead
// of returning control.
func TestSecondSignalForcesExit(t *testing.T) {
	exited := make(chan int, 1)
	old := exit
	exit = func(code int) {
		exited <- code
		select {} // the real os.Exit never returns; block like it
	}
	defer func() { exit = old }()

	var mu sync.Mutex
	var buf bytes.Buffer
	ctx, stop := withSignals(context.Background(), &lockedWriter{mu: &mu, w: &buf}, "testtool", syscall.SIGUSR2)
	defer stop()
	raise(t, syscall.SIGUSR2)
	waitDone(t, ctx)
	raise(t, syscall.SIGUSR2)
	select {
	case code := <-exited:
		if code != 130 {
			t.Fatalf("exit code %d, want 130", code)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("second signal did not force exit")
	}
}

// TestStopReleasesHandler: after stop, signals are no longer intercepted
// (the notify channel is drained into nothing) and the context is done.
func TestStopReleasesHandler(t *testing.T) {
	ctx, stop := withSignals(context.Background(), &bytes.Buffer{}, "testtool", syscall.SIGUSR1)
	stop()
	stop() // idempotent
	waitDone(t, ctx)
}

// lockedWriter makes a bytes.Buffer safe to share with the signal
// goroutine.
type lockedWriter struct {
	mu *sync.Mutex
	w  *bytes.Buffer
}

func (l *lockedWriter) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Write(p)
}
