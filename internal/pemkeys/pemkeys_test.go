package pemkeys

import (
	"bytes"
	"crypto/rand"
	"crypto/rsa"
	"crypto/x509"
	"crypto/x509/pkix"
	"encoding/pem"
	"math/big"
	mrand "math/rand"
	"strings"
	"testing"
	"time"

	"bulkgcd/internal/rsakey"
)

// genKey returns a deterministic RSA key via the repository's own keygen.
func genKey(t *testing.T, bits int, seed int64) *rsa.PrivateKey {
	t.Helper()
	k, err := rsakey.GenerateKey(mrand.New(mrand.NewSource(seed)), bits)
	if err != nil {
		t.Fatal(err)
	}
	key, err := AssemblePrivateKey(k.N.ToBig(), k.P, k.Q, k.D, k.E)
	if err != nil {
		t.Fatal(err)
	}
	return key
}

func TestWriteReadPublicKey(t *testing.T) {
	key := genKey(t, 512, 1)
	var buf bytes.Buffer
	if err := WritePublicKey(&buf, key.N, uint64(key.E)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "BEGIN PUBLIC KEY") {
		t.Fatalf("not PEM:\n%s", buf.String())
	}
	moduli, sources, skipped, err := ReadModuli(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(skipped) != 0 || len(moduli) != 1 {
		t.Fatalf("read %d moduli, %d skipped", len(moduli), len(skipped))
	}
	if moduli[0].Cmp(key.N) != 0 {
		t.Fatal("modulus mismatch")
	}
	if sources[0].BlockType != "PUBLIC KEY" || sources[0].E != uint64(key.E) {
		t.Fatalf("source = %+v", sources[0])
	}
}

func TestReadPKCS1PublicKey(t *testing.T) {
	key := genKey(t, 512, 2)
	var buf bytes.Buffer
	if err := pem.Encode(&buf, &pem.Block{
		Type:  "RSA PUBLIC KEY",
		Bytes: x509.MarshalPKCS1PublicKey(&key.PublicKey),
	}); err != nil {
		t.Fatal(err)
	}
	moduli, sources, _, err := ReadModuli(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(moduli) != 1 || moduli[0].Cmp(key.N) != 0 {
		t.Fatal("PKCS#1 public key not read")
	}
	if sources[0].BlockType != "RSA PUBLIC KEY" {
		t.Fatalf("source = %+v", sources[0])
	}
}

func TestReadCertificate(t *testing.T) {
	key := genKey(t, 512, 3)
	tmpl := &x509.Certificate{
		SerialNumber: big.NewInt(1),
		Subject:      pkix.Name{CommonName: "weak.example"},
		NotBefore:    time.Date(2015, 5, 1, 0, 0, 0, 0, time.UTC), // IPDPSW 2015
		NotAfter:     time.Date(2035, 5, 1, 0, 0, 0, 0, time.UTC),
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, tmpl, &key.PublicKey, key)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := pem.Encode(&buf, &pem.Block{Type: "CERTIFICATE", Bytes: der}); err != nil {
		t.Fatal(err)
	}
	moduli, sources, _, err := ReadModuli(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(moduli) != 1 || moduli[0].Cmp(key.N) != 0 {
		t.Fatal("certificate modulus not read")
	}
	if sources[0].BlockType != "CERTIFICATE" {
		t.Fatalf("source = %+v", sources[0])
	}
}

func TestReadMixedStreamSkipsGarbage(t *testing.T) {
	k1 := genKey(t, 512, 4)
	k2 := genKey(t, 512, 5)
	var buf bytes.Buffer
	if err := WritePublicKey(&buf, k1.N, uint64(k1.E)); err != nil {
		t.Fatal(err)
	}
	// A non-RSA block (random bytes labelled as EC) must be skipped.
	if err := pem.Encode(&buf, &pem.Block{Type: "EC PRIVATE KEY", Bytes: []byte{1, 2, 3}}); err != nil {
		t.Fatal(err)
	}
	// A corrupted PUBLIC KEY block must be skipped too.
	if err := pem.Encode(&buf, &pem.Block{Type: "PUBLIC KEY", Bytes: []byte{9, 9, 9}}); err != nil {
		t.Fatal(err)
	}
	if err := WritePublicKey(&buf, k2.N, uint64(k2.E)); err != nil {
		t.Fatal(err)
	}
	moduli, _, skipped, err := ReadModuli(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(moduli) != 2 || len(skipped) != 2 {
		t.Fatalf("moduli %d skipped %d, want 2/2", len(moduli), len(skipped))
	}
	if skipped[0].Index != 1 || skipped[0].Type != "EC PRIVATE KEY" ||
		!strings.Contains(skipped[0].Reason, "unsupported block type") {
		t.Fatalf("skipped[0] = %+v", skipped[0])
	}
	if skipped[1].Index != 2 || skipped[1].Type != "PUBLIC KEY" ||
		!strings.Contains(skipped[1].Reason, "unparseable") {
		t.Fatalf("skipped[1] = %+v", skipped[1])
	}
	if moduli[0].Cmp(k1.N) != 0 || moduli[1].Cmp(k2.N) != 0 {
		t.Fatal("order not preserved")
	}
}

func TestReadNoPEM(t *testing.T) {
	if _, _, _, err := ReadModuli(strings.NewReader("not pem at all")); err == nil {
		t.Fatal("garbage input accepted")
	}
}

func TestAssemblePrivateKeyRoundTrip(t *testing.T) {
	k, err := rsakey.GenerateKey(mrand.New(mrand.NewSource(6)), 512)
	if err != nil {
		t.Fatal(err)
	}
	key, err := AssemblePrivateKey(k.N.ToBig(), k.P, k.Q, k.D, k.E)
	if err != nil {
		t.Fatal(err)
	}
	// The assembled key must interoperate with crypto/rsa.
	msg := []byte("broken by bulk gcd")
	ct, err := rsa.EncryptPKCS1v15(rand.Reader, &key.PublicKey, msg)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := rsa.DecryptPKCS1v15(nil, key, ct)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pt, msg) {
		t.Fatal("decryption mismatch")
	}
	// PEM export parses back.
	var buf bytes.Buffer
	if err := WritePrivateKey(&buf, key); err != nil {
		t.Fatal(err)
	}
	block, _ := pem.Decode(buf.Bytes())
	if block == nil || block.Type != "RSA PRIVATE KEY" {
		t.Fatal("private key PEM wrong")
	}
	back, err := x509.ParsePKCS1PrivateKey(block.Bytes)
	if err != nil {
		t.Fatal(err)
	}
	if back.D.Cmp(key.D) != 0 {
		t.Fatal("exported key mismatch")
	}
}

func TestAssemblePrivateKeyRejectsBadFactors(t *testing.T) {
	k, err := rsakey.GenerateKey(mrand.New(mrand.NewSource(7)), 512)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := AssemblePrivateKey(k.N.ToBig(), k.P, k.P, k.D, k.E); err == nil {
		t.Fatal("p*p != n accepted")
	}
	if _, err := AssemblePrivateKey(k.N.ToBig(), k.P, k.Q, big.NewInt(3), k.E); err == nil {
		t.Fatal("wrong d accepted")
	}
}

func TestWritePublicKeyValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePublicKey(&buf, nil, 65537); err == nil {
		t.Error("nil modulus accepted")
	}
	if err := WritePublicKey(&buf, big.NewInt(-5), 65537); err == nil {
		t.Error("negative modulus accepted")
	}
	if err := WritePublicKey(&buf, big.NewInt(15), 0); err == nil {
		t.Error("zero exponent accepted")
	}
	if err := WritePublicKey(&buf, big.NewInt(15), 1<<33); err == nil {
		t.Error("huge exponent accepted")
	}
}

// FuzzReadModuli: the PEM scanner must never panic on arbitrary bytes.
func FuzzReadModuli(f *testing.F) {
	f.Add([]byte("-----BEGIN PUBLIC KEY-----\nAAAA\n-----END PUBLIC KEY-----\n"))
	f.Add([]byte("not pem"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, in []byte) {
		moduli, sources, _, err := ReadModuli(bytes.NewReader(in))
		if err != nil {
			return
		}
		if len(moduli) != len(sources) {
			t.Fatalf("moduli/sources length mismatch: %d vs %d", len(moduli), len(sources))
		}
		for i, m := range moduli {
			if m == nil || m.Sign() <= 0 {
				t.Fatalf("modulus %d not positive", i)
			}
		}
	})
}
