// Package pemkeys bridges the attack to real-world key material: it
// extracts RSA moduli from PEM streams (the format in which "encryption
// keys collected from the Web" actually arrive - PKIX/PKCS#1 public keys
// and X.509 certificates) and exports recovered private keys as standard
// PKCS#1 PEM blocks that openssl and ssh can consume.
//
// Everything is standard library: encoding/pem, crypto/x509, crypto/rsa.
package pemkeys

import (
	"crypto/rsa"
	"crypto/x509"
	"encoding/pem"
	"fmt"
	"io"
	"math/big"
)

// Source describes where a modulus in a PEM stream came from.
type Source struct {
	// BlockType is the PEM block type ("RSA PUBLIC KEY", "PUBLIC KEY",
	// "CERTIFICATE").
	BlockType string
	// Index is the block's position in the stream (0-based, counting
	// only blocks that yielded a modulus).
	Index int
	// E is the public exponent.
	E uint64
}

// SkippedBlock describes one PEM block that did not yield a modulus, so
// an operator can audit exactly which collected keys were left out of the
// attack rather than seeing a bare count.
type SkippedBlock struct {
	// Index is the block's position in the stream (0-based, counting every
	// PEM block, usable or not).
	Index int
	// Type is the PEM block type as it appeared in the stream.
	Type string
	// Reason says why the block was skipped.
	Reason string
}

// ReadModuli extracts every RSA modulus from a PEM stream. Supported
// block types: PKCS#1 public keys ("RSA PUBLIC KEY"), PKIX public keys
// ("PUBLIC KEY") and X.509 certificates ("CERTIFICATE") with RSA subject
// keys. Non-RSA and unparseable blocks are reported per-index in skipped,
// never silently dropped.
func ReadModuli(r io.Reader) (moduli []*big.Int, sources []Source, skipped []SkippedBlock, err error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("pemkeys: %w", err)
	}
	blockIdx := 0
	for {
		var block *pem.Block
		block, data = pem.Decode(data)
		if block == nil {
			break
		}
		pub, reason := parseBlock(block)
		if pub == nil {
			skipped = append(skipped, SkippedBlock{Index: blockIdx, Type: block.Type, Reason: reason})
			blockIdx++
			continue
		}
		blockIdx++
		moduli = append(moduli, pub.N)
		sources = append(sources, Source{
			BlockType: block.Type,
			Index:     len(moduli) - 1,
			E:         uint64(pub.E),
		})
	}
	if len(moduli) == 0 && len(skipped) == 0 {
		return nil, nil, nil, fmt.Errorf("pemkeys: no PEM blocks found")
	}
	return moduli, sources, skipped, nil
}

// parseBlock extracts an RSA public key from one PEM block; on failure
// the key is nil and the reason says what went wrong.
func parseBlock(block *pem.Block) (*rsa.PublicKey, string) {
	switch block.Type {
	case "RSA PUBLIC KEY":
		k, err := x509.ParsePKCS1PublicKey(block.Bytes)
		if err != nil {
			return nil, fmt.Sprintf("unparseable PKCS#1 public key: %v", err)
		}
		return k, ""
	case "PUBLIC KEY":
		k, err := x509.ParsePKIXPublicKey(block.Bytes)
		if err != nil {
			return nil, fmt.Sprintf("unparseable PKIX public key: %v", err)
		}
		rk, ok := k.(*rsa.PublicKey)
		if !ok {
			return nil, fmt.Sprintf("not an RSA key (%T)", k)
		}
		return rk, ""
	case "CERTIFICATE":
		cert, err := x509.ParseCertificate(block.Bytes)
		if err != nil {
			return nil, fmt.Sprintf("unparseable certificate: %v", err)
		}
		rk, ok := cert.PublicKey.(*rsa.PublicKey)
		if !ok {
			return nil, fmt.Sprintf("certificate subject key is not RSA (%T)", cert.PublicKey)
		}
		return rk, ""
	}
	return nil, fmt.Sprintf("unsupported block type %q", block.Type)
}

// WritePublicKey writes one modulus as a PKIX "PUBLIC KEY" PEM block.
func WritePublicKey(w io.Writer, n *big.Int, e uint64) error {
	if n == nil || n.Sign() <= 0 {
		return fmt.Errorf("pemkeys: modulus must be positive")
	}
	if e == 0 || e > 1<<31 {
		return fmt.Errorf("pemkeys: exponent %d out of range", e)
	}
	der, err := x509.MarshalPKIXPublicKey(&rsa.PublicKey{N: n, E: int(e)})
	if err != nil {
		return fmt.Errorf("pemkeys: %w", err)
	}
	return pem.Encode(w, &pem.Block{Type: "PUBLIC KEY", Bytes: der})
}

// AssemblePrivateKey builds a complete, validated *rsa.PrivateKey from the
// attack's output (n = p*q, e, and the recovered d). It recomputes the
// CRT values via Precompute and runs the stdlib consistency check, so a
// caller can only obtain a key that actually works.
func AssemblePrivateKey(n, p, q, d *big.Int, e uint64) (*rsa.PrivateKey, error) {
	if new(big.Int).Mul(p, q).Cmp(n) != 0 {
		return nil, fmt.Errorf("pemkeys: p*q != n")
	}
	key := &rsa.PrivateKey{
		PublicKey: rsa.PublicKey{N: n, E: int(e)},
		D:         d,
		Primes:    []*big.Int{p, q},
	}
	if err := key.Validate(); err != nil {
		return nil, fmt.Errorf("pemkeys: recovered key invalid: %w", err)
	}
	key.Precompute()
	return key, nil
}

// WritePrivateKey writes a recovered key as a PKCS#1 "RSA PRIVATE KEY"
// PEM block - the artifact proving the break, directly usable by openssl.
func WritePrivateKey(w io.Writer, key *rsa.PrivateKey) error {
	return pem.Encode(w, &pem.Block{
		Type:  "RSA PRIVATE KEY",
		Bytes: x509.MarshalPKCS1PrivateKey(key),
	})
}
