package registry

import (
	"math/big"
	"os"
	"path/filepath"
	"testing"

	"bulkgcd/internal/obs"
)

func b(v int64) *big.Int { return big.NewInt(v) }

func openT(t testing.TB, dir string, cfg Config) *Registry {
	t.Helper()
	r, err := Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func mustSubmit(t *testing.T, r *Registry, n *big.Int) Verdict {
	t.Helper()
	v, err := r.Submit(n)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// TestVerdicts drives the four verdict kinds over handcrafted moduli of
// known factorization.
func TestVerdicts(t *testing.T) {
	r := openT(t, t.TempDir(), Config{Metrics: obs.NewRegistry()})
	defer r.Close()

	// 15 = 3·5 into an empty registry: clean.
	v := mustSubmit(t, r, b(15))
	if v.Kind != Clean || v.Index != 0 || v.G.Cmp(one) != 0 {
		t.Fatalf("first key: %+v", v)
	}
	// 77 = 7·11: clean.
	if v = mustSubmit(t, r, b(77)); v.Kind != Clean || v.Index != 1 {
		t.Fatalf("second key: %+v", v)
	}
	// 21 = 3·7 shares 3 with key 0 and 7 with key 1.
	v = mustSubmit(t, r, b(21))
	if v.Kind != Shared || v.Index != 2 || len(v.Partners) != 2 {
		t.Fatalf("shared key: %+v", v)
	}
	if v.Partners[0].Index != 0 || v.Partners[0].Factor.Cmp(b(3)) != 0 || v.Partners[0].Dup {
		t.Fatalf("partner 0: %+v", v.Partners[0])
	}
	if v.Partners[1].Index != 1 || v.Partners[1].Factor.Cmp(b(7)) != 0 {
		t.Fatalf("partner 1: %+v", v.Partners[1])
	}
	if v.G.Cmp(b(21)) != 0 { // gcd(21, 15·77·21-product prefix) = 21
		t.Fatalf("G = %v", v.G)
	}
	// A duplicate of key 0 — which now also shares 3 with key 2.
	v = mustSubmit(t, r, b(15))
	if v.Kind != Duplicate || v.Index != 3 || len(v.Partners) != 2 {
		t.Fatalf("duplicate: %+v", v)
	}
	if !v.Partners[0].Dup || v.Partners[0].Index != 0 || v.Partners[0].Factor.Cmp(b(15)) != 0 {
		t.Fatalf("dup partner: %+v", v.Partners[0])
	}
	if v.Partners[1].Dup || v.Partners[1].Index != 2 || v.Partners[1].Factor.Cmp(b(3)) != 0 {
		t.Fatalf("dup's shared partner: %+v", v.Partners[1])
	}
	// Malformed: zero and even are rejected without consuming an index.
	if v = mustSubmit(t, r, b(0)); v.Kind != Malformed || v.Index != -1 || v.Reason == "" {
		t.Fatalf("zero: %+v", v)
	}
	if v = mustSubmit(t, r, b(1024)); v.Kind != Malformed || v.Index != -1 {
		t.Fatalf("even: %+v", v)
	}
	// Clean again: 221 = 13·17.
	if v = mustSubmit(t, r, b(221)); v.Kind != Clean || v.Index != 4 {
		t.Fatalf("clean after rejects: %+v", v)
	}
	if r.Len() != 5 {
		t.Fatalf("Len() = %d", r.Len())
	}

	broken := r.Broken()
	want := map[int]int64{0: 15, 1: 7, 2: 21, 3: 15}
	if len(broken) != len(want) {
		t.Fatalf("Broken() = %+v", broken)
	}
	for _, bk := range broken {
		if bk.G.Cmp(b(want[bk.Index])) != 0 {
			t.Fatalf("broken[%d].G = %v, want %d", bk.Index, bk.G, want[bk.Index])
		}
	}
}

// TestFindingsChannel: every pairwise discovery is streamed.
func TestFindingsChannel(t *testing.T) {
	r := openT(t, t.TempDir(), Config{FindingsBuffer: 16})
	mustSubmit(t, r, b(15))
	mustSubmit(t, r, b(21))
	r.Close()
	var got []Finding
	for f := range r.Findings() {
		got = append(got, f)
	}
	if len(got) != 1 || got[0].Index != 1 || got[0].Partner != 0 || got[0].Factor.Cmp(b(3)) != 0 {
		t.Fatalf("findings = %+v", got)
	}
}

// TestRestartIdentity: close + reopen replays to identical state without
// recomputing any verdict, and the registry keeps accepting keys.
func TestRestartIdentity(t *testing.T) {
	dir := t.TempDir()
	r := openT(t, dir, Config{})
	for _, n := range []int64{15, 77, 21, 15, 221} {
		mustSubmit(t, r, b(n))
	}
	before := r.Broken()
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	r2 := openT(t, dir, Config{Metrics: obs.NewRegistry()})
	defer r2.Close()
	if st := r2.Stats(); st.Replayed != 0 {
		t.Fatalf("clean restart recomputed %d verdicts", st.Replayed)
	}
	after := r2.Broken()
	if len(after) != len(before) {
		t.Fatalf("broken %d != %d", len(after), len(before))
	}
	for i := range after {
		if after[i].Index != before[i].Index || after[i].G.Cmp(before[i].G) != 0 {
			t.Fatalf("broken[%d]: %+v != %+v", i, after[i], before[i])
		}
	}
	// 33 = 3·11 shares 3 with keys 0,2,3 and 11 with key 1.
	v := mustSubmit(t, r2, b(33))
	if v.Kind != Shared || len(v.Partners) != 4 {
		t.Fatalf("post-restart submit: %+v", v)
	}
}

// TestTornCorpusLine: a crash mid-append leaves a torn final corpus
// line; the key was never acknowledged, so Open drops it.
func TestTornCorpusLine(t *testing.T) {
	dir := t.TempDir()
	r := openT(t, dir, Config{})
	mustSubmit(t, r, b(15))
	mustSubmit(t, r, b(77))
	r.Close()

	f, err := os.OpenFile(filepath.Join(dir, "corpus.log"), os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("abc"); err != nil { // torn: no newline
		t.Fatal(err)
	}
	f.Close()

	r2 := openT(t, dir, Config{})
	defer r2.Close()
	if r2.Len() != 2 {
		t.Fatalf("Len() = %d after torn line", r2.Len())
	}
	// The truncated log accepts appends cleanly.
	if v := mustSubmit(t, r2, b(21)); v.Index != 2 || len(v.Partners) != 2 {
		t.Fatalf("submit after truncation: %+v", v)
	}
}

// TestCrashBeforeJournal: the corpus line landed but the journal record
// did not (crash between the two syncs). Open recomputes the verdict
// and ends byte-identical to the uninterrupted run.
func TestCrashBeforeJournal(t *testing.T) {
	dir := t.TempDir()
	r := openT(t, dir, Config{})
	for _, n := range []int64{15, 77, 21} {
		mustSubmit(t, r, b(n))
	}
	want := r.Broken()
	r.Close()

	// Drop the last journal record, keeping the corpus line.
	jpath := filepath.Join(dir, "journal.jsonl")
	data, err := os.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	lines := 0
	cut := len(data)
	for i := len(data) - 2; i >= 0; i-- {
		if data[i] == '\n' {
			cut = i + 1
			lines++
			break
		}
	}
	if lines != 1 {
		t.Fatal("journal too short to truncate")
	}
	if err := os.WriteFile(jpath, data[:cut], 0o644); err != nil {
		t.Fatal(err)
	}

	r2 := openT(t, dir, Config{Metrics: obs.NewRegistry()})
	defer r2.Close()
	if st := r2.Stats(); st.Replayed != 1 {
		t.Fatalf("Replayed = %d, want 1", st.Replayed)
	}
	got := r2.Broken()
	if len(got) != len(want) {
		t.Fatalf("broken %+v != %+v", got, want)
	}
	for i := range got {
		if got[i].Index != want[i].Index || got[i].G.Cmp(want[i].G) != 0 {
			t.Fatalf("broken[%d]: %+v != %+v", i, got[i], want[i])
		}
	}
}

// TestRemove: a tombstoned key disappears from every future product and
// verdict, durably.
func TestRemove(t *testing.T) {
	dir := t.TempDir()
	r := openT(t, dir, Config{})
	mustSubmit(t, r, b(15)) // 3·5
	mustSubmit(t, r, b(77)) // 7·11
	if err := r.Remove(0); err != nil {
		t.Fatal(err)
	}
	// 21 = 3·7 no longer shares with removed key 0; only 7 with key 1.
	v := mustSubmit(t, r, b(21))
	if v.Kind != Shared || len(v.Partners) != 1 || v.Partners[0].Index != 1 {
		t.Fatalf("after remove: %+v", v)
	}
	if v.G.Cmp(b(7)) != 0 {
		t.Fatalf("G = %v, want 7", v.G)
	}
	r.Close()

	// The tombstone survives restart.
	r2 := openT(t, dir, Config{})
	defer r2.Close()
	v = mustSubmit(t, r2, b(15))
	if v.Kind != Shared || len(v.Partners) != 1 || v.Partners[0].Index != 2 {
		t.Fatalf("duplicate of removed key after restart: %+v", v)
	}
	if err := r2.Remove(99); err == nil {
		t.Fatal("out-of-range Remove accepted")
	}
}

// TestNodeFileCorruption: a damaged node file is rebuilt, never trusted.
func TestNodeFileCorruption(t *testing.T) {
	dir := t.TempDir()
	r := openT(t, dir, Config{})
	for _, n := range []int64{15, 77, 221, 13} {
		mustSubmit(t, r, b(n))
	}
	r.Close()

	nodes, err := filepath.Glob(filepath.Join(dir, "nodes", "*.node"))
	if err != nil || len(nodes) == 0 {
		t.Fatalf("no node files: %v", err)
	}
	for _, p := range nodes {
		if err := os.WriteFile(p, []byte("garbage"), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	r2 := openT(t, dir, Config{Metrics: obs.NewRegistry()})
	defer r2.Close()
	// 33 = 3·11 shares 3 with key 0 (15=3·5) and 11 with key 1 (77=7·11).
	v := mustSubmit(t, r2, b(33))
	if v.Kind != Shared || len(v.Partners) != 2 {
		t.Fatalf("after node corruption: %+v", v)
	}
	if st := r2.Stats(); st.NodeBuilds == 0 {
		t.Fatal("corrupted nodes were not rebuilt")
	}
}

// TestCompact: journal duplicates collapse, orphan node files go away,
// and the registry keeps working.
func TestCompact(t *testing.T) {
	dir := t.TempDir()
	r := openT(t, dir, Config{})
	for _, n := range []int64{15, 77, 21} {
		mustSubmit(t, r, b(n))
	}
	// Plant an orphan node file and a stale temp.
	orphan := filepath.Join(dir, "nodes", "05-00000007.node")
	if err := os.WriteFile(orphan, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "nodes", "01-00000000.node.tmp"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	removedN, err := r.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if removedN < 2 {
		t.Fatalf("Compact removed %d, want >= 2 (orphan + temp)", removedN)
	}
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatal("orphan node file survived")
	}
	if v := mustSubmit(t, r, b(33)); v.Kind != Shared {
		t.Fatalf("submit after compact: %+v", v)
	}
	r.Close()

	r2 := openT(t, dir, Config{})
	defer r2.Close()
	if r2.Len() != 4 {
		t.Fatalf("Len() = %d after compacted restart", r2.Len())
	}
}

// TestRootsOf: spans of the spine roots partition [0, n) in order.
func TestRootsOf(t *testing.T) {
	for n := 0; n <= 300; n++ {
		next := 0
		for _, k := range rootsOf(n) {
			lo, hi := k.span()
			if lo != next || hi <= lo {
				t.Fatalf("n=%d: root %+v spans [%d,%d), want lo=%d", n, k, lo, hi, next)
			}
			next = hi
		}
		if next != n {
			t.Fatalf("n=%d: roots cover [0,%d)", n, next)
		}
	}
}

// TestAncestorsOf: each listed node contains the leaf, lives in the
// forest, and the list covers every level from the leaf's root down.
func TestAncestorsOf(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 8, 100} {
		for i := 0; i < n; i++ {
			anc := ancestorsOf(i, n)
			for _, k := range anc {
				lo, hi := k.span()
				if i < lo || i >= hi {
					t.Fatalf("n=%d i=%d: ancestor %+v misses leaf", n, i, k)
				}
				if hi > n {
					t.Fatalf("n=%d i=%d: ancestor %+v outside forest", n, i, k)
				}
			}
			// The leaf's root subtree has some level k; ancestors are k..1.
			if len(anc) > 0 && anc[0].level != len(anc) {
				t.Fatalf("n=%d i=%d: ancestors %+v not contiguous", n, i, anc)
			}
		}
	}
}
