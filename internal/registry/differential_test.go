package registry

import (
	"math/big"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"bulkgcd/internal/batchgcd"
	"bulkgcd/internal/rsakey"
)

// oracleBroken runs the batch-GCD oracle over moduli and returns the
// per-index g_i for every broken index.
func oracleBroken(t *testing.T, moduli []*big.Int) map[int]*big.Int {
	t.Helper()
	gs, err := batchgcd.SharedFactors(moduli)
	if err != nil {
		t.Fatal(err)
	}
	broken := make(map[int]*big.Int)
	for i, g := range gs {
		if g.Cmp(big.NewInt(1)) > 0 {
			broken[i] = g
		}
	}
	return broken
}

// diffBroken asserts the registry's folded per-key factors are
// byte-identical (hex-for-hex) to the oracle's.
func diffBroken(t *testing.T, r *Registry, oracle map[int]*big.Int) {
	t.Helper()
	got := r.Broken()
	if len(got) != len(oracle) {
		t.Fatalf("registry broke %d keys, oracle %d", len(got), len(oracle))
	}
	for _, bk := range got {
		want, ok := oracle[bk.Index]
		if !ok {
			t.Fatalf("registry broke index %d, oracle did not", bk.Index)
		}
		if bk.G.Text(16) != want.Text(16) {
			t.Fatalf("index %d: registry G=%s oracle g=%s", bk.Index, bk.G.Text(16), want.Text(16))
		}
	}
}

// weakModuli builds a deterministic weak corpus: semiprimes with planted
// shared primes plus injected duplicates, shuffled so submission order
// does not follow generation order.
func weakModuli(t *testing.T, count, bits, pairs int, seed int64) []*big.Int {
	t.Helper()
	c, err := rsakey.GenerateCorpus(rsakey.CorpusSpec{
		Count: count, Bits: bits, WeakPairs: pairs, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	moduli := make([]*big.Int, 0, count+count/8)
	for _, n := range c.Moduli() {
		moduli = append(moduli, n.ToBig())
	}
	// Duplicates: every 8th key resubmitted verbatim.
	for i := 0; i < count; i += 8 {
		moduli = append(moduli, new(big.Int).Set(moduli[i]))
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(moduli), func(i, j int) { moduli[i], moduli[j] = moduli[j], moduli[i] })
	return moduli
}

// TestDifferentialStreamed: the full acceptance property — a corpus
// streamed into the registry in shuffled order, in uneven batches, with
// a restart and a simulated crash (torn journal tail) mid-stream, ends
// with findings byte-identical to one batch-GCD run over the final
// corpus.
func TestDifferentialStreamed(t *testing.T) {
	moduli := weakModuli(t, 48, 96, 5, 42)
	dir := t.TempDir()
	r := openT(t, dir, Config{NodeBudget: 1 << 12}) // small budget: force spill + reload
	rng := rand.New(rand.NewSource(7))

	for pos := 0; pos < len(moduli); {
		n := 1 + rng.Intn(7)
		if pos+n > len(moduli) {
			n = len(moduli) - pos
		}
		vs, err := r.SubmitBatch(moduli[pos : pos+n])
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range vs {
			if v.Kind == Malformed {
				t.Fatalf("well-formed modulus rejected: %+v", v)
			}
			if v.Index != pos+i {
				t.Fatalf("verdict index %d at position %d", v.Index, pos+i)
			}
		}
		pos += n

		switch pos {
		case 13: // clean restart mid-stream
			if err := r.Close(); err != nil {
				t.Fatal(err)
			}
			r = openT(t, dir, Config{NodeBudget: 1 << 12})
		case 31: // crash: journal tail lost, corpus line retained
			if err := r.Close(); err != nil {
				t.Fatal(err)
			}
			truncateLastLine(t, filepath.Join(dir, "journal.jsonl"))
			r = openT(t, dir, Config{NodeBudget: 1 << 12})
			if st := r.Stats(); st.Replayed == 0 {
				t.Fatal("torn journal tail did not force a replay")
			}
		}
	}
	defer r.Close()

	if r.Len() != len(moduli) {
		t.Fatalf("Len() = %d, want %d", r.Len(), len(moduli))
	}
	diffBroken(t, r, oracleBroken(t, moduli))

	// And the registry state survives one more restart unchanged.
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	r2 := openT(t, dir, Config{})
	defer r2.Close()
	diffBroken(t, r2, oracleBroken(t, moduli))
}

// TestDifferentialWithRemovals: tombstoned keys stop participating;
// verdicts over the surviving corpus match the oracle run with the
// removed moduli excluded from every product but indices preserved.
func TestDifferentialWithRemovals(t *testing.T) {
	moduli := weakModuli(t, 32, 96, 4, 99)
	dir := t.TempDir()
	r := openT(t, dir, Config{})
	defer r.Close()

	half := len(moduli) / 2
	if _, err := r.SubmitBatch(moduli[:half]); err != nil {
		t.Fatal(err)
	}
	// Remove a few keys, then stream the rest.
	removed := []int{1, 5, 9}
	for _, i := range removed {
		if err := r.Remove(i); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := r.SubmitBatch(moduli[half:]); err != nil {
		t.Fatal(err)
	}

	// Oracle over the surviving corpus: removed moduli replaced by 1-free
	// placeholders is not expressible in SharedFactors, so compare
	// pairwise by brute force instead.
	alive := func(i int) bool {
		for _, j := range removed {
			if i == j {
				return false
			}
		}
		return true
	}
	oracle := make(map[int]*big.Int)
	for i := range moduli {
		if !alive(i) {
			continue
		}
		acc := big.NewInt(1)
		for j := range moduli {
			if j == i || !alive(j) {
				continue
			}
			g := new(big.Int).GCD(nil, nil, moduli[i], moduli[j])
			if g.Cmp(big.NewInt(1)) > 0 {
				// lcm fold, same as the registry's.
				acc.Div(acc, new(big.Int).GCD(nil, nil, acc, g)).Mul(acc, g)
			}
		}
		if acc.Cmp(big.NewInt(1)) > 0 {
			oracle[i] = acc
		}
	}

	got := r.Broken()
	// Keys broken before their partner was removed keep their finding:
	// the registry never un-learns. The oracle above is the
	// post-removal view, so every oracle entry must be present and
	// byte-identical; registry entries may be a superset only for
	// indices whose sole partners were removed after the finding.
	gotMap := make(map[int]*big.Int)
	for _, bk := range got {
		gotMap[bk.Index] = bk.G
	}
	for i, want := range oracle {
		g, ok := gotMap[i]
		if !ok {
			t.Fatalf("oracle broke index %d, registry did not", i)
		}
		if new(big.Int).Mod(g, want).Sign() != 0 {
			t.Fatalf("index %d: registry G=%s does not cover oracle g=%s", i, g.Text(16), want.Text(16))
		}
	}
	for i := range gotMap {
		if alive(i) {
			continue
		}
		// Removed keys may retain pre-removal findings; fine.
	}
}

// TestDifferentialAgainstRun: the registry's pairwise findings (index,
// partner, factor) agree with batchgcd.Run's per-key factors on a
// corpus with duplicates.
func TestDifferentialAgainstRun(t *testing.T) {
	moduli := weakModuli(t, 24, 96, 3, 7)
	r := openT(t, t.TempDir(), Config{FindingsBuffer: 4096})
	if _, err := r.SubmitBatch(moduli); err != nil {
		t.Fatal(err)
	}
	r.Close()

	findings, err := batchgcd.Run(moduli)
	if err != nil {
		t.Fatal(err)
	}
	oracleIdx := make(map[int]bool)
	for _, f := range findings {
		oracleIdx[f.Index] = true
	}
	regIdx := make(map[int]bool)
	for _, bk := range r.Broken() {
		regIdx[bk.Index] = true
	}
	if len(regIdx) != len(oracleIdx) {
		t.Fatalf("registry broke %v, oracle %v", regIdx, oracleIdx)
	}
	for i := range oracleIdx {
		if !regIdx[i] {
			t.Fatalf("oracle broke %d, registry did not", i)
		}
	}

	// Every streamed finding is a true shared factor.
	for f := range r.Findings() {
		g := new(big.Int).GCD(nil, nil, moduli[f.Index], moduli[f.Partner])
		if new(big.Int).Mod(g, f.Factor).Sign() != 0 || f.Factor.Cmp(big.NewInt(1)) <= 0 {
			t.Fatalf("finding %+v is not a shared factor (gcd=%s)", f, g.Text(16))
		}
	}
}

// truncateLastLine removes the final line of a text file.
func truncateLastLine(t *testing.T, path string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	cut := 0
	for i := len(data) - 2; i >= 0; i-- {
		if data[i] == '\n' {
			cut = i + 1
			break
		}
	}
	if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
		t.Fatal(err)
	}
}
