// Package registry implements the streaming incremental key registry:
// a long-lived, crash-safe index over every modulus ever submitted,
// maintained as a binary-counter forest of perfect product subtrees so
// each arriving key is checked against the full history with one
// remainder fold and one GCD instead of a full batch rescan.
//
// Layout on disk (one directory per registry):
//
//	corpus.log   append-only hex lines — the source of truth
//	removed.log  append-only tombstoned indices
//	journal.jsonl  growable checkpoint journal: one verdict record per
//	               accepted key, bound to the corpus by a prefix hash
//	               chain (checkpoint.Chain)
//	nodes/       product-tree node files — a validated, rebuildable cache
//
// Durability argument: a submission is acknowledged only after its
// corpus line and its journal record are synced. The corpus log alone
// determines every verdict (checks are deterministic), so any crash
// reduces to one of three states Open repairs mechanically: a torn
// corpus line (dropped — the key was never acknowledged), a corpus line
// without a journal record (the verdict is recomputed during replay),
// or both present (the record's chain value must match the replayed
// corpus prefix). Node files carry fingerprints binding them to the
// exact corpus slice they multiply, so a stale or torn node file costs
// a rebuild, never a wrong verdict.
package registry

import (
	"context"
	"fmt"
	"math/big"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"bulkgcd/internal/checkpoint"
	"bulkgcd/internal/corpus"
	"bulkgcd/internal/engine"
	"bulkgcd/internal/mpnat"
	"bulkgcd/internal/obs"
)

// Seed is the chain seed and journal fingerprint of every registry
// journal; the format version is part of it.
const Seed = "bulkgcd.registry.v1"

var one = big.NewInt(1)

// journalHeader is the constant header of a registry journal. Units is
// the count at creation time only (Grow accepts records beyond it), so
// keeping it constant lets checkpoint.Begin's equality check hold across
// every reopen of a registry that has grown in between.
func journalHeader() checkpoint.Header {
	return checkpoint.Header{V: checkpoint.Version, Engine: "registry", Fingerprint: Seed, Units: 1, Grow: true}
}

// Kind classifies a submission verdict.
type Kind int

const (
	// Clean: the key shares no factor with any prior live key.
	Clean Kind = iota
	// Shared: the key shares at least one prime with a prior key; both
	// are broken.
	Shared
	// Duplicate: an identical modulus already exists in the corpus. The
	// key is still accepted (the batch oracle sees duplicates too), and
	// it may simultaneously share primes with further keys.
	Duplicate
	// Malformed: zero or even modulus; rejected, not added to the corpus.
	Malformed
)

func (k Kind) String() string {
	switch k {
	case Clean:
		return "clean"
	case Shared:
		return "shared-factor"
	case Duplicate:
		return "duplicate"
	case Malformed:
		return "malformed"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Partner is one historical key the submitted key shares content with.
type Partner struct {
	// Index is the partner's corpus index.
	Index int
	// Factor is gcd(n, n_partner) > 1: the partner's modulus itself for
	// a duplicate, a shared prime (or product of shared primes) otherwise.
	Factor *big.Int
	// Dup marks an identical modulus.
	Dup bool
}

// Verdict is the outcome of one submission, computed against the corpus
// as it stood at submission time.
type Verdict struct {
	// Index is the key's corpus index, or -1 when rejected (Malformed).
	Index int
	// Kind classifies the verdict.
	Kind Kind
	// Reason explains a Malformed rejection.
	Reason string
	// G is gcd(n, product of all prior live keys): 1 when Clean.
	G *big.Int
	// Partners lists every prior key sharing content with this one,
	// ascending by index. Each partner is newly broken (or newly
	// re-confirmed) by this submission.
	Partners []Partner
}

// Finding is one pairwise discovery streamed on the findings channel:
// keys Index and Partner (Partner < Index) share Factor.
type Finding struct {
	Index   int
	Partner int
	Factor  *big.Int
}

// Config controls an open registry.
type Config struct {
	// Workers sizes the worker pool for large subtree (re)builds
	// (0 = GOMAXPROCS).
	Workers int
	// NodeBudget caps the bytes of product-tree nodes held in RAM;
	// least-recently-used nodes spill to their files and reload on
	// demand. 0 means unlimited.
	NodeBudget int64
	// FindingsBuffer is the findings channel capacity (0 = 64). The
	// channel is a convenience stream: when no receiver keeps up the
	// send is dropped (counted in registry_findings_dropped_total), and
	// every finding remains recoverable from Broken and the journal.
	FindingsBuffer int
	// Metrics receives the registry's instruments (may be nil).
	Metrics *obs.Registry
	// Trace receives one span per submission (may be nil).
	Trace *obs.Tracer
}

// Stats is a point-in-time view of the registry's counters.
type Stats struct {
	Keys        int   // accepted keys (including tombstoned)
	Removed     int   // tombstoned keys
	Broken      int   // keys with a known shared factor
	Submissions int64 // submissions processed this session
	Findings    int64 // pairwise findings this session
	SpineMults  int64 // spine merge multiplications this session
	Replayed    int64 // verdicts recomputed during Open
	NodeLoads   int64 // node files loaded
	NodeBuilds  int64 // nodes rebuilt from children
	Dropped     int64 // findings channel drops
}

// Registry is the open registry. All methods are safe for concurrent
// use; submissions are serialized because each verdict depends on the
// corpus order.
type Registry struct {
	mu  sync.Mutex
	dir string
	cfg Config

	entries   []string // corpus.log lines, in order
	corpus    []*mpnat.Nat
	chain     *checkpoint.Chain
	chainVals []string
	removed   map[int]bool

	corpusF  *os.File
	removedF *os.File
	journal  *checkpoint.Writer
	store    *store

	// brokenG folds every pairwise finding per index:
	// brokenG[i] = lcm over partners j of gcd(n_i, n_j), which for
	// squarefree RSA moduli equals the batch oracle's
	// g_i = gcd(n_i, prod of all other moduli). See DESIGN.md 5i.
	brokenG map[int]*big.Int

	findings chan Finding
	closed   bool

	div mpnat.DivScratch
	mul mpnat.MulScratch

	// Retained submit-path scratch, all used under mu: the remainder
	// fold's accumulator and temporaries, the staged big.Int the fold's
	// GCD reads, the spine-root list, and one descent scratch per pool
	// worker (descents over disjoint roots run on the work-stealing pool,
	// and worker indices are stable, so each scratch stays pinned to one
	// goroutine for the duration of a descent).
	acc, remS, tmpS mpnat.Nat
	accBig          big.Int
	rootsBuf        []nodeKey
	descents        []*descentScratch

	submissions, found, spineMults, replayed, dropped *obs.Counter
	keysGauge                                         *obs.Gauge
	submitH                                           *obs.Histogram
	trace                                             *obs.Tracer
}

// Open opens (or creates) the registry directory at dir, replays the
// corpus log against the journal, and recomputes any verdict the
// journal does not durably cover. After Open the in-memory state is
// byte-identical to the state an uninterrupted run would have reached.
func Open(dir string, cfg Config) (*Registry, error) {
	if err := os.MkdirAll(filepath.Join(dir, "nodes"), 0o755); err != nil {
		return nil, fmt.Errorf("registry: %w", err)
	}
	buf := cfg.FindingsBuffer
	if buf == 0 {
		buf = 64
	}
	r := &Registry{
		dir:      dir,
		cfg:      cfg,
		removed:  map[int]bool{},
		brokenG:  map[int]*big.Int{},
		chain:    checkpoint.NewChain(Seed),
		findings: make(chan Finding, buf),
		trace:    cfg.Trace,
	}
	// Stats() reads the instrument values, so the registry always keeps
	// a metrics registry — a private one when the caller did not supply
	// theirs.
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	r.submissions = reg.Counter("registry_submissions_total")
	r.found = reg.Counter("registry_findings_total")
	r.spineMults = reg.Counter("registry_spine_mults_total")
	r.replayed = reg.Counter("registry_replayed_total")
	r.dropped = reg.Counter("registry_findings_dropped_total")
	r.keysGauge = reg.Gauge("registry_keys")
	r.submitH = reg.Histogram("registry_submit_seconds", obs.DurationBuckets())
	r.store = newStore(filepath.Join(dir, "nodes"), cfg.NodeBudget, cfg.Workers, reg)
	r.store.leafHex = r.leafHex
	r.store.leaf = r.leaf

	if err := r.loadCorpus(); err != nil {
		return nil, err
	}
	if err := r.loadRemoved(); err != nil {
		return nil, err
	}
	if err := r.replay(); err != nil {
		return nil, err
	}
	r.keysGauge.Set(float64(len(r.corpus)))
	return r, nil
}

// leafHex is the identity line of leaf i for node fingerprints: the
// corpus hex, or "-" once tombstoned (so node files built before a
// removal stop validating).
func (r *Registry) leafHex(i int) string {
	if r.removed[i] {
		return "-"
	}
	return r.entries[i]
}

// leaf is the value of leaf i: the modulus, or 1 once tombstoned.
func (r *Registry) leaf(i int) *mpnat.Nat {
	if r.removed[i] {
		return mpnat.New(1)
	}
	return r.corpus[i]
}

// loadCorpus reads corpus.log, drops a torn final line (rewriting the
// file so the append offset is clean), and opens it for appending.
func (r *Registry) loadCorpus() error {
	path := filepath.Join(r.dir, "corpus.log")
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("registry: %w", err)
	}
	good := 0 // byte offset after the last fully valid line
	for off := 0; off < len(data); {
		nl := -1
		for i := off; i < len(data); i++ {
			if data[i] == '\n' {
				nl = i
				break
			}
		}
		if nl < 0 {
			// No trailing newline: a torn final append. Drop it.
			break
		}
		line := strings.TrimSpace(string(data[off:nl]))
		off = nl + 1
		if line == "" {
			good = off
			continue
		}
		n, perr := mpnat.ParseHex(line)
		if perr != nil {
			if off >= len(data) {
				break // torn final line that happened to include the newline
			}
			return fmt.Errorf("registry: corpus.log line %d: %w", len(r.entries)+1, perr)
		}
		r.entries = append(r.entries, line)
		r.corpus = append(r.corpus, n)
		r.chainVals = append(r.chainVals, r.chain.Extend([]byte(line)))
		good = off
	}
	if good < len(data) {
		if err := os.WriteFile(path+".trunc", data[:good], 0o644); err != nil {
			return fmt.Errorf("registry: %w", err)
		}
		if err := os.Rename(path+".trunc", path); err != nil {
			return fmt.Errorf("registry: %w", err)
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("registry: %w", err)
	}
	r.corpusF = f
	return nil
}

// loadRemoved reads the tombstone log and opens it for appending.
func (r *Registry) loadRemoved() error {
	path := filepath.Join(r.dir, "removed.log")
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("registry: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		i, perr := strconv.Atoi(line)
		if perr != nil || i < 0 || i >= len(r.corpus) {
			continue // torn or stale tombstone; ignoring it is safe
		}
		r.removed[i] = true
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("registry: %w", err)
	}
	r.removedF = f
	return nil
}

// replay reconciles the journal with the corpus: verified records are
// adopted as-is, anything else (torn tail, journal behind the corpus,
// fresh registry) is recomputed deterministically and journaled.
func (r *Registry) replay() error {
	jpath := filepath.Join(r.dir, "journal.jsonl")
	verified := map[int]checkpoint.Record{}
	if st, err := checkpoint.Load(jpath); err == nil {
		entryBytes := make([][]byte, len(r.entries))
		for i, e := range r.entries {
			entryBytes[i] = []byte(e)
		}
		if ok, err := st.VerifyChain(Seed, entryBytes); err == nil {
			verified = ok
		}
	}
	w, err := checkpoint.OpenAppend(jpath)
	if err != nil {
		return fmt.Errorf("registry: %w", err)
	}
	if err := w.Begin(journalHeader()); err != nil {
		w.Close()
		return fmt.Errorf("registry: %w", err)
	}
	r.journal = w

	recomputed := false
	for i, n := range r.corpus {
		if rec, ok := verified[i]; ok {
			for _, f := range rec.Factors {
				g, ok := new(big.Int).SetString(f.P, 16)
				if !ok || f.I != i || f.J < 0 || f.J >= i {
					return fmt.Errorf("registry: journal record %d carries an invalid finding", i)
				}
				r.foldBroken(i, f.J, g)
			}
			continue
		}
		// The corpus has this key but the journal does not durably cover
		// it (crash between corpus sync and journal sync, or a pre-journal
		// seed corpus). Recompute the verdict against the prefix forest —
		// the same computation the original submission performed.
		v := r.checkPrefix(n, n.ToBig(), i)
		if err := r.journalVerdict(i, v); err != nil {
			return err
		}
		for _, p := range v.Partners {
			r.foldBroken(i, p.Index, p.Factor)
			r.emit(Finding{Index: i, Partner: p.Index, Factor: p.Factor})
		}
		r.replayed.Inc()
		recomputed = true
	}
	if recomputed {
		if err := r.journal.Sync(); err != nil {
			return fmt.Errorf("registry: %w", err)
		}
	}
	return nil
}

// foldBroken accumulates a pairwise finding into both endpoints'
// per-index factor: brokenG[i] = lcm(brokenG[i], g).
func (r *Registry) foldBroken(i, j int, g *big.Int) {
	if g.Cmp(one) <= 0 {
		return
	}
	for _, idx := range [2]int{i, j} {
		cur, ok := r.brokenG[idx]
		if !ok {
			r.brokenG[idx] = new(big.Int).Set(g)
			continue
		}
		gcd := new(big.Int).GCD(nil, nil, cur, g)
		cur.Mul(cur.Div(cur, gcd), g)
	}
}

// checkPrefix computes the verdict of modulus n against the forest over
// the first m corpus keys: one remainder fold over the O(log m) spine
// roots, one GCD, and — only on a hit — a remainder-tree descent to the
// culprit leaves.
func (r *Registry) checkPrefix(n *mpnat.Nat, nb *big.Int, m int) Verdict {
	v := Verdict{Index: m, Kind: Clean, G: new(big.Int).SetInt64(1)}
	if m == 0 {
		return v
	}
	r.rootsBuf = appendRootsOf(r.rootsBuf[:0], m)
	roots := r.rootsBuf
	acc := r.acc.SetUint64(1)
	for _, root := range roots {
		r.div.Mod(&r.remS, r.store.value(root), n)
		if r.remS.IsZero() {
			acc.SetUint64(0)
			break
		}
		r.mul.Mul(&r.tmpS, acc, &r.remS)
		r.div.Mod(acc, &r.tmpS, n)
		if acc.IsZero() {
			break
		}
	}
	g := new(big.Int).GCD(nil, nil, nb, acc.ToBigInto(&r.accBig))
	if acc.IsZero() {
		// n divides the product: gcd(n, 0) = n.
		g.Set(nb)
	}
	v.G = g
	if g.Cmp(one) == 0 {
		return v
	}
	// Hit: descend to the leaves that share content with n.
	v.Partners = r.descendRoots(roots, n, nb)
	sort.Slice(v.Partners, func(a, b int) bool { return v.Partners[a].Index < v.Partners[b].Index })
	v.Kind = Shared
	for _, p := range v.Partners {
		if p.Dup {
			v.Kind = Duplicate
			break
		}
	}
	return v
}

// descentScratch is one worker's reusable state for a remainder-tree
// descent: a division scratch, the node remainder, two staged big.Ints
// for the per-node GCDs, and the partner accumulator. Owned by exactly
// one pool worker per descent, so nothing in it needs locking.
type descentScratch struct {
	div      mpnat.DivScratch
	rem      mpnat.Nat
	remBig   big.Int
	gcdBig   big.Int
	partners []Partner
}

// descendRoots resolves a prefix hit to its culprit leaves. The spine
// roots cover disjoint leaf spans — no two descents can ever race on a
// node — so a multi-root forest fans the descents out across the
// work-stealing pool with one scratch per worker. Partners are
// concatenated in root order (spans ascend left to right) and sorted by
// index by the caller, so the verdict is byte-identical at every worker
// count. The spine-merge multiplications in appendLeaf stay serial:
// each merge consumes the previous one's product, a carry chain with no
// exploitable parallelism.
func (r *Registry) descendRoots(roots []nodeKey, n *mpnat.Nat, nb *big.Int) []Partner {
	workers := r.cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(roots) {
		workers = len(roots)
	}
	for len(r.descents) < workers {
		r.descents = append(r.descents, &descentScratch{})
	}
	if workers <= 1 {
		ds := r.descents[0]
		ds.partners = ds.partners[:0]
		for _, root := range roots {
			r.descend(ds, root, n, nb)
		}
		return append([]Partner(nil), ds.partners...)
	}
	perRoot := make([][]Partner, len(roots))
	// context.Background: a descent is a short, bounded tree walk; the
	// registry has no cancellation surface to thread through here. The
	// error return is the context's, hence always nil.
	_ = engine.Run(context.Background(), len(roots), engine.PoolOptions{Workers: workers, Metrics: r.cfg.Metrics}, func(i, w int) {
		ds := r.descents[w]
		ds.partners = ds.partners[:0]
		r.descend(ds, roots[i], n, nb)
		perRoot[i] = append([]Partner(nil), ds.partners...)
	})
	var out []Partner
	for _, ps := range perRoot {
		out = append(out, ps...)
	}
	return out
}

// descend prunes subtrees coprime with n and recurses into the rest;
// gcd(n, subproduct mod n) = gcd(n, subproduct), so the pruning is
// exact: every reported leaf really shares a factor. Partner factors
// are copied out of the scratch on a hit, so nothing in a returned
// Verdict aliases reusable state.
func (r *Registry) descend(ds *descentScratch, k nodeKey, n *mpnat.Nat, nb *big.Int) {
	if k.level == 0 {
		j := k.index
		if r.removed[j] {
			return
		}
		g := ds.gcdBig.GCD(nil, nil, nb, r.corpus[j].ToBigInto(&ds.remBig))
		if g.Cmp(one) > 0 {
			f := new(big.Int).Set(g)
			ds.partners = append(ds.partners, Partner{Index: j, Factor: f, Dup: f.Cmp(nb) == 0 && r.corpus[j].Cmp(n) == 0})
		}
		return
	}
	ds.div.Mod(&ds.rem, r.store.value(k), n)
	g := ds.gcdBig.GCD(nil, nil, nb, ds.rem.ToBigInto(&ds.remBig))
	if ds.rem.IsZero() || g.Cmp(one) > 0 {
		r.descend(ds, nodeKey{k.level - 1, 2 * k.index}, n, nb)
		r.descend(ds, nodeKey{k.level - 1, 2*k.index + 1}, n, nb)
	}
}

// journalVerdict appends the verdict record for key i (not yet synced;
// Submit syncs before acknowledging, replay syncs once at the end).
func (r *Registry) journalVerdict(i int, v Verdict) error {
	rec := checkpoint.Record{Unit: i, Pairs: 1, Chain: r.chainVals[i]}
	for _, p := range v.Partners {
		rec.Factors = append(rec.Factors, checkpoint.Factor{I: i, J: p.Index, P: p.Factor.Text(16)})
	}
	if err := r.journal.Append(rec); err != nil {
		return fmt.Errorf("registry: %w", err)
	}
	return nil
}

// appendLeaf admits corpus entry i into the forest: the binary-counter
// carry, merging equal-size siblings up the rightmost spine. Amortized
// one multiplication per append, worst case log2(i).
func (r *Registry) appendLeaf(i int) {
	l, idx := 0, i
	for idx&1 == 1 {
		left := r.store.value(nodeKey{l, idx - 1})
		right := r.store.value(nodeKey{l, idx})
		parent := new(mpnat.Nat)
		r.mul.Mul(parent, left, right)
		r.spineMults.Inc()
		l++
		idx >>= 1
		r.store.put(nodeKey{l, idx}, parent)
	}
}

// emit sends a finding without blocking; a full channel drops the send
// (the finding stays durable in the journal and visible via Broken).
func (r *Registry) emit(f Finding) {
	select {
	case r.findings <- f:
		r.found.Inc()
	default:
		r.dropped.Inc()
	}
}

// Submit checks one modulus against the full history and, unless
// malformed, appends it to the corpus. It returns after the corpus line
// and the journal record are on stable storage. The error is non-nil
// only for operational failures (closed registry, I/O); a malformed key
// is a Verdict, not an error.
func (r *Registry) Submit(n *big.Int) (Verdict, error) {
	vs, err := r.SubmitBatch([]*big.Int{n})
	if err != nil {
		return Verdict{}, err
	}
	return vs[0], nil
}

// SubmitBatch submits a batch in order: each key's verdict accounts for
// every earlier key, including earlier keys of the same batch. The
// corpus log and journal are synced once per batch, so batching
// amortizes the two fsyncs that dominate small-key submission cost.
func (r *Registry) SubmitBatch(ns []*big.Int) ([]Verdict, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, fmt.Errorf("registry: closed")
	}
	out := make([]Verdict, 0, len(ns))
	accepted := false
	for _, n := range ns {
		v, err := r.submitLocked(n)
		if err != nil {
			return nil, err
		}
		if v.Index >= 0 {
			accepted = true
		}
		out = append(out, v)
	}
	if accepted {
		if err := r.corpusF.Sync(); err != nil {
			return nil, fmt.Errorf("registry: %w", err)
		}
		if err := r.journal.Sync(); err != nil {
			return nil, fmt.Errorf("registry: %w", err)
		}
		r.keysGauge.Set(float64(len(r.corpus)))
	}
	return out, nil
}

func (r *Registry) submitLocked(n *big.Int) (Verdict, error) {
	start := time.Now()
	r.submissions.Inc()
	if n == nil || n.Sign() < 0 {
		return Verdict{}, fmt.Errorf("registry: modulus is nil or negative")
	}
	m := mpnat.FromBig(n)
	sp := r.trace.StartSpan("submit", "index", len(r.corpus))
	if reason := corpus.Validate(m); reason != "" {
		sp.End("verdict", Malformed.String())
		r.submitH.ObserveDuration(int64(time.Since(start)))
		return Verdict{Index: -1, Kind: Malformed, Reason: reason, G: new(big.Int).SetInt64(1)}, nil
	}

	i := len(r.corpus)
	v := r.checkPrefix(m, n, i)

	// Durability order: corpus line first (the truth), then the forest,
	// then the journal record. A crash between the first and the last
	// leaves a corpus entry whose verdict replay recomputes.
	hexLine := m.Hex()
	if _, err := r.corpusF.WriteString(hexLine + "\n"); err != nil {
		return Verdict{}, fmt.Errorf("registry: %w", err)
	}
	r.entries = append(r.entries, hexLine)
	r.corpus = append(r.corpus, m)
	r.chainVals = append(r.chainVals, r.chain.Extend([]byte(hexLine)))
	r.appendLeaf(i)
	if err := r.journalVerdict(i, v); err != nil {
		return Verdict{}, err
	}
	for _, p := range v.Partners {
		r.foldBroken(i, p.Index, p.Factor)
		r.emit(Finding{Index: i, Partner: p.Index, Factor: p.Factor})
	}
	sp.End("verdict", v.Kind.String(), "partners", len(v.Partners))
	r.submitH.ObserveDuration(int64(time.Since(start)))
	return v, nil
}

// Findings returns the stream of pairwise discoveries. The channel is
// closed by Close. It is a lossy convenience: a full buffer drops sends
// (counted), and every finding stays recoverable from Broken.
func (r *Registry) Findings() <-chan Finding { return r.findings }

// Len returns the number of accepted keys (including tombstoned ones).
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.corpus)
}

// Modulus returns the registered modulus at index, or nil when the
// index is out of range.
func (r *Registry) Modulus(index int) *big.Int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if index < 0 || index >= len(r.corpus) {
		return nil
	}
	return r.corpus[index].ToBig()
}

// NoteDroppedFinding counts a finding dropped by a delivery layer above
// the registry (the public channel forwarder), so DroppedFindings stays
// honest however the findings reach the consumer.
func (r *Registry) NoteDroppedFinding() { r.dropped.Inc() }

// BrokenKey is one corpus index with its accumulated shared factor.
type BrokenKey struct {
	Index int
	// G is the fold of every pairwise finding touching Index; for
	// squarefree RSA moduli it equals the batch oracle's
	// gcd(n_i, product of all other moduli).
	G *big.Int
}

// Broken returns every key with a known shared factor, ascending by
// index. The G values are byte-identical to batchgcd.SharedFactors over
// the same corpus (see the differential suite).
func (r *Registry) Broken() []BrokenKey {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]BrokenKey, 0, len(r.brokenG))
	for i, g := range r.brokenG {
		out = append(out, BrokenKey{Index: i, G: new(big.Int).Set(g)})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Index < out[b].Index })
	return out
}

// Remove tombstones key i: it stays in the corpus log (indices are
// stable forever) but is excluded from every future product and
// verdict. The tombstone is durable before Remove returns. Historical
// findings involving i are kept — they were true when found.
func (r *Registry) Remove(i int) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return fmt.Errorf("registry: closed")
	}
	if i < 0 || i >= len(r.corpus) {
		return fmt.Errorf("registry: index %d out of range [0,%d)", i, len(r.corpus))
	}
	if r.removed[i] {
		return nil
	}
	if _, err := r.removedF.WriteString(strconv.Itoa(i) + "\n"); err != nil {
		return fmt.Errorf("registry: %w", err)
	}
	if err := r.removedF.Sync(); err != nil {
		return fmt.Errorf("registry: %w", err)
	}
	r.removed[i] = true
	for _, k := range ancestorsOf(i, len(r.corpus)) {
		r.store.invalidate(k)
	}
	return nil
}

// Compact rewrites the journal to its minimal form, prunes node files
// that are no longer forest nodes, and rebuilds the spine roots (which
// re-validates every node an active check can reach transitively).
// Returns journal lines dropped plus node files pruned.
func (r *Registry) Compact() (int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return 0, fmt.Errorf("registry: closed")
	}
	if err := r.journal.Close(); err != nil {
		return 0, fmt.Errorf("registry: %w", err)
	}
	dropped, err := checkpoint.Compact(filepath.Join(r.dir, "journal.jsonl"))
	if err != nil {
		return 0, fmt.Errorf("registry: %w", err)
	}
	w, err := checkpoint.OpenAppend(filepath.Join(r.dir, "journal.jsonl"))
	if err != nil {
		return 0, fmt.Errorf("registry: %w", err)
	}
	if err := w.Begin(journalHeader()); err != nil {
		w.Close()
		return 0, fmt.Errorf("registry: %w", err)
	}
	r.journal = w
	pruned, err := r.store.prune(len(r.corpus))
	if err != nil {
		return 0, fmt.Errorf("registry: %w", err)
	}
	for _, root := range rootsOf(len(r.corpus)) {
		r.store.value(root)
	}
	return dropped + pruned, nil
}

// Stats returns a point-in-time view of the registry's counters.
func (r *Registry) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return Stats{
		Keys:        len(r.corpus),
		Removed:     len(r.removed),
		Broken:      len(r.brokenG),
		Submissions: r.submissions.Value(),
		Findings:    r.found.Value(),
		SpineMults:  r.spineMults.Value(),
		Replayed:    r.replayed.Value(),
		NodeLoads:   r.store.loads.Value(),
		NodeBuilds:  r.store.builds.Value(),
		Dropped:     r.dropped.Value(),
	}
}

// Close syncs and closes the logs and the journal and closes the
// findings channel. The registry is unusable afterwards; reopen with
// Open.
func (r *Registry) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil
	}
	r.closed = true
	close(r.findings)
	var first error
	keep := func(err error) {
		if err != nil && first == nil {
			first = err
		}
	}
	keep(r.corpusF.Sync())
	keep(r.corpusF.Close())
	keep(r.removedF.Sync())
	keep(r.removedF.Close())
	keep(r.journal.Close())
	if first != nil {
		return fmt.Errorf("registry: %w", first)
	}
	return nil
}
