package registry

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"bulkgcd/internal/mpnat"
	"bulkgcd/internal/obs"
	"bulkgcd/internal/subprod"
)

// nodeKey addresses one product-tree node in global leaf-aligned
// coordinates: node (level, index) is the product of the moduli at
// leaves [index<<level, (index+1)<<level). Level 0 is the corpus itself.
type nodeKey struct {
	level, index int
}

func (k nodeKey) span() (lo, hi int) {
	return k.index << k.level, (k.index + 1) << k.level
}

// nodeFileVersion is the node file format version ("BGRN" = bulk gcd
// registry node).
const nodeFileVersion = "bgrn1"

// seedSpan is the smallest span the store builds through the parallel
// subprod builder instead of serial child recursion; a cold open over a
// large corpus seeds whole subtrees at once and harvests every interior
// node into the file store.
const seedSpan = 256

// nodeHeader is the JSON first line of a node file. FP binds the node to
// the exact corpus slice it multiplies: mismatch (a different corpus, a
// tombstoned leaf) makes the store rebuild instead of trusting the file.
type nodeHeader struct {
	V     string `json:"v"`
	Level int    `json:"level"`
	Index int    `json:"index"`
	FP    string `json:"fp"`
	Words int    `json:"words"`
}

// store resolves node values through three layers: the byte-budgeted
// in-RAM LRU cache, the node file directory, and a rebuild from
// children (recursive for small spans, the parallel subprod builder for
// large ones). Writes go through to disk so a restart reloads instead
// of remultiplying. value() is safe for concurrent use — the cache is
// thread-safe, reads are pure, builds use call-local scratch, and node
// file writes are atomic temp+rename — which is what lets the registry
// descend the spine roots in parallel. Mutating entry points (put,
// invalidate, prune) stay serialized under the registry lock.
type store struct {
	dir     string
	cache   *subprod.KeyedCache[nodeKey]
	workers int

	// leafHex returns the identity line for leaf i ("-" when
	// tombstoned), leaf its value (1 when tombstoned); both are provided
	// by the registry so the store never sees corpus bookkeeping.
	leafHex func(i int) string
	leaf    func(i int) *mpnat.Nat

	loads, builds *obs.Counter // registry_node_loads_total, registry_node_builds_total
}

func newStore(dir string, budget int64, workers int, reg *obs.Registry) *store {
	s := &store{
		dir:     dir,
		cache:   subprod.NewKeyedCache[nodeKey](budget),
		workers: workers,
	}
	if reg != nil {
		s.loads = reg.Counter("registry_node_loads_total")
		s.builds = reg.Counter("registry_node_builds_total")
	}
	return s
}

// fingerprint binds a node to the corpus slice it covers: the version,
// the node coordinates, and each leaf's identity line (the corpus hex,
// or "-" for a tombstoned leaf). Hashing the span is linear in the leaf
// count but byte-cheap compared to the multiplications it guards.
func (s *store) fingerprint(k nodeKey) string {
	lo, hi := k.span()
	h := sha256.New()
	fmt.Fprintf(h, "%s|%d|%d\n", nodeFileVersion, k.level, k.index)
	for i := lo; i < hi; i++ {
		h.Write([]byte(s.leafHex(i)))
		h.Write([]byte{'\n'})
	}
	return hex.EncodeToString(h.Sum(nil))
}

func (s *store) path(k nodeKey) string {
	return filepath.Join(s.dir, fmt.Sprintf("%02d-%08x.node", k.level, k.index))
}

// value resolves a node: cache, then disk, then rebuild. Level 0 reads
// the corpus directly and is never cached or spilled.
func (s *store) value(k nodeKey) *mpnat.Nat {
	if k.level == 0 {
		return s.leaf(k.index)
	}
	return s.cache.Get(k, func() *mpnat.Nat {
		if v := s.read(k); v != nil {
			s.loads.Inc()
			return v
		}
		return s.build(k)
	})
}

// put inserts a freshly multiplied node (a spine merge) write-through:
// the file lands before the cache so a crash immediately after still
// reloads it. Returns the retained value (the cache may already hold
// an equal node built concurrently — impossible under the registry
// lock, but Put's contract covers it).
func (s *store) put(k nodeKey, v *mpnat.Nat) *mpnat.Nat {
	s.write(k, v)
	return s.cache.Put(k, v)
}

// invalidate drops a node from cache and disk; the next value() call
// rebuilds it from children. Used when a leaf under it is tombstoned.
func (s *store) invalidate(k nodeKey) {
	s.cache.Drop(k)
	os.Remove(s.path(k))
}

// read loads and validates a node file, returning nil on any mismatch
// (missing, torn, foreign corpus, stale tombstone state) — the caller
// rebuilds, so a bad node file can cost time but never correctness.
func (s *store) read(k nodeKey) *mpnat.Nat {
	data, err := os.ReadFile(s.path(k))
	if err != nil {
		return nil
	}
	nl := -1
	for i, b := range data {
		if b == '\n' {
			nl = i
			break
		}
	}
	if nl < 0 {
		return nil
	}
	var hdr nodeHeader
	if err := json.Unmarshal(data[:nl], &hdr); err != nil {
		return nil
	}
	if hdr.V != nodeFileVersion || hdr.Level != k.level || hdr.Index != k.index {
		return nil
	}
	body := data[nl+1:]
	if len(body) != hdr.Words*4 {
		return nil
	}
	if hdr.FP != s.fingerprint(k) {
		return nil
	}
	v, err := new(mpnat.Nat).SetWordBytes(body)
	if err != nil {
		return nil
	}
	return v
}

// write persists a node file atomically (temp + rename), so a crash
// mid-write leaves either no file or a complete one; read rejects any
// torn survivor via the length and fingerprint checks anyway.
func (s *store) write(k nodeKey, v *mpnat.Nat) {
	hdr := nodeHeader{V: nodeFileVersion, Level: k.level, Index: k.index, FP: s.fingerprint(k), Words: v.Len()}
	line, err := json.Marshal(hdr)
	if err != nil {
		return
	}
	buf := append(line, '\n')
	buf = v.AppendWordBytes(buf)
	tmp := s.path(k) + ".tmp"
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		os.Remove(tmp)
		return
	}
	if err := os.Rename(tmp, s.path(k)); err != nil {
		os.Remove(tmp)
	}
}

// build computes a node from its children. Small spans recurse serially
// with the shared scratch; spans of seedSpan and larger go through the
// parallel subprod builder, and every interior node of the built
// subtree is harvested into the file store so neighbouring rebuilds
// (and the next restart) get them for free.
func (s *store) build(k nodeKey) *mpnat.Nat {
	s.builds.Inc()
	lo, hi := k.span()
	if hi-lo >= seedSpan {
		leaves := make([]*mpnat.Nat, hi-lo)
		for i := range leaves {
			leaves[i] = s.leaf(lo + i)
		}
		t, err := subprod.BuildNat(context.Background(), leaves, subprod.BuildOptions{Workers: s.workers})
		if err == nil {
			for l := 1; l < len(t.Levels); l++ {
				for j, v := range t.Levels[l] {
					kk := nodeKey{l, (lo >> l) + j}
					s.write(kk, v)
					if l < len(t.Levels)-1 {
						s.cache.Put(kk, v)
					}
				}
			}
			return t.Root()
		}
		// The builder only fails on context cancellation; fall through to
		// the serial path, which cannot fail.
	}
	left := s.value(nodeKey{k.level - 1, 2 * k.index})
	right := s.value(nodeKey{k.level - 1, 2*k.index + 1})
	v := new(mpnat.Nat)
	// Call-local scratch: concurrent root descents may rebuild disjoint
	// nodes at once, so the serial path must not share multiplier state.
	var mul mpnat.MulScratch
	mul.Mul(v, left, right)
	s.write(k, v)
	return v
}

// prune removes node files that are not nodes of the forest over n
// leaves (left over from before a compaction or from an older, larger
// corpus directory) plus any stale temp files. Returns the number of
// files removed.
func (s *store) prune(n int) (int, error) {
	des, err := os.ReadDir(s.dir)
	if err != nil {
		return 0, err
	}
	removed := 0
	for _, de := range des {
		name := de.Name()
		var level, index int
		if _, err := fmt.Sscanf(name, "%02d-%08x.node", &level, &index); err != nil || !isNodeName(name) {
			// Not a node file; drop only our own temp leftovers.
			if filepath.Ext(name) == ".tmp" {
				os.Remove(filepath.Join(s.dir, name))
				removed++
			}
			continue
		}
		hi := (index + 1) << level
		if level < 1 || hi > n {
			os.Remove(filepath.Join(s.dir, name))
			removed++
		}
	}
	return removed, nil
}

// isNodeName reports whether name matches the node file pattern exactly
// (Sscanf alone accepts trailing garbage).
func isNodeName(name string) bool {
	var level, index int
	var rest string
	n, _ := fmt.Sscanf(name, "%02d-%08x.node%s", &level, &index, &rest)
	return n == 2 && fmt.Sprintf("%02d-%08x.node", level, index) == name
}

// stats returns the cache's counters for the registry's Stats surface.
func (s *store) stats() subprod.CacheStats { return s.cache.Stats() }

// rootsOf decomposes a forest over n leaves into its spine roots, one
// perfect subtree per set bit of n, largest first. Each root's span is
// aligned because every higher root's span is a multiple of its size.
func rootsOf(n int) []nodeKey { return appendRootsOf(nil, n) }

// appendRootsOf is rootsOf into a caller-owned buffer; the submit path
// calls it once per key, so reusing the slice keeps the hot path
// allocation-flat.
func appendRootsOf(out []nodeKey, n int) []nodeKey {
	offset := 0
	for k := 62; k >= 0; k-- {
		if n&(1<<k) != 0 {
			out = append(out, nodeKey{k, offset >> k})
			offset += 1 << k
		}
	}
	return out
}

// ancestorsOf lists the existing forest nodes (level ≥ 1) whose span
// contains leaf i, in a forest over n leaves — the nodes a tombstone at
// i invalidates.
func ancestorsOf(i, n int) []nodeKey {
	var out []nodeKey
	for _, root := range rootsOf(n) {
		lo, hi := root.span()
		if i < lo || i >= hi {
			continue
		}
		for l := root.level; l >= 1; l-- {
			out = append(out, nodeKey{l, i >> l})
		}
		break
	}
	sort.Slice(out, func(a, b int) bool { return out[a].level > out[b].level })
	return out
}
