package registry

import "bulkgcd/internal/obs"

// Metric help strings; the doc-parity test keeps these and DESIGN.md
// section 5c in lockstep.
func init() {
	obs.RegisterHelp("registry_submissions_total", "keys submitted to the registry, including malformed rejections")
	obs.RegisterHelp("registry_findings_total", "pairwise shared-factor findings delivered on the findings channel")
	obs.RegisterHelp("registry_findings_dropped_total", "findings channel sends dropped because no receiver kept up")
	obs.RegisterHelp("registry_spine_mults_total", "product-tree spine merge multiplications (amortized one per accepted key)")
	obs.RegisterHelp("registry_replayed_total", "verdicts recomputed during Open because the journal did not durably cover them")
	obs.RegisterHelp("registry_node_loads_total", "product-tree node values reloaded from validated node files")
	obs.RegisterHelp("registry_node_builds_total", "product-tree node values rebuilt from their children")
	obs.RegisterHelp("registry_keys", "accepted keys in the registry corpus, including tombstoned ones")
	obs.RegisterHelp("registry_submit_seconds", "wall-clock duration of one submission (check + append + journal)")
}
