package registry

import (
	"math/big"
	"math/bits"
	"runtime"
	"testing"
	"time"

	"bulkgcd/internal/batchgcd"
	"bulkgcd/internal/rsakey"
)

// BenchmarkRegistrySubmit is the self-enforcing cost gate for the
// incremental registry. It seeds a registry with a 65536-key corpus of
// real 128-bit semiprimes (8192 under -short; real primes keep shared
// factors as sparse as a genuine key population — pseudo moduli share
// small primes so densely that every submission descends the tree),
// then measures single-key Submit latency and fails outright unless
// both acceptance bounds hold:
//
//   - amortized O(1) maintenance: the seeding phase performed at most
//     one spine merge multiplication per accepted key (the binary
//     counter bound, N - popcount(N)), and no single measured Submit
//     merged more than ⌈log2 N⌉+1 nodes;
//   - speedup over rescan: one incremental Submit (check + append +
//     journal + fsync) must beat rerunning the batch-GCD oracle over
//     the whole corpus — what every submission would cost without the
//     persistent index — by ≥ 10× at the full 65536-key size the
//     acceptance bound names, ≥ 5× at the -short smoke size (the
//     advantage grows with N, so the small corpus gets the looser
//     bound).
//
// The bench reports ns/submit, the rescan latency, and the speedup so
// bench-smoke archives the numbers alongside the pass/fail.
func BenchmarkRegistrySubmit(b *testing.B) {
	count, minSpeedup := 65536, 10.0
	if testing.Short() {
		count, minSpeedup = 8192, 5.0
	}
	const bits_ = 128
	c, err := rsakey.GenerateCorpus(rsakey.CorpusSpec{
		Count: count + 512, Bits: bits_, WeakPairs: 16, Seed: 9,
	})
	if err != nil {
		b.Fatal(err)
	}
	all := make([]*big.Int, 0, count+512)
	for _, n := range c.Moduli() {
		all = append(all, n.ToBig())
	}
	seed, fresh := all[:count], all[count:]

	r := openT(b, b.TempDir(), Config{NodeBudget: 256 << 20})
	for pos := 0; pos < len(seed); pos += 1024 {
		end := pos + 1024
		if end > len(seed) {
			end = len(seed)
		}
		if _, err := r.SubmitBatch(seed[pos:end]); err != nil {
			b.Fatal(err)
		}
	}
	defer r.Close()

	// Gate 1a: amortized one merge per key over the whole seed phase.
	if sm := r.Stats().SpineMults; sm > int64(count) {
		b.Fatalf("seeding %d keys took %d spine mults, want <= %d (amortized O(1) violated)", count, sm, count)
	}

	// Rescan baseline: the batch-GCD oracle over the current corpus,
	// measured once. This is the per-submission cost of the pre-registry
	// workflow (full product+remainder tree from scratch).
	start := time.Now()
	if _, err := batchgcd.SharedFactors(seed); err != nil {
		b.Fatal(err)
	}
	rescan := time.Since(start)

	logBound := int64(bits.Len(uint(r.Len()))) + 1

	b.ReportAllocs()
	var msBefore runtime.MemStats
	runtime.ReadMemStats(&msBefore)
	b.ResetTimer()
	start = time.Now()
	for i := 0; i < b.N; i++ {
		before := r.Stats().SpineMults
		if _, err := r.Submit(fresh[i%len(fresh)]); err != nil {
			b.Fatal(err)
		}
		// Gate 1b: one append never merges more than ⌈log2 N⌉+1 nodes.
		if d := r.Stats().SpineMults - before; d > logBound {
			b.Fatalf("submit %d merged %d nodes, want <= %d (O(log N) violated)", i, d, logBound)
		}
	}
	b.StopTimer()
	perSubmit := time.Since(start) / time.Duration(b.N)
	var msAfter runtime.MemStats
	runtime.ReadMemStats(&msAfter)

	b.ReportMetric(float64(perSubmit.Nanoseconds()), "ns/submit")
	b.ReportMetric(float64(rescan.Nanoseconds()), "rescan-ns")
	speedup := float64(rescan) / float64(perSubmit)
	b.ReportMetric(speedup, "rescan-x")

	// Gate 2: the headline acceptance bound.
	if speedup < minSpeedup {
		b.Fatalf("incremental submit %v vs full rescan %v: %.1fx, want >= %.0fx", perSubmit, rescan, speedup, minSpeedup)
	}

	// Gate 3: allocation regression bound on the steady-state submit
	// path. PR10 retained the fold accumulator, the spine-root list and
	// the descent scratch per registry, leaving ~52 allocs per submit
	// (the fresh Verdict.G, journal marshalling, and the durability
	// syscalls). The bound carries slack for platform variance but fails
	// loudly if per-call scratch creeps back in. Skipped for tiny b.N,
	// where one cold-path warm-up (scratch growth, file handles)
	// dominates the average.
	if b.N >= 10 {
		allocsPerOp := (msAfter.Mallocs - msBefore.Mallocs) / uint64(b.N)
		bytesPerOp := (msAfter.TotalAlloc - msBefore.TotalAlloc) / uint64(b.N)
		if allocsPerOp > 80 {
			b.Fatalf("submit allocated %d objects/op, want <= 80 (regression: per-call scratch on the hot path?)", allocsPerOp)
		}
		if bytesPerOp > 64<<10 {
			b.Fatalf("submit allocated %d bytes/op, want <= %d", bytesPerOp, 64<<10)
		}
	}
}
