package registry

import (
	"math/big"
	"testing"
)

// FuzzSpineMerge drives the delta-update path — append, carry-merge
// along the rightmost spine, node spill and reload — with arbitrary
// small moduli and checks two invariants after every single submission:
//
//  1. the verdict's G equals the direct big.Int computation
//     gcd(n, Π previous mod n), the batch-GCD per-key value;
//  2. the product of the spine-root node values equals the big.Int
//     product of every accepted modulus, i.e. the forest still
//     multiplies out to the corpus product after the merge.
func FuzzSpineMerge(f *testing.F) {
	f.Add([]byte{0x0f, 0x4d, 0x15, 0x63, 0x0f})
	f.Add([]byte{0xff, 0xff, 0xff, 0x01, 0x01, 0x01, 0x35, 0x35})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		const maxKeys = 24
		r := openT(t, t.TempDir(), Config{NodeBudget: 64}) // tiny budget: constant spill
		defer r.Close()

		product := big.NewInt(1) // over accepted keys
		var accepted []*big.Int
		for pos := 0; pos+3 <= len(data) && len(accepted) < maxKeys; pos += 3 {
			v := uint64(data[pos])<<16 | uint64(data[pos+1])<<8 | uint64(data[pos+2])
			n := new(big.Int).SetUint64(v)
			verdict, err := r.Submit(n)
			if err != nil {
				t.Fatal(err)
			}
			if v == 0 || v%2 == 0 {
				if verdict.Kind != Malformed {
					t.Fatalf("modulus %d: kind %v, want Malformed", v, verdict.Kind)
				}
				continue
			}
			if verdict.Kind == Malformed {
				t.Fatalf("odd modulus %d rejected: %+v", v, verdict)
			}

			// Invariant 1: G is the batch-GCD per-key value. GCD(n, 0) = n,
			// which matches the registry's acc==0 ⇒ G=n convention.
			want := new(big.Int).GCD(nil, nil, n, new(big.Int).Mod(product, n))
			if verdict.G.Cmp(want) != 0 {
				t.Fatalf("key %d (n=%d): G=%v, want %v", verdict.Index, v, verdict.G, want)
			}
			// Partners must divide both moduli; Dup iff equal values.
			for _, p := range verdict.Partners {
				m := accepted[p.Index]
				if new(big.Int).Mod(n, p.Factor).Sign() != 0 || new(big.Int).Mod(m, p.Factor).Sign() != 0 {
					t.Fatalf("partner %+v does not divide both %d and %v", p, v, m)
				}
				if p.Dup != (n.Cmp(m) == 0) {
					t.Fatalf("partner %+v: dup flag wrong for %d vs %v", p, v, m)
				}
			}

			accepted = append(accepted, n)
			product.Mul(product, n)

			// Invariant 2: the spine still multiplies out to the corpus
			// product after the carry merges.
			forest := big.NewInt(1)
			for _, k := range rootsOf(len(accepted)) {
				forest.Mul(forest, r.store.value(k).ToBig())
			}
			if forest.Cmp(product) != 0 {
				t.Fatalf("after %d keys: forest product %v != corpus product %v", len(accepted), forest, product)
			}
		}
	})
}
