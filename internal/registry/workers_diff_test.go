package registry

import (
	"fmt"
	"strings"
	"testing"
)

// TestDifferentialWorkerCounts streams the same shuffled weak corpus
// into registries configured with pool widths 1, 2, 7 and 16 and
// requires the folded broken set to be hex-for-hex identical to the
// batch oracle and across every width. Width 1 descends the spine roots
// serially; the wider registries fan each prefix hit's root descents
// across the work-stealing pool (descentScratch per worker), so this is
// the determinism gate for the parallel descent path: partners are
// collected per root and sorted by index, never by completion order.
func TestDifferentialWorkerCounts(t *testing.T) {
	moduli := weakModuli(t, 40, 96, 5, 11)
	oracle := oracleBroken(t, moduli)

	var base string
	for _, w := range []int{1, 2, 7, 16} {
		r := openT(t, t.TempDir(), Config{Workers: w, NodeBudget: 1 << 12})
		for pos := 0; pos < len(moduli); pos += 7 {
			end := pos + 7
			if end > len(moduli) {
				end = len(moduli)
			}
			if _, err := r.SubmitBatch(moduli[pos:end]); err != nil {
				t.Fatalf("workers=%d: %v", w, err)
			}
		}
		diffBroken(t, r, oracle)

		var sb strings.Builder
		for _, bk := range r.Broken() {
			fmt.Fprintf(&sb, "%d:%s\n", bk.Index, bk.G.Text(16))
		}
		if err := r.Close(); err != nil {
			t.Fatal(err)
		}
		if base == "" {
			base = sb.String()
			continue
		}
		if sb.String() != base {
			t.Fatalf("workers=%d: broken set differs from workers=1:\n%s\nvs\n%s", w, sb.String(), base)
		}
	}
}
