package subprod

import (
	"fmt"
	"sync"
	"testing"

	"bulkgcd/internal/mpnat"
)

// TestCacheShardsSpreadKeys checks sequential int keys land on distinct
// shards and that the shard count rounds up to a power of two.
func TestCacheShardsSpreadKeys(t *testing.T) {
	for workers, want := range map[int]int{0: 1, 1: 1, 2: 2, 3: 4, 7: 8, 8: 8, 9: 16, 100: 16} {
		c := NewCacheShards(1<<20, workers)
		if got := len(c.shards); got != want {
			t.Errorf("workers=%d: %d shards, want %d", workers, got, want)
		}
	}
	c := NewCacheShards(1<<20, 8)
	seen := map[*cacheShard[int]]bool{}
	for k := 0; k < 8; k++ {
		seen[c.shard(k)] = true
	}
	if len(seen) != 8 {
		t.Fatalf("8 sequential keys hit %d shards, want 8", len(seen))
	}
}

// TestCacheShardsBudgetHolds hammers a sharded cache from many
// goroutines and checks the invariants that survive sharding: total
// bytes never exceed the budget (every value fits its shard slice, so
// the keep-at-least-one clause never overshoots), every Get returns the
// right value, and the stats add up.
func TestCacheShardsBudgetHolds(t *testing.T) {
	const budget = 16 * 1024
	c := NewCacheShards(budget, 8)
	val := func(k int) *mpnat.Nat {
		ws := make([]uint32, 8) // 32 bytes, far under budget/16
		for i := range ws {
			ws[i] = uint32(k + 1)
		}
		return mpnat.NewFromWords(ws)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				k := (w*131 + i) % 977
				got := c.Get(k, func() *mpnat.Nat { return val(k) })
				if got.Words()[0] != uint32(k+1) {
					t.Errorf("key %d: wrong value", k)
					return
				}
				if i%97 == 0 {
					c.Drop(k)
				}
			}
		}(w)
	}
	wg.Wait()
	st := c.Stats()
	if st.Bytes > budget {
		t.Fatalf("resident %d bytes exceeds budget %d", st.Bytes, budget)
	}
	if st.Hits+st.Misses != 8*2000 {
		t.Fatalf("hit/miss accounting: %+v", st)
	}
	if st.Builds < st.Misses {
		t.Fatalf("builds %d < misses %d", st.Builds, st.Misses)
	}
}

// TestCacheShardsOversizedValue: a value larger than its shard's budget
// slice is handed out but never retained.
func TestCacheShardsOversizedValue(t *testing.T) {
	c := NewCacheShards(64, 4) // 16 bytes per shard
	big := make([]uint32, 8)   // 32 bytes
	for i := range big {
		big[i] = 7
	}
	v := c.Put(3, mpnat.NewFromWords(big))
	if v == nil || v.Words()[0] != 7 {
		t.Fatal("oversized value not handed back")
	}
	if st := c.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("oversized value retained: %+v", st)
	}
}

// BenchmarkCacheProbe measures the probe cost of a hot all-hits cache
// under parallel load, single-shard vs sharded — the contention the
// hybrid engine's filter loop pays on every tile.
func BenchmarkCacheProbe(b *testing.B) {
	for _, shards := range []int{1, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			c := NewCacheShards(1<<20, shards)
			if shards == 1 {
				c = NewCache(1 << 20)
			}
			const keys = 64
			for k := 0; k < keys; k++ {
				kk := k
				c.Get(k, func() *mpnat.Nat { return mpnat.New(uint64(kk + 1)) })
			}
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				k := 0
				for pb.Next() {
					c.Get(k%keys, func() *mpnat.Nat { return mpnat.New(uint64(k%keys + 1)) })
					k++
				}
			})
		})
	}
}
