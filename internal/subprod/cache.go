package subprod

import (
	"container/list"
	"sync"

	"bulkgcd/internal/mpnat"
)

// CacheStats is a point-in-time accounting snapshot of a Cache.
type CacheStats struct {
	// Hits and Misses count Get calls served from (resp. absent from)
	// the cache; Builds counts build invocations (>= Misses only when
	// concurrent Gets race on the same key).
	Hits, Misses, Builds int64
	// Evictions counts entries dropped to stay under the budget.
	Evictions int64
	// Bytes is the current cached payload size; Entries the entry count.
	Bytes   int64
	Entries int
}

// KeyedCache is a byte-budgeted LRU cache of subproducts, generic over
// the key type: the hybrid engine keys tile subproducts by tile index,
// the key registry keys persistent tree nodes by (level, index) pairs.
// It is safe for concurrent use. Values must be treated as read-only by
// callers (they are shared across workers).
//
// Internally the cache is an array of independently locked shards, each
// with its own LRU list and an even slice of the byte budget.
// NewKeyedCache and NewCache build a single shard — one strict global
// LRU, the right shape when access is already serialized (the registry
// probes its node store under the registry lock) or values can be large
// relative to the budget (a shard never retains a value bigger than its
// own slice). NewCacheShards spreads int keys across 2^k shards so the
// hybrid engine's workers, whose tile probes all land on this cache
// from the hot filter loop, contend on shards instead of one global
// mutex; eviction then approximates LRU per shard rather than globally,
// which costs at most a shard's budget slice of staleness.
//
// A Get miss builds outside the lock, so two workers racing on the same
// key may both build; the extra build is wasted work, never a
// correctness issue (the first insert wins and both callers return
// equal values).
type KeyedCache[K comparable] struct {
	mask   uint64
	shards []cacheShard[K]
	hash   func(K) uint64
}

type cacheShard[K comparable] struct {
	mu      sync.Mutex
	budget  int64 // <= 0 means unlimited
	used    int64
	order   *list.List // front = most recently used; values are *cacheEntry[K]
	entries map[K]*list.Element

	hits, misses, builds, evictions int64
	_                               [24]byte // keep neighbouring shard locks off one cache line
}

type cacheEntry[K comparable] struct {
	key K
	val *mpnat.Nat
}

// Cache is the tile-index-keyed cache the hybrid engine uses.
type Cache = KeyedCache[int]

// NewCache returns a tile-index-keyed cache holding at most budget bytes
// of subproduct payload (budget <= 0 means unlimited). A single value
// larger than the whole budget is handed to the caller but never
// retained.
func NewCache(budget int64) *Cache { return NewKeyedCache[int](budget) }

// NewCacheShards is NewCache split over enough 2^k shards to give each
// of workers goroutines its own lock in expectation (capped at 16).
// The byte budget divides evenly across the shards, so a single value
// larger than budget/shards is handed out but never retained, and LRU
// eviction is per shard. Tile indices are sequential, so key&mask
// spreads neighbouring tiles across distinct shards.
func NewCacheShards(budget int64, workers int) *Cache {
	shards := 1
	for shards < workers && shards < 16 {
		shards *= 2
	}
	c := newKeyedCache[int](budget, shards)
	c.hash = func(k int) uint64 { return uint64(k) }
	return c
}

// NewKeyedCache is NewCache for an arbitrary comparable key type.
func NewKeyedCache[K comparable](budget int64) *KeyedCache[K] {
	return newKeyedCache[K](budget, 1)
}

func newKeyedCache[K comparable](budget int64, shards int) *KeyedCache[K] {
	c := &KeyedCache[K]{mask: uint64(shards - 1), shards: make([]cacheShard[K], shards)}
	for i := range c.shards {
		s := &c.shards[i]
		s.budget = budget / int64(shards)
		if budget > 0 && s.budget < 1 {
			s.budget = 1
		}
		s.order = list.New()
		s.entries = map[K]*list.Element{}
	}
	return c
}

func (c *KeyedCache[K]) shard(key K) *cacheShard[K] {
	if c.hash == nil {
		return &c.shards[0]
	}
	return &c.shards[c.hash(key)&c.mask]
}

// Get returns the cached value for key, building and (budget permitting)
// inserting it on a miss.
func (c *KeyedCache[K]) Get(key K, build func() *mpnat.Nat) *mpnat.Nat {
	s := c.shard(key)
	s.mu.Lock()
	if el, ok := s.entries[key]; ok {
		s.order.MoveToFront(el)
		v := el.Value.(*cacheEntry[K]).val
		s.hits++
		s.mu.Unlock()
		return v
	}
	s.misses++
	s.builds++
	s.mu.Unlock()

	v := build()

	s.mu.Lock()
	defer s.mu.Unlock()
	return s.insertLocked(key, v)
}

// Put inserts a value built elsewhere (budget permitting) and returns
// the retained value: the already-cached one when a racing worker got
// there first, v otherwise.
func (c *KeyedCache[K]) Put(key K, v *mpnat.Nat) *mpnat.Nat {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.insertLocked(key, v)
}

// insertLocked adds v under key unless the key is already present, then
// evicts from the LRU tail until the shard's budget holds. Callers hold
// the shard lock.
func (s *cacheShard[K]) insertLocked(key K, v *mpnat.Nat) *mpnat.Nat {
	if el, ok := s.entries[key]; ok {
		// A racing worker inserted first; its value is identical.
		s.order.MoveToFront(el)
		return el.Value.(*cacheEntry[K]).val
	}
	size := NatBytes(v)
	if s.budget > 0 && size > s.budget {
		return v // larger than the shard's whole budget: use, don't retain
	}
	s.entries[key] = s.order.PushFront(&cacheEntry[K]{key: key, val: v})
	s.used += size
	for s.budget > 0 && s.used > s.budget && s.order.Len() > 1 {
		back := s.order.Back()
		e := back.Value.(*cacheEntry[K])
		s.order.Remove(back)
		delete(s.entries, e.key)
		s.used -= NatBytes(e.val)
		s.evictions++
	}
	return v
}

// Drop removes key from the cache if present (the registry invalidates
// rebuilt nodes after a quarantine divides a leaf out of their products).
func (c *KeyedCache[K]) Drop(key K) {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.entries[key]; ok {
		e := el.Value.(*cacheEntry[K])
		s.order.Remove(el)
		delete(s.entries, key)
		s.used -= NatBytes(e.val)
	}
}

// Stats returns a snapshot of the cache accounting, summed over shards.
func (c *KeyedCache[K]) Stats() CacheStats {
	var st CacheStats
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st.Hits += s.hits
		st.Misses += s.misses
		st.Builds += s.builds
		st.Evictions += s.evictions
		st.Bytes += s.used
		st.Entries += s.order.Len()
		s.mu.Unlock()
	}
	return st
}
