package subprod

import (
	"context"
	"fmt"
	"math/big"
	"math/rand"
	"sync"
	"testing"

	"bulkgcd/internal/mpnat"
)

func randBig(r *rand.Rand, bits int) *big.Int {
	v := new(big.Int)
	for v.BitLen() < bits {
		v.Lsh(v, 32)
		v.Or(v, new(big.Int).SetUint64(uint64(r.Uint32())))
	}
	return v.SetBit(v, 0, 1) // odd, like a modulus
}

func TestBuildMatchesDirectProduct(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for _, m := range []int{1, 2, 3, 5, 8, 17, 64} {
		for _, workers := range []int{1, 4} {
			leaves := make([]*big.Int, m)
			want := big.NewInt(1)
			for i := range leaves {
				leaves[i] = randBig(r, 96)
				want = new(big.Int).Mul(want, leaves[i])
			}
			var nodes int64
			var mu sync.Mutex
			tree, err := Build(context.Background(), leaves, BuildOptions{
				Workers: workers,
				OnNode: func() {
					mu.Lock()
					nodes++
					mu.Unlock()
				},
			})
			if err != nil {
				t.Fatalf("m=%d workers=%d: %v", m, workers, err)
			}
			if tree.Root().Cmp(want) != 0 {
				t.Fatalf("m=%d workers=%d: root != direct product", m, workers)
			}
			if nodes != Mults(m) {
				t.Errorf("m=%d: %d multiplications, Mults says %d", m, nodes, Mults(m))
			}
		}
	}
}

func TestBuildOnLevelWrapsEveryLevel(t *testing.T) {
	leaves := make([]*big.Int, 9)
	for i := range leaves {
		leaves[i] = big.NewInt(int64(i + 2))
	}
	var levels []string
	_, err := Build(context.Background(), leaves, BuildOptions{
		OnLevel: func(level, nodes int, run func() error) error {
			levels = append(levels, fmt.Sprintf("%d:%d", level, nodes))
			return run()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// 9 -> 5 -> 3 -> 2 -> 1: pairs per level 4, 2, 1, 1.
	want := []string{"1:4", "2:2", "3:1", "4:1"}
	if fmt.Sprint(levels) != fmt.Sprint(want) {
		t.Errorf("levels = %v, want %v", levels, want)
	}
}

func TestBuildCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	leaves := []*big.Int{big.NewInt(3), big.NewInt(5)}
	if _, err := Build(ctx, leaves, BuildOptions{}); err == nil {
		t.Fatal("expected context error")
	}
}

func TestProductNat(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for _, m := range []int{0, 1, 2, 3, 7, 33} {
		ms := make([]*mpnat.Nat, m)
		want := big.NewInt(1)
		for i := range ms {
			b := randBig(r, 64)
			ms[i] = mpnat.FromBig(b)
			want = new(big.Int).Mul(want, b)
		}
		got := ProductNat(ms)
		if got.ToBig().Cmp(want) != 0 {
			t.Fatalf("m=%d: product mismatch", m)
		}
		if m == 1 && got == ms[0] {
			t.Fatal("single-element product must not alias the input")
		}
	}
}

func TestCacheBudgetAndLRU(t *testing.T) {
	build := func(k int) func() *mpnat.Nat {
		return func() *mpnat.Nat {
			// 10 words = 40 bytes each.
			ws := make([]uint32, 10)
			for i := range ws {
				ws[i] = uint32(k + 1)
			}
			return mpnat.NewFromWords(ws)
		}
	}
	c := NewCache(100) // fits 2 of the 40-byte values
	a := c.Get(0, build(0))
	if got := c.Get(0, build(0)); got != a {
		t.Fatal("hit should return the cached pointer")
	}
	c.Get(1, build(1))
	c.Get(2, build(2)) // evicts key 0 (LRU)
	st := c.Stats()
	if st.Evictions != 1 || st.Entries != 2 {
		t.Fatalf("stats after eviction: %+v", st)
	}
	if got := c.Get(0, build(0)); got == a {
		t.Fatal("evicted key rebuilt: must be a fresh value")
	}
	if st := c.Stats(); st.Hits != 1 || st.Misses != 4 {
		t.Fatalf("hit/miss accounting: %+v", st)
	}

	// A value bigger than the whole budget is returned but not retained.
	tiny := NewCache(8)
	tiny.Get(7, build(7))
	if st := tiny.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("oversized value retained: %+v", st)
	}

	// Unlimited budget never evicts.
	unl := NewCache(0)
	for k := 0; k < 50; k++ {
		unl.Get(k, build(k))
	}
	if st := unl.Stats(); st.Evictions != 0 || st.Entries != 50 {
		t.Fatalf("unlimited cache: %+v", st)
	}
}

func TestCacheConcurrent(t *testing.T) {
	c := NewCache(1 << 20)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := i % 17
				v := c.Get(k, func() *mpnat.Nat { return mpnat.New(uint64(k + 1)) })
				if v.Uint64() != uint64(k+1) {
					t.Errorf("key %d: got %d", k, v.Uint64())
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestBuildNatMatchesBig pins the satellite fix of this PR: the big.Int
// and mpnat tree builds now share one buildLevels loop, so every node of
// every level — not just the root — must be the same integer, for even
// and odd leaf counts, serial and parallel, with the observability
// hooks firing identically.
func TestBuildNatMatchesBig(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	for _, m := range []int{1, 2, 3, 5, 9, 16, 33, 64} {
		for _, workers := range []int{1, 4} {
			big_ := make([]*big.Int, m)
			nat := make([]*mpnat.Nat, m)
			for i := range big_ {
				big_[i] = randBig(r, 128)
				nat[i] = mpnat.FromBig(big_[i])
			}
			var bigNodes, natNodes int64
			var mu sync.Mutex
			count := func(n *int64) func() {
				return func() { mu.Lock(); *n++; mu.Unlock() }
			}
			bt, err := Build(context.Background(), big_, BuildOptions{Workers: workers, OnNode: count(&bigNodes)})
			if err != nil {
				t.Fatal(err)
			}
			nt, err := BuildNat(context.Background(), nat, BuildOptions{Workers: workers, OnNode: count(&natNodes)})
			if err != nil {
				t.Fatal(err)
			}
			if len(bt.Levels) != len(nt.Levels) {
				t.Fatalf("m=%d: %d big levels vs %d nat levels", m, len(bt.Levels), len(nt.Levels))
			}
			for l := range bt.Levels {
				if len(bt.Levels[l]) != len(nt.Levels[l]) {
					t.Fatalf("m=%d level %d: width %d vs %d", m, l, len(bt.Levels[l]), len(nt.Levels[l]))
				}
				for i := range bt.Levels[l] {
					if nt.Levels[l][i].ToBig().Cmp(bt.Levels[l][i]) != 0 {
						t.Fatalf("m=%d workers=%d: node (%d,%d) differs across backends", m, workers, l, i)
					}
				}
			}
			if bigNodes != natNodes || bigNodes != Mults(m) {
				t.Fatalf("m=%d: OnNode fired %d (big) / %d (nat), want %d", m, bigNodes, natNodes, Mults(m))
			}
		}
	}
}

// TestBuildNatLeavesUntouched: level 0 aliases the caller's leaves and
// interior nodes never alias them, so a tree build must leave every
// input word-for-word intact (the hybrid engine shares leaves across
// cached tiles).
func TestBuildNatLeavesUntouched(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	leaves := make([]*mpnat.Nat, 7)
	snapshots := make([]*mpnat.Nat, 7)
	for i := range leaves {
		leaves[i] = mpnat.FromBig(randBig(r, 96))
		snapshots[i] = leaves[i].Clone()
	}
	tree, err := BuildNat(context.Background(), leaves, BuildOptions{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := range leaves {
		if leaves[i].Cmp(snapshots[i]) != 0 {
			t.Fatalf("leaf %d mutated by BuildNat", i)
		}
		if tree.Levels[0][i] != leaves[i] {
			t.Fatalf("level 0 entry %d does not alias the input leaf", i)
		}
	}
	for l := 1; l < len(tree.Levels); l++ {
		for _, node := range tree.Levels[l] {
			for _, leaf := range leaves {
				if node == leaf && l == len(tree.Levels)-1 {
					t.Fatalf("root aliases a leaf")
				}
			}
		}
	}
}

// TestBuildNatCanceled mirrors TestBuildCanceled on the Nat path.
func TestBuildNatCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	leaves := []*mpnat.Nat{mpnat.New(3), mpnat.New(5)}
	if _, err := BuildNat(ctx, leaves, BuildOptions{}); err == nil {
		t.Fatal("expected context error")
	}
}

// TestTreeBackendString keeps the log/test labels stable.
func TestTreeBackendString(t *testing.T) {
	if BackendBig.String() != "big" || BackendNat.String() != "nat" {
		t.Fatalf("backend names drifted: %s, %s", BackendBig, BackendNat)
	}
	if TreeBackend(9).String() != "TreeBackend(9)" {
		t.Fatalf("unknown backend label: %s", TreeBackend(9))
	}
}

// TestKeyedCache exercises the generic-key cache the registry's node
// store uses: struct keys, Put insertion, Drop invalidation, and the
// LRU budget discipline shared with the int-keyed tile cache.
func TestKeyedCache(t *testing.T) {
	type nodeKey struct{ level, index int }
	val := func(words int) *mpnat.Nat { // words 32-bit words of payload
		ws := make([]uint32, words)
		for i := range ws {
			ws[i] = uint32(i + 1)
		}
		return mpnat.NewFromWords(ws)
	}
	c := NewKeyedCache[nodeKey](40) // room for two 4-word (16-byte) values plus change
	builds := 0
	get := func(k nodeKey) *mpnat.Nat {
		return c.Get(k, func() *mpnat.Nat { builds++; return val(4) })
	}
	a, b := nodeKey{1, 0}, nodeKey{1, 1}
	get(a)
	get(a)
	if builds != 1 {
		t.Fatalf("builds = %d after two Gets of one key, want 1", builds)
	}
	get(b)
	get(nodeKey{2, 0}) // exceeds 40 bytes: evicts the LRU entry (a)
	st := c.Stats()
	if st.Evictions != 1 || st.Entries != 2 {
		t.Fatalf("stats after eviction: %+v, want 1 eviction, 2 entries", st)
	}
	get(a) // must rebuild
	if builds != 4 {
		t.Fatalf("builds = %d, want 4 (a rebuilt after eviction)", builds)
	}

	// Put retains the value; a second Put of the same key keeps the first.
	first := c.Put(nodeKey{3, 3}, val(2))
	second := c.Put(nodeKey{3, 3}, val(2))
	if first != second {
		t.Fatal("second Put did not return the retained value")
	}
	// Drop invalidates: the next Get rebuilds.
	c.Drop(nodeKey{3, 3})
	rebuilt := c.Get(nodeKey{3, 3}, func() *mpnat.Nat { return val(3) })
	if rebuilt.Len() != 3 {
		t.Fatal("Drop did not invalidate the entry")
	}
	// A value larger than the whole budget is returned but never retained.
	huge := c.Put(nodeKey{9, 9}, val(100))
	if huge == nil || c.Stats().Bytes > 40 {
		t.Fatalf("oversized value retained: %+v", c.Stats())
	}
}
