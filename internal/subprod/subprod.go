// Package subprod holds the subproduct machinery shared by the two
// product-based attack engines: the level-parallel product tree that
// batch GCD (internal/batchgcd) builds over the whole corpus, and the
// per-tile subproducts that the hybrid product-filter engine
// (internal/bulk) caches under a memory budget.
//
// Both engines reduce the same primitive — multiply a set of moduli into
// one integer so a single division+GCD can interrogate all of them at
// once — so the construction lives here and is configured by the caller:
// big.Int trees with per-level hooks for batch GCD's observability,
// plain mpnat products for the hybrid engine's word-level filter path.
package subprod

import (
	"context"
	"fmt"
	"math/big"

	"bulkgcd/internal/engine"
	"bulkgcd/internal/mpnat"
	"bulkgcd/internal/obs"
)

// ParallelEach runs fn(i, worker) for every i in [0, n) on up to workers
// goroutines over the shared work-stealing scheduler (engine.Run): the
// index space is statically partitioned across per-worker deques and
// rebalanced by steal-half, so a run of slow items (one huge tree node,
// one dense tile) cannot strand the rest of the pool the way a static
// split would. With one worker (or fewer) or one item it runs inline on
// the caller's goroutine. Workers check ctx at item granularity and
// stop cooperatively; the ctx error (if any) is returned once all
// workers have drained.
func ParallelEach(ctx context.Context, n, workers int, fn func(i, worker int)) error {
	if workers < 1 {
		workers = 1
	}
	return engine.Run(ctx, n, engine.PoolOptions{Workers: workers}, fn)
}

// Tree holds the levels of a product tree: level 0 is the input slice,
// the last level is the single full product. An odd node at the end of a
// level is promoted unchanged, so parent i covers children 2i and 2i+1.
type Tree struct {
	Levels [][]*big.Int
}

// Root returns the product of all leaves.
func (t *Tree) Root() *big.Int {
	top := t.Levels[len(t.Levels)-1]
	return top[0]
}

// NatTree is the mpnat twin of Tree: the same level layout and
// odd-node promotion rule, with nodes held in the packed 32-bit word
// representation the kernels and the hybrid filter consume directly.
type NatTree struct {
	Levels [][]*mpnat.Nat
}

// Root returns the product of all leaves.
func (t *NatTree) Root() *mpnat.Nat {
	top := t.Levels[len(t.Levels)-1]
	return top[0]
}

// TreeBackend selects the arithmetic representation a product (and, in
// batch GCD, remainder) tree is built on. Both backends produce the
// same mathematical nodes — every differential suite asserts findings
// are byte-identical across them — so the choice is purely about
// performance shape: BackendBig rides math/big's assembly inner loops
// and recursive division, BackendNat stays in the packed word layout
// the subquadratic mpnat multiplier and the GCD kernels share, skipping
// the conversion at the tree/kernel boundary.
type TreeBackend int

const (
	// BackendBig builds tree nodes as *big.Int (the default).
	BackendBig TreeBackend = iota
	// BackendNat builds tree nodes as *mpnat.Nat with per-worker
	// MulScratch arenas.
	BackendNat
)

// String names the backend for logs and test labels.
func (b TreeBackend) String() string {
	switch b {
	case BackendBig:
		return "big"
	case BackendNat:
		return "nat"
	default:
		return fmt.Sprintf("TreeBackend(%d)", int(b))
	}
}

// BuildOptions configures Build. The zero value builds serially with no
// hooks.
type BuildOptions struct {
	// Workers is the fan-out width within each level (the level's
	// multiplications are independent); <= 1 runs inline.
	Workers int
	// OnLevel, when non-nil, wraps each level's computation: level is the
	// 1-based index of the level being built, nodes the number of
	// multiplications in it. The hook must invoke run exactly once and
	// propagate its error (batch GCD threads its tracing/timing phase
	// wrapper through here).
	OnLevel func(level, nodes int, run func() error) error
	// OnNode, when non-nil, is called once per completed multiplication
	// (possibly concurrently from several workers).
	OnNode func()
	// Metrics, when non-nil, instruments the per-level scheduler pools
	// (engine_steals_total and friends).
	Metrics *obs.Registry
}

// Mults returns the number of multiplications a tree over m leaves
// performs.
func Mults(m int) int64 {
	var total int64
	for l := m; l > 1; l = (l + 1) / 2 {
		total += int64(l / 2)
	}
	return total
}

// buildLevels is the one tree-construction loop both backends share:
// pair-and-promote bottom-up, level-parallel via ParallelEach, with the
// OnLevel/OnNode observability hooks threaded through identically. The
// backend enters only as the mul callback (worker is the ParallelEach
// worker index, for per-worker scratch arenas), so the big.Int and
// mpnat trees cannot drift apart structurally — the historical bug this
// replaces was exactly two hand-rolled copies of this loop disagreeing
// on representation details.
func buildLevels[T any](ctx context.Context, leaves []T, opt BuildOptions, mul func(worker int, x, y T) T) ([][]T, error) {
	if len(leaves) == 0 {
		return nil, fmt.Errorf("subprod: empty input")
	}
	level := make([]T, len(leaves))
	copy(level, leaves)
	levels := [][]T{level}
	for len(level) > 1 {
		pairs := len(level) / 2
		next := make([]T, (len(level)+1)/2)
		src := level
		workers := opt.Workers
		if workers < 1 {
			workers = 1
		}
		run := func() error {
			return engine.Run(ctx, pairs, engine.PoolOptions{Workers: workers, Metrics: opt.Metrics}, func(i, w int) {
				next[i] = mul(w, src[2*i], src[2*i+1])
				if opt.OnNode != nil {
					opt.OnNode()
				}
			})
		}
		var err error
		if opt.OnLevel != nil {
			err = opt.OnLevel(len(levels), pairs, run)
		} else {
			err = run()
		}
		if err != nil {
			return nil, err
		}
		if len(level)%2 == 1 {
			next[pairs] = level[len(level)-1] // odd node promotes unchanged
		}
		levels = append(levels, next)
		level = next
	}
	return levels, nil
}

// Build constructs the big.Int product tree of the leaves bottom-up.
// The leaf slice is aliased as level 0, never modified.
func Build(ctx context.Context, leaves []*big.Int, opt BuildOptions) (*Tree, error) {
	levels, err := buildLevels(ctx, leaves, opt, func(_ int, x, y *big.Int) *big.Int {
		return new(big.Int).Mul(x, y)
	})
	if err != nil {
		return nil, err
	}
	return &Tree{Levels: levels}, nil
}

// BuildNat constructs the mpnat product tree of the leaves bottom-up on
// the same pair-and-promote path as Build, multiplying through the
// subquadratic mpnat dispatch with one MulScratch arena per worker. The
// leaf slice is aliased as level 0, never modified; every interior node
// is freshly allocated and never aliases a leaf.
func BuildNat(ctx context.Context, leaves []*mpnat.Nat, opt BuildOptions) (*NatTree, error) {
	workers := opt.Workers
	if workers < 1 {
		workers = 1
	}
	scratch := make([]*mpnat.MulScratch, workers)
	for i := range scratch {
		scratch[i] = new(mpnat.MulScratch)
	}
	levels, err := buildLevels(ctx, leaves, opt, func(w int, x, y *mpnat.Nat) *mpnat.Nat {
		return scratch[w].Mul(new(mpnat.Nat), x, y)
	})
	if err != nil {
		return nil, err
	}
	return &NatTree{Levels: levels}, nil
}

// ProductNat multiplies the moduli into a single Nat by balanced
// pairwise reduction on the same buildLevels path as BuildNat (balanced
// operands keep the subquadratic multiplier in its best regime). An
// empty slice yields 1. The inputs are never modified and the result
// never aliases them, so cached products are safe to share read-only
// across workers.
func ProductNat(ms []*mpnat.Nat) *mpnat.Nat {
	switch len(ms) {
	case 0:
		return mpnat.New(1)
	case 1:
		return ms[0].Clone()
	}
	t, err := BuildNat(context.Background(), ms, BuildOptions{})
	if err != nil {
		// Unreachable: the input is non-empty and a background context
		// with no hooks cannot fail.
		panic("subprod: ProductNat: " + err.Error())
	}
	return t.Root()
}

// NatBytes returns the in-memory size the cache accounts for a Nat.
func NatBytes(n *mpnat.Nat) int64 {
	return int64(n.Len()) * 4
}
