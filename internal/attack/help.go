package attack

import "bulkgcd/internal/obs"

// Metric documentation, registered from init for `# HELP` exposition and
// the doc-parity test.
func init() {
	obs.RegisterHelp("attack_broken_keys_total", "moduli factored by the scan")
	obs.RegisterHelp("attack_duplicate_pairs_total", "pairs of identical moduli (compromised, not factored)")
}
