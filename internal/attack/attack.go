// Package attack is the weak-RSA-key attack pipeline: it runs the bulk
// all-pairs GCD over a corpus of moduli, interprets every non-trivial GCD,
// and reconstructs the broken private keys - the complete workflow the
// paper motivates ("we may break weak RSA keys by computing the GCDs of
// all pairs of two moduli in the Web").
package attack

import (
	"context"
	"fmt"
	"math/big"
	"sort"
	"time"

	"bulkgcd/internal/batchgcd"
	"bulkgcd/internal/bulk"
	"bulkgcd/internal/checkpoint"
	"bulkgcd/internal/engine"
	"bulkgcd/internal/gcd"
	"bulkgcd/internal/mpnat"
	"bulkgcd/internal/rsakey"
	"bulkgcd/internal/subprod"
)

// Options configures an attack run. The cross-engine surface (Workers,
// Progress, Metrics, Trace, Checkpoint/Resume, Fault) is the embedded
// engine.Config; Progress counts pairs for the pairs and hybrid engines
// and tree operations for batch GCD. Checkpoint/Resume require the
// pairs or hybrid engine.
type Options struct {
	engine.Config

	// Algorithm selects the GCD kernel; the default (zero value requires
	// explicit choice, so Run defaults to Approximate when unset via
	// DefaultOptions) is the paper's Approximate Euclidean.
	Algorithm gcd.Algorithm

	// Early enables s/2 early termination (on by default in
	// DefaultOptions; it is safe for RSA moduli and halves the work).
	Early bool

	// GroupSize is passed to the pairs engine only (the paper's r).
	GroupSize int

	// Exponent is the public exponent for private-key recovery.
	Exponent uint64

	// Engine selects the attack engine: engine.Pairs (default) is the
	// paper's all-pairs computation, engine.Batch the Bernstein
	// product-tree baseline (Algorithm, Early and GroupSize are ignored
	// there), engine.Hybrid the tiled product-filter engine.
	Engine engine.Kind

	// BatchGCD is the pre-Engine selector.
	//
	// Deprecated: set Engine to engine.Batch instead. When true it
	// overrides Engine.
	BatchGCD bool

	// Quarantine makes the pairs and hybrid engines skip zero/even moduli
	// and report them per-index in Report.Quarantined instead of failing
	// the whole run. Ignored in batch mode (the product tree has no way
	// to excise an input without changing the fingerprint of the run).
	Quarantine bool

	// TileSize is the hybrid engine's tile width; 0 means 64. Findings
	// are identical at every value.
	TileSize int

	// SubprodBudget caps the hybrid engine's cached subproduct bytes
	// (LRU); 0 means unlimited.
	SubprodBudget int64

	// Kernel selects the per-pair GCD executor of the pairs and hybrid
	// engines (the batch engine ignores it): engine.KernelScalar (the
	// default) or engine.KernelLanes, the lane-batched lockstep kernel,
	// which requires Algorithm == Approximate. Findings are identical.
	Kernel engine.KernelKind

	// LaneWidth is the lanes kernel's lane count; 0 means the default.
	LaneWidth int

	// Tree selects the batch engine's product/remainder tree arithmetic
	// (the pairs and hybrid engines ignore it): subprod.BackendBig (the
	// default) or subprod.BackendNat, the packed-word subquadratic mpnat
	// path. Findings are identical across backends.
	Tree subprod.TreeBackend
}

// EngineKind resolves the selected engine, honoring the deprecated
// BatchGCD flag.
func (o Options) EngineKind() engine.Kind {
	if o.BatchGCD {
		return engine.Batch
	}
	return o.Engine
}

// bulkConfig maps the Options onto the bulk engines' configuration.
func (o Options) bulkConfig() bulk.Config {
	return bulk.Config{
		Config:        o.Config,
		Algorithm:     o.Algorithm,
		Early:         o.Early,
		GroupSize:     o.GroupSize,
		Quarantine:    o.Quarantine,
		TileSize:      o.TileSize,
		SubprodBudget: o.SubprodBudget,
		Kernel:        o.Kernel,
		LaneWidth:     o.LaneWidth,
	}
}

// BulkConfig is the exported form of bulkConfig for callers that drive
// the bulk engines directly — the fleet worker runs bulk.CellRunner on
// attack Options and must map them exactly as RunContext would.
func (o Options) BulkConfig() bulk.Config { return o.bulkConfig() }

// Interpret turns a raw bulk result into the attack report exactly as
// RunContext does after the engine returns — duplicates detected, moduli
// factored, private keys recovered. The fleet coordinator uses it to
// interpret a Result assembled from journal records instead of computed
// in-process.
func Interpret(moduli []*mpnat.Nat, res *bulk.Result, opt Options) (*Report, error) {
	if opt.Exponent == 0 {
		opt.Exponent = rsakey.DefaultExponent
	}
	return interpretFactors(moduli, res, opt)
}

// DefaultOptions returns the recommended configuration: Approximate
// Euclidean with early termination and e = 65537.
func DefaultOptions() Options {
	return Options{
		Algorithm: gcd.Approximate,
		Early:     true,
		Exponent:  rsakey.DefaultExponent,
	}
}

// BrokenKey is one factored modulus.
type BrokenKey struct {
	// Index is the modulus position in the input corpus.
	Index int
	// N is the modulus.
	N *big.Int
	// P and Q are the recovered factors, P <= Q.
	P, Q *big.Int
	// D is the recovered private exponent, nil when the factors are not
	// both prime (possible only with synthetic pseudo-moduli) or e is not
	// invertible.
	D *big.Int
	// FoundWith is the index of the other modulus of the revealing pair,
	// or -1 when the batch-GCD engine found the factor (it has no notion
	// of a revealing pair).
	FoundWith int
}

// Report is the attack outcome.
type Report struct {
	// Broken lists factored keys ordered by Index (one entry per modulus,
	// even when several pairs reveal it).
	Broken []BrokenKey
	// Duplicates lists pairs of identical moduli (gcd = modulus), which
	// are compromised but not factored by the GCD attack.
	Duplicates [][2]int
	// Bulk carries the underlying bulk-run measurements.
	Bulk *bulk.Result
	// Moduli is the corpus size.
	Moduli int
	// Canceled reports that the run was interrupted: Broken/Duplicates
	// cover only the completed work units.
	Canceled bool
	// BadPairs lists pair computations quarantined after a worker panic.
	BadPairs []bulk.BadPair
	// Quarantined lists input moduli skipped under Options.Quarantine.
	Quarantined []bulk.Quarantined
}

// Run executes the attack over the corpus.
func Run(moduli []*mpnat.Nat, opt Options) (*Report, error) {
	return RunContext(context.Background(), moduli, opt)
}

// RunContext is Run with cooperative cancellation: on cancel the report
// covers the completed work units and Report.Canceled is set.
func RunContext(ctx context.Context, moduli []*mpnat.Nat, opt Options) (*Report, error) {
	if opt.Exponent == 0 {
		opt.Exponent = rsakey.DefaultExponent
	}
	var res *bulk.Result
	var err error
	switch opt.EngineKind() {
	case engine.Batch:
		return runBatch(ctx, moduli, opt)
	case engine.Hybrid:
		res, err = bulk.HybridContext(ctx, moduli, opt.bulkConfig())
	case engine.Pairs:
		res, err = bulk.AllPairsContext(ctx, moduli, opt.bulkConfig())
	default:
		return nil, fmt.Errorf("attack: unknown engine %v", opt.EngineKind())
	}
	if err != nil {
		return nil, err
	}
	return interpretFactors(moduli, res, opt)
}

// JournalHeader returns the checkpoint header an all-pairs attack over
// this corpus writes, for verifying a journal before resuming.
func JournalHeader(moduli []*mpnat.Nat, opt Options) (checkpoint.Header, error) {
	switch opt.EngineKind() {
	case engine.Batch:
		return checkpoint.Header{}, fmt.Errorf("attack: checkpointing requires the pairs or hybrid engine")
	case engine.Hybrid:
		return bulk.HybridJournalHeader(moduli, opt.bulkConfig())
	default:
		return bulk.JournalHeader(moduli, opt.bulkConfig())
	}
}

// RunIncremental attacks only the pairs involving a new modulus: the
// cross product newModuli x old plus the new x new triangle, for rolling
// scans over growing corpora. Broken-key indices are global, with old
// moduli at 0..len(old)-1 and the new ones following.
//
// Deprecated: the registry (internal/registry, bulkgcd.OpenRegistry)
// subsumes rolling scans: it persists the corpus as a product-tree
// index, so each arriving key costs one O(log N) tree descent instead
// of a cross product against the whole history, and verdicts survive
// kill+restart. RunIncremental remains as a thin shim for the one-shot
// `rsafactor -prev` flow and delegates to the same pair interpretation
// as Run.
func RunIncremental(old, newModuli []*mpnat.Nat, opt Options) (*Report, error) {
	return RunIncrementalContext(context.Background(), old, newModuli, opt)
}

// RunIncrementalContext is RunIncremental with cooperative cancellation.
//
// Deprecated: see [RunIncremental].
func RunIncrementalContext(ctx context.Context, old, newModuli []*mpnat.Nat, opt Options) (*Report, error) {
	if opt.Exponent == 0 {
		opt.Exponent = rsakey.DefaultExponent
	}
	if opt.EngineKind() != engine.Pairs {
		return nil, fmt.Errorf("attack: incremental mode requires the pairs engine")
	}
	res, err := bulk.IncrementalContext(ctx, old, newModuli, opt.bulkConfig())
	if err != nil {
		return nil, err
	}
	combined := make([]*mpnat.Nat, 0, len(old)+len(newModuli))
	combined = append(combined, old...)
	combined = append(combined, newModuli...)
	return interpretFactors(combined, res, opt)
}

// interpretFactors turns raw pair factors into the attack report:
// duplicates detected, moduli factored, private keys recovered.
func interpretFactors(moduli []*mpnat.Nat, res *bulk.Result, opt Options) (*Report, error) {
	rep := &Report{
		Bulk:        res,
		Moduli:      len(moduli),
		Canceled:    res.Canceled,
		BadPairs:    res.BadPairs,
		Quarantined: res.Quarantined,
	}
	broken := map[int]BrokenKey{}
	for _, f := range res.Factors {
		g := f.P.ToBig()
		nI := moduli[f.I].ToBig()
		nJ := moduli[f.J].ToBig()
		if g.Cmp(nI) == 0 && g.Cmp(nJ) == 0 {
			rep.Duplicates = append(rep.Duplicates, [2]int{f.I, f.J})
			continue
		}
		for _, side := range []struct {
			idx   int
			n     *big.Int
			other int
		}{{f.I, nI, f.J}, {f.J, nJ, f.I}} {
			if _, done := broken[side.idx]; done {
				continue
			}
			if g.Cmp(side.n) >= 0 {
				continue // g equals this modulus; it factors only the other side
			}
			bk, err := factorKey(side.idx, side.n, g, opt.Exponent, side.other)
			if err != nil {
				return nil, fmt.Errorf("attack: modulus %d: %w", side.idx, err)
			}
			broken[side.idx] = bk
		}
	}
	for _, bk := range broken {
		rep.Broken = append(rep.Broken, bk)
	}
	sort.Slice(rep.Broken, func(i, j int) bool { return rep.Broken[i].Index < rep.Broken[j].Index })
	recordOutcome(opt, rep)
	return rep, nil
}

// recordOutcome folds the attack-level verdict into the metrics
// registry (nil-safe: a disabled registry hands out nil counters).
func recordOutcome(opt Options, rep *Report) {
	opt.Metrics.Counter("attack_broken_keys_total").Add(int64(len(rep.Broken)))
	opt.Metrics.Counter("attack_duplicate_pairs_total").Add(int64(len(rep.Duplicates)))
}

// runBatch is the batch-GCD (product/remainder tree) variant of the
// attack: same Report, different engine. Findings whose gcd equals the
// whole modulus resolve to duplicates; proper divisors factor the key.
func runBatch(ctx context.Context, moduli []*mpnat.Nat, opt Options) (*Report, error) {
	if opt.Checkpoint != nil || opt.Resume != nil {
		return nil, fmt.Errorf("attack: checkpointing requires the pairs or hybrid engine")
	}
	if len(moduli) < 2 {
		return nil, fmt.Errorf("attack: need at least 2 moduli, got %d", len(moduli))
	}
	big_ := make([]*big.Int, len(moduli))
	for i, m := range moduli {
		if m == nil || m.IsZero() {
			return nil, fmt.Errorf("attack: modulus %d is zero", i)
		}
		big_[i] = m.ToBig()
	}
	cfg := batchgcd.Config{Config: opt.Config, Tree: opt.Tree}
	start := time.Now()
	findings, err := batchgcd.RunContext(ctx, big_, cfg)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		Moduli: len(moduli),
		Bulk:   &bulk.Result{Elapsed: time.Since(start), Workers: cfg.EffectiveWorkers()},
	}
	// A finding records only its smallest duplicate partner, so regroup
	// identical moduli into classes and emit every pair within a class,
	// matching what the all-pairs engine reports for the same corpus.
	dupClass := map[string][]int{}
	for _, f := range findings {
		n := big_[f.Index]
		if f.Factor.Cmp(n) < 0 {
			bk, err := factorKey(f.Index, n, f.Factor, opt.Exponent, -1)
			if err != nil {
				return nil, fmt.Errorf("attack: modulus %d: %w", f.Index, err)
			}
			rep.Broken = append(rep.Broken, bk)
		}
		if f.DuplicateOf >= 0 {
			key := n.Text(16)
			dupClass[key] = append(dupClass[key], f.Index)
		}
	}
	for _, class := range dupClass {
		for a := 0; a < len(class); a++ {
			for b := a + 1; b < len(class); b++ {
				rep.Duplicates = append(rep.Duplicates, [2]int{class[a], class[b]})
			}
		}
	}
	sort.Slice(rep.Broken, func(i, j int) bool { return rep.Broken[i].Index < rep.Broken[j].Index })
	sort.Slice(rep.Duplicates, func(i, j int) bool {
		if rep.Duplicates[i][0] != rep.Duplicates[j][0] {
			return rep.Duplicates[i][0] < rep.Duplicates[j][0]
		}
		return rep.Duplicates[i][1] < rep.Duplicates[j][1]
	})
	recordOutcome(opt, rep)
	return rep, nil
}

// factorKey turns a known non-trivial divisor into a BrokenKey, recovering
// the private exponent when both factors are prime.
func factorKey(idx int, n, g *big.Int, e uint64, other int) (BrokenKey, error) {
	q, rem := new(big.Int).QuoRem(n, g, new(big.Int))
	if rem.Sign() != 0 {
		return BrokenKey{}, fmt.Errorf("gcd %v does not divide modulus", g)
	}
	p := new(big.Int).Set(g)
	if p.Cmp(q) > 0 {
		p, q = q, p
	}
	bk := BrokenKey{Index: idx, N: n, P: p, Q: q, FoundWith: other}
	if p.ProbablyPrime(20) && q.ProbablyPrime(20) {
		if d, _, err := rsakey.RecoverPrivate(n, p, e); err == nil {
			bk.D = d
		}
	}
	return bk, nil
}
