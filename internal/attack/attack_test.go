package attack

import (
	"math/big"
	"testing"

	"bulkgcd/internal/gcd"
	"bulkgcd/internal/mpnat"
	"bulkgcd/internal/rsakey"
)

func weakCorpus(t testing.TB, count, bits, weak int, seed int64) *rsakey.Corpus {
	t.Helper()
	c, err := rsakey.GenerateCorpus(rsakey.CorpusSpec{
		Count: count, Bits: bits, WeakPairs: weak, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestAttackBreaksPlantedKeys is the headline end-to-end property: every
// modulus participating in a planted weak pair is factored, the factors
// are the true primes, and the recovered private exponents decrypt.
func TestAttackBreaksPlantedKeys(t *testing.T) {
	c := weakCorpus(t, 20, 128, 3, 42)
	rep, err := Run(c.Moduli(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Moduli != 20 {
		t.Fatalf("Moduli = %d", rep.Moduli)
	}
	wantBroken := map[int]bool{}
	for _, pp := range c.Planted {
		wantBroken[pp.I] = true
		wantBroken[pp.J] = true
	}
	if len(rep.Broken) != len(wantBroken) {
		t.Fatalf("broke %d keys, want %d", len(rep.Broken), len(wantBroken))
	}
	for _, bk := range rep.Broken {
		if !wantBroken[bk.Index] {
			t.Fatalf("unexpected broken key %d", bk.Index)
		}
		key := c.Keys[bk.Index]
		pq := map[string]bool{key.P.String(): true, key.Q.String(): true}
		if !pq[bk.P.String()] || !pq[bk.Q.String()] {
			t.Fatalf("key %d: wrong factors", bk.Index)
		}
		if bk.D == nil {
			t.Fatalf("key %d: private exponent not recovered", bk.Index)
		}
		if bk.D.Cmp(key.D) != 0 {
			t.Fatalf("key %d: wrong private exponent", bk.Index)
		}
		// Prove the break: decrypt a fresh ciphertext.
		m := big.NewInt(31337)
		ct := rsakey.Encrypt(bk.N, rsakey.DefaultExponent, m)
		if rsakey.Decrypt(bk.N, bk.D, ct).Cmp(m) != 0 {
			t.Fatalf("key %d: recovered key does not decrypt", bk.Index)
		}
	}
	if len(rep.Duplicates) != 0 {
		t.Fatalf("unexpected duplicates: %v", rep.Duplicates)
	}
}

// TestAttackAllAlgorithmsAgree: the report must be identical whichever GCD
// algorithm drives it.
func TestAttackAllAlgorithmsAgree(t *testing.T) {
	c := weakCorpus(t, 14, 128, 2, 43)
	var base *Report
	for _, alg := range gcd.Algorithms {
		opt := DefaultOptions()
		opt.Algorithm = alg
		rep, err := Run(c.Moduli(), opt)
		if err != nil {
			t.Fatal(err)
		}
		if base == nil {
			base = rep
			continue
		}
		if len(rep.Broken) != len(base.Broken) {
			t.Fatalf("%v: %d broken, baseline %d", alg, len(rep.Broken), len(base.Broken))
		}
		for i := range rep.Broken {
			if rep.Broken[i].Index != base.Broken[i].Index ||
				rep.Broken[i].P.Cmp(base.Broken[i].P) != 0 {
				t.Fatalf("%v: broken key %d differs", alg, i)
			}
		}
	}
}

// TestAttackDetectsDuplicates: identical moduli are reported as duplicate,
// not factored.
func TestAttackDetectsDuplicates(t *testing.T) {
	c := weakCorpus(t, 6, 128, 0, 44)
	moduli := c.Moduli()
	moduli = append(moduli, moduli[1])
	rep, err := Run(moduli, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Broken) != 0 {
		t.Fatalf("duplicates wrongly factored: %+v", rep.Broken)
	}
	if len(rep.Duplicates) != 1 || rep.Duplicates[0] != [2]int{1, 6} {
		t.Fatalf("duplicates = %v, want [[1 6]]", rep.Duplicates)
	}
}

// TestAttackSharedPrimeAcrossThreeKeys: a prime shared by three moduli
// breaks all three (each discovered through some pair).
func TestAttackSharedPrimeAcrossThreeKeys(t *testing.T) {
	c := weakCorpus(t, 4, 128, 0, 45)
	p := c.Keys[0].P // reuse key 0's prime in two extra keys
	var moduli []*mpnat.Nat
	moduli = append(moduli, c.Moduli()...)
	for seed := int64(100); seed < 102; seed++ {
		k2, err := rsakey.GenerateCorpus(rsakey.CorpusSpec{Count: 1, Bits: 128, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		q := k2.Keys[0].P
		moduli = append(moduli, mpnat.FromBig(new(big.Int).Mul(p, q)))
	}
	rep, err := Run(moduli, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	got := map[int]bool{}
	for _, bk := range rep.Broken {
		got[bk.Index] = true
		if bk.P.Cmp(p) != 0 && bk.Q.Cmp(p) != 0 {
			t.Fatalf("key %d factored without the shared prime", bk.Index)
		}
	}
	for _, idx := range []int{0, 4, 5} {
		if !got[idx] {
			t.Fatalf("key %d not broken (broken: %v)", idx, got)
		}
	}
}

// TestAttackCleanCorpus: nothing is broken when nothing is weak.
func TestAttackCleanCorpus(t *testing.T) {
	c := weakCorpus(t, 10, 128, 0, 46)
	rep, err := Run(c.Moduli(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Broken) != 0 || len(rep.Duplicates) != 0 {
		t.Fatalf("clean corpus produced findings: %+v", rep)
	}
	if rep.Bulk.Pairs != 45 {
		t.Fatalf("pairs = %d, want 45", rep.Bulk.Pairs)
	}
}

// TestAttackDefaultExponentFallback: a zero exponent falls back to 65537.
func TestAttackDefaultExponentFallback(t *testing.T) {
	c := weakCorpus(t, 6, 128, 1, 47)
	opt := DefaultOptions()
	opt.Exponent = 0
	rep, err := Run(c.Moduli(), opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, bk := range rep.Broken {
		if bk.D == nil {
			t.Fatal("exponent fallback failed to recover d")
		}
	}
}

func TestAttackErrors(t *testing.T) {
	if _, err := Run([]*mpnat.Nat{mpnat.New(15)}, DefaultOptions()); err == nil {
		t.Error("single-modulus corpus accepted")
	}
}

// TestAttackBatchMode: the batch-GCD engine produces the same broken-key
// set as the all-pairs engine.
func TestAttackBatchMode(t *testing.T) {
	c := weakCorpus(t, 18, 128, 3, 48)
	pairwise, err := Run(c.Moduli(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions()
	opt.BatchGCD = true
	batch, err := Run(c.Moduli(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch.Broken) != len(pairwise.Broken) {
		t.Fatalf("batch broke %d keys, all-pairs %d", len(batch.Broken), len(pairwise.Broken))
	}
	for i := range batch.Broken {
		b, p := batch.Broken[i], pairwise.Broken[i]
		if b.Index != p.Index || b.P.Cmp(p.P) != 0 || b.Q.Cmp(p.Q) != 0 {
			t.Fatalf("broken key %d differs between engines", i)
		}
		if b.D == nil || b.D.Cmp(p.D) != 0 {
			t.Fatalf("broken key %d: private exponents differ", i)
		}
		if b.FoundWith != -1 {
			t.Fatalf("batch finding has a revealing pair index %d", b.FoundWith)
		}
	}
}

// TestAttackBatchDuplicates: batch mode reports duplicates like the
// pairwise mode does.
func TestAttackBatchDuplicates(t *testing.T) {
	c := weakCorpus(t, 6, 128, 0, 49)
	moduli := append(c.Moduli(), c.Moduli()[3])
	opt := DefaultOptions()
	opt.BatchGCD = true
	rep, err := Run(moduli, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Broken) != 0 {
		t.Fatalf("duplicates wrongly factored: %+v", rep.Broken)
	}
	if len(rep.Duplicates) != 1 || rep.Duplicates[0] != [2]int{3, 6} {
		t.Fatalf("duplicates = %v, want [[3 6]]", rep.Duplicates)
	}
}

// TestAttackBatchValidation covers the error paths of batch mode.
func TestAttackBatchValidation(t *testing.T) {
	opt := DefaultOptions()
	opt.BatchGCD = true
	if _, err := Run([]*mpnat.Nat{mpnat.New(15)}, opt); err == nil {
		t.Error("single modulus accepted")
	}
	if _, err := Run([]*mpnat.Nat{mpnat.New(15), {}}, opt); err == nil {
		t.Error("zero modulus accepted")
	}
}

// TestRunIncremental: a rolling scan over a split corpus breaks exactly
// the keys whose weak partner is visible across the split boundary or
// within the new batch.
func TestRunIncremental(t *testing.T) {
	c := weakCorpus(t, 16, 128, 3, 50)
	moduli := c.Moduli()
	old, newer := moduli[:10], moduli[10:]

	full, err := Run(moduli, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	inc, err := RunIncremental(old, newer, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Expected: every broken key of the full run whose revealing pair
	// touches the new range.
	want := map[int]bool{}
	for _, pp := range c.Planted {
		if pp.I >= 10 || pp.J >= 10 {
			want[pp.I] = true
			want[pp.J] = true
		}
	}
	if len(inc.Broken) != len(want) {
		t.Fatalf("incremental broke %d keys, want %d", len(inc.Broken), len(want))
	}
	fullByIdx := map[int]BrokenKey{}
	for _, bk := range full.Broken {
		fullByIdx[bk.Index] = bk
	}
	for _, bk := range inc.Broken {
		if !want[bk.Index] {
			t.Fatalf("unexpected incremental break at %d", bk.Index)
		}
		if bk.P.Cmp(fullByIdx[bk.Index].P) != 0 {
			t.Fatalf("key %d: factor differs from full run", bk.Index)
		}
	}
	if inc.Moduli != 16 {
		t.Fatalf("Moduli = %d, want global count", inc.Moduli)
	}
}

func TestRunIncrementalValidation(t *testing.T) {
	if _, err := RunIncremental(nil, nil, DefaultOptions()); err == nil {
		t.Error("empty new batch accepted")
	}
	opt := DefaultOptions()
	opt.BatchGCD = true
	c := weakCorpus(t, 4, 128, 0, 51)
	if _, err := RunIncremental(nil, c.Moduli(), opt); err == nil {
		t.Error("batch mode accepted in incremental run")
	}
}
