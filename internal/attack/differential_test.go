package attack

import (
	"fmt"
	"math/big"
	"math/rand"
	"testing"

	"bulkgcd/internal/engine"
	"bulkgcd/internal/gcd"
	"bulkgcd/internal/mpnat"
	"bulkgcd/internal/rsakey"
	"bulkgcd/internal/subprod"
)

// differentialCorpus builds a seeded corpus exercising every finding
// class the engines must agree on: planted shared-prime pairs, a prime
// shared across three moduli, a duplicated modulus, and coprime fillers.
func differentialCorpus(t *testing.T, seed int64) []*mpnat.Nat {
	t.Helper()
	c, err := rsakey.GenerateCorpus(rsakey.CorpusSpec{
		Count: 14, Bits: 128, WeakPairs: 2, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	moduli := c.Moduli()

	// Extend planted pair 0 into a shared-prime triple.
	r := rand.New(rand.NewSource(seed + 1000))
	p := c.Planted[0].P
	q := rsakey.GeneratePrime(r, 64)
	moduli = append(moduli, mpnat.FromBig(new(big.Int).Mul(p, q)))

	// Duplicate a clean modulus (one outside every planted pair).
	planted := map[int]bool{}
	for _, pp := range c.Planted {
		planted[pp.I] = true
		planted[pp.J] = true
	}
	for i := range c.Keys {
		if !planted[i] {
			moduli = append(moduli, moduli[i])
			break
		}
	}
	return moduli
}

// naiveReference is the brute-force all-pairs math/big oracle: for every
// pair it computes gcd(n_i, n_j) directly and classifies the outcome the
// way Report does.
func naiveReference(moduli []*mpnat.Nat) (broken map[int]*big.Int, dups [][2]int) {
	bigs := make([]*big.Int, len(moduli))
	for i, m := range moduli {
		bigs[i] = m.ToBig()
	}
	broken = map[int]*big.Int{}
	for i := 0; i < len(bigs); i++ {
		for j := i + 1; j < len(bigs); j++ {
			g := new(big.Int).GCD(nil, nil, bigs[i], bigs[j])
			if g.Cmp(big.NewInt(1)) == 0 {
				continue
			}
			if g.Cmp(bigs[i]) == 0 && g.Cmp(bigs[j]) == 0 {
				dups = append(dups, [2]int{i, j})
				continue
			}
			for _, side := range []int{i, j} {
				if g.Cmp(bigs[side]) < 0 {
					if prev, ok := broken[side]; ok && prev.Cmp(g) != 0 {
						// Corpus must keep shared structure unambiguous.
						panic(fmt.Sprintf("modulus %d shares different factors", side))
					}
					broken[side] = g
				}
			}
		}
	}
	return broken, dups
}

// TestDifferentialEngines runs every engine combination — the five GCD
// algorithms with early termination on and off, plus the batch-GCD
// engine at two pool sizes — over the same corpus, cross-checks each
// report against the naive all-pairs reference, and asserts all reports
// are identical to one another (FoundWith excepted: batch GCD has no
// notion of a revealing pair).
func TestDifferentialEngines(t *testing.T) {
	for seed := int64(60); seed < 63; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			moduli := differentialCorpus(t, seed)
			wantBroken, wantDups := naiveReference(moduli)

			type combo struct {
				name string
				opt  Options
			}
			var combos []combo
			for _, alg := range gcd.Algorithms {
				for _, early := range []bool{false, true} {
					combos = append(combos, combo{
						name: fmt.Sprintf("%s/early=%v", alg, early),
						opt: Options{
							Config:    engine.Config{Workers: 2},
							Algorithm: alg, Early: early,
							Exponent: rsakey.DefaultExponent,
						},
					})
				}
			}
			for _, w := range []int{1, 3} {
				for _, tree := range []subprod.TreeBackend{subprod.BackendBig, subprod.BackendNat} {
					combos = append(combos, combo{
						name: fmt.Sprintf("batch/workers=%d/tree=%s", w, tree),
						opt: Options{
							Config:   engine.Config{Workers: w},
							Engine:   engine.Batch,
							Tree:     tree,
							Exponent: rsakey.DefaultExponent,
						},
					})
				}
			}
			for _, tile := range []int{1, 4, 32, len(moduli)} {
				for _, w := range []int{1, 8} {
					combos = append(combos, combo{
						name: fmt.Sprintf("hybrid/tile=%d/workers=%d", tile, w),
						opt: Options{
							Config:    engine.Config{Workers: w},
							Engine:    engine.Hybrid,
							Algorithm: gcd.Approximate, Early: true,
							TileSize: tile,
							Exponent: rsakey.DefaultExponent,
						},
					})
				}
			}
			// Lane-batched kernel: both engines it serves, lane widths
			// down to L=1, early on and off. Findings must be identical
			// to every scalar combo above.
			for _, lw := range []int{1, 4, 16} {
				for _, early := range []bool{false, true} {
					combos = append(combos, combo{
						name: fmt.Sprintf("pairs/lanes=%d/early=%v", lw, early),
						opt: Options{
							Config:    engine.Config{Workers: 2},
							Algorithm: gcd.Approximate, Early: early,
							Kernel: engine.KernelLanes, LaneWidth: lw,
							Exponent: rsakey.DefaultExponent,
						},
					})
				}
				combos = append(combos, combo{
					name: fmt.Sprintf("hybrid/lanes=%d", lw),
					opt: Options{
						Config:    engine.Config{Workers: 3},
						Engine:    engine.Hybrid,
						Algorithm: gcd.Approximate, Early: true,
						TileSize: 4,
						Kernel:   engine.KernelLanes, LaneWidth: lw,
						Exponent: rsakey.DefaultExponent,
					},
				})
			}

			var base *Report
			for _, cb := range combos {
				cb := cb
				t.Run(cb.name, func(t *testing.T) {
					rep, err := Run(moduli, cb.opt)
					if err != nil {
						t.Fatal(err)
					}
					checkAgainstNaive(t, moduli, rep, wantBroken, wantDups)
					if base == nil {
						base = rep
						return
					}
					checkReportsIdentical(t, base, rep)
				})
			}
		})
	}
}

// checkAgainstNaive verifies one engine's report against the brute-force
// oracle: the same set of broken indices, each factored consistently with
// the naive shared factor, and the same duplicate pairs.
func checkAgainstNaive(t *testing.T, moduli []*mpnat.Nat, rep *Report, wantBroken map[int]*big.Int, wantDups [][2]int) {
	t.Helper()
	if len(rep.Broken) != len(wantBroken) {
		t.Fatalf("broke %d keys, naive reference says %d", len(rep.Broken), len(wantBroken))
	}
	for _, bk := range rep.Broken {
		g, ok := wantBroken[bk.Index]
		if !ok {
			t.Fatalf("key %d broken but coprime per the naive reference", bk.Index)
		}
		if bk.P.Cmp(g) != 0 && bk.Q.Cmp(g) != 0 {
			t.Errorf("key %d: neither factor equals the naive shared factor", bk.Index)
		}
		n := moduli[bk.Index].ToBig()
		if new(big.Int).Mul(bk.P, bk.Q).Cmp(n) != 0 {
			t.Errorf("key %d: P*Q != N", bk.Index)
		}
	}
	if len(rep.Duplicates) != len(wantDups) {
		t.Fatalf("duplicates = %v, naive reference %v", rep.Duplicates, wantDups)
	}
	for i, d := range rep.Duplicates {
		if d != wantDups[i] {
			t.Errorf("duplicate %d = %v, want %v", i, d, wantDups[i])
		}
	}
}

// checkReportsIdentical asserts two engines produced the same findings
// (everything except FoundWith, which only all-pairs mode defines).
func checkReportsIdentical(t *testing.T, a, b *Report) {
	t.Helper()
	if len(a.Broken) != len(b.Broken) {
		t.Fatalf("broken count differs: %d vs %d", len(a.Broken), len(b.Broken))
	}
	for i := range a.Broken {
		x, y := a.Broken[i], b.Broken[i]
		if x.Index != y.Index || x.P.Cmp(y.P) != 0 || x.Q.Cmp(y.Q) != 0 {
			t.Fatalf("broken key %d differs between engines", i)
		}
		if (x.D == nil) != (y.D == nil) || (x.D != nil && x.D.Cmp(y.D) != 0) {
			t.Fatalf("broken key %d: private exponents differ", i)
		}
	}
	if len(a.Duplicates) != len(b.Duplicates) {
		t.Fatalf("duplicate count differs: %v vs %v", a.Duplicates, b.Duplicates)
	}
	for i := range a.Duplicates {
		if a.Duplicates[i] != b.Duplicates[i] {
			t.Fatalf("duplicate %d differs: %v vs %v", i, a.Duplicates[i], b.Duplicates[i])
		}
	}
}

// TestDifferentialEnginesSubquadraticTiles is the end-to-end gate of
// the subquadratic multiplication backbone: with the mpnat cutoffs
// lowered to (4, 10) words, the hybrid engine's tile subproducts and
// the batch engine's nat-backed trees cross the Karatsuba and Toom-3
// dispatch boundaries even on this 128-bit corpus (a full-corpus tile
// multiplies ~32x32-word operands at the top of the balanced
// reduction). Every report must stay byte-identical to the scalar
// all-pairs engine and correct against the naive oracle — if a dispatch
// band miscomputed a single word, a subproduct would lose or invent a
// shared factor and the reports would diverge.
func TestDifferentialEnginesSubquadraticTiles(t *testing.T) {
	defer mpnat.SetMulThresholds(4, 10)()
	for seed := int64(75); seed < 77; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			moduli := differentialCorpus(t, seed)
			wantBroken, wantDups := naiveReference(moduli)

			base, err := Run(moduli, Options{
				Config:    engine.Config{Workers: 2},
				Algorithm: gcd.Approximate, Early: true,
				Exponent: rsakey.DefaultExponent,
			})
			if err != nil {
				t.Fatal(err)
			}
			checkAgainstNaive(t, moduli, base, wantBroken, wantDups)

			// Tile sizes straddling both lowered cutoffs: products of 2, 5,
			// 8 and all moduli put the balanced reduction's top level below,
			// between, and above the Karatsuba and Toom-3 boundaries.
			for _, tile := range []int{2, 5, 8, len(moduli)} {
				rep, err := Run(moduli, Options{
					Config:    engine.Config{Workers: 3},
					Engine:    engine.Hybrid,
					Algorithm: gcd.Approximate, Early: true,
					TileSize: tile,
					Exponent: rsakey.DefaultExponent,
				})
				if err != nil {
					t.Fatalf("hybrid tile=%d: %v", tile, err)
				}
				checkAgainstNaive(t, moduli, rep, wantBroken, wantDups)
				checkReportsIdentical(t, base, rep)
			}

			// Batch GCD on the nat tree: the full product tree and the
			// remainder-tree squares run deep in Karatsuba/Toom-3 territory.
			for _, w := range []int{1, 4} {
				rep, err := Run(moduli, Options{
					Config:   engine.Config{Workers: w},
					Engine:   engine.Batch,
					Tree:     subprod.BackendNat,
					Exponent: rsakey.DefaultExponent,
				})
				if err != nil {
					t.Fatalf("batch nat workers=%d: %v", w, err)
				}
				checkAgainstNaive(t, moduli, rep, wantBroken, wantDups)
				checkReportsIdentical(t, base, rep)
			}
		})
	}
}
