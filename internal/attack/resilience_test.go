package attack

import (
	"context"
	"path/filepath"
	"strings"
	"testing"

	"bulkgcd/internal/checkpoint"
	"bulkgcd/internal/faultinject"
	"bulkgcd/internal/mpnat"
)

// TestRunContextKillAndResume drives the full attack pipeline through an
// interrupted, journaled run and a resume, asserting the final report
// matches a clean one key for key.
func TestRunContextKillAndResume(t *testing.T) {
	c := weakCorpus(t, 18, 128, 3, 71)
	clean, err := Run(c.Moduli(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "attack.jsonl")
	w, err := checkpoint.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	plan := faultinject.NewPlan()
	plan.CancelAtPair = 20
	plan.Cancel = cancel
	opt := DefaultOptions()
	opt.Workers = 3
	opt.Checkpoint = w
	opt.Fault = plan.Hook()
	partial, err := RunContext(ctx, c.Moduli(), opt)
	cancel()
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if !partial.Canceled {
		t.Fatal("run completed before the cancel fired")
	}
	// Partial broken keys must be a subset of the clean report.
	cleanBroken := map[int]bool{}
	for _, bk := range clean.Broken {
		cleanBroken[bk.Index] = true
	}
	for _, bk := range partial.Broken {
		if !cleanBroken[bk.Index] {
			t.Fatalf("partial report broke key %d the clean run did not", bk.Index)
		}
	}

	st, err := checkpoint.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := checkpoint.OpenAppend(path)
	if err != nil {
		t.Fatal(err)
	}
	ropt := DefaultOptions()
	ropt.Resume = st
	ropt.Checkpoint = w2
	resumed, err := Run(c.Moduli(), ropt)
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	if resumed.Canceled {
		t.Fatal("resumed run canceled")
	}
	if len(resumed.Broken) != len(clean.Broken) {
		t.Fatalf("resumed broke %d keys, clean %d", len(resumed.Broken), len(clean.Broken))
	}
	for i := range clean.Broken {
		cb, rb := clean.Broken[i], resumed.Broken[i]
		if cb.Index != rb.Index || cb.P.Cmp(rb.P) != 0 || cb.Q.Cmp(rb.Q) != 0 {
			t.Fatalf("broken key %d differs after resume: clean %+v resumed %+v", i, cb, rb)
		}
		if (cb.D == nil) != (rb.D == nil) || (cb.D != nil && cb.D.Cmp(rb.D) != 0) {
			t.Fatalf("broken key %d: private exponent differs after resume", i)
		}
	}
}

// TestBatchModeRejectsCheckpoint: the product-tree engine has no journal
// units, so checkpoint/resume must be refused explicitly.
func TestBatchModeRejectsCheckpoint(t *testing.T) {
	c := weakCorpus(t, 6, 128, 1, 72)
	path := filepath.Join(t.TempDir(), "j.jsonl")
	w, err := checkpoint.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	opt := DefaultOptions()
	opt.BatchGCD = true
	opt.Checkpoint = w
	if _, err := Run(c.Moduli(), opt); err == nil || !strings.Contains(err.Error(), "pairs or hybrid") {
		t.Fatalf("batch + checkpoint: %v", err)
	}
	opt.Checkpoint = nil
	opt.Resume = &checkpoint.State{}
	if _, err := Run(c.Moduli(), opt); err == nil || !strings.Contains(err.Error(), "pairs or hybrid") {
		t.Fatalf("batch + resume: %v", err)
	}
}

// TestQuarantinePropagates: quarantined inputs and pairs surface in the
// attack report with original corpus indices.
func TestQuarantinePropagates(t *testing.T) {
	c := weakCorpus(t, 10, 128, 2, 73)
	moduli := append([]*mpnat.Nat{mpnat.New(4)}, c.Moduli()...)
	opt := DefaultOptions()
	opt.Quarantine = true
	rep, err := Run(moduli, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Quarantined) != 1 || rep.Quarantined[0].Index != 0 || rep.Quarantined[0].Reason != "even" {
		t.Fatalf("Quarantined = %+v", rep.Quarantined)
	}
	// All planted pairs still break, shifted by the one prepended modulus.
	wantBroken := map[int]bool{}
	for _, pp := range c.Planted {
		wantBroken[pp.I+1] = true
		wantBroken[pp.J+1] = true
	}
	if len(rep.Broken) != len(wantBroken) {
		t.Fatalf("broke %d keys, want %d", len(rep.Broken), len(wantBroken))
	}
	for _, bk := range rep.Broken {
		if !wantBroken[bk.Index] {
			t.Fatalf("unexpected broken key %d", bk.Index)
		}
	}
}

// TestIncrementalContextCancel: incremental attack honors cancellation
// with the same partial-report contract.
func TestIncrementalContextCancel(t *testing.T) {
	c := weakCorpus(t, 14, 128, 2, 74)
	moduli := c.Moduli()
	old, newer := moduli[:8], moduli[8:]
	ctx, cancel := context.WithCancel(context.Background())
	plan := faultinject.NewPlan()
	plan.CancelAtPair = 0
	plan.Cancel = cancel
	opt := DefaultOptions()
	opt.Fault = plan.Hook()
	rep, err := RunIncrementalContext(ctx, old, newer, opt)
	cancel()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Canceled {
		t.Fatal("Canceled not set")
	}
}
