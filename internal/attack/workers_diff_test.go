package attack

import (
	"fmt"
	"testing"

	"bulkgcd/internal/engine"
	"bulkgcd/internal/gcd"
	"bulkgcd/internal/rsakey"
	"bulkgcd/internal/subprod"
)

// TestDifferentialWorkerCounts pins the work-stealing pool's core
// contract: findings are byte-identical at every pool width. The widths
// deliberately include 1 (the inline no-pool path), 2 (one thief), 7
// (odd, so the static split is ragged and steal-half rebalancing kicks
// in) and 16 (far more workers than this machine has cores, so deques
// drain in arbitrary interleavings). Each width runs the three engines
// the scheduler now drives — all-pairs, hybrid cells, batch GCD on the
// nat-backed tree — and every report must match the brute-force
// math/big oracle and the width-1 report exactly.
func TestDifferentialWorkerCounts(t *testing.T) {
	moduli := differentialCorpus(t, 77)
	wantBroken, wantDups := naiveReference(moduli)

	engines := []struct {
		name string
		opt  Options
	}{
		{"pairs", Options{
			Algorithm: gcd.Approximate, Early: true,
			Exponent: rsakey.DefaultExponent,
		}},
		{"pairs-lanes", Options{
			Algorithm: gcd.Approximate, Early: true,
			Kernel: engine.KernelLanes, LaneWidth: 4,
			Exponent: rsakey.DefaultExponent,
		}},
		{"hybrid", Options{
			Engine:    engine.Hybrid,
			Algorithm: gcd.Approximate, Early: true, TileSize: 4,
			Exponent: rsakey.DefaultExponent,
		}},
		{"batch-nat", Options{
			Engine: engine.Batch, Tree: subprod.BackendNat,
			Exponent: rsakey.DefaultExponent,
		}},
	}

	for _, eng := range engines {
		eng := eng
		t.Run(eng.name, func(t *testing.T) {
			var base *Report
			for _, w := range []int{1, 2, 7, 16} {
				opt := eng.opt
				opt.Config.Workers = w
				rep, err := Run(moduli, opt)
				if err != nil {
					t.Fatalf("workers=%d: %v", w, err)
				}
				checkAgainstNaive(t, moduli, rep, wantBroken, wantDups)
				if base == nil {
					base = rep
					continue
				}
				t.Run(fmt.Sprintf("workers=%d", w), func(t *testing.T) {
					checkReportsIdentical(t, base, rep)
				})
			}
		})
	}
}
