package batchgcd

import (
	"math/big"
	"testing"

	"bulkgcd/internal/engine"
)

// fuzzModuli decodes the fuzz input into 2..8 small odd positive moduli:
// byte 0 picks the count, each following byte pair is one 16-bit value
// forced odd. Small values collide on factors constantly, which is
// exactly what exercises the resolution pass.
func fuzzModuli(data []byte) []*big.Int {
	if len(data) < 5 {
		return nil
	}
	n := 2 + int(data[0])%7
	var out []*big.Int
	for i := 1; i+1 < len(data) && len(out) < n; i += 2 {
		v := uint32(data[i])<<8 | uint32(data[i+1])
		out = append(out, big.NewInt(int64(v|1)))
	}
	if len(out) < 2 {
		return nil
	}
	return out
}

// FuzzBatchGCDMatchesNaive cross-checks Run against brute-force pairwise
// big.Int.GCD on arbitrary small odd-moduli sets: the flagged set, the
// extracted factors and the duplicate links must all be explainable by
// (and complete with respect to) the naive pairwise computation, and the
// parallel path must reproduce the serial path exactly.
func FuzzBatchGCDMatchesNaive(f *testing.F) {
	f.Add([]byte{0, 0, 15, 0, 21})                   // 15, 21 share 3
	f.Add([]byte{1, 0, 15, 0, 21, 0, 35})            // 3*5, 3*7, 5*7: every prime shared
	f.Add([]byte{0, 0, 15, 0, 15})                   // duplicates
	f.Add([]byte{2, 0, 15, 0, 15, 0, 15, 0, 7})      // triple duplicate + coprime
	f.Add([]byte{0, 0, 3, 0, 45})                    // 3 divides 45: g_i == n_i without a duplicate
	f.Add([]byte{6, 1, 1, 2, 3, 4, 5, 6, 7, 8, 9})   // random-ish spread
	f.Add([]byte{3, 0, 1, 0, 1, 255, 255, 127, 253}) // ones and big odds

	f.Fuzz(func(t *testing.T, data []byte) {
		ms := fuzzModuli(data)
		if ms == nil {
			return
		}
		serial, err := RunConfig(ms, Config{Config: engine.Config{Workers: 1}})
		if err != nil {
			t.Fatal(err)
		}
		parallel, err := RunConfig(ms, Config{Config: engine.Config{Workers: 4}})
		if err != nil {
			t.Fatal(err)
		}
		if len(serial) != len(parallel) {
			t.Fatalf("workers=1 found %d, workers=4 found %d", len(serial), len(parallel))
		}
		for i := range serial {
			s, p := serial[i], parallel[i]
			if s.Index != p.Index || s.DuplicateOf != p.DuplicateOf || s.Factor.Cmp(p.Factor) != 0 {
				t.Fatalf("finding %d differs between pools: %+v vs %+v", i, s, p)
			}
		}

		byIdx := map[int]Finding{}
		for i, fd := range serial {
			if i > 0 && serial[i-1].Index >= fd.Index {
				t.Fatalf("findings not strictly ordered by index: %+v", serial)
			}
			byIdx[fd.Index] = fd
		}

		for i, n := range ms {
			// Naive leaf value: gcd(n_i, prod_{j != i} n_j mod n_i).
			rest := big.NewInt(1)
			minDup := -1
			properPair := (*big.Int)(nil)
			for j, m := range ms {
				if j == i {
					continue
				}
				rest.Mul(rest, m)
				g := new(big.Int).GCD(nil, nil, n, m)
				if n.Cmp(m) == 0 && minDup < 0 {
					minDup = j
				}
				if g.Cmp(one) > 0 && g.Cmp(n) < 0 && properPair == nil {
					properPair = g
				}
			}
			rest.Mod(rest, n)
			want := new(big.Int).GCD(nil, nil, rest, n)

			fd, flagged := byIdx[i]
			if want.Cmp(one) == 0 {
				if flagged {
					t.Fatalf("modulus %d (%v) flagged but coprime with the rest (%v)", i, n, ms)
				}
				continue
			}
			if !flagged {
				t.Fatalf("modulus %d (%v) shares a factor but was not flagged (%v)", i, n, ms)
			}
			if fd.Factor.Cmp(one) <= 0 || new(big.Int).Mod(n, fd.Factor).Sign() != 0 {
				t.Fatalf("modulus %d: factor %v is not a divisor > 1 of %v", i, fd.Factor, n)
			}
			if want.Cmp(n) < 0 {
				// Proper leaf gcd: Run must report exactly it, and a proper
				// leaf value rules out duplicates.
				if fd.Factor.Cmp(want) != 0 {
					t.Fatalf("modulus %d: factor %v, naive says %v", i, fd.Factor, want)
				}
				if fd.DuplicateOf != -1 {
					t.Fatalf("modulus %d: duplicate link %d despite proper leaf gcd", i, fd.DuplicateOf)
				}
				continue
			}
			// want == n_i: the resolution pass ran. A proper factor must be
			// extracted exactly when some pairwise gcd splits n_i, and the
			// duplicate link is always the smallest identical index.
			if properPair != nil && fd.Factor.Cmp(n) == 0 {
				t.Fatalf("modulus %d: resolution missed proper split %v (%v)", i, properPair, ms)
			}
			if properPair == nil && fd.Factor.Cmp(n) != 0 {
				t.Fatalf("modulus %d: factor %v but no pair splits it (%v)", i, fd.Factor, ms)
			}
			if fd.Factor.Cmp(n) < 0 {
				// The extracted factor must be witnessed by some pair.
				ok := false
				for j, m := range ms {
					if j != i && new(big.Int).GCD(nil, nil, n, m).Cmp(fd.Factor) == 0 {
						ok = true
						break
					}
				}
				if !ok {
					t.Fatalf("modulus %d: factor %v is no pairwise gcd (%v)", i, fd.Factor, ms)
				}
			}
			if fd.DuplicateOf != minDup {
				t.Fatalf("modulus %d: DuplicateOf = %d, want %d (%v)", i, fd.DuplicateOf, minDup, ms)
			}
		}
	})
}
