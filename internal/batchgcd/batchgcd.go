// Package batchgcd implements Bernstein's batch GCD (product tree +
// remainder tree), the standard alternative to the paper's all-pairs
// approach for finding shared primes among many RSA moduli (the algorithm
// behind the fastgcd tool used by Heninger et al.).
//
// The paper's contribution is a better *pairwise* GCD kernel; batch GCD
// is the asymptotically faster but memory-hungry competitor, so this
// package serves as the known-baseline comparison: cmd/rsafactor -batch
// runs it, and the crossover experiment in package experiments compares
// the two as corpus size grows.
//
// For m moduli of b bits, batch GCD computes
//
//	g_i = gcd(n_i, (P / n_i) mod n_i)   where P = prod_j n_j
//
// for all i in O(M(m*b) * log m) time, where M is the multiplication
// cost. It is implemented over math/big: the baseline's whole advantage
// is asymptotically fast multiplication, which is orthogonal to the
// paper's word-level contribution (see DESIGN.md, substitutions).
package batchgcd

import (
	"fmt"
	"math/big"
	"sort"
)

// one is the shared constant 1.
var one = big.NewInt(1)

// ProductTree holds the levels of the product tree: level 0 is the input
// moduli, the last level is the single full product.
type ProductTree struct {
	Levels [][]*big.Int
}

// NewProductTree builds the product tree of the moduli.
func NewProductTree(moduli []*big.Int) (*ProductTree, error) {
	if len(moduli) == 0 {
		return nil, fmt.Errorf("batchgcd: empty input")
	}
	for i, n := range moduli {
		if n == nil || n.Sign() <= 0 {
			return nil, fmt.Errorf("batchgcd: modulus %d is not positive", i)
		}
	}
	level := make([]*big.Int, len(moduli))
	copy(level, moduli)
	t := &ProductTree{Levels: [][]*big.Int{level}}
	for len(level) > 1 {
		next := make([]*big.Int, 0, (len(level)+1)/2)
		for i := 0; i < len(level); i += 2 {
			if i+1 < len(level) {
				next = append(next, new(big.Int).Mul(level[i], level[i+1]))
			} else {
				next = append(next, level[i]) // odd node promotes unchanged
			}
		}
		t.Levels = append(t.Levels, next)
		level = next
	}
	return t, nil
}

// Product returns the root: the product of all moduli.
func (t *ProductTree) Product() *big.Int {
	top := t.Levels[len(t.Levels)-1]
	return top[0]
}

// remainderTree pushes the root product down the tree, reducing modulo
// the square of each node, and returns the leaf remainders
// r_i = P mod n_i^2.
func (t *ProductTree) remainderTree() []*big.Int {
	depth := len(t.Levels)
	cur := []*big.Int{t.Product()}
	for lvl := depth - 2; lvl >= 0; lvl-- {
		nodes := t.Levels[lvl]
		next := make([]*big.Int, len(nodes))
		for i, n := range nodes {
			parent := cur[i/2]
			sq := new(big.Int).Mul(n, n)
			next[i] = new(big.Int).Mod(parent, sq)
		}
		cur = next
	}
	return cur
}

// SharedFactors returns, for each modulus, g_i = gcd(n_i, (P/n_i) mod n_i):
// 1 when n_i shares no factor with any other modulus, the shared factor(s)
// otherwise, and n_i itself when n_i divides the product of the others
// (duplicate modulus, or all of n_i's primes shared).
func SharedFactors(moduli []*big.Int) ([]*big.Int, error) {
	t, err := NewProductTree(moduli)
	if err != nil {
		return nil, err
	}
	rems := t.remainderTree()
	out := make([]*big.Int, len(moduli))
	for i, n := range moduli {
		// (P / n_i) mod n_i == (P mod n_i^2) / n_i for n_i | P.
		q := new(big.Int).Quo(rems[i], n)
		out[i] = new(big.Int).GCD(nil, nil, q, n)
	}
	return out, nil
}

// Finding is one modulus flagged by the batch run, resolved into a
// non-trivial factor where possible.
type Finding struct {
	// Index is the modulus position.
	Index int
	// Factor is a non-trivial divisor of the modulus (1 < Factor < N),
	// or the modulus itself when only duplicates explain the hit.
	Factor *big.Int
	// DuplicateOf is >= 0 when the modulus is identical to another one.
	DuplicateOf int
}

// Run executes the complete batch attack: SharedFactors plus the
// resolution pass that Bernstein's method needs when g_i equals n_i
// (duplicate moduli, or a modulus both of whose primes are shared). The
// resolution computes pairwise GCDs only among the flagged moduli, which
// are few.
func Run(moduli []*big.Int) ([]Finding, error) {
	gs, err := SharedFactors(moduli)
	if err != nil {
		return nil, err
	}
	var findings []Finding
	var whole []int // indices with g_i == n_i, resolved below
	for i, g := range gs {
		switch {
		case g.Cmp(one) == 0:
			// coprime with every other modulus
		case g.Cmp(moduli[i]) < 0:
			findings = append(findings, Finding{Index: i, Factor: g, DuplicateOf: -1})
		default:
			whole = append(whole, i)
		}
	}
	for _, i := range whole {
		f := Finding{Index: i, Factor: new(big.Int).Set(moduli[i]), DuplicateOf: -1}
		// Find a partner among all flagged moduli to extract a proper
		// factor or identify a duplicate.
		for _, j := range append(append([]int{}, whole...), properIndices(findings)...) {
			if j == i {
				continue
			}
			g := new(big.Int).GCD(nil, nil, moduli[i], moduli[j])
			if g.Cmp(one) == 0 {
				continue
			}
			if g.Cmp(moduli[i]) == 0 && moduli[i].Cmp(moduli[j]) == 0 {
				if f.DuplicateOf < 0 || j < f.DuplicateOf {
					f.DuplicateOf = j
				}
				continue
			}
			if g.Cmp(moduli[i]) < 0 {
				f.Factor = g
				break
			}
		}
		findings = append(findings, f)
	}
	sort.Slice(findings, func(a, b int) bool { return findings[a].Index < findings[b].Index })
	return findings, nil
}

func properIndices(fs []Finding) []int {
	out := make([]int, len(fs))
	for i, f := range fs {
		out[i] = f.Index
	}
	return out
}
