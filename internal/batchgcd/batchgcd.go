// Package batchgcd implements Bernstein's batch GCD (product tree +
// remainder tree), the standard alternative to the paper's all-pairs
// approach for finding shared primes among many RSA moduli (the algorithm
// behind the fastgcd tool used by Heninger et al.).
//
// The paper's contribution is a better *pairwise* GCD kernel; batch GCD
// is the asymptotically faster but memory-hungry competitor, so this
// package serves as the known-baseline comparison: cmd/rsafactor -batch
// runs it, and the crossover experiment in package experiments compares
// the two as corpus size grows.
//
// For m moduli of b bits, batch GCD computes
//
//	g_i = gcd(n_i, (P / n_i) mod n_i)   where P = prod_j n_j
//
// for all i in O(M(m*b) * log m) time, where M is the multiplication
// cost. It is implemented over math/big: the baseline's whole advantage
// is asymptotically fast multiplication, which is orthogonal to the
// paper's word-level contribution (see DESIGN.md, substitutions).
//
// The engine is level-parallel: within each product-tree level the node
// multiplications are independent, as are each remainder-tree level's
// P mod n_i^2 reductions and the leaf GCD extractions, so all three fan
// out over a worker pool sized by Config.Workers. The tree shape and all
// scan orders are deterministic, so every Workers setting produces the
// identical Finding list; Workers: 1 is the provably-equivalent serial
// path (it runs inline on the caller's goroutine).
package batchgcd

import (
	"context"
	"errors"
	"fmt"
	"math/big"
	"sort"
	"sync/atomic"
	"time"

	"bulkgcd/internal/engine"
	"bulkgcd/internal/faultinject"
	"bulkgcd/internal/mpnat"
	"bulkgcd/internal/obs"
	"bulkgcd/internal/subprod"
)

// one is the shared constant 1.
var one = big.NewInt(1)

// Config controls a batch-GCD run. It is the shared cross-engine
// configuration plus one engine knob, Tree. Workers only split
// independent node computations within a tree level, so the result is
// identical for every pool size; Progress counts tree-operation units
// (product multiplications, remainder reductions, leaf GCD extractions
// — the output-sensitive resolution pass over the handful of flagged
// moduli is not counted). Checkpoint/Resume are rejected: the tree has
// no resumable unit decomposition (use the pairs or hybrid engine when
// resumable progress matters).
type Config struct {
	engine.Config

	// Tree selects the arithmetic the product and remainder trees run
	// on: subprod.BackendBig (the default) keeps math/big's assembly
	// inner loops and recursive division, subprod.BackendNat builds both
	// trees in mpnat's packed word representation on the subquadratic
	// Karatsuba/Toom-3 path with per-worker scratch arenas. The Finding
	// list is byte-identical across backends (and every Workers
	// setting); the unit accounting seen by Progress and the fault hook
	// is identical too.
	Tree subprod.TreeBackend
}

// tracker carries the shared progress and observability state of one
// run: the serialized progress stream, the obs instruments and the
// tracer. All instrument fields are nil-safe, so every path updates
// them unconditionally.
type tracker struct {
	done     atomic.Int64
	total    int64
	progress func(done, total int64)
	fault    *faultinject.Hook

	ops        *obs.Counter   // batchgcd_tree_ops_total
	findings   *obs.Counter   // batchgcd_findings_total
	productH   *obs.Histogram // batchgcd_product_level_seconds
	remainderH *obs.Histogram // batchgcd_remainder_level_seconds
	leafH      *obs.Histogram // batchgcd_leaf_gcd_seconds
	trace      *obs.Tracer
	metrics    *obs.Registry // scheduler pools (engine_steals_total and friends)
}

func newTracker(total int64, cfg Config) *tracker {
	t := &tracker{total: total, progress: obs.SerializeProgress(cfg.Progress), fault: cfg.Fault, trace: cfg.Trace, metrics: cfg.Metrics}
	if reg := cfg.Metrics; reg != nil {
		t.ops = reg.Counter("batchgcd_tree_ops_total")
		t.findings = reg.Counter("batchgcd_findings_total")
		t.productH = reg.Histogram("batchgcd_product_level_seconds", obs.DurationBuckets())
		t.remainderH = reg.Histogram("batchgcd_remainder_level_seconds", obs.DurationBuckets())
		t.leafH = reg.Histogram("batchgcd_leaf_gcd_seconds", obs.DurationBuckets())
	}
	return t
}

// tick records one completed unit and notifies the callback; the fault
// hook sees the operation's 0-based ordinal.
func (t *tracker) tick() {
	if t == nil {
		return
	}
	t.ops.Inc()
	if t.progress == nil && t.fault == nil {
		return
	}
	d := t.done.Add(1)
	t.fault.OnOp(d - 1)
	if t.progress != nil {
		t.progress(d, t.total)
	}
}

// phase wraps one tree level (or the leaf pass): a trace span plus the
// level's duration folded into hist.
func (t *tracker) phase(name string, level, nodes int, hist *obs.Histogram, fn func() error) error {
	if t == nil {
		return fn()
	}
	sp := t.trace.StartSpan("phase", "phase", name, "level", level, "nodes", nodes)
	start := time.Now()
	err := fn()
	hist.ObserveDuration(int64(time.Since(start)))
	sp.End("err", err != nil)
	return err
}

// treeUnits counts the work units of a full run over m moduli:
// product-tree multiplications, remainder-tree reductions, and the m
// leaf GCD extractions.
func treeUnits(m int) (mults, reductions, leaves int64) {
	for l := m; l > 1; l = (l + 1) / 2 {
		mults += int64(l / 2)
		reductions += int64(l)
	}
	return mults, reductions, int64(m)
}

// ProductTree holds the levels of the product tree: level 0 is the input
// moduli, the last level is the single full product.
type ProductTree struct {
	Levels [][]*big.Int
}

// NewProductTree builds the product tree of the moduli on the default
// (GOMAXPROCS-sized) worker pool.
func NewProductTree(moduli []*big.Int) (*ProductTree, error) {
	return NewProductTreeConfig(moduli, Config{})
}

// NewProductTreeConfig builds the product tree with the given pool size;
// Progress counts the multiplications performed.
func NewProductTreeConfig(moduli []*big.Int, cfg Config) (*ProductTree, error) {
	if err := validate(moduli); err != nil {
		return nil, err
	}
	mults, _, _ := treeUnits(len(moduli))
	return buildTree(context.Background(), moduli, cfg.EffectiveWorkers(), newTracker(mults, cfg))
}

func validate(moduli []*big.Int) error {
	if len(moduli) == 0 {
		return fmt.Errorf("batchgcd: empty input")
	}
	for i, n := range moduli {
		if n == nil || n.Sign() <= 0 {
			return fmt.Errorf("batchgcd: modulus %d is not positive", i)
		}
	}
	return nil
}

// rejectJournal enforces the Config contract: batch GCD has no
// resumable unit decomposition, so journaling options are an error
// rather than a silent no-op.
func rejectJournal(cfg Config) error {
	if cfg.Checkpoint != nil || cfg.Resume != nil {
		return fmt.Errorf("batchgcd: checkpointing is not supported; use the pairs or hybrid engine")
	}
	return nil
}

// validateRSA adds the RSA-shape checks of the bulk engine to the plain
// positivity validation: the attack entry points (Run and friends) reject
// zero and even moduli up front, the same contract bulk.AllPairs enforces.
func validateRSA(moduli []*big.Int) error {
	if err := validate(moduli); err != nil {
		return err
	}
	for i, n := range moduli {
		if n.Bit(0) == 0 {
			return fmt.Errorf("batchgcd: modulus %d is even (not an RSA modulus)", i)
		}
	}
	return nil
}

// buildTree constructs the levels bottom-up via the shared subproduct
// builder; the multiplications within one level are independent and fan
// out over the pool, and each level is wrapped in the tracker's phase
// (trace span + level-duration histogram).
func buildTree(ctx context.Context, moduli []*big.Int, workers int, tr *tracker) (*ProductTree, error) {
	st, err := subprod.Build(ctx, moduli, subprod.BuildOptions{
		Workers: workers,
		Metrics: tr.metrics,
		OnLevel: func(level, nodes int, run func() error) error {
			return tr.phase("product", level, nodes, tr.productH, run)
		},
		OnNode: tr.tick,
	})
	if err != nil {
		return nil, err
	}
	return &ProductTree{Levels: st.Levels}, nil
}

// Product returns the root: the product of all moduli.
func (t *ProductTree) Product() *big.Int {
	top := t.Levels[len(t.Levels)-1]
	return top[0]
}

// remainderTree pushes the root product down the tree, reducing modulo
// the square of each node, and returns the leaf remainders
// r_i = P mod n_i^2. Each level's reductions are independent and fan out
// over the pool; the square and the division quotient are per-worker
// scratch so the hot loop does not reallocate them.
func (t *ProductTree) remainderTree(ctx context.Context, workers int, tr *tracker) ([]*big.Int, error) {
	depth := len(t.Levels)
	cur := []*big.Int{t.Product()}
	type remScratch struct{ sq, quo big.Int }
	scratch := make([]remScratch, workers)
	for lvl := depth - 2; lvl >= 0; lvl-- {
		nodes := t.Levels[lvl]
		next := make([]*big.Int, len(nodes))
		parent := cur
		if err := tr.phase("remainder", lvl, len(nodes), tr.remainderH, func() error {
			return engine.Run(ctx, len(nodes), engine.PoolOptions{Workers: workers, Metrics: tr.metrics}, func(i, w int) {
				s := &scratch[w]
				s.sq.Mul(nodes[i], nodes[i])
				rem := new(big.Int)
				s.quo.QuoRem(parent[i/2], &s.sq, rem)
				next[i] = rem
				tr.tick()
			})
		}); err != nil {
			return nil, err
		}
		cur = next
	}
	return cur, nil
}

// leafRemainders computes r_i = P mod n_i^2 for every modulus on the
// backend cfg selects: product tree, then remainder tree, with
// identical tick/phase accounting either way, so Progress streams and
// fault-injection ordinals do not depend on the backend.
func leafRemainders(ctx context.Context, moduli []*big.Int, workers int, tr *tracker, backend subprod.TreeBackend) ([]*big.Int, error) {
	if backend == subprod.BackendNat {
		return natRemainders(ctx, moduli, workers, tr)
	}
	t, err := buildTree(ctx, moduli, workers, tr)
	if err != nil {
		return nil, err
	}
	return t.remainderTree(ctx, workers, tr)
}

// natRemainders is the BackendNat twin of buildTree+remainderTree: the
// product tree is built by subprod.BuildNat on the subquadratic mpnat
// multiplier, and the push-down reduces modulo node squares with
// per-worker MulScratch/DivScratch arenas, all in the packed 32-bit
// word layout. The leaf remainders convert back to big.Int once, at the
// boundary to the shared leaf GCD pass, so findings stay byte-identical
// with the big backend.
func natRemainders(ctx context.Context, moduli []*big.Int, workers int, tr *tracker) ([]*big.Int, error) {
	leaves := make([]*mpnat.Nat, len(moduli))
	for i, n := range moduli {
		leaves[i] = mpnat.FromBig(n)
	}
	t, err := subprod.BuildNat(ctx, leaves, subprod.BuildOptions{
		Workers: workers,
		Metrics: tr.metrics,
		OnLevel: func(level, nodes int, run func() error) error {
			return tr.phase("product", level, nodes, tr.productH, run)
		},
		OnNode: tr.tick,
	})
	if err != nil {
		return nil, err
	}
	depth := len(t.Levels)
	cur := []*mpnat.Nat{t.Root()}
	type natScratch struct {
		sq  mpnat.Nat
		mul mpnat.MulScratch
		div mpnat.DivScratch
	}
	scratch := make([]natScratch, workers)
	for lvl := depth - 2; lvl >= 0; lvl-- {
		nodes := t.Levels[lvl]
		next := make([]*mpnat.Nat, len(nodes))
		parent := cur
		if err := tr.phase("remainder", lvl, len(nodes), tr.remainderH, func() error {
			return engine.Run(ctx, len(nodes), engine.PoolOptions{Workers: workers, Metrics: tr.metrics}, func(i, w int) {
				s := &scratch[w]
				s.mul.Sqr(&s.sq, nodes[i])
				rem := new(mpnat.Nat)
				s.div.Mod(rem, parent[i/2], &s.sq)
				next[i] = rem
				tr.tick()
			})
		}); err != nil {
			return nil, err
		}
		cur = next
	}
	rems := make([]*big.Int, len(cur))
	for i, r := range cur {
		rems[i] = r.ToBig()
	}
	return rems, nil
}

// SharedFactors returns, for each modulus, g_i = gcd(n_i, (P/n_i) mod n_i):
// 1 when n_i shares no factor with any other modulus, the shared factor(s)
// otherwise, and n_i itself when n_i divides the product of the others
// (duplicate modulus, or all of n_i's primes shared). It runs on the
// default (GOMAXPROCS-sized) worker pool.
func SharedFactors(moduli []*big.Int) ([]*big.Int, error) {
	return SharedFactorsConfig(moduli, Config{})
}

// SharedFactorsConfig is SharedFactors with explicit pool size and
// progress reporting.
func SharedFactorsConfig(moduli []*big.Int, cfg Config) ([]*big.Int, error) {
	return SharedFactorsContext(context.Background(), moduli, cfg)
}

// SharedFactorsContext is SharedFactorsConfig with cooperative
// cancellation: a canceled context aborts between tree operations and the
// context error is returned. Batch GCD has no meaningful partial result —
// findings only exist once the remainder tree reaches the leaves — so
// cancellation discards the incomplete tree.
func SharedFactorsContext(ctx context.Context, moduli []*big.Int, cfg Config) ([]*big.Int, error) {
	if err := rejectJournal(cfg); err != nil {
		return nil, err
	}
	if err := validate(moduli); err != nil {
		return nil, err
	}
	workers := cfg.EffectiveWorkers()
	mults, reductions, leaves := treeUnits(len(moduli))
	tr := newTracker(mults+reductions+leaves, cfg)

	rems, err := leafRemainders(ctx, moduli, workers, tr, cfg.Tree)
	if err != nil {
		return nil, err
	}

	out := make([]*big.Int, len(moduli))
	scratch := make([]big.Int, workers) // per-worker quotient
	if err := tr.phase("leaf", 0, len(moduli), nil, func() error {
		return engine.Run(ctx, len(moduli), engine.PoolOptions{Workers: workers, Grain: 8, Metrics: tr.metrics}, func(i, w int) {
			// (P / n_i) mod n_i == (P mod n_i^2) / n_i for n_i | P.
			q := &scratch[w]
			q.Quo(rems[i], moduli[i])
			if tr.leafH != nil {
				start := time.Now()
				out[i] = new(big.Int).GCD(nil, nil, q, moduli[i])
				tr.leafH.ObserveDuration(int64(time.Since(start)))
			} else {
				out[i] = new(big.Int).GCD(nil, nil, q, moduli[i])
			}
			tr.tick()
		})
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// Finding is one modulus flagged by the batch run, resolved into a
// non-trivial factor where possible.
type Finding struct {
	// Index is the modulus position.
	Index int
	// Factor is a non-trivial divisor of the modulus (1 < Factor < N),
	// or the modulus itself when no pairwise GCD splits it.
	Factor *big.Int
	// DuplicateOf is the smallest index of an identical modulus, or -1.
	// It is set whether or not a proper factor was also extracted.
	DuplicateOf int
}

// Run executes the complete batch attack on the default worker pool:
// SharedFactors plus the resolution pass that Bernstein's method needs
// when g_i equals n_i (duplicate moduli, or a modulus both of whose
// primes are shared). Like bulk.AllPairs, it rejects zero and even
// moduli up front.
func Run(moduli []*big.Int) ([]Finding, error) {
	return RunConfig(moduli, Config{})
}

// RunConfig is Run with explicit pool size and progress reporting. The
// Finding list is identical for every Workers setting.
func RunConfig(moduli []*big.Int, cfg Config) ([]Finding, error) {
	return RunContext(context.Background(), moduli, cfg)
}

// RunContext is RunConfig with cooperative cancellation: on cancel the
// incomplete tree is discarded and the context error returned (there are
// no partial batch findings; use the all-pairs engine when resumable
// partial progress matters).
func RunContext(ctx context.Context, moduli []*big.Int, cfg Config) (findings []Finding, err error) {
	if err := rejectJournal(cfg); err != nil {
		return nil, err
	}
	if err := validateRSA(moduli); err != nil {
		return nil, err
	}
	runSpan := cfg.Trace.StartSpan("run",
		"engine", "batchgcd", "moduli", len(moduli), "workers", cfg.EffectiveWorkers(),
		"tree", cfg.Tree.String())
	defer func() {
		if cfg.Metrics != nil {
			cfg.Metrics.Counter("batchgcd_findings_total").Add(int64(len(findings)))
		}
		runSpan.End("findings", len(findings), "canceled", errors.Is(err, context.Canceled))
	}()
	gs, err := SharedFactorsContext(ctx, moduli, cfg)
	if err != nil {
		return nil, err
	}
	var whole []int // indices with g_i == n_i, resolved below
	for i, g := range gs {
		switch {
		case g.Cmp(one) == 0:
			// coprime with every other modulus
		case g.Cmp(moduli[i]) < 0:
			findings = append(findings, Finding{Index: i, Factor: g, DuplicateOf: -1})
		default:
			whole = append(whole, i)
		}
	}
	resolved, err := resolveWhole(ctx, moduli, whole, findings, cfg.EffectiveWorkers())
	if err != nil {
		return nil, err
	}
	findings = append(findings, resolved...)
	sort.Slice(findings, func(a, b int) bool { return findings[a].Index < findings[b].Index })
	return findings, nil
}

// resolveWhole handles the g_i == n_i cases: each flagged modulus needs
// pairwise GCDs against the other flagged moduli (which are few) to
// extract a proper factor or identify duplicates. The indices resolve
// independently against the same deterministic candidate list, chunked
// across the worker pool, so the output does not depend on Workers: the
// first proper divisor in candidate order wins and the duplicate partner
// is always the smallest matching index.
func resolveWhole(ctx context.Context, moduli []*big.Int, whole []int, proper []Finding, workers int) ([]Finding, error) {
	if len(whole) == 0 {
		return nil, nil
	}
	candidates := make([]int, 0, len(whole)+len(proper))
	candidates = append(candidates, whole...)
	for _, f := range proper {
		candidates = append(candidates, f.Index)
	}
	out := make([]Finding, len(whole))
	scratch := make([]big.Int, workers) // per-worker gcd
	err := engine.Run(ctx, len(whole), engine.PoolOptions{Workers: workers}, func(k, w int) {
		i := whole[k]
		g := &scratch[w]
		f := Finding{Index: i, DuplicateOf: -1}
		for _, j := range candidates {
			if j == i {
				continue
			}
			g.GCD(nil, nil, moduli[i], moduli[j])
			switch {
			case g.Cmp(one) == 0:
			case g.Cmp(moduli[i]) == 0 && moduli[i].Cmp(moduli[j]) == 0:
				if f.DuplicateOf < 0 || j < f.DuplicateOf {
					f.DuplicateOf = j
				}
			case g.Cmp(moduli[i]) < 0:
				if f.Factor == nil {
					f.Factor = new(big.Int).Set(g)
				}
			}
		}
		if f.Factor == nil {
			f.Factor = new(big.Int).Set(moduli[i])
		}
		out[k] = f
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
