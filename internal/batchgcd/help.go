package batchgcd

import "bulkgcd/internal/obs"

// Metric documentation, registered from init for `# HELP` exposition and
// the doc-parity test.
func init() {
	for name, help := range map[string]string{
		"batchgcd_tree_ops_total":          "product/remainder tree node operations",
		"batchgcd_findings_total":          "moduli with a nontrivial shared factor",
		"batchgcd_product_level_seconds":   "wall time per product-tree level",
		"batchgcd_remainder_level_seconds": "wall time per remainder-tree level",
		"batchgcd_leaf_gcd_seconds":        "wall time of the final leaf GCD pass",
	} {
		obs.RegisterHelp(name, help)
	}
}
