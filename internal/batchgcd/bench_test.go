package batchgcd

import (
	"fmt"
	"math/big"
	"testing"

	"bulkgcd/internal/engine"
	"bulkgcd/internal/obs"
	"bulkgcd/internal/rsakey"
)

// BenchmarkBatchGCD measures the complete batch attack (product tree,
// remainder tree, leaf extraction, resolution) on a 4096-moduli 512-bit
// corpus across pool sizes. Workers=1 is the serial baseline the
// parallel engine must beat; the Finding lists are identical by
// construction (see TestRunConfigWorkersIdentical).
func BenchmarkBatchGCD(b *testing.B) {
	c, err := rsakey.GenerateCorpus(rsakey.CorpusSpec{
		Count: 4096, Bits: 512, WeakPairs: 8, Seed: 11, Pseudo: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	ms := make([]*big.Int, len(c.Keys))
	for i, k := range c.Keys {
		ms[i] = k.N.ToBig()
	}
	for _, w := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := RunConfig(ms, Config{Config: engine.Config{Workers: w}}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	// Same attack with a live registry attached: the delta against the
	// metrics=nil runs above is the instrumentation overhead (budget 2%).
	b.Run("workers=8/metrics", func(b *testing.B) {
		reg := obs.NewRegistry()
		for i := 0; i < b.N; i++ {
			if _, err := RunConfig(ms, Config{Config: engine.Config{Workers: 8, Metrics: reg}}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
