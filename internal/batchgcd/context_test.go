package batchgcd

import (
	"context"
	"errors"
	"math/big"
	"strings"
	"testing"

	"bulkgcd/internal/engine"
	"bulkgcd/internal/faultinject"
	"bulkgcd/internal/rsakey"
)

func weakBigs(t *testing.T, count, bits, weak int, seed int64) []*big.Int {
	t.Helper()
	c, err := rsakey.GenerateCorpus(rsakey.CorpusSpec{Count: count, Bits: bits, WeakPairs: weak, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	out := make([]*big.Int, count)
	for i, n := range c.Moduli() {
		out[i] = n.ToBig()
	}
	return out
}

// TestRunContextCancelAtOp: cancellation at a chosen tree operation makes
// the run return context.Canceled — the batch engine has no meaningful
// partial result, unlike the all-pairs engine.
func TestRunContextCancelAtOp(t *testing.T) {
	moduli := weakBigs(t, 16, 128, 2, 61)
	for _, at := range []int64{0, 3, 20} {
		ctx, cancel := context.WithCancel(context.Background())
		plan := faultinject.NewPlan()
		plan.CancelAtOp = at
		plan.Cancel = cancel
		_, err := RunContext(ctx, moduli, Config{Config: engine.Config{Workers: 3, Fault: plan.Hook()}})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancel at op %d: err = %v, want context.Canceled", at, err)
		}
	}
}

// TestRunContextPreCanceled: an already-dead context fails fast on both
// the serial and parallel paths.
func TestRunContextPreCanceled(t *testing.T) {
	moduli := weakBigs(t, 8, 128, 1, 62)
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if _, err := RunContext(ctx, moduli, Config{Config: engine.Config{Workers: workers}}); !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v", workers, err)
		}
	}
}

// TestRunRejectsNonRSAModuli: the attack entry points now enforce the
// same zero/even contract as bulk.AllPairs.
func TestRunRejectsNonRSAModuli(t *testing.T) {
	moduli := weakBigs(t, 4, 128, 0, 63)
	even := append(append([]*big.Int{}, moduli...), big.NewInt(4))
	if _, err := Run(even); err == nil || !strings.Contains(err.Error(), "even") {
		t.Fatalf("even modulus: %v", err)
	}
	zero := append(append([]*big.Int{}, moduli...), new(big.Int))
	if _, err := Run(zero); err == nil || !strings.Contains(err.Error(), "not positive") {
		t.Fatalf("zero modulus: %v", err)
	}
	if _, err := Run(append(append([]*big.Int{}, moduli...), nil)); err == nil {
		t.Fatal("nil modulus accepted")
	}
}

// TestSharedFactorsStillAcceptsEven: the tree primitives keep their wider
// domain — only the Run attack path enforces the RSA shape (the product
// tree itself is well-defined for any positive integers, and existing
// callers rely on that).
func TestSharedFactorsStillAcceptsEven(t *testing.T) {
	if _, err := SharedFactors([]*big.Int{big.NewInt(42), big.NewInt(35)}); err != nil {
		t.Fatal(err)
	}
}

// TestRunContextMatchesRun: the ctx-aware path with faults disabled is
// identical to the legacy entry point.
func TestRunContextMatchesRun(t *testing.T) {
	moduli := weakBigs(t, 20, 128, 3, 64)
	legacy, err := Run(moduli)
	if err != nil {
		t.Fatal(err)
	}
	viaCtx, err := RunContext(context.Background(), moduli, Config{Config: engine.Config{Workers: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if len(legacy) != len(viaCtx) {
		t.Fatalf("finding counts differ: %d vs %d", len(legacy), len(viaCtx))
	}
	for i := range legacy {
		if legacy[i].Index != viaCtx[i].Index || legacy[i].Factor.Cmp(viaCtx[i].Factor) != 0 {
			t.Fatalf("finding %d differs", i)
		}
	}
}
