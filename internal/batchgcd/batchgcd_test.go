package batchgcd

import (
	"math/big"
	"math/rand"
	"sync"
	"testing"

	"bulkgcd/internal/engine"
	"bulkgcd/internal/rsakey"
	"bulkgcd/internal/subprod"
)

func weakCorpus(t testing.TB, count, bits, weak int, seed int64) *rsakey.Corpus {
	t.Helper()
	c, err := rsakey.GenerateCorpus(rsakey.CorpusSpec{
		Count: count, Bits: bits, WeakPairs: weak, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func bigModuli(c *rsakey.Corpus) []*big.Int {
	out := make([]*big.Int, len(c.Keys))
	for i, k := range c.Keys {
		out[i] = k.N.ToBig()
	}
	return out
}

func TestProductTree(t *testing.T) {
	ms := []*big.Int{big.NewInt(3), big.NewInt(5), big.NewInt(7), big.NewInt(11), big.NewInt(13)}
	tree, err := NewProductTree(ms)
	if err != nil {
		t.Fatal(err)
	}
	if got := tree.Product().Int64(); got != 3*5*7*11*13 {
		t.Fatalf("product = %d", got)
	}
	// Levels: 5 -> 3 -> 2 -> 1.
	wantLens := []int{5, 3, 2, 1}
	if len(tree.Levels) != len(wantLens) {
		t.Fatalf("depth %d, want %d", len(tree.Levels), len(wantLens))
	}
	for i, w := range wantLens {
		if len(tree.Levels[i]) != w {
			t.Fatalf("level %d has %d nodes, want %d", i, len(tree.Levels[i]), w)
		}
	}
}

func TestProductTreeSingle(t *testing.T) {
	tree, err := NewProductTree([]*big.Int{big.NewInt(42)})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Product().Int64() != 42 || len(tree.Levels) != 1 {
		t.Fatal("single-node tree wrong")
	}
}

func TestProductTreeValidation(t *testing.T) {
	if _, err := NewProductTree(nil); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := NewProductTree([]*big.Int{big.NewInt(0)}); err == nil {
		t.Error("zero accepted")
	}
	if _, err := NewProductTree([]*big.Int{nil}); err == nil {
		t.Error("nil accepted")
	}
}

// TestSharedFactorsAgainstNaive cross-checks the tree computation against
// the direct definition gcd(n_i, prod_{j != i} n_j mod n_i).
func TestSharedFactorsAgainstNaive(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 10; trial++ {
		// Small random odd values with frequent shared factors.
		m := 3 + r.Intn(12)
		ms := make([]*big.Int, m)
		for i := range ms {
			ms[i] = big.NewInt(int64(3+2*r.Intn(5000)) | 1)
		}
		got, err := SharedFactors(ms)
		if err != nil {
			t.Fatal(err)
		}
		for i := range ms {
			rest := big.NewInt(1)
			for j := range ms {
				if j != i {
					rest.Mul(rest, ms[j])
				}
			}
			rest.Mod(rest, ms[i])
			want := new(big.Int).GCD(nil, nil, rest, ms[i])
			if got[i].Cmp(want) != 0 {
				t.Fatalf("trial %d modulus %d: got %v, want %v (inputs %v)", trial, i, got[i], want, ms)
			}
		}
	}
}

// TestSharedFactorsRSA: the fastgcd use case - shared primes pop out,
// everything else reports 1.
func TestSharedFactorsRSA(t *testing.T) {
	c := weakCorpus(t, 16, 128, 3, 2)
	gs, err := SharedFactors(bigModuli(c))
	if err != nil {
		t.Fatal(err)
	}
	weak := map[int]*big.Int{}
	for _, pp := range c.Planted {
		weak[pp.I] = pp.P
		weak[pp.J] = pp.P
	}
	for i, g := range gs {
		if p, isWeak := weak[i]; isWeak {
			if g.Cmp(p) != 0 {
				t.Errorf("modulus %d: g = %v, want planted prime", i, g)
			}
		} else if g.Cmp(big.NewInt(1)) != 0 {
			t.Errorf("clean modulus %d: g = %v, want 1", i, g)
		}
	}
}

// TestRunResolvesDuplicates: identical moduli give g_i = n_i; Run must
// resolve them as duplicates, not factors.
func TestRunResolvesDuplicates(t *testing.T) {
	c := weakCorpus(t, 5, 128, 0, 3)
	ms := bigModuli(c)
	ms = append(ms, new(big.Int).Set(ms[2]))
	findings, err := Run(ms)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 2 {
		t.Fatalf("got %d findings, want 2 (both duplicates)", len(findings))
	}
	for _, f := range findings {
		if f.DuplicateOf < 0 {
			t.Errorf("finding %d not marked duplicate", f.Index)
		}
		if f.Factor.Cmp(ms[f.Index]) != 0 {
			t.Errorf("duplicate finding %d has a proper factor", f.Index)
		}
	}
}

// TestRunResolvesDoublySharedModulus: a modulus both of whose primes are
// shared with different keys has g_i = n_i; Run must still extract a
// proper factor via the resolution pass.
func TestRunResolvesDoublySharedModulus(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	p := nextPrime(t, r, 64)
	q := nextPrime(t, r, 64)
	a := nextPrime(t, r, 64)
	b := nextPrime(t, r, 64)
	ms := []*big.Int{
		new(big.Int).Mul(p, q), // victim: both primes shared
		new(big.Int).Mul(p, a),
		new(big.Int).Mul(q, b),
		new(big.Int).Mul(nextPrime(t, r, 64), nextPrime(t, r, 64)),
	}
	findings, err := Run(ms)
	if err != nil {
		t.Fatal(err)
	}
	byIdx := map[int]Finding{}
	for _, f := range findings {
		byIdx[f.Index] = f
	}
	for _, idx := range []int{0, 1, 2} {
		f, ok := byIdx[idx]
		if !ok {
			t.Fatalf("modulus %d not flagged", idx)
		}
		if f.Factor.Cmp(big.NewInt(1)) <= 0 || f.Factor.Cmp(ms[idx]) >= 0 {
			t.Fatalf("modulus %d: factor %v not proper", idx, f.Factor)
		}
		if new(big.Int).Mod(ms[idx], f.Factor).Sign() != 0 {
			t.Fatalf("modulus %d: factor does not divide", idx)
		}
	}
	if _, ok := byIdx[3]; ok {
		t.Fatal("clean modulus flagged")
	}
}

func nextPrime(t *testing.T, r *rand.Rand, bits int) *big.Int {
	t.Helper()
	return rsakey.GeneratePrime(r, bits)
}

// TestRunCleanCorpus: nothing flagged when nothing shared.
func TestRunCleanCorpus(t *testing.T) {
	c := weakCorpus(t, 12, 128, 0, 5)
	findings, err := Run(bigModuli(c))
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Fatalf("clean corpus produced %d findings", len(findings))
	}
}

// TestRunMatchesAllPairsOnWeakCorpus: both attack engines flag the same
// set of moduli with the same factors.
func TestRunMatchesAllPairsOnWeakCorpus(t *testing.T) {
	c := weakCorpus(t, 20, 128, 4, 6)
	findings, err := Run(bigModuli(c))
	if err != nil {
		t.Fatal(err)
	}
	want := map[int]*big.Int{}
	for _, pp := range c.Planted {
		want[pp.I] = pp.P
		want[pp.J] = pp.P
	}
	if len(findings) != len(want) {
		t.Fatalf("flagged %d moduli, want %d", len(findings), len(want))
	}
	for _, f := range findings {
		p, ok := want[f.Index]
		if !ok {
			t.Fatalf("unexpected finding at %d", f.Index)
		}
		if f.Factor.Cmp(p) != 0 {
			t.Fatalf("modulus %d: factor mismatch", f.Index)
		}
	}
}

// TestRunConfigWorkersIdentical: the Finding list is byte-identical for
// every pool size on a 1k-moduli corpus with planted shared primes and
// duplicated moduli — the contract that lets the attack pipeline default
// to the parallel path.
func TestRunConfigWorkersIdentical(t *testing.T) {
	c, err := rsakey.GenerateCorpus(rsakey.CorpusSpec{
		Count: 1000, Bits: 512, WeakPairs: 20, Seed: 7, Pseudo: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	ms := bigModuli(c)
	ms = append(ms, new(big.Int).Set(ms[10]), new(big.Int).Set(ms[11]), new(big.Int).Set(ms[10]))

	base, err := RunConfig(ms, Config{Config: engine.Config{Workers: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if len(base) == 0 {
		t.Fatal("corpus with planted pairs produced no findings")
	}
	for _, w := range []int{2, 4, 8} {
		got, err := RunConfig(ms, Config{Config: engine.Config{Workers: w}})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(base) {
			t.Fatalf("workers=%d: %d findings, workers=1 has %d", w, len(got), len(base))
		}
		for i := range got {
			g, b := got[i], base[i]
			if g.Index != b.Index || g.DuplicateOf != b.DuplicateOf || g.Factor.Cmp(b.Factor) != 0 {
				t.Fatalf("workers=%d: finding %d differs: %+v vs %+v", w, i, g, b)
			}
		}
	}
}

// TestRunConfigProgress: the progress callback counts every tree
// operation exactly once and ends at the advertised total.
func TestRunConfigProgress(t *testing.T) {
	c := weakCorpus(t, 33, 128, 2, 8) // odd count exercises promoted nodes
	ms := bigModuli(c)
	for _, w := range []int{1, 4} {
		var mu sync.Mutex
		var calls int64
		var lastTotal, maxDone int64
		cfg := Config{Config: engine.Config{Workers: w, Progress: func(done, total int64) {
			mu.Lock()
			defer mu.Unlock()
			calls++
			lastTotal = total
			if done > maxDone {
				maxDone = done
			}
		}}}
		if _, err := RunConfig(ms, cfg); err != nil {
			t.Fatal(err)
		}
		mults, reductions, leaves := treeUnits(len(ms))
		want := mults + reductions + leaves
		if lastTotal != want {
			t.Fatalf("workers=%d: total = %d, want %d", w, lastTotal, want)
		}
		if calls != want || maxDone != want {
			t.Fatalf("workers=%d: %d calls reaching %d, want %d", w, calls, maxDone, want)
		}
	}
}

func BenchmarkBatchGCD128x512(b *testing.B) {
	c, err := rsakey.GenerateCorpus(rsakey.CorpusSpec{Count: 128, Bits: 512, Seed: 1, Pseudo: true})
	if err != nil {
		b.Fatal(err)
	}
	ms := make([]*big.Int, len(c.Keys))
	for i, k := range c.Keys {
		ms[i] = k.N.ToBig()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SharedFactors(ms); err != nil {
			b.Fatal(err)
		}
	}
}

// TestBatchGCDTreeBackends is the backend differential gate of the
// subquadratic-multiplication PR: the Finding list must be
// byte-identical whether the product and remainder trees run on
// math/big or on the packed-word mpnat path, serial and parallel, on a
// corpus with planted shared primes and duplicates. The progress
// accounting must be identical too — the unit totals are a documented
// part of the Config contract.
func TestBatchGCDTreeBackends(t *testing.T) {
	c, err := rsakey.GenerateCorpus(rsakey.CorpusSpec{
		Count: 301, Bits: 256, WeakPairs: 6, Seed: 12, Pseudo: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	ms := bigModuli(c) // odd count exercises promoted nodes on both paths
	ms = append(ms, new(big.Int).Set(ms[3]), new(big.Int).Set(ms[4]))

	progress := func(n *int64) func(done, total int64) {
		var mu sync.Mutex
		return func(done, total int64) { mu.Lock(); *n++; mu.Unlock() }
	}
	var bigTicks int64
	base, err := RunConfig(ms, Config{
		Config: engine.Config{Workers: 1, Progress: progress(&bigTicks)},
		Tree:   subprod.BackendBig,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(base) == 0 {
		t.Fatal("corpus with planted pairs produced no findings")
	}
	for _, w := range []int{1, 3, 8} {
		var natTicks int64
		got, err := RunConfig(ms, Config{
			Config: engine.Config{Workers: w, Progress: progress(&natTicks)},
			Tree:   subprod.BackendNat,
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(base) {
			t.Fatalf("nat workers=%d: %d findings, big backend has %d", w, len(got), len(base))
		}
		for i := range got {
			g, b := got[i], base[i]
			if g.Index != b.Index || g.DuplicateOf != b.DuplicateOf || g.Factor.Cmp(b.Factor) != 0 {
				t.Fatalf("nat workers=%d: finding %d differs: %+v vs %+v", w, i, g, b)
			}
		}
		if w == 1 && natTicks != bigTicks {
			t.Fatalf("progress ticks differ across backends: big %d, nat %d", bigTicks, natTicks)
		}
	}
}

// TestSharedFactorsTreeBackends pins the backend equivalence one layer
// down: the per-modulus g_i vector itself, not just the resolved
// findings.
func TestSharedFactorsTreeBackends(t *testing.T) {
	c := weakCorpus(t, 64, 128, 3, 13)
	ms := bigModuli(c)
	want, err := SharedFactorsConfig(ms, Config{Tree: subprod.BackendBig})
	if err != nil {
		t.Fatal(err)
	}
	got, err := SharedFactorsConfig(ms, Config{Tree: subprod.BackendNat})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if want[i].Cmp(got[i]) != 0 {
			t.Fatalf("g_%d differs: big %v, nat %v", i, want[i], got[i])
		}
	}
}
