// Package gpusim composes the repository's two device models - the UMM
// global-memory model of Section VI (coalescing, address groups, latency)
// and the SIMT execution model of Section VII (warp-serialized branch
// bodies) - into one simulated GPU, so that a bulk GCD kernel can be
// costed end to end the way the paper's CUDA device executes it.
//
// # Model
//
// A Device has S streaming multiprocessors. Thread blocks of the kernel
// are assigned to SMs round-robin (the paper's grid of (m/r)^2 blocks).
// Every block is split into warps of WarpSize threads. For each warp the
// simulator derives, from the real per-thread iteration traces:
//
//   - compute cycles: the SIMT-serialized branch-body cost (package simt);
//   - memory transactions: the number of (warp, address-group) pairs its
//     word accesses occupy in column-wise layout (package umm/bulk);
//   - memory rounds: the number of dependent memory steps.
//
// An SM interleaves ResidentWarps warps to hide memory latency. Its
// execution time is the throughput maximum of the three resources:
//
//	smTime = max( sumCompute,                 // ALU bound
//	              sumTransactions,            // memory bandwidth bound
//	              sumRounds * l / Resident )  // latency bound
//
// and the device time is the maximum over SMs (SMs run concurrently).
// This is a standard roofline treatment; the paper's observation that
// "time for these operations [is] hidden by large memory access latency"
// corresponds to the latency/bandwidth terms dominating the compute term.
package gpusim

import (
	"fmt"

	"bulkgcd/internal/bulk"
	"bulkgcd/internal/gcd"
	"bulkgcd/internal/mpnat"
	"bulkgcd/internal/simt"
	"bulkgcd/internal/umm"
)

// Device describes the simulated GPU.
type Device struct {
	// SMs is the number of streaming multiprocessors (GTX 780 Ti: 15).
	SMs int
	// WarpSize is the SIMT width (CUDA: 32).
	WarpSize int
	// MemWidth is the UMM address-group width (words per transaction).
	MemWidth int
	// MemLatency is the UMM pipeline latency l in cycles.
	MemLatency int
	// ResidentWarps is the number of warps an SM interleaves to hide
	// latency (occupancy).
	ResidentWarps int
	// ClockGHz converts cycles to time.
	ClockGHz float64
	// BranchOverhead is the fixed per-branch-body dispatch cost.
	BranchOverhead int64
}

// GTX780Ti returns a device parameterization inspired by the paper's
// hardware: 15 SMX, warps of 32, ~0.9 GHz, deep memory pipeline.
func GTX780Ti() *Device {
	return &Device{
		SMs: 15, WarpSize: 32, MemWidth: 32, MemLatency: 400,
		ResidentWarps: 32, ClockGHz: 0.928, BranchOverhead: 4,
	}
}

// validate checks the configuration.
func (d *Device) validate() error {
	switch {
	case d.SMs < 1:
		return fmt.Errorf("gpusim: SMs %d < 1", d.SMs)
	case d.WarpSize < 1:
		return fmt.Errorf("gpusim: warp size %d < 1", d.WarpSize)
	case d.MemWidth < 1:
		return fmt.Errorf("gpusim: memory width %d < 1", d.MemWidth)
	case d.MemLatency < 1:
		return fmt.Errorf("gpusim: memory latency %d < 1", d.MemLatency)
	case d.ResidentWarps < 1:
		return fmt.Errorf("gpusim: resident warps %d < 1", d.ResidentWarps)
	case d.ClockGHz <= 0:
		return fmt.Errorf("gpusim: clock %v <= 0", d.ClockGHz)
	}
	return nil
}

// Bound names the resource that limited the simulated execution.
type Bound string

// The three roofline resources.
const (
	ComputeBound Bound = "compute"
	MemoryBound  Bound = "memory"
	LatencyBound Bound = "latency"
)

// Report is the outcome of a simulated kernel execution.
type Report struct {
	// Cycles is the device execution time in cycles (max over SMs).
	Cycles int64
	// Seconds is Cycles at the device clock.
	Seconds float64
	// PerGCDMicros is microseconds per GCD at full device throughput.
	PerGCDMicros float64
	// BoundedBy names the dominating resource of the slowest SM.
	BoundedBy Bound
	// ComputeCycles, MemTransactions, MemRounds are device-wide totals.
	ComputeCycles   int64
	MemTransactions int64
	MemRounds       int64
	// DivergencePenalty is the SIMT penalty over all warps.
	DivergencePenalty float64
	// GCDs is the number of thread GCDs simulated.
	GCDs int
}

// SimulateBulkGCD runs one GCD per thread (thread j computes
// gcd(xs[j], ys[j])) through the device model, with threads grouped into
// blocks of blockSize (the paper's r = 64).
func (d *Device) SimulateBulkGCD(alg gcd.Algorithm, xs, ys []*mpnat.Nat, early bool, blockSize int) (*Report, error) {
	if err := d.validate(); err != nil {
		return nil, err
	}
	if len(xs) == 0 || len(xs) != len(ys) {
		return nil, fmt.Errorf("gpusim: need equal non-empty operand slices")
	}
	if blockSize <= 0 {
		blockSize = 64
	}
	maxBits := 0
	for i := range xs {
		if err := gcd.Validate(xs[i], ys[i]); err != nil {
			return nil, fmt.Errorf("gpusim: thread %d: %w", i, err)
		}
		for _, v := range []*mpnat.Nat{xs[i], ys[i]} {
			if b := v.BitLen(); b > maxBits {
				maxBits = b
			}
		}
	}
	words := (maxBits + 31) / 32

	// Record the real traces.
	scratch := gcd.NewScratch(maxBits)
	traces := make([][]gcd.IterShape, len(xs))
	for j := range xs {
		opt := gcd.Options{RecordShapes: true}
		if early {
			s := xs[j].BitLen()
			if yb := ys[j].BitLen(); yb < s {
				s = yb
			}
			opt.EarlyBits = s / 2
		}
		_, st := scratch.Compute(alg, xs[j], ys[j], opt)
		traces[j] = st.Shapes
	}
	return d.simulateTraces(traces, words, blockSize)
}

// simulateTraces runs the device model over recorded traces.
func (d *Device) simulateTraces(traces [][]gcd.IterShape, words, blockSize int) (*Report, error) {
	simtM, err := simt.New(d.WarpSize, d.BranchOverhead)
	if err != nil {
		return nil, err
	}
	memM, err := umm.New(d.MemWidth, 1) // latency accounted in the roofline
	if err != nil {
		return nil, err
	}

	type smLoad struct {
		compute int64
		groups  int64
		rounds  int64
	}
	sms := make([]smLoad, d.SMs)
	rep := &Report{GCDs: len(traces)}
	var idealCycles int64

	blockIdx := 0
	for base := 0; base < len(traces); base += blockSize {
		end := base + blockSize
		if end > len(traces) {
			end = len(traces)
		}
		sm := &sms[blockIdx%d.SMs]
		blockIdx++
		// Split the block into warps; warps within a block share the SM.
		for wb := base; wb < end; wb += d.WarpSize {
			we := wb + d.WarpSize
			if we > end {
				we = end
			}
			warp := traces[wb:we]

			cres := simtM.Run(warp)
			sm.compute += cres.Cycles
			idealCycles += cres.IdealCycles
			rep.ComputeCycles += cres.Cycles

			// Memory: replay the warp's word accesses column-wise. The
			// warp's threads index the arena locally (p = warp size), as
			// each block's arenas are contiguous per the paper's layout.
			progs := make([]umm.Program, len(warp))
			for t := range warp {
				progs[t] = bulk.ShapeProgram(warp[t], len(warp), t, words)
			}
			mres := memM.Run(progs)
			sm.groups += mres.Groups
			sm.rounds += mres.Rounds
			rep.MemTransactions += mres.Groups
			rep.MemRounds += mres.Rounds
		}
	}

	// Roofline per SM; device time is the slowest SM.
	for _, sm := range sms {
		lat := sm.rounds * int64(d.MemLatency) / int64(d.ResidentWarps)
		t := sm.compute
		b := ComputeBound
		if sm.groups > t {
			t = sm.groups
			b = MemoryBound
		}
		if lat > t {
			t = lat
			b = LatencyBound
		}
		if t > rep.Cycles {
			rep.Cycles = t
			rep.BoundedBy = b
		}
	}
	rep.Seconds = float64(rep.Cycles) / (d.ClockGHz * 1e9)
	rep.PerGCDMicros = rep.Seconds * 1e6 / float64(len(traces))
	if idealCycles > 0 {
		rep.DivergencePenalty = float64(rep.ComputeCycles) / float64(idealCycles)
	}
	return rep, nil
}

// Device presets for the GPUs of the paper's related-work comparison
// (Section I). Architectural differences beyond SM count, clock and
// occupancy are not modelled; the presets exist to reproduce the
// comparison's ordering, not its absolute figures.

// GTX285 approximates Fujimoto's device [19]: 30 pre-Fermi SMs at a
// 1.476 GHz shader clock with little latency-hiding capacity.
func GTX285() *Device {
	return &Device{
		SMs: 30, WarpSize: 32, MemWidth: 16, MemLatency: 500,
		ResidentWarps: 8, ClockGHz: 1.476, BranchOverhead: 8,
	}
}

// GTX480 approximates Scharfglass et al.'s device [20]: 15 Fermi SMs at
// 1.401 GHz.
func GTX480() *Device {
	return &Device{
		SMs: 15, WarpSize: 32, MemWidth: 32, MemLatency: 450,
		ResidentWarps: 16, ClockGHz: 1.401, BranchOverhead: 6,
	}
}

// TeslaK20Xm approximates White's device [21]: 14 Kepler SMX at 0.732 GHz
// with high occupancy.
func TeslaK20Xm() *Device {
	return &Device{
		SMs: 14, WarpSize: 32, MemWidth: 32, MemLatency: 400,
		ResidentWarps: 32, ClockGHz: 0.732, BranchOverhead: 4,
	}
}
