package gpusim

import (
	"math/big"
	"math/rand"
	"testing"

	"bulkgcd/internal/gcd"
	"bulkgcd/internal/mpnat"
)

func randOddNat(r *rand.Rand, bits int) *mpnat.Nat {
	v := new(big.Int)
	for v.BitLen() < bits {
		v.Lsh(v, 32)
		v.Or(v, new(big.Int).SetUint64(uint64(r.Uint32())))
	}
	v.Rsh(v, uint(v.BitLen()-bits))
	v.SetBit(v, bits-1, 1)
	v.SetBit(v, 0, 1)
	return mpnat.FromBig(v)
}

func pairs(r *rand.Rand, p, bits int) ([]*mpnat.Nat, []*mpnat.Nat) {
	xs := make([]*mpnat.Nat, p)
	ys := make([]*mpnat.Nat, p)
	for i := range xs {
		xs[i] = randOddNat(r, bits)
		ys[i] = randOddNat(r, bits)
	}
	return xs, ys
}

func TestValidate(t *testing.T) {
	bad := []*Device{
		{SMs: 0, WarpSize: 32, MemWidth: 32, MemLatency: 1, ResidentWarps: 1, ClockGHz: 1},
		{SMs: 1, WarpSize: 0, MemWidth: 32, MemLatency: 1, ResidentWarps: 1, ClockGHz: 1},
		{SMs: 1, WarpSize: 32, MemWidth: 0, MemLatency: 1, ResidentWarps: 1, ClockGHz: 1},
		{SMs: 1, WarpSize: 32, MemWidth: 32, MemLatency: 0, ResidentWarps: 1, ClockGHz: 1},
		{SMs: 1, WarpSize: 32, MemWidth: 32, MemLatency: 1, ResidentWarps: 0, ClockGHz: 1},
		{SMs: 1, WarpSize: 32, MemWidth: 32, MemLatency: 1, ResidentWarps: 1, ClockGHz: 0},
	}
	r := rand.New(rand.NewSource(1))
	xs, ys := pairs(r, 4, 64)
	for i, d := range bad {
		if _, err := d.SimulateBulkGCD(gcd.Approximate, xs, ys, false, 4); err == nil {
			t.Errorf("bad device %d accepted", i)
		}
	}
	if _, err := GTX780Ti().SimulateBulkGCD(gcd.Approximate, nil, nil, false, 4); err == nil {
		t.Error("empty workload accepted")
	}
	if _, err := GTX780Ti().SimulateBulkGCD(gcd.Approximate,
		[]*mpnat.Nat{mpnat.New(4)}, []*mpnat.Nat{mpnat.New(3)}, false, 4); err == nil {
		t.Error("even operand accepted")
	}
}

// TestAlgorithmRanking: the integrated device preserves Table V's GPU
// ranking (E) < (D) < (C) on per-GCD time.
func TestAlgorithmRanking(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	xs, ys := pairs(r, 128, 512)
	d := GTX780Ti()
	times := map[gcd.Algorithm]float64{}
	for _, alg := range []gcd.Algorithm{gcd.Binary, gcd.FastBinary, gcd.Approximate} {
		rep, err := d.SimulateBulkGCD(alg, xs, ys, true, 64)
		if err != nil {
			t.Fatal(err)
		}
		if rep.PerGCDMicros <= 0 || rep.Cycles <= 0 {
			t.Fatalf("%v: degenerate report %+v", alg, rep)
		}
		times[alg] = rep.PerGCDMicros
	}
	if !(times[gcd.Approximate] < times[gcd.FastBinary] && times[gcd.FastBinary] < times[gcd.Binary]) {
		t.Fatalf("ranking violated: E=%.3f D=%.3f C=%.3f",
			times[gcd.Approximate], times[gcd.FastBinary], times[gcd.Binary])
	}
	// The C/E gap must exceed the iteration ratio alone (divergence +
	// memory), the paper's Table V signature.
	if ratio := times[gcd.Binary] / times[gcd.Approximate]; ratio < 3.5 {
		t.Errorf("C/E device ratio %.2f, want > 3.5", ratio)
	}
}

// TestDivergenceShowsUp: Binary's compute cycles carry a divergence
// penalty; Approximate's do not.
func TestDivergenceShowsUp(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	xs, ys := pairs(r, 64, 512)
	d := GTX780Ti()
	binRep, err := d.SimulateBulkGCD(gcd.Binary, xs, ys, true, 64)
	if err != nil {
		t.Fatal(err)
	}
	apxRep, err := d.SimulateBulkGCD(gcd.Approximate, xs, ys, true, 64)
	if err != nil {
		t.Fatal(err)
	}
	if binRep.DivergencePenalty < 1.5 {
		t.Errorf("Binary divergence penalty %.2f, want > 1.5", binRep.DivergencePenalty)
	}
	if apxRep.DivergencePenalty > 1.01 {
		t.Errorf("Approximate divergence penalty %.2f, want ~1", apxRep.DivergencePenalty)
	}
}

// TestLatencyBoundAtLowOccupancy: with one resident warp and a deep
// pipeline, the latency term must dominate; raising occupancy removes it.
func TestLatencyBoundAtLowOccupancy(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	xs, ys := pairs(r, 32, 256)
	low := &Device{SMs: 1, WarpSize: 32, MemWidth: 32, MemLatency: 1000,
		ResidentWarps: 1, ClockGHz: 1, BranchOverhead: 4}
	rep, err := low.SimulateBulkGCD(gcd.Approximate, xs, ys, true, 32)
	if err != nil {
		t.Fatal(err)
	}
	if rep.BoundedBy != LatencyBound {
		t.Fatalf("low occupancy bounded by %s, want latency", rep.BoundedBy)
	}
	high := *low
	high.ResidentWarps = 1024
	rep2, err := high.SimulateBulkGCD(gcd.Approximate, xs, ys, true, 32)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.BoundedBy == LatencyBound {
		t.Fatalf("high occupancy still latency bound")
	}
	if rep2.Cycles >= rep.Cycles {
		t.Fatalf("occupancy did not help: %d vs %d", rep2.Cycles, rep.Cycles)
	}
}

// TestMoreSMsFaster: doubling SMs cuts device time roughly in half for a
// many-block workload.
func TestMoreSMsFaster(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	xs, ys := pairs(r, 256, 256)
	small := &Device{SMs: 2, WarpSize: 32, MemWidth: 32, MemLatency: 200,
		ResidentWarps: 16, ClockGHz: 1, BranchOverhead: 4}
	big_ := *small
	big_.SMs = 8
	repS, err := small.SimulateBulkGCD(gcd.Approximate, xs, ys, true, 32)
	if err != nil {
		t.Fatal(err)
	}
	repB, err := big_.SimulateBulkGCD(gcd.Approximate, xs, ys, true, 32)
	if err != nil {
		t.Fatal(err)
	}
	speedup := float64(repS.Cycles) / float64(repB.Cycles)
	if speedup < 3.0 || speedup > 4.5 {
		t.Fatalf("8/2 SM speedup %.2f, want ~4", speedup)
	}
}

// TestEarlyTerminateCheaper on the device too.
func TestEarlyTerminateCheaper(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	xs, ys := pairs(r, 64, 256)
	d := GTX780Ti()
	full, err := d.SimulateBulkGCD(gcd.Approximate, xs, ys, false, 64)
	if err != nil {
		t.Fatal(err)
	}
	early, err := d.SimulateBulkGCD(gcd.Approximate, xs, ys, true, 64)
	if err != nil {
		t.Fatal(err)
	}
	if early.Cycles >= full.Cycles {
		t.Fatalf("early (%d) not cheaper than full (%d)", early.Cycles, full.Cycles)
	}
}

// TestDefaultBlockSize: blockSize <= 0 falls back to the paper's r = 64.
func TestDefaultBlockSize(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	xs, ys := pairs(r, 16, 128)
	d := GTX780Ti()
	rep, err := d.SimulateBulkGCD(gcd.Approximate, xs, ys, true, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.GCDs != 16 {
		t.Fatalf("GCDs = %d", rep.GCDs)
	}
}
