package mpnat

import (
	"math/big"
	"math/rand"
	"testing"
)

func TestNewMontgomeryValidation(t *testing.T) {
	if _, err := NewMontgomery(New(0)); err == nil {
		t.Error("zero modulus accepted")
	}
	if _, err := NewMontgomery(New(1)); err == nil {
		t.Error("modulus 1 accepted")
	}
	if _, err := NewMontgomery(New(100)); err == nil {
		t.Error("even modulus accepted")
	}
	if _, err := NewMontgomery(New(97)); err != nil {
		t.Errorf("valid modulus rejected: %v", err)
	}
}

func TestNegInvWord(t *testing.T) {
	for _, v := range []uint32{1, 3, 5, 0xFFFFFFFF, 0x12345679, 0xDEADBEEF | 1} {
		inv := negInvWord(v)
		// Defining property: v * inv == -1 mod 2^32.
		if v*inv != 0xFFFFFFFF {
			t.Errorf("negInvWord(%#x) = %#x: v*inv = %#x, want 0xffffffff", v, inv, v*inv)
		}
	}
}

func TestMontgomeryModExpAgainstBig(t *testing.T) {
	r := rand.New(rand.NewSource(30))
	for i := 0; i < 150; i++ {
		mod := randBig(r, 2+r.Intn(512))
		mod.SetBit(mod, 0, 1) // odd
		if mod.Cmp(big.NewInt(3)) < 0 {
			continue
		}
		mg, err := NewMontgomery(FromBig(mod))
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < 3; k++ {
			base := randBig(r, 1+r.Intn(600)) // may exceed the modulus
			exp := randBig(r, 1+r.Intn(128))
			got := mg.ModExp(FromBig(base), FromBig(exp))
			want := new(big.Int).Exp(base, exp, mod)
			if got.ToBig().Cmp(want) != 0 {
				t.Fatalf("Montgomery ModExp(%v,%v,%v) = %v, want %v", base, exp, mod, got, want)
			}
		}
	}
}

func TestMontgomeryMatchesPlainModExp(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for i := 0; i < 40; i++ {
		mod := FromBig(randBig(r, 256))
		if mod.IsEven() {
			mb := mod.ToBig()
			mb.SetBit(mb, 0, 1)
			mod = FromBig(mb)
		}
		mg, err := NewMontgomery(mod)
		if err != nil {
			t.Fatal(err)
		}
		base := FromBig(randBig(r, 256))
		exp := FromBig(randBig(r, 64))
		a := mg.ModExp(base, exp)
		b := new(Nat).ModExp(base, exp, mod)
		if a.Cmp(b) != 0 {
			t.Fatalf("Montgomery %v != plain %v", a, b)
		}
	}
}

func TestMontgomeryEdges(t *testing.T) {
	mg, err := NewMontgomery(New(97))
	if err != nil {
		t.Fatal(err)
	}
	if got := mg.ModExp(New(5), New(0)); !got.IsOne() {
		t.Fatalf("x^0 = %v", got)
	}
	if got := mg.ModExp(New(0), New(5)); !got.IsZero() {
		t.Fatalf("0^x = %v", got)
	}
	if got := mg.ModExp(New(12345), New(96)); !got.IsOne() {
		t.Fatalf("Fermat failed: %v", got)
	}
	// Single-word and word-boundary moduli.
	for _, m := range []uint64{3, 0xFFFFFFFF, 0x100000001, 0xFFFFFFFFFFFFFFFF} {
		mg, err := NewMontgomery(New(m))
		if err != nil {
			t.Fatal(err)
		}
		got := mg.ModExp(New(0xABCDEF), New(31))
		want := new(big.Int).Exp(big.NewInt(0xABCDEF), big.NewInt(31), new(big.Int).SetUint64(m))
		if got.ToBig().Cmp(want) != 0 {
			t.Fatalf("m=%#x: got %v want %v", m, got, want)
		}
	}
}

// TestMontgomeryRSA: a full textbook RSA cycle through Montgomery.
func TestMontgomeryRSA(t *testing.T) {
	r := rand.New(rand.NewSource(32))
	p := FromBig(randBig(r, 128))
	// Use the repository's own helpers to build a semiprime directly.
	pb := p.ToBig()
	pb.SetBit(pb, 0, 1)
	for !pb.ProbablyPrime(20) {
		pb.Add(pb, big.NewInt(2))
	}
	qb := new(big.Int).Add(pb, big.NewInt(1000))
	qb.SetBit(qb, 0, 1)
	for !qb.ProbablyPrime(20) {
		qb.Add(qb, big.NewInt(2))
	}
	n := new(big.Int).Mul(pb, qb)
	phi := new(big.Int).Mul(new(big.Int).Sub(pb, big.NewInt(1)), new(big.Int).Sub(qb, big.NewInt(1)))
	e := big.NewInt(65537)
	d := new(big.Int).ModInverse(e, phi)
	if d == nil {
		t.Skip("e divides phi for this seed")
	}
	mg, err := NewMontgomery(FromBig(n))
	if err != nil {
		t.Fatal(err)
	}
	msg := FromBig(big.NewInt(0xC0FFEE))
	ct := mg.ModExp(msg, FromBig(e))
	pt := mg.ModExp(ct, FromBig(d))
	if pt.Cmp(msg) != 0 {
		t.Fatalf("RSA round trip failed: %v != %v", pt, msg)
	}
}

func BenchmarkMontgomeryModExp512(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	mod := randBig(r, 512)
	mod.SetBit(mod, 0, 1)
	mg, err := NewMontgomery(FromBig(mod))
	if err != nil {
		b.Fatal(err)
	}
	base := FromBig(randBig(r, 512))
	exp := FromBig(randBig(r, 512))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mg.ModExp(base, exp)
	}
}
