package mpnat

import "bulkgcd/internal/word"

// Montgomery arithmetic for odd moduli: the production modular
// exponentiation of the RSA substrate. Plain ModExp reduces with a full
// division after every multiply; Montgomery multiplication replaces the
// division by word-level shifts (one extra multiply-accumulate pass per
// word), the standard CIOS construction. RSA moduli are odd, so the
// attack's encrypt/decrypt/recover paths can always use it.

// Montgomery holds the precomputed context for a fixed odd modulus.
type Montgomery struct {
	m   []uint32 // modulus words, little-endian, n words
	n   int      // word count
	inv uint32   // -m^-1 mod 2^32
	r2  *Nat     // R^2 mod m, R = 2^(32n)
	one *Nat     // R mod m (the Montgomery form of 1)
}

// NewMontgomery prepares a context for the odd modulus m > 1.
func NewMontgomery(m *Nat) (*Montgomery, error) {
	if m.IsZero() || m.IsOne() {
		return nil, errString("mpnat: Montgomery modulus must be > 1")
	}
	if m.IsEven() {
		return nil, errString("mpnat: Montgomery modulus must be odd")
	}
	mg := &Montgomery{
		m: append([]uint32(nil), m.Words()...),
		n: m.Len(),
	}
	mg.inv = negInvWord(mg.m[0])
	// R mod m and R^2 mod m via the generic division (setup only).
	r := new(Nat).Lshift(New(1), 32*mg.n)
	mod := &Nat{w: mg.m}
	mg.one = new(Nat).Mod(r, mod)
	r2 := new(Nat).Mul(mg.one, mg.one)
	mg.r2 = r2.Mod(r2, mod)
	return mg, nil
}

// errString is a tiny error type to avoid importing fmt on this hot-path
// file.
type errString string

func (e errString) Error() string { return string(e) }

// negInvWord computes -v^-1 mod 2^32 for odd v by Newton iteration.
func negInvWord(v uint32) uint32 {
	x := v // correct mod 2^3
	for i := 0; i < 4; i++ {
		x *= 2 - v*x // doubles the number of correct bits
	}
	return -x
}

// mul computes dst = a * b * R^-1 mod m (CIOS). a and b must be in
// Montgomery form with exactly n significant words of storage (shorter
// values are treated as zero-padded). dst must have capacity n and not
// alias a or b.
func (mg *Montgomery) mul(dst, a, b []uint32) {
	n := mg.n
	t := make([]uint32, n+2)
	for i := 0; i < n; i++ {
		ai := uint32(0)
		if i < len(a) {
			ai = a[i]
		}
		// t += ai * b
		var carry uint32
		for j := 0; j < n; j++ {
			bj := uint32(0)
			if j < len(b) {
				bj = b[j]
			}
			hi, lo := word.MulAdd(ai, bj, t[j], carry)
			t[j] = lo
			carry = hi
		}
		var c2 uint32
		t[n], c2 = word.Add32(t[n], carry, 0)
		t[n+1] += c2

		// u = t[0] * inv mod 2^32; t += u*m; t >>= 32 (one word)
		u := t[0] * mg.inv
		hi, _ := word.MulAdd(u, mg.m[0], t[0], 0) // low word becomes 0
		carry = hi
		for j := 1; j < n; j++ {
			hi, lo := word.MulAdd(u, mg.m[j], t[j], carry)
			t[j-1] = lo
			carry = hi
		}
		t[n-1], c2 = word.Add32(t[n], carry, 0)
		t[n] = t[n+1] + c2
		t[n+1] = 0
	}
	// Conditional subtraction: t may be in [0, 2m).
	if t[n] != 0 || geWords(t[:n], mg.m) {
		var borrow uint32
		for j := 0; j < n; j++ {
			t[j], borrow = word.Sub32(t[j], mg.m[j], borrow)
		}
		// borrow absorbs t[n] when it was 1
	}
	copy(dst, t[:n])
}

// geWords reports a >= b for equal-length little-endian word slices.
func geWords(a, b []uint32) bool {
	for i := len(a) - 1; i >= 0; i-- {
		switch {
		case a[i] > b[i]:
			return true
		case a[i] < b[i]:
			return false
		}
	}
	return true
}

// ModExp returns base^exp mod m using Montgomery multiplication.
func (mg *Montgomery) ModExp(base, exp *Nat) *Nat {
	mod := &Nat{w: mg.m}
	b := new(Nat).Mod(base, mod)
	// Convert to Montgomery form: bR = mont(b, R^2).
	bw := make([]uint32, mg.n)
	mg.mul(bw, b.w, mg.r2.w)
	// acc = 1 in Montgomery form (R mod m).
	acc := make([]uint32, mg.n)
	copy(acc, mg.one.w)
	tmp := make([]uint32, mg.n)
	for i := exp.BitLen() - 1; i >= 0; i-- {
		mg.mul(tmp, acc, acc)
		acc, tmp = tmp, acc
		if exp.Bit(i) == 1 {
			mg.mul(tmp, acc, bw)
			acc, tmp = tmp, acc
		}
	}
	// Convert out of Montgomery form: mont(acc, 1).
	one := []uint32{1}
	mg.mul(tmp, acc, one)
	out := &Nat{w: append([]uint32(nil), tmp...)}
	out.norm()
	return out
}
