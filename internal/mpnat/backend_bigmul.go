//go:build mpnat_bigmul

package mpnat

// Building with -tags mpnat_bigmul routes every multiplication whose
// operands both reach DefaultBigMulWords through math/big's assembly
// fast paths (see backend.go). The word-level GCD kernels are
// unaffected — they never multiply — so this is a pure tree-build
// accelerator for very large corpora. SetMulBackend still overrides.
func init() {
	SetMulBackend(BigMulBackend(DefaultBigMulWords))
}
