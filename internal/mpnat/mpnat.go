// Package mpnat implements multiprecision natural numbers stored in 32-bit
// words, together with the fused update operations that the Euclidean
// algorithms of the paper perform on them.
//
// Representation. A Nat stores its magnitude little-endian: word 0 is the
// least significant d-bit word. This matches Figure 1 of the paper read
// right-to-left; the paper's x1 (most significant word) is Words()[Len()-1]
// here. A Nat is always normalized: the top word of a non-zero Nat is
// non-zero, and zero is represented by an empty word slice.
//
// The package deliberately does not depend on math/big for its arithmetic
// (conversions to and from big.Int are provided for tests and I/O only);
// the point of the reproduction is the word-level implementation described
// in Section IV of the paper, including the exact per-iteration memory
// operation counts 3*s/d + O(1).
package mpnat

import (
	"fmt"
	"math/big"
	"math/bits"
	"strconv"

	"bulkgcd/internal/word"
)

// Nat is a multiprecision natural number in base D = 2^32.
// The zero value is the number zero and is ready to use.
type Nat struct {
	w []uint32 // little-endian words, normalized (no trailing high zeros)
}

// New returns a Nat holding the given uint64 value.
func New(v uint64) *Nat {
	n := &Nat{}
	n.SetUint64(v)
	return n
}

// NewFromWords returns a Nat from little-endian words, copying and
// normalizing the slice.
func NewFromWords(ws []uint32) *Nat {
	n := &Nat{w: append([]uint32(nil), ws...)}
	n.norm()
	return n
}

// norm strips leading (most significant) zero words.
func (n *Nat) norm() {
	i := len(n.w)
	for i > 0 && n.w[i-1] == 0 {
		i--
	}
	n.w = n.w[:i]
}

// Len returns l_X, the number of significant d-bit words (0 for zero).
func (n *Nat) Len() int { return len(n.w) }

// Words exposes the normalized little-endian word slice. The slice aliases
// the Nat's storage and must not be modified by callers.
func (n *Nat) Words() []uint32 { return n.w }

// IsZero reports whether n == 0.
func (n *Nat) IsZero() bool { return len(n.w) == 0 }

// IsOne reports whether n == 1.
func (n *Nat) IsOne() bool { return len(n.w) == 1 && n.w[0] == 1 }

// IsEven reports whether n is even. Zero is even.
func (n *Nat) IsEven() bool { return len(n.w) == 0 || n.w[0]&1 == 0 }

// BitLen returns the number of bits in the minimal binary representation
// of n (0 for zero).
func (n *Nat) BitLen() int {
	if len(n.w) == 0 {
		return 0
	}
	return (len(n.w)-1)*word.Bits + word.Len32(n.w[len(n.w)-1])
}

// Bit returns bit i of n (0 or 1). Bits beyond BitLen are zero.
func (n *Nat) Bit(i int) uint {
	wi := i / word.Bits
	if wi >= len(n.w) {
		return 0
	}
	return uint(n.w[wi]>>(i%word.Bits)) & 1
}

// Grow ensures n has storage capacity for at least words words without
// changing its value, so that subsequent operations up to that size do not
// allocate.
func (n *Nat) Grow(words int) *Nat {
	if cap(n.w) < words {
		old := n.w
		n.w = make([]uint32, len(old), words)
		copy(n.w, old)
	}
	return n
}

// Set copies the value of x into n and returns n.
func (n *Nat) Set(x *Nat) *Nat {
	n.w = append(n.w[:0], x.w...)
	return n
}

// SetUint64 sets n to v and returns n.
func (n *Nat) SetUint64(v uint64) *Nat {
	n.w = n.w[:0]
	if lo := uint32(v); lo != 0 || v>>word.Bits != 0 {
		n.w = append(n.w, lo)
	}
	if hi := uint32(v >> word.Bits); hi != 0 {
		n.w = append(n.w, hi)
	}
	return n
}

// Uint64 returns the value of n, which must fit in 64 bits (Len <= 2).
// It panics otherwise; callers guard with Len().
func (n *Nat) Uint64() uint64 {
	switch len(n.w) {
	case 0:
		return 0
	case 1:
		return uint64(n.w[0])
	case 2:
		return word.Join(n.w[1], n.w[0])
	}
	panic(fmt.Sprintf("mpnat: Uint64 on %d-word Nat", len(n.w)))
}

// Clone returns a fresh copy of n with its own storage.
func (n *Nat) Clone() *Nat {
	return &Nat{w: append([]uint32(nil), n.w...)}
}

// SetWords sets n from little-endian words, copying into n's own storage
// (reused when capacity allows) and normalizing. The lane-batched kernel
// uses it to hand back retired results without allocating.
func (n *Nat) SetWords(ws []uint32) *Nat {
	n.w = append(n.w[:0], ws...)
	n.norm()
	return n
}

// Cmp compares n and x, returning -1, 0 or +1. Lengths are compared first
// and only on equal lengths are words inspected from the most significant
// end, exactly the "X < Y" procedure of Section IV.
func (n *Nat) Cmp(x *Nat) int {
	switch {
	case len(n.w) < len(x.w):
		return -1
	case len(n.w) > len(x.w):
		return +1
	}
	for i := len(n.w) - 1; i >= 0; i-- {
		switch {
		case n.w[i] < x.w[i]:
			return -1
		case n.w[i] > x.w[i]:
			return +1
		}
	}
	return 0
}

// Top2 returns the integer <x1 x2> formed by the two most significant words
// of n (just x1 when n has a single word), i.e. the operand of the paper's
// 64-bit approximate division. n must be non-zero.
func (n *Nat) Top2() uint64 {
	l := len(n.w)
	switch {
	case l == 0:
		panic("mpnat: Top2 of zero")
	case l == 1:
		return uint64(n.w[0])
	default:
		return word.Join(n.w[l-1], n.w[l-2])
	}
}

// TopWord returns the most significant word x1 of n. n must be non-zero.
func (n *Nat) TopWord() uint32 {
	if len(n.w) == 0 {
		panic("mpnat: TopWord of zero")
	}
	return n.w[len(n.w)-1]
}

// TrailingZeroBits returns the number of consecutive zero bits at the least
// significant end of n (0 for odd n; 0 for zero by convention).
func (n *Nat) TrailingZeroBits() int {
	for i, w := range n.w {
		if w != 0 {
			return i*word.Bits + word.TrailingZeros32(w)
		}
	}
	return 0
}

// Add sets n = x + y and returns n. Aliasing among n, x, y is allowed.
func (n *Nat) Add(x, y *Nat) *Nat {
	if len(x.w) < len(y.w) {
		x, y = y, x
	}
	out := n.w
	if cap(out) < len(x.w)+1 {
		out = make([]uint32, 0, len(x.w)+1)
	}
	out = out[:len(x.w)]
	var c uint32
	for i := range x.w {
		yi := uint32(0)
		if i < len(y.w) {
			yi = y.w[i]
		}
		// x may alias out; read x.w[i] before the write below.
		out[i], c = word.Add32(x.w[i], yi, c)
	}
	if c != 0 {
		out = append(out, c)
	}
	n.w = out
	n.norm()
	return n
}

// Sub sets n = x - y and returns n. It panics if x < y.
// Aliasing among n, x, y is allowed.
func (n *Nat) Sub(x, y *Nat) *Nat {
	if len(y.w) > len(x.w) {
		panic("mpnat: Sub underflow")
	}
	out := n.w
	if cap(out) < len(x.w) {
		out = make([]uint32, 0, len(x.w))
	}
	out = out[:len(x.w)]
	var b uint32
	for i := range x.w {
		yi := uint32(0)
		if i < len(y.w) {
			yi = y.w[i]
		}
		out[i], b = word.Sub32(x.w[i], yi, b)
	}
	if b != 0 {
		panic("mpnat: Sub underflow")
	}
	n.w = out
	n.norm()
	return n
}

// Rshift sets n = x >> k and returns n. Aliasing n == x is allowed.
func (n *Nat) Rshift(x *Nat, k int) *Nat {
	if k < 0 {
		panic("mpnat: negative shift")
	}
	drop := k / word.Bits
	bit := uint(k % word.Bits)
	if drop >= len(x.w) {
		n.w = n.w[:0]
		return n
	}
	src := x.w[drop:]
	out := n.w
	if cap(out) < len(src) {
		out = make([]uint32, 0, len(src))
	}
	out = out[:len(src)]
	if bit == 0 {
		copy(out, src)
	} else {
		for i := 0; i < len(src); i++ {
			lo := src[i] >> bit
			if i+1 < len(src) {
				lo |= src[i+1] << (uint(word.Bits) - bit)
			}
			out[i] = lo
		}
	}
	n.w = out
	n.norm()
	return n
}

// Lshift sets n = x << k and returns n. Aliasing n == x is allowed.
func (n *Nat) Lshift(x *Nat, k int) *Nat {
	if k < 0 {
		panic("mpnat: negative shift")
	}
	if x.IsZero() {
		n.w = n.w[:0]
		return n
	}
	grow := k / word.Bits
	bit := uint(k % word.Bits)
	oldLen := len(x.w)
	out := make([]uint32, oldLen+grow+1)
	if bit == 0 {
		copy(out[grow:], x.w)
	} else {
		var carry uint32
		for i := 0; i < oldLen; i++ {
			out[grow+i] = x.w[i]<<bit | carry
			carry = x.w[i] >> (uint(word.Bits) - bit)
		}
		out[grow+oldLen] = carry
	}
	n.w = out
	n.norm()
	return n
}

// RshiftStrip sets n = rshift(x): x with all trailing zero bits removed,
// the paper's rshift() function. rshift(0) = 0. Aliasing n == x is allowed.
func (n *Nat) RshiftStrip(x *Nat) *Nat {
	if x.IsZero() {
		n.w = n.w[:0]
		return n
	}
	return n.Rshift(x, x.TrailingZeroBits())
}

// Mod sets n = x mod y and returns n, using schoolbook long division.
// y must be non-zero. This is the costly per-iteration operation of the
// Original Euclidean algorithm (algorithm A); it exists so that the
// baseline is faithfully "modulo computation of large numbers".
func (n *Nat) Mod(x, y *Nat) *Nat {
	_, r := divmod(x, y)
	n.w = r.w
	return n
}

// Div sets n = x div y (floor) and returns n. y must be non-zero.
func (n *Nat) Div(x, y *Nat) *Nat {
	q, _ := divmod(x, y)
	n.w = q.w
	return n
}

// DivMod returns (x div y, x mod y) as fresh Nats. y must be non-zero.
func DivMod(x, y *Nat) (q, r *Nat) {
	return divmod(x, y)
}

// DivScratch carries the working storage of a long division, so that hot
// loops (the per-iteration Mod of the Original Euclidean algorithm, the
// per-iteration DivMod of Fast) run without per-call allocation. A
// DivScratch is not safe for concurrent use; pools hold one per worker.
type DivScratch struct {
	u, v []uint32
	q    Nat // quotient storage for Mod, where the caller discards it
}

// grow resizes a scratch buffer to n words, reusing capacity.
func grow(buf []uint32, n int) []uint32 {
	if cap(buf) < n {
		return make([]uint32, n)
	}
	return buf[:n]
}

// DivMod sets q = x div y and r = x mod y without allocating when q, r
// and the scratch have sufficient capacity. y must be non-zero; q and r
// must not alias each other, x, or y.
func (s *DivScratch) DivMod(q, r, x, y *Nat) {
	divmodInto(q, r, x, y, s)
}

// Mod sets r = x mod y through the scratch; the quotient is discarded.
// y must be non-zero. r may alias x (the dividend is copied into the
// scratch before r is written) but must not alias y.
func (s *DivScratch) Mod(r, x, y *Nat) {
	divmodInto(&s.q, r, x, y, s)
}

// divmodInto is the allocation-free core of divmod: quotient and
// remainder land in the caller's Nats, every intermediate lives in the
// scratch. The algorithm is the same Knuth D as divmod below.
func divmodInto(q, r, x, y *Nat, s *DivScratch) {
	if y.IsZero() {
		panic("mpnat: division by zero")
	}
	if x.Cmp(y) < 0 {
		q.w = q.w[:0]
		r.Set(x)
		return
	}
	if len(y.w) == 1 {
		divmodWordInto(q, r, x, y.w[0])
		return
	}
	shift := word.LeadingZeros32(y.w[len(y.w)-1])
	// u = x << shift with one extra high word; v = y << shift.
	s.u = grow(s.u, len(x.w)+2)
	s.v = grow(s.v, len(y.w)+1)
	uw := lshiftInto(s.u, x.w, shift)
	vw := lshiftInto(s.v, y.w, shift)
	nn := len(vw)
	m := len(uw) - nn
	uw = append(uw, 0)
	s.u = uw[:0]
	q.w = grow(q.w, m+1)
	qw := q.w
	vTop := uint64(vw[nn-1])
	vNext := uint64(vw[nn-2])
	for j := m; j >= 0; j-- {
		num := word.Join(uw[j+nn], uw[j+nn-1])
		qh := num / vTop
		rh := num % vTop
		for qh >= word.Base || qh*vNext > (rh<<word.Bits|uint64(uw[j+nn-2])) {
			qh--
			rh += vTop
			if rh >= word.Base {
				break
			}
		}
		var borrow uint32
		var mulCarry uint32
		for i := 0; i < nn; i++ {
			hi, lo := word.MulAdd(uint32(qh), vw[i], mulCarry, 0)
			uw[j+i], borrow = word.Sub32(uw[j+i], lo, borrow)
			mulCarry = hi
		}
		uw[j+nn], borrow = word.Sub32(uw[j+nn], mulCarry, borrow)
		if borrow != 0 {
			qh--
			var c uint32
			for i := 0; i < nn; i++ {
				uw[j+i], c = word.Add32(uw[j+i], vw[i], c)
			}
			uw[j+nn] += c
		}
		qw[j] = uint32(qh)
	}
	q.w = qw
	q.norm()
	// Remainder: uw[:nn] >> shift, into r without touching uw's backing
	// (r survives the next scratch reuse because Rshift copies).
	var rem Nat
	rem.w = uw[:nn]
	rem.norm()
	r.Rshift(&rem, shift)
}

// lshiftInto writes src << shift into dst (sized len(src)+1) and returns
// the normalized slice. shift < 32.
func lshiftInto(dst, src []uint32, shift int) []uint32 {
	n := len(src)
	dst = dst[:n+1]
	if shift == 0 {
		copy(dst, src)
		dst[n] = 0
	} else {
		var carry uint32
		for i := 0; i < n; i++ {
			dst[i] = src[i]<<shift | carry
			carry = src[i] >> (32 - shift)
		}
		dst[n] = carry
	}
	i := len(dst)
	for i > 0 && dst[i-1] == 0 {
		i--
	}
	return dst[:i]
}

// divmodWordInto divides x by a single non-zero word into q and r.
func divmodWordInto(q, r *Nat, x *Nat, y uint32) {
	q.w = grow(q.w, len(x.w))
	var rem uint64
	for i := len(x.w) - 1; i >= 0; i-- {
		cur := rem<<word.Bits | uint64(x.w[i])
		q.w[i] = uint32(cur / uint64(y))
		rem = cur % uint64(y)
	}
	q.norm()
	r.SetUint64(rem)
}

// divmod implements schoolbook base-2^32 long division (Knuth Algorithm D
// with a per-digit correction loop). It returns fresh Nats.
func divmod(x, y *Nat) (q, r *Nat) {
	if y.IsZero() {
		panic("mpnat: division by zero")
	}
	if x.Cmp(y) < 0 {
		return &Nat{}, x.Clone()
	}
	if len(y.w) == 1 {
		return divmodWord(x, y.w[0])
	}
	// Normalize so the divisor's top bit is set.
	shift := word.LeadingZeros32(y.w[len(y.w)-1])
	u := new(Nat).Lshift(x, shift)
	v := new(Nat).Lshift(y, shift)
	nn := len(v.w)
	m := len(u.w) - nn
	// Ensure u has an extra high word for the first quotient digit.
	uw := append(append([]uint32(nil), u.w...), 0)
	vw := v.w
	qw := make([]uint32, m+1)
	vTop := uint64(vw[nn-1])
	vNext := uint64(vw[nn-2])
	for j := m; j >= 0; j-- {
		// Estimate the quotient digit from the top two words.
		num := word.Join(uw[j+nn], uw[j+nn-1])
		qh := num / vTop
		rh := num % vTop
		for qh >= word.Base || qh*vNext > (rh<<word.Bits|uint64(uw[j+nn-2])) {
			qh--
			rh += vTop
			if rh >= word.Base {
				break
			}
		}
		// Multiply-subtract: uw[j..j+nn] -= qh * vw.
		var borrow uint32
		var mulCarry uint32
		for i := 0; i < nn; i++ {
			hi, lo := word.MulAdd(uint32(qh), vw[i], mulCarry, 0)
			uw[j+i], borrow = word.Sub32(uw[j+i], lo, borrow)
			mulCarry = hi
		}
		uw[j+nn], borrow = word.Sub32(uw[j+nn], mulCarry, borrow)
		if borrow != 0 {
			// qh was one too large: add back.
			qh--
			var c uint32
			for i := 0; i < nn; i++ {
				uw[j+i], c = word.Add32(uw[j+i], vw[i], c)
			}
			uw[j+nn] += c
		}
		qw[j] = uint32(qh)
	}
	q = &Nat{w: qw}
	q.norm()
	rem := &Nat{w: uw[:nn]}
	rem.norm()
	r = new(Nat).Rshift(rem, shift)
	return q, r
}

// divmodWord divides x by a single non-zero word.
func divmodWord(x *Nat, y uint32) (q, r *Nat) {
	qw := make([]uint32, len(x.w))
	var rem uint64
	for i := len(x.w) - 1; i >= 0; i-- {
		cur := rem<<word.Bits | uint64(x.w[i])
		qw[i] = uint32(cur / uint64(y))
		rem = cur % uint64(y)
	}
	q = &Nat{w: qw}
	q.norm()
	return q, New(rem)
}

// wordsPerBig is how many 32-bit words one big.Word holds (2 on 64-bit
// platforms, 1 on 32-bit ones).
const wordsPerBig = bits.UintSize / word.Bits

// ToBig returns the value of n as a fresh big.Int. The conversion packs
// the word slice directly into big.Word limbs (O(n)), so routing a
// tree-level multiplication through math/big costs two linear passes,
// not a quadratic shift-and-or loop.
func (n *Nat) ToBig() *big.Int {
	bw := make([]big.Word, (len(n.w)+wordsPerBig-1)/wordsPerBig)
	for i, w := range n.w {
		bw[i/wordsPerBig] |= big.Word(w) << ((i % wordsPerBig) * word.Bits)
	}
	return new(big.Int).SetBits(bw)
}

// ToBigInto sets dst to the value of n, reusing dst's limb storage when
// it is large enough, and returns dst. The steady-state registry submit
// path stages remainders through one retained big.Int per descent, so
// the conversion must not allocate once the scratch has warmed up.
func (n *Nat) ToBigInto(dst *big.Int) *big.Int {
	need := (len(n.w) + wordsPerBig - 1) / wordsPerBig
	bw := dst.Bits()
	if cap(bw) < need {
		bw = make([]big.Word, need)
	} else {
		bw = bw[:need]
		for i := range bw {
			bw[i] = 0
		}
	}
	for i, w := range n.w {
		bw[i/wordsPerBig] |= big.Word(w) << ((i % wordsPerBig) * word.Bits)
	}
	return dst.SetBits(bw)
}

// SetBig sets n to the value of b, which must be non-negative, and
// returns n. Like ToBig it unpacks big.Word limbs directly (O(n)).
func (n *Nat) SetBig(b *big.Int) *Nat {
	if b.Sign() < 0 {
		panic("mpnat: SetBig of negative value")
	}
	bw := b.Bits()
	n.w = n.w[:0]
	n.Grow(len(bw) * wordsPerBig)
	for _, w := range bw {
		for k := 0; k < wordsPerBig; k++ {
			n.w = append(n.w, uint32(w>>(k*word.Bits)))
		}
	}
	n.norm()
	return n
}

// FromBig returns a Nat holding the value of b, which must be non-negative.
func FromBig(b *big.Int) *Nat {
	return new(Nat).SetBig(b)
}

// String formats n in decimal.
func (n *Nat) String() string { return n.ToBig().String() }

// Hex formats n as lowercase hexadecimal without leading zeros ("0" for
// 0). The registry emits one hex line per accepted key, so this appends
// digits directly instead of routing each word through fmt.
func (n *Nat) Hex() string {
	if n.IsZero() {
		return "0"
	}
	const digits = "0123456789abcdef"
	buf := make([]byte, 0, len(n.w)*8)
	buf = strconv.AppendUint(buf, uint64(n.w[len(n.w)-1]), 16)
	for i := len(n.w) - 2; i >= 0; i-- {
		for s := 28; s >= 0; s -= 4 {
			buf = append(buf, digits[(n.w[i]>>s)&0xf])
		}
	}
	return string(buf)
}

// ParseHex parses a hexadecimal string (no prefix) into a Nat.
func ParseHex(s string) (*Nat, error) {
	if s == "" {
		return nil, fmt.Errorf("mpnat: empty hex string")
	}
	b, ok := new(big.Int).SetString(s, 16)
	if !ok {
		return nil, fmt.Errorf("mpnat: invalid hex string %q", s)
	}
	if b.Sign() < 0 {
		return nil, fmt.Errorf("mpnat: negative hex string %q", s)
	}
	return FromBig(b), nil
}

// Bytes returns the big-endian byte representation of n (empty for zero),
// the interchange form used by key encodings.
func (n *Nat) Bytes() []byte {
	if n.IsZero() {
		return nil
	}
	out := make([]byte, len(n.w)*4)
	for i, w := range n.w {
		base := len(out) - 4*i - 4
		out[base] = byte(w >> 24)
		out[base+1] = byte(w >> 16)
		out[base+2] = byte(w >> 8)
		out[base+3] = byte(w)
	}
	// Trim leading zero bytes of the top word.
	i := 0
	for i < len(out)-1 && out[i] == 0 {
		i++
	}
	return out[i:]
}

// AppendWordBytes appends n's packed words to buf, little-endian, and
// returns the extended slice. It is the zero-reversal serialization used
// by the registry's node files: multi-megabyte tree products round-trip
// without the per-byte reordering Bytes performs. The length is always
// Len()*4 bytes; SetWordBytes inverts it.
func (n *Nat) AppendWordBytes(buf []byte) []byte {
	for _, w := range n.w {
		buf = append(buf, byte(w), byte(w>>8), byte(w>>16), byte(w>>24))
	}
	return buf
}

// SetWordBytes sets n from a little-endian packed-word dump produced by
// AppendWordBytes and returns n. The length must be a multiple of 4.
func (n *Nat) SetWordBytes(b []byte) (*Nat, error) {
	if len(b)%4 != 0 {
		return nil, fmt.Errorf("mpnat: word dump length %d is not a multiple of 4", len(b))
	}
	words := len(b) / 4
	n.w = n.w[:0]
	n.Grow(words)
	n.w = n.w[:words]
	for i := range n.w {
		n.w[i] = uint32(b[4*i]) | uint32(b[4*i+1])<<8 | uint32(b[4*i+2])<<16 | uint32(b[4*i+3])<<24
	}
	n.norm()
	return n, nil
}

// SetBytes sets n from big-endian bytes and returns n.
func (n *Nat) SetBytes(b []byte) *Nat {
	words := (len(b) + 3) / 4
	n.w = n.w[:0]
	n.Grow(words)
	n.w = n.w[:words]
	for i := range n.w {
		n.w[i] = 0
	}
	for i := 0; i < len(b); i++ {
		// b[len-1-i] is byte i counting from the least significant end.
		n.w[i/4] |= uint32(b[len(b)-1-i]) << (8 * (i % 4))
	}
	n.norm()
	return n
}
