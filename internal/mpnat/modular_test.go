package mpnat

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMulAgainstBig(t *testing.T) {
	r := rand.New(rand.NewSource(20))
	for i := 0; i < 300; i++ {
		x := randBig(r, 1+r.Intn(600))
		y := randBig(r, 1+r.Intn(600))
		got := new(Nat).Mul(FromBig(x), FromBig(y))
		want := new(big.Int).Mul(x, y)
		if got.ToBig().Cmp(want) != 0 {
			t.Fatalf("Mul(%v,%v) wrong", x, y)
		}
	}
	if !new(Nat).Mul(New(0), New(5)).IsZero() || !new(Nat).Mul(New(5), New(0)).IsZero() {
		t.Fatal("Mul by zero not zero")
	}
}

func TestMulAliasing(t *testing.T) {
	a := New(0xFFFFFFFF)
	a.Mul(a, a)
	if a.Uint64() != 0xFFFFFFFE00000001 {
		t.Fatalf("a.Mul(a,a) = %v", a)
	}
	b := New(7)
	c := New(6)
	b.Mul(b, c)
	if b.Uint64() != 42 || c.Uint64() != 6 {
		t.Fatalf("aliased Mul corrupted: %v %v", b, c)
	}
}

func TestSqr(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	for i := 0; i < 50; i++ {
		x := randBig(r, 1+r.Intn(300))
		got := new(Nat).Sqr(FromBig(x))
		want := new(big.Int).Mul(x, x)
		if got.ToBig().Cmp(want) != 0 {
			t.Fatalf("Sqr(%v) wrong", x)
		}
	}
}

func TestMulCommutativeQuick(t *testing.T) {
	f := func(xs, ys []uint32) bool {
		x, y := NewFromWords(xs), NewFromWords(ys)
		a := new(Nat).Mul(x, y)
		b := new(Nat).Mul(y, x)
		return a.Cmp(b) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestModExpAgainstBig(t *testing.T) {
	r := rand.New(rand.NewSource(22))
	for i := 0; i < 100; i++ {
		base := randBig(r, 1+r.Intn(256))
		exp := randBig(r, 1+r.Intn(64))
		mod := randBig(r, 2+r.Intn(256))
		if mod.Cmp(big.NewInt(2)) < 0 {
			continue
		}
		got := new(Nat).ModExp(FromBig(base), FromBig(exp), FromBig(mod))
		want := new(big.Int).Exp(base, exp, mod)
		if got.ToBig().Cmp(want) != 0 {
			t.Fatalf("ModExp(%v,%v,%v) = %v, want %v", base, exp, mod, got, want)
		}
	}
}

func TestModExpEdges(t *testing.T) {
	m := New(97)
	if got := new(Nat).ModExp(New(5), New(0), m); !got.IsOne() {
		t.Fatalf("x^0 = %v", got)
	}
	if got := new(Nat).ModExp(New(0), New(5), m); !got.IsZero() {
		t.Fatalf("0^x = %v", got)
	}
	if got := new(Nat).ModExp(New(97), New(3), m); !got.IsZero() {
		t.Fatalf("m^x mod m = %v", got)
	}
	// Fermat: a^(p-1) = 1 mod p for prime p.
	if got := new(Nat).ModExp(New(12345), New(96), m); !got.IsOne() {
		t.Fatalf("Fermat failed: %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("modulus 1 accepted")
		}
	}()
	new(Nat).ModExp(New(2), New(2), New(1))
}

func TestModInverseAgainstBig(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	checked := 0
	for i := 0; i < 300; i++ {
		a := randBig(r, 1+r.Intn(256))
		m := randBig(r, 2+r.Intn(256))
		if m.Cmp(big.NewInt(2)) < 0 {
			continue
		}
		want := new(big.Int).ModInverse(a, m)
		got := new(Nat).ModInverse(FromBig(a), FromBig(m))
		if want == nil {
			if got != nil {
				t.Fatalf("ModInverse(%v,%v) = %v, want nil (not coprime)", a, m, got)
			}
			continue
		}
		if got == nil || got.ToBig().Cmp(want) != 0 {
			t.Fatalf("ModInverse(%v,%v) = %v, want %v", a, m, got, want)
		}
		checked++
	}
	if checked < 50 {
		t.Fatalf("only %d invertible cases exercised", checked)
	}
}

func TestModInverseVerifies(t *testing.T) {
	// a * a^-1 = 1 mod m, for RSA-like sizes.
	r := rand.New(rand.NewSource(24))
	for i := 0; i < 20; i++ {
		m := randBig(r, 512)
		m.SetBit(m, 0, 1) // odd modulus
		a := big.NewInt(65537)
		inv := new(Nat).ModInverse(FromBig(a), FromBig(m))
		if inv == nil {
			continue // 65537 | m (essentially impossible, but don't assume)
		}
		prod := new(Nat).Mul(inv, FromBig(a))
		prod.Mod(prod, FromBig(m))
		if !prod.IsOne() {
			t.Fatalf("a * inv != 1 mod m")
		}
	}
}

func TestModInverseEdges(t *testing.T) {
	// a = 1: inverse is 1.
	if got := new(Nat).ModInverse(New(1), New(7)); got == nil || !got.IsOne() {
		t.Fatalf("inverse of 1 = %v", got)
	}
	// a multiple of m: not invertible.
	if got := new(Nat).ModInverse(New(14), New(7)); got != nil {
		t.Fatalf("inverse of 0 mod 7 = %v", got)
	}
	// a > m reduces first.
	got := new(Nat).ModInverse(New(10), New(7)) // 3^-1 mod 7 = 5
	if got == nil || got.Uint64() != 5 {
		t.Fatalf("inverse of 10 mod 7 = %v, want 5", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("modulus 1 accepted")
		}
	}()
	new(Nat).ModInverse(New(3), New(1))
}

// TestRSARoundTripOnNat: the full RSA cycle on pure mpnat arithmetic.
func TestRSARoundTripOnNat(t *testing.T) {
	// p, q small primes; n = p*q; e = 65537? phi too small - use e = 17.
	p := New(61)
	q := New(53)
	n := new(Nat).Mul(p, q) // 3233
	phi := New(60 * 52)     // 3120
	e := New(17)
	d := new(Nat).ModInverse(e, phi)
	if d == nil || d.Uint64() != 2753 {
		t.Fatalf("d = %v, want 2753", d)
	}
	msg := New(65)
	ct := new(Nat).ModExp(msg, e, n)
	if ct.Uint64() != 2790 {
		t.Fatalf("ct = %v, want 2790 (textbook RSA example)", ct)
	}
	pt := new(Nat).ModExp(ct, d, n)
	if pt.Cmp(msg) != 0 {
		t.Fatalf("decrypted %v, want %v", pt, msg)
	}
}

func BenchmarkModExp512(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	base := FromBig(randBig(r, 512))
	exp := FromBig(randBig(r, 512))
	mod := FromBig(randBig(r, 512))
	out := new(Nat)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out.ModExp(base, exp, mod)
	}
}

func BenchmarkMul1024(b *testing.B) {
	r := rand.New(rand.NewSource(2))
	x := FromBig(randBig(r, 1024))
	y := FromBig(randBig(r, 1024))
	out := new(Nat)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out.Mul(x, y)
	}
}
