package mpnat

import (
	"fmt"
	"math/big"
	"math/rand"
	"testing"
)

// This file is the differential harness for the subquadratic
// multiplication backbone (mul.go): every algorithm band (schoolbook,
// Karatsuba, Toom-3, blocked unbalanced, installed backend) is driven
// at and around its dispatch boundary against the math/big oracle. A
// silent carry bug in Mul corrupts every product-tree engine at once,
// so the shapes here are chosen to maximize carry and borrow stress:
// all-ones words, single set bits at word boundaries, ragged operand
// pairs, zero and one limbs.

// randNat returns a Nat of exactly words words (top word forced
// non-zero) drawn from r.
func randNat(r *rand.Rand, words int) *Nat {
	if words == 0 {
		return &Nat{}
	}
	ws := make([]uint32, words)
	for i := range ws {
		ws[i] = r.Uint32()
	}
	for ws[words-1] == 0 {
		ws[words-1] = r.Uint32()
	}
	return NewFromWords(ws)
}

// onesNat returns the Nat with words words all 0xFFFFFFFF — the
// maximum-carry operand (B^n - 1).
func onesNat(words int) *Nat {
	ws := make([]uint32, words)
	for i := range ws {
		ws[i] = 0xFFFFFFFF
	}
	return NewFromWords(ws)
}

// bitNat returns 2^bit.
func bitNat(bit int) *Nat {
	ws := make([]uint32, bit/32+1)
	ws[bit/32] = 1 << (bit % 32)
	return NewFromWords(ws)
}

// checkMul verifies z = x*y three ways — Nat.Mul, a fresh MulScratch,
// and a shared scratch passed by the caller — against the math/big
// oracle.
func checkMul(t *testing.T, s *MulScratch, x, y *Nat) {
	t.Helper()
	want := new(big.Int).Mul(x.ToBig(), y.ToBig())
	if got := new(Nat).Mul(x, y); got.ToBig().Cmp(want) != 0 {
		t.Fatalf("Mul(%d words, %d words): got %s, want %s",
			x.Len(), y.Len(), got.Hex(), want.Text(16))
	}
	if got := new(MulScratch).Mul(new(Nat), x, y); got.ToBig().Cmp(want) != 0 {
		t.Fatalf("fresh MulScratch.Mul(%d, %d words) mismatch", x.Len(), y.Len())
	}
	if got := s.Mul(new(Nat), x, y); got.ToBig().Cmp(want) != 0 {
		t.Fatalf("shared MulScratch.Mul(%d, %d words) mismatch", x.Len(), y.Len())
	}
}

// boundarySizes returns every interesting word count around the two
// dispatch cutoffs: n-1, n, n+1 at each threshold, the far side of each
// band, and the small cases.
func boundarySizes() []int {
	k, t3 := MulThresholds()
	sizes := []int{0, 1, 2, 3, 7}
	for _, c := range []int{k, t3} {
		sizes = append(sizes, c-1, c, c+1)
	}
	// Deep inside each band, and past the point where Toom-3 recurses
	// into Karatsuba which recurses into schoolbook.
	sizes = append(sizes, (k+t3)/2, 2*t3, 3*t3+1)
	return sizes
}

// TestMulThresholdBoundaries drives every (xWords, yWords) pair of
// boundary sizes — including the ragged combinations that hit the
// blocked unbalanced path — against the oracle, reusing one scratch
// across all cases to prove arena reuse cannot leak state between
// multiplications.
func TestMulThresholdBoundaries(t *testing.T) {
	r := rand.New(rand.NewSource(600))
	shared := new(MulScratch)
	for _, xs := range boundarySizes() {
		for _, ys := range boundarySizes() {
			x, y := randNat(r, xs), randNat(r, ys)
			checkMul(t, shared, x, y)
		}
	}
}

// TestMulSpecialLimbs covers the degenerate and carry-extreme operand
// shapes at sizes spanning all three algorithm bands: zero, one,
// powers of two at word boundaries, and all-ones words.
func TestMulSpecialLimbs(t *testing.T) {
	k, t3 := MulThresholds()
	shared := new(MulScratch)
	r := rand.New(rand.NewSource(601))
	for _, n := range []int{1, k - 1, k, k + 1, t3, t3 + 1, 2 * t3} {
		specials := []*Nat{
			&Nat{},                 // zero
			New(1),                 // one
			onesNat(n),             // B^n - 1: maximum carry chains
			bitNat(32*nolt(n) - 1), // top bit of the band
			bitNat(32 * (n - n/2)), // power of two on a word boundary
			randNat(r, n),
		}
		for _, x := range specials {
			for _, y := range specials {
				checkMul(t, shared, x, y)
			}
		}
	}
}

// nolt guards bitNat's argument for n >= 1.
func nolt(n int) int {
	if n < 1 {
		return 1
	}
	return n
}

// TestMulRaggedPairs stresses the blocked unbalanced path: one operand
// many times longer than the other, with remainder blocks of every
// phase, at both subquadratic cutoffs.
func TestMulRaggedPairs(t *testing.T) {
	r := rand.New(rand.NewSource(602))
	k, t3 := MulThresholds()
	shared := new(MulScratch)
	for _, base := range []int{k, t3} {
		for _, ratio := range []int{2, 3, 5} {
			for _, off := range []int{-1, 0, 1, base / 2} {
				long := base*ratio + off
				if long < 1 {
					continue
				}
				checkMul(t, shared, randNat(r, long), randNat(r, base))
				checkMul(t, shared, randNat(r, base), randNat(r, long))
			}
		}
	}
}

// TestMulAliasingAllBands checks every aliasing combination the Mul
// contract allows, across all three algorithm bands (the small-operand
// case is TestMulAliasing in modular_test.go).
func TestMulAliasingAllBands(t *testing.T) {
	r := rand.New(rand.NewSource(603))
	k, t3 := MulThresholds()
	for _, n := range []int{3, k + 1, t3 + 1} {
		x0, y0 := randNat(r, n), randNat(r, n)
		want := new(big.Int).Mul(x0.ToBig(), y0.ToBig())
		wantSq := new(big.Int).Mul(x0.ToBig(), x0.ToBig())

		z := x0.Clone()
		z.Mul(z, y0.Clone()) // n == x
		if z.ToBig().Cmp(want) != 0 {
			t.Fatalf("n==x aliasing broken at %d words", n)
		}
		z = y0.Clone()
		z.Mul(x0.Clone(), z) // n == y
		if z.ToBig().Cmp(want) != 0 {
			t.Fatalf("n==y aliasing broken at %d words", n)
		}
		z = x0.Clone()
		z.Mul(z, z) // n == x == y
		if z.ToBig().Cmp(wantSq) != 0 {
			t.Fatalf("n==x==y aliasing broken at %d words", n)
		}
		if got := new(Nat).Sqr(x0); got.ToBig().Cmp(wantSq) != 0 {
			t.Fatalf("Sqr broken at %d words", n)
		}
		var s MulScratch
		z = x0.Clone()
		s.Mul(z, z, y0) // scratch path, n == x
		if z.ToBig().Cmp(want) != 0 {
			t.Fatalf("scratch n==x aliasing broken at %d words", n)
		}
	}
}

// TestMulProperties is the property-based leg of the harness: with the
// cutoffs lowered so small operands exercise the full recursion stack
// (Toom-3 over Karatsuba over schoolbook), it checks commutativity,
// associativity via 3-way products, distributivity over Add, and the
// Mul-then-DivMod round trip on random triples.
func TestMulProperties(t *testing.T) {
	defer SetMulThresholds(4, 10)()
	r := rand.New(rand.NewSource(604))
	for trial := 0; trial < 300; trial++ {
		x := randNat(r, r.Intn(40))
		y := randNat(r, r.Intn(40))
		z := randNat(r, r.Intn(40))

		xy := new(Nat).Mul(x, y)
		yx := new(Nat).Mul(y, x)
		if xy.Cmp(yx) != 0 {
			t.Fatalf("trial %d: x*y != y*x", trial)
		}
		l := new(Nat).Mul(xy, z)
		rr := new(Nat).Mul(x, new(Nat).Mul(y, z))
		if l.Cmp(rr) != 0 {
			t.Fatalf("trial %d: (x*y)*z != x*(y*z)", trial)
		}
		d1 := new(Nat).Mul(x, new(Nat).Add(y, z))
		d2 := new(Nat).Add(new(Nat).Mul(x, y), new(Nat).Mul(x, z))
		if d1.Cmp(d2) != 0 {
			t.Fatalf("trial %d: x*(y+z) != x*y + x*z", trial)
		}
		if !y.IsZero() {
			q, rem := DivMod(xy, y)
			if q.Cmp(x) != 0 || !rem.IsZero() {
				t.Fatalf("trial %d: DivMod(x*y, y) != (x, 0)", trial)
			}
		}
	}
}

// TestSetMulThresholds checks the override round trip and that the
// restore function reinstates the tuned defaults.
func TestSetMulThresholds(t *testing.T) {
	k0, t0 := MulThresholds()
	restore := SetMulThresholds(5, 9)
	if k, tt := MulThresholds(); k != 5 || tt != 9 {
		t.Fatalf("thresholds = (%d, %d) after set, want (5, 9)", k, tt)
	}
	restore()
	if k, tt := MulThresholds(); k != k0 || tt != t0 {
		t.Fatalf("restore gave (%d, %d), want (%d, %d)", k, tt, k0, t0)
	}
	// toom3 below karatsuba is clamped, not accepted.
	defer SetMulThresholds(8, 2)()
	if k, tt := MulThresholds(); tt < k {
		t.Fatalf("toom3 threshold %d below karatsuba %d", tt, k)
	}
}

// TestSetMulBackend checks the consult-first contract: an installed
// backend sees every large multiplication, may decline, and its
// product is what callers observe; removal restores the native path.
func TestSetMulBackend(t *testing.T) {
	r := rand.New(rand.NewSource(605))
	k, _ := MulThresholds()
	x, y := randNat(r, 4*k), randNat(r, 4*k)
	want := new(big.Int).Mul(x.ToBig(), y.ToBig())

	var calls, handled int
	restore := SetMulBackend(func(z, a, b *Nat) bool {
		calls++
		if a.Len() < 2*k || b.Len() < 2*k {
			return false // decline: native path must take over
		}
		handled++
		z.SetBig(new(big.Int).Mul(a.ToBig(), b.ToBig()))
		return true
	})
	defer restore()

	if got := new(Nat).Mul(x, y); got.ToBig().Cmp(want) != 0 {
		t.Fatal("backend-handled product mismatch")
	}
	small := randNat(r, k+1)
	wantSmall := new(big.Int).Mul(small.ToBig(), small.ToBig())
	if got := new(Nat).Sqr(small); got.ToBig().Cmp(wantSmall) != 0 {
		t.Fatal("declined product mismatch")
	}
	if calls < 2 || handled != 1 {
		t.Fatalf("backend saw %d calls, handled %d; want >=2 and exactly 1", calls, handled)
	}
	restore()
	if got := new(Nat).Mul(x, y); got.ToBig().Cmp(want) != 0 {
		t.Fatal("native product mismatch after restore")
	}
}

// TestBigMulBackendParity runs the escape-hatch backend against the
// native path on boundary shapes: identical values everywhere, and the
// cutoff respected.
func TestBigMulBackendParity(t *testing.T) {
	r := rand.New(rand.NewSource(606))
	const cutoff = 32
	defer SetMulBackend(BigMulBackend(cutoff))()
	shared := new(MulScratch)
	for _, xs := range []int{cutoff - 1, cutoff, cutoff + 1, 3 * cutoff} {
		for _, ys := range []int{cutoff - 1, cutoff, 2 * cutoff} {
			checkMul(t, shared, randNat(r, xs), randNat(r, ys))
			checkMul(t, shared, onesNat(xs), onesNat(ys))
		}
	}
}

// TestMulScratchReuse proves the arena claim: with a warm scratch and a
// preallocated destination, subquadratic multiplication performs no
// allocation.
func TestMulScratchReuse(t *testing.T) {
	r := rand.New(rand.NewSource(607))
	_, t3 := MulThresholds()
	n := 2 * t3 // deep enough for Toom-3 over Karatsuba
	x, y := randNat(r, n), randNat(r, n)
	s := new(MulScratch)
	z := new(Nat).Grow(2 * n)
	s.Mul(z, x, y) // warm the slab
	want := z.Clone()
	allocs := testing.AllocsPerRun(10, func() {
		s.Mul(z, x, y)
	})
	if allocs != 0 {
		t.Errorf("warm MulScratch.Mul allocated %.1f times per op, want 0", allocs)
	}
	if z.Cmp(want) != 0 {
		t.Fatal("warm-path product drifted")
	}
}

// TestMulMatchesOldSchoolbook pins the dispatcher's basecase band: at
// sizes below the Karatsuba cutoff the product must equal the oracle
// (the schoolbook loop is the same code the package always had, moved
// to a slice-level basecase).
func TestMulMatchesOldSchoolbook(t *testing.T) {
	r := rand.New(rand.NewSource(608))
	k, _ := MulThresholds()
	for trial := 0; trial < 50; trial++ {
		x := randNat(r, 1+r.Intn(k-1))
		y := randNat(r, 1+r.Intn(k-1))
		want := new(big.Int).Mul(x.ToBig(), y.ToBig())
		if got := new(Nat).Mul(x, y); got.ToBig().Cmp(want) != 0 {
			t.Fatalf("trial %d: schoolbook band mismatch", trial)
		}
	}
}

// TestMulThresholdSweepExhaustive runs a dense size sweep with lowered
// cutoffs so every dispatch edge (schoolbook->karatsuba,
// karatsuba->toom3, balanced->blocked) is crossed many times in one
// test, each size at multiple random draws.
func TestMulThresholdSweepExhaustive(t *testing.T) {
	defer SetMulThresholds(5, 12)()
	r := rand.New(rand.NewSource(609))
	shared := new(MulScratch)
	for xs := 1; xs <= 40; xs++ {
		for _, ys := range []int{1, 2, 4, 5, 6, 11, 12, 13, xs} {
			if ys > 40 {
				continue
			}
			checkMul(t, shared, randNat(r, xs), randNat(r, ys))
		}
	}
	// And the all-ones diagonal, the worst carry case, at every size.
	for n := 1; n <= 40; n++ {
		checkMul(t, shared, onesNat(n), onesNat(n))
	}
}

// TestMulThresholdsDocumented keeps the DESIGN.md section 5f numbers
// honest: the shipped defaults are what the doc says.
func TestMulThresholdsDocumented(t *testing.T) {
	k, t3 := MulThresholds()
	if k != 24 || t3 != 256 {
		t.Fatalf("default thresholds (%d, %d) drifted from the documented (24, 256); update DESIGN.md 5f and BENCH_PR6.json", k, t3)
	}
	if fmt.Sprintf("%d/%d", k, t3) == "" { // keep fmt imported alongside future debug output
		t.Fatal("unreachable")
	}
}
