package mpnat

import "sync/atomic"

// A MulBackend intercepts multiplications before the native dispatch in
// mul.go runs. It returns true when it handled z = x*y, false to
// decline (the native schoolbook/Karatsuba/Toom-3 path then runs). A
// backend must produce exactly the mathematical product — every
// differential suite in this repository asserts findings are
// byte-identical with and without one installed.
//
// The intended use is the tree-level escape hatch of DESIGN.md section
// 5f: product and remainder trees over large corpora multiply operands
// of 10^5..10^7 words, where math/big's assembly inner loops and
// deeper recursion beat this package's portable word loops, while the
// GCD kernels keep the paper's d = 32/64 word layout untouched (they
// never multiply). BigMulBackend is that backend; SetMulBackend
// installs any other.
type MulBackend func(z, x, y *Nat) bool

// mulBackend is consulted on every Mul. An atomic pointer keeps the
// read race-free against a concurrent SetMulBackend, but engines are
// expected to install a backend before spawning workers: swapping it
// mid-run is safe, merely unhelpful.
var mulBackend atomic.Pointer[MulBackend]

// SetMulBackend installs (or with nil, removes) the package-wide
// multiplication backend and returns a function restoring the previous
// one. The build tag "mpnat_bigmul" installs BigMulBackend
// (DefaultBigMulWords) at init; this call overrides it either way.
func SetMulBackend(b MulBackend) (restore func()) {
	var p *MulBackend
	if b != nil {
		p = &b
	}
	prev := mulBackend.Swap(p)
	return func() { mulBackend.Store(prev) }
}

// loadMulBackend returns the installed backend or nil.
func loadMulBackend() MulBackend {
	if p := mulBackend.Load(); p != nil {
		return *p
	}
	return nil
}

// DefaultBigMulWords is the word cutoff the mpnat_bigmul build tag
// installs BigMulBackend with: below it the conversion round trip costs
// more than math/big's inner loops save.
const DefaultBigMulWords = 2048

// BigMulBackend returns a MulBackend routing multiplications where both
// operands have at least minWords 32-bit words through math/big
// (conversion is O(n) each way via the word-packing fast paths of
// FromBig/ToBig). Smaller multiplications are declined and stay on the
// native subquadratic path.
func BigMulBackend(minWords int) MulBackend {
	return func(z, x, y *Nat) bool {
		if len(x.w) < minWords || len(y.w) < minWords {
			return false
		}
		xb, yb := x.ToBig(), y.ToBig()
		z.SetBig(xb.Mul(xb, yb))
		return true
	}
}
