package mpnat

import (
	"math/big"
	"testing"
)

// FuzzDivMod checks the division identity x = q*y + r, 0 <= r < y against
// math/big on arbitrary inputs.
func FuzzDivMod(f *testing.F) {
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}, []byte{0x80, 0, 0, 0, 1})
	f.Add([]byte{1}, []byte{1})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFE, 0, 0, 0, 1}, []byte{0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, xb, yb []byte) {
		if len(xb) > 256 || len(yb) > 256 {
			return
		}
		x := new(big.Int).SetBytes(xb)
		y := new(big.Int).SetBytes(yb)
		if y.Sign() == 0 {
			return
		}
		q, r := DivMod(FromBig(x), FromBig(y))
		wantQ, wantR := new(big.Int).QuoRem(x, y, new(big.Int))
		if q.ToBig().Cmp(wantQ) != 0 || r.ToBig().Cmp(wantR) != 0 {
			t.Fatalf("DivMod(%v,%v) = (%v,%v), want (%v,%v)", x, y, q, r, wantQ, wantR)
		}
	})
}

// FuzzSubMulRshift checks the fused update against its big.Int definition.
func FuzzSubMulRshift(f *testing.F) {
	f.Add([]byte{0x12, 0x34}, uint32(3), []byte{0x01})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF}, uint32(0xFFFFFFFF), []byte{0})
	f.Fuzz(func(t *testing.T, yb []byte, alpha uint32, extraB []byte) {
		if len(yb) > 128 || len(extraB) > 128 || alpha == 0 {
			return
		}
		y := new(big.Int).SetBytes(yb)
		extra := new(big.Int).SetBytes(extraB)
		x := new(big.Int).Mul(y, new(big.Int).SetUint64(uint64(alpha)))
		x.Add(x, extra)
		if x.Sign() == 0 {
			return
		}
		got := new(Nat).SubMulRshift(FromBig(x), FromBig(y), alpha)
		want := new(big.Int).Set(extra)
		for want.Sign() != 0 && want.Bit(0) == 0 {
			want.Rsh(want, 1)
		}
		if got.ToBig().Cmp(want) != 0 {
			t.Fatalf("SubMulRshift: got %v, want %v (y=%v alpha=%d extra=%v)", got, want, y, alpha, extra)
		}
	})
}

// FuzzMulMatchesBig drives the full multiplication dispatch —
// schoolbook, Karatsuba, Toom-3 and the blocked unbalanced path —
// against the math/big oracle. Each input runs twice: once at the tuned
// production thresholds and once with the cutoffs lowered to (4, 10) so
// that byte-sized fuzz inputs still exercise the deep recursion, the
// scratch arena and the big.Int backend. The seeded corpus pins the
// dispatch boundaries (sizes n-1, n, n+1 around each cutoff in words),
// ragged operand pairs, and the carry-extreme all-ones shapes.
func FuzzMulMatchesBig(f *testing.F) {
	k, t3 := MulThresholds()
	sized := func(words int, fill byte) []byte {
		b := make([]byte, 4*words)
		for i := range b {
			b[i] = fill
		}
		if len(b) > 0 && fill == 0 {
			b[0] = 1 // keep the top word non-zero
		}
		return b
	}
	for _, n := range []int{1, 2, k - 1, k, k + 1, t3 - 1, t3, t3 + 1} {
		f.Add(sized(n, 0xFF), sized(n, 0xFF))  // all-ones boundary squares
		f.Add(sized(n, 0), sized(n/2+1, 0xAB)) // power-of-two x ragged y
		f.Add(sized(3*n+1, 0x55), sized(n, 0)) // blocked unbalanced path
	}
	f.Add([]byte{}, sized(k+1, 0x7F)) // zero operand
	f.Add([]byte{1}, []byte{1})
	f.Fuzz(func(t *testing.T, xb, yb []byte) {
		if len(xb) > 2048 || len(yb) > 2048 {
			return
		}
		x := new(big.Int).SetBytes(xb)
		y := new(big.Int).SetBytes(yb)
		want := new(big.Int).Mul(x, y)
		xn, yn := FromBig(x), FromBig(y)

		check := func(label string) {
			t.Helper()
			if got := new(Nat).Mul(xn, yn); got.ToBig().Cmp(want) != 0 {
				t.Fatalf("%s: Mul mismatch for %d x %d words", label, xn.Len(), yn.Len())
			}
			var s MulScratch
			z := new(Nat)
			if s.Mul(z, xn, yn); z.ToBig().Cmp(want) != 0 {
				t.Fatalf("%s: MulScratch.Mul mismatch for %d x %d words", label, xn.Len(), yn.Len())
			}
			if s.Mul(z, xn, yn); z.ToBig().Cmp(want) != 0 {
				t.Fatalf("%s: reused-scratch Mul mismatch", label)
			}
		}
		check("tuned thresholds")
		restore := SetMulThresholds(4, 10)
		check("lowered thresholds")
		restore()
		restoreB := SetMulBackend(BigMulBackend(8))
		check("big backend")
		restoreB()
	})
}

// FuzzHexRoundTrip checks Hex/ParseHex inverse on arbitrary values.
func FuzzHexRoundTrip(f *testing.F) {
	f.Add([]byte{0})
	f.Add([]byte{0xDE, 0xAD, 0xBE, 0xEF})
	f.Fuzz(func(t *testing.T, b []byte) {
		if len(b) > 1024 {
			return
		}
		n := FromBig(new(big.Int).SetBytes(b))
		got, err := ParseHex(n.Hex())
		if err != nil {
			t.Fatal(err)
		}
		if got.Cmp(n) != 0 {
			t.Fatalf("round trip failed for %s", n.Hex())
		}
	})
}
