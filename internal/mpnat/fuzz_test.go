package mpnat

import (
	"math/big"
	"testing"
)

// FuzzDivMod checks the division identity x = q*y + r, 0 <= r < y against
// math/big on arbitrary inputs.
func FuzzDivMod(f *testing.F) {
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}, []byte{0x80, 0, 0, 0, 1})
	f.Add([]byte{1}, []byte{1})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFE, 0, 0, 0, 1}, []byte{0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, xb, yb []byte) {
		if len(xb) > 256 || len(yb) > 256 {
			return
		}
		x := new(big.Int).SetBytes(xb)
		y := new(big.Int).SetBytes(yb)
		if y.Sign() == 0 {
			return
		}
		q, r := DivMod(FromBig(x), FromBig(y))
		wantQ, wantR := new(big.Int).QuoRem(x, y, new(big.Int))
		if q.ToBig().Cmp(wantQ) != 0 || r.ToBig().Cmp(wantR) != 0 {
			t.Fatalf("DivMod(%v,%v) = (%v,%v), want (%v,%v)", x, y, q, r, wantQ, wantR)
		}
	})
}

// FuzzSubMulRshift checks the fused update against its big.Int definition.
func FuzzSubMulRshift(f *testing.F) {
	f.Add([]byte{0x12, 0x34}, uint32(3), []byte{0x01})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF}, uint32(0xFFFFFFFF), []byte{0})
	f.Fuzz(func(t *testing.T, yb []byte, alpha uint32, extraB []byte) {
		if len(yb) > 128 || len(extraB) > 128 || alpha == 0 {
			return
		}
		y := new(big.Int).SetBytes(yb)
		extra := new(big.Int).SetBytes(extraB)
		x := new(big.Int).Mul(y, new(big.Int).SetUint64(uint64(alpha)))
		x.Add(x, extra)
		if x.Sign() == 0 {
			return
		}
		got := new(Nat).SubMulRshift(FromBig(x), FromBig(y), alpha)
		want := new(big.Int).Set(extra)
		for want.Sign() != 0 && want.Bit(0) == 0 {
			want.Rsh(want, 1)
		}
		if got.ToBig().Cmp(want) != 0 {
			t.Fatalf("SubMulRshift: got %v, want %v (y=%v alpha=%d extra=%v)", got, want, y, alpha, extra)
		}
	})
}

// FuzzHexRoundTrip checks Hex/ParseHex inverse on arbitrary values.
func FuzzHexRoundTrip(f *testing.F) {
	f.Add([]byte{0})
	f.Add([]byte{0xDE, 0xAD, 0xBE, 0xEF})
	f.Fuzz(func(t *testing.T, b []byte) {
		if len(b) > 1024 {
			return
		}
		n := FromBig(new(big.Int).SetBytes(b))
		got, err := ParseHex(n.Hex())
		if err != nil {
			t.Fatal(err)
		}
		if got.Cmp(n) != 0 {
			t.Fatalf("round trip failed for %s", n.Hex())
		}
	})
}
