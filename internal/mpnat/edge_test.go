package mpnat

import (
	"math/big"
	"math/bits"
	"math/rand"
	"testing"

	"bulkgcd/internal/word"
)

// This file covers the mpnat edge paths the main suites skirt around:
// RshiftStrip over runs of all-zero trailing words, the aliasing
// combinations DivScratch documents as legal, and the FromBig/ToBig
// round trip exactly at 32-bit word and platform big.Word boundaries.

// TestRshiftStripAllZeroTrailingWords strips values whose low words are
// entirely zero: the shift distance crosses one, several, and all-but-
// one word boundaries, with and without additional in-word zeros.
func TestRshiftStripAllZeroTrailingWords(t *testing.T) {
	cases := []struct {
		name string
		in   *Nat
		want *Nat
	}{
		{"zero", &Nat{}, &Nat{}},
		{"one-zero-word", NewFromWords([]uint32{0, 5}), New(5)},
		{"three-zero-words", NewFromWords([]uint32{0, 0, 0, 7}), New(7)},
		{"zero-words-plus-in-word-shift", NewFromWords([]uint32{0, 0, 8}), New(1)},
		{"power-of-two-single-top-word", NewFromWords([]uint32{0, 0, 1 << 31}), New(1)},
		{"odd-already", NewFromWords([]uint32{3, 0, 9}), NewFromWords([]uint32{3, 0, 9})},
		{"zero-word-then-even", NewFromWords([]uint32{0, 6, 1}), NewFromWords([]uint32{0x80000003, 0}).norm2()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := new(Nat).RshiftStrip(tc.in)
			if got.Cmp(tc.want) != 0 {
				t.Fatalf("RshiftStrip(%s) = %s, want %s", tc.in.Hex(), got.Hex(), tc.want.Hex())
			}
			if !got.IsZero() && got.IsEven() {
				t.Fatalf("RshiftStrip(%s) = %s is even", tc.in.Hex(), got.Hex())
			}
			// In place: aliasing n == x must agree.
			inPlace := tc.in.Clone()
			inPlace.RshiftStrip(inPlace)
			if inPlace.Cmp(tc.want) != 0 {
				t.Fatalf("in-place RshiftStrip(%s) = %s, want %s", tc.in.Hex(), inPlace.Hex(), tc.want.Hex())
			}
		})
	}
	// Property: for x = odd << k with k spanning multiple whole words,
	// the strip always recovers the odd part.
	r := rand.New(rand.NewSource(610))
	for trial := 0; trial < 100; trial++ {
		odd := randNat(r, 1+r.Intn(8))
		odd.w[0] |= 1
		k := r.Intn(200)
		x := new(Nat).Lshift(odd, k)
		if got := new(Nat).RshiftStrip(x); got.Cmp(odd) != 0 {
			t.Fatalf("trial %d: RshiftStrip(odd<<%d) != odd", trial, k)
		}
	}
}

// TestDivScratchAliasing exercises the aliasing DivScratch documents as
// legal: Mod with r aliasing the dividend x, DivMod with x and y the
// same Nat, and back-to-back reuse of one scratch across shapes, so a
// stale scratch buffer can never leak into a result.
func TestDivScratchAliasing(t *testing.T) {
	r := rand.New(rand.NewSource(611))
	var s DivScratch
	for trial := 0; trial < 200; trial++ {
		x := randNat(r, 1+r.Intn(40))
		y := randNat(r, 1+r.Intn(20))
		if y.IsZero() {
			continue
		}
		wantQ, wantR := new(big.Int).QuoRem(x.ToBig(), y.ToBig(), new(big.Int))

		// r == x: the dividend is overwritten by its remainder.
		rx := x.Clone()
		s.Mod(rx, rx, y)
		if rx.ToBig().Cmp(wantR) != 0 {
			t.Fatalf("trial %d: Mod(r==x) = %s, want %s", trial, rx.Hex(), wantR.Text(16))
		}

		// x == y (same *Nat): q must be 1, r must be 0.
		q, rem := new(Nat), new(Nat)
		s.DivMod(q, rem, y, y)
		if !q.IsOne() || !rem.IsZero() {
			t.Fatalf("trial %d: DivMod(x==y) = (%s, %s), want (1, 0)", trial, q.Hex(), rem.Hex())
		}

		// Plain scratch DivMod after the aliased calls: reuse is clean.
		s.DivMod(q, rem, x, y)
		if q.ToBig().Cmp(wantQ) != 0 || rem.ToBig().Cmp(wantR) != 0 {
			t.Fatalf("trial %d: reused-scratch DivMod mismatch", trial)
		}
	}

	// Single-word divisor path with r == x aliasing.
	x := NewFromWords([]uint32{0xDEADBEEF, 0x12345678, 0x9ABCDEF0})
	want := new(big.Int).Mod(x.ToBig(), big.NewInt(97))
	s.Mod(x, x, New(97))
	if x.ToBig().Cmp(want) != 0 {
		t.Fatalf("single-word Mod(r==x) = %s, want %s", x.Hex(), want.Text(16))
	}
}

// TestFromBigToBigWordBoundaries round-trips values placed exactly at
// the 32-bit word and platform big.Word boundaries, where the packing
// loops of ToBig/SetBig switch limbs: 2^(32k) +- 1, 2^(32k), and the
// all-ones values filling k words, for k up to past the 64-bit big.Word
// pairing.
func TestFromBigToBigWordBoundaries(t *testing.T) {
	one := big.NewInt(1)
	for k := 1; k <= 9; k++ {
		edge := new(big.Int).Lsh(one, uint(32*k))
		for _, v := range []*big.Int{
			new(big.Int).Sub(edge, one), // 2^(32k) - 1: k full words
			new(big.Int).Set(edge),      // 2^(32k): word k+1 is exactly 1
			new(big.Int).Add(edge, one), // straddles the boundary
		} {
			n := FromBig(v)
			if got := n.ToBig(); got.Cmp(v) != 0 {
				t.Fatalf("round trip of %s gave %s", v.Text(16), got.Text(16))
			}
			wantWords := (v.BitLen() + word.Bits - 1) / word.Bits
			if n.Len() != wantWords {
				t.Fatalf("%s: Len = %d, want %d (normalization at the boundary)", v.Text(16), n.Len(), wantWords)
			}
			// SetBig into a dirty, previously longer Nat must fully
			// replace the old words.
			dirty := NewFromWords([]uint32{7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7})
			if got := dirty.SetBig(v).ToBig(); got.Cmp(v) != 0 {
				t.Fatalf("SetBig into dirty Nat gave %s, want %s", got.Text(16), v.Text(16))
			}
		}
	}
	// Platform boundary note: on 64-bit hosts one big.Word carries two
	// mpnat words; a value that is non-zero only in the high half of a
	// big.Word must not gain a phantom low word.
	if bits.UintSize == 64 {
		v := new(big.Int).Lsh(one, 32) // high half of big.Word 0
		n := FromBig(v)
		if n.Len() != 2 || n.w[0] != 0 || n.w[1] != 1 {
			t.Fatalf("2^32 unpacked to %v", n.w)
		}
	}
	if FromBig(new(big.Int)).Len() != 0 {
		t.Fatal("FromBig(0) not the canonical zero")
	}
}

// norm2 re-normalizes a hand-built Nat in tests (NewFromWords already
// normalizes; this makes the intent explicit for literals with high
// zeros).
func (n *Nat) norm2() *Nat {
	n.norm()
	return n
}
