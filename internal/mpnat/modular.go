package mpnat

import "sync"

// This file completes the arithmetic substrate with the modular operations
// the RSA layer needs: multiplication, modular exponentiation (RSA encrypt
// and decrypt are M^e mod n and C^d mod n) and the modular inverse via the
// extended Euclidean algorithm, which the paper points to for computing
// d = e^-1 mod (p-1)(q-1) once a modulus is factored. With these, the
// whole attack pipeline runs on this package's word-level arithmetic;
// math/big remains only in conversions, reference oracles and the batch
// GCD baseline.

// mulScratchPool backs Nat.Mul calls that arrive without a caller-owned
// MulScratch; hot tree builders hold one per worker instead.
var mulScratchPool = sync.Pool{New: func() any { return new(MulScratch) }}

// Mul sets n = x * y and returns n. Operands below KaratsubaThreshold
// run the schoolbook loop; larger ones dispatch through the
// subquadratic path of mul.go (Karatsuba, then Toom-3) on a pooled
// MulScratch, honoring any installed MulBackend.
// Aliasing among n, x, y is allowed.
func (n *Nat) Mul(x, y *Nat) *Nat {
	lx, ly := len(x.w), len(y.w)
	if lx == 0 || ly == 0 {
		n.w = n.w[:0]
		return n
	}
	if (lx < karatsubaThreshold || ly < karatsubaThreshold) && loadMulBackend() == nil {
		// Small operands: one schoolbook pass into a fresh buffer
		// (aliasing-safe), no arena needed.
		out := make([]uint32, lx+ly)
		basicMul(out, x.w, y.w)
		n.w = out
		n.norm()
		return n
	}
	s := mulScratchPool.Get().(*MulScratch)
	s.Mul(n, x, y)
	mulScratchPool.Put(s)
	return n
}

// Sqr sets n = x * x and returns n.
func (n *Nat) Sqr(x *Nat) *Nat { return n.Mul(x, x) }

// ModExp sets n = base^exp mod m and returns n, by left-to-right square
// and multiply with a full reduction after each step. m must be > 1.
// This is the straightforward (non-Montgomery) implementation: the attack
// uses it a handful of times per broken key, far off the hot path.
func (n *Nat) ModExp(base, exp, m *Nat) *Nat {
	if m.IsZero() || m.IsOne() {
		panic("mpnat: ModExp modulus must be > 1")
	}
	result := New(1)
	b := new(Nat).Mod(base, m)
	if exp.IsZero() {
		n.w = result.w
		return n
	}
	for i := exp.BitLen() - 1; i >= 0; i-- {
		result.Sqr(result)
		result.Mod(result, m)
		if exp.Bit(i) == 1 {
			result.Mul(result, b)
			result.Mod(result, m)
		}
	}
	n.w = result.w
	return n
}

// signed is a sign-and-magnitude integer for the extended Euclid
// coefficients.
type signed struct {
	mag Nat
	neg bool
}

func (s *signed) set(v *signed) {
	s.mag.Set(&v.mag)
	s.neg = v.neg
}

// subMulSigned sets s = a - q*b over signed values, with q a non-negative
// Nat. It allocates as needed; the extended Euclid runs O(bits) iterations
// so this is not a hot path.
func subMulSigned(a, b *signed, q *Nat) *signed {
	qb := new(Nat).Mul(q, &b.mag)
	out := &signed{}
	if a.neg == b.neg {
		// a - q*b = sign(a) * (|a| - q|b|): magnitudes subtract.
		if a.mag.Cmp(qb) >= 0 {
			out.mag.Sub(&a.mag, qb)
			out.neg = a.neg
		} else {
			out.mag.Sub(qb, &a.mag)
			out.neg = !a.neg
		}
	} else {
		// Signs differ: magnitudes add, sign of a.
		out.mag.Add(&a.mag, qb)
		out.neg = a.neg
	}
	if out.mag.IsZero() {
		out.neg = false
	}
	return out
}

// ModInverse sets n = a^-1 mod m and returns n, or returns nil when a and
// m are not coprime. m must be > 1. It runs the extended Euclidean
// algorithm ("extended Euclidean algorithm [13]" in the paper's key-setup
// description) tracking only the coefficient of a.
func (n *Nat) ModInverse(a, m *Nat) *Nat {
	if m.IsZero() || m.IsOne() {
		panic("mpnat: ModInverse modulus must be > 1")
	}
	r0 := new(Nat).Mod(a, m) // invariants: r0 = t0*a mod m, r1 = t1*a mod m
	r1 := new(Nat).Set(m)
	r0, r1 = r1, r0             // r0 = m, r1 = a mod m
	t0 := &signed{}             // coefficient of r0: 0
	t1 := &signed{mag: *New(1)} // coefficient of r1: 1
	for !r1.IsZero() {
		q, r := DivMod(r0, r1)
		r0.Set(r1)
		r1.Set(r)
		next := subMulSigned(t0, t1, q)
		t0.set(t1)
		t1.set(next)
	}
	if !r0.IsOne() {
		return nil // gcd(a, m) != 1
	}
	// t0 is the coefficient of a; normalize into [0, m).
	inv := new(Nat).Set(&t0.mag)
	if t0.neg {
		inv.Mod(inv, m)
		if !inv.IsZero() {
			inv.Sub(m, inv)
		}
	} else {
		inv.Mod(inv, m)
	}
	n.w = inv.w
	return n
}
