package mpnat

import "bulkgcd/internal/word"

// This file implements the fused per-iteration update operations of
// Section IV of the paper. Each iteration of the word-level Euclidean
// algorithms reads X, reads Y and writes X once each, so the natural
// implementation shape is a single pass over the words from the least
// significant end, exactly as the paper's register-level listing does with
// its 64-bit temporary z. The rare beta > 0 update additionally re-reads Y,
// giving the paper's 4*s/d count.

// SubRshift sets n = rshift(x - y) and returns n. It requires x >= y; the
// difference of two odd numbers is even, so at least one bit is stripped
// when x != y. Aliasing n == x or n == y is allowed.
func (n *Nat) SubRshift(x, y *Nat) *Nat {
	return n.SubMulRshift(x, y, 1)
}

// SubMulRshift sets n = rshift(x - y*alpha) and returns n, the fused
// "X <- rshift(X - Y*alpha)" update of the Approximate (and Fast) Euclidean
// algorithms. It requires x >= y*alpha. alpha is a single d-bit word, as
// guaranteed by approx() for every case with more than two words.
//
// The subtraction and the trailing-zero strip happen in a single pass over
// the words, as in the register-level listing of Section IV: the shift
// distance is discovered at the first non-zero difference word and every
// subsequent output word is assembled from the current and pending
// difference words. Aliasing n == x or n == y is allowed: output position
// outIdx always trails the read position i, so in-place operation is safe.
func (n *Nat) SubMulRshift(x, y *Nat, alpha uint32) *Nat {
	lx, ly := len(x.w), len(y.w)
	if alpha == 0 {
		panic("mpnat: SubMulRshift with alpha == 0")
	}
	out := n.w
	if n != x && n != y {
		if cap(out) < lx {
			out = make([]uint32, lx)
		}
		out = out[:lx]
	} else if n == y {
		out = make([]uint32, lx)
	} else {
		out = out[:lx] // n == x: write in place behind the read cursor
	}
	var mulCarry uint32 // high word of y[i]*alpha carried into position i+1
	var borrow uint32
	var pending uint32 // high bits of the previous difference word, shifted
	var shift uint     // r mod d: the within-word strip distance
	started := false   // first non-zero difference word seen
	outIdx := 0
	for i := 0; i < lx; i++ {
		sub := mulCarry
		mulCarry = 0
		if i < ly {
			hi, lo := word.MulAdd(y.w[i], alpha, sub, 0)
			sub = lo
			mulCarry = hi
		}
		var d uint32
		d, borrow = word.Sub32(x.w[i], sub, borrow)
		if !started {
			if d == 0 {
				continue // whole-word part of the strip shift
			}
			started = true
			shift = uint(word.TrailingZeros32(d))
			pending = d >> shift
			continue
		}
		// Emit the completed output word: pending low bits plus the new
		// word's contribution (d << 32 is 0 in Go when shift == 0, which
		// is exactly right).
		out[outIdx] = pending | d<<(32-shift)
		outIdx++
		pending = d >> shift
	}
	if borrow != 0 || mulCarry != 0 {
		panic("mpnat: SubMulRshift underflow")
	}
	if started {
		out[outIdx] = pending
		outIdx++
	}
	n.w = out[:outIdx]
	n.norm()
	return n
}

// SubMul64 sets n = x - y*alpha for a full 64-bit alpha and returns n.
// It requires x >= y*alpha. This services Case 1 of approx() (operands of
// at most two words) where the exact 64-bit quotient is used directly.
// Aliasing n == x or n == y is allowed.
func (n *Nat) SubMul64(x, y *Nat, alpha uint64) *Nat {
	aHi, aLo := word.Split(alpha)
	if aHi == 0 {
		if aLo == 0 {
			return n.Set(x)
		}
		t := n
		if n == x || n == y {
			t = new(Nat)
		}
		subMulNoShift(t, x, y, aLo)
		return n.Set(t)
	}
	// x - y*(aHi*D + aLo) = x - (y*aLo) - (y*aHi << d).
	t := new(Nat).MulWord(y, aLo)
	u := new(Nat).MulWord(y, aHi)
	u.Lshift(u, word.Bits)
	t.Add(t, u)
	return n.Sub(x, t)
}

// subMulNoShift sets dst = x - y*alpha without stripping trailing zeros.
// dst must not alias x or y.
func subMulNoShift(dst, x, y *Nat, alpha uint32) {
	lx, ly := len(x.w), len(y.w)
	out := dst.w
	if cap(out) < lx {
		out = make([]uint32, lx)
	}
	out = out[:lx]
	var mulCarry, borrow uint32
	for i := 0; i < lx; i++ {
		sub := mulCarry
		mulCarry = 0
		if i < ly {
			hi, lo := word.MulAdd(y.w[i], alpha, sub, 0)
			sub = lo
			mulCarry = hi
		}
		out[i], borrow = word.Sub32(x.w[i], sub, borrow)
	}
	if borrow != 0 || mulCarry != 0 {
		panic("mpnat: subMul underflow")
	}
	dst.w = out
	dst.norm()
}

// MulWord sets n = y*alpha and returns n. Aliasing n == y is allowed.
func (n *Nat) MulWord(y *Nat, alpha uint32) *Nat {
	if alpha == 0 || y.IsZero() {
		n.w = n.w[:0]
		return n
	}
	ly := len(y.w)
	out := n.w
	if cap(out) < ly+1 {
		out = make([]uint32, ly+1)
	} else {
		out = out[:ly+1]
	}
	var carry uint32
	for i := 0; i < ly; i++ {
		// In-place (n == y) is safe: position i is read before written.
		hi, lo := word.MulAdd(y.w[i], alpha, carry, 0)
		out[i] = lo
		carry = hi
	}
	out[ly] = carry
	n.w = out
	n.norm()
	return n
}

// SubMulShiftAddRshift sets n = rshift(x - y*alpha*D^beta + y) and returns
// n: the beta > 0 update of the Approximate Euclidean algorithm, which
// subtracts the even approximation alpha*D^beta minus one so that the result
// is even. It requires x >= y*alpha*D^beta and beta >= 1. As established in
// Section V this path runs with probability below 1e-8 for d = 32, so it is
// implemented by composition rather than as a fused single pass; the gcd
// layer accounts its memory cost as the paper's 4*s/d + O(1).
// Aliasing n == x or n == y is allowed.
func (n *Nat) SubMulShiftAddRshift(x, y *Nat, alpha uint32, beta int) *Nat {
	if beta < 1 {
		panic("mpnat: SubMulShiftAddRshift requires beta >= 1")
	}
	t := new(Nat).MulWord(y, alpha)
	t.Lshift(t, beta*word.Bits)
	t.Sub(x, t)
	t.Add(t, y)
	n.w = t.w
	return n.RshiftStrip(n)
}
