package mpnat

import "bulkgcd/internal/word"

// This file is the multiplication backbone of the package. The product
// and remainder trees of the batch and hybrid engines multiply operands
// of hundreds of thousands of words (a tile or corpus product is the
// concatenation of every modulus in it), where the schoolbook O(n^2)
// loop is the dominant cost, so Mul dispatches by operand size:
//
//	words < KaratsubaThreshold            schoolbook (basicMul)
//	words < Toom3Threshold                Karatsuba, O(n^1.585)
//	words >= Toom3Threshold               Toom-3, O(n^1.465)
//
// and an installed MulBackend (backend.go) is consulted first, so tree
// levels above a size cutoff can route through math/big's assembly fast
// paths while the GCD kernels keep the d = 32/64 word layout.
//
// All intermediates live in a MulScratch arena with stack discipline
// (mark/release), so the tree builders multiply without per-node
// garbage; Nat.Mul without a caller-provided scratch draws one from a
// package pool.
//
// Toom-3 uses the evaluation points 0, 1, 2, 3 and infinity rather than
// the textbook 0, 1, -1, 2, infinity: with non-negative points every
// evaluation, every product, and every interpolation intermediate is a
// non-negative integer (the interpolation below subtracts only
// quantities that are provably componentwise-dominated), so the whole
// algorithm runs on the package's unsigned word slices with no
// sign-and-magnitude bookkeeping. The price is slightly larger
// evaluated operands (up to 13 < 2^32 times a part, still one extra
// word) and two exact small divisions (by 2 and by 3), both linear.

// Multiplication thresholds in 32-bit words. Tuned with
// BenchmarkMulThresholds and BenchmarkToomCrossover on amd64 (see
// BENCH_PR6.json): below 24 words (768 bits) the schoolbook loop's
// locality wins, Karatsuba takes over up to 256 words (8 Kbit), Toom-3
// beyond — its extra evaluation/interpolation passes only amortize once
// the thirds are a few hundred words. Exposed as variables for
// SetMulThresholds; read on every Mul, so they must not be modified
// concurrently with multiplication.
var (
	karatsubaThreshold = 24
	toom3Threshold     = 256
)

// SetMulThresholds overrides the Karatsuba and Toom-3 word-count
// cutoffs and returns a function restoring the previous values. It
// exists for threshold-boundary tests and tuning sweeps; it must not be
// called concurrently with multiplications. karatsuba >= 2 keeps the
// basecase non-degenerate; toom3 is clamped to at least karatsuba.
func SetMulThresholds(karatsuba, toom3 int) (restore func()) {
	if karatsuba < 2 {
		panic("mpnat: KaratsubaThreshold must be >= 2")
	}
	if toom3 < karatsuba {
		toom3 = karatsuba
	}
	prevK, prevT := karatsubaThreshold, toom3Threshold
	karatsubaThreshold, toom3Threshold = karatsuba, toom3
	return func() { karatsubaThreshold, toom3Threshold = prevK, prevT }
}

// MulThresholds reports the current (karatsuba, toom3) word cutoffs.
func MulThresholds() (karatsuba, toom3 int) {
	return karatsubaThreshold, toom3Threshold
}

// MulScratch is the working arena of a multiplication. Every recursion
// temporary (Karatsuba middle products, Toom-3 evaluations and
// interpolation registers) is carved from one slab with stack
// discipline, so a tree build that reuses its scratch multiplies
// without per-node allocation. A MulScratch is not safe for concurrent
// use; pools hold one per worker. The zero value is ready to use.
type MulScratch struct {
	buf []uint32
	off int
}

// ensure grows the slab to at least n words of remaining capacity.
// It is only called at the top of a multiplication, when no takes are
// outstanding, so growing cannot invalidate live slices.
func (s *MulScratch) ensure(n int) {
	if len(s.buf)-s.off < n {
		s.buf = make([]uint32, s.off+n)
	}
}

// take carves n words off the slab. If the conservative pre-sizing in
// Mul ever underestimates, it falls back to a fresh allocation rather
// than growing the slab (growth would invalidate outstanding takes).
// The returned words are uninitialized.
func (s *MulScratch) take(n int) []uint32 {
	if s.off+n > len(s.buf) {
		return make([]uint32, n)
	}
	b := s.buf[s.off : s.off+n : s.off+n]
	s.off += n
	return b
}

// mark/release bracket a recursion level's takes.
func (s *MulScratch) mark() int     { return s.off }
func (s *MulScratch) release(m int) { s.off = m }

// Mul sets z = x*y and returns z, running every intermediate through
// the scratch. Aliasing among z, x, y is allowed. An installed
// MulBackend is consulted first (see SetMulBackend).
func (s *MulScratch) Mul(z, x, y *Nat) *Nat {
	lx, ly := len(x.w), len(y.w)
	if lx == 0 || ly == 0 {
		z.w = z.w[:0]
		return z
	}
	if b := loadMulBackend(); b != nil && b(z, x, y) {
		return z
	}
	// The slab bound covers the deepest take chain of either recursion:
	// Karatsuba peaks around 2.7*(lx+ly), Toom-3 around 3.5*(lx+ly)
	// (geometric sums over the level costs); 6x is comfortably past
	// both, and take falls back to the heap if a shape ever exceeds it.
	s.ensure(6*(lx+ly) + 64)
	m := s.mark()
	defer s.release(m)
	if z != x && z != y {
		out := z.w
		if cap(out) < lx+ly {
			out = make([]uint32, lx+ly)
		}
		out = out[:lx+ly]
		mulInto(out, x.w, y.w, s)
		z.w = out
	} else {
		tmp := s.take(lx + ly)
		mulInto(tmp, x.w, y.w, s)
		z.w = append(z.w[:0], tmp...)
	}
	z.norm()
	return z
}

// Sqr sets z = x*x through the scratch and returns z.
func (s *MulScratch) Sqr(z, x *Nat) *Nat { return s.Mul(z, x, x) }

// mulInto computes dst = x*y where len(dst) == len(x)+len(y); dst is
// fully overwritten and must not overlap x or y. x and y need not be
// normalized (recursion hands down slices with high zero words).
func mulInto(dst, x, y []uint32, s *MulScratch) {
	if len(x) < len(y) {
		x, y = y, x
	}
	switch {
	case len(y) < karatsubaThreshold:
		basicMul(dst, x, y)
	case len(x) > len(y)+(len(y)+1)/2:
		// Unbalanced: chop x into len(y)-sized blocks so the recursive
		// algorithms always see comparable operands.
		blockMul(dst, x, y, s)
	case len(y) >= toom3Threshold && len(y) > 2*((len(x)+2)/3):
		toom3Mul(dst, x, y, s)
	default:
		karatsubaMul(dst, x, y, s)
	}
}

// basicMul is the schoolbook O(n*m) basecase, writing x*y into dst
// (len(x)+len(y) words, fully overwritten).
func basicMul(dst, x, y []uint32) {
	clear(dst)
	for i := 0; i < len(x); i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		var carry uint32
		for j := 0; j < len(y); j++ {
			hi, lo := word.MulAdd(xi, y[j], dst[i+j], carry)
			dst[i+j] = lo
			carry = hi
		}
		dst[i+len(y)] = carry
	}
}

// blockMul handles len(x) >> len(y): dst = sum over blocks of
// x[o:o+len(y)] * y << o, each block product computed recursively into
// a reused scratch buffer and accumulated into dst.
func blockMul(dst, x, y []uint32, s *MulScratch) {
	clear(dst)
	n := len(y)
	m := s.mark()
	t := s.take(2 * n)
	for o := 0; o < len(x); o += n {
		c := n
		if o+c > len(x) {
			c = len(x) - o
		}
		mulInto(t[:c+n], x[o:o+c], y, s)
		addAt(dst[o:], trim(t[:c+n]))
	}
	s.release(m)
}

// karatsubaMul computes dst = x*y by one Karatsuba split. Requires
// len(x) >= len(y) > len(x)/2 (the dispatcher's balance condition), so
// both high halves are non-empty.
func karatsubaMul(dst, x, y []uint32, s *MulScratch) {
	h := len(x) / 2
	x0, x1 := x[:h], x[h:]
	y0, y1 := y[:h], y[h:]

	// z0 = x0*y0 and z2 = x1*y1 land directly in dst: z0 fills
	// dst[:2h], z2 fills dst[2h:], together exactly len(x)+len(y).
	mulInto(dst[:2*h], x0, y0, s)
	mulInto(dst[2*h:], x1, y1, s)

	m := s.mark()
	sx := s.take(maxInt(len(x0), len(x1)) + 1)
	sy := s.take(maxInt(len(y0), len(y1)) + 1)
	sx = addFull(sx, x0, x1)
	sy = addFull(sy, y0, y1)
	z1 := s.take(len(sx) + len(sy))
	mulInto(z1, sx, sy, s)
	// z1 = (x0+x1)(y0+y1) - x0*y0 - x1*y1 = x0*y1 + x1*y0; both
	// subtrahends are componentwise dominated, so no underflow.
	subIn(z1, trim(dst[:2*h]))
	subIn(z1, trim(dst[2*h:]))
	addAt(dst[h:], trim(z1))
	s.release(m)
}

// toom3Mul computes dst = x*y by one Toom-3 split at the points
// 0, 1, 2, 3 and infinity. Requires len(x) >= len(y) > 2k where
// k = (len(x)+2)/3 (the dispatcher's condition), so every part of both
// operands is non-empty.
func toom3Mul(dst, x, y []uint32, s *MulScratch) {
	k := (len(x) + 2) / 3
	x0, x1, x2 := x[:k], x[k:2*k], x[2*k:]
	y0, y1, y2 := y[:k], y[k:2*k], y[2*k:]

	m := s.mark()
	// Evaluations at t = 1, 2, 3 via Horner: (p2*t + p1)*t + p0.
	// Coefficient sums stay below 13 < 2^32 times a part, one extra word.
	ex1 := evalAt(s.take(k+2), x0, x1, x2, 1)
	ex2 := evalAt(s.take(k+2), x0, x1, x2, 2)
	ex3 := evalAt(s.take(k+2), x0, x1, x2, 3)
	ey1 := evalAt(s.take(k+2), y0, y1, y2, 1)
	ey2 := evalAt(s.take(k+2), y0, y1, y2, 2)
	ey3 := evalAt(s.take(k+2), y0, y1, y2, 3)

	v1 := s.take(len(ex1) + len(ey1))
	mulInto(v1, ex1, ey1, s)
	v2 := s.take(len(ex2) + len(ey2))
	mulInto(v2, ex2, ey2, s)
	v3 := s.take(len(ex3) + len(ey3))
	mulInto(v3, ex3, ey3, s)

	// c0 = v0 = x0*y0 and c4 = v4 = x2*y2 go straight into dst, which
	// they cannot outgrow: 2k + (len(x)-2k + len(y)-2k) <= len(dst)-2k.
	clear(dst)
	mulInto(dst[:2*k], x0, y0, s)
	mulInto(dst[4*k:], x2, y2, s)
	c0 := trim(dst[:2*k])
	c4 := trim(dst[4*k:])

	// Interpolation, all intermediates non-negative and exact:
	//   w1 = v1 - c0 - c4          = c1 +  c2 +  c3
	//   w2 = (v2 - c0 - 16c4)/2    = c1 + 2c2 + 4c3
	//   w3 = (v3 - c0 - 81c4)/3    = c1 + 3c2 + 9c3
	//   a  = w2 - w1               = c2 + 3c3
	//   b  = w3 - w2               = c2 + 5c3
	//   c3 = (b - a)/2,  c2 = a - 3c3,  c1 = w1 - c2 - c3
	t := s.take(2*k + 6) // holds c4*81 and c3*3, both < B^(2k+5)
	w1 := v1
	subIn(w1, c0)
	subIn(w1, c4)
	w1 = trim(w1)
	w2 := v2
	subIn(w2, c0)
	subIn(w2, mulSmall(t, c4, 16))
	shrExact(w2, 1)
	w2 = trim(w2)
	w3 := v3
	subIn(w3, c0)
	subIn(w3, mulSmall(t, c4, 81))
	divSmallExact(w3, 3)
	w3 = trim(w3)

	subIn(w3, w2) // w3 is now b = c2 + 5c3
	subIn(w2, w1) // w2 is now a = c2 + 3c3
	w2, w3 = trim(w2), trim(w3)
	subIn(w3, w2) // w3 = b - a = 2c3
	shrExact(w3, 1)
	c3 := trim(w3) // c3
	subIn(w2, mulSmall(t, c3, 3))
	c2 := trim(w2) // c2
	subIn(w1, c2)
	subIn(w1, c3)
	c1 := trim(w1) // c1

	addAt(dst[k:], c1)
	addAt(dst[2*k:], c2)
	addAt(dst[3*k:], c3)
	s.release(m)
}

// evalAt writes p0 + p1*t + p2*t^2 into dst by Horner and returns the
// trimmed slice. dst must hold max(len)+2 words; t <= 3.
func evalAt(dst []uint32, p0, p1, p2 []uint32, t uint32) []uint32 {
	clear(dst)
	copy(dst, p2)
	mulSmallIn(dst, t)
	addAt(dst, p1)
	mulSmallIn(dst, t)
	addAt(dst, p0)
	return trim(dst)
}

// trim returns a without its high zero words.
func trim(a []uint32) []uint32 {
	i := len(a)
	for i > 0 && a[i-1] == 0 {
		i--
	}
	return a[:i]
}

// maxInt avoids importing cmp for two ints.
func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// addFull writes a+b into dst (sized max(len(a),len(b))+1) and returns
// the trimmed slice.
func addFull(dst, a, b []uint32) []uint32 {
	if len(a) < len(b) {
		a, b = b, a
	}
	var c uint32
	for i := 0; i < len(a); i++ {
		bi := uint32(0)
		if i < len(b) {
			bi = b[i]
		}
		dst[i], c = word.Add32(a[i], bi, c)
	}
	dst[len(a)] = c
	return trim(dst[:len(a)+1])
}

// addAt adds a into dst in place, propagating the carry through dst.
// The caller guarantees the sum fits (the final carry is zero); the
// recursion invariants above establish that for every call site.
func addAt(dst, a []uint32) {
	var c uint32
	for i := 0; i < len(a); i++ {
		dst[i], c = word.Add32(dst[i], a[i], c)
	}
	for i := len(a); c != 0; i++ {
		dst[i], c = word.Add32(dst[i], 0, c)
	}
}

// subIn subtracts a from dst in place. The caller guarantees
// dst >= a as integers; lengths may differ (the borrow propagates
// through dst's remaining words).
func subIn(dst, a []uint32) {
	var b uint32
	for i := 0; i < len(a); i++ {
		dst[i], b = word.Sub32(dst[i], a[i], b)
	}
	for i := len(a); b != 0; i++ {
		dst[i], b = word.Sub32(dst[i], 0, b)
	}
}

// mulSmall writes a*f into dst (sized len(a)+1) and returns the trimmed
// slice. f is a small word (the Toom-3 constants 3, 16, 81).
func mulSmall(dst, a []uint32, f uint32) []uint32 {
	var carry uint32
	for i := 0; i < len(a); i++ {
		hi, lo := word.MulAdd(a[i], f, carry, 0)
		dst[i] = lo
		carry = hi
	}
	dst[len(a)] = carry
	return trim(dst[:len(a)+1])
}

// mulSmallIn multiplies dst by f in place. The caller guarantees the
// product fits in dst (evalAt's extra word absorbs the growth).
func mulSmallIn(dst []uint32, f uint32) {
	var carry uint32
	for i := 0; i < len(dst); i++ {
		hi, lo := word.MulAdd(dst[i], f, carry, 0)
		dst[i] = lo
		carry = hi
	}
	if carry != 0 {
		panic("mpnat: mulSmallIn overflow")
	}
}

// shrExact shifts dst right by k < 32 bits in place; the shifted-out
// bits must be zero (exact division by 2^k).
func shrExact(dst []uint32, k uint) {
	if len(dst) == 0 {
		return
	}
	if dst[0]&(1<<k-1) != 0 {
		panic("mpnat: shrExact dropped bits")
	}
	for i := 0; i < len(dst); i++ {
		dst[i] >>= k
		if i+1 < len(dst) {
			dst[i] |= dst[i+1] << (32 - k)
		}
	}
}

// divSmallExact divides dst by f in place; the division must be exact.
func divSmallExact(dst []uint32, f uint32) {
	var rem uint64
	for i := len(dst) - 1; i >= 0; i-- {
		cur := rem<<word.Bits | uint64(dst[i])
		dst[i] = uint32(cur / uint64(f))
		rem = cur % uint64(f)
	}
	if rem != 0 {
		panic("mpnat: divSmallExact with remainder")
	}
}
