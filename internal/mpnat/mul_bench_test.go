package mpnat

import (
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// treeMulWords is the operand size of the enforced benchmark: 64k
// 32-bit words = 2 Mbit, the top-level multiplication of a product
// tree over ~4096 512-bit moduli — exactly the shape the batch and
// hybrid engines feed Mul. Short mode shrinks it so bench-smoke stays
// cheap while still enforcing the bound.
const treeMulWords = 64 * 1024

// timeMul measures one z = x*y with the current dispatch settings.
func timeMul(z, x, y *Nat, s *MulScratch) time.Duration {
	start := time.Now()
	s.Mul(z, x, y)
	return time.Since(start)
}

// BenchmarkTreeMul is the self-enforcing regression gate of the
// subquadratic multiplication backbone (archived in BENCH_PR6.json):
// it multiplies two tree-level-sized operands with the schoolbook loop
// and with the subquadratic dispatch, verifies the products are
// identical, fails the run outright if the subquadratic path is not at
// least 2x faster, and then reports the subquadratic ns/op. Run it at
// GOMAXPROCS=1: both paths are single-goroutine, and the paper's
// per-core accounting keeps the comparison honest.
func BenchmarkTreeMul(b *testing.B) {
	words := treeMulWords
	reps := 1
	if testing.Short() {
		words = 8 * 1024
		reps = 2
	}
	r := rand.New(rand.NewSource(612))
	x, y := randNat(r, words), randNat(r, words)
	s := new(MulScratch)
	school, sub := new(Nat).Grow(2*words), new(Nat).Grow(2*words)

	restore := SetMulThresholds(1<<30, 1<<30) // everything schoolbook
	var schoolNs time.Duration
	for i := 0; i < reps; i++ {
		schoolNs += timeMul(school, x, y, s)
	}
	restore()
	var subNs time.Duration
	for i := 0; i < reps; i++ {
		subNs += timeMul(sub, x, y, s)
	}
	if school.Cmp(sub) != 0 {
		b.Fatal("subquadratic product differs from schoolbook")
	}
	speedup := float64(schoolNs) / float64(subNs)
	b.Logf("%d-word operands: schoolbook %v, subquadratic %v, speedup %.1fx",
		words, schoolNs/time.Duration(reps), subNs/time.Duration(reps), speedup)
	if speedup < 2 {
		b.Fatalf("subquadratic Mul is only %.2fx schoolbook on %d-word operands, want >= 2x", speedup, words)
	}
	b.ReportMetric(speedup, "x-vs-schoolbook")

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Mul(sub, x, y)
	}
	b.ReportMetric(float64(words), "words")
}

// BenchmarkMulThresholds is the tuning sweep behind the shipped
// (24, 256) cutoffs: at each size it times the schoolbook loop, plain
// Karatsuba (Toom-3 disabled), Toom-3 forced at the top level, and the
// full dispatch, so `go test -bench BenchmarkMulThresholds` re-derives
// both crossover points on any machine. On the reference amd64 box
// Karatsuba passes schoolbook near 48 words and Toom-3 passes
// Karatsuba between 256 and 768 words (see BENCH_PR6.json). Not
// enforced — BenchmarkTreeMul is the gate.
func BenchmarkMulThresholds(b *testing.B) {
	r := rand.New(rand.NewSource(613))
	for _, words := range []int{16, 24, 32, 48, 64, 96, 128, 256, 512, 1024, 2048} {
		x, y := randNat(r, words), randNat(r, words)
		s := new(MulScratch)
		z := new(Nat).Grow(2 * words)
		for _, mode := range []struct {
			name  string
			k, t3 int
		}{
			{"schoolbook", 1 << 30, 1 << 30},
			{"karatsuba", 24, 1 << 30},
			{"toom3", 24, words},
			{"dispatch", 24, 256},
		} {
			b.Run(fmt.Sprintf("words=%d/%s", words, mode.name), func(b *testing.B) {
				defer SetMulThresholds(mode.k, mode.t3)()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					s.Mul(z, x, y)
				}
			})
		}
	}
}
