package mpnat

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

// randBig returns a uniformly random integer with exactly bits significant
// bits (top bit set) drawn from r.
func randBig(r *rand.Rand, bits int) *big.Int {
	if bits <= 0 {
		return new(big.Int)
	}
	out := new(big.Int)
	for out.BitLen() < bits {
		out.Lsh(out, 32)
		out.Or(out, big.NewInt(int64(r.Uint32())))
	}
	out.Rsh(out, uint(out.BitLen()-bits))
	out.SetBit(out, bits-1, 1)
	return out
}

func TestZeroValueReady(t *testing.T) {
	var n Nat
	if !n.IsZero() || n.Len() != 0 || n.BitLen() != 0 || !n.IsEven() {
		t.Fatal("zero value of Nat is not the number zero")
	}
	if n.String() != "0" || n.Hex() != "0" {
		t.Fatalf("zero formats as %q / %q", n.String(), n.Hex())
	}
}

func TestNewAndUint64(t *testing.T) {
	cases := []uint64{0, 1, 2, 0xFFFFFFFF, 0x100000000, 0xFFFFFFFFFFFFFFFF, 55555, 1043915}
	for _, v := range cases {
		n := New(v)
		if n.Uint64() != v {
			t.Errorf("New(%d).Uint64() = %d", v, n.Uint64())
		}
		wantLen := 0
		switch {
		case v == 0:
		case v>>32 == 0:
			wantLen = 1
		default:
			wantLen = 2
		}
		if n.Len() != wantLen {
			t.Errorf("New(%d).Len() = %d, want %d", v, n.Len(), wantLen)
		}
	}
}

func TestUint64PanicsOnLarge(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewFromWords([]uint32{1, 2, 3}).Uint64()
}

func TestNewFromWordsNormalizes(t *testing.T) {
	n := NewFromWords([]uint32{5, 0, 0})
	if n.Len() != 1 || n.Uint64() != 5 {
		t.Fatalf("normalization failed: len=%d val=%v", n.Len(), n)
	}
	if z := NewFromWords([]uint32{0, 0}); !z.IsZero() {
		t.Fatal("all-zero words should normalize to zero")
	}
}

func TestBigRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for _, bits := range []int{1, 31, 32, 33, 63, 64, 65, 512, 1024, 4096} {
		for i := 0; i < 20; i++ {
			b := randBig(r, bits)
			n := FromBig(b)
			if n.ToBig().Cmp(b) != 0 {
				t.Fatalf("round trip failed for %v (bits=%d)", b, bits)
			}
			if n.BitLen() != b.BitLen() {
				t.Fatalf("BitLen %d != big %d", n.BitLen(), b.BitLen())
			}
		}
	}
}

func TestHexRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	for i := 0; i < 50; i++ {
		b := randBig(r, 1+r.Intn(2048))
		n := FromBig(b)
		got, err := ParseHex(n.Hex())
		if err != nil {
			t.Fatal(err)
		}
		if got.Cmp(n) != 0 {
			t.Fatalf("hex round trip failed: %s", n.Hex())
		}
		if n.Hex() != b.Text(16) {
			t.Fatalf("Hex() = %s, big says %s", n.Hex(), b.Text(16))
		}
	}
}

func TestParseHexErrors(t *testing.T) {
	for _, s := range []string{"", "xyz", "-ff", "0x12"} {
		if _, err := ParseHex(s); err == nil {
			t.Errorf("ParseHex(%q) succeeded, want error", s)
		}
	}
}

func TestCmp(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for i := 0; i < 200; i++ {
		a := randBig(r, 1+r.Intn(300))
		b := randBig(r, 1+r.Intn(300))
		if got, want := FromBig(a).Cmp(FromBig(b)), a.Cmp(b); got != want {
			t.Fatalf("Cmp(%v,%v) = %d, want %d", a, b, got, want)
		}
	}
	n := New(42)
	if n.Cmp(n) != 0 {
		t.Fatal("self compare != 0")
	}
}

func TestAddSubAgainstBig(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	for i := 0; i < 300; i++ {
		a := randBig(r, 1+r.Intn(600))
		b := randBig(r, 1+r.Intn(600))
		sum := new(Nat).Add(FromBig(a), FromBig(b))
		wantSum := new(big.Int).Add(a, b)
		if sum.ToBig().Cmp(wantSum) != 0 {
			t.Fatalf("Add(%v,%v) = %v, want %v", a, b, sum, wantSum)
		}
		diff := new(Nat).Sub(sum, FromBig(b))
		if diff.ToBig().Cmp(a) != 0 {
			t.Fatalf("Sub round trip failed")
		}
	}
}

func TestAddAliasing(t *testing.T) {
	a := New(0xFFFFFFFF)
	a.Add(a, a)
	if a.Uint64() != 0x1FFFFFFFE {
		t.Fatalf("a.Add(a,a) = %v", a)
	}
	b := New(7)
	c := New(9)
	b.Add(b, c)
	if b.Uint64() != 16 || c.Uint64() != 9 {
		t.Fatalf("aliased Add corrupted operands: %v %v", b, c)
	}
	d := New(3)
	e := New(1 << 40)
	d.Add(e, d) // n aliases the shorter operand
	if d.Uint64() != (1<<40)+3 {
		t.Fatalf("d = %v", d)
	}
}

func TestSubAliasingAndUnderflow(t *testing.T) {
	a := New(100)
	a.Sub(a, New(58))
	if a.Uint64() != 42 {
		t.Fatalf("aliased Sub = %v", a)
	}
	a.Sub(a, a)
	if !a.IsZero() {
		t.Fatal("x - x != 0")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Sub underflow did not panic")
		}
	}()
	new(Nat).Sub(New(1), New(2))
}

func TestShifts(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 200; i++ {
		a := randBig(r, 1+r.Intn(400))
		k := r.Intn(130)
		if got := new(Nat).Lshift(FromBig(a), k).ToBig(); got.Cmp(new(big.Int).Lsh(a, uint(k))) != 0 {
			t.Fatalf("Lshift(%v,%d) = %v", a, k, got)
		}
		if got := new(Nat).Rshift(FromBig(a), k).ToBig(); got.Cmp(new(big.Int).Rsh(a, uint(k))) != 0 {
			t.Fatalf("Rshift(%v,%d) = %v", a, k, got)
		}
	}
	// In-place shifts.
	n := New(0xF0)
	n.Rshift(n, 4)
	if n.Uint64() != 0xF {
		t.Fatalf("in-place Rshift = %v", n)
	}
	n.Lshift(n, 64)
	if n.Len() != 3 || n.ToBig().Cmp(new(big.Int).Lsh(big.NewInt(0xF), 64)) != 0 {
		t.Fatalf("in-place Lshift = %v", n)
	}
	// Shifting past the end yields zero.
	if !new(Nat).Rshift(New(12345), 64).IsZero() {
		t.Fatal("over-shift not zero")
	}
}

func TestRshiftStrip(t *testing.T) {
	// rshift(1101,0100) = 0011,0101 -- the paper's Section II example.
	n := New(0b11010100)
	n.RshiftStrip(n)
	if n.Uint64() != 0b110101 {
		t.Fatalf("rshift(11010100) = %b, want 110101", n.Uint64())
	}
	if !new(Nat).RshiftStrip(new(Nat)).IsZero() {
		t.Fatal("rshift(0) != 0")
	}
	// Odd numbers are unchanged.
	o := New(0xABCDEF1)
	got := new(Nat).RshiftStrip(o)
	if got.Cmp(o) != 0 {
		t.Fatal("rshift changed an odd number")
	}
	// Result is always odd for non-zero input.
	r := rand.New(rand.NewSource(12))
	for i := 0; i < 100; i++ {
		v := randBig(r, 1+r.Intn(300))
		s := new(Nat).RshiftStrip(FromBig(v))
		if s.IsEven() {
			t.Fatalf("rshift(%v) = %v is even", v, s)
		}
	}
}

func TestTrailingZeroBits(t *testing.T) {
	cases := []struct {
		v    uint64
		want int
	}{
		{1, 0}, {2, 1}, {8, 3}, {0x100000000, 32}, {0x300000000, 32}, {1 << 45, 45},
	}
	for _, c := range cases {
		if got := New(c.v).TrailingZeroBits(); got != c.want {
			t.Errorf("TrailingZeroBits(%#x) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestDivModAgainstBig(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for i := 0; i < 400; i++ {
		x := randBig(r, 1+r.Intn(800))
		y := randBig(r, 1+r.Intn(800))
		q, rem := DivMod(FromBig(x), FromBig(y))
		wantQ, wantR := new(big.Int).QuoRem(x, y, new(big.Int))
		if q.ToBig().Cmp(wantQ) != 0 || rem.ToBig().Cmp(wantR) != 0 {
			t.Fatalf("DivMod(%v,%v) = (%v,%v), want (%v,%v)", x, y, q, rem, wantQ, wantR)
		}
	}
}

func TestDivModAdversarial(t *testing.T) {
	// Cases that stress the Knuth quotient-digit correction: divisor top word
	// just above/below half base, quotient digits of D-1, remainders of 0.
	hex := func(s string) *Nat {
		n, err := ParseHex(s)
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	cases := [][2]*Nat{
		{hex("ffffffffffffffffffffffff"), hex("800000000000000000000001")},
		{hex("ffffffffffffffffffffffff"), hex("80000000ffffffff")},
		{hex("fffffffe00000001"), hex("ffffffff")},          // exact square
		{hex("100000000000000000000000"), hex("100000001")}, // long zero runs
		{hex("7fffffffffffffffffffffffffffffff"), hex("80000000000000000000000000000001")},
		{hex("80000000000000000000000000000000"), hex("7fffffffffffffffffffffffffffffff")},
	}
	for _, c := range cases {
		x, y := c[0], c[1]
		q, r := DivMod(x, y)
		wantQ, wantR := new(big.Int).QuoRem(x.ToBig(), y.ToBig(), new(big.Int))
		if q.ToBig().Cmp(wantQ) != 0 || r.ToBig().Cmp(wantR) != 0 {
			t.Fatalf("DivMod(%s,%s) wrong", x.Hex(), y.Hex())
		}
	}
}

func TestDivByZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	new(Nat).Div(New(1), new(Nat))
}

func TestModAliasSafe(t *testing.T) {
	x := New(1043915)
	y := New(768955)
	x.Mod(x, y)
	if x.Uint64() != 1043915%768955 {
		t.Fatalf("in-place Mod = %v", x)
	}
}

func TestTop2AndTopWord(t *testing.T) {
	n := NewFromWords([]uint32{0x33333333, 0x22222222, 0x11111111})
	if n.TopWord() != 0x11111111 {
		t.Fatalf("TopWord = %#x", n.TopWord())
	}
	if n.Top2() != 0x1111111122222222 {
		t.Fatalf("Top2 = %#x", n.Top2())
	}
	if New(0xABCD).Top2() != 0xABCD {
		t.Fatal("Top2 of 1-word Nat should be the word itself")
	}
}

func TestBit(t *testing.T) {
	n := New(0b1011)
	want := []uint{1, 1, 0, 1, 0}
	for i, w := range want {
		if n.Bit(i) != w {
			t.Errorf("Bit(%d) = %d, want %d", i, n.Bit(i), w)
		}
	}
	if n.Bit(1000) != 0 {
		t.Fatal("out-of-range bit should be 0")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := New(99)
	b := a.Clone()
	b.Add(b, New(1))
	if a.Uint64() != 99 || b.Uint64() != 100 {
		t.Fatal("Clone shares storage")
	}
}

// Property: quick-checked algebraic identities through big.Int.
func TestQuickIdentities(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	f := func(xs, ys []uint32) bool {
		x, y := NewFromWords(xs), NewFromWords(ys)
		if y.IsZero() {
			y = New(1)
		}
		q, r := DivMod(x, y)
		// x == q*y + r and r < y.
		recon := new(big.Int).Mul(q.ToBig(), y.ToBig())
		recon.Add(recon, r.ToBig())
		return recon.Cmp(x.ToBig()) == 0 && r.Cmp(y) < 0
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestSubMulRshiftAgainstBig(t *testing.T) {
	r := rand.New(rand.NewSource(14))
	for i := 0; i < 500; i++ {
		y := randBig(r, 1+r.Intn(400))
		alpha := uint32(r.Uint64())
		if alpha == 0 {
			alpha = 1
		}
		// Build x >= y*alpha.
		x := new(big.Int).Mul(y, big.NewInt(int64(alpha)))
		x.Add(x, randBig(r, 1+r.Intn(400)))
		got := new(Nat).SubMulRshift(FromBig(x), FromBig(y), alpha)
		want := new(big.Int).Sub(x, new(big.Int).Mul(y, big.NewInt(int64(alpha))))
		stripTrailingZeros(want)
		if got.ToBig().Cmp(want) != 0 {
			t.Fatalf("SubMulRshift mismatch: got %v want %v", got, want)
		}
	}
}

func stripTrailingZeros(b *big.Int) {
	if b.Sign() == 0 {
		return
	}
	for b.Bit(0) == 0 {
		b.Rsh(b, 1)
	}
}

func TestSubMulRshiftAliasing(t *testing.T) {
	x := New(1000)
	y := New(3)
	x.SubMulRshift(x, y, 3) // 1000 - 9 = 991 (odd)
	if x.Uint64() != 991 {
		t.Fatalf("aliased SubMulRshift = %v", x)
	}
	y.SubMulRshift(New(100), y, 2) // 100 - 6 = 94 -> 47
	if y.Uint64() != 47 {
		t.Fatalf("y-aliased SubMulRshift = %v", y)
	}
}

func TestSubMulRshiftUnderflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	new(Nat).SubMulRshift(New(10), New(7), 2)
}

func TestSubMul64(t *testing.T) {
	r := rand.New(rand.NewSource(15))
	for i := 0; i < 300; i++ {
		y := randBig(r, 1+r.Intn(64))
		alpha := r.Uint64()
		x := new(big.Int).Mul(y, new(big.Int).SetUint64(alpha))
		x.Add(x, randBig(r, 1+r.Intn(64)))
		got := new(Nat).SubMul64(FromBig(x), FromBig(y), alpha)
		want := new(big.Int).Sub(x, new(big.Int).Mul(y, new(big.Int).SetUint64(alpha)))
		if got.ToBig().Cmp(want) != 0 {
			t.Fatalf("SubMul64 mismatch")
		}
	}
	// alpha == 0 is identity.
	if got := new(Nat).SubMul64(New(5), New(3), 0); got.Uint64() != 5 {
		t.Fatal("SubMul64 alpha=0 not identity")
	}
}

func TestMulWord(t *testing.T) {
	r := rand.New(rand.NewSource(16))
	for i := 0; i < 200; i++ {
		y := randBig(r, 1+r.Intn(500))
		alpha := uint32(r.Uint64())
		got := new(Nat).MulWord(FromBig(y), alpha)
		want := new(big.Int).Mul(y, new(big.Int).SetUint64(uint64(alpha)))
		if got.ToBig().Cmp(want) != 0 {
			t.Fatalf("MulWord mismatch")
		}
	}
	if !new(Nat).MulWord(New(5), 0).IsZero() {
		t.Fatal("MulWord by 0 not zero")
	}
}

func TestSubMulShiftAddRshift(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for i := 0; i < 200; i++ {
		y := randBig(r, 32+r.Intn(200))
		alpha := uint32(r.Uint64()) | 1
		beta := 1 + r.Intn(4)
		// x = y*alpha*D^beta + extra, so the precondition holds.
		ad := new(big.Int).Mul(y, new(big.Int).SetUint64(uint64(alpha)))
		ad.Lsh(ad, uint(32*beta))
		x := new(big.Int).Add(ad, randBig(r, 1+r.Intn(100)))
		got := new(Nat).SubMulShiftAddRshift(FromBig(x), FromBig(y), alpha, beta)
		want := new(big.Int).Sub(x, ad)
		want.Add(want, y)
		stripTrailingZeros(want)
		if got.ToBig().Cmp(want) != 0 {
			t.Fatalf("SubMulShiftAddRshift mismatch: got %v want %v", got, want)
		}
	}
}

func TestSubMulShiftAddRshiftBetaZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	new(Nat).SubMulShiftAddRshift(New(100), New(3), 1, 0)
}

func BenchmarkSubMulRshift1024(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	x := FromBig(randBig(r, 1056))
	y := FromBig(randBig(r, 1024))
	tmp := new(Nat)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tmp.Set(x)
		tmp.SubMulRshift(tmp, y, 3)
	}
}

func BenchmarkDivMod1024(b *testing.B) {
	r := rand.New(rand.NewSource(2))
	x := FromBig(randBig(r, 1024))
	y := FromBig(randBig(r, 512))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DivMod(x, y)
	}
}

func BenchmarkCmp4096(b *testing.B) {
	r := rand.New(rand.NewSource(3))
	x := FromBig(randBig(r, 4096))
	y := x.Clone()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Cmp(y)
	}
}

func TestBytesRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(40))
	for i := 0; i < 200; i++ {
		b := randBig(r, 1+r.Intn(600))
		n := FromBig(b)
		got := new(Nat).SetBytes(n.Bytes())
		if got.Cmp(n) != 0 {
			t.Fatalf("bytes round trip failed for %v", b)
		}
		// Must match big.Int's encoding exactly.
		if want := b.Bytes(); string(n.Bytes()) != string(want) {
			t.Fatalf("Bytes() = %x, big says %x", n.Bytes(), want)
		}
	}
	if new(Nat).Bytes() != nil {
		t.Fatal("zero Bytes not nil")
	}
	if !new(Nat).SetBytes(nil).IsZero() || !new(Nat).SetBytes([]byte{0, 0}).IsZero() {
		t.Fatal("SetBytes of zeros not zero")
	}
	if got := new(Nat).SetBytes([]byte{1, 2, 3, 4, 5}); got.Uint64() != 0x0102030405 {
		t.Fatalf("SetBytes endianness wrong: %x", got.Uint64())
	}
}

func TestWordBytesRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	for i := 0; i < 200; i++ {
		n := FromBig(randBig(r, 1+r.Intn(600)))
		buf := n.AppendWordBytes([]byte("hdr"))
		if string(buf[:3]) != "hdr" {
			t.Fatal("AppendWordBytes clobbered the prefix")
		}
		if len(buf)-3 != n.Len()*4 {
			t.Fatalf("dump is %d bytes for %d words", len(buf)-3, n.Len())
		}
		got, err := new(Nat).SetWordBytes(buf[3:])
		if err != nil {
			t.Fatal(err)
		}
		if got.Cmp(n) != 0 {
			t.Fatalf("word-bytes round trip failed for %v", n.ToBig())
		}
	}
	// Explicit little-endian word layout.
	dump := New(0x0102030405).AppendWordBytes(nil)
	if string(dump) != "\x05\x04\x03\x02\x01\x00\x00\x00" {
		t.Fatalf("word dump layout = %x", dump)
	}
	// Zero dumps to nothing and restores to zero; trailing zero words
	// (possible in a dump of a non-normalized buffer) normalize away.
	if d := new(Nat).AppendWordBytes(nil); len(d) != 0 {
		t.Fatalf("zero dumped %d bytes", len(d))
	}
	z, err := new(Nat).SetWordBytes([]byte{7, 0, 0, 0, 0, 0, 0, 0})
	if err != nil || z.Uint64() != 7 || z.Len() != 1 {
		t.Fatalf("trailing zero word not normalized: %v (err %v)", z, err)
	}
	// Length not a multiple of the word size is an error, not a panic.
	if _, err := new(Nat).SetWordBytes([]byte{1, 2, 3}); err == nil {
		t.Fatal("SetWordBytes accepted a ragged dump")
	}
}

func TestSubRshiftDirect(t *testing.T) {
	// rshift(X - Y), the Fast Binary update, on the paper's first step:
	// 1043915 - 768955 = 274960 -> strip 4 zeros -> 17185.
	got := new(Nat).SubRshift(New(1043915), New(768955))
	if got.Uint64() != 17185 {
		t.Fatalf("SubRshift = %v, want 17185", got)
	}
	// x == y gives zero.
	if !new(Nat).SubRshift(New(99), New(99)).IsZero() {
		t.Fatal("SubRshift(x,x) != 0")
	}
	// In place.
	x := New(1043915)
	x.SubRshift(x, New(768955))
	if x.Uint64() != 17185 {
		t.Fatalf("in-place SubRshift = %v", x)
	}
}

func TestSubMul64SmallAlpha(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	// alpha fits in one word: the subMulNoShift path.
	for i := 0; i < 100; i++ {
		y := randBig(r, 1+r.Intn(200))
		alpha := uint64(r.Uint32())
		x := new(big.Int).Mul(y, new(big.Int).SetUint64(alpha))
		x.Add(x, randBig(r, 1+r.Intn(200)))
		got := new(Nat).SubMul64(FromBig(x), FromBig(y), alpha)
		want := new(big.Int).Sub(x, new(big.Int).Mul(y, new(big.Int).SetUint64(alpha)))
		if got.ToBig().Cmp(want) != 0 {
			t.Fatalf("SubMul64 small alpha mismatch")
		}
	}
	// Aliased small-alpha path.
	x := New(100)
	x.SubMul64(x, New(7), 3)
	if x.Uint64() != 79 {
		t.Fatalf("aliased SubMul64 = %v", x)
	}
	y := New(7)
	y.SubMul64(New(100), y, 3)
	if y.Uint64() != 79 {
		t.Fatalf("y-aliased SubMul64 = %v", y)
	}
}

func TestAccessorPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"Top2 of zero":         func() { new(Nat).Top2() },
		"TopWord of zero":      func() { new(Nat).TopWord() },
		"FromBig negative":     func() { FromBig(big.NewInt(-1)) },
		"Lshift negative":      func() { new(Nat).Lshift(New(1), -1) },
		"Rshift negative":      func() { new(Nat).Rshift(New(1), -1) },
		"SubMulRshift alpha 0": func() { new(Nat).SubMulRshift(New(1), New(1), 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestTrailingZeroBitsMultiWordGap(t *testing.T) {
	// A zero low word followed by an even word: 0x6 << 32.
	n := NewFromWords([]uint32{0, 6})
	if got := n.TrailingZeroBits(); got != 33 {
		t.Fatalf("TrailingZeroBits = %d, want 33", got)
	}
	if new(Nat).TrailingZeroBits() != 0 {
		t.Fatal("TrailingZeroBits(0) != 0")
	}
}

func TestLshiftZeroAndWordAligned(t *testing.T) {
	if !new(Nat).Lshift(new(Nat), 100).IsZero() {
		t.Fatal("0 << k != 0")
	}
	got := new(Nat).Lshift(New(0xDEADBEEF), 64) // word-aligned path
	want := new(big.Int).Lsh(big.NewInt(0xDEADBEEF), 64)
	if got.ToBig().Cmp(want) != 0 {
		t.Fatalf("word-aligned Lshift wrong")
	}
}
