package umm

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mustNew(t *testing.T, w, l int) *Machine {
	t.Helper()
	m, err := New(w, l)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 5); err == nil {
		t.Error("width 0 accepted")
	}
	if _, err := New(4, 0); err == nil {
		t.Error("latency 0 accepted")
	}
	if _, err := New(4, 5); err != nil {
		t.Errorf("valid machine rejected: %v", err)
	}
}

// TestPaperFigure2Example reproduces Section VI's worked example: on the
// UMM with w = 4 and l = 5, a round where warp W(0)'s requests span three
// address groups and W(1)'s span one completes in 3 + 1 + 5 - 1 = 8 time
// units.
func TestPaperFigure2Example(t *testing.T) {
	m := mustNew(t, 4, 5)
	// W(0): addresses in groups 0, 1, 2; W(1): all in group 3.
	addrs := []int64{0, 5, 9, 2, 12, 13, 14, 15}
	b := m.Batch(addrs)
	if b.Groups != 4 {
		t.Errorf("Groups = %d, want 4 (3 for W(0) + 1 for W(1))", b.Groups)
	}
	if b.Time != 8 {
		t.Errorf("Time = %d, want 8", b.Time)
	}
	if b.Warps != 2 || b.Coalesced {
		t.Errorf("Warps = %d Coalesced = %v, want 2,false", b.Warps, b.Coalesced)
	}
}

func TestBatchCoalesced(t *testing.T) {
	m := mustNew(t, 4, 5)
	// Two warps, each hitting a single group: 2 + 5 - 1 = 6.
	b := m.Batch([]int64{0, 1, 2, 3, 8, 9, 10, 11})
	if b.Time != 6 || !b.Coalesced || b.Groups != 2 {
		t.Errorf("got %+v, want time 6, coalesced, groups 2", b)
	}
}

func TestBatchIdleWarpsNotDispatched(t *testing.T) {
	m := mustNew(t, 4, 5)
	// Second warp entirely idle: only W(0) dispatched.
	b := m.Batch([]int64{0, 1, Idle, 3, Idle, Idle, Idle, Idle})
	if b.Warps != 1 || b.Groups != 1 || b.Time != 5 {
		t.Errorf("got %+v, want warps 1, groups 1, time 5", b)
	}
	// Fully idle round.
	b = m.Batch([]int64{Idle, Idle})
	if b.Time != 0 || b.Warps != 0 {
		t.Errorf("idle round cost %+v", b)
	}
}

func TestBatchPartialWarp(t *testing.T) {
	m := mustNew(t, 4, 2)
	// 6 threads: one full warp (1 group) and one partial warp (2 groups).
	b := m.Batch([]int64{0, 1, 2, 3, 4, 100})
	if b.Warps != 2 || b.Groups != 3 || b.Time != 4 {
		t.Errorf("got %+v, want warps 2, groups 3, time 4", b)
	}
}

func TestBatchWorstCase(t *testing.T) {
	m := mustNew(t, 4, 5)
	// Every thread in its own group: w groups per warp.
	b := m.Batch([]int64{0, 4, 8, 12})
	if b.Groups != 4 || b.Time != 8 {
		t.Errorf("got %+v, want groups 4, time 8", b)
	}
}

func TestGroupAndNegativeAddressPanics(t *testing.T) {
	m := mustNew(t, 8, 1)
	if m.Group(0) != 0 || m.Group(7) != 0 || m.Group(8) != 1 || m.Group(63) != 7 {
		t.Error("Group arithmetic wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative address accepted")
		}
	}()
	m.Group(-1)
}

// TestTheorem1Bound validates Theorem 1: the bulk execution of an
// oblivious algorithm (all threads touch the same logical index each
// round) in column-wise layout costs exactly (p/w + l - 1) * t time units.
func TestTheorem1Bound(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 30; trial++ {
		w := 1 << (1 + r.Intn(4))  // 2..16
		l := 1 + r.Intn(20)        // 1..20
		p := w * (1 + r.Intn(16))  // multiple of w
		steps := 1 + r.Intn(40)    // t
		n := 1 + r.Intn(30)        // logical array size
		idxs := make([]int, steps) // one shared oblivious index sequence
		for i := range idxs {
			idxs[i] = r.Intn(n)
		}
		m := mustNew(t, w, l)
		progs := make([]Program, p)
		for j := 0; j < p; j++ {
			progs[j] = ColumnProgram(0, p, j, idxs)
		}
		st := m.Run(progs)
		want := m.ObliviousTime(int64(p), int64(steps))
		if st.Time != want {
			t.Fatalf("w=%d l=%d p=%d t=%d: time %d, Theorem 1 says %d",
				w, l, p, steps, st.Time, want)
		}
		if st.CoalescedFraction() != 1.0 {
			t.Fatalf("oblivious column-wise run not fully coalesced: %v", st.CoalescedFraction())
		}
		if st.Accesses != int64(p*steps) {
			t.Fatalf("accesses = %d, want %d", st.Accesses, p*steps)
		}
	}
}

// TestColumnWiseCoalesced is the Figure 3 experiment: the same oblivious
// access pattern is w times cheaper column-wise than row-wise (ignoring
// the latency term).
func TestColumnWiseCoalesced(t *testing.T) {
	const (
		w     = 8
		l     = 4
		p     = 64
		n     = 16
		steps = 32
	)
	r := rand.New(rand.NewSource(2))
	idxs := make([]int, steps)
	for i := range idxs {
		idxs[i] = r.Intn(n)
	}
	m := mustNew(t, w, l)

	col := make([]Program, p)
	row := make([]Program, p)
	for j := 0; j < p; j++ {
		col[j] = ColumnProgram(0, p, j, idxs)
		row[j] = RowProgram(0, n, j, idxs)
	}
	colStats := m.Run(col)
	rowStats := m.Run(row)

	if colStats.Groups*int64(w) != rowStats.Groups {
		t.Errorf("row-wise groups = %d, want w * column-wise = %d",
			rowStats.Groups, colStats.Groups*int64(w))
	}
	if colStats.CoalescedFraction() != 1.0 {
		t.Error("column-wise not fully coalesced")
	}
	if rowStats.CoalescedFraction() != 0.0 {
		t.Error("row-wise unexpectedly coalesced")
	}
	if rowStats.Time <= colStats.Time {
		t.Errorf("row-wise (%d) not slower than column-wise (%d)", rowStats.Time, colStats.Time)
	}
}

// TestRunUnevenPrograms checks lockstep rounds with threads finishing at
// different times (the semi-oblivious bulk GCD situation).
func TestRunUnevenPrograms(t *testing.T) {
	m := mustNew(t, 2, 3)
	progs := []Program{
		&SliceProgram{Addrs: []int64{0, 2, 4}},
		&SliceProgram{Addrs: []int64{1}},
	}
	st := m.Run(progs)
	// Round 1: {0,1} one group -> 1+3-1 = 3.
	// Round 2: {2,idle} -> 3. Round 3: {4,idle} -> 3.
	if st.Rounds != 3 || st.Time != 9 || st.Accesses != 4 {
		t.Errorf("got %+v, want rounds 3, time 9, accesses 4", st)
	}
}

func TestRunEmpty(t *testing.T) {
	m := mustNew(t, 4, 5)
	st := m.Run(nil)
	if st.Time != 0 || st.Rounds != 0 {
		t.Errorf("empty run cost %+v", st)
	}
	st = m.Run([]Program{&SliceProgram{}})
	if st.Time != 0 {
		t.Errorf("all-empty programs cost %+v", st)
	}
	if st.CoalescedFraction() != 0 {
		t.Error("CoalescedFraction of empty run should be 0")
	}
}

func TestFuncProgram(t *testing.T) {
	n := 0
	p := FuncProgram(func() (int64, bool) {
		if n >= 3 {
			return 0, false
		}
		n++
		return int64(n), true
	})
	m := mustNew(t, 4, 1)
	st := m.Run([]Program{p})
	if st.Accesses != 3 {
		t.Errorf("FuncProgram served %d accesses, want 3", st.Accesses)
	}
}

// TestBatchTimeMonotonic property-checks that adding requests never
// reduces a round's cost.
func TestBatchTimeMonotonic(t *testing.T) {
	m := mustNew(t, 4, 5)
	f := func(raw []uint16, extra uint16) bool {
		addrs := make([]int64, len(raw))
		for i, v := range raw {
			addrs[i] = int64(v)
		}
		base := m.Batch(addrs).Time
		grown := m.Batch(append(append([]int64{}, addrs...), int64(extra))).Time
		return grown >= base
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestLayoutAddresses pins the two layout formulas.
func TestLayoutAddresses(t *testing.T) {
	if ColumnWise(0, 8, 3, 5) != 29 {
		t.Error("ColumnWise(0,8,3,5) != 3*8+5")
	}
	if RowWise(0, 16, 3, 5) != 83 {
		t.Error("RowWise(0,16,3,5) != 5*16+3")
	}
	if ColumnWise(100, 8, 0, 0) != 100 {
		t.Error("base offset ignored")
	}
}

func BenchmarkBatch1024Threads(b *testing.B) {
	m := &Machine{Width: 32, Latency: 100}
	addrs := make([]int64, 1024)
	for i := range addrs {
		addrs[i] = int64(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Batch(addrs)
	}
}
