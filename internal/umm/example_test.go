package umm_test

import (
	"fmt"

	"bulkgcd/internal/umm"
)

// The Section VI worked example: two warps on a UMM with width 4 and
// latency 5, one spanning three address groups and one fully coalesced,
// complete in 3 + 1 + 5 - 1 = 8 time units.
func ExampleMachine_Batch() {
	m, err := umm.New(4, 5)
	if err != nil {
		panic(err)
	}
	addrs := []int64{
		0, 5, 9, 2, // W(0): groups 0, 1, 2
		12, 13, 14, 15, // W(1): group 3
	}
	b := m.Batch(addrs)
	fmt.Printf("groups=%d time=%d coalesced=%v\n", b.Groups, b.Time, b.Coalesced)
	// Output: groups=4 time=8 coalesced=false
}

// Theorem 1: the bulk execution of an oblivious algorithm by p threads in
// column-wise layout costs exactly (p/w + l - 1) * t time units.
func ExampleMachine_ObliviousTime() {
	m, err := umm.New(32, 100)
	if err != nil {
		panic(err)
	}
	idxs := []int{0, 1, 2, 1, 0} // any input-independent index sequence
	const p = 128
	progs := make([]umm.Program, p)
	for j := 0; j < p; j++ {
		progs[j] = umm.ColumnProgram(0, p, j, idxs)
	}
	st := m.Run(progs)
	fmt.Printf("simulated=%d closedform=%d coalesced=%.0f%%\n",
		st.Time, m.ObliviousTime(p, int64(len(idxs))), 100*st.CoalescedFraction())
	// Output: simulated=515 closedform=515 coalesced=100%
}
