package umm

// Layout helpers for the bulk-execution memory arrangements of Section VI.
//
// The bulk execution stores p copies of a logical array b of size n, one
// per thread. Two physical arrangements matter:
//
//   - Column-wise (Figure 3): element i of thread j lives at address
//     i*p + j, so when all p threads touch the same logical index the
//     requests land on consecutive addresses and every aligned warp hits
//     exactly one address group (fully coalesced).
//   - Row-wise (the naive layout): element i of thread j lives at
//     j*n + i, so lockstep threads touch addresses n apart and every
//     request of a warp lands in its own address group (w-fold slower on
//     the UMM whenever n >= w).

// ColumnWise returns the physical address of element i of thread j when p
// threads each hold an array laid out column-wise starting at base.
func ColumnWise(base int64, p, i, j int) int64 {
	return base + int64(i)*int64(p) + int64(j)
}

// RowWise returns the physical address of element i of thread j when each
// thread's array of size n is stored contiguously starting at base.
func RowWise(base int64, n, i, j int) int64 {
	return base + int64(j)*int64(n) + int64(i)
}

// ColumnProgram builds the address stream of thread j executing an
// oblivious algorithm whose memory trace is the logical index sequence
// idxs, in column-wise layout.
func ColumnProgram(base int64, p, j int, idxs []int) Program {
	addrs := make([]int64, len(idxs))
	for k, i := range idxs {
		addrs[k] = ColumnWise(base, p, i, j)
	}
	return &SliceProgram{Addrs: addrs}
}

// RowProgram builds the same stream in row-wise layout.
func RowProgram(base int64, n, j int, idxs []int) Program {
	addrs := make([]int64, len(idxs))
	for k, i := range idxs {
		addrs[k] = RowWise(base, n, i, j)
	}
	return &SliceProgram{Addrs: addrs}
}
