package experiments

import (
	"strings"
	"testing"

	"bulkgcd/internal/gcd"
	"bulkgcd/internal/umm"
)

// TestRunDivergence asserts the Section VII reproduction: Binary pays a
// substantial divergence penalty, the single-body kernels pay none, and
// the serialized cycles preserve the (E) < (D) < (C) ranking.
func TestRunDivergence(t *testing.T) {
	rs, err := RunDivergence(32, 4, 512, 64, true, 1)
	if err != nil {
		t.Fatal(err)
	}
	byAlg := map[gcd.Algorithm]DivergenceResult{}
	for _, r := range rs {
		byAlg[r.Alg] = r
	}
	c, d, e := byAlg[gcd.Binary], byAlg[gcd.FastBinary], byAlg[gcd.Approximate]
	if c.Penalty < 1.5 || c.Penalty > 3.0 {
		t.Errorf("Binary penalty %.2f outside [1.5, 3.0] (three-way branch)", c.Penalty)
	}
	if d.Penalty > 1.01 || e.Penalty > 1.01 {
		t.Errorf("single-body kernels diverged: D=%.3f E=%.3f", d.Penalty, e.Penalty)
	}
	if d.Converged != 1.0 || e.Converged != 1.0 {
		t.Errorf("D/E converged fractions %.2f/%.2f, want 1.0", d.Converged, e.Converged)
	}
	if !(e.CyclesPerGCD < d.CyclesPerGCD && d.CyclesPerGCD < c.CyclesPerGCD) {
		t.Errorf("cycle ranking violated: E=%.0f D=%.0f C=%.0f",
			e.CyclesPerGCD, d.CyclesPerGCD, c.CyclesPerGCD)
	}
	// With divergence, C/D exceeds the pure iteration ratio (~2).
	if ratio := c.CyclesPerGCD / d.CyclesPerGCD; ratio < 2.5 {
		t.Errorf("C/D SIMT ratio %.2f, want > 2.5 (divergence amplifies)", ratio)
	}
	out := DivergenceTable(rs).String()
	if !strings.Contains(out, "divergence penalty") || !strings.Contains(out, "(C) Binary") {
		t.Errorf("table wrong:\n%s", out)
	}
}

func TestRunDivergenceValidation(t *testing.T) {
	if _, err := RunDivergence(0, 4, 512, 8, true, 1); err == nil {
		t.Error("warp size 0 accepted")
	}
}

// TestRunCrossover asserts the baseline relationship: batch GCD's
// advantage over all-pairs grows with corpus size (it is the
// asymptotically faster engine; the paper's contribution is making the
// embarrassingly parallel engine fast per pair). Both engines run on
// two-worker pools, so the ratio measures the algorithms, not the
// parallelism gap.
func TestRunCrossover(t *testing.T) {
	// The m=16 point is ~1ms of work, so a scheduler hiccup while other
	// package binaries share the machine can invert the ratios; measure
	// up to three times and demand one clean reading.
	var ps []CrossoverPoint
	var r0, r1 float64
	for attempt := 0; attempt < 3; attempt++ {
		var err error
		ps, err = RunCrossover(256, []int{16, 64}, 2, 2)
		if err != nil {
			t.Fatal(err)
		}
		if len(ps) != 2 {
			t.Fatalf("got %d points", len(ps))
		}
		r0 = float64(ps[0].AllPairs) / float64(ps[0].Batch)
		r1 = float64(ps[1].AllPairs) / float64(ps[1].Batch)
		if r1 > r0*0.7 && ps[1].Batch < ps[1].AllPairs {
			break
		}
	}
	// Quadrupling the corpus multiplies all-pairs work by ~16x and batch
	// work by ~4-5x; allow generous slack for timer noise on a loaded box.
	if r1 <= r0*0.7 {
		t.Errorf("batch advantage did not grow: %.2f -> %.2f", r0, r1)
	}
	if ps[1].Batch >= ps[1].AllPairs {
		t.Errorf("batch (%v) not faster than all-pairs (%v) at m=64", ps[1].Batch, ps[1].AllPairs)
	}
	out := CrossoverTable(ps).String()
	if !strings.Contains(out, "batch GCD") || !strings.Contains(out, "all-pairs (E)") {
		t.Errorf("table wrong:\n%s", out)
	}
}

// TestRunOccupancySweep: per-GCD time falls monotonically (weakly) with
// occupancy until latency is hidden, then the bound shifts away from
// latency.
func TestRunOccupancySweep(t *testing.T) {
	ps, err := RunOccupancySweep(nil, gcd.Approximate, 256, 32, []int{1, 4, 16, 64}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 4 {
		t.Fatalf("got %d points", len(ps))
	}
	for i := 1; i < len(ps); i++ {
		if ps[i].PerGCDMicros > ps[i-1].PerGCDMicros+1e-9 {
			t.Errorf("occupancy %d slower than %d: %.3f > %.3f",
				ps[i].ResidentWarps, ps[i-1].ResidentWarps, ps[i].PerGCDMicros, ps[i-1].PerGCDMicros)
		}
	}
	if ps[0].Bound != "latency" {
		t.Errorf("1 resident warp bounded by %s, want latency", ps[0].Bound)
	}
	if ps[len(ps)-1].Bound == "latency" {
		t.Error("64 resident warps still latency bound")
	}
	if !strings.Contains(OccupancyTable(ps).String(), "bounded by") {
		t.Error("table wrong")
	}
}

// TestRunRelatedWork: the model must reproduce the introduction's
// headline ordering - the paper's Approximate-on-780Ti beats every prior
// Binary implementation by a wide margin.
func TestRunRelatedWork(t *testing.T) {
	rows, err := RunRelatedWork(64, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	paper := rows[3]
	if paper.Alg != gcd.Approximate {
		t.Fatal("last row is not the paper's implementation")
	}
	for _, r := range rows[:3] {
		if paper.ModelUs >= r.ModelUs {
			t.Errorf("paper (%.3f us) not faster than %s (%.3f us)", paper.ModelUs, r.Name, r.ModelUs)
		}
		if ratio := r.ModelUs / paper.ModelUs; ratio < 3 {
			t.Errorf("%s only %.1fx slower in model; paper reports >9x", r.Name, ratio)
		}
	}
	if !strings.Contains(RelatedWorkTable(rows).String(), "this paper") {
		t.Error("table wrong")
	}
}

// TestRunObliviousTax: the oblivious bulk execution coalesces perfectly;
// the semi-oblivious Approximate still wins on total time - the paper's
// design bet, quantified.
func TestRunObliviousTax(t *testing.T) {
	m, err := umm.New(32, 100)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunObliviousTax(m, 512, 64, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.ObliviousCoalesced != 1.0 {
		t.Errorf("oblivious bulk not fully coalesced: %.3f", res.ObliviousCoalesced)
	}
	if res.ApproxCoalesced >= 1.0 || res.ApproxCoalesced <= 0 {
		t.Errorf("Approximate coalescing %.3f outside (0,1)", res.ApproxCoalesced)
	}
	if res.ObliviousUnits <= res.ApproxUnits {
		t.Errorf("oblivious (%0.f) unexpectedly cheaper than Approximate (%.0f)",
			res.ObliviousUnits, res.ApproxUnits)
	}
	if tax := res.ObliviousUnits / res.ApproxUnits; tax < 1.5 || tax > 20 {
		t.Errorf("obliviousness tax %.2fx outside the plausible band", tax)
	}
	if !strings.Contains(res.Table().String(), "tax of full obliviousness") {
		t.Error("table wrong")
	}
}
