package experiments

import (
	"strings"
	"testing"

	"bulkgcd/internal/gcd"
	"bulkgcd/internal/umm"
)

// TestTableIVShape asserts the paper's four observations on Table IV with
// a reduced but statistically sufficient sample:
//  1. early termination halves the iteration count,
//  2. iterations are proportional to the modulus length,
//  3. (E) is about half of (D) and a quarter of (C),
//  4. (E) and (B) agree almost exactly.
func TestTableIVShape(t *testing.T) {
	res, err := RunTableIV(TableIVConfig{Sizes: []int{512, 1024}, Pairs: 60, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, size := range []int{512, 1024} {
		for _, alg := range gcd.Algorithms {
			m := res.Mean[alg][size]
			ratio := m[1] / m[0]
			if ratio < 0.4 || ratio > 0.6 {
				t.Errorf("%v %d: early/non ratio %.3f, want ~0.5", alg, size, ratio)
			}
		}
		e := res.Mean[gcd.Approximate][size]
		d := res.Mean[gcd.FastBinary][size]
		c := res.Mean[gcd.Binary][size]
		b := res.Mean[gcd.Fast][size]
		if r := d[0] / e[0]; r < 1.7 || r > 2.3 {
			t.Errorf("size %d: (D)/(E) = %.2f, want ~2", size, r)
		}
		if r := c[0] / e[0]; r < 3.2 || r > 4.6 {
			t.Errorf("size %d: (C)/(E) = %.2f, want ~4", size, r)
		}
		if rel := (e[0] - b[0]) / b[0]; rel < -0.001 || rel > 0.001 {
			t.Errorf("size %d: (E)-(B) relative %.6f, want |rel| < 0.1%%", size, rel)
		}
	}
	// Proportionality: 1024-bit counts ~2x 512-bit counts.
	for _, alg := range gcd.Algorithms {
		r := res.Mean[alg][1024][0] / res.Mean[alg][512][0]
		if r < 1.85 || r > 2.15 {
			t.Errorf("%v: 1024/512 iteration ratio %.3f, want ~2", alg, r)
		}
	}
	// Paper's absolute anchors (Table IV, non-terminate 1024): (E) 380.8,
	// (C) 1445.1, (D) 723.6, (A) 598.4. Allow 3% statistical slack.
	anchors := map[gcd.Algorithm]float64{
		gcd.Original:    598.4,
		gcd.Fast:        380.8,
		gcd.Binary:      1445.1,
		gcd.FastBinary:  723.6,
		gcd.Approximate: 380.8,
	}
	for alg, want := range anchors {
		got := res.Mean[alg][1024][0]
		if got < want*0.97 || got > want*1.03 {
			t.Errorf("%v 1024 NT mean %.1f, paper %.1f (3%% tolerance)", alg, got, want)
		}
	}
	// The rendered table carries every algorithm row plus the diff row.
	out := res.Table().String()
	for _, needle := range []string{"(A)", "(B)", "(C)", "(D)", "(E)", "(E)-(B)", "NT 512", "ET 1024"} {
		if !strings.Contains(out, needle) {
			t.Errorf("table missing %q:\n%s", needle, out)
		}
	}
}

// TestTableVShape asserts Table V's qualitative content on a small run:
// (E) < (D) < (C) in CPU time and in simulated GPU time, and the parallel
// executor beats the sequential CPU.
func TestTableVShape(t *testing.T) {
	res, err := RunTableV(TableVConfig{
		Sizes:      []int{512},
		CPUPairs:   30,
		BulkModuli: 48,
		SimThreads: 32,
		Early:      true,
		Seed:       2,
	})
	if err != nil {
		t.Fatal(err)
	}
	cC := res.Cells[gcd.Binary][512]
	cD := res.Cells[gcd.FastBinary][512]
	cE := res.Cells[gcd.Approximate][512]
	// Wall-clock assertions stay loose (this can run on a loaded single
	// core): (E) must clearly beat (C); the full E < D < C ranking is
	// asserted on the deterministic simulated metrics below.
	if cE.CPUPerGCD >= cC.CPUPerGCD {
		t.Errorf("CPU: Approximate (%v) not faster than Binary (%v)", cE.CPUPerGCD, cC.CPUPerGCD)
	}
	if !(cE.SimUnitsPerGCD < cD.SimUnitsPerGCD && cD.SimUnitsPerGCD < cC.SimUnitsPerGCD) {
		t.Errorf("sim ranking violated: E=%.0f D=%.0f C=%.0f",
			cE.SimUnitsPerGCD, cD.SimUnitsPerGCD, cC.SimUnitsPerGCD)
	}
	if !(cE.DevPerGCD < cD.DevPerGCD && cD.DevPerGCD < cC.DevPerGCD) {
		t.Errorf("device ranking violated: E=%v D=%v C=%v",
			cE.DevPerGCD, cD.DevPerGCD, cC.DevPerGCD)
	}
	if cC.DevDivergence < 1.5 || cE.DevDivergence > 1.01 {
		t.Errorf("device divergence penalties wrong: C=%.2f E=%.2f",
			cC.DevDivergence, cE.DevDivergence)
	}
	if cE.DevBound == "" {
		t.Error("device bound not reported")
	}
	for _, cell := range []*TableVCell{cC, cD, cE} {
		if cell.ParallelPerGCD <= 0 || cell.CPUPerGCD <= 0 {
			t.Errorf("non-positive timing in cell %+v", cell)
		}
		if cell.CoalescedFrac <= 0 || cell.CoalescedFrac >= 1 {
			t.Errorf("coalesced fraction %.3f outside (0,1)", cell.CoalescedFrac)
		}
	}
	out := res.Table().String()
	for _, needle := range []string{"CPU (C)", "GPU-par (E)", "GPU-sim (D)", "GPU-dev (E)", "dev bound (C)", "coalesced (E)"} {
		if !strings.Contains(out, needle) {
			t.Errorf("table missing %q:\n%s", needle, out)
		}
	}
}

// TestBetaStats asserts the Section V claim at reduced scale: beta > 0 is
// at most ~1e-4 of iterations (the paper measures <1e-8 at its much larger
// sample; zero occurrences are the expected outcome here).
func TestBetaStats(t *testing.T) {
	res, err := RunBetaStats(BetaStatsConfig{Sizes: []int{512, 1024}, Pairs: 100, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, size := range []int{512, 1024} {
		if v := res.PerSize[size]; v[0] < 10000 {
			t.Fatalf("size %d: sample too small (%d iterations)", size, v[0])
		}
		if f := res.BetaFraction(size); f > 1e-4 {
			t.Errorf("size %d: beta fraction %.2e too high", size, f)
		}
		// Case 4-A dominates for RSA-scale operands.
		c := res.Cases[size]
		if c[gcd.Case4A] < c[gcd.Case4B]+c[gcd.Case4C] {
			t.Errorf("size %d: case mix unexpected: %v", size, c)
		}
	}
	if !strings.Contains(res.Table().String(), "fraction") {
		t.Error("beta table missing header")
	}
}

// TestMemOps asserts the Figure 1 / Section IV accounting: per-iteration
// memory operations in early-terminate mode sit between half the bound
// (operands shrink towards s/2) and the bound itself.
func TestMemOps(t *testing.T) {
	res, err := RunMemOps([]int{512, 1024}, 50, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, size := range []int{512, 1024} {
		got := res.PerIter[size]
		bound := res.Bound[size]
		if got > bound+4 {
			t.Errorf("size %d: %.1f ops/iter above 3s/d = %.1f", size, got, bound)
		}
		if got < bound/2 {
			t.Errorf("size %d: %.1f ops/iter below half the bound", size, got)
		}
	}
	if !strings.Contains(res.Table().String(), "3*s/d") {
		t.Error("memops table missing bound column")
	}
}

// TestRunLayout asserts the Figure 3 result: column-wise equals the
// Theorem 1 closed form and is fully coalesced; row-wise is w times more
// group traffic.
func TestRunLayout(t *testing.T) {
	res, err := RunLayout(8, 16, 64, 40, 20, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.ColumnTime != res.TheoremTime {
		t.Errorf("column-wise time %d != Theorem 1 %d", res.ColumnTime, res.TheoremTime)
	}
	if res.ColumnCoalesced != 1 || res.RowCoalesced != 0 {
		t.Errorf("coalesced fractions: col %.2f row %.2f", res.ColumnCoalesced, res.RowCoalesced)
	}
	if res.RowTime <= res.ColumnTime {
		t.Errorf("row-wise (%d) not slower than column-wise (%d)", res.RowTime, res.ColumnTime)
	}
	if _, err := RunLayout(8, 16, 63, 10, 4, 1); err == nil {
		t.Error("non-multiple thread count accepted")
	}
}

// TestRunSemiOblivious asserts Section VI's semi-oblivious claim for the
// bulk Approximate GCD: mostly coalesced, and within a small factor of the
// oblivious lower bound.
func TestRunSemiOblivious(t *testing.T) {
	m, err := umm.New(32, 100)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunSemiOblivious(m, gcd.Approximate, 512, 64, true, 6)
	if err != nil {
		t.Fatal(err)
	}
	if res.CoalescedFrac <= 0.05 || res.CoalescedFrac >= 1 {
		t.Errorf("coalesced fraction %.3f outside (0.05, 1)", res.CoalescedFrac)
	}
	if res.TimePerGCD < res.ObliviousLower {
		t.Errorf("simulated time %.0f below the oblivious bound %.0f", res.TimePerGCD, res.ObliviousLower)
	}
	if res.TimePerGCD > 4*res.ObliviousLower {
		t.Errorf("simulated time %.0f more than 4x the oblivious bound %.0f; not semi-oblivious",
			res.TimePerGCD, res.ObliviousLower)
	}
}
