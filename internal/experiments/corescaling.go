package experiments

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"bulkgcd/internal/bulk"
	"bulkgcd/internal/engine"
	"bulkgcd/internal/gcd"
	"bulkgcd/internal/obs"
	"bulkgcd/internal/rsakey"
	"bulkgcd/internal/tabfmt"
)

// ---------------------------------------------------------------------------
// Multicore scaling: wall-clock of one bulk engine as the pool widens.

// CoreScalingConfig shapes a speedup-vs-cores sweep over the all-pairs
// engine (the paper's workload, and the one whose pairs are heavy
// enough to expose scheduling overhead at small corpora).
type CoreScalingConfig struct {
	// Cores lists the pool widths to sweep, ascending (default 1,2,4,8).
	// Each run also pins GOMAXPROCS to the width so a point measures
	// "this many cores", not "this many goroutines on all cores".
	Cores []int
	// Moduli and Bits shape the corpus (defaults 96 and 512).
	Moduli int
	Bits   int
	Seed   int64
	// Kernel selects the per-pair GCD kernel (scalar or lanes).
	Kernel engine.KernelKind
}

// CoreScalingPoint is one pool width in the sweep.
type CoreScalingPoint struct {
	Cores      int
	Elapsed    time.Duration
	NsPerPair  float64
	Speedup    float64 // vs the first (narrowest) point
	Efficiency float64 // Speedup / Cores
	Steals     int64   // engine_steals_total over the run
	Findings   int     // factor count; identical at every width by contract
}

// RunCoreScalingContext sweeps the all-pairs engine over cfg.Cores,
// verifying along the way that every width reports byte-identical
// findings (the work-stealing pool reorders execution, never results).
// Widths beyond runtime.NumCPU() still run — oversubscribed — so the
// sweep stays total on small machines; their efficiency column simply
// documents that extra workers beyond the physical cores buy nothing.
func RunCoreScalingContext(ctx context.Context, cfg CoreScalingConfig) ([]CoreScalingPoint, error) {
	cores := cfg.Cores
	if len(cores) == 0 {
		cores = []int{1, 2, 4, 8}
	}
	m := cfg.Moduli
	if m <= 0 {
		m = 96
	}
	bits := cfg.Bits
	if bits <= 0 {
		bits = 512
	}
	c, err := rsakey.GenerateCorpus(rsakey.CorpusSpec{Count: m, Bits: bits, Seed: cfg.Seed, Pseudo: true})
	if err != nil {
		return nil, err
	}
	moduli := c.Moduli()
	pairs := float64(m) * float64(m-1) / 2

	var out []CoreScalingPoint
	var baseline *bulk.Result
	for _, w := range cores {
		if w < 1 {
			return nil, fmt.Errorf("experiments: core count %d", w)
		}
		reg := obs.NewRegistry()
		prev := runtime.GOMAXPROCS(w)
		start := time.Now()
		res, err := bulk.AllPairsContext(ctx, moduli, bulk.Config{
			Config:    engine.Config{Workers: w, Metrics: reg},
			Algorithm: gcd.Approximate, Early: true, Kernel: cfg.Kernel,
		})
		elapsed := time.Since(start)
		runtime.GOMAXPROCS(prev)
		if err != nil {
			return nil, err
		}
		if res.Canceled {
			return nil, fmt.Errorf("experiments: core sweep interrupted at %d cores", w)
		}
		if baseline == nil {
			baseline = res
		} else if err := sameFindings(baseline, res); err != nil {
			return nil, fmt.Errorf("experiments: findings differ at %d cores: %w", w, err)
		}
		p := CoreScalingPoint{
			Cores:     w,
			Elapsed:   elapsed,
			NsPerPair: float64(elapsed.Nanoseconds()) / pairs,
			Steals:    reg.Snapshot().Counters["engine_steals_total"],
			Findings:  len(res.Factors),
		}
		p.Speedup = float64(out0Elapsed(out, elapsed)) / float64(elapsed)
		p.Efficiency = p.Speedup / float64(w)
		out = append(out, p)
	}
	return out, nil
}

// out0Elapsed returns the baseline elapsed time: the first point's, or
// elapsed itself when this is the first point (speedup 1.0).
func out0Elapsed(out []CoreScalingPoint, elapsed time.Duration) time.Duration {
	if len(out) == 0 {
		return elapsed
	}
	return out[0].Elapsed
}

// sameFindings diffs two results' factor lists; both are sorted by the
// engines, so inequality anywhere is a determinism violation.
func sameFindings(a, b *bulk.Result) error {
	if len(a.Factors) != len(b.Factors) {
		return fmt.Errorf("%d factors vs %d", len(a.Factors), len(b.Factors))
	}
	for i := range a.Factors {
		fa, fb := a.Factors[i], b.Factors[i]
		if fa.I != fb.I || fa.J != fb.J || fa.P.Cmp(fb.P) != 0 {
			return fmt.Errorf("factor %d: (%d,%d,%v) vs (%d,%d,%v)", i, fa.I, fa.J, fa.P, fb.I, fb.J, fb.P)
		}
	}
	return nil
}

// CoreScalingJSON renders the sweep for the report artifact.
func CoreScalingJSON(ps []CoreScalingPoint) []map[string]any {
	out := make([]map[string]any, 0, len(ps))
	for _, p := range ps {
		out = append(out, map[string]any{
			"cores":      p.Cores,
			"ms":         float64(p.Elapsed.Nanoseconds()) / 1e6,
			"ns_pair":    p.NsPerPair,
			"speedup":    p.Speedup,
			"efficiency": p.Efficiency,
			"steals":     p.Steals,
			"findings":   p.Findings,
		})
	}
	return out
}

// CoreScalingTable renders the sweep.
func CoreScalingTable(ps []CoreScalingPoint) *tabfmt.Table {
	t := tabfmt.NewTable("cores", "elapsed", "ns/pair", "speedup", "efficiency", "steals")
	for _, p := range ps {
		t.AddRowF(
			fmt.Sprintf("%d", p.Cores),
			p.Elapsed.Round(time.Microsecond).String(),
			fmt.Sprintf("%.0f", p.NsPerPair),
			fmt.Sprintf("%.2fx", p.Speedup),
			fmt.Sprintf("%.0f%%", 100*p.Efficiency),
			fmt.Sprintf("%d", p.Steals),
		)
	}
	return t
}
