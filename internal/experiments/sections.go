package experiments

import (
	"fmt"
	"math/rand"

	"bulkgcd/internal/bulk"
	"bulkgcd/internal/gcd"
	"bulkgcd/internal/stats"
	"bulkgcd/internal/tabfmt"
	"bulkgcd/internal/umm"
)

// ---------------------------------------------------------------------------
// Section V statistics: beta > 0 frequency and approx() case distribution.

// BetaStatsConfig parameterizes the Section V measurement.
type BetaStatsConfig struct {
	Sizes []int
	Pairs int
	Seed  int64
}

// BetaStatsResult reports the frequency of the beta > 0 path.
type BetaStatsResult struct {
	Cfg BetaStatsConfig
	// PerSize[size] = (iterations, betaNonZero).
	PerSize map[int][2]int64
	// Cases[size][case] tallies approx() cases.
	Cases map[int][8]int
}

// RunBetaStats measures how often approx() returns beta > 0 (the paper:
// 1191 times in 2.0e11 calls at 4096 bits, i.e. < 1e-8) and the approx()
// case mix.
func RunBetaStats(cfg BetaStatsConfig) (*BetaStatsResult, error) {
	if len(cfg.Sizes) == 0 {
		cfg.Sizes = DefaultSizes
	}
	if cfg.Pairs <= 0 {
		cfg.Pairs = 200
	}
	res := &BetaStatsResult{
		Cfg:     cfg,
		PerSize: map[int][2]int64{},
		Cases:   map[int][8]int{},
	}
	for _, size := range cfg.Sizes {
		xs, ys, err := pairSource(size, cfg.Pairs, cfg.Seed)
		if err != nil {
			return nil, err
		}
		scratch := gcd.NewScratch(size)
		var iters, beta int64
		var cases [8]int
		for i := range xs {
			_, st := scratch.Compute(gcd.Approximate, xs[i], ys[i], gcd.Options{})
			iters += int64(st.Iterations)
			beta += int64(st.BetaNonZero)
			for c := 0; c < 8; c++ {
				cases[c] += st.CaseCounts[c]
			}
		}
		res.PerSize[size] = [2]int64{iters, beta}
		res.Cases[size] = cases
	}
	return res, nil
}

// BetaFraction returns the fraction of iterations with beta > 0 for size.
func (r *BetaStatsResult) BetaFraction(size int) float64 {
	v := r.PerSize[size]
	if v[0] == 0 {
		return 0
	}
	return float64(v[1]) / float64(v[0])
}

// Table renders the Section V statistics.
func (r *BetaStatsResult) Table() *tabfmt.Table {
	t := tabfmt.NewTable("size", "iterations", "beta>0", "fraction", "case 4-A", "4-B", "4-C", "other")
	for _, s := range r.Cfg.Sizes {
		v := r.PerSize[s]
		c := r.Cases[s]
		other := c[gcd.Case1] + c[gcd.Case2A] + c[gcd.Case2B] + c[gcd.Case3A] + c[gcd.Case3B]
		t.AddRowF(
			fmt.Sprintf("%d", s),
			fmt.Sprintf("%d", v[0]),
			fmt.Sprintf("%d", v[1]),
			fmt.Sprintf("%.2e", r.BetaFraction(s)),
			fmt.Sprintf("%d", c[gcd.Case4A]),
			fmt.Sprintf("%d", c[gcd.Case4B]),
			fmt.Sprintf("%d", c[gcd.Case4C]),
			fmt.Sprintf("%d", other),
		)
	}
	return t
}

// ---------------------------------------------------------------------------
// Figure 1 / Section IV: memory operations per iteration.

// MemOpsResult reports measured word-memory operations per iteration
// against the analytic 3*s/d bound.
type MemOpsResult struct {
	Sizes []int
	// PerIter[size] = measured mean memory operations per iteration.
	PerIter map[int]float64
	// Bound[size] = 3*s/d.
	Bound map[int]float64
}

// RunMemOps validates the Section IV accounting on Approximate Euclidean
// in early-terminate mode (operands keep at least s/2 bits, so the count
// stays near the bound).
func RunMemOps(sizes []int, pairs int, seed int64) (*MemOpsResult, error) {
	if len(sizes) == 0 {
		sizes = DefaultSizes
	}
	if pairs <= 0 {
		pairs = 100
	}
	res := &MemOpsResult{Sizes: sizes, PerIter: map[int]float64{}, Bound: map[int]float64{}}
	for _, size := range sizes {
		xs, ys, err := pairSource(size, pairs, seed)
		if err != nil {
			return nil, err
		}
		scratch := gcd.NewScratch(size)
		var acc stats.Acc
		for i := range xs {
			_, st := scratch.Compute(gcd.Approximate, xs[i], ys[i], gcd.Options{EarlyBits: size / 2})
			acc.Add(float64(st.MemOps) / float64(st.Iterations))
		}
		res.PerIter[size] = acc.Mean()
		res.Bound[size] = 3 * float64(size) / 32
	}
	return res, nil
}

// Table renders the memory-operation comparison.
func (r *MemOpsResult) Table() *tabfmt.Table {
	t := tabfmt.NewTable("size", "mem ops/iter", "3*s/d", "ratio")
	for _, s := range r.Sizes {
		t.AddRowF(
			fmt.Sprintf("%d", s),
			fmt.Sprintf("%.1f", r.PerIter[s]),
			fmt.Sprintf("%.1f", r.Bound[s]),
			fmt.Sprintf("%.3f", r.PerIter[s]/r.Bound[s]),
		)
	}
	return t
}

// ---------------------------------------------------------------------------
// Figure 3 / Theorem 1: layout and obliviousness on the UMM.

// LayoutResult compares column-wise and row-wise bulk execution of the
// same oblivious access pattern (Figure 3's point).
type LayoutResult struct {
	Width, Latency, Threads, Steps int
	ColumnTime, RowTime            int64
	ColumnCoalesced, RowCoalesced  float64
	TheoremTime                    int64
}

// RunLayout executes the Figure 3 experiment on machine (w, l) with p
// threads and t random oblivious steps over an n-element logical array.
func RunLayout(width, latency, p, steps, n int, seed int64) (*LayoutResult, error) {
	m, err := umm.New(width, latency)
	if err != nil {
		return nil, err
	}
	if p%width != 0 {
		return nil, fmt.Errorf("experiments: threads %d not a multiple of width %d", p, width)
	}
	r := rand.New(rand.NewSource(seed))
	idxs := make([]int, steps)
	for i := range idxs {
		idxs[i] = r.Intn(n)
	}
	col := make([]umm.Program, p)
	row := make([]umm.Program, p)
	for j := 0; j < p; j++ {
		col[j] = umm.ColumnProgram(0, p, j, idxs)
		row[j] = umm.RowProgram(0, n, j, idxs)
	}
	colStats := m.Run(col)
	rowStats := m.Run(row)
	return &LayoutResult{
		Width: width, Latency: latency, Threads: p, Steps: steps,
		ColumnTime:      colStats.Time,
		RowTime:         rowStats.Time,
		ColumnCoalesced: colStats.CoalescedFraction(),
		RowCoalesced:    rowStats.CoalescedFraction(),
		TheoremTime:     m.ObliviousTime(int64(p), int64(steps)),
	}, nil
}

// SemiObliviousResult measures the coalesced fraction of the real bulk
// GCD execution (Section VI's semi-oblivious claim).
type SemiObliviousResult struct {
	Alg            gcd.Algorithm
	Size, Threads  int
	CoalescedFrac  float64
	TimePerGCD     float64
	ObliviousLower float64 // per-GCD time if the run were perfectly oblivious
}

// RunSemiOblivious simulates the bulk GCD of p random pairs on the UMM and
// reports how close the semi-oblivious execution comes to the oblivious
// bound.
func RunSemiOblivious(m *umm.Machine, alg gcd.Algorithm, size, p int, early bool, seed int64) (*SemiObliviousResult, error) {
	xs, ys, err := pairSource(size, p, seed)
	if err != nil {
		return nil, err
	}
	res, err := bulk.Simulate(m, alg, xs, ys, early)
	if err != nil {
		return nil, err
	}
	// The oblivious lower bound replays the same total accesses fully
	// coalesced: ceil(accesses/p) rounds at p/w + l - 1 each.
	rounds := (res.UMM.Accesses + int64(p) - 1) / int64(p)
	lower := float64(m.ObliviousTime(int64(p), rounds)) / float64(p)
	return &SemiObliviousResult{
		Alg: alg, Size: size, Threads: p,
		CoalescedFrac:  res.UMM.CoalescedFraction(),
		TimePerGCD:     res.TimePerGCD,
		ObliviousLower: lower,
	}, nil
}
