// Package experiments implements the reproduction harness: one entry point
// per table and figure of the paper's evaluation, shared by the command
// line tools (cmd/gcdbench, cmd/ummsim) and the root benchmark suite.
//
// Every experiment is deterministic given its seed, and returns both the
// raw data (for tests to assert the paper's qualitative shape) and a
// rendered table in the paper's layout.
package experiments

import (
	"context"
	"fmt"
	"path/filepath"
	"runtime"
	"time"

	"bulkgcd/internal/bulk"
	"bulkgcd/internal/checkpoint"
	"bulkgcd/internal/engine"
	"bulkgcd/internal/gcd"
	"bulkgcd/internal/gpusim"
	"bulkgcd/internal/mpnat"
	"bulkgcd/internal/obs"
	"bulkgcd/internal/rsakey"
	"bulkgcd/internal/tabfmt"
	"bulkgcd/internal/umm"
)

// DefaultSizes are the paper's four modulus sizes.
var DefaultSizes = []int{512, 1024, 2048, 4096}

// pairSource deterministically generates operand pairs of a given size.
// It uses pseudo-moduli (random odd values of the OpenSSL shape): for
// iteration-count and timing statistics they are indistinguishable from
// true semiprimes, and they keep the 4096-bit sweeps tractable (see
// DESIGN.md, substitutions).
func pairSource(size, pairs int, seed int64) ([]*mpnat.Nat, []*mpnat.Nat, error) {
	c, err := rsakey.GenerateCorpus(rsakey.CorpusSpec{
		Count: 2 * pairs, Bits: size, Seed: seed, Pseudo: true,
	})
	if err != nil {
		return nil, nil, err
	}
	ms := c.Moduli()
	return ms[:pairs], ms[pairs:], nil
}

// ---------------------------------------------------------------------------
// Table IV: mean iteration counts.

// TableIVConfig parameterizes the iteration-count experiment.
type TableIVConfig struct {
	// Sizes are modulus bit sizes (default DefaultSizes).
	Sizes []int
	// Pairs is the number of random pairs per size (the paper uses 10000).
	Pairs int
	// Seed drives the deterministic corpus.
	Seed int64
	// Algorithms defaults to all five.
	Algorithms []gcd.Algorithm
	// Metrics, when set, additionally receives every observation through
	// the live gcd_<alg>_* instruments (all sizes and terminate modes
	// aggregated), so a -status server can watch the sweep run. The
	// per-cell table means always come from private registry shards.
	Metrics *obs.Registry
}

// TableIVResult carries the measured means.
type TableIVResult struct {
	Cfg TableIVConfig
	// Mean[alg][size][early] with early index 0 = non-terminate, 1 = early.
	Mean map[gcd.Algorithm]map[int][2]float64
	// DiffEB[size][early] is mean((E) iterations - (B) iterations).
	DiffEB map[int][2]float64
}

// RunTableIV measures the mean number of do-while iterations of each
// algorithm, in non-terminate and early-terminate mode, reproducing
// Table IV.
func RunTableIV(cfg TableIVConfig) (*TableIVResult, error) {
	if len(cfg.Sizes) == 0 {
		cfg.Sizes = DefaultSizes
	}
	if cfg.Pairs <= 0 {
		cfg.Pairs = 100
	}
	if len(cfg.Algorithms) == 0 {
		cfg.Algorithms = gcd.Algorithms
	}
	res := &TableIVResult{
		Cfg:    cfg,
		Mean:   map[gcd.Algorithm]map[int][2]float64{},
		DiffEB: map[int][2]float64{},
	}
	for _, alg := range cfg.Algorithms {
		res.Mean[alg] = map[int][2]float64{}
	}
	live := map[gcd.Algorithm]*gcd.Metrics{}
	for _, alg := range cfg.Algorithms {
		live[alg] = gcd.NewMetrics(cfg.Metrics, alg)
	}
	for _, size := range cfg.Sizes {
		xs, ys, err := pairSource(size, cfg.Pairs, cfg.Seed)
		if err != nil {
			return nil, err
		}
		scratch := gcd.NewScratch(size)
		// One registry shard per terminate mode: the shared gcd_<alg>_*
		// histograms replace bespoke per-algorithm accumulators, and the
		// table means are read back from their snapshots.
		var shards [2]*obs.Registry
		var cell [2]map[gcd.Algorithm]*gcd.Metrics
		for mode := 0; mode < 2; mode++ {
			shards[mode] = obs.NewRegistry()
			cell[mode] = map[gcd.Algorithm]*gcd.Metrics{}
			for _, alg := range cfg.Algorithms {
				cell[mode][alg] = gcd.NewMetrics(shards[mode], alg)
			}
		}
		for i := 0; i < cfg.Pairs; i++ {
			for _, alg := range cfg.Algorithms {
				for mode := 0; mode < 2; mode++ {
					opt := gcd.Options{}
					if mode == 1 {
						opt.EarlyBits = size / 2
					}
					_, st := scratch.Compute(alg, xs[i], ys[i], opt)
					cell[mode][alg].Observe(&st)
					live[alg].Observe(&st)
				}
			}
		}
		var mean [2]map[gcd.Algorithm]float64
		for mode := 0; mode < 2; mode++ {
			snap := shards[mode].Snapshot()
			mean[mode] = map[gcd.Algorithm]float64{}
			for _, alg := range cfg.Algorithms {
				mean[mode][alg] = snap.Histograms[gcd.IterationsMetric(alg)].Mean()
			}
		}
		for _, alg := range cfg.Algorithms {
			res.Mean[alg][size] = [2]float64{mean[0][alg], mean[1][alg]}
		}
		// The mean of the per-pair (E)-(B) differences is the difference
		// of the two means, so the row falls straight out of the
		// histograms. Algorithms absent from the run contribute 0.
		res.DiffEB[size] = [2]float64{
			mean[0][gcd.Approximate] - mean[0][gcd.Fast],
			mean[1][gcd.Approximate] - mean[1][gcd.Fast],
		}
	}
	return res, nil
}

// Table renders the result in the paper's Table IV layout.
func (r *TableIVResult) Table() *tabfmt.Table {
	header := []string{"algorithm"}
	for _, s := range r.Cfg.Sizes {
		header = append(header, fmt.Sprintf("NT %d", s))
	}
	for _, s := range r.Cfg.Sizes {
		header = append(header, fmt.Sprintf("ET %d", s))
	}
	t := tabfmt.NewTable(header...)
	for _, alg := range r.Cfg.Algorithms {
		row := []string{fmt.Sprintf("(%s) %s", alg.Letter(), alg)}
		for mode := 0; mode < 2; mode++ {
			for _, s := range r.Cfg.Sizes {
				row = append(row, fmt.Sprintf("%.1f", r.Mean[alg][s][mode]))
			}
		}
		t.AddRowF(row...)
	}
	row := []string{"(E)-(B)"}
	for mode := 0; mode < 2; mode++ {
		for _, s := range r.Cfg.Sizes {
			row = append(row, fmt.Sprintf("%.4f", r.DiffEB[s][mode]))
		}
	}
	t.AddRowF(row...)
	return t
}

// ---------------------------------------------------------------------------
// Table V: per-GCD time, CPU vs (simulated) GPU.

// TableVConfig parameterizes the timing experiment.
type TableVConfig struct {
	// Sizes are modulus bit sizes (default DefaultSizes).
	Sizes []int
	// CPUPairs is the number of pairs timed sequentially per cell.
	CPUPairs int
	// BulkModuli is the corpus size for the host-parallel all-pairs run
	// (the paper uses 16K; the default 192 gives 18336 pairs).
	BulkModuli int
	// SimThreads is the bulk width for the UMM simulation.
	SimThreads int
	// UMMWidth and UMMLatency configure the simulated machine
	// (default 32 and 200, a GPU-like warp width and DRAM latency).
	UMMWidth, UMMLatency int
	// ClockGHz converts UMM time units to wall time for the table
	// (default 1.0: one time unit = 1 ns).
	ClockGHz float64
	// SMs is the number of independent UMM units the simulated GPU runs in
	// parallel, mirroring the streaming multiprocessors of a real device
	// (the paper's GTX 780 Ti has 15 SMX). Disjoint thread blocks execute
	// on separate SMs, so simulated per-GCD time divides by SMs.
	// Default 15.
	SMs int
	// Device is the integrated GPU model (UMM memory + SIMT compute +
	// roofline occupancy) used for the GPU-dev rows; nil selects the
	// GTX 780 Ti-inspired default.
	Device *gpusim.Device
	// Early selects the terminate mode.
	Early bool
	// Seed drives the deterministic corpora.
	Seed int64
	// Algorithms defaults to (C), (D), (E) as in Table V.
	Algorithms []gcd.Algorithm
	// CheckpointDir, when set, journals each cell's bulk all-pairs run to
	// tablev-<letter>-<size>.jsonl under this directory; an interrupted
	// table rerun with the same directory resumes the partial cell and
	// skips its completed blocks.
	CheckpointDir string
	// Metrics, when set, receives the bulk engine's live instruments
	// across all cells, so a -status server can watch the sweep run.
	Metrics *obs.Registry
}

// TableVCell is one (algorithm, size) measurement.
type TableVCell struct {
	Alg  gcd.Algorithm
	Size int

	// CPUPerGCD is the sequential single-worker time per GCD.
	CPUPerGCD time.Duration
	// ParallelPerGCD is the host-parallel bulk time per GCD.
	ParallelPerGCD time.Duration
	// SimUnitsPerGCD is the UMM-simulated time units per GCD.
	SimUnitsPerGCD float64
	// SimPerGCD is SimUnitsPerGCD converted at ClockGHz.
	SimPerGCD time.Duration
	// CoalescedFrac is the UMM coalesced-round fraction.
	CoalescedFrac float64

	// DevPerGCD is the integrated device model's per-GCD time and
	// DevBound the resource that limited it.
	DevPerGCD time.Duration
	DevBound  gpusim.Bound
	// DevDivergence is the SIMT divergence penalty on the device.
	DevDivergence float64

	// SpeedupParallel = CPUPerGCD / ParallelPerGCD.
	SpeedupParallel float64
	// SpeedupSim = CPUPerGCD / SimPerGCD.
	SpeedupSim float64
}

// TableVResult carries all cells.
type TableVResult struct {
	Cfg   TableVConfig
	Cells map[gcd.Algorithm]map[int]*TableVCell
}

// RunTableV measures per-GCD time on the sequential CPU path and on the
// two GPU substitutes (host-parallel bulk executor; UMM simulation),
// reproducing the structure of Table V.
func RunTableV(cfg TableVConfig) (*TableVResult, error) {
	return RunTableVContext(context.Background(), cfg)
}

// RunTableVContext is RunTableV with cooperative cancellation: an
// interrupted run returns an error naming the cell it stopped in, and
// with CheckpointDir set a rerun resumes that cell's bulk computation.
func RunTableVContext(ctx context.Context, cfg TableVConfig) (*TableVResult, error) {
	if len(cfg.Sizes) == 0 {
		cfg.Sizes = DefaultSizes
	}
	if cfg.CPUPairs <= 0 {
		cfg.CPUPairs = 50
	}
	if cfg.BulkModuli <= 0 {
		cfg.BulkModuli = 192
	}
	if cfg.SimThreads <= 0 {
		cfg.SimThreads = 128
	}
	if cfg.UMMWidth <= 0 {
		cfg.UMMWidth = 32
	}
	if cfg.UMMLatency <= 0 {
		cfg.UMMLatency = 200
	}
	if cfg.ClockGHz <= 0 {
		cfg.ClockGHz = 1.0
	}
	if cfg.SMs <= 0 {
		cfg.SMs = 15
	}
	if cfg.Device == nil {
		cfg.Device = gpusim.GTX780Ti()
	}
	if len(cfg.Algorithms) == 0 {
		cfg.Algorithms = []gcd.Algorithm{gcd.Binary, gcd.FastBinary, gcd.Approximate}
	}
	machine, err := umm.New(cfg.UMMWidth, cfg.UMMLatency)
	if err != nil {
		return nil, err
	}
	res := &TableVResult{Cfg: cfg, Cells: map[gcd.Algorithm]map[int]*TableVCell{}}
	for _, alg := range cfg.Algorithms {
		res.Cells[alg] = map[int]*TableVCell{}
	}
	for _, size := range cfg.Sizes {
		// One corpus per size, shared by all measurements.
		c, err := rsakey.GenerateCorpus(rsakey.CorpusSpec{
			Count: cfg.BulkModuli, Bits: size, Seed: cfg.Seed, Pseudo: true,
		})
		if err != nil {
			return nil, err
		}
		moduli := c.Moduli()
		xs, ys, err := pairSource(size, cfg.SimThreads, cfg.Seed+1)
		if err != nil {
			return nil, err
		}
		for _, alg := range cfg.Algorithms {
			cell := &TableVCell{Alg: alg, Size: size}

			// Sequential CPU timing over CPUPairs pairs drawn from the
			// corpus. Collect first so garbage from the previous cell's
			// simulation (its address streams are large) cannot bleed
			// into this cell's timing.
			runtime.GC()
			scratch := gcd.NewScratch(size)
			opt := gcd.Options{}
			if cfg.Early {
				opt.EarlyBits = size / 2
			}
			start := time.Now()
			pairs := 0
			for i := 0; pairs < cfg.CPUPairs; i++ {
				a := moduli[i%len(moduli)]
				b := moduli[(i*7+1)%len(moduli)]
				if a.Cmp(b) == 0 {
					continue
				}
				scratch.Compute(alg, a, b, opt)
				pairs++
			}
			cell.CPUPerGCD = time.Since(start) / time.Duration(pairs)

			// Host-parallel bulk all-pairs, optionally journaled per cell.
			bres, err := runTableVBulk(ctx, cfg, alg, size, moduli)
			if err != nil {
				return nil, err
			}
			if bres.Canceled {
				return nil, fmt.Errorf("experiments: table V interrupted in cell (%s, %d bits) after %d/%d pairs; rerun with the same checkpoint dir to resume",
					alg.Letter(), size, bres.Pairs, bres.Total)
			}
			// Per-GCD time uses only the freshly computed pairs: blocks
			// replayed from a resume journal took no wall time in this run.
			if fresh := bres.Pairs - bres.ResumedPairs; fresh > 0 {
				cell.ParallelPerGCD = time.Duration(int64(bres.Elapsed) / fresh)
			}

			// UMM simulation.
			sres, err := bulk.Simulate(machine, alg, xs, ys, cfg.Early)
			if err != nil {
				return nil, err
			}
			cell.SimUnitsPerGCD = sres.TimePerGCD
			cell.SimPerGCD = time.Duration(sres.TimePerGCD / cfg.ClockGHz / float64(cfg.SMs))
			cell.CoalescedFrac = sres.UMM.CoalescedFraction()

			// Integrated device model.
			dres, err := cfg.Device.SimulateBulkGCD(alg, xs, ys, cfg.Early, 64)
			if err != nil {
				return nil, err
			}
			cell.DevPerGCD = time.Duration(dres.PerGCDMicros * 1e3)
			cell.DevBound = dres.BoundedBy
			cell.DevDivergence = dres.DivergencePenalty

			if cell.ParallelPerGCD > 0 {
				cell.SpeedupParallel = float64(cell.CPUPerGCD) / float64(cell.ParallelPerGCD)
			}
			if cell.SimPerGCD > 0 {
				cell.SpeedupSim = float64(cell.CPUPerGCD) / float64(cell.SimPerGCD)
			}
			res.Cells[alg][size] = cell
		}
	}
	return res, nil
}

// runTableVBulk runs one cell's bulk all-pairs computation, journaled to
// CheckpointDir when configured. A journal that verifies against this
// cell's corpus fingerprint is resumed; a stale or foreign one is
// truncated and the cell starts over.
func runTableVBulk(ctx context.Context, cfg TableVConfig, alg gcd.Algorithm, size int, moduli []*mpnat.Nat) (*bulk.Result, error) {
	bcfg := bulk.Config{Config: engine.Config{Metrics: cfg.Metrics}, Algorithm: alg, Early: cfg.Early}
	if cfg.CheckpointDir == "" {
		return bulk.AllPairsContext(ctx, moduli, bcfg)
	}
	hdr, err := bulk.JournalHeader(moduli, bcfg)
	if err != nil {
		return nil, err
	}
	path := filepath.Join(cfg.CheckpointDir, fmt.Sprintf("tablev-%s-%d.jsonl", alg.Letter(), size))
	if st, err := checkpoint.Load(path); err == nil && st.Verify(hdr) == nil {
		w, err := checkpoint.OpenAppend(path)
		if err != nil {
			return nil, err
		}
		bcfg.Resume = st
		bcfg.Checkpoint = w
	} else {
		w, err := checkpoint.Create(path)
		if err != nil {
			return nil, err
		}
		bcfg.Checkpoint = w
	}
	defer bcfg.Checkpoint.Close()
	return bulk.AllPairsContext(ctx, moduli, bcfg)
}

// Table renders the cells in the paper's Table V layout (microseconds per
// GCD, plus the CPU/GPU ratios).
func (r *TableVResult) Table() *tabfmt.Table {
	header := []string{"row"}
	for _, s := range r.Cfg.Sizes {
		header = append(header, fmt.Sprintf("%d", s))
	}
	t := tabfmt.NewTable(header...)
	us := func(d time.Duration) string { return fmt.Sprintf("%.3f", float64(d.Nanoseconds())/1e3) }
	for _, alg := range r.Cfg.Algorithms {
		row := []string{fmt.Sprintf("CPU (%s) %s us", alg.Letter(), alg)}
		for _, s := range r.Cfg.Sizes {
			row = append(row, us(r.Cells[alg][s].CPUPerGCD))
		}
		t.AddRowF(row...)
	}
	for _, alg := range r.Cfg.Algorithms {
		row := []string{fmt.Sprintf("GPU-par (%s) us", alg.Letter())}
		for _, s := range r.Cfg.Sizes {
			row = append(row, us(r.Cells[alg][s].ParallelPerGCD))
		}
		t.AddRowF(row...)
	}
	for _, alg := range r.Cfg.Algorithms {
		row := []string{fmt.Sprintf("GPU-sim (%s) us", alg.Letter())}
		for _, s := range r.Cfg.Sizes {
			row = append(row, us(r.Cells[alg][s].SimPerGCD))
		}
		t.AddRowF(row...)
	}
	for _, alg := range r.Cfg.Algorithms {
		row := []string{fmt.Sprintf("GPU-dev (%s) us", alg.Letter())}
		for _, s := range r.Cfg.Sizes {
			row = append(row, us(r.Cells[alg][s].DevPerGCD))
		}
		t.AddRowF(row...)
	}
	for _, alg := range r.Cfg.Algorithms {
		row := []string{fmt.Sprintf("CPU/GPU-dev (%s)", alg.Letter())}
		for _, s := range r.Cfg.Sizes {
			cell := r.Cells[alg][s]
			ratio := 0.0
			if cell.DevPerGCD > 0 {
				ratio = float64(cell.CPUPerGCD) / float64(cell.DevPerGCD)
			}
			row = append(row, fmt.Sprintf("%.1f", ratio))
		}
		t.AddRowF(row...)
	}
	for _, alg := range r.Cfg.Algorithms {
		row := []string{fmt.Sprintf("dev bound (%s)", alg.Letter())}
		for _, s := range r.Cfg.Sizes {
			row = append(row, string(r.Cells[alg][s].DevBound))
		}
		t.AddRowF(row...)
	}
	for _, alg := range r.Cfg.Algorithms {
		row := []string{fmt.Sprintf("CPU/GPU-par (%s)", alg.Letter())}
		for _, s := range r.Cfg.Sizes {
			row = append(row, fmt.Sprintf("%.1f", r.Cells[alg][s].SpeedupParallel))
		}
		t.AddRowF(row...)
	}
	for _, alg := range r.Cfg.Algorithms {
		row := []string{fmt.Sprintf("CPU/GPU-sim (%s)", alg.Letter())}
		for _, s := range r.Cfg.Sizes {
			row = append(row, fmt.Sprintf("%.1f", r.Cells[alg][s].SpeedupSim))
		}
		t.AddRowF(row...)
	}
	for _, alg := range r.Cfg.Algorithms {
		row := []string{fmt.Sprintf("coalesced (%s)", alg.Letter())}
		for _, s := range r.Cfg.Sizes {
			row = append(row, fmt.Sprintf("%.3f", r.Cells[alg][s].CoalescedFrac))
		}
		t.AddRowF(row...)
	}
	return t
}
