package experiments

import (
	"strings"
	"testing"
)

// TestWordSizeAblation: the approximation overhead must shrink
// monotonically with d and be negligible at d = 32 (the paper's design
// point), while small d still computes correct GCDs at measurable extra
// iteration cost.
func TestWordSizeAblation(t *testing.T) {
	res, err := RunWordSizeAblation(512, 40, []int{4, 8, 16, 32}, 1)
	if err != nil {
		t.Fatal(err)
	}
	prev := 1e9
	for _, d := range res.Ds {
		ov := res.Overhead[d]
		if ov < -0.001 {
			t.Errorf("d=%d: negative overhead %.5f", d, ov)
		}
		if ov > prev+1e-9 {
			t.Errorf("overhead not monotone: d=%d has %.5f > previous %.5f", d, ov, prev)
		}
		prev = ov
	}
	if res.Overhead[4] < 0.001 {
		t.Errorf("d=4 overhead %.5f suspiciously small", res.Overhead[4])
	}
	if res.Overhead[32] > 0.0005 {
		t.Errorf("d=32 overhead %.5f, want ~0 (paper: ~1e-5)", res.Overhead[32])
	}
	out := res.Table().String()
	if !strings.Contains(out, "exact (B)") || !strings.Contains(out, "word size d") {
		t.Errorf("table wrong:\n%s", out)
	}
}

// TestThresholdAblation: higher thresholds terminate earlier; s/2 costs
// about half the non-terminate run; thresholds above s/2 are flagged
// unsafe.
func TestThresholdAblation(t *testing.T) {
	res, err := RunThresholdAblation(512, 40, []float64{0.25, 0.5, 0.75}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.MeanIters) != 4 {
		t.Fatalf("got %d measurements", len(res.MeanIters))
	}
	// Mean iterations decrease as the threshold rises.
	if !(res.MeanIters[2] < res.MeanIters[1] && res.MeanIters[1] < res.MeanIters[0]) {
		t.Errorf("iteration counts not decreasing with threshold: %v", res.MeanIters)
	}
	base := res.MeanIters[3]
	if ratio := res.MeanIters[1] / base; ratio < 0.45 || ratio > 0.55 {
		t.Errorf("s/2 threshold ratio %.3f, want ~0.5", ratio)
	}
	if !res.SharedPrimeSafe[0] || !res.SharedPrimeSafe[1] || res.SharedPrimeSafe[2] {
		t.Errorf("safety flags wrong: %v", res.SharedPrimeSafe)
	}
	out := res.Table().String()
	if !strings.Contains(out, "0.50*s") || !strings.Contains(out, "none") {
		t.Errorf("table wrong:\n%s", out)
	}
}
