package experiments

import (
	"context"
	"fmt"
	"math/big"
	"time"

	"bulkgcd/internal/batchgcd"
	"bulkgcd/internal/bulk"
	"bulkgcd/internal/engine"
	"bulkgcd/internal/gcd"
	"bulkgcd/internal/gpusim"
	"bulkgcd/internal/rsakey"
	"bulkgcd/internal/simt"
	"bulkgcd/internal/tabfmt"
	"bulkgcd/internal/umm"
)

// ---------------------------------------------------------------------------
// Section VII: SIMT branch divergence.

// DivergenceResult reports the SIMT cost of one algorithm's bulk kernel.
type DivergenceResult struct {
	Alg gcd.Algorithm
	// Penalty is serialized cycles / ideal cycles (1.0 = no divergence).
	Penalty float64
	// Converged is the fraction of warp-rounds with a single branch body.
	Converged float64
	// CyclesPerGCD is the mean serialized SIMT cycles per GCD.
	CyclesPerGCD float64
}

// RunDivergence replays real per-thread iteration traces through the SIMT
// model, quantifying the paper's Section VII observation that Binary
// Euclidean's three-way branch serializes while Approximate's does not.
func RunDivergence(warpSize int, overhead int64, size, p int, early bool, seed int64) ([]DivergenceResult, error) {
	m, err := simt.New(warpSize, overhead)
	if err != nil {
		return nil, err
	}
	xs, ys, err := pairSource(size, p, seed)
	if err != nil {
		return nil, err
	}
	scratch := gcd.NewScratch(size)
	var out []DivergenceResult
	for _, alg := range []gcd.Algorithm{gcd.Binary, gcd.FastBinary, gcd.Approximate} {
		traces := make([][]gcd.IterShape, p)
		for j := 0; j < p; j++ {
			opt := gcd.Options{RecordShapes: true}
			if early {
				opt.EarlyBits = size / 2
			}
			_, st := scratch.Compute(alg, xs[j], ys[j], opt)
			traces[j] = st.Shapes
		}
		res := m.Run(traces)
		out = append(out, DivergenceResult{
			Alg:          alg,
			Penalty:      res.DivergencePenalty(),
			Converged:    res.ConvergedFraction(),
			CyclesPerGCD: float64(res.Cycles) / float64(p),
		})
	}
	return out, nil
}

// DivergenceTable renders the Section VII comparison.
func DivergenceTable(rs []DivergenceResult) *tabfmt.Table {
	t := tabfmt.NewTable("algorithm", "cycles/GCD", "divergence penalty", "converged rounds")
	for _, r := range rs {
		t.AddRowF(
			fmt.Sprintf("(%s) %s", r.Alg.Letter(), r.Alg),
			fmt.Sprintf("%.0f", r.CyclesPerGCD),
			fmt.Sprintf("%.2fx", r.Penalty),
			fmt.Sprintf("%.1f%%", 100*r.Converged),
		)
	}
	return t
}

// ---------------------------------------------------------------------------
// Baseline comparison: all-pairs (the paper) vs Bernstein batch GCD.

// CrossoverPoint is one corpus size in the comparison.
type CrossoverPoint struct {
	M        int
	AllPairs time.Duration
	Batch    time.Duration
}

// RunCrossover times both attack engines over growing corpora of the
// given modulus size. All-pairs work grows as m^2 while batch GCD grows
// as ~m log^2 m, so batch GCD must win for large m; the all-pairs
// approach (and the paper's GPU acceleration of it) wins at small m.
// Both engines run on worker pools of the same size (0 = GOMAXPROCS) so
// the comparison is pool-vs-pool, not parallel-vs-serial.
func RunCrossover(size int, ms []int, workers int, seed int64) ([]CrossoverPoint, error) {
	return RunCrossoverContext(context.Background(), size, ms, workers, seed)
}

// RunCrossoverContext is RunCrossover with cooperative cancellation.
func RunCrossoverContext(ctx context.Context, size int, ms []int, workers int, seed int64) ([]CrossoverPoint, error) {
	cmp, err := RunEngineComparisonContext(ctx, size, ms, workers, seed, []engine.Kind{engine.Pairs, engine.Batch}, engine.KernelScalar)
	if err != nil {
		return nil, err
	}
	out := make([]CrossoverPoint, len(cmp))
	for i, c := range cmp {
		out[i] = CrossoverPoint{M: c.M, AllPairs: c.Times[engine.Pairs], Batch: c.Times[engine.Batch]}
	}
	return out, nil
}

// EngineComparison is one corpus size in the engine-vs-engine timing
// sweep: wall-clock per selected engine over the same corpus, plus the
// per-pair GCD kernel the Euclidean engines ran with.
type EngineComparison struct {
	M      int
	Kernel engine.KernelKind
	Times  map[engine.Kind]time.Duration
}

// RunEngineComparisonContext times the selected attack engines over
// growing corpora of the given modulus size; it generalizes the
// all-pairs-vs-batch crossover to any engine subset, including the
// tiled product-filter hybrid. Every engine runs on a worker pool of
// the same size (0 = GOMAXPROCS) so the comparison is pool-vs-pool.
// kernel selects the per-pair GCD kernel for the pairs and hybrid
// engines (batch GCD has no pair kernel and ignores it).
func RunEngineComparisonContext(ctx context.Context, size int, ms []int, workers int, seed int64, kinds []engine.Kind, kernel engine.KernelKind) ([]EngineComparison, error) {
	if len(ms) == 0 {
		ms = []int{32, 64, 128, 256}
	}
	if len(kinds) == 0 {
		kinds = []engine.Kind{engine.Pairs, engine.Batch, engine.Hybrid}
	}
	var out []EngineComparison
	for _, m := range ms {
		c, err := rsakey.GenerateCorpus(rsakey.CorpusSpec{
			Count: m, Bits: size, Seed: seed, Pseudo: true,
		})
		if err != nil {
			return nil, err
		}
		moduli := c.Moduli()
		// The corpus-format conversion is setup, not engine work: keep it
		// out of the timed region.
		bigs := make([]*big.Int, len(moduli))
		for i, n := range moduli {
			bigs[i] = n.ToBig()
		}
		point := EngineComparison{M: m, Kernel: kernel, Times: map[engine.Kind]time.Duration{}}
		for _, kind := range kinds {
			bcfg := bulk.Config{
				Config:    engine.Config{Workers: workers},
				Algorithm: gcd.Approximate, Early: true,
				Kernel: kernel,
			}
			start := time.Now()
			switch kind {
			case engine.Pairs:
				bres, err := bulk.AllPairsContext(ctx, moduli, bcfg)
				if err != nil {
					return nil, err
				}
				if bres.Canceled {
					return nil, fmt.Errorf("experiments: comparison interrupted at m=%d", m)
				}
			case engine.Hybrid:
				bres, err := bulk.HybridContext(ctx, moduli, bcfg)
				if err != nil {
					return nil, err
				}
				if bres.Canceled {
					return nil, fmt.Errorf("experiments: comparison interrupted at m=%d", m)
				}
			case engine.Batch:
				if _, err := batchgcd.RunContext(ctx, bigs, batchgcd.Config{Config: engine.Config{Workers: workers}}); err != nil {
					return nil, err
				}
			default:
				return nil, fmt.Errorf("experiments: unknown engine %v", kind)
			}
			point.Times[kind] = time.Since(start)
		}
		out = append(out, point)
	}
	return out, nil
}

// EngineComparisonJSON renders the sweep as a JSON-able structure for
// the report artifact: per corpus size, the pair count, the GCD kernel
// the Euclidean engines ran, and one milliseconds entry per engine.
func EngineComparisonJSON(ps []EngineComparison) []map[string]any {
	out := make([]map[string]any, 0, len(ps))
	for _, p := range ps {
		ms := map[string]float64{}
		for k, d := range p.Times {
			ms[k.String()] = float64(d.Nanoseconds()) / 1e6
		}
		out = append(out, map[string]any{
			"moduli": p.M,
			"pairs":  p.M * (p.M - 1) / 2,
			"kernel": p.Kernel.String(),
			"ms":     ms,
		})
	}
	return out
}

// EngineComparisonTable renders the sweep, one column per engine in the
// order given (engines absent from a point print as "-").
func EngineComparisonTable(ps []EngineComparison, kinds []engine.Kind) *tabfmt.Table {
	header := []string{"moduli", "pairs"}
	for _, k := range kinds {
		header = append(header, "t("+k.String()+")")
	}
	t := tabfmt.NewTable(header...)
	for _, p := range ps {
		row := []string{
			fmt.Sprintf("%d", p.M),
			fmt.Sprintf("%d", p.M*(p.M-1)/2),
		}
		for _, k := range kinds {
			if d, ok := p.Times[k]; ok {
				row = append(row, d.Round(time.Microsecond).String())
			} else {
				row = append(row, "-")
			}
		}
		t.AddRowF(row...)
	}
	return t
}

// CrossoverTable renders the engine comparison.
func CrossoverTable(ps []CrossoverPoint) *tabfmt.Table {
	t := tabfmt.NewTable("moduli", "pairs", "all-pairs (E)", "batch GCD", "ratio")
	for _, p := range ps {
		t.AddRowF(
			fmt.Sprintf("%d", p.M),
			fmt.Sprintf("%d", p.M*(p.M-1)/2),
			p.AllPairs.Round(time.Microsecond).String(),
			p.Batch.Round(time.Microsecond).String(),
			fmt.Sprintf("%.2f", float64(p.AllPairs)/float64(p.Batch)),
		)
	}
	return t
}

// ---------------------------------------------------------------------------
// Device occupancy: latency hiding on the integrated GPU model.

// OccupancyPoint is one resident-warp setting in the sweep.
type OccupancyPoint struct {
	ResidentWarps int
	PerGCDMicros  float64
	Bound         gpusim.Bound
}

// RunOccupancySweep sweeps the number of warps an SM interleaves. With
// one resident warp every memory round pays the full latency l; with
// enough warps the latency is hidden and execution becomes memory- (or
// compute-) bound - the paper's "time for these operations [is] hidden by
// large memory access latency" made quantitative.
func RunOccupancySweep(base *gpusim.Device, alg gcd.Algorithm, size, p int, warps []int, seed int64) ([]OccupancyPoint, error) {
	if base == nil {
		base = gpusim.GTX780Ti()
	}
	if len(warps) == 0 {
		warps = []int{1, 2, 4, 8, 16, 32, 64}
	}
	xs, ys, err := pairSource(size, p, seed)
	if err != nil {
		return nil, err
	}
	var out []OccupancyPoint
	for _, w := range warps {
		d := *base
		d.ResidentWarps = w
		rep, err := d.SimulateBulkGCD(alg, xs, ys, true, 64)
		if err != nil {
			return nil, err
		}
		out = append(out, OccupancyPoint{
			ResidentWarps: w,
			PerGCDMicros:  rep.PerGCDMicros,
			Bound:         rep.BoundedBy,
		})
	}
	return out, nil
}

// OccupancyTable renders the sweep.
func OccupancyTable(ps []OccupancyPoint) *tabfmt.Table {
	t := tabfmt.NewTable("resident warps", "us/GCD", "bounded by")
	for _, p := range ps {
		t.AddRowF(
			fmt.Sprintf("%d", p.ResidentWarps),
			fmt.Sprintf("%.3f", p.PerGCDMicros),
			string(p.Bound),
		)
	}
	return t
}

// ---------------------------------------------------------------------------
// Section I related-work comparison: published per-GCD times vs the
// device model running the corresponding implementation.

// RelatedWorkRow pairs a published result with its in-model estimate.
type RelatedWorkRow struct {
	Name        string
	Alg         gcd.Algorithm
	PublishedUs float64 // per 1024-bit GCD, from Section I
	ModelUs     float64
}

// RunRelatedWork reproduces the paper's introduction comparison: the
// prior GPU implementations all ran Binary Euclidean on their devices
// ([19] GTX 285, [20] GTX 480, [21] K20Xm), while the paper runs
// Approximate Euclidean on a GTX 780 Ti. Each row simulates the
// corresponding (device, algorithm) pair on 1024-bit moduli.
func RunRelatedWork(p int, seed int64) ([]RelatedWorkRow, error) {
	rows := []struct {
		name      string
		dev       *gpusim.Device
		alg       gcd.Algorithm
		published float64
	}{
		{"Fujimoto [19], GTX 285, Binary", gpusim.GTX285(), gcd.Binary, 10.9},
		{"Scharfglass [20], GTX 480, Binary", gpusim.GTX480(), gcd.Binary, 10.02},
		{"White [21], K20Xm, Binary", gpusim.TeslaK20Xm(), gcd.Binary, 3.15},
		{"this paper, GTX 780 Ti, Approximate", gpusim.GTX780Ti(), gcd.Approximate, 0.346},
	}
	if p <= 0 {
		p = 128
	}
	xs, ys, err := pairSource(1024, p, seed)
	if err != nil {
		return nil, err
	}
	var out []RelatedWorkRow
	for _, r := range rows {
		rep, err := r.dev.SimulateBulkGCD(r.alg, xs, ys, true, 64)
		if err != nil {
			return nil, err
		}
		out = append(out, RelatedWorkRow{
			Name: r.name, Alg: r.alg,
			PublishedUs: r.published, ModelUs: rep.PerGCDMicros,
		})
	}
	return out, nil
}

// RelatedWorkTable renders the comparison.
func RelatedWorkTable(rows []RelatedWorkRow) *tabfmt.Table {
	t := tabfmt.NewTable("implementation", "published us/GCD", "model us/GCD")
	for _, r := range rows {
		t.AddRowF(r.Name, fmt.Sprintf("%.3f", r.PublishedUs), fmt.Sprintf("%.3f", r.ModelUs))
	}
	return t
}

// ---------------------------------------------------------------------------
// Obliviousness tax: fully-oblivious GCD vs the paper's semi-oblivious
// Approximate on the UMM.

// ObliviousTaxResult compares the two bulk executions.
type ObliviousTaxResult struct {
	Size, Threads int
	// Oblivious is the constant-trajectory binary GCD; Approx the
	// paper's algorithm (non-terminate mode, like-for-like).
	ObliviousUnits, ApproxUnits         float64
	ObliviousCoalesced, ApproxCoalesced float64
}

// RunObliviousTax replays both algorithms' real traces on the UMM. The
// oblivious run must coalesce perfectly (Theorem 1 applies to it
// directly); the semi-oblivious run coalesces partially but performs far
// fewer memory operations. The paper's design bet is that the second
// effect wins - this experiment measures by how much.
func RunObliviousTax(m *umm.Machine, size, p int, seed int64) (*ObliviousTaxResult, error) {
	xs, ys, err := pairSource(size, p, seed)
	if err != nil {
		return nil, err
	}
	words := (size + 31) / 32
	scratch := gcd.NewScratch(size)
	build := func(oblivious bool) (umm.RunStats, error) {
		progs := make([]umm.Program, p)
		for j := 0; j < p; j++ {
			var st gcd.Stats
			if oblivious {
				_, st = scratch.ComputeOblivious(xs[j], ys[j], gcd.Options{RecordShapes: true})
			} else {
				_, st = scratch.Compute(gcd.Approximate, xs[j], ys[j], gcd.Options{RecordShapes: true})
			}
			progs[j] = bulk.ShapeProgram(st.Shapes, p, j, words)
		}
		return m.Run(progs), nil
	}
	obl, err := build(true)
	if err != nil {
		return nil, err
	}
	apx, err := build(false)
	if err != nil {
		return nil, err
	}
	return &ObliviousTaxResult{
		Size: size, Threads: p,
		ObliviousUnits:     float64(obl.Time) / float64(p),
		ApproxUnits:        float64(apx.Time) / float64(p),
		ObliviousCoalesced: obl.CoalescedFraction(),
		ApproxCoalesced:    apx.CoalescedFraction(),
	}, nil
}

// Table renders the comparison.
func (r *ObliviousTaxResult) Table() *tabfmt.Table {
	t := tabfmt.NewTable("algorithm", "units/GCD", "coalesced")
	t.AddRowF("oblivious binary (fixed 2s iters)",
		fmt.Sprintf("%.0f", r.ObliviousUnits), fmt.Sprintf("%.0f%%", 100*r.ObliviousCoalesced))
	t.AddRowF("semi-oblivious Approximate (E)",
		fmt.Sprintf("%.0f", r.ApproxUnits), fmt.Sprintf("%.0f%%", 100*r.ApproxCoalesced))
	t.AddRowF("tax of full obliviousness",
		fmt.Sprintf("%.2fx", r.ObliviousUnits/r.ApproxUnits), "")
	return t
}
