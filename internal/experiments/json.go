package experiments

import "time"

// JSON forms of the experiment results. The in-memory results key cells
// by gcd.Algorithm, which does not marshal to a useful JSON object key,
// so these flatten to per-algorithm rows carrying the letter and name
// the paper's tables use. They ride inside the obs.Report `tables`
// field of `gcdbench -json` output and the checked-in BENCH_*.json
// artifacts.

// TableIVRowJSON is one algorithm's mean iteration counts, indexed like
// Sizes; NT is non-terminate, ET early-terminate.
type TableIVRowJSON struct {
	Letter string    `json:"letter"`
	Name   string    `json:"name"`
	MeanNT []float64 `json:"mean_nt"`
	MeanET []float64 `json:"mean_et"`
}

// TableIVJSON is the machine-readable Table IV.
type TableIVJSON struct {
	Sizes []int            `json:"sizes"`
	Pairs int              `json:"pairs"`
	Seed  int64            `json:"seed"`
	Rows  []TableIVRowJSON `json:"rows"`
	// DiffEBNT/DiffEBET are the (E)-(B) mean-difference row.
	DiffEBNT []float64 `json:"diff_eb_nt"`
	DiffEBET []float64 `json:"diff_eb_et"`
}

// JSON flattens the result for the report artifact.
func (r *TableIVResult) JSON() *TableIVJSON {
	out := &TableIVJSON{Sizes: r.Cfg.Sizes, Pairs: r.Cfg.Pairs, Seed: r.Cfg.Seed}
	for _, alg := range r.Cfg.Algorithms {
		row := TableIVRowJSON{Letter: alg.Letter(), Name: alg.String()}
		for _, s := range r.Cfg.Sizes {
			row.MeanNT = append(row.MeanNT, r.Mean[alg][s][0])
			row.MeanET = append(row.MeanET, r.Mean[alg][s][1])
		}
		out.Rows = append(out.Rows, row)
	}
	for _, s := range r.Cfg.Sizes {
		out.DiffEBNT = append(out.DiffEBNT, r.DiffEB[s][0])
		out.DiffEBET = append(out.DiffEBET, r.DiffEB[s][1])
	}
	return out
}

// TableVCellJSON is one (algorithm, size) timing cell in microseconds
// per GCD.
type TableVCellJSON struct {
	Size            int     `json:"size"`
	CPUMicros       float64 `json:"cpu_us"`
	ParallelMicros  float64 `json:"parallel_us"`
	SimMicros       float64 `json:"sim_us"`
	DevMicros       float64 `json:"dev_us"`
	DevBound        string  `json:"dev_bound"`
	DevDivergence   float64 `json:"dev_divergence"`
	CoalescedFrac   float64 `json:"coalesced_frac"`
	SpeedupParallel float64 `json:"speedup_parallel"`
	SpeedupSim      float64 `json:"speedup_sim"`
}

// TableVRowJSON is one algorithm's cells across sizes.
type TableVRowJSON struct {
	Letter string           `json:"letter"`
	Name   string           `json:"name"`
	Cells  []TableVCellJSON `json:"cells"`
}

// TableVJSON is the machine-readable Table V.
type TableVJSON struct {
	Sizes []int           `json:"sizes"`
	Early bool            `json:"early"`
	Seed  int64           `json:"seed"`
	Rows  []TableVRowJSON `json:"rows"`
}

// JSON flattens the result for the report artifact.
func (r *TableVResult) JSON() *TableVJSON {
	us := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }
	out := &TableVJSON{Sizes: r.Cfg.Sizes, Early: r.Cfg.Early, Seed: r.Cfg.Seed}
	for _, alg := range r.Cfg.Algorithms {
		row := TableVRowJSON{Letter: alg.Letter(), Name: alg.String()}
		for _, s := range r.Cfg.Sizes {
			c := r.Cells[alg][s]
			row.Cells = append(row.Cells, TableVCellJSON{
				Size:            s,
				CPUMicros:       us(c.CPUPerGCD),
				ParallelMicros:  us(c.ParallelPerGCD),
				SimMicros:       us(c.SimPerGCD),
				DevMicros:       us(c.DevPerGCD),
				DevBound:        string(c.DevBound),
				DevDivergence:   c.DevDivergence,
				CoalescedFrac:   c.CoalescedFrac,
				SpeedupParallel: c.SpeedupParallel,
				SpeedupSim:      c.SpeedupSim,
			})
		}
		out.Rows = append(out.Rows, row)
	}
	return out
}
