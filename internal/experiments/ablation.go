package experiments

import (
	"fmt"
	"math/big"
	"math/rand"

	"bulkgcd/internal/gcd"
	"bulkgcd/internal/refgcd"
	"bulkgcd/internal/stats"
	"bulkgcd/internal/tabfmt"
)

// Ablations for the two design choices Section III and V leave implicit:
// how good the alpha*D^beta approximation needs to be (equivalently, how
// large the word size d must be before Approximate matches the exact-
// quotient Fast Euclid), and how the early-terminate threshold trades
// iterations against safety margin.

// WordSizeAblation measures Approximate's iteration count relative to
// Fast Euclid (exact quotient) as the word size d grows. The quotient
// approximation is computed from 2d-bit prefixes, so small d means coarse
// quotients and extra iterations; the paper's d = 32 makes the difference
// ~1e-5.
type WordSizeAblation struct {
	Bits  int
	Pairs int
	// Overhead[d] = mean(iterations(E, d)) / mean(iterations(B)) - 1:
	// the fractional iteration overhead of approximating at word size d.
	Overhead map[int]float64
	// MeanE[d] is the raw mean iteration count of (E) at word size d.
	MeanE map[int]float64
	// MeanB is the exact-quotient baseline.
	MeanB float64
	Ds    []int
}

// RunWordSizeAblation sweeps d over the reference implementation
// (production code is fixed at d = 32; the reference is bit-identical at
// equal d, as the cross-validation tests prove).
func RunWordSizeAblation(bits, pairs int, ds []int, seed int64) (*WordSizeAblation, error) {
	if len(ds) == 0 {
		ds = []int{4, 8, 16, 32}
	}
	if pairs <= 0 {
		pairs = 50
	}
	r := rand.New(rand.NewSource(seed))
	res := &WordSizeAblation{
		Bits: bits, Pairs: pairs, Ds: ds,
		Overhead: map[int]float64{}, MeanE: map[int]float64{},
	}
	xs := make([]*big.Int, pairs)
	ys := make([]*big.Int, pairs)
	for i := range xs {
		xs[i] = randOddBig(r, bits)
		ys[i] = randOddBig(r, bits)
	}
	var accB stats.Acc
	for i := range xs {
		rb, err := refgcd.Run(refgcd.Fast, xs[i], ys[i], refgcd.Options{WordBits: 32})
		if err != nil {
			return nil, err
		}
		accB.Add(float64(rb.Iterations))
	}
	res.MeanB = accB.Mean()
	for _, d := range ds {
		var acc stats.Acc
		for i := range xs {
			re, err := refgcd.Run(refgcd.Approximate, xs[i], ys[i], refgcd.Options{WordBits: d})
			if err != nil {
				return nil, err
			}
			acc.Add(float64(re.Iterations))
		}
		res.MeanE[d] = acc.Mean()
		res.Overhead[d] = acc.Mean()/res.MeanB - 1
	}
	return res, nil
}

// Table renders the word-size ablation.
func (r *WordSizeAblation) Table() *tabfmt.Table {
	t := tabfmt.NewTable("word size d", "mean iters (E)", "vs exact quotient (B)")
	t.AddRowF("exact (B)", fmt.Sprintf("%.1f", r.MeanB), "1.0000x")
	for _, d := range r.Ds {
		t.AddRowF(
			fmt.Sprintf("%d", d),
			fmt.Sprintf("%.1f", r.MeanE[d]),
			fmt.Sprintf("%.4fx", 1+r.Overhead[d]),
		)
	}
	return t
}

func randOddBig(r *rand.Rand, bits int) *big.Int {
	v := new(big.Int)
	for v.BitLen() < bits {
		v.Lsh(v, 32)
		v.Or(v, new(big.Int).SetUint64(uint64(r.Uint32())))
	}
	v.Rsh(v, uint(v.BitLen()-bits))
	v.SetBit(v, bits-1, 1)
	v.SetBit(v, 0, 1)
	return v
}

// ThresholdAblation measures the early-terminate threshold trade-off:
// iterations saved vs the safety margin to the s/2-bit shared prime.
type ThresholdAblation struct {
	Bits  int
	Pairs int
	// Fractions are the thresholds as fractions of s (e.g. 0.25, 0.5).
	Fractions []float64
	// MeanIters[i] is the mean iteration count at Fractions[i]; index
	// len(Fractions) holds the non-terminate baseline.
	MeanIters []float64
	// SharedPrimeSafe[i] reports whether the threshold can never miss an
	// s/2-bit shared prime (threshold <= s/2).
	SharedPrimeSafe []bool
}

// RunThresholdAblation sweeps the early-termination threshold on the
// production engine. Thresholds above s/2 are unsafe (they can abandon a
// pair before the shared prime surfaces); the sweep quantifies what the
// safe s/2 choice costs relative to more aggressive cuts.
func RunThresholdAblation(bits, pairs int, fractions []float64, seed int64) (*ThresholdAblation, error) {
	if len(fractions) == 0 {
		fractions = []float64{0.25, 0.5, 0.75}
	}
	if pairs <= 0 {
		pairs = 50
	}
	xs, ys, err := pairSource(bits, pairs, seed)
	if err != nil {
		return nil, err
	}
	scratch := gcd.NewScratch(bits)
	res := &ThresholdAblation{Bits: bits, Pairs: pairs, Fractions: fractions}
	for _, f := range fractions {
		threshold := int(f * float64(bits))
		var acc stats.Acc
		for i := range xs {
			_, st := scratch.Compute(gcd.Approximate, xs[i], ys[i], gcd.Options{EarlyBits: threshold})
			acc.Add(float64(st.Iterations))
		}
		res.MeanIters = append(res.MeanIters, acc.Mean())
		res.SharedPrimeSafe = append(res.SharedPrimeSafe, threshold <= bits/2)
	}
	var acc stats.Acc
	for i := range xs {
		_, st := scratch.Compute(gcd.Approximate, xs[i], ys[i], gcd.Options{})
		acc.Add(float64(st.Iterations))
	}
	res.MeanIters = append(res.MeanIters, acc.Mean())
	return res, nil
}

// Table renders the threshold ablation.
func (r *ThresholdAblation) Table() *tabfmt.Table {
	t := tabfmt.NewTable("threshold", "mean iters", "vs non-terminate", "safe for s/2-bit primes")
	base := r.MeanIters[len(r.MeanIters)-1]
	for i, f := range r.Fractions {
		t.AddRowF(
			fmt.Sprintf("%.2f*s", f),
			fmt.Sprintf("%.1f", r.MeanIters[i]),
			fmt.Sprintf("%.2fx", r.MeanIters[i]/base),
			fmt.Sprintf("%v", r.SharedPrimeSafe[i]),
		)
	}
	t.AddRowF("none", fmt.Sprintf("%.1f", base), "1.00x", "true")
	return t
}
