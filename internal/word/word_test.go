package word

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAdd32Basic(t *testing.T) {
	cases := []struct {
		x, y, c   uint32
		sum, cout uint32
	}{
		{0, 0, 0, 0, 0},
		{1, 2, 0, 3, 0},
		{0xFFFFFFFF, 1, 0, 0, 1},
		{0xFFFFFFFF, 0xFFFFFFFF, 1, 0xFFFFFFFF, 1},
		{0x80000000, 0x80000000, 0, 0, 1},
		{0x7FFFFFFF, 1, 1, 0x80000001, 0},
	}
	for _, c := range cases {
		sum, cout := Add32(c.x, c.y, c.c)
		if sum != c.sum || cout != c.cout {
			t.Errorf("Add32(%#x,%#x,%d) = (%#x,%d), want (%#x,%d)",
				c.x, c.y, c.c, sum, cout, c.sum, c.cout)
		}
	}
}

func TestSub32Basic(t *testing.T) {
	cases := []struct {
		x, y, b    uint32
		diff, bout uint32
	}{
		{0, 0, 0, 0, 0},
		{3, 2, 0, 1, 0},
		{0, 1, 0, 0xFFFFFFFF, 1},
		{0, 0, 1, 0xFFFFFFFF, 1},
		{5, 2, 1, 2, 0},
		{2, 2, 1, 0xFFFFFFFF, 1},
	}
	for _, c := range cases {
		diff, bout := Sub32(c.x, c.y, c.b)
		if diff != c.diff || bout != c.bout {
			t.Errorf("Sub32(%#x,%#x,%d) = (%#x,%d), want (%#x,%d)",
				c.x, c.y, c.b, diff, bout, c.diff, c.bout)
		}
	}
}

func TestAddSubRoundTrip(t *testing.T) {
	f := func(x, y uint32) bool {
		sum, c := Add32(x, y, 0)
		diff, b := Sub32(sum, y, 0)
		// x + y - y == x, and a borrow occurs exactly when a carry did.
		return diff == x && b == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMul32(t *testing.T) {
	cases := []struct {
		x, y   uint32
		hi, lo uint32
	}{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{0xFFFFFFFF, 0xFFFFFFFF, 0xFFFFFFFE, 1},
		{0x10000, 0x10000, 1, 0},
		{0xFFFFFFFF, 2, 1, 0xFFFFFFFE},
	}
	for _, c := range cases {
		hi, lo := Mul32(c.x, c.y)
		if hi != c.hi || lo != c.lo {
			t.Errorf("Mul32(%#x,%#x) = (%#x,%#x), want (%#x,%#x)",
				c.x, c.y, hi, lo, c.hi, c.lo)
		}
	}
}

func TestMulAddNeverOverflows(t *testing.T) {
	// (D-1)^2 + (D-1) + (D-1) = D^2 - 1 exactly: the maximal case must not wrap.
	hi, lo := MulAdd(0xFFFFFFFF, 0xFFFFFFFF, 0xFFFFFFFF, 0xFFFFFFFF)
	if hi != 0xFFFFFFFF || lo != 0xFFFFFFFF {
		t.Fatalf("MulAdd max = (%#x,%#x), want (0xffffffff,0xffffffff)", hi, lo)
	}
}

func TestMulAddQuick(t *testing.T) {
	f := func(x, y, a, c uint32) bool {
		hi, lo := MulAdd(x, y, a, c)
		got := uint64(hi)<<32 | uint64(lo)
		want := uint64(x)*uint64(y) + uint64(a) + uint64(c)
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDiv64(t *testing.T) {
	f := func(x, y uint64) bool {
		if y == 0 {
			y = 1
		}
		q, r := Div64(x, y)
		return q == x/y && r == x%y && q*y+r == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestJoinSplit(t *testing.T) {
	f := func(hi, lo uint32) bool {
		h, l := Split(Join(hi, lo))
		return h == hi && l == lo
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestJoinMatchesPaperNotation(t *testing.T) {
	// The paper writes <x1 x2> = x1*D + x2.
	if got := Join(3, 7); got != 3*Base+7 {
		t.Fatalf("Join(3,7) = %d, want %d", got, 3*Base+7)
	}
}

func TestBitHelpers(t *testing.T) {
	if TrailingZeros32(0) != 32 || LeadingZeros32(0) != 32 || Len32(0) != 0 {
		t.Fatal("zero-input conventions violated")
	}
	if TrailingZeros32(0b1101_0100) != 2 {
		t.Fatal("TrailingZeros32(0b11010100) != 2")
	}
	if Len32(0b1101_1111) != 8 {
		t.Fatal("Len32(0b11011111) != 8")
	}
	if LeadingZeros32(1<<31) != 0 {
		t.Fatal("LeadingZeros32(1<<31) != 0")
	}
}

func BenchmarkMulAdd(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	x, y := r.Uint32()|1, r.Uint32()|1
	var hi, lo uint32
	for i := 0; i < b.N; i++ {
		hi, lo = MulAdd(x, y, lo, hi)
	}
	_ = hi
}
