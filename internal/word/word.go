// Package word provides the d = 32-bit word-level primitives on which the
// multiprecision arithmetic of this repository is built.
//
// The paper ("Bulk GCD Computation Using a GPU to Break Weak RSA Keys",
// Fujita, Nakano, Ito; IPDPSW 2015) stores all large numbers in d-bit words
// with d = 32 and relies on three hardware facilities: 32-bit addition and
// subtraction with carry/borrow, 32x32 -> 64-bit multiplication, and a single
// 64-bit division used by the approx() quotient approximation. This package
// wraps those facilities (via math/bits) with names that match the paper's
// usage, so the higher layers read like the pseudo code in Sections III-IV.
package word

import "math/bits"

// Bits is the word size d used throughout the repository.
const Bits = 32

// Base is D = 2^d, the radix of the multiword representation, as a uint64.
const Base = uint64(1) << Bits

// Mask extracts the low d bits of a 64-bit intermediate.
const Mask = Base - 1

// Add32 returns the d-bit sum x + y + carry and the outgoing carry.
// carry must be 0 or 1.
func Add32(x, y, carry uint32) (sum, carryOut uint32) {
	return bits.Add32(x, y, carry)
}

// Sub32 returns the d-bit difference x - y - borrow and the outgoing borrow.
// borrow must be 0 or 1.
func Sub32(x, y, borrow uint32) (diff, borrowOut uint32) {
	return bits.Sub32(x, y, borrow)
}

// Mul32 returns the full 2d-bit product x * y split into high and low words.
func Mul32(x, y uint32) (hi, lo uint32) {
	p := uint64(x) * uint64(y)
	return uint32(p >> Bits), uint32(p)
}

// MulAdd returns x*y + a + carry as (hi, lo). The result never overflows
// 2d bits: (D-1)^2 + 2(D-1) = D^2 - 1.
func MulAdd(x, y, a, carry uint32) (hi, lo uint32) {
	p := uint64(x)*uint64(y) + uint64(a) + uint64(carry)
	return uint32(p >> Bits), uint32(p)
}

// Div64 returns the quotient and remainder of the plain two-word by
// two-word 64-bit division the paper's approx() performs ("just one 64-bit
// division"). y must be non-zero.
func Div64(x, y uint64) (q, r uint64) {
	return x / y, x % y
}

// Join forms the 2d-bit value x1*D + x2 from two words, mirroring the
// paper's notation  <x1 x2>  for the integer represented by the two most
// significant words of a number.
func Join(x1, x2 uint32) uint64 {
	return uint64(x1)<<Bits | uint64(x2)
}

// Split is the inverse of Join.
func Split(v uint64) (hi, lo uint32) {
	return uint32(v >> Bits), uint32(v)
}

// TrailingZeros32 returns the number of trailing zero bits in x
// (32 when x == 0).
func TrailingZeros32(x uint32) int {
	return bits.TrailingZeros32(x)
}

// LeadingZeros32 returns the number of leading zero bits in x
// (32 when x == 0).
func LeadingZeros32(x uint32) int {
	return bits.LeadingZeros32(x)
}

// Len32 returns the minimum number of bits required to represent x
// (0 when x == 0).
func Len32(x uint32) int {
	return bits.Len32(x)
}
