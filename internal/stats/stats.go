// Package stats provides the small statistical accumulators the experiment
// harness uses to aggregate per-pair measurements into the means the
// paper's tables report.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Acc accumulates scalar observations.
type Acc struct {
	n          int64
	sum, sumSq float64
	min, max   float64
}

// Add records one observation.
func (a *Acc) Add(v float64) {
	if a.n == 0 || v < a.min {
		a.min = v
	}
	if a.n == 0 || v > a.max {
		a.max = v
	}
	a.n++
	a.sum += v
	a.sumSq += v * v
}

// AddN records n copies of v (for pre-aggregated counts).
func (a *Acc) AddN(v float64, n int64) {
	if n <= 0 {
		return
	}
	if a.n == 0 || v < a.min {
		a.min = v
	}
	if a.n == 0 || v > a.max {
		a.max = v
	}
	a.n += n
	a.sum += v * float64(n)
	a.sumSq += v * v * float64(n)
}

// N returns the number of observations.
func (a *Acc) N() int64 { return a.n }

// Sum returns the total.
func (a *Acc) Sum() float64 { return a.sum }

// Mean returns the arithmetic mean (0 with no observations).
func (a *Acc) Mean() float64 {
	if a.n == 0 {
		return 0
	}
	return a.sum / float64(a.n)
}

// Min and Max return the extremes (0 with no observations).
func (a *Acc) Min() float64 { return a.min }

// Max returns the largest observation.
func (a *Acc) Max() float64 { return a.max }

// StdDev returns the population standard deviation.
func (a *Acc) StdDev() float64 {
	if a.n == 0 {
		return 0
	}
	m := a.Mean()
	v := a.sumSq/float64(a.n) - m*m
	if v < 0 {
		v = 0 // numeric noise
	}
	return math.Sqrt(v)
}

// String summarizes the accumulator.
func (a *Acc) String() string {
	return fmt.Sprintf("n=%d mean=%.3f min=%.3f max=%.3f sd=%.3f",
		a.n, a.Mean(), a.min, a.max, a.StdDev())
}

// Merge folds other into a.
func (a *Acc) Merge(other *Acc) {
	if other.n == 0 {
		return
	}
	if a.n == 0 {
		*a = *other
		return
	}
	if other.min < a.min {
		a.min = other.min
	}
	if other.max > a.max {
		a.max = other.max
	}
	a.n += other.n
	a.sum += other.sum
	a.sumSq += other.sumSq
}

// Quantiles computes the requested quantiles (each in [0,1]) of a sample.
// The input slice is not modified.
func Quantiles(sample []float64, qs ...float64) []float64 {
	out := make([]float64, len(qs))
	if len(sample) == 0 {
		return out
	}
	s := append([]float64(nil), sample...)
	sort.Float64s(s)
	for i, q := range qs {
		if q <= 0 {
			out[i] = s[0]
			continue
		}
		if q >= 1 {
			out[i] = s[len(s)-1]
			continue
		}
		pos := q * float64(len(s)-1)
		lo := int(pos)
		frac := pos - float64(lo)
		if lo+1 < len(s) {
			out[i] = s[lo]*(1-frac) + s[lo+1]*frac
		} else {
			out[i] = s[lo]
		}
	}
	return out
}
