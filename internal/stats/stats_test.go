package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAccBasics(t *testing.T) {
	var a Acc
	if a.N() != 0 || a.Mean() != 0 || a.StdDev() != 0 {
		t.Fatal("empty accumulator not zero")
	}
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		a.Add(v)
	}
	if a.N() != 8 || a.Sum() != 40 {
		t.Fatalf("n=%d sum=%v", a.N(), a.Sum())
	}
	if a.Mean() != 5 {
		t.Fatalf("mean = %v, want 5", a.Mean())
	}
	if a.Min() != 2 || a.Max() != 9 {
		t.Fatalf("min=%v max=%v", a.Min(), a.Max())
	}
	if sd := a.StdDev(); math.Abs(sd-2) > 1e-12 {
		t.Fatalf("stddev = %v, want 2", sd)
	}
	if a.String() == "" {
		t.Fatal("String empty")
	}
}

func TestAccAddN(t *testing.T) {
	var a, b Acc
	for i := 0; i < 5; i++ {
		a.Add(3.5)
	}
	b.AddN(3.5, 5)
	b.AddN(1, 0)  // no-op
	b.AddN(1, -2) // no-op
	if a.Mean() != b.Mean() || a.N() != b.N() || a.StdDev() != b.StdDev() {
		t.Fatalf("AddN mismatch: %v vs %v", a.String(), b.String())
	}
}

func TestAccMerge(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	var whole, left, right Acc
	for i := 0; i < 1000; i++ {
		v := r.NormFloat64()*3 + 10
		whole.Add(v)
		if i%2 == 0 {
			left.Add(v)
		} else {
			right.Add(v)
		}
	}
	left.Merge(&right)
	if left.N() != whole.N() {
		t.Fatal("merged count wrong")
	}
	if math.Abs(left.Mean()-whole.Mean()) > 1e-9 {
		t.Fatal("merged mean wrong")
	}
	if math.Abs(left.StdDev()-whole.StdDev()) > 1e-9 {
		t.Fatal("merged stddev wrong")
	}
	if left.Min() != whole.Min() || left.Max() != whole.Max() {
		t.Fatal("merged extremes wrong")
	}
	// Merging into empty copies.
	var empty Acc
	empty.Merge(&whole)
	if empty.N() != whole.N() || empty.Mean() != whole.Mean() {
		t.Fatal("merge into empty wrong")
	}
	before := whole.N()
	whole.Merge(&Acc{})
	if whole.N() != before {
		t.Fatal("merge of empty changed state")
	}
}

func TestMeanProperty(t *testing.T) {
	f := func(vs []float64) bool {
		var a Acc
		sum := 0.0
		ok := true
		for _, v := range vs {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e12 {
				ok = false
				break
			}
			a.Add(v)
			sum += v
		}
		if !ok || len(vs) == 0 {
			return true
		}
		want := sum / float64(len(vs))
		return math.Abs(a.Mean()-want) <= 1e-6*(1+math.Abs(want))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuantiles(t *testing.T) {
	sample := []float64{5, 1, 4, 2, 3}
	qs := Quantiles(sample, 0, 0.5, 1, -0.5, 2)
	want := []float64{1, 3, 5, 1, 5}
	for i := range want {
		if qs[i] != want[i] {
			t.Fatalf("quantile %d = %v, want %v", i, qs[i], want[i])
		}
	}
	// Interpolation.
	q := Quantiles([]float64{0, 10}, 0.25)[0]
	if q != 2.5 {
		t.Fatalf("interpolated quantile = %v, want 2.5", q)
	}
	if got := Quantiles(nil, 0.5); got[0] != 0 {
		t.Fatal("empty sample quantile not 0")
	}
	// Input not modified.
	if sample[0] != 5 {
		t.Fatal("Quantiles sorted the caller's slice")
	}
}
