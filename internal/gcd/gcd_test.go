package gcd

import (
	"math/big"
	"math/rand"
	"testing"

	"bulkgcd/internal/mpnat"
	"bulkgcd/internal/refgcd"
)

func randOdd(r *rand.Rand, bits int) *big.Int {
	if bits < 1 {
		bits = 1
	}
	v := new(big.Int)
	for v.BitLen() < bits {
		v.Lsh(v, 32)
		v.Or(v, new(big.Int).SetUint64(uint64(r.Uint32())))
	}
	v.Rsh(v, uint(v.BitLen()-bits))
	v.SetBit(v, bits-1, 1)
	v.SetBit(v, 0, 1)
	return v
}

func nextPrime(v *big.Int) *big.Int {
	p := new(big.Int).Set(v)
	p.SetBit(p, 0, 1)
	for !p.ProbablyPrime(32) {
		p.Add(p, big.NewInt(2))
	}
	return p
}

// refAlg maps this package's algorithm ids onto refgcd's.
func refAlg(a Algorithm) refgcd.Algorithm { return refgcd.Algorithm(a) }

// TestMatchesReferenceOracle cross-checks every algorithm against the
// math/big reference implementation at d = 32: same gcd, same iteration
// count, and for Approximate the same beta > 0 count.
func TestMatchesReferenceOracle(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 250; i++ {
		x := randOdd(r, 2+r.Intn(700))
		y := randOdd(r, 2+r.Intn(700))
		for _, alg := range Algorithms {
			want, err := refgcd.Run(refAlg(alg), x, y, refgcd.Options{WordBits: 32})
			if err != nil {
				t.Fatal(err)
			}
			g, st := Compute(alg, mpnat.FromBig(x), mpnat.FromBig(y), Options{})
			if g.ToBig().Cmp(want.GCD) != 0 {
				t.Fatalf("%v(%v,%v) = %v, want %v", alg, x, y, g, want.GCD)
			}
			if st.Iterations != want.Iterations {
				t.Fatalf("%v(%v,%v): %d iterations, reference %d",
					alg, x, y, st.Iterations, want.Iterations)
			}
			if alg == Approximate && st.BetaNonZero != want.BetaNonZero {
				t.Fatalf("Approximate(%v,%v): BetaNonZero %d, reference %d",
					x, y, st.BetaNonZero, want.BetaNonZero)
			}
		}
	}
}

// TestApproximateCaseCountsMatchReference compares the full approx() case
// histogram against the reference.
func TestApproximateCaseCountsMatchReference(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 100; i++ {
		x := randOdd(r, 64+r.Intn(512))
		y := randOdd(r, 64+r.Intn(512))
		want, err := refgcd.Run(refgcd.Approximate, x, y, refgcd.Options{WordBits: 32})
		if err != nil {
			t.Fatal(err)
		}
		_, st := Compute(Approximate, mpnat.FromBig(x), mpnat.FromBig(y), Options{})
		for c := 0; c < numCases; c++ {
			if st.CaseCounts[c] != want.CaseCounts[CaseName(c)] {
				t.Fatalf("case %s: count %d, reference %d (inputs %v, %v)",
					CaseName(c), st.CaseCounts[c], want.CaseCounts[CaseName(c)], x, y)
			}
		}
	}
}

// TestAgainstBigGCD is an independent correctness check straight against
// math/big with no intermediary.
func TestAgainstBigGCD(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 300; i++ {
		// Mix in inputs with a planted common odd factor.
		g := randOdd(r, 1+r.Intn(64))
		x := new(big.Int).Mul(randOdd(r, 2+r.Intn(300)), g)
		y := new(big.Int).Mul(randOdd(r, 2+r.Intn(300)), g)
		if x.Bit(0) == 0 || y.Bit(0) == 0 {
			continue
		}
		want := new(big.Int).GCD(nil, nil, x, y)
		for _, alg := range Algorithms {
			got, _ := Compute(alg, mpnat.FromBig(x), mpnat.FromBig(y), Options{})
			if got.ToBig().Cmp(want) != 0 {
				t.Fatalf("%v(%v,%v) = %v, want %v", alg, x, y, got, want)
			}
		}
	}
}

// TestSharedPrimeRecovery is the paper's actual use case: two RSA moduli
// sharing a prime are factored by every algorithm, in both terminate modes.
func TestSharedPrimeRecovery(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for _, bits := range []int{256, 512} {
		p := nextPrime(randOdd(r, bits/2))
		q1 := nextPrime(randOdd(r, bits/2))
		q2 := nextPrime(randOdd(r, bits/2))
		n1 := mpnat.FromBig(new(big.Int).Mul(p, q1))
		n2 := mpnat.FromBig(new(big.Int).Mul(p, q2))
		for _, alg := range Algorithms {
			for _, early := range []int{0, bits / 2} {
				g, st := Compute(alg, n1, n2, Options{EarlyBits: early})
				if g == nil {
					t.Fatalf("%v bits=%d early=%d: reported coprime for shared prime", alg, bits, early)
				}
				if g.ToBig().Cmp(p) != 0 {
					t.Fatalf("%v bits=%d early=%d: gcd = %v, want shared prime %v", alg, bits, early, g, p)
				}
				if st.EarlyTerminated {
					t.Fatalf("%v: early-terminated on a shared-prime pair", alg)
				}
			}
		}
	}
}

// TestEarlyTerminateCoprime checks that the early variant detects coprime
// RSA-scale moduli (nil result) in roughly half the iterations, the
// paper's Table IV observation.
func TestEarlyTerminateCoprime(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for _, alg := range Algorithms {
		fullSum, earlySum := 0, 0
		for i := 0; i < 10; i++ {
			x := mpnat.FromBig(randOdd(r, 512))
			y := mpnat.FromBig(randOdd(r, 512))
			gF, stF := Compute(alg, x, y, Options{})
			gE, stE := Compute(alg, x, y, Options{EarlyBits: 256})
			if gF == nil {
				t.Fatal("non-terminate run returned nil")
			}
			if gE != nil {
				t.Fatalf("%v: early run returned %v for coprime inputs", alg, gE)
			}
			if !stE.EarlyTerminated {
				t.Fatalf("%v: EarlyTerminated not set", alg)
			}
			fullSum += stF.Iterations
			earlySum += stE.Iterations
		}
		ratio := float64(earlySum) / float64(fullSum)
		if ratio < 0.35 || ratio > 0.65 {
			t.Errorf("%v: early/full iteration ratio %.3f outside [0.35,0.65]", alg, ratio)
		}
	}
}

// TestIterationProportionality checks Table IV's observation 2: iteration
// counts are proportional to input length (doubling bits ~doubles counts).
func TestIterationProportionality(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	mean := func(alg Algorithm, bits, n int) float64 {
		total := 0
		for i := 0; i < n; i++ {
			x := mpnat.FromBig(randOdd(r, bits))
			y := mpnat.FromBig(randOdd(r, bits))
			_, st := Compute(alg, x, y, Options{})
			total += st.Iterations
		}
		return float64(total) / float64(n)
	}
	for _, alg := range []Algorithm{FastBinary, Approximate} {
		m256 := mean(alg, 256, 30)
		m512 := mean(alg, 512, 30)
		ratio := m512 / m256
		if ratio < 1.8 || ratio > 2.2 {
			t.Errorf("%v: 512/256 iteration ratio %.2f, want ~2", alg, ratio)
		}
	}
}

// TestIterationRanking checks Table IV's observation 3 on means:
// (E) ~ (B) < (D) < (C), with (E) about half of (D) and a quarter of (C).
func TestIterationRanking(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	const n = 40
	var sums [5]float64
	for i := 0; i < n; i++ {
		x := randOdd(r, 512)
		y := randOdd(r, 512)
		for _, alg := range Algorithms {
			_, st := Compute(alg, mpnat.FromBig(x), mpnat.FromBig(y), Options{})
			sums[alg] += float64(st.Iterations) / n
		}
	}
	if !(sums[Approximate] < sums[FastBinary] && sums[FastBinary] < sums[Binary]) {
		t.Errorf("ranking violated: E=%.1f D=%.1f C=%.1f", sums[Approximate], sums[FastBinary], sums[Binary])
	}
	if ratio := sums[FastBinary] / sums[Approximate]; ratio < 1.7 || ratio > 2.3 {
		t.Errorf("D/E iteration ratio %.2f, want ~2", ratio)
	}
	if ratio := sums[Binary] / sums[Approximate]; ratio < 3.2 || ratio > 4.5 {
		t.Errorf("C/E iteration ratio %.2f, want ~4", ratio)
	}
	// (E) vs (B): Table IV reports a relative difference around 1e-5; at
	// this sample size the sign can fluctuate, so assert only magnitude.
	rel := (sums[Approximate] - sums[Fast]) / sums[Fast]
	if rel < -0.005 || rel > 0.005 {
		t.Errorf("(E)-(B) relative difference %.5f, want |diff| < 0.5%%", rel)
	}
}

// TestMemOpsPerIteration validates the Section IV accounting: for
// Approximate on s-bit inputs, memory operations per iteration stay close
// to 3*s/32 (the fraction of beta>0 iterations is negligible), and below
// it on average since operands shrink.
func TestMemOpsPerIteration(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	for _, bits := range []int{512, 1024, 2048} {
		x := mpnat.FromBig(randOdd(r, bits))
		y := mpnat.FromBig(randOdd(r, bits))
		_, st := Compute(Approximate, x, y, Options{})
		perIter := float64(st.MemOps) / float64(st.Iterations)
		bound := 3.0 * float64(bits) / 32.0
		if perIter > bound+4 {
			t.Errorf("bits=%d: %.1f mem ops/iteration exceeds 3s/d = %.1f", bits, perIter, bound)
		}
		if perIter < bound/4 {
			t.Errorf("bits=%d: %.1f mem ops/iteration implausibly low", bits, perIter)
		}
		// Early-terminate keeps operands at >= s/2 bits, so the per-iteration
		// cost must be at least 3*(s/2)/32 * (2/3 read share)... simply: at
		// least half the full-size bound.
		_, stE := Compute(Approximate, x, y, Options{EarlyBits: bits / 2})
		perIterE := float64(stE.MemOps) / float64(stE.Iterations)
		if perIterE < bound/2-4 || perIterE > bound+4 {
			t.Errorf("bits=%d early: %.1f mem ops/iteration outside [%.1f,%.1f]",
				bits, perIterE, bound/2-4, bound+4)
		}
	}
}

// TestBetaZeroOverwhelming validates Section V's claim that approx()
// returns beta = 0 with overwhelming probability for d = 32. The paper
// measures < 1e-8; we assert a conservative bound on a smaller sample.
func TestBetaZeroOverwhelming(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	totalIters, totalBeta := 0, 0
	for i := 0; i < 200; i++ {
		x := mpnat.FromBig(randOdd(r, 512))
		y := mpnat.FromBig(randOdd(r, 512))
		_, st := Compute(Approximate, x, y, Options{})
		totalIters += st.Iterations
		totalBeta += st.BetaNonZero
	}
	if totalIters < 30000 {
		t.Fatalf("sample too small: %d iterations", totalIters)
	}
	if frac := float64(totalBeta) / float64(totalIters); frac > 1e-3 {
		t.Errorf("beta>0 fraction %.2e, want < 1e-3 (paper: <1e-8)", frac)
	}
}

// TestScratchReuse confirms a Scratch computes correctly across many calls
// and that results are independent of prior state.
func TestScratchReuse(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	s := NewScratch(512)
	for i := 0; i < 100; i++ {
		x := randOdd(r, 2+r.Intn(512))
		y := randOdd(r, 2+r.Intn(512))
		want := new(big.Int).GCD(nil, nil, x, y)
		g, _ := s.Compute(Approximate, mpnat.FromBig(x), mpnat.FromBig(y), Options{})
		if g.ToBig().Cmp(want) != 0 {
			t.Fatalf("reused scratch wrong at i=%d", i)
		}
	}
}

// TestComputeDoesNotModifyInputs guards the documented contract.
func TestComputeDoesNotModifyInputs(t *testing.T) {
	x := mpnat.New(1043915)
	y := mpnat.New(768955)
	for _, alg := range Algorithms {
		Compute(alg, x, y, Options{})
		if x.Uint64() != 1043915 || y.Uint64() != 768955 {
			t.Fatalf("%v modified its inputs", alg)
		}
	}
}

// TestSmallAndDegenerateInputs covers the boundary conditions of the loops.
func TestSmallAndDegenerateInputs(t *testing.T) {
	cases := []struct{ x, y, want uint64 }{
		{1, 1, 1},
		{3, 1, 1},
		{1, 3, 1},
		{9, 3, 3},
		{39, 9, 3},
		{15, 7, 1},
		{0xFFFFFFFF, 3, 3},
		{982451653, 982451653, 982451653},
		{1043915, 768955, 5},
		{1<<63 + 1, 3, 3}, // straddles the 64-bit boundary
		{0xFFFFFFFFFFFFFFFF, 0xFFFFFFFF, 0xFFFFFFFF}, // 2^64-1 = (2^32-1)(2^32+1)
	}
	for _, c := range cases {
		for _, alg := range Algorithms {
			g, _ := Compute(alg, mpnat.New(c.x), mpnat.New(c.y), Options{})
			if g.Uint64() != c.want {
				t.Errorf("%v(%d,%d) = %v, want %d", alg, c.x, c.y, g, c.want)
			}
		}
	}
}

// TestEqualLongInputs exercises the Case 4-C path (identical moduli, the
// duplicate-key situation): gcd(n, n) = n.
func TestEqualLongInputs(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	n := mpnat.FromBig(randOdd(r, 1024))
	for _, alg := range Algorithms {
		g, _ := Compute(alg, n, n, Options{})
		if g.Cmp(n) != 0 {
			t.Errorf("%v: gcd(n,n) != n", alg)
		}
	}
	// Near-equal inputs: top words equal, low words differing.
	m := n.Clone()
	mb := m.ToBig()
	mb.Sub(mb, big.NewInt(2))
	m = mpnat.FromBig(mb)
	_, st := Compute(Approximate, n, m, Options{})
	if st.CaseCounts[Case4C] == 0 {
		t.Error("near-equal 1024-bit inputs never took Case 4-C")
	}
}

// TestCase2And3Reachable drives the non-terminate tail into the short-Y
// approx cases with crafted inputs (huge X, tiny Y).
func TestCase2And3Reachable(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	var hit2A, hit2B, hit3A, hit3B bool
	for i := 0; i < 400 && !(hit2A && hit2B && hit3A && hit3B); i++ {
		x := randOdd(r, 128+r.Intn(128))
		y := randOdd(r, 17+r.Intn(80)) // 1-3 word Y
		want := new(big.Int).GCD(nil, nil, x, y)
		g, st := Compute(Approximate, mpnat.FromBig(x), mpnat.FromBig(y), Options{})
		if g.ToBig().Cmp(want) != 0 {
			t.Fatalf("Approximate(%v,%v) = %v, want %v", x, y, g, want)
		}
		hit2A = hit2A || st.CaseCounts[Case2A] > 0
		hit2B = hit2B || st.CaseCounts[Case2B] > 0
		hit3A = hit3A || st.CaseCounts[Case3A] > 0
		hit3B = hit3B || st.CaseCounts[Case3B] > 0
	}
	if !hit2A || !hit2B || !hit3A || !hit3B {
		t.Errorf("approx cases not all reached: 2A=%v 2B=%v 3A=%v 3B=%v", hit2A, hit2B, hit3A, hit3B)
	}
}

// TestStatsAdd checks the aggregation helper used by the bulk layer.
func TestStatsAdd(t *testing.T) {
	a := Stats{Iterations: 3, BetaNonZero: 1, MemOps: 100}
	a.CaseCounts[Case4A] = 2
	b := Stats{Iterations: 4, MemOps: 50}
	b.CaseCounts[Case4A] = 5
	a.Add(&b)
	if a.Iterations != 7 || a.BetaNonZero != 1 || a.MemOps != 150 || a.CaseCounts[Case4A] != 7 {
		t.Errorf("Add result wrong: %+v", a)
	}
}

func TestValidate(t *testing.T) {
	odd := mpnat.New(15)
	even := mpnat.New(14)
	zero := &mpnat.Nat{}
	if Validate(odd, odd) != nil {
		t.Error("valid inputs rejected")
	}
	if Validate(even, odd) == nil || Validate(odd, even) == nil {
		t.Error("even input accepted")
	}
	if Validate(zero, odd) == nil || Validate(odd, zero) == nil {
		t.Error("zero input accepted")
	}
}

func TestAlgorithmNames(t *testing.T) {
	if Approximate.String() != "Approximate" || Binary.Letter() != "C" {
		t.Error("names wrong")
	}
	if Algorithm(42).String() == "" || Algorithm(42).Letter() != "?" {
		t.Error("out-of-range handling wrong")
	}
	if CaseName(Case3B) != "3-B" || CaseName(-1) != "?" {
		t.Error("case names wrong")
	}
}

func benchPair(b *testing.B, bits int) (*mpnat.Nat, *mpnat.Nat) {
	b.Helper()
	r := rand.New(rand.NewSource(int64(bits)))
	return mpnat.FromBig(randOdd(r, bits)), mpnat.FromBig(randOdd(r, bits))
}

func benchAlg(b *testing.B, alg Algorithm, bits, early int) {
	x, y := benchPair(b, bits)
	s := NewScratch(bits)
	opt := Options{EarlyBits: early}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Compute(alg, x, y, opt)
	}
}

func BenchmarkApproximate1024(b *testing.B)      { benchAlg(b, Approximate, 1024, 0) }
func BenchmarkApproximate1024Early(b *testing.B) { benchAlg(b, Approximate, 1024, 512) }
func BenchmarkFastBinary1024(b *testing.B)       { benchAlg(b, FastBinary, 1024, 0) }
func BenchmarkBinary1024(b *testing.B)           { benchAlg(b, Binary, 1024, 0) }
func BenchmarkFast1024(b *testing.B)             { benchAlg(b, Fast, 1024, 0) }
func BenchmarkOriginal1024(b *testing.B)         { benchAlg(b, Original, 1024, 0) }
