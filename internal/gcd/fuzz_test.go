package gcd

import (
	"math/big"
	"testing"

	"bulkgcd/internal/mpnat"
)

// Fuzz targets. Under plain `go test` these run their seed corpus; under
// `go test -fuzz` they explore. The oracle is always math/big.

// FuzzGCDAllAlgorithms checks every algorithm against big.Int GCD on
// arbitrary odd inputs assembled from fuzzer bytes.
func FuzzGCDAllAlgorithms(f *testing.F) {
	f.Add([]byte{0xFB}, []byte{0x0B})
	f.Add([]byte{0xFE, 0xDC, 0xBB}, []byte{0xBB, 0xBB, 0xBB})
	f.Add([]byte{1}, []byte{1})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 1}, []byte{3})
	f.Add(make([]byte, 64), []byte{7}) // leading zeros
	f.Fuzz(func(t *testing.T, xb, yb []byte) {
		if len(xb) > 512 || len(yb) > 512 {
			return // keep runtime bounded
		}
		x := new(big.Int).SetBytes(xb)
		y := new(big.Int).SetBytes(yb)
		x.SetBit(x, 0, 1) // the core loops require odd positive inputs
		y.SetBit(y, 0, 1)
		want := new(big.Int).GCD(nil, nil, x, y)
		for _, alg := range Algorithms {
			got, st := Compute(alg, mpnat.FromBig(x), mpnat.FromBig(y), Options{})
			if got.ToBig().Cmp(want) != 0 {
				t.Fatalf("%v(%v,%v) = %v, want %v", alg, x, y, got, want)
			}
			if st.Iterations <= 0 {
				t.Fatalf("%v: non-positive iteration count", alg)
			}
		}
	})
}

// FuzzEarlyTerminateNeverMissesFactor plants a common odd factor of at
// least half the input size and checks the early-terminate Approximate
// run still finds it.
func FuzzEarlyTerminateNeverMissesFactor(f *testing.F) {
	f.Add([]byte{0xAB, 0xCD, 0xEF, 0x01, 0x23, 0x45, 0x67, 0x89}, []byte{0x11}, []byte{0x33})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF}, []byte{0x05}, []byte{0x07})
	f.Fuzz(func(t *testing.T, gb, ab, bb []byte) {
		if len(gb) == 0 || len(gb) > 128 || len(ab) > 64 || len(bb) > 64 {
			return
		}
		g := new(big.Int).SetBytes(gb)
		g.SetBit(g, 0, 1)
		a := new(big.Int).SetBytes(ab)
		a.SetBit(a, 0, 1)
		b := new(big.Int).SetBytes(bb)
		b.SetBit(b, 0, 1)
		x := new(big.Int).Mul(g, a)
		y := new(big.Int).Mul(g, b)
		// The shared factor must have at least half the bits of the
		// smaller input for the s/2 early threshold to be sound, the
		// RSA situation. Skip fuzz inputs that violate it.
		s := x.BitLen()
		if yb := y.BitLen(); yb < s {
			s = yb
		}
		if g.BitLen() < (s+1)/2 || s < 4 {
			return
		}
		got, _ := Compute(Approximate, mpnat.FromBig(x), mpnat.FromBig(y), Options{EarlyBits: s / 2})
		if got == nil {
			t.Fatalf("early terminate missed factor: gcd(%v,%v) contains %v", x, y, g)
		}
		if new(big.Int).Mod(got.ToBig(), g).Sign() != 0 {
			t.Fatalf("found factor %v does not contain planted %v", got, g)
		}
	})
}
