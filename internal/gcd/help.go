package gcd

import (
	"strings"

	"bulkgcd/internal/obs"
)

// Metric documentation for every algorithm variant, registered from
// init. The `<alg>` placeholder in DESIGN.md's metric table expands over
// Algorithms, matching exactly what registers here.
func init() {
	for _, alg := range Algorithms {
		prefix := "gcd_" + strings.ToLower(alg.String()) + "_"
		name := alg.String()
		obs.RegisterHelp(prefix+"iterations", "do-while iterations per "+name+" GCD")
		obs.RegisterHelp(prefix+"early_exits_total", name+" computations stopped at the s/2 threshold")
		obs.RegisterHelp(prefix+"beta_nonzero_total", name+" iterations taking the beta > 0 path")
		obs.RegisterHelp(prefix+"memops_total", name+" word-level memory operations (Section IV)")
	}
}
