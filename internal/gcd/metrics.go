package gcd

import (
	"strings"

	"bulkgcd/internal/obs"
)

// Metrics binds one algorithm's obs instruments so the per-pair hot
// path pays only the atomic updates, never a registry lookup. The
// exported names are per-algorithm:
//
//	gcd_<alg>_iterations            histogram of do-while iterations
//	gcd_<alg>_early_exits_total     computations stopped at the s/2 threshold
//	gcd_<alg>_beta_nonzero_total    Approximate iterations on the beta > 0 path
//	gcd_<alg>_memops_total          word-level memory operations (Section IV)
//
// The iteration histograms are the live-counter form of Table IV: their
// snapshot means are exactly the per-algorithm mean iteration counts
// the paper reports, and internal/experiments builds the table from
// them instead of keeping private tallies.
//
// A nil *Metrics (from a nil registry) ignores observations, so callers
// instrument unconditionally.
type Metrics struct {
	iterations  *obs.Histogram
	earlyExits  *obs.Counter
	betaNonZero *obs.Counter
	memOps      *obs.Counter
}

// IterationsMetric is the registry name of alg's iteration-count
// histogram, for readers that consume it from a Snapshot.
func IterationsMetric(alg Algorithm) string {
	return "gcd_" + strings.ToLower(alg.String()) + "_iterations"
}

// NewMetrics resolves the instruments for alg in reg (nil reg gives a
// nil *Metrics).
func NewMetrics(reg *obs.Registry, alg Algorithm) *Metrics {
	if reg == nil {
		return nil
	}
	prefix := "gcd_" + strings.ToLower(alg.String()) + "_"
	return &Metrics{
		iterations:  reg.Histogram(IterationsMetric(alg), obs.IterationBuckets()),
		earlyExits:  reg.Counter(prefix + "early_exits_total"),
		betaNonZero: reg.Counter(prefix + "beta_nonzero_total"),
		memOps:      reg.Counter(prefix + "memops_total"),
	}
}

// Observe records one computation's statistics.
func (m *Metrics) Observe(st *Stats) {
	if m == nil {
		return
	}
	m.iterations.Observe(float64(st.Iterations))
	if st.EarlyTerminated {
		m.earlyExits.Inc()
	}
	m.betaNonZero.Add(int64(st.BetaNonZero))
	m.memOps.Add(st.MemOps)
}
