package gcd

import (
	"math/big"
	"math/rand"
	"testing"

	"bulkgcd/internal/mpnat"
)

// TestComputeAllocsPerPair locks the zero-allocation contract of the scalar
// kernel: once a worker's Scratch has warmed up, a coprime pair costs no
// heap allocation at all (the gcd-is-1 result is a shared constant), and a
// factor-sharing pair costs only the clone of the returned factor.
func TestComputeAllocsPerPair(t *testing.T) {
	rnd := rand.New(rand.NewSource(7))
	oddRand := func(bits int) *mpnat.Nat {
		v := new(big.Int).Rand(rnd, new(big.Int).Lsh(big.NewInt(1), uint(bits)))
		v.SetBit(v, bits-1, 1)
		v.SetBit(v, 0, 1)
		return mpnat.FromBig(v)
	}
	x, y := oddRand(512), oddRand(512)
	s := NewScratch(512)

	for _, alg := range Algorithms {
		for _, opt := range []Options{{}, {EarlyBits: 256}} {
			// Warm the scratch so amortized growth is out of the way.
			s.Compute(alg, x, y, opt)
			got := testing.AllocsPerRun(20, func() {
				s.Compute(alg, x, y, opt)
			})
			if got != 0 {
				t.Errorf("%v early=%d: %.1f allocs per coprime pair, want 0",
					alg, opt.EarlyBits, got)
			}
		}
	}

	// A shared factor is allowed exactly the allocation of its clone.
	p := oddRand(256)
	px := mpnat.FromBig(new(big.Int).Mul(p.ToBig(), oddRand(256).ToBig()))
	py := mpnat.FromBig(new(big.Int).Mul(p.ToBig(), oddRand(256).ToBig()))
	s.Compute(Approximate, px, py, Options{})
	got := testing.AllocsPerRun(20, func() {
		g, _ := s.Compute(Approximate, px, py, Options{})
		if g == nil || g.IsOne() {
			t.Fatal("expected a non-trivial factor")
		}
	})
	const maxFactorAllocs = 2 // the factor's Nat header and its word slice
	if got > maxFactorAllocs {
		t.Errorf("%.1f allocs per factor-sharing pair, want <= %d", got, maxFactorAllocs)
	}
}
