package gcd

import (
	"math/big"
	"math/rand"
	"testing"

	"bulkgcd/internal/mpnat"
)

// TestObliviousAgainstBig: correctness on random odd inputs.
func TestObliviousAgainstBig(t *testing.T) {
	r := rand.New(rand.NewSource(60))
	s := NewScratch(1024)
	for i := 0; i < 300; i++ {
		x := randOdd(r, 2+r.Intn(700))
		y := randOdd(r, 2+r.Intn(700))
		want := new(big.Int).GCD(nil, nil, x, y)
		g, st := s.ComputeOblivious(mpnat.FromBig(x), mpnat.FromBig(y), Options{})
		if g.ToBig().Cmp(want) != 0 {
			t.Fatalf("oblivious gcd(%v,%v) = %v, want %v", x, y, g, want)
		}
		maxBits := x.BitLen()
		if yb := y.BitLen(); yb > maxBits {
			maxBits = yb
		}
		if st.Iterations != ObliviousIterations(maxBits) {
			t.Fatalf("iterations %d, want fixed %d", st.Iterations, ObliviousIterations(maxBits))
		}
	}
}

// TestObliviousSmallExhaustive: every odd pair below 2^8.
func TestObliviousSmallExhaustive(t *testing.T) {
	s := NewScratch(64)
	for x := uint64(1); x < 1<<8; x += 2 {
		for y := uint64(1); y < 1<<8; y += 2 {
			want := euclid64(x, y)
			g, _ := s.ComputeOblivious(mpnat.New(x), mpnat.New(y), Options{})
			if g.Uint64() != want {
				t.Fatalf("oblivious gcd(%d,%d) = %v, want %d", x, y, g, want)
			}
		}
	}
}

// TestObliviousPaperExample: the running example of Tables I-III.
func TestObliviousPaperExample(t *testing.T) {
	s := NewScratch(64)
	g, st := s.ComputeOblivious(mpnat.New(1043915), mpnat.New(768955), Options{})
	if g.Uint64() != 5 {
		t.Fatalf("gcd = %v, want 5", g)
	}
	if st.Iterations != 2*32 { // 20-bit inputs occupy one 32-bit word
		t.Fatalf("iterations = %d, want 64", st.Iterations)
	}
}

// TestObliviousTraceIsInputIndependent: the defining property. Two
// arbitrary input pairs of the same width must produce identical
// iteration-shape traces.
func TestObliviousTraceIsInputIndependent(t *testing.T) {
	r := rand.New(rand.NewSource(61))
	s := NewScratch(512)
	opt := Options{RecordShapes: true}
	var ref []IterShape
	for i := 0; i < 10; i++ {
		x := randOdd(r, 512)
		y := randOdd(r, 512)
		_, st := s.ComputeOblivious(mpnat.FromBig(x), mpnat.FromBig(y), opt)
		if ref == nil {
			ref = st.Shapes
			continue
		}
		if len(st.Shapes) != len(ref) {
			t.Fatalf("trace lengths differ: %d vs %d", len(st.Shapes), len(ref))
		}
		for k := range ref {
			if st.Shapes[k] != ref[k] {
				t.Fatalf("trace diverges at iteration %d: %+v vs %+v", k, st.Shapes[k], ref[k])
			}
		}
	}
}

// TestObliviousSharedPrime: the attack use case still works.
func TestObliviousSharedPrime(t *testing.T) {
	r := rand.New(rand.NewSource(62))
	p := nextPrime(randOdd(r, 128))
	q1 := nextPrime(randOdd(r, 128))
	q2 := nextPrime(randOdd(r, 128))
	n1 := mpnat.FromBig(new(big.Int).Mul(p, q1))
	n2 := mpnat.FromBig(new(big.Int).Mul(p, q2))
	s := NewScratch(256)
	g, _ := s.ComputeOblivious(n1, n2, Options{})
	if g.ToBig().Cmp(p) != 0 {
		t.Fatalf("oblivious gcd missed the shared prime")
	}
}

// TestObliviousFixedCostVsApproximate quantifies the obliviousness tax:
// the fixed 2s-iteration full-width loop performs ~5-6x the memory
// operations of semi-oblivious Approximate (without early termination).
func TestObliviousFixedCostVsApproximate(t *testing.T) {
	r := rand.New(rand.NewSource(63))
	s := NewScratch(512)
	var obl, apx int64
	for i := 0; i < 20; i++ {
		x := mpnat.FromBig(randOdd(r, 512))
		y := mpnat.FromBig(randOdd(r, 512))
		_, stO := s.ComputeOblivious(x, y, Options{})
		obl += stO.MemOps
		_, stA := s.Compute(Approximate, x, y, Options{})
		apx += stA.MemOps
	}
	ratio := float64(obl) / float64(apx)
	if ratio < 3 || ratio > 12 {
		t.Errorf("obliviousness tax %.1fx outside the expected 3-12x band", ratio)
	}
}

func BenchmarkOblivious512(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	x := mpnat.FromBig(randOdd(r, 512))
	y := mpnat.FromBig(randOdd(r, 512))
	s := NewScratch(512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ComputeOblivious(x, y, Options{})
	}
}
