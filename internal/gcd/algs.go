package gcd

import (
	"math/bits"

	"bulkgcd/internal/mpnat"
)

// The five algorithm loops. Each receives X >= Y > 0, both odd, as pointers
// that the loop may exchange (the paper's swap(X, Y) is a pointer exchange,
// Section IV). Each loop runs until Y = 0, or until Y drops below
// opt.EarlyBits bits when the early-terminate variant is selected, and
// leaves the result in *X.

// done reports and records loop termination. It returns true when the loop
// must stop, setting st.EarlyTerminated for threshold stops.
func done(Y *mpnat.Nat, opt Options, st *Stats) bool {
	if Y.IsZero() {
		return true
	}
	if opt.EarlyBits > 0 && Y.BitLen() < opt.EarlyBits {
		st.EarlyTerminated = true
		return true
	}
	return false
}

// runOriginal is algorithm (A): do { X <- X mod Y; swap } while Y != 0.
// The per-iteration long division runs through the worker's DivScratch so
// the loop performs no allocation.
func (s *Scratch) runOriginal(X, Y *mpnat.Nat, opt Options, st *Stats) *mpnat.Nat {
	for {
		lx, ly := X.Len(), Y.Len()
		st.MemOps += int64(2*lx + ly)
		s.div.Mod(X, X, Y)
		X, Y = Y, X // X mod Y < Y always, so the swap is unconditional
		record(st, opt, lx, ly, BranchFull, false, true)
		st.Iterations++
		if done(Y, opt, st) {
			return X
		}
	}
}

// runFast is algorithm (B). It uses the identity
//
//	Q odd:  X - Y*Q       = X mod Y
//	Q even: X - Y*(Q-1)   = (X mod Y) + Y
//
// so the decremented-quotient update needs no multiprecision multiply.
func (s *Scratch) runFast(X, Y *mpnat.Nat, opt Options, st *Stats) *mpnat.Nat {
	q, r := &s.q, &s.r
	for {
		lx, ly := X.Len(), Y.Len()
		st.MemOps += int64(2*lx + ly)
		s.div.DivMod(q, r, X, Y)
		if q.IsEven() {
			r.Add(r, Y)
		}
		X.Set(r)
		X.RshiftStrip(X)
		swapped := X.Cmp(Y) < 0
		if swapped {
			X, Y = Y, X
		}
		record(st, opt, lx, ly, BranchFull, false, swapped)
		st.Iterations++
		if done(Y, opt, st) {
			return X
		}
	}
}

// runBinary is algorithm (C): halve whichever operand is even, else
// X <- (X-Y)/2.
func runBinary(X, Y *mpnat.Nat, opt Options, st *Stats) *mpnat.Nat {
	for {
		lx, ly := X.Len(), Y.Len()
		var br Branch
		switch {
		case X.IsEven():
			br = BranchHalveX
			st.MemOps += int64(2 * lx)
			X.Rshift(X, 1)
		case Y.IsEven():
			br = BranchHalveY
			st.MemOps += int64(2 * ly)
			Y.Rshift(Y, 1)
		default:
			br = BranchFull
			st.MemOps += int64(2*lx + ly)
			X.Sub(X, Y)
			X.Rshift(X, 1)
		}
		swapped := X.Cmp(Y) < 0
		if swapped {
			X, Y = Y, X
		}
		record(st, opt, lx, ly, br, false, swapped)
		st.Iterations++
		if done(Y, opt, st) {
			return X
		}
	}
}

// runFastBinary is algorithm (D): X <- rshift(X - Y).
func runFastBinary(X, Y *mpnat.Nat, opt Options, st *Stats) *mpnat.Nat {
	for {
		lx, ly := X.Len(), Y.Len()
		st.MemOps += int64(2*lx + ly)
		X.SubRshift(X, Y)
		swapped := X.Cmp(Y) < 0
		if swapped {
			X, Y = Y, X
		}
		record(st, opt, lx, ly, BranchFull, false, swapped)
		st.Iterations++
		if done(Y, opt, st) {
			return X
		}
	}
}

// runApproximate is algorithm (E), the paper's contribution. The quotient
// approximation costs one 64-bit division on the top two words (approx,
// Section III); the update is the single-pass fused X <- rshift(X - Y*alpha)
// of Section IV, or, with probability below 1e-8 for d = 32 (Section V),
// the beta > 0 update X <- rshift(X - Y*alpha*D^beta + Y).
func runApproximate(X, Y *mpnat.Nat, opt Options, st *Stats) *mpnat.Nat {
	for {
		if X.Len() <= 2 {
			// Case 1: both operands fit in 64 bits; finish there.
			return runApproximate64(X, Y, opt, st)
		}
		lx, ly := X.Len(), Y.Len()
		alpha, beta, caseID := approx(X, Y)
		st.CaseCounts[caseID]++
		if beta == 0 {
			if alpha&1 == 0 { // alpha even: make it odd
				alpha--
			}
			st.MemOps += int64(2*lx + ly)
			X.SubMulRshift(X, Y, uint32(alpha))
		} else {
			st.BetaNonZero++
			// The extra "+Y" pass makes this the 4*s/d iteration.
			st.MemOps += int64(2*lx + 2*ly)
			X.SubMulShiftAddRshift(X, Y, uint32(alpha), beta)
		}
		swapped := X.Cmp(Y) < 0
		if swapped {
			X, Y = Y, X
		}
		record(st, opt, lx, ly, BranchFull, beta != 0, swapped)
		st.Iterations++
		if done(Y, opt, st) {
			return X
		}
	}
}

// runApproximate64 finishes algorithm (E) once both operands have at most
// two words (approx Case 1: the exact 64-bit quotient is used). It keeps
// the paper's iteration semantics - decrement even quotients, subtract,
// strip trailing zeros - so iteration counts remain comparable.
func runApproximate64(X, Y *mpnat.Nat, opt Options, st *Stats) *mpnat.Nat {
	x, y := X.Uint64(), Y.Uint64()
	for {
		lx, ly := wordsOf64(x), wordsOf64(y)
		st.CaseCounts[Case1]++
		st.MemOps += int64(2*lx + ly)
		q := x / y
		r := x - q*y
		if q&1 == 0 {
			// Even quotient: effective alpha is q-1, value (X mod Y) + Y.
			// r + y can carry past 64 bits; the value is even (X, Y odd,
			// alpha odd), so fold the carry into the strip shift.
			sum, carry := bits.Add64(r, y, 0)
			x = stripWithCarry(sum, carry)
		} else {
			x = strip64(r)
		}
		swapped := x < y
		if swapped {
			x, y = y, x
		}
		record(st, opt, lx, ly, BranchFull, false, swapped)
		st.Iterations++
		if y == 0 {
			break
		}
		if opt.EarlyBits > 0 && bits.Len64(y) < opt.EarlyBits {
			st.EarlyTerminated = true
			X.SetUint64(x)
			return X
		}
	}
	X.SetUint64(x)
	Y.SetUint64(0)
	return X
}

// strip64 removes trailing zero bits (rshift); strip64(0) = 0.
func strip64(v uint64) uint64 {
	if v == 0 {
		return 0
	}
	return v >> uint(bits.TrailingZeros64(v))
}

// stripWithCarry strips trailing zeros of the 65-bit value carry:sum,
// which is known to be even and non-zero.
func stripWithCarry(sum, carry uint64) uint64 {
	if carry == 0 {
		return strip64(sum)
	}
	if sum == 0 {
		return 1 // the value is exactly 2^64
	}
	tz := uint(bits.TrailingZeros64(sum))
	return sum>>tz | 1<<(64-tz)
}

func wordsOf64(v uint64) int {
	switch {
	case v == 0:
		return 0
	case v>>32 == 0:
		return 1
	default:
		return 2
	}
}

// approx implements Section III's approx(X, Y) for word size d = 32 on
// normalized mpnat values with X >= Y and X.Len() >= 3. It returns
// (alpha, beta, case) with alpha * D^beta <= X div Y and alpha < 2^32.
// Case 1 (X.Len() <= 2) is handled by runApproximate64 and never reaches
// here.
func approx(X, Y *mpnat.Nat) (alpha uint64, beta int, caseID int) {
	lX, lY := X.Len(), Y.Len()
	switch lY {
	case 1:
		x1 := uint64(X.TopWord())
		y1 := uint64(Y.TopWord())
		if x1 >= y1 {
			return x1 / y1, lX - 1, Case2A
		}
		return X.Top2() / y1, lX - 2, Case2B
	case 2:
		x12 := X.Top2()
		y12 := Y.Top2()
		if x12 >= y12 {
			return x12 / y12, lX - 2, Case3A
		}
		return x12 / (uint64(Y.TopWord()) + 1), lX - 3, Case3B
	default:
		x12 := X.Top2()
		y12 := Y.Top2()
		switch {
		case x12 > y12:
			return x12 / (y12 + 1), lX - lY, Case4A
		case lX > lY:
			return x12 / (uint64(Y.TopWord()) + 1), lX - lY - 1, Case4B
		default:
			return 1, 0, Case4C
		}
	}
}

// record appends an iteration shape when shape recording is enabled.
func record(st *Stats, opt Options, lx, ly int, br Branch, extraY, swapped bool) {
	if !opt.RecordShapes {
		return
	}
	st.Shapes = append(st.Shapes, IterShape{
		LX: uint16(lx), LY: uint16(ly), Branch: br, ExtraY: extraY, Swapped: swapped,
	})
}
