package gcd_test

import (
	"fmt"

	"bulkgcd/internal/gcd"
	"bulkgcd/internal/mpnat"
)

// The paper's running example on the production d = 32 engine. At d = 32
// the approximation is better than the d = 4 trace of Table III, so (E)
// needs 8 iterations here instead of 9.
func ExampleScratch_Compute() {
	s := gcd.NewScratch(64)
	x := mpnat.New(1043915) // 1111,1110,1101,1100,1011
	y := mpnat.New(768955)  // 1011,1011,1011,1011,1011
	for _, alg := range gcd.Algorithms {
		g, st := s.Compute(alg, x, y, gcd.Options{})
		fmt.Printf("(%s) %-11s gcd=%v iterations=%d\n", alg.Letter(), alg, g, st.Iterations)
	}
	// Output:
	// (A) Original    gcd=5 iterations=11
	// (B) Fast        gcd=5 iterations=8
	// (C) Binary      gcd=5 iterations=24
	// (D) FastBinary  gcd=5 iterations=16
	// (E) Approximate gcd=5 iterations=8
}

// Early termination reports coprime RSA-scale inputs as nil without
// finishing the small-number tail.
func ExampleOptions() {
	s := gcd.NewScratch(64)
	// Two coprime odd numbers; threshold at half their size.
	g, st := s.Compute(gcd.Approximate, mpnat.New(0xFFFFFFFFFFFFFFC5), mpnat.New(0xFFFFFFFFFFFFFF9D),
		gcd.Options{EarlyBits: 32})
	fmt.Printf("coprime=%v earlyTerminated=%v\n", g == nil, st.EarlyTerminated)
	// Output: coprime=true earlyTerminated=true
}
