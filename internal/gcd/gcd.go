// Package gcd contains the production word-level (d = 32) implementations
// of the five Euclidean GCD algorithms of the paper, operating on
// mpnat.Nat values.
//
// These are the implementations whose performance the repository measures:
// they follow the memory discipline of Section IV (each iteration reads X,
// reads Y and writes X once; swap exchanges pointers only) and they expose
// the statistics the paper reports (iteration counts for Table IV, the
// beta > 0 frequency of Section V, word-level memory-operation counts for
// the Figure 1 analysis).
//
// The loops require odd positive inputs, like the paper's pseudo code; the
// repository's public API performs the even reductions of Section II before
// reaching this layer. A Scratch value carries reusable buffers so that the
// bulk all-pairs computation performs no per-pair allocation.
package gcd

import (
	"fmt"

	"bulkgcd/internal/mpnat"
)

// Algorithm identifies one of the five Euclidean algorithms, in the paper's
// (A)-(E) order. The values match refgcd.Algorithm.
type Algorithm int

const (
	// Original is (A): repeated X mod Y.
	Original Algorithm = iota
	// Fast is (B): exact quotient, decremented to odd, with rshift.
	Fast
	// Binary is (C): subtract-and-halve.
	Binary
	// FastBinary is (D): subtract and strip all trailing zero bits.
	FastBinary
	// Approximate is (E): the paper's contribution.
	Approximate
)

var algNames = [...]string{"Original", "Fast", "Binary", "FastBinary", "Approximate"}

func (a Algorithm) String() string {
	if a < Original || a > Approximate {
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
	return algNames[a]
}

// Letter returns the paper's (A)-(E) label.
func (a Algorithm) Letter() string {
	if a < Original || a > Approximate {
		return "?"
	}
	return string(rune('A' + int(a)))
}

// Algorithms lists all five algorithms in (A)-(E) order.
var Algorithms = []Algorithm{Original, Fast, Binary, FastBinary, Approximate}

// Case indices for Stats.CaseCounts, following Section III's decision tree.
const (
	Case1 = iota
	Case2A
	Case2B
	Case3A
	Case3B
	Case4A
	Case4B
	Case4C
	numCases
)

// CaseName returns the paper's label for an approx() case index.
func CaseName(c int) string {
	names := [...]string{"1", "2-A", "2-B", "3-A", "3-B", "4-A", "4-B", "4-C"}
	if c < 0 || c >= len(names) {
		return "?"
	}
	return names[c]
}

// Options configures a GCD computation.
type Options struct {
	// EarlyBits, when positive, early-terminates as soon as Y has fewer
	// than EarlyBits bits (the paper uses s/2 for s-bit RSA moduli).
	// The computation then reports coprime inputs without running the
	// small-number tail.
	EarlyBits int

	// RecordShapes captures the per-iteration operand shapes in
	// Stats.Shapes, from which the bulk layer replays the exact word-level
	// memory access stream on the UMM simulator.
	RecordShapes bool
}

// Branch identifies which memory pass an iteration performed, for the UMM
// replay of Section IV's access pattern.
type Branch uint8

const (
	// BranchFull is the read-X/read-Y/write-X pass shared by (A), (B),
	// (D), (E) and the subtract case of (C).
	BranchFull Branch = iota
	// BranchHalveX is (C)'s X-even case: read and write X only.
	BranchHalveX
	// BranchHalveY is (C)'s Y-even case: read and write Y only.
	BranchHalveY
)

// IterShape records the operand shape of one iteration: everything needed
// to regenerate the iteration's memory access addresses.
type IterShape struct {
	// LX, LY are the word lengths of X and Y at the start of the iteration.
	LX, LY uint16
	// Branch selects the memory pass.
	Branch Branch
	// ExtraY marks Approximate's beta > 0 path, which re-reads Y.
	ExtraY bool
	// Swapped marks a pointer exchange at the end of the iteration.
	Swapped bool
}

// Stats reports what one GCD computation did.
type Stats struct {
	// Iterations counts executions of the do-while body.
	Iterations int

	// EarlyTerminated reports that the run stopped on the EarlyBits
	// threshold with non-zero Y.
	EarlyTerminated bool

	// BetaNonZero counts Approximate iterations taking the beta > 0 path.
	BetaNonZero int

	// CaseCounts tallies approx() cases (Approximate only).
	CaseCounts [numCases]int

	// MemOps counts word-level memory operations per the accounting of
	// Section IV: one per word of X read, word of Y read and word of X
	// written in each iteration, plus one extra read pass over Y on the
	// beta > 0 path. O(1) head-word peeks are not counted.
	MemOps int64

	// Shapes is the per-iteration trace when Options.RecordShapes is set.
	Shapes []IterShape
}

// Add accumulates other into s (used by the bulk layer to aggregate).
func (s *Stats) Add(other *Stats) {
	s.Iterations += other.Iterations
	s.BetaNonZero += other.BetaNonZero
	s.MemOps += other.MemOps
	for i := range s.CaseCounts {
		s.CaseCounts[i] += other.CaseCounts[i]
	}
}

// Scratch holds the working storage for GCD computations. A Scratch is not
// safe for concurrent use; the bulk layer allocates one per worker. Reusing
// a Scratch across computations avoids all per-pair allocation except for
// the returned factor (allocated only when a non-trivial factor is found;
// coprime pairs return a shared constant).
type Scratch struct {
	x, y mpnat.Nat
	q, r mpnat.Nat        // quotient/remainder temporaries for (A) and (B)
	div  mpnat.DivScratch // long-division working storage for (A) and (B)
}

// NewScratch returns a Scratch sized for operands up to bits wide.
func NewScratch(bits int) *Scratch {
	s := &Scratch{}
	words := (bits+31)/32 + 2
	s.x.Grow(words)
	s.y.Grow(words)
	s.q.Grow(words)
	s.r.Grow(words)
	return s
}

// one is the shared gcd-is-1 result. Callers receive it read-only: the
// Compute contract forbids modifying the returned Nat.
var one = mpnat.New(1)

// Compute runs algorithm alg on x and y (both odd and positive; x and y are
// not modified) and returns the gcd. For early-terminated runs the returned
// gcd is nil, meaning "coprime at RSA scale" (the paper returns 1). The
// returned Nat must not be modified: when the gcd is 1 it is a shared
// constant, so that the common coprime outcome allocates nothing.
func (s *Scratch) Compute(alg Algorithm, x, y *mpnat.Nat, opt Options) (*mpnat.Nat, Stats) {
	X, Y := &s.x, &s.y
	X.Set(x)
	Y.Set(y)
	if X.Cmp(Y) < 0 {
		X, Y = Y, X
	}
	var st Stats
	var res *mpnat.Nat
	switch alg {
	case Original:
		res = s.runOriginal(X, Y, opt, &st)
	case Fast:
		res = s.runFast(X, Y, opt, &st)
	case Binary:
		res = runBinary(X, Y, opt, &st)
	case FastBinary:
		res = runFastBinary(X, Y, opt, &st)
	case Approximate:
		res = runApproximate(X, Y, opt, &st)
	default:
		panic(fmt.Sprintf("gcd: unknown algorithm %v", alg))
	}
	if st.EarlyTerminated {
		return nil, st
	}
	if res.IsOne() {
		return one, st
	}
	return res.Clone(), st
}

// Compute is the convenience entry point; it allocates a Scratch per call.
// Hot paths should hold a Scratch and call its Compute method.
func Compute(alg Algorithm, x, y *mpnat.Nat, opt Options) (*mpnat.Nat, Stats) {
	bits := x.BitLen()
	if yb := y.BitLen(); yb > bits {
		bits = yb
	}
	return NewScratch(bits).Compute(alg, x, y, opt)
}

// Validate reports whether x and y are acceptable inputs for the core
// loops: positive and odd.
func Validate(x, y *mpnat.Nat) error {
	if x.IsZero() || y.IsZero() {
		return fmt.Errorf("gcd: inputs must be positive")
	}
	if x.IsEven() || y.IsEven() {
		return fmt.Errorf("gcd: inputs must be odd")
	}
	return nil
}
