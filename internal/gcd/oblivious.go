package gcd

import (
	"math/bits"

	"bulkgcd/internal/mpnat"
)

// Oblivious binary GCD: the fully input-independent counterpart to the
// paper's semi-oblivious Approximate Euclidean algorithm.
//
// The paper's bulk-execution theory (Section VI, [17], [18]) is strongest
// for *oblivious* algorithms - those whose memory address at every time
// unit does not depend on the input - because their bulk execution is
// perfectly coalesced (Theorem 1). Its own algorithm settles for
// semi-oblivious. This file implements the genuinely oblivious
// alternative so the trade-off is measurable: a branchless constant-
// trajectory binary GCD (the construction used by constant-time crypto
// libraries) that always runs exactly 2s iterations over full fixed-width
// operands.
//
// Per iteration, with B kept odd:
//
//	odd  = A & 1
//	swap = odd AND (A < B)    -> conditionally exchange A and B
//	A    = (A - (B masked by odd)) >> 1
//
// gcd(A, B) is invariant (if A is even, 2 is not in the gcd since B is
// odd; if A is odd, the swap makes A >= B and the difference is even) and
// bitlen(A) + bitlen(B) decreases every iteration, so after 2s iterations
// A = 0 and B holds the gcd. Every word of both operands is touched every
// iteration with masked (branchless) arithmetic: the address trace is a
// constant, the bulk execution coalesces fully, and as a bonus the
// computation is constant-time in the cryptographic sense.

// ComputeOblivious returns gcd(x, y) for odd positive x, y, together with
// statistics. The iteration count is always exactly 2*s where s is the
// bit capacity ceil(maxBits/32)*32 of the wider operand - by design it
// does not depend on the values.
func (s *Scratch) ComputeOblivious(x, y *mpnat.Nat, opt Options) (*mpnat.Nat, Stats) {
	bitsX, bitsY := x.BitLen(), y.BitLen()
	maxBits := bitsX
	if bitsY > maxBits {
		maxBits = bitsY
	}
	words := (maxBits + 31) / 32
	if words == 0 {
		words = 1
	}
	a := make([]uint32, words)
	b := make([]uint32, words)
	copy(a, x.Words())
	copy(b, y.Words())

	var st Stats
	iters := 2 * words * 32
	for i := 0; i < iters; i++ {
		odd := a[0] & 1
		oddMask := -odd // all ones when A odd

		// lt = 1 when A < B, computed over every word (oblivious).
		lt := ltWords(a, b)
		swapMask := oddMask & (-lt)
		condSwap(a, b, swapMask)

		// A <- (A - (B & oddMask)) >> 1, single fused branchless pass.
		subShift(a, b, oddMask)

		st.Iterations++
		st.MemOps += int64(3 * words) // read A, read B, write A - always
		record(&st, opt, words, words, BranchFull, false, false)
	}
	out := mpnat.NewFromWords(b)
	return out, st
}

// ltWords returns 1 when a < b, scanning every word unconditionally.
func ltWords(a, b []uint32) uint32 {
	var lt, done uint32 // done = comparison decided at a higher word
	for i := len(a) - 1; i >= 0; i-- {
		isLess := maskLess(a[i], b[i])
		isMore := maskLess(b[i], a[i])
		lt |= ^done & isLess
		done |= isLess | isMore
	}
	return lt & 1
}

// maskLess returns 1 when x < y (branchless 32-bit compare via the
// subtraction borrow).
func maskLess(x, y uint32) uint32 {
	_, borrow := bits.Sub32(x, y, 0)
	return borrow
}

// condSwap exchanges a and b when mask is all-ones (branchless).
func condSwap(a, b []uint32, mask uint32) {
	for i := range a {
		t := (a[i] ^ b[i]) & mask
		a[i] ^= t
		b[i] ^= t
	}
}

// subShift computes a = (a - (b & mask)) >> 1 in one pass. The caller
// guarantees the masked subtraction cannot underflow (A >= B after the
// conditional swap whenever the mask is set) and that the result is even
// (A, B odd when mask set; A even when clear).
func subShift(a, b []uint32, mask uint32) {
	var borrow uint32
	var prev uint32 // pending low word of the shifted result
	for i := range a {
		d, bo := bits.Sub32(a[i], b[i]&mask, borrow)
		borrow = bo
		if i > 0 {
			a[i-1] = prev | d<<31
		}
		prev = d >> 1
	}
	a[len(a)-1] = prev
}

// ObliviousIterations returns the fixed iteration count ComputeOblivious
// performs for operands of the given maximum bit length.
func ObliviousIterations(maxBits int) int {
	words := (maxBits + 31) / 32
	if words == 0 {
		words = 1
	}
	return 2 * words * 32
}
