package gcd

import (
	"math/big"
	"math/rand"
	"testing"

	"bulkgcd/internal/mpnat"
)

// euclid64 is the trivially-correct oracle for small inputs.
func euclid64(a, b uint64) uint64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// TestExhaustiveSmallOddPairs checks every algorithm on every odd pair
// (x, y) with 1 <= y <= x < 2^9 - 131 thousand GCDs per algorithm - plus
// a diagonal band around the 32-bit word boundary. This nails the small-
// number tails (approx Cases 1-3, the 64-bit fast path, rshift(0),
// equal inputs) that random testing rarely concentrates on.
func TestExhaustiveSmallOddPairs(t *testing.T) {
	scratch := NewScratch(64)
	for x := uint64(1); x < 1<<9; x += 2 {
		for y := uint64(1); y <= x; y += 2 {
			want := euclid64(x, y)
			for _, alg := range Algorithms {
				g, _ := scratch.Compute(alg, mpnat.New(x), mpnat.New(y), Options{})
				if g.Uint64() != want {
					t.Fatalf("%v(%d,%d) = %v, want %d", alg, x, y, g, want)
				}
			}
		}
	}
}

// TestWordBoundaryBand sweeps odd pairs straddling the 1-word/2-word and
// 2-word/3-word representation boundaries, where approx() switches cases.
func TestWordBoundaryBand(t *testing.T) {
	scratch := NewScratch(128)
	bases := []uint64{
		1<<32 - 9, 1 << 32, 1<<32 + 9,
		1<<63 - 9, 1 << 63, 1<<63 + 9,
	}
	for _, bx := range bases {
		for dx := uint64(0); dx < 8; dx += 2 {
			x := bx + dx + 1 - (bx+dx)%2 // odd near the boundary
			for _, by := range bases {
				for dy := uint64(0); dy < 8; dy += 2 {
					y := by + dy + 1 - (by+dy)%2
					if y > x {
						continue
					}
					want := euclid64(x, y)
					for _, alg := range Algorithms {
						g, _ := scratch.Compute(alg, mpnat.New(x), mpnat.New(y), Options{})
						if g.Uint64() != want {
							t.Fatalf("%v(%#x,%#x) = %v, want %#x", alg, x, y, g, want)
						}
					}
				}
			}
		}
	}
	// Three-word boundary: X just above 2^64 against small and large Y.
	three := new(big.Int).Lsh(big.NewInt(1), 64)
	for _, deltaX := range []int64{1, 3, 0xFFF1} {
		x := new(big.Int).Add(three, big.NewInt(deltaX))
		for _, y := range []uint64{1, 3, 1<<32 - 1, 1<<32 + 1, 1<<63 + 1} {
			wantB := new(big.Int).GCD(nil, nil, x, new(big.Int).SetUint64(y))
			for _, alg := range Algorithms {
				g, _ := scratch.Compute(alg, mpnat.FromBig(x), mpnat.New(y), Options{})
				if g.ToBig().Cmp(wantB) != 0 {
					t.Fatalf("%v(2^64+%d,%#x) = %v, want %v", alg, deltaX, y, g, wantB)
				}
			}
		}
	}
}

// TestHotPathAllocations: the per-pair attack loop must not allocate when
// the pair is coprime and every iteration stays on the beta = 0 path (the
// case with probability > 1 - 1e-8), so the all-pairs run's allocation
// count is proportional to factors found, not pairs. The rare beta > 0
// update is implemented by composition and may allocate; that is a
// documented design choice (see mpnat.SubMulShiftAddRshift).
func TestHotPathAllocations(t *testing.T) {
	scratch := NewScratch(512)
	r := rand.New(rand.NewSource(77))
	pairs := make([][2]*mpnat.Nat, 8)
	opt := Options{EarlyBits: 256}
	for i := range pairs {
		x := mpnat.FromBig(randOdd(r, 512))
		y := mpnat.FromBig(randOdd(r, 512))
		// Keep only beta-free coprime pairs (all of them, in practice).
		if g, st := scratch.Compute(Approximate, x, y, opt); g != nil || st.BetaNonZero > 0 {
			t.Fatalf("pair %d not a plain coprime pair", i)
		}
		pairs[i] = [2]*mpnat.Nat{x, y}
	}
	avg := testing.AllocsPerRun(20, func() {
		for _, p := range pairs {
			if g, _ := scratch.Compute(Approximate, p[0], p[1], opt); g != nil {
				t.Fatal("unexpected factor")
			}
		}
	})
	if avg > 0.5 {
		t.Errorf("early-terminate coprime GCDs allocate %.2f times per batch of %d, want 0", avg, len(pairs))
	}
}
