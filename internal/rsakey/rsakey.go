// Package rsakey is the RSA substrate of the reproduction: key generation,
// weak-key corpus construction with ground truth, and private-key recovery
// from a factored modulus.
//
// The paper evaluates on RSA moduli produced by the OpenSSL toolkit and on
// keys "collected from the Web" (some of which share primes because of bad
// randomness, the Lenstra et al. observation the paper cites). Neither is
// available offline, so this package synthesizes statistically equivalent
// corpora: balanced semiprimes with both prime top bits set (the OpenSSL
// shape, so an s-bit key really has s bits), with a configurable number of
// planted shared primes recorded as ground truth for validating the attack.
//
// Generation is deterministic from a seed so every experiment in
// EXPERIMENTS.md is reproducible bit for bit.
package rsakey

import (
	"fmt"
	"math/big"
	"math/rand"

	"bulkgcd/internal/mpnat"
)

// DefaultExponent is the standard RSA public exponent F4 = 65537.
const DefaultExponent = 65537

// Key is an RSA key as the attack sees it: the public part always present,
// the private part filled in at generation time (ground truth) or after a
// successful factorization.
type Key struct {
	// N is the modulus in the word representation the GCD engines consume.
	N *mpnat.Nat
	// E is the public exponent.
	E uint64
	// P and Q are the prime factors when known, nil otherwise.
	P, Q *big.Int
	// D is the private exponent when known, nil otherwise.
	D *big.Int
}

// Bits returns the modulus size in bits.
func (k *Key) Bits() int { return k.N.BitLen() }

// GeneratePrime returns a probable prime with exactly bits bits whose two
// top bits are set (so products of two such primes have exactly 2*bits
// bits, matching OpenSSL's RSA prime shape). Generation is deterministic
// from r.
func GeneratePrime(r *rand.Rand, bits int) *big.Int {
	if bits < 5 {
		panic("rsakey: prime size too small")
	}
	for {
		c := randBits(r, bits)
		c.SetBit(c, bits-1, 1)
		c.SetBit(c, bits-2, 1)
		c.SetBit(c, 0, 1)
		// Scan forward over odd candidates; re-draw after a while to keep
		// the distribution unremarkable.
		for i := 0; i < 64; i++ {
			if c.ProbablyPrime(32) {
				return c
			}
			c.Add(c, big.NewInt(2))
		}
	}
}

// randBits returns a uniform integer with at most bits bits.
func randBits(r *rand.Rand, bits int) *big.Int {
	words := (bits + 31) / 32
	v := new(big.Int)
	for i := 0; i < words; i++ {
		v.Lsh(v, 32)
		v.Or(v, new(big.Int).SetUint64(uint64(r.Uint32())))
	}
	excess := v.BitLen() - bits
	if excess > 0 {
		v.Rsh(v, uint(excess))
	}
	return v
}

// NewKey assembles a Key from two primes, computing N and D.
// It returns an error if e is not invertible modulo (p-1)(q-1).
func NewKey(p, q *big.Int, e uint64) (*Key, error) {
	n := new(big.Int).Mul(p, q)
	phi := new(big.Int).Mul(
		new(big.Int).Sub(p, big.NewInt(1)),
		new(big.Int).Sub(q, big.NewInt(1)),
	)
	d := new(mpnat.Nat).ModInverse(mpnat.New(e), mpnat.FromBig(phi))
	if d == nil {
		return nil, fmt.Errorf("rsakey: e = %d not invertible mod phi", e)
	}
	return &Key{N: mpnat.FromBig(n), E: e, P: p, Q: q, D: d.ToBig()}, nil
}

// GenerateKey generates an RSA key with a modulus of exactly bits bits.
func GenerateKey(r *rand.Rand, bits int) (*Key, error) {
	if bits%2 != 0 {
		return nil, fmt.Errorf("rsakey: modulus size %d must be even", bits)
	}
	for {
		p := GeneratePrime(r, bits/2)
		q := GeneratePrime(r, bits/2)
		if p.Cmp(q) == 0 {
			continue
		}
		k, err := NewKey(p, q, DefaultExponent)
		if err != nil {
			continue // e divides phi; redraw
		}
		return k, nil
	}
}

// RecoverPrivate reconstructs the private key of a factored modulus: given
// n and one prime factor p, it computes q = n/p and d = e^-1 mod phi via
// the extended Euclidean algorithm, the step the paper describes as "the
// corresponding decryption key can be computed easily" once gcd reveals p.
// It errors if p does not divide n or the cofactor is trivial. The
// arithmetic runs on the repository's own word-level substrate
// (mpnat.ModInverse); math/big appears only at the interface.
func RecoverPrivate(n *big.Int, p *big.Int, e uint64) (d, q *big.Int, err error) {
	q, rem := new(big.Int).QuoRem(n, p, new(big.Int))
	if rem.Sign() != 0 {
		return nil, nil, fmt.Errorf("rsakey: %v does not divide the modulus", p)
	}
	if q.Cmp(big.NewInt(1)) == 0 || p.Cmp(big.NewInt(1)) == 0 {
		return nil, nil, fmt.Errorf("rsakey: trivial factorization")
	}
	phi := new(big.Int).Mul(
		new(big.Int).Sub(p, big.NewInt(1)),
		new(big.Int).Sub(q, big.NewInt(1)),
	)
	dNat := new(mpnat.Nat).ModInverse(mpnat.New(e), mpnat.FromBig(phi))
	if dNat == nil {
		return nil, nil, fmt.Errorf("rsakey: e not invertible mod phi")
	}
	return dNat.ToBig(), q, nil
}

// Encrypt computes the RSA encryption C = M^e mod n on the word-level
// substrate (Montgomery multiplication; RSA moduli are odd).
// M must satisfy 0 <= M < n.
func Encrypt(n *big.Int, e uint64, m *big.Int) *big.Int {
	return modExp(n, m, new(big.Int).SetUint64(e))
}

// Decrypt computes M = C^d mod n on the word-level substrate.
func Decrypt(n, d, c *big.Int) *big.Int {
	return modExp(n, c, d)
}

// modExp dispatches to Montgomery for odd moduli (always, for RSA) with
// the generic division-based ModExp as fallback.
func modExp(n, base, exp *big.Int) *big.Int {
	nn := mpnat.FromBig(n)
	if mg, err := mpnat.NewMontgomery(nn); err == nil {
		return mg.ModExp(mpnat.FromBig(base), mpnat.FromBig(exp)).ToBig()
	}
	return new(mpnat.Nat).ModExp(mpnat.FromBig(base), mpnat.FromBig(exp), nn).ToBig()
}
