package rsakey

import (
	"math/big"
	"math/rand"
	"testing"
)

func TestGeneratePrimeShape(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, bits := range []int{16, 32, 64, 128, 256} {
		for i := 0; i < 5; i++ {
			p := GeneratePrime(r, bits)
			if p.BitLen() != bits {
				t.Fatalf("prime has %d bits, want %d", p.BitLen(), bits)
			}
			if p.Bit(bits-2) != 1 {
				t.Fatalf("second-top bit not set")
			}
			if !p.ProbablyPrime(64) {
				t.Fatalf("not prime: %v", p)
			}
		}
	}
}

func TestGeneratePrimeDeterministic(t *testing.T) {
	a := GeneratePrime(rand.New(rand.NewSource(7)), 128)
	b := GeneratePrime(rand.New(rand.NewSource(7)), 128)
	if a.Cmp(b) != 0 {
		t.Fatal("same seed produced different primes")
	}
	c := GeneratePrime(rand.New(rand.NewSource(8)), 128)
	if a.Cmp(c) == 0 {
		t.Fatal("different seeds produced the same prime")
	}
}

func TestGenerateKey(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	k, err := GenerateKey(r, 256)
	if err != nil {
		t.Fatal(err)
	}
	if k.Bits() != 256 {
		t.Fatalf("modulus has %d bits, want 256", k.Bits())
	}
	n := new(big.Int).Mul(k.P, k.Q)
	if k.N.ToBig().Cmp(n) != 0 {
		t.Fatal("N != P*Q")
	}
	// ed = 1 mod phi.
	phi := new(big.Int).Mul(
		new(big.Int).Sub(k.P, big.NewInt(1)),
		new(big.Int).Sub(k.Q, big.NewInt(1)),
	)
	ed := new(big.Int).Mul(k.D, new(big.Int).SetUint64(k.E))
	if ed.Mod(ed, phi).Cmp(big.NewInt(1)) != 0 {
		t.Fatal("e*d != 1 mod phi")
	}
	if _, err := GenerateKey(r, 255); err == nil {
		t.Fatal("odd modulus size accepted")
	}
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	k, err := GenerateKey(r, 256)
	if err != nil {
		t.Fatal(err)
	}
	n := k.N.ToBig()
	for i := 0; i < 20; i++ {
		m := new(big.Int).Rand(r, n)
		c := Encrypt(n, k.E, m)
		if Decrypt(n, k.D, c).Cmp(m) != 0 {
			t.Fatalf("round trip failed for message %v", m)
		}
	}
}

func TestRecoverPrivate(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	k, err := GenerateKey(r, 256)
	if err != nil {
		t.Fatal(err)
	}
	n := k.N.ToBig()
	d, q, err := RecoverPrivate(n, k.P, k.E)
	if err != nil {
		t.Fatal(err)
	}
	if q.Cmp(k.Q) != 0 {
		t.Fatal("recovered wrong cofactor")
	}
	if d.Cmp(k.D) != 0 {
		t.Fatal("recovered wrong private exponent")
	}
	// The recovered key must actually decrypt.
	m := big.NewInt(0xC0FFEE)
	if Decrypt(n, d, Encrypt(n, k.E, m)).Cmp(m) != 0 {
		t.Fatal("recovered key does not decrypt")
	}
	// Error paths.
	if _, _, err := RecoverPrivate(n, big.NewInt(17), k.E); err == nil {
		t.Fatal("non-divisor accepted")
	}
	if _, _, err := RecoverPrivate(n, big.NewInt(1), k.E); err == nil {
		t.Fatal("trivial factor accepted")
	}
	if _, _, err := RecoverPrivate(n, n, k.E); err == nil {
		t.Fatal("n itself accepted as factor")
	}
}

func TestGenerateCorpusRealWithWeakPairs(t *testing.T) {
	spec := CorpusSpec{Count: 12, Bits: 128, WeakPairs: 3, Seed: 5}
	c, err := GenerateCorpus(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Keys) != 12 || len(c.Planted) != 3 {
		t.Fatalf("got %d keys, %d planted", len(c.Keys), len(c.Planted))
	}
	seen := map[int]bool{}
	for _, pp := range c.Planted {
		if pp.I >= pp.J {
			t.Fatalf("planted pair not ordered: %d,%d", pp.I, pp.J)
		}
		if seen[pp.I] || seen[pp.J] {
			t.Fatal("a modulus participates in two planted pairs")
		}
		seen[pp.I], seen[pp.J] = true, true
		ni, nj := c.Keys[pp.I].N.ToBig(), c.Keys[pp.J].N.ToBig()
		g := new(big.Int).GCD(nil, nil, ni, nj)
		if g.Cmp(pp.P) != 0 {
			t.Fatalf("gcd of planted pair = %v, want %v", g, pp.P)
		}
	}
	// Non-planted pairs must be coprime (real semiprimes).
	for i := 0; i < len(c.Keys); i++ {
		for j := i + 1; j < len(c.Keys); j++ {
			planted := false
			for _, pp := range c.Planted {
				if pp.I == i && pp.J == j {
					planted = true
				}
			}
			if planted {
				continue
			}
			g := new(big.Int).GCD(nil, nil, c.Keys[i].N.ToBig(), c.Keys[j].N.ToBig())
			if g.Cmp(big.NewInt(1)) != 0 {
				t.Fatalf("unplanted pair (%d,%d) shares factor %v", i, j, g)
			}
		}
	}
	// All moduli have the requested size.
	for i, k := range c.Keys {
		if k.Bits() != 128 {
			t.Fatalf("key %d has %d bits", i, k.Bits())
		}
	}
}

func TestGenerateCorpusPseudo(t *testing.T) {
	spec := CorpusSpec{Count: 64, Bits: 1024, WeakPairs: 2, Seed: 6, Pseudo: true}
	c, err := GenerateCorpus(spec)
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range c.Keys {
		if k.Bits() != 1024 {
			t.Fatalf("pseudo key %d has %d bits", i, k.Bits())
		}
		if k.N.IsEven() {
			t.Fatalf("pseudo key %d is even", i)
		}
	}
	// Planted primes divide the gcd (the gcd may pick up small extra
	// factors of the pseudo cofactors).
	for _, pp := range c.Planted {
		g := new(big.Int).GCD(nil, nil, c.Keys[pp.I].N.ToBig(), c.Keys[pp.J].N.ToBig())
		if new(big.Int).Mod(g, pp.P).Sign() != 0 {
			t.Fatalf("planted prime does not divide pair gcd")
		}
	}
}

func TestGenerateCorpusDeterministic(t *testing.T) {
	spec := CorpusSpec{Count: 8, Bits: 64, WeakPairs: 1, Seed: 9}
	a, err := GenerateCorpus(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateCorpus(spec)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Keys {
		if a.Keys[i].N.Cmp(b.Keys[i].N) != 0 {
			t.Fatalf("corpus not deterministic at key %d", i)
		}
	}
}

func TestGenerateCorpusValidation(t *testing.T) {
	if _, err := GenerateCorpus(CorpusSpec{Count: 0, Bits: 64}); err == nil {
		t.Error("zero count accepted")
	}
	if _, err := GenerateCorpus(CorpusSpec{Count: 4, Bits: 63}); err == nil {
		t.Error("odd bits accepted")
	}
	if _, err := GenerateCorpus(CorpusSpec{Count: 3, Bits: 64, WeakPairs: 2}); err == nil {
		t.Error("too many weak pairs accepted")
	}
}

func TestModuliAccessor(t *testing.T) {
	c, err := GenerateCorpus(CorpusSpec{Count: 5, Bits: 64, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	ms := c.Moduli()
	if len(ms) != 5 {
		t.Fatalf("got %d moduli", len(ms))
	}
	for i := range ms {
		if ms[i].Cmp(c.Keys[i].N) != 0 {
			t.Fatal("Moduli() order mismatch")
		}
	}
}

func BenchmarkGenerateKey256(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < b.N; i++ {
		if _, err := GenerateKey(r, 256); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGeneratePseudoCorpus1024(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := GenerateCorpus(CorpusSpec{Count: 128, Bits: 1024, Seed: int64(i), Pseudo: true}); err != nil {
			b.Fatal(err)
		}
	}
}
