package rsakey

import (
	"fmt"
	"math/big"
	"math/rand"

	"bulkgcd/internal/mpnat"
)

// CorpusSpec describes a synthetic key corpus.
type CorpusSpec struct {
	// Count is the number of moduli.
	Count int
	// Bits is the modulus size (512, 1024, 2048, 4096 in the paper).
	Bits int
	// WeakPairs is the number of planted weak pairs: for each, two distinct
	// moduli are generated sharing one prime, emulating the bad-randomness
	// keys found in the Web-collected corpora the paper targets.
	WeakPairs int
	// Seed makes generation deterministic.
	Seed int64
	// Pseudo selects fast pseudo-moduli: uniformly random odd values with
	// the top bit set instead of true semiprimes. Iteration-count and
	// timing statistics (Tables IV and V) are indistinguishable, while
	// generation is ~10^4 times faster at 4096 bits; the attack-pipeline
	// tests and examples use real semiprimes. Pseudo corpora cannot plant
	// weak pairs with recoverable structure, so WeakPairs still works by
	// multiplying a shared prime into two pseudo cofactors.
	Pseudo bool
}

// PlantedPair records ground truth for one planted weak pair.
type PlantedPair struct {
	I, J int      // indices into Corpus.Keys
	P    *big.Int // the shared prime
}

// Corpus is a generated set of RSA keys with attack ground truth.
type Corpus struct {
	Spec    CorpusSpec
	Keys    []*Key
	Planted []PlantedPair
}

// Moduli returns the moduli as a slice ready for the bulk GCD engines.
func (c *Corpus) Moduli() []*mpnat.Nat {
	out := make([]*mpnat.Nat, len(c.Keys))
	for i, k := range c.Keys {
		out[i] = k.N
	}
	return out
}

// GenerateCorpus builds a corpus per spec. Weak pairs are placed at
// uniformly random distinct positions; a modulus participates in at most
// one planted pair so ground truth stays unambiguous.
func GenerateCorpus(spec CorpusSpec) (*Corpus, error) {
	if spec.Count < 1 {
		return nil, fmt.Errorf("rsakey: corpus count %d < 1", spec.Count)
	}
	if spec.Bits < 16 || spec.Bits%2 != 0 {
		return nil, fmt.Errorf("rsakey: corpus bits %d must be even and >= 16", spec.Bits)
	}
	if 2*spec.WeakPairs > spec.Count {
		return nil, fmt.Errorf("rsakey: %d weak pairs need %d slots, corpus has %d",
			spec.WeakPairs, 2*spec.WeakPairs, spec.Count)
	}
	r := rand.New(rand.NewSource(spec.Seed))
	c := &Corpus{Spec: spec, Keys: make([]*Key, spec.Count)}

	// Choose 2*WeakPairs distinct victim slots.
	perm := r.Perm(spec.Count)
	for w := 0; w < spec.WeakPairs; w++ {
		i, j := perm[2*w], perm[2*w+1]
		if i > j {
			i, j = j, i
		}
		p := GeneratePrime(r, spec.Bits/2)
		ki, err := keyWithPrime(r, spec, p)
		if err != nil {
			return nil, err
		}
		kj, err := keyWithPrime(r, spec, p)
		if err != nil {
			return nil, err
		}
		c.Keys[i], c.Keys[j] = ki, kj
		c.Planted = append(c.Planted, PlantedPair{I: i, J: j, P: p})
	}

	for i := range c.Keys {
		if c.Keys[i] != nil {
			continue
		}
		k, err := generateOne(r, spec)
		if err != nil {
			return nil, err
		}
		c.Keys[i] = k
	}
	return c, nil
}

// generateOne produces a non-weak corpus member.
func generateOne(r *rand.Rand, spec CorpusSpec) (*Key, error) {
	if spec.Pseudo {
		n := randBits(r, spec.Bits)
		n.SetBit(n, spec.Bits-1, 1)
		n.SetBit(n, spec.Bits-2, 1)
		n.SetBit(n, 0, 1)
		return &Key{N: mpnat.FromBig(n), E: DefaultExponent}, nil
	}
	return GenerateKey(r, spec.Bits)
}

// keyWithPrime produces a key whose modulus contains the given prime. In
// pseudo mode the cofactor is a random odd value of the right size (the
// gcd structure is identical; only primality of the cofactor is faked).
func keyWithPrime(r *rand.Rand, spec CorpusSpec, p *big.Int) (*Key, error) {
	if spec.Pseudo {
		q := randBits(r, spec.Bits/2)
		q.SetBit(q, spec.Bits/2-1, 1)
		q.SetBit(q, spec.Bits/2-2, 1)
		q.SetBit(q, 0, 1)
		n := new(big.Int).Mul(p, q)
		return &Key{N: mpnat.FromBig(n), E: DefaultExponent, P: p, Q: q}, nil
	}
	for {
		q := GeneratePrime(r, spec.Bits/2)
		if q.Cmp(p) == 0 {
			continue
		}
		k, err := NewKey(p, q, DefaultExponent)
		if err != nil {
			continue
		}
		return k, nil
	}
}
