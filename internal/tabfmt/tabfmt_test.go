package tabfmt

import (
	"math/big"
	"strings"
	"testing"
)

func TestBinaryPaperNotation(t *testing.T) {
	cases := []struct {
		v     int64
		group int
		want  string
	}{
		{223, 4, "1101,1111"},
		{1043915, 4, "1111,1110,1101,1100,1011"},
		{768955, 4, "1011,1011,1011,1011,1011"},
		{5, 4, "101"},
		{0, 4, "0"},
		{17185, 4, "100,0011,0010,0001"},
		{255, 8, "11111111"},
		{256, 8, "1,00000000"},
	}
	for _, c := range cases {
		if got := Binary(big.NewInt(c.v), c.group); got != c.want {
			t.Errorf("Binary(%d,%d) = %q, want %q", c.v, c.group, got, c.want)
		}
	}
	// Invalid group size falls back to 4.
	if Binary(big.NewInt(9), 0) != "1001" {
		t.Error("group fallback wrong")
	}
}

func TestBinaryDecimal(t *testing.T) {
	if got := BinaryDecimal(big.NewInt(223), 4); got != "1101,1111 (223)" {
		t.Errorf("got %q", got)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("alg", "iters", "time")
	tb.AddRow("Approximate", 190.5, 42)
	tb.AddRowF("Binary", "722.2", "x")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("expected 4 lines, got %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "alg") {
		t.Errorf("header missing: %q", lines[0])
	}
	if !strings.Contains(lines[1], "---") {
		t.Errorf("separator missing: %q", lines[1])
	}
	if !strings.Contains(lines[2], "190.5") || !strings.Contains(lines[2], "42") {
		t.Errorf("row wrong: %q", lines[2])
	}
	// Columns align: the "iters" column is right-aligned.
	if !strings.Contains(lines[3], "722.2") {
		t.Errorf("row wrong: %q", lines[3])
	}
}

func TestTableRaggedRows(t *testing.T) {
	tb := NewTable("a")
	tb.AddRow("x", "extra", "cells")
	out := tb.String()
	if !strings.Contains(out, "extra") || !strings.Contains(out, "cells") {
		t.Errorf("ragged row dropped cells:\n%s", out)
	}
}
