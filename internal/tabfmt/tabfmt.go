// Package tabfmt formats numbers and tables the way the paper prints them:
// binary values in comma-separated 4-bit groups ("1101,1111 (223)") and
// fixed-width experiment tables.
package tabfmt

import (
	"fmt"
	"math/big"
	"strings"
)

// Binary formats v in base 2 with a comma every groupBits bits, most
// significant group first and not zero-padded, as in the paper's tables:
// Binary(big.NewInt(223), 4) = "1101,1111".
func Binary(v *big.Int, groupBits int) string {
	if v.Sign() == 0 {
		return "0"
	}
	if groupBits < 1 {
		groupBits = 4
	}
	s := v.Text(2)
	// Pad to a multiple of groupBits, then group and trim the pad.
	pad := (groupBits - len(s)%groupBits) % groupBits
	s = strings.Repeat("0", pad) + s
	var groups []string
	for i := 0; i < len(s); i += groupBits {
		groups = append(groups, s[i:i+groupBits])
	}
	groups[0] = strings.TrimLeft(groups[0], "0")
	if groups[0] == "" {
		groups = groups[1:]
	}
	return strings.Join(groups, ",")
}

// BinaryDecimal formats v as the paper's combined notation,
// "1101,1111 (223)".
func BinaryDecimal(v *big.Int, groupBits int) string {
	return fmt.Sprintf("%s (%s)", Binary(v, groupBits), v.String())
}

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.1f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// AddRowF appends a row of preformatted cells.
func (t *Table) AddRowF(cells ...string) {
	t.rows = append(t.rows, append([]string(nil), cells...))
}

// String renders the table with right-aligned numeric-looking columns and
// a separator under the header.
func (t *Table) String() string {
	cols := len(t.header)
	for _, r := range t.rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	width := make([]int, cols)
	measure := func(row []string) {
		for i, c := range row {
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	measure(t.header)
	for _, r := range t.rows {
		measure(r)
	}
	var b strings.Builder
	writeRow := func(row []string) {
		for i := 0; i < cols; i++ {
			cell := ""
			if i < len(row) {
				cell = row[i]
			}
			if i == 0 {
				fmt.Fprintf(&b, "%-*s", width[i], cell)
			} else {
				fmt.Fprintf(&b, "  %*s", width[i], cell)
			}
		}
		b.WriteByte('\n')
	}
	if len(t.header) > 0 {
		writeRow(t.header)
		total := 0
		for i, w := range width {
			total += w
			if i > 0 {
				total += 2
			}
		}
		b.WriteString(strings.Repeat("-", total))
		b.WriteByte('\n')
	}
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}
