package fleet

import (
	"context"
	"errors"
	"sync"
	"time"

	"bulkgcd/internal/faultinject"
)

// errDown is what a loopback call returns while the coordinator is
// "down" (killed between Swap calls in a restart campaign). It is not a
// sentinel: workers treat it as transient and retry, exactly as they
// treat a refused TCP connection.
var errDown = errors.New("fleet: loopback: coordinator down")

// errDropped is a chaos-injected lost message; transient by design.
var errDropped = errors.New("fleet: chaos: message dropped")

// IsChaosDrop reports whether err is an injected message drop (for
// tests asserting the fault actually fired).
func IsChaosDrop(err error) bool { return errors.Is(err, errDropped) }

// Loopback is the in-process Transport: calls go straight to a
// *Coordinator under a mutex-guarded pointer, so a chaos test can kill
// the coordinator (SetDown), rebuild it from its journal, and Swap the
// replacement in — a restart without a network stack.
type Loopback struct {
	mu   sync.Mutex
	c    *Coordinator
	down bool
}

// NewLoopback wires a transport to c.
func NewLoopback(c *Coordinator) *Loopback { return &Loopback{c: c} }

// Swap replaces the coordinator (restart complete) and brings the
// transport back up.
func (l *Loopback) Swap(c *Coordinator) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.c = c
	l.down = false
}

// SetDown simulates the coordinator process being gone: every call
// fails with a transient error until Swap.
func (l *Loopback) SetDown(down bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.down = down
}

func (l *Loopback) get() (*Coordinator, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.down || l.c == nil {
		return nil, errDown
	}
	return l.c, nil
}

func (l *Loopback) Lease(ctx context.Context, req LeaseRequest) (*LeaseResponse, error) {
	c, err := l.get()
	if err != nil {
		return nil, err
	}
	return c.Lease(ctx, req)
}

func (l *Loopback) Renew(ctx context.Context, req RenewRequest) (*RenewResponse, error) {
	c, err := l.get()
	if err != nil {
		return nil, err
	}
	return c.Renew(ctx, req)
}

func (l *Loopback) Complete(ctx context.Context, req CompleteRequest) (*CompleteResponse, error) {
	c, err := l.get()
	if err != nil {
		return nil, err
	}
	return c.Complete(ctx, req)
}

func (l *Loopback) Fail(ctx context.Context, req FailRequest) (*FailResponse, error) {
	c, err := l.get()
	if err != nil {
		return nil, err
	}
	return c.Fail(ctx, req)
}

func (l *Loopback) Status(ctx context.Context) (*StatusResponse, error) {
	c, err := l.get()
	if err != nil {
		return nil, err
	}
	return c.Status(ctx)
}

// ChaosTransport injects faultinject.RPCPlan message faults between a
// worker and any inner Transport: requests vanish before the
// coordinator sees them, replies vanish after it processed them (the
// at-least-once hazard: state changed, client unsure), messages deliver
// twice (exercising idempotent completion), or stall long enough for
// leases to expire underneath them.
type ChaosTransport struct {
	Inner Transport
	Plan  *faultinject.RPCPlan
	// Sleep replaces time.Sleep for Delay faults (tests inject a fake
	// clock advance); nil means time.Sleep.
	Sleep func(time.Duration)
}

func (t *ChaosTransport) sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	if t.Sleep != nil {
		t.Sleep(d)
		return
	}
	time.Sleep(d)
}

// inject wraps one call. The duplicate fault re-invokes call after the
// first response and discards the second result — for an idempotent
// protocol both must succeed identically, and any integrity error the
// duplicate provokes is surfaced.
func inject[Resp any](t *ChaosTransport, op string, call func() (*Resp, error)) (*Resp, error) {
	f := t.Plan.Next(op)
	t.sleep(f.Delay)
	if f.DropRequest {
		return nil, errDropped
	}
	resp, err := call()
	if err != nil {
		return nil, err
	}
	if f.Duplicate {
		if _, derr := call(); derr != nil && terminal(derr) {
			return nil, derr
		}
	}
	if f.DropReply {
		return nil, errDropped
	}
	return resp, nil
}

func (t *ChaosTransport) Lease(ctx context.Context, req LeaseRequest) (*LeaseResponse, error) {
	return inject(t, "lease", func() (*LeaseResponse, error) { return t.Inner.Lease(ctx, req) })
}

func (t *ChaosTransport) Renew(ctx context.Context, req RenewRequest) (*RenewResponse, error) {
	return inject(t, "renew", func() (*RenewResponse, error) { return t.Inner.Renew(ctx, req) })
}

func (t *ChaosTransport) Complete(ctx context.Context, req CompleteRequest) (*CompleteResponse, error) {
	return inject(t, "complete", func() (*CompleteResponse, error) { return t.Inner.Complete(ctx, req) })
}

func (t *ChaosTransport) Fail(ctx context.Context, req FailRequest) (*FailResponse, error) {
	return inject(t, "fail", func() (*FailResponse, error) { return t.Inner.Fail(ctx, req) })
}

func (t *ChaosTransport) Status(ctx context.Context) (*StatusResponse, error) {
	return t.Inner.Status(ctx)
}
