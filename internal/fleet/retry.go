package fleet

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"
)

// Backoff shapes the worker's retry schedule for coordinator calls:
// exponential with full-range jitter, capped, bounded in attempts. The
// zero value gets sensible defaults (50ms base, 2s cap, factor 2, 20%
// jitter, 8 attempts ≈ 6s of patience).
type Backoff struct {
	Base     time.Duration
	Max      time.Duration
	Factor   float64
	Jitter   float64 // fraction of the delay randomized, in [0,1]
	Attempts int
	// Seed fixes the jitter sequence for deterministic tests; 0 seeds
	// from the worker identity at retrier construction.
	Seed int64
}

func (b Backoff) withDefaults() Backoff {
	if b.Base <= 0 {
		b.Base = 50 * time.Millisecond
	}
	if b.Max <= 0 {
		b.Max = 2 * time.Second
	}
	if b.Factor < 1 {
		b.Factor = 2
	}
	if b.Jitter < 0 || b.Jitter > 1 {
		b.Jitter = 0.2
	}
	if b.Attempts <= 0 {
		b.Attempts = 8
	}
	return b
}

// delay returns the sleep before attempt i (0-based; attempt 0 has no
// preceding delay).
func (b Backoff) delay(i int, rng *rand.Rand) time.Duration {
	d := float64(b.Base)
	for k := 1; k < i; k++ {
		d *= b.Factor
		if d >= float64(b.Max) {
			d = float64(b.Max)
			break
		}
	}
	if b.Jitter > 0 {
		// Full-range jitter around d: [d*(1-j), d*(1+j)] — desynchronizes
		// workers hammering a briefly-down coordinator.
		d *= 1 - b.Jitter + 2*b.Jitter*rng.Float64()
	}
	if d > float64(b.Max) {
		d = float64(b.Max)
	}
	return time.Duration(d)
}

// terminal reports protocol errors that retrying cannot fix.
func terminal(err error) bool {
	return errors.Is(err, ErrFingerprint) ||
		errors.Is(err, ErrExpired) ||
		errors.Is(err, ErrIntegrity)
}

// retrier runs coordinator calls under the backoff policy.
type retrier struct {
	b   Backoff
	rng *rand.Rand
	// onRetry observes each failed non-terminal attempt (0-based) before
	// the next one is scheduled; the worker uses it to emit retry events
	// into the fleet trace. Nil disables.
	onRetry func(op string, attempt int, err error)
}

func newRetrier(b Backoff, seed int64) *retrier {
	b = b.withDefaults()
	if b.Seed != 0 {
		seed = b.Seed
	}
	if seed == 0 {
		seed = 1
	}
	return &retrier{b: b, rng: rand.New(rand.NewSource(seed))}
}

// do runs f until it succeeds, fails terminally, exhausts the attempt
// budget (→ ErrCoordinatorLost wrapping the last error), or ctx ends.
func (r *retrier) do(ctx context.Context, op string, f func(context.Context) error) error {
	var last error
	for i := 0; i < r.b.Attempts; i++ {
		if i > 0 {
			t := time.NewTimer(r.b.delay(i, r.rng))
			select {
			case <-ctx.Done():
				t.Stop()
				return ctx.Err()
			case <-t.C:
			}
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		last = f(ctx)
		if last == nil {
			return nil
		}
		if terminal(last) {
			return last
		}
		// A per-request timeout inside f is transient (retry it); only the
		// caller's own context ending stops the retry loop.
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if r.onRetry != nil {
			r.onRetry(op, i, last)
		}
	}
	return fmt.Errorf("%w: %s failed %d times, last: %v", ErrCoordinatorLost, op, r.b.Attempts, last)
}
