package fleet

import (
	"context"
	"sort"
)

// CellStatus is one row of the coordinator's attribution table (GET
// /fleet/cells): which worker owns or computed the cell and what it
// cost. Wall time runs from the cell's first lease to its terminal
// state (or to now, while leased); compute time is the worker-reported
// cell span duration — the GCD-kernel time, excluding queueing,
// re-leases and transport.
type CellStatus struct {
	Unit  int    `json:"unit"`
	State string `json:"state"` // "pending", "leased", "completed", "quarantined"
	// Worker is the current lease holder (leased) or the worker whose
	// record/verdict was accepted (completed/quarantined).
	Worker string `json:"worker,omitempty"`
	// Leases counts grants of this cell; Retries is the re-lease count
	// (Leases-1); Failures counts fail reports.
	Leases   int `json:"leases"`
	Retries  int `json:"retries"`
	Failures int `json:"failures,omitempty"`
	// Pairs is the completed record's pair count.
	Pairs int64 `json:"pairs,omitempty"`
	// WallSeconds: first lease → terminal (or now). ComputeSeconds: the
	// accepted worker's in-kernel time for the cell.
	WallSeconds    float64 `json:"wall_seconds,omitempty"`
	ComputeSeconds float64 `json:"compute_seconds,omitempty"`
	Straggler      bool    `json:"straggler,omitempty"`
	Reason         string  `json:"reason,omitempty"` // quarantine reason
}

// WorkerStatus aggregates one worker's contribution.
type WorkerStatus struct {
	Worker         string  `json:"worker"`
	Completed      int     `json:"completed"`
	Failed         int     `json:"failed,omitempty"`
	Leased         int     `json:"leased,omitempty"` // cells currently held
	Pairs          int64   `json:"pairs"`
	ComputeSeconds float64 `json:"compute_seconds"`
	Stragglers     int     `json:"stragglers,omitempty"`
	// SkewMillis is the estimated clock offset (coordinator − worker)
	// from renew round-trips; 0 when unknown.
	SkewMillis int64 `json:"skew_millis,omitempty"`
}

// CellsResponse is the JSON payload of GET /fleet/cells.
type CellsResponse struct {
	TraceID string         `json:"trace,omitempty"`
	Cells   []CellStatus   `json:"cells"`
	Workers []WorkerStatus `json:"workers"`
}

var cellStateNames = map[cellState]string{
	cellPending:     "pending",
	cellLeased:      "leased",
	cellCompleted:   "completed",
	cellQuarantined: "quarantined",
}

// Cells implements GET /fleet/cells: the per-cell and per-worker
// attribution table.
func (c *Coordinator) Cells(_ context.Context) (*CellsResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.cfg.Clock()
	c.sweepLocked(now)

	resp := &CellsResponse{TraceID: c.cfg.TraceID, Cells: make([]CellStatus, len(c.cells))}
	agg := map[string]*WorkerStatus{}
	worker := func(id string) *WorkerStatus {
		w, ok := agg[id]
		if !ok {
			w = &WorkerStatus{Worker: id}
			agg[id] = w
		}
		return w
	}
	// Every worker ever heard from gets a row, even with nothing
	// attributed yet.
	for id := range c.seen {
		worker(id)
	}

	for i := range c.cells {
		cell := &c.cells[i]
		cs := CellStatus{
			Unit:      i,
			State:     cellStateNames[cell.state],
			Leases:    cell.leases,
			Failures:  cell.failures,
			Straggler: cell.straggler,
			Reason:    cell.reason,
		}
		if cell.leases > 1 {
			cs.Retries = cell.leases - 1
		}
		switch cell.state {
		case cellLeased:
			cs.Worker = cell.worker
			cs.WallSeconds = now.Sub(cell.firstLeased).Seconds()
			worker(cell.worker).Leased++
			if cell.straggler {
				worker(cell.worker).Stragglers++
			}
		case cellCompleted, cellQuarantined:
			cs.Worker = cell.by
			cs.Pairs = cell.record.Pairs
			cs.ComputeSeconds = cell.computeMS / 1e3
			if !cell.firstLeased.IsZero() && !cell.terminalAt.IsZero() {
				cs.WallSeconds = cell.terminalAt.Sub(cell.firstLeased).Seconds()
			}
			if cell.by != "" {
				w := worker(cell.by)
				if cell.state == cellCompleted {
					w.Completed++
					w.Pairs += cell.record.Pairs
					w.ComputeSeconds += cell.computeMS / 1e3
				}
			}
		}
		for id := range cell.failedBy {
			worker(id).Failed++
		}
		resp.Cells[i] = cs
	}

	for id, skew := range c.skewMS {
		worker(id).SkewMillis = skew
	}
	resp.Workers = make([]WorkerStatus, 0, len(agg))
	for _, w := range agg {
		resp.Workers = append(resp.Workers, *w)
	}
	sort.Slice(resp.Workers, func(i, j int) bool { return resp.Workers[i].Worker < resp.Workers[j].Worker })
	return resp, nil
}
