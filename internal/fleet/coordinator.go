package fleet

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"

	"bulkgcd/internal/checkpoint"
	"bulkgcd/internal/obs"
)

// CoordinatorConfig configures a fleet coordinator.
type CoordinatorConfig struct {
	// Header is the run identity (bulk.HybridJournalHeader over the
	// corpus and configuration); every request's fingerprint is checked
	// against it, so a worker with a different corpus or config is
	// rejected instead of corrupting the scan.
	Header checkpoint.Header

	// LeaseTTL bounds how long a silent worker holds a cell; 0 means
	// 10s. Workers renew at TTL/3, so the TTL trades re-queue latency
	// after a crash against heartbeat traffic.
	LeaseTTL time.Duration

	// FailQuorum is the number of *distinct* workers that must fail a
	// cell before it is quarantined as poisoned; 0 means 3. A cell
	// failing on one flaky machine is retried elsewhere; a cell failing
	// everywhere is the cell's fault.
	FailQuorum int

	// MaxCellFailures caps total failure reports per cell regardless of
	// worker identity (a lone worker in a one-machine fleet must not
	// retry a poisoned cell forever); 0 means 3*FailQuorum.
	MaxCellFailures int

	// Journal, when non-nil, is the durable completion log: every
	// accepted completion and quarantine is appended before it is
	// acknowledged, so a coordinator restart resumes from the journal
	// (NewCoordinator calls Begin with Header).
	Journal *checkpoint.Writer

	// Resume, when non-nil, seeds the grid from a previous coordinator's
	// journal: completed records stay completed, BadCell records stay
	// quarantined. Must Verify against Header.
	Resume *checkpoint.State

	// Metrics is the coordinator's own registry (fleet_* metrics);
	// nil disables. MergedSnapshot folds worker snapshots into it.
	Metrics *obs.Registry

	// Clock injects time for tests; nil means time.Now.
	Clock func() time.Time

	// Trace, when non-nil, receives the merged fleet trace: the
	// coordinator's own run span and lease/fail/straggler events plus
	// every worker's shipped events, skew-corrected onto the
	// coordinator's clock. Attribution (see Cells) works without it.
	Trace *obs.Tracer

	// TraceID identifies the distributed trace; "" derives it from the
	// header fingerprint, so every coordinator of the same run (before
	// and after a crash) produces the same ID.
	TraceID string

	// StragglerFactor is the k in the straggler rule: a leased cell
	// running longer than k times the median completed-cell duration
	// (with at least three completions observed) is flagged; 0 means 4.
	StragglerFactor float64
}

type cellState int

const (
	cellPending cellState = iota
	cellLeased
	cellCompleted
	cellQuarantined
)

// cellInfo tracks one cell through pending → leased → completed or
// quarantined. Failure history survives re-queuing; the record is kept
// for idempotency checks and final assembly.
type cellInfo struct {
	state    cellState
	leaseID  string
	worker   string
	expiry   time.Time
	record   checkpoint.Record
	failedBy map[string]bool
	failures int
	reason   string

	// Attribution: who computed the cell and what it cost. firstLeased
	// anchors wall time (first grant → terminal state); leaseStart
	// anchors the *current* lease for straggler detection; computeMS is
	// the worker-reported cell span duration (GCD-kernel time).
	leases      int
	firstLeased time.Time
	leaseStart  time.Time
	terminalAt  time.Time
	by          string // worker whose record/verdict was accepted
	computeMS   float64
	straggler   bool
	slowOn      map[string]bool // workers this cell straggled on (scheduler avoids re-pairing)
}

// Coordinator owns the cell grid and implements the lease protocol.
// All methods are safe for concurrent use (transports call them from
// many worker connections).
type Coordinator struct {
	cfg CoordinatorConfig

	mu        sync.Mutex
	cells     []cellInfo
	remaining int // cells not yet terminal
	leaseSeq  int64
	snapshots map[string]*obs.Snapshot // latest metrics per worker
	seen      map[string]bool          // workers ever heard from
	done      chan struct{}

	runSpan    *obs.Span
	skewMS     map[string]int64 // per-worker min(arrival - sent) renew sample
	failMerged map[string]bool  // lease IDs whose fail-shipped events were merged
	durs       []float64        // completed-cell durations (seconds), for the straggler median
	medianDur  float64          // cached median of durs
}

// NewCoordinator builds a coordinator for the run described by
// cfg.Header, optionally resuming from a journal.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	if cfg.Header.Units <= 0 {
		return nil, fmt.Errorf("fleet: header has no units")
	}
	if cfg.Header.Fingerprint == "" {
		return nil, fmt.Errorf("fleet: header has no fingerprint")
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 10 * time.Second
	}
	if cfg.FailQuorum <= 0 {
		cfg.FailQuorum = 3
	}
	if cfg.MaxCellFailures <= 0 {
		cfg.MaxCellFailures = 3 * cfg.FailQuorum
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	if cfg.StragglerFactor <= 0 {
		cfg.StragglerFactor = 4
	}
	if cfg.TraceID == "" {
		// Deterministic from the run identity: a restarted coordinator
		// continues the same trace, and every worker agrees by construction.
		fp := cfg.Header.Fingerprint
		if len(fp) > 16 {
			fp = fp[:16]
		}
		cfg.TraceID = fp
	}
	c := &Coordinator{
		cfg:        cfg,
		cells:      make([]cellInfo, cfg.Header.Units),
		remaining:  cfg.Header.Units,
		snapshots:  map[string]*obs.Snapshot{},
		seen:       map[string]bool{},
		done:       make(chan struct{}),
		skewMS:     map[string]int64{},
		failMerged: map[string]bool{},
	}
	cfg.Trace.SetIdentity(cfg.TraceID, "coordinator")
	cfg.Trace.SetClock(cfg.Clock)
	c.runSpan = cfg.Trace.StartSpan("fleet_run",
		"units", cfg.Header.Units, "total_pairs", cfg.Header.TotalPairs,
		"fingerprint", cfg.Header.Fingerprint)
	if cfg.Resume != nil {
		if err := cfg.Resume.Verify(cfg.Header); err != nil {
			return nil, fmt.Errorf("fleet: resume: %w", err)
		}
		for u, rec := range cfg.Resume.Done {
			cell := &c.cells[u]
			if rec.BadCell != "" {
				cell.state = cellQuarantined
				cell.reason = rec.BadCell
			} else {
				cell.state = cellCompleted
			}
			cell.record = rec
			c.remaining--
		}
		c.runSpan.Event("resume", "done_cells", len(cfg.Resume.Done), "remaining", c.remaining)
	}
	if cfg.Journal != nil {
		if err := cfg.Journal.Begin(cfg.Header); err != nil {
			return nil, err
		}
	}
	if c.remaining == 0 {
		c.finishLocked()
	}
	return c, nil
}

// finishLocked seals the scan: ends the run span and releases waiters.
// Called with c.mu held (or before the coordinator is shared).
func (c *Coordinator) finishLocked() {
	var completed, quarantined int
	for i := range c.cells {
		switch c.cells[i].state {
		case cellCompleted:
			completed++
		case cellQuarantined:
			quarantined++
		}
	}
	c.runSpan.End("completed", completed, "quarantined", quarantined)
	close(c.done)
}

// checkFingerprint rejects requests from a different run.
func (c *Coordinator) checkFingerprint(fp string) error {
	if fp != c.cfg.Header.Fingerprint {
		return fmt.Errorf("%w: got %.12s..., run is %.12s...", ErrFingerprint, fp, c.cfg.Header.Fingerprint)
	}
	return nil
}

// sweepLocked re-queues every expired lease and flags stragglers.
// Called under c.mu on each request, so expiry is lazy — no background
// timer, and under a fake clock expiry happens exactly when the next
// request observes it.
func (c *Coordinator) sweepLocked(now time.Time) {
	for i := range c.cells {
		cell := &c.cells[i]
		if cell.state != cellLeased {
			continue
		}
		if !now.Before(cell.expiry) {
			c.runSpan.Event("lease_expired", "cell", i, "worker", cell.worker, "lease", cell.leaseID)
			cell.state = cellPending
			cell.leaseID = ""
			cell.worker = ""
			c.cfg.Metrics.Counter("fleet_lease_expirations_total").Add(1)
			continue
		}
		// Straggler rule: once at least three cells have completed, a
		// leased cell running past k·median of completed durations is
		// flagged (once), counted, and remembered against its worker so
		// the scheduler prefers a different machine on re-lease.
		if !cell.straggler && len(c.durs) >= 3 && c.medianDur > 0 {
			if running := now.Sub(cell.leaseStart).Seconds(); running > c.cfg.StragglerFactor*c.medianDur {
				cell.straggler = true
				if cell.slowOn == nil {
					cell.slowOn = map[string]bool{}
				}
				cell.slowOn[cell.worker] = true
				c.cfg.Metrics.Counter("fleet_stragglers_total").Add(1)
				c.runSpan.Event("straggler", "cell", i, "worker", cell.worker,
					"running_seconds", running, "median_seconds", c.medianDur)
			}
		}
	}
}

// Lease implements POST /lease.
func (c *Coordinator) Lease(_ context.Context, req LeaseRequest) (*LeaseResponse, error) {
	if err := c.checkFingerprint(req.Fingerprint); err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.seen[req.Worker] = true
	now := c.cfg.Clock()
	c.sweepLocked(now)

	if c.remaining == 0 {
		return &LeaseResponse{Done: true}, nil
	}
	// Prefer a pending cell this worker has not already failed on *and*
	// not already straggled on; then one it merely hasn't failed on (a
	// poisoned cell burns through distinct workers, tripping the quorum,
	// instead of ping-ponging on one machine); fall back to any pending
	// cell so a lone worker still makes progress.
	pick, okPick := -1, -1
	for i := range c.cells {
		if c.cells[i].state != cellPending {
			continue
		}
		if c.cells[i].failedBy[req.Worker] {
			if pick < 0 {
				pick = i
			}
			continue
		}
		if okPick < 0 {
			okPick = i
		}
		if !c.cells[i].slowOn[req.Worker] {
			okPick = i
			break
		}
	}
	if okPick >= 0 {
		pick = okPick
	}
	if pick < 0 {
		// Everything left is leased out: poll again before the earliest
		// lease could expire.
		return &LeaseResponse{Wait: true, RetryMillis: c.cfg.LeaseTTL.Milliseconds() / 4}, nil
	}
	c.leaseSeq++
	cell := &c.cells[pick]
	cell.state = cellLeased
	cell.leaseID = strconv.FormatInt(c.leaseSeq, 10)
	cell.worker = req.Worker
	cell.expiry = now.Add(c.cfg.LeaseTTL)
	cell.leases++
	cell.leaseStart = now
	if cell.firstLeased.IsZero() {
		cell.firstLeased = now
	}
	c.cfg.Metrics.Counter("fleet_leases_total").Add(1)
	c.runSpan.Event("lease", "cell", pick, "worker", req.Worker, "lease", cell.leaseID)
	return &LeaseResponse{
		Unit:       pick,
		LeaseID:    cell.leaseID,
		TTLMillis:  c.cfg.LeaseTTL.Milliseconds(),
		TraceID:    c.cfg.TraceID,
		ParentSpan: c.runSpan.ID(),
	}, nil
}

// Renew implements POST /renew: it extends a still-valid lease and
// stores the worker's metrics snapshot. Renewing an expired or unknown
// lease fails with ErrExpired — the cell may already be re-leased, so
// the holder must not keep computing on the assumption it owns it.
func (c *Coordinator) Renew(_ context.Context, req RenewRequest) (*RenewResponse, error) {
	if err := c.checkFingerprint(req.Fingerprint); err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.seen[req.Worker] = true
	now := c.cfg.Clock()
	c.sweepLocked(now)
	if req.Metrics != nil {
		c.snapshots[req.Worker] = req.Metrics
	}
	if req.SentUnixMS != 0 {
		// Cristian-style skew estimate: sample = latency − skew, and
		// latency ≥ 0, so the minimum sample over many renewals converges
		// on −skew — exactly the offset that maps the worker's clock onto
		// the coordinator's.
		sample := now.UnixMilli() - req.SentUnixMS
		if cur, ok := c.skewMS[req.Worker]; !ok || sample < cur {
			c.skewMS[req.Worker] = sample
		}
	}
	for i := range c.cells {
		cell := &c.cells[i]
		if cell.state == cellLeased && cell.leaseID == req.LeaseID {
			cell.expiry = now.Add(c.cfg.LeaseTTL)
			c.cfg.Metrics.Counter("fleet_renewals_total").Add(1)
			return &RenewResponse{TTLMillis: c.cfg.LeaseTTL.Milliseconds()}, nil
		}
	}
	return nil, fmt.Errorf("%w: lease %s", ErrExpired, req.LeaseID)
}

// Complete implements POST /complete. Completion is accepted from any
// worker in any lease state — cell computation is deterministic, so a
// record is either the first (journal it, seal the cell) or a duplicate
// (acknowledge idempotently). A record that *differs* from the accepted
// one breaks the determinism contract and fails with ErrIntegrity. A
// completion for a quarantined cell is acknowledged and discarded (the
// quarantine verdict already journaled stands; late success does not
// un-poison a cell whose record can no longer be trusted).
func (c *Coordinator) Complete(_ context.Context, req CompleteRequest) (*CompleteResponse, error) {
	if err := c.checkFingerprint(req.Fingerprint); err != nil {
		return nil, err
	}
	rec := req.Record
	c.mu.Lock()
	defer c.mu.Unlock()
	c.seen[req.Worker] = true
	now := c.cfg.Clock()
	c.sweepLocked(now)
	if rec.Unit < 0 || rec.Unit >= len(c.cells) {
		return nil, fmt.Errorf("fleet: complete: unit %d out of range [0,%d)", rec.Unit, len(c.cells))
	}
	if rec.BadCell != "" {
		return nil, fmt.Errorf("fleet: complete: unit %d: workers do not report quarantine records", rec.Unit)
	}
	cell := &c.cells[rec.Unit]
	switch cell.state {
	case cellQuarantined:
		return &CompleteResponse{Duplicate: true}, nil
	case cellCompleted:
		if !recordsEqual(cell.record, rec) {
			c.cfg.Metrics.Counter("fleet_integrity_errors_total").Add(1)
			return nil, fmt.Errorf("%w: unit %d: accepted record (pairs=%d factors=%d bad=%d) vs %s's (pairs=%d factors=%d bad=%d)",
				ErrIntegrity, rec.Unit,
				cell.record.Pairs, len(cell.record.Factors), len(cell.record.Bad),
				req.Worker, rec.Pairs, len(rec.Factors), len(rec.Bad))
		}
		c.cfg.Metrics.Counter("fleet_duplicate_completions_total").Add(1)
		return &CompleteResponse{Duplicate: true}, nil
	}
	// First acceptance: journal before acknowledging, so an acked
	// completion survives a coordinator crash.
	if c.cfg.Journal != nil {
		if err := c.cfg.Journal.Append(rec); err != nil {
			return nil, fmt.Errorf("fleet: journal: %w", err)
		}
	}
	cell.state = cellCompleted
	cell.leaseID = ""
	cell.worker = ""
	cell.record = rec
	cell.by = req.Worker
	cell.terminalAt = now
	c.remaining--
	c.cfg.Metrics.Counter("fleet_completions_total").Add(1)
	c.cfg.Metrics.Counter("fleet_pairs_completed_total").Add(rec.Pairs)

	// Attribution + trace merge, first acceptance only: the shipped cell
	// span yields the worker-side compute time, and merging here (never
	// on duplicates) keeps exactly one cell span per completed cell in
	// the fleet trace.
	for _, ev := range req.Trace {
		if ev.Kind == "span" && ev.Name == "cell" {
			cell.computeMS = ev.DurMS
		}
	}
	if !cell.firstLeased.IsZero() {
		c.observeDurLocked(now.Sub(cell.firstLeased).Seconds())
	}
	c.mergeTraceLocked(req.Worker, req.Trace)

	if c.remaining == 0 {
		c.finishLocked()
	}
	return &CompleteResponse{}, nil
}

// observeDurLocked records one completed-cell duration and refreshes
// the cached median the straggler rule compares against.
func (c *Coordinator) observeDurLocked(seconds float64) {
	c.durs = append(c.durs, seconds)
	sorted := append([]float64(nil), c.durs...)
	sort.Float64s(sorted)
	c.medianDur = sorted[len(sorted)/2]
}

// mergeTraceLocked appends a worker's shipped events to the fleet
// trace, shifting their timestamps by the worker's estimated clock
// offset so the merged timeline is causally ordered on the
// coordinator's clock.
func (c *Coordinator) mergeTraceLocked(worker string, evs []obs.TraceEvent) {
	if c.cfg.Trace == nil || len(evs) == 0 {
		return
	}
	off, ok := c.skewMS[worker]
	for _, ev := range evs {
		if ok && off != 0 {
			ev.Time = ev.Time.Add(time.Duration(off) * time.Millisecond)
			if ev.Start != nil {
				st := ev.Start.Add(time.Duration(off) * time.Millisecond)
				ev.Start = &st
			}
		}
		c.cfg.Trace.EmitEvent(ev)
	}
}

// Fail implements POST /fail: the cell is re-queued, or quarantined
// once it has failed on FailQuorum distinct workers (or MaxCellFailures
// times in total). Failure reports for terminal cells are acknowledged
// and ignored.
func (c *Coordinator) Fail(_ context.Context, req FailRequest) (*FailResponse, error) {
	if err := c.checkFingerprint(req.Fingerprint); err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.seen[req.Worker] = true
	now := c.cfg.Clock()
	c.sweepLocked(now)
	if req.Unit < 0 || req.Unit >= len(c.cells) {
		return nil, fmt.Errorf("fleet: fail: unit %d out of range [0,%d)", req.Unit, len(c.cells))
	}
	cell := &c.cells[req.Unit]
	// Merge shipped events at most once per lease: a duplicated fail RPC
	// (lost reply, chaos duplication) re-sends the same batch.
	if req.LeaseID != "" && !c.failMerged[req.LeaseID] {
		c.failMerged[req.LeaseID] = true
		c.mergeTraceLocked(req.Worker, req.Trace)
	}
	if cell.state == cellCompleted || cell.state == cellQuarantined {
		return &FailResponse{Quarantined: cell.state == cellQuarantined}, nil
	}
	if cell.failedBy == nil {
		cell.failedBy = map[string]bool{}
	}
	cell.failedBy[req.Worker] = true
	cell.failures++
	cell.state = cellPending
	cell.leaseID = ""
	cell.worker = ""
	c.cfg.Metrics.Counter("fleet_cell_failures_total").Add(1)
	c.runSpan.Event("cell_failed", "cell", req.Unit, "worker", req.Worker, "reason", req.Reason)
	if len(cell.failedBy) < c.cfg.FailQuorum && cell.failures < c.cfg.MaxCellFailures {
		return &FailResponse{}, nil
	}
	// Poisoned: journal the quarantine verdict so a restarted
	// coordinator does not resurrect the cell.
	reason := fmt.Sprintf("failed on %d workers (%d attempts), last: %s", len(cell.failedBy), cell.failures, req.Reason)
	rec := checkpoint.Record{Unit: req.Unit, BadCell: reason}
	if c.cfg.Journal != nil {
		if err := c.cfg.Journal.Append(rec); err != nil {
			return nil, fmt.Errorf("fleet: journal: %w", err)
		}
	}
	cell.state = cellQuarantined
	cell.reason = reason
	cell.record = rec
	cell.by = req.Worker
	cell.terminalAt = now
	c.remaining--
	c.cfg.Metrics.Counter("fleet_quarantined_cells_total").Add(1)
	c.runSpan.Event("quarantine", "cell", req.Unit, "reason", reason)
	if c.remaining == 0 {
		c.finishLocked()
	}
	return &FailResponse{Quarantined: true}, nil
}

// Status implements GET /fleet/status.
func (c *Coordinator) Status(_ context.Context) (*StatusResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sweepLocked(c.cfg.Clock())
	st := &StatusResponse{
		Units:      len(c.cells),
		Workers:    len(c.seen),
		TotalPairs: c.cfg.Header.TotalPairs,
		Done:       c.remaining == 0,
	}
	for i := range c.cells {
		switch c.cells[i].state {
		case cellPending:
			st.Pending++
		case cellLeased:
			st.Leased++
		case cellCompleted:
			st.Completed++
			st.DonePairs += c.cells[i].record.Pairs
		case cellQuarantined:
			st.Quarantined++
		}
	}
	return st, nil
}

// Wait blocks until every cell is terminal (completed or quarantined)
// or ctx is canceled.
func (c *Coordinator) Wait(ctx context.Context) error {
	select {
	case <-c.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Done reports whether every cell is terminal.
func (c *Coordinator) Done() bool {
	select {
	case <-c.done:
		return true
	default:
		return false
	}
}

// Records returns a copy of every terminal cell's record (quarantined
// cells appear as their BadCell record), ready for
// bulk.CellRunner.Assemble.
func (c *Coordinator) Records() map[int]checkpoint.Record {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[int]checkpoint.Record, len(c.cells))
	for i := range c.cells {
		if c.cells[i].state == cellCompleted || c.cells[i].state == cellQuarantined {
			out[i] = c.cells[i].record
		}
	}
	return out
}

// BadCells returns the quarantined units and their reasons.
func (c *Coordinator) BadCells() map[int]string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := map[int]string{}
	for i := range c.cells {
		if c.cells[i].state == cellQuarantined {
			out[i] = c.cells[i].reason
		}
	}
	return out
}

// MergedSnapshot merges the coordinator's own registry with the latest
// snapshot pushed by each worker — the fleet-wide /metrics view.
func (c *Coordinator) MergedSnapshot() *obs.Snapshot {
	snap := c.cfg.Metrics.Snapshot()
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, ws := range c.snapshots {
		_ = snap.Merge(ws) // bucket-shape mismatches skip that histogram only
	}
	return snap
}

// recordsEqual compares two completion records semantically (order and
// nil-vs-empty differences from JSON round-trips are not conflicts).
func recordsEqual(a, b checkpoint.Record) bool {
	if a.Unit != b.Unit || a.Pairs != b.Pairs || a.BadCell != b.BadCell ||
		len(a.Factors) != len(b.Factors) || len(a.Bad) != len(b.Bad) {
		return false
	}
	for i := range a.Factors {
		if a.Factors[i] != b.Factors[i] {
			return false
		}
	}
	for i := range a.Bad {
		if a.Bad[i] != b.Bad[i] {
			return false
		}
	}
	return true
}
