// Package fleet distributes a bulk-GCD scan across machines: a
// coordinator owns the grid of hybrid tile cells (bulk.CellRunner
// units) and leases them to workers over a minimal job-lease protocol;
// workers compute leased cells and report the resulting checkpoint
// records back. The protocol is designed so that every fault mode —
// worker crash, stall, partition, message loss or duplication,
// coordinator restart — degrades to recomputing a cell, never to wrong
// or missing findings:
//
//   - Leases are time-bounded; a worker holds a cell only while it keeps
//     renewing (heartbeat). An expired lease returns the cell to the
//     queue, so a crashed or partitioned worker costs one lease TTL.
//   - Cell computation is deterministic, so completion is idempotent: a
//     duplicate complete (lost reply, re-leased cell finishing twice)
//     carries a byte-identical record and is accepted; a *conflicting*
//     record is an integrity error, never silently merged.
//   - The coordinator journals completions through internal/checkpoint
//     before acknowledging, so a coordinator restart resumes from the
//     journal and in-flight leases simply expire.
//   - A cell that keeps failing is quarantined (journaled as BadCell)
//     after failing on enough distinct workers, so one poisoned cell
//     cannot wedge the scan.
//
// Transport abstracts the wire: Loopback runs the protocol in-process
// (and ChaosTransport injects message faults for the chaos campaign),
// HTTPTransport speaks the JSON-over-HTTP form served by
// Coordinator.Handlers (POST /lease, /renew, /complete, /fail and
// GET /fleet/status).
package fleet

import (
	"context"
	"errors"

	"bulkgcd/internal/checkpoint"
	"bulkgcd/internal/obs"
)

// Sentinel protocol errors. Transports map them losslessly (the HTTP
// transport round-trips them through status codes), so worker retry
// logic can classify failures with errors.Is regardless of transport.
var (
	// ErrFingerprint: the worker's corpus/config fingerprint does not
	// match the coordinator's run. Terminal — retrying cannot help.
	ErrFingerprint = errors.New("fleet: fingerprint mismatch")
	// ErrExpired: the lease being renewed no longer exists (expired and
	// re-queued, or the cell reached a terminal state). The worker must
	// stop relying on the lease; the cell's fate is the coordinator's.
	ErrExpired = errors.New("fleet: lease expired")
	// ErrIntegrity: a completion conflicted with an already-accepted
	// record for the same cell. Determinism is broken; the scan's
	// findings cannot be trusted. Terminal.
	ErrIntegrity = errors.New("fleet: conflicting completion record")
	// ErrCoordinatorLost: retries exhausted without reaching the
	// coordinator. The worker degrades gracefully (spills results
	// locally and exits) instead of wedging.
	ErrCoordinatorLost = errors.New("fleet: coordinator unreachable")
)

// LeaseRequest asks for one cell to compute.
type LeaseRequest struct {
	// Worker identifies the requester across requests; the poisoned-cell
	// policy counts *distinct* failing workers, and the scheduler avoids
	// re-leasing a cell to a worker it already failed on when possible.
	Worker string `json:"worker"`
	// Fingerprint is the run identity the worker computed from its own
	// corpus and configuration (bulk.CellRunner.Header().Fingerprint).
	Fingerprint string `json:"fingerprint"`
}

// LeaseResponse grants a cell, asks the worker to wait, or reports the
// scan done.
type LeaseResponse struct {
	// Done: every cell is completed or quarantined; the worker exits.
	Done bool `json:"done,omitempty"`
	// Wait: nothing leasable right now (all remaining cells are leased
	// out); retry after RetryMillis.
	Wait        bool  `json:"wait,omitempty"`
	RetryMillis int64 `json:"retry_millis,omitempty"`
	// Unit is the granted cell index; LeaseID names this grant and must
	// accompany renewals. TTLMillis is the lease duration: the worker
	// must renew well within it (TTL/3 heartbeats) or the cell is
	// re-queued.
	Unit      int    `json:"unit"`
	LeaseID   string `json:"lease_id"`
	TTLMillis int64  `json:"ttl_millis"`
	// TraceID and ParentSpan propagate trace context: the worker stamps
	// TraceID on every event it emits and hangs its cell spans under
	// ParentSpan (the coordinator's run span), so the merged fleet trace
	// is one causally-connected tree.
	TraceID    string `json:"trace,omitempty"`
	ParentSpan string `json:"parent_span,omitempty"`
}

// RenewRequest is the heartbeat: it extends the lease and carries the
// worker's metrics snapshot for fleet-wide aggregation.
type RenewRequest struct {
	Worker      string `json:"worker"`
	Fingerprint string `json:"fingerprint"`
	LeaseID     string `json:"lease_id"`
	// Metrics is the worker's obs registry snapshot; the coordinator
	// keeps the latest per worker and merges them into its /metrics.
	Metrics *obs.Snapshot `json:"metrics,omitempty"`
	// SentUnixMS is the worker's clock (Unix milliseconds) when the
	// renew was sent. The coordinator keeps, per worker, the minimum of
	// (arrival − SentUnixMS) over all renewals — a Cristian-style skew
	// estimate (network latency is nonnegative, so the minimum sample
	// approaches the pure clock offset) used to align worker event
	// timestamps in the merged trace.
	SentUnixMS int64 `json:"sent_unix_ms,omitempty"`
}

// RenewResponse confirms the extension.
type RenewResponse struct {
	TTLMillis int64 `json:"ttl_millis"`
}

// CompleteRequest reports a computed cell. Completion is keyed by the
// record's Unit, not the lease: a worker whose lease expired mid-cell
// may still complete (determinism makes the late record identical), and
// a duplicate complete is acknowledged idempotently.
type CompleteRequest struct {
	Worker      string            `json:"worker"`
	Fingerprint string            `json:"fingerprint"`
	LeaseID     string            `json:"lease_id,omitempty"`
	Record      checkpoint.Record `json:"record"`
	// Trace carries the worker's buffered trace events — the cell's
	// span plus any retry/abandon events since the last shipment. The
	// coordinator merges them into the fleet trace on first acceptance
	// only, so re-sent completions cannot duplicate spans.
	Trace []obs.TraceEvent `json:"trace,omitempty"`
}

// CompleteResponse acknowledges a completion.
type CompleteResponse struct {
	// Duplicate reports that an identical record had already been
	// accepted (informational; the request still succeeded).
	Duplicate bool `json:"duplicate,omitempty"`
}

// FailRequest reports that computing a cell failed on this worker
// (panic inside the kernel, poisoned input). The coordinator re-queues
// the cell — or quarantines it once enough distinct workers failed.
type FailRequest struct {
	Worker      string `json:"worker"`
	Fingerprint string `json:"fingerprint"`
	LeaseID     string `json:"lease_id,omitempty"`
	Unit        int    `json:"unit"`
	Reason      string `json:"reason"`
	// Trace carries the worker's buffered events (failures never include
	// a cell span — those are emitted on success only). Merged at most
	// once per LeaseID, so duplicated fail RPCs cannot duplicate events.
	Trace []obs.TraceEvent `json:"trace,omitempty"`
}

// FailResponse acknowledges a failure report.
type FailResponse struct {
	// Quarantined reports that this failure tripped the poisoned-cell
	// policy and the cell will never be retried.
	Quarantined bool `json:"quarantined,omitempty"`
}

// StatusResponse is the coordinator's public progress view.
type StatusResponse struct {
	Units       int   `json:"units"`
	Pending     int   `json:"pending"`
	Leased      int   `json:"leased"`
	Completed   int   `json:"completed"`
	Quarantined int   `json:"quarantined"`
	Workers     int   `json:"workers"`
	Done        bool  `json:"done"`
	TotalPairs  int64 `json:"total_pairs"`
	DonePairs   int64 `json:"done_pairs"`
}

// Transport is the worker's view of the coordinator. Implementations
// must map coordinator-side protocol errors onto the sentinel errors
// above (wrapped is fine); any other error is treated as transient and
// retried with backoff.
type Transport interface {
	Lease(ctx context.Context, req LeaseRequest) (*LeaseResponse, error)
	Renew(ctx context.Context, req RenewRequest) (*RenewResponse, error)
	Complete(ctx context.Context, req CompleteRequest) (*CompleteResponse, error)
	Fail(ctx context.Context, req FailRequest) (*FailResponse, error)
	Status(ctx context.Context) (*StatusResponse, error)
}
