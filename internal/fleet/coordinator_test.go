package fleet

import (
	"context"
	"errors"
	"path/filepath"
	"testing"
	"time"

	"bulkgcd/internal/checkpoint"
	"bulkgcd/internal/obs"
)

const (
	testFP  = "fp-test"
	testTTL = 10 * time.Second
)

func testHeader(units int) checkpoint.Header {
	return checkpoint.Header{
		V: checkpoint.Version, Engine: "hybrid", Fingerprint: testFP,
		Units: units, TotalPairs: int64(units) * 10,
	}
}

func testCoord(t *testing.T, units int, clk *FakeClock, mut func(*CoordinatorConfig)) *Coordinator {
	t.Helper()
	cfg := CoordinatorConfig{Header: testHeader(units), LeaseTTL: testTTL, Clock: clk.Now}
	if mut != nil {
		mut(&cfg)
	}
	c, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func mustLease(t *testing.T, c *Coordinator, worker string) *LeaseResponse {
	t.Helper()
	resp, err := c.Lease(context.Background(), LeaseRequest{Worker: worker, Fingerprint: testFP})
	if err != nil {
		t.Fatalf("lease for %s: %v", worker, err)
	}
	if resp.Done || resp.Wait {
		t.Fatalf("lease for %s: no grant: %+v", worker, resp)
	}
	return resp
}

func rec(unit int, pairs int64) checkpoint.Record {
	return checkpoint.Record{Unit: unit, Pairs: pairs,
		Factors: []checkpoint.Factor{{I: 0, J: 1, P: "ff"}}}
}

// TestLeaseEdgeCases is the table of lease-lifecycle scenarios under
// the fake clock: each case scripts one edge of the pending → leased →
// completed/quarantined state machine exactly at its boundary.
func TestLeaseEdgeCases(t *testing.T) {
	ctx := context.Background()
	cases := []struct {
		name string
		run  func(t *testing.T, c *Coordinator, clk *FakeClock)
	}{
		{"renew-before-expiry-extends", func(t *testing.T, c *Coordinator, clk *FakeClock) {
			l := mustLease(t, c, "w1")
			for i := 0; i < 3; i++ { // each renewal pushes expiry a full TTL out
				clk.Advance(testTTL - time.Second)
				if _, err := c.Renew(ctx, RenewRequest{Worker: "w1", Fingerprint: testFP, LeaseID: l.LeaseID}); err != nil {
					t.Fatalf("renewal %d: %v", i, err)
				}
			}
		}},
		{"renew-at-exact-expiry-rejected", func(t *testing.T, c *Coordinator, clk *FakeClock) {
			l := mustLease(t, c, "w1")
			clk.Advance(testTTL) // now == expiry: the lease is gone, not "just barely held"
			_, err := c.Renew(ctx, RenewRequest{Worker: "w1", Fingerprint: testFP, LeaseID: l.LeaseID})
			if !errors.Is(err, ErrExpired) {
				t.Fatalf("renew at expiry: %v", err)
			}
		}},
		{"renewal-racing-expiry", func(t *testing.T, c *Coordinator, clk *FakeClock) {
			l := mustLease(t, c, "w1")
			clk.Advance(testTTL - time.Nanosecond) // last possible instant
			if _, err := c.Renew(ctx, RenewRequest{Worker: "w1", Fingerprint: testFP, LeaseID: l.LeaseID}); err != nil {
				t.Fatalf("renew one tick before expiry: %v", err)
			}
			clk.Advance(testTTL - time.Nanosecond)
			if _, err := c.Renew(ctx, RenewRequest{Worker: "w1", Fingerprint: testFP, LeaseID: l.LeaseID}); err != nil {
				t.Fatalf("race renewal did not extend the lease: %v", err)
			}
		}},
		{"expired-lease-requeues-cell", func(t *testing.T, c *Coordinator, clk *FakeClock) {
			l1 := mustLease(t, c, "w1")
			clk.Advance(testTTL)
			l2 := mustLease(t, c, "w2")
			if l2.Unit != l1.Unit {
				t.Fatalf("re-lease got unit %d, want requeued %d", l2.Unit, l1.Unit)
			}
			if l2.LeaseID == l1.LeaseID {
				t.Fatal("re-lease reused the lease ID")
			}
			// The zombie's renewal must not steal the cell back.
			if _, err := c.Renew(ctx, RenewRequest{Worker: "w1", Fingerprint: testFP, LeaseID: l1.LeaseID}); !errors.Is(err, ErrExpired) {
				t.Fatalf("zombie renew: %v", err)
			}
		}},
		{"complete-after-expiry-original-holder", func(t *testing.T, c *Coordinator, clk *FakeClock) {
			l := mustLease(t, c, "w1")
			clk.Advance(2 * testTTL)
			resp, err := c.Complete(ctx, CompleteRequest{Worker: "w1", Fingerprint: testFP, LeaseID: l.LeaseID, Record: rec(l.Unit, 7)})
			if err != nil || resp.Duplicate {
				t.Fatalf("late complete by original holder: %+v, %v", resp, err)
			}
		}},
		{"complete-after-expiry-both-holders", func(t *testing.T, c *Coordinator, clk *FakeClock) {
			l1 := mustLease(t, c, "w1")
			clk.Advance(testTTL)
			l2 := mustLease(t, c, "w2")
			if _, err := c.Complete(ctx, CompleteRequest{Worker: "w2", Fingerprint: testFP, LeaseID: l2.LeaseID, Record: rec(l2.Unit, 7)}); err != nil {
				t.Fatalf("re-lease holder complete: %v", err)
			}
			// The original holder finishes later with the identical record:
			// idempotent duplicate, not a conflict.
			resp, err := c.Complete(ctx, CompleteRequest{Worker: "w1", Fingerprint: testFP, LeaseID: l1.LeaseID, Record: rec(l1.Unit, 7)})
			if err != nil || !resp.Duplicate {
				t.Fatalf("original holder's late duplicate: %+v, %v", resp, err)
			}
		}},
		{"duplicate-complete-idempotent", func(t *testing.T, c *Coordinator, clk *FakeClock) {
			l := mustLease(t, c, "w1")
			req := CompleteRequest{Worker: "w1", Fingerprint: testFP, LeaseID: l.LeaseID, Record: rec(l.Unit, 7)}
			if resp, err := c.Complete(ctx, req); err != nil || resp.Duplicate {
				t.Fatalf("first complete: %+v, %v", resp, err)
			}
			for i := 0; i < 2; i++ { // replayed message, any number of times
				if resp, err := c.Complete(ctx, req); err != nil || !resp.Duplicate {
					t.Fatalf("replay %d: %+v, %v", i, resp, err)
				}
			}
		}},
		{"conflicting-complete-integrity-error", func(t *testing.T, c *Coordinator, clk *FakeClock) {
			l := mustLease(t, c, "w1")
			if _, err := c.Complete(ctx, CompleteRequest{Worker: "w1", Fingerprint: testFP, Record: rec(l.Unit, 7)}); err != nil {
				t.Fatal(err)
			}
			_, err := c.Complete(ctx, CompleteRequest{Worker: "w2", Fingerprint: testFP, Record: rec(l.Unit, 8)})
			if !errors.Is(err, ErrIntegrity) {
				t.Fatalf("conflicting record: %v", err)
			}
		}},
		{"wait-when-all-leased", func(t *testing.T, c *Coordinator, clk *FakeClock) {
			for i := 0; i < 3; i++ {
				mustLease(t, c, "w1")
			}
			resp, err := c.Lease(ctx, LeaseRequest{Worker: "w2", Fingerprint: testFP})
			if err != nil || !resp.Wait || resp.RetryMillis <= 0 {
				t.Fatalf("lease with grid fully leased: %+v, %v", resp, err)
			}
		}},
		{"fingerprint-checked-everywhere", func(t *testing.T, c *Coordinator, clk *FakeClock) {
			if _, err := c.Lease(ctx, LeaseRequest{Worker: "w1", Fingerprint: "other"}); !errors.Is(err, ErrFingerprint) {
				t.Fatalf("lease: %v", err)
			}
			if _, err := c.Renew(ctx, RenewRequest{Worker: "w1", Fingerprint: "other"}); !errors.Is(err, ErrFingerprint) {
				t.Fatalf("renew: %v", err)
			}
			if _, err := c.Complete(ctx, CompleteRequest{Worker: "w1", Fingerprint: "other", Record: rec(0, 1)}); !errors.Is(err, ErrFingerprint) {
				t.Fatalf("complete: %v", err)
			}
			if _, err := c.Fail(ctx, FailRequest{Worker: "w1", Fingerprint: "other"}); !errors.Is(err, ErrFingerprint) {
				t.Fatalf("fail: %v", err)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			clk := NewFakeClock(time.Unix(1_000_000, 0))
			tc.run(t, testCoord(t, 3, clk, nil), clk)
		})
	}
}

// TestPoisonedCellQuarantine: a cell failing on FailQuorum distinct
// workers is quarantined — journaled as BadCell, never leased again —
// and the scan still reaches Done.
func TestPoisonedCellQuarantine(t *testing.T) {
	ctx := context.Background()
	clk := NewFakeClock(time.Unix(0, 0))
	c := testCoord(t, 2, clk, func(cfg *CoordinatorConfig) { cfg.FailQuorum = 2 })

	for i, w := range []string{"w1", "w2"} {
		l := mustLease(t, c, w)
		if l.Unit != 0 {
			t.Fatalf("worker %s leased unit %d, want the pending poisoned one", w, l.Unit)
		}
		resp, err := c.Fail(ctx, FailRequest{Worker: w, Fingerprint: testFP, LeaseID: l.LeaseID, Unit: l.Unit, Reason: "kernel panic"})
		if err != nil {
			t.Fatal(err)
		}
		if want := i == 1; resp.Quarantined != want {
			t.Fatalf("failure %d: quarantined=%v, want %v", i, resp.Quarantined, want)
		}
	}
	// The poisoned cell is terminal; only unit 1 remains.
	l := mustLease(t, c, "w3")
	if l.Unit != 1 {
		t.Fatalf("leased unit %d after quarantine, want 1", l.Unit)
	}
	if _, err := c.Complete(ctx, CompleteRequest{Worker: "w3", Fingerprint: testFP, Record: rec(1, 9)}); err != nil {
		t.Fatal(err)
	}
	if !c.Done() {
		t.Fatal("scan not done with every cell terminal")
	}
	bad := c.BadCells()
	if len(bad) != 1 || bad[0] == "" {
		t.Fatalf("BadCells() = %v", bad)
	}
	// Late success for the quarantined cell is discarded, not resurrected.
	if resp, err := c.Complete(ctx, CompleteRequest{Worker: "w1", Fingerprint: testFP, Record: rec(0, 9)}); err != nil || !resp.Duplicate {
		t.Fatalf("late complete of quarantined cell: %+v, %v", resp, err)
	}
}

// TestMaxCellFailuresLoneWorker: a one-worker fleet cannot reach the
// distinct-worker quorum, so the total-failure cap quarantines instead
// of retrying forever.
func TestMaxCellFailuresLoneWorker(t *testing.T) {
	ctx := context.Background()
	clk := NewFakeClock(time.Unix(0, 0))
	c := testCoord(t, 2, clk, func(cfg *CoordinatorConfig) {
		cfg.FailQuorum = 3
		cfg.MaxCellFailures = 2
	})
	var quarantined bool
	for i := 0; i < 2; i++ {
		l := mustLease(t, c, "only")
		resp, err := c.Fail(ctx, FailRequest{Worker: "only", Fingerprint: testFP, LeaseID: l.LeaseID, Unit: l.Unit, Reason: "boom"})
		if err != nil {
			t.Fatal(err)
		}
		quarantined = resp.Quarantined
		if !quarantined {
			// Re-lease prefers cells we haven't failed; complete them so
			// only the poisoned cell remains.
			if l2 := mustLease(t, c, "only"); l2.Unit != l.Unit {
				if _, err := c.Complete(ctx, CompleteRequest{Worker: "only", Fingerprint: testFP, Record: rec(l2.Unit, 5)}); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	if !quarantined {
		t.Fatal("total-failure cap did not quarantine")
	}
}

// TestCoordinatorJournalRestart: a coordinator that crashes mid-scan is
// rebuilt from its journal — completed and quarantined cells stay
// terminal, in-flight leases are forgotten (they would have expired),
// and the remaining cells finish the scan.
func TestCoordinatorJournalRestart(t *testing.T) {
	ctx := context.Background()
	path := filepath.Join(t.TempDir(), "fleet.jsonl")
	clk := NewFakeClock(time.Unix(0, 0))

	w, err := checkpoint.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	c := testCoord(t, 4, clk, func(cfg *CoordinatorConfig) {
		cfg.Journal = w
		cfg.FailQuorum = 1
	})
	// Complete unit 0, quarantine unit 1, leave unit 2 leased in flight.
	l0 := mustLease(t, c, "w1")
	if _, err := c.Complete(ctx, CompleteRequest{Worker: "w1", Fingerprint: testFP, LeaseID: l0.LeaseID, Record: rec(l0.Unit, 7)}); err != nil {
		t.Fatal(err)
	}
	l1 := mustLease(t, c, "w1")
	if _, err := c.Fail(ctx, FailRequest{Worker: "w1", Fingerprint: testFP, LeaseID: l1.LeaseID, Unit: l1.Unit, Reason: "poison"}); err != nil {
		t.Fatal(err)
	}
	mustLease(t, c, "w1") // in-flight at crash time
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: reload the journal, rebuild, append to the same file.
	st, err := checkpoint.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := checkpoint.OpenAppend(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	c2 := testCoord(t, 4, clk, func(cfg *CoordinatorConfig) {
		cfg.Journal = w2
		cfg.Resume = st
	})
	st2, err := c2.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Completed != 1 || st2.Quarantined != 1 || st2.Pending != 2 || st2.Leased != 0 {
		t.Fatalf("restarted status = %+v", st2)
	}
	// Finish the scan; the journal must hold every terminal cell exactly once.
	for !c2.Done() {
		l := mustLease(t, c2, "w2")
		if _, err := c2.Complete(ctx, CompleteRequest{Worker: "w2", Fingerprint: testFP, LeaseID: l.LeaseID, Record: rec(l.Unit, 7)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := c2.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	if err := w2.Sync(); err != nil {
		t.Fatal(err)
	}
	final, err := checkpoint.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(final.Done) != 4 || final.Ignored != 0 {
		t.Fatalf("final journal: %d done, %d ignored", len(final.Done), final.Ignored)
	}
	if q := final.Quarantined(); len(q) != 1 {
		t.Fatalf("journal quarantined = %v", q)
	}
	recs := c2.Records()
	if len(recs) != 4 {
		t.Fatalf("Records() = %d entries", len(recs))
	}
}

// TestMergedSnapshot: worker snapshots pushed on renew merge into the
// coordinator's own registry for the fleet-wide /metrics.
func TestMergedSnapshot(t *testing.T) {
	ctx := context.Background()
	clk := NewFakeClock(time.Unix(0, 0))
	reg := obs.NewRegistry()
	c := testCoord(t, 2, clk, func(cfg *CoordinatorConfig) { cfg.Metrics = reg })

	leases := map[string]string{}
	push := func(worker string, pairs int64) {
		if _, ok := leases[worker]; !ok {
			leases[worker] = mustLease(t, c, worker).LeaseID
		}
		wreg := obs.NewRegistry()
		wreg.Counter("bulk_pairs_total").Add(pairs)
		if _, err := c.Renew(ctx, RenewRequest{Worker: worker, Fingerprint: testFP, LeaseID: leases[worker], Metrics: wreg.Snapshot()}); err != nil {
			t.Fatal(err)
		}
	}
	push("w1", 5)
	push("w2", 11)
	snap := c.MergedSnapshot()
	if got := snap.Counters["bulk_pairs_total"]; got != 16 {
		t.Fatalf("merged bulk_pairs_total = %d, want 16", got)
	}
	if got := snap.Counters["fleet_leases_total"]; got != 2 {
		t.Fatalf("merged fleet_leases_total = %d, want 2", got)
	}
	// A re-push replaces that worker's snapshot (latest wins), it does
	// not double-count the worker's cumulative counters.
	push("w1", 5)
	snap = c.MergedSnapshot()
	if got := snap.Counters["bulk_pairs_total"]; got != 16 {
		t.Fatalf("merged bulk_pairs_total after re-push = %d, want 16", got)
	}
}
