package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"
)

// The HTTP form of the protocol: JSON bodies, protocol errors as JSON
// {"code","error"} with a status code per sentinel, so HTTPTransport
// reconstructs the exact sentinel on the worker side:
//
//	409 Conflict            ErrFingerprint
//	410 Gone                ErrExpired
//	422 Unprocessable       ErrIntegrity
//	400 Bad Request         malformed request (terminal-ish; worker bug)
//	500 Internal            anything else (retryable)

const (
	codeFingerprint = "fingerprint"
	codeExpired     = "expired"
	codeIntegrity   = "integrity"
)

type httpError struct {
	Code  string `json:"code,omitempty"`
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, err error) {
	he := httpError{Error: err.Error()}
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrFingerprint):
		status, he.Code = http.StatusConflict, codeFingerprint
	case errors.Is(err, ErrExpired):
		status, he.Code = http.StatusGone, codeExpired
	case errors.Is(err, ErrIntegrity):
		status, he.Code = http.StatusUnprocessableEntity, codeIntegrity
	}
	writeJSON(w, status, he)
}

// post adapts one coordinator method to an HTTP handler.
func post[Req, Resp any](f func(context.Context, Req) (*Resp, error)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeJSON(w, http.StatusMethodNotAllowed, httpError{Error: "POST only"})
			return
		}
		var req Req
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeJSON(w, http.StatusBadRequest, httpError{Error: fmt.Sprintf("bad request body: %v", err)})
			return
		}
		resp, err := f(r.Context(), req)
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, resp)
	})
}

// Handlers returns the coordinator's protocol routes, ready to mount on
// any mux (obs.StatusOptions.Handlers mounts them next to /metrics).
func (c *Coordinator) Handlers() map[string]http.Handler {
	return map[string]http.Handler{
		"/lease":    post(c.Lease),
		"/renew":    post(c.Renew),
		"/complete": post(c.Complete),
		"/fail":     post(c.Fail),
		"/fleet/status": http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			st, err := c.Status(r.Context())
			if err != nil {
				writeErr(w, err)
				return
			}
			writeJSON(w, http.StatusOK, st)
		}),
		"/fleet/cells": http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			cs, err := c.Cells(r.Context())
			if err != nil {
				writeErr(w, err)
				return
			}
			writeJSON(w, http.StatusOK, cs)
		}),
	}
}

// HTTPTransport speaks the coordinator's HTTP protocol.
type HTTPTransport struct {
	// Base is the coordinator's base URL, e.g. "http://10.0.0.1:9090".
	Base string
	// Client is the HTTP client; nil means http.DefaultClient.
	Client *http.Client
	// Timeout bounds each request (on top of the caller's ctx); 0 means
	// 5s. Every call must have a deadline — a hung coordinator must
	// surface as a retryable error, not a wedged worker.
	Timeout time.Duration
}

func (t *HTTPTransport) client() *http.Client {
	if t.Client != nil {
		return t.Client
	}
	return http.DefaultClient
}

func (t *HTTPTransport) timeout() time.Duration {
	if t.Timeout > 0 {
		return t.Timeout
	}
	return 5 * time.Second
}

// call POSTs in to path and decodes the reply into out, mapping
// protocol error codes back to sentinels.
func (t *HTTPTransport) call(ctx context.Context, method, path string, in, out any) error {
	ctx, cancel := context.WithTimeout(ctx, t.timeout())
	defer cancel()
	var body io.Reader
	if in != nil {
		buf, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("fleet: encode %s: %w", path, err)
		}
		body = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, t.Base+path, body)
	if err != nil {
		return fmt.Errorf("fleet: %s: %w", path, err)
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := t.client().Do(req)
	if err != nil {
		return fmt.Errorf("fleet: %s: %w", path, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return fmt.Errorf("fleet: %s: read: %w", path, err)
	}
	if resp.StatusCode != http.StatusOK {
		var he httpError
		_ = json.Unmarshal(data, &he)
		msg := he.Error
		if msg == "" {
			msg = fmt.Sprintf("HTTP %d", resp.StatusCode)
		}
		switch he.Code {
		case codeFingerprint:
			return fmt.Errorf("%w: %s", ErrFingerprint, msg)
		case codeExpired:
			return fmt.Errorf("%w: %s", ErrExpired, msg)
		case codeIntegrity:
			return fmt.Errorf("%w: %s", ErrIntegrity, msg)
		}
		return fmt.Errorf("fleet: %s: %s", path, msg)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			return fmt.Errorf("fleet: %s: decode: %w", path, err)
		}
	}
	return nil
}

func (t *HTTPTransport) Lease(ctx context.Context, req LeaseRequest) (*LeaseResponse, error) {
	var resp LeaseResponse
	if err := t.call(ctx, http.MethodPost, "/lease", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

func (t *HTTPTransport) Renew(ctx context.Context, req RenewRequest) (*RenewResponse, error) {
	var resp RenewResponse
	if err := t.call(ctx, http.MethodPost, "/renew", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

func (t *HTTPTransport) Complete(ctx context.Context, req CompleteRequest) (*CompleteResponse, error) {
	var resp CompleteResponse
	if err := t.call(ctx, http.MethodPost, "/complete", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

func (t *HTTPTransport) Fail(ctx context.Context, req FailRequest) (*FailResponse, error) {
	var resp FailResponse
	if err := t.call(ctx, http.MethodPost, "/fail", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

func (t *HTTPTransport) Status(ctx context.Context) (*StatusResponse, error) {
	var resp StatusResponse
	if err := t.call(ctx, http.MethodGet, "/fleet/status", nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}
