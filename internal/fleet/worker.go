package fleet

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"time"

	"bulkgcd/internal/bulk"
	"bulkgcd/internal/checkpoint"
	"bulkgcd/internal/mpnat"
	"bulkgcd/internal/obs"
)

// WorkerConfig configures one fleet worker process (or goroutine).
type WorkerConfig struct {
	// ID identifies this worker to the coordinator; it feeds the
	// poisoned-cell quorum, so two workers sharing an ID weaken the
	// policy. Required.
	ID string

	// Transport reaches the coordinator.
	Transport Transport

	// Moduli is the corpus — every worker loads the same one; the
	// fingerprint check turns any divergence into ErrFingerprint
	// instead of wrong findings.
	Moduli []*mpnat.Nat

	// Config is the bulk engine configuration the fleet run was planned
	// with (attack.Options.BulkConfig()). Checkpoint/Resume must be nil:
	// journaling is the coordinator's job.
	Config bulk.Config

	// Backoff shapes retries of coordinator calls.
	Backoff Backoff

	// SpillPath, when non-empty, is where a worker that loses the
	// coordinator mid-completion writes its orphaned record as a
	// single-record journal (header + record), so the work is not lost
	// — an operator can feed it back. Empty disables spilling.
	SpillPath string

	// Logf receives worker progress lines; nil discards them.
	Logf func(format string, args ...any)
}

// WorkerReport summarizes a worker's run.
type WorkerReport struct {
	// Completed counts cells this worker computed and had accepted.
	Completed int
	// Failed counts cells this worker reported as failed.
	Failed int
	// Abandoned counts cells whose lease was lost mid-compute (renewal
	// returned ErrExpired); their fate belongs to the re-lease holder.
	Abandoned int
	// CoordinatorLost is set when the worker exited because the
	// coordinator became unreachable.
	CoordinatorLost bool
	// Spilled is the path of the locally flushed record journal, when
	// the worker had a finished cell it could not deliver.
	Spilled string
	// Trace holds the worker's undelivered trace events — whatever was
	// buffered when the coordinator was lost (including the spill
	// event), so an operator can splice them into the fleet trace by
	// hand the same way a spilled record is fed back.
	Trace []obs.TraceEvent
}

// RunWorker runs the worker loop: lease a cell, heartbeat while
// computing it, complete (or fail) it, repeat until the coordinator
// reports the scan done. Faults degrade per the protocol contract:
// transient transport errors retry with backoff; a lost lease abandons
// the cell; a lost coordinator flushes locally and exits cleanly
// (CoordinatorLost set, nil error). The error return is reserved for
// misconfiguration (fingerprint mismatch, integrity violation) and
// ctx cancellation.
func RunWorker(ctx context.Context, cfg WorkerConfig) (*WorkerReport, error) {
	if cfg.ID == "" {
		return nil, fmt.Errorf("fleet: worker needs an ID")
	}
	if cfg.Transport == nil {
		return nil, fmt.Errorf("fleet: worker needs a transport")
	}
	if cfg.Config.Checkpoint != nil || cfg.Config.Resume != nil {
		return nil, fmt.Errorf("fleet: workers do not journal; set Checkpoint/Resume on the coordinator")
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	// The worker traces into an in-memory collector; buffered events are
	// shipped to the coordinator with each complete/fail RPC and merged
	// there into the fleet trace. The trace ID arrives with the first
	// lease; until then events carry only the node name.
	col := &obs.Collector{}
	tr := obs.NewTracerSink(col)
	tr.SetIdentity("", cfg.ID)
	cfg.Config.Trace = tr
	runner, err := bulk.NewCellRunner(cfg.Moduli, cfg.Config)
	if err != nil {
		return nil, err
	}
	fp := runner.Header().Fingerprint
	h := fnv.New64a()
	h.Write([]byte(cfg.ID))
	retry := newRetrier(cfg.Backoff, int64(h.Sum64()))
	retry.onRetry = func(op string, attempt int, err error) {
		tr.Event("retry", "op", op, "attempt", attempt, "err", err.Error())
	}
	rep := &WorkerReport{}
	ship := &shipper{col: col}

	for {
		if err := ctx.Err(); err != nil {
			return rep, err
		}
		var lease *LeaseResponse
		err := retry.do(ctx, "lease", func(ctx context.Context) error {
			var lerr error
			lease, lerr = cfg.Transport.Lease(ctx, LeaseRequest{Worker: cfg.ID, Fingerprint: fp})
			return lerr
		})
		switch {
		case errors.Is(err, ErrCoordinatorLost):
			logf("worker %s: coordinator unreachable with no held lease; exiting: %v", cfg.ID, err)
			rep.CoordinatorLost = true
			return rep, nil
		case err != nil:
			return rep, err
		}
		if lease.Done {
			logf("worker %s: scan complete (%d cells computed here)", cfg.ID, rep.Completed)
			return rep, nil
		}
		if lease.Wait {
			wait := time.Duration(lease.RetryMillis) * time.Millisecond
			if wait <= 0 {
				wait = 100 * time.Millisecond
			}
			select {
			case <-ctx.Done():
				return rep, ctx.Err()
			case <-time.After(wait):
			}
			continue
		}
		// Adopt the lease's trace context: the trace ID stamps every
		// event from here on, and cell spans parent under the
		// coordinator's run span.
		if lease.TraceID != "" {
			tr.SetIdentity(lease.TraceID, cfg.ID)
		}
		runner.SetSpanParent(lease.ParentSpan)

		rec, lost, err := computeCell(ctx, cfg, runner, retry, fp, lease, logf)
		if lost {
			rep.Abandoned++
			tr.Event("abandon", "cell", lease.Unit, "lease", lease.LeaseID)
			// Drop the abandoned cell's span (the re-lease holder owns the
			// cell; its span must not ride the next shipment) but keep
			// retry/abandon events.
			ship.requeue(dropCellSpan(ship.take(), lease.Unit))
			continue
		}
		if err != nil {
			if ctx.Err() != nil {
				return rep, ctx.Err()
			}
			// The cell itself failed: report it so the poisoned-cell
			// policy can count us, then move on.
			rep.Failed++
			logf("worker %s: cell %d failed: %v", cfg.ID, lease.Unit, err)
			tr.Event("cell_error", "cell", lease.Unit, "err", err.Error())
			batch := ship.take()
			ferr := retry.do(ctx, "fail", func(ctx context.Context) error {
				_, e := cfg.Transport.Fail(ctx, FailRequest{
					Worker: cfg.ID, Fingerprint: fp, LeaseID: lease.LeaseID,
					Unit: lease.Unit, Reason: err.Error(), Trace: batch,
				})
				return e
			})
			if errors.Is(ferr, ErrCoordinatorLost) {
				rep.CoordinatorLost = true
				rep.Trace = append(batch, ship.take()...)
				return rep, nil
			}
			if ferr != nil && !terminal(ferr) {
				return rep, ferr
			}
			continue
		}

		// Graceful degradation: deliver the finished cell even if the
		// lease lapsed meanwhile (completion is idempotent); if the
		// coordinator is gone, flush the record locally and exit cleanly.
		// The buffered trace batch rides the completion — re-sent
		// attempts carry the same batch, which the coordinator merges on
		// first acceptance only.
		batch := ship.take()
		cerr := retry.do(ctx, "complete", func(ctx context.Context) error {
			_, e := cfg.Transport.Complete(ctx, CompleteRequest{
				Worker: cfg.ID, Fingerprint: fp, LeaseID: lease.LeaseID, Record: rec,
				Trace: batch,
			})
			return e
		})
		switch {
		case cerr == nil:
			rep.Completed++
		case errors.Is(cerr, ErrCoordinatorLost):
			rep.CoordinatorLost = true
			if cfg.SpillPath != "" {
				if serr := spill(cfg.SpillPath, runner.Header(), rec); serr != nil {
					logf("worker %s: spill failed: %v", cfg.ID, serr)
				} else {
					rep.Spilled = cfg.SpillPath
					tr.Event("spill", "cell", rec.Unit, "path", cfg.SpillPath)
					logf("worker %s: coordinator lost; cell %d spilled to %s", cfg.ID, rec.Unit, cfg.SpillPath)
				}
			}
			rep.Trace = append(batch, ship.take()...)
			return rep, nil
		default:
			return rep, cerr // integrity/fingerprint or ctx error: surface it
		}
	}
}

// shipper accumulates trace events between RPC shipments: take drains
// the collector plus anything requeued, requeue puts kept events back
// at the front for the next shipment.
type shipper struct {
	col   *obs.Collector
	carry []obs.TraceEvent
}

func (s *shipper) take() []obs.TraceEvent {
	evs := append(s.carry, s.col.Drain()...)
	s.carry = nil
	return evs
}

func (s *shipper) requeue(evs []obs.TraceEvent) {
	s.carry = append(evs, s.carry...)
}

// dropCellSpan removes the given cell's span from a batch (abandoned
// cells must not contribute spans; the re-lease holder's completion
// will).
func dropCellSpan(evs []obs.TraceEvent, unit int) []obs.TraceEvent {
	out := evs[:0]
	for _, ev := range evs {
		if ev.Kind == "span" && ev.Name == "cell" {
			if u, ok := ev.Attrs["cell"]; ok && attrInt(u) == unit {
				continue
			}
		}
		out = append(out, ev)
	}
	return out
}

// attrInt normalizes a trace attribute that may be an int (in-process)
// or float64 (after a JSON round trip).
func attrInt(v any) int {
	switch n := v.(type) {
	case int:
		return n
	case int64:
		return int(n)
	case float64:
		return int(n)
	}
	return -1
}

// computeCell runs one leased cell under a heartbeat. It returns
// lost=true when the lease was discovered expired mid-compute (the
// result, if any, is abandoned — the re-lease holder owns the cell).
func computeCell(ctx context.Context, cfg WorkerConfig, runner *bulk.CellRunner, retry *retrier, fp string, lease *LeaseResponse, logf func(string, ...any)) (rec checkpoint.Record, lost bool, err error) {
	ttl := time.Duration(lease.TTLMillis) * time.Millisecond
	if ttl <= 0 {
		ttl = 10 * time.Second
	}
	hbStop := make(chan struct{})
	var hbLost bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(ttl / 3)
		defer t.Stop()
		for {
			select {
			case <-hbStop:
				return
			case <-ctx.Done():
				return
			case <-t.C:
				// One attempt per tick: a missed heartbeat is retried by
				// the next tick well before the TTL, and a dead
				// coordinator is discovered by the post-compute complete.
				rctx, cancel := context.WithTimeout(ctx, ttl/3)
				_, rerr := cfg.Transport.Renew(rctx, RenewRequest{
					Worker: cfg.ID, Fingerprint: fp, LeaseID: lease.LeaseID,
					Metrics:    cfg.Config.Metrics.Snapshot(),
					SentUnixMS: time.Now().UnixMilli(),
				})
				cancel()
				if terminal(rerr) {
					hbLost = true
					return
				}
			}
		}
	}()
	rec, err = runner.RunUnit(ctx, lease.Unit)
	close(hbStop)
	wg.Wait()
	if hbLost {
		// The lease is gone; even a successful record is abandoned —
		// completing would be accepted idempotently, but backing off
		// avoids racing the re-lease holder for nothing.
		logf("worker %s: lease on cell %d lost mid-compute; abandoning", cfg.ID, lease.Unit)
		return checkpoint.Record{}, true, nil
	}
	return rec, false, err
}

// spill writes a single-record journal so a finished-but-undeliverable
// cell survives the worker's exit.
func spill(path string, hdr checkpoint.Header, rec checkpoint.Record) error {
	w, err := checkpoint.Create(path)
	if err != nil {
		return err
	}
	if err := w.Begin(hdr); err != nil {
		w.Close()
		return err
	}
	if err := w.Append(rec); err != nil {
		w.Close()
		return err
	}
	return w.Close()
}
