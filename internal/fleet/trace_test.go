package fleet

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"bulkgcd/internal/bulk"
	"bulkgcd/internal/faultinject"
	"bulkgcd/internal/obs"
)

// traceIndex splits a merged fleet trace into the pieces the assertions
// care about.
type traceIndex struct {
	run       *obs.TraceEvent
	cellSpans []obs.TraceEvent
	spanIDs   map[string]bool
	events    map[string]int // point-event name -> count
}

func indexTrace(t *testing.T, evs []obs.TraceEvent) *traceIndex {
	t.Helper()
	idx := &traceIndex{spanIDs: map[string]bool{}, events: map[string]int{}}
	for i := range evs {
		ev := evs[i]
		switch ev.Kind {
		case "span":
			if ev.SpanID == "" {
				t.Fatalf("span %q has no ID", ev.Name)
			}
			if idx.spanIDs[ev.SpanID] {
				t.Fatalf("duplicate span ID %s", ev.SpanID)
			}
			idx.spanIDs[ev.SpanID] = true
			switch ev.Name {
			case "fleet_run":
				if idx.run != nil {
					t.Fatalf("two fleet_run spans")
				}
				idx.run = &evs[i]
			case "cell":
				idx.cellSpans = append(idx.cellSpans, ev)
			}
		case "event":
			idx.events[ev.Name]++
		default:
			t.Fatalf("unknown event kind %q", ev.Kind)
		}
	}
	return idx
}

// TestFleetTraceMergedParentage: a two-worker loopback scan with tracing
// on yields one merged stream holding the coordinator's run span and
// exactly one cell span per cell, each parented under the run span and
// carrying the shared trace ID and its worker's node name.
func TestFleetTraceMergedParentage(t *testing.T) {
	ms := fleetCorpus(t, 24, 2, 46)
	cfg := fleetConfig()
	hdr, err := bulk.HybridJournalHeader(ms, cfg)
	if err != nil {
		t.Fatal(err)
	}
	col := &obs.Collector{}
	coord, err := NewCoordinator(CoordinatorConfig{
		Header: hdr, LeaseTTL: time.Second, Metrics: obs.NewRegistry(),
		Trace: obs.NewTracerSink(col),
	})
	if err != nil {
		t.Fatal(err)
	}
	lb := NewLoopback(coord)
	ctx := context.Background()
	runFleet(t, ctx, coord, func(id string) WorkerConfig {
		wcfg := fleetConfig()
		wcfg.Metrics = obs.NewRegistry()
		// Pace the cells so both workers win leases (an unpaced 64-bit
		// corpus finishes before the second worker gets one).
		wcfg.Fault = &faultinject.Hook{Block: func(int) { time.Sleep(2 * time.Millisecond) }}
		return WorkerConfig{
			ID: id, Transport: lb, Moduli: ms, Config: wcfg,
			Backoff: Backoff{Base: time.Millisecond, Attempts: 5},
		}
	}, 2)

	idx := indexTrace(t, col.Drain())
	if idx.run == nil {
		t.Fatal("no fleet_run span in merged trace")
	}
	if idx.run.SpanID != "coordinator:1" {
		t.Fatalf("run span ID %q; the deterministic ID contract (first span on the coordinator) is broken", idx.run.SpanID)
	}
	if idx.run.Node != "coordinator" {
		t.Fatalf("run span node %q", idx.run.Node)
	}
	wantTrace := hdr.Fingerprint[:16]
	if idx.run.TraceID != wantTrace {
		t.Fatalf("run span trace %q, want fingerprint prefix %q", idx.run.TraceID, wantTrace)
	}
	if len(idx.cellSpans) != hdr.Units {
		t.Fatalf("%d cell spans for %d cells", len(idx.cellSpans), hdr.Units)
	}
	workers := map[string]int{}
	for _, cs := range idx.cellSpans {
		if cs.Parent != idx.run.SpanID {
			t.Fatalf("cell span %s parented under %q, want the run span %s", cs.SpanID, cs.Parent, idx.run.SpanID)
		}
		if cs.TraceID != wantTrace {
			t.Fatalf("cell span %s trace %q", cs.SpanID, cs.TraceID)
		}
		if cs.Node != "a" && cs.Node != "b" {
			t.Fatalf("cell span %s from unknown node %q", cs.SpanID, cs.Node)
		}
		if cs.Start == nil || cs.DurMS < 0 {
			t.Fatalf("cell span %s missing timing: %+v", cs.SpanID, cs)
		}
		workers[cs.Node]++
	}
	if len(workers) != 2 {
		t.Fatalf("cell spans from %d workers, want both: %v", len(workers), workers)
	}
	if idx.events["lease"] < hdr.Units {
		t.Fatalf("%d lease events for %d cells", idx.events["lease"], hdr.Units)
	}
}

// TestFleetCellsAttribution: after a clean scan every cell is attributed
// to the worker that computed it, with lease counts and wall time, and
// the per-worker aggregation adds back up to the grid. The same table is
// served as JSON at /fleet/cells.
func TestFleetCellsAttribution(t *testing.T) {
	ms := fleetCorpus(t, 24, 2, 47)
	cfg := fleetConfig()
	hdr, err := bulk.HybridJournalHeader(ms, cfg)
	if err != nil {
		t.Fatal(err)
	}
	coord, err := NewCoordinator(CoordinatorConfig{
		Header: hdr, LeaseTTL: time.Second, Metrics: obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	lb := NewLoopback(coord)
	ctx := context.Background()
	runFleet(t, ctx, coord, func(id string) WorkerConfig {
		wcfg := fleetConfig()
		wcfg.Metrics = obs.NewRegistry()
		return WorkerConfig{
			ID: id, Transport: lb, Moduli: ms, Config: wcfg,
			Backoff: Backoff{Base: time.Millisecond, Attempts: 5},
		}
	}, 2)

	cells, err := coord.Cells(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells.Cells) != hdr.Units {
		t.Fatalf("%d rows for %d cells", len(cells.Cells), hdr.Units)
	}
	var pairs int64
	for _, cs := range cells.Cells {
		if cs.State != "completed" {
			t.Fatalf("cell %d state %q after a clean scan", cs.Unit, cs.State)
		}
		if cs.Worker != "a" && cs.Worker != "b" {
			t.Fatalf("cell %d attributed to %q", cs.Unit, cs.Worker)
		}
		if cs.Leases < 1 {
			t.Fatalf("cell %d completed with %d leases", cs.Unit, cs.Leases)
		}
		if cs.WallSeconds <= 0 {
			t.Fatalf("cell %d wall time %v", cs.Unit, cs.WallSeconds)
		}
		pairs += cs.Pairs
	}
	if pairs != hdr.TotalPairs {
		t.Fatalf("attributed %d pairs, grid has %d", pairs, hdr.TotalPairs)
	}
	var completed int
	var wpairs int64
	for _, w := range cells.Workers {
		completed += w.Completed
		wpairs += w.Pairs
	}
	if completed != hdr.Units || wpairs != hdr.TotalPairs {
		t.Fatalf("worker aggregation: %d cells / %d pairs, want %d / %d",
			completed, wpairs, hdr.Units, hdr.TotalPairs)
	}

	// The HTTP view serves the same table.
	mux := http.NewServeMux()
	for pattern, h := range coord.Handlers() {
		mux.Handle(pattern, h)
	}
	srv := httptest.NewServer(mux)
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/fleet/cells")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/fleet/cells = %d", resp.StatusCode)
	}
	var wire CellsResponse
	if err := json.NewDecoder(resp.Body).Decode(&wire); err != nil {
		t.Fatal(err)
	}
	if len(wire.Cells) != hdr.Units || len(wire.Workers) != len(cells.Workers) {
		t.Fatalf("wire table: %d cells, %d workers", len(wire.Cells), len(wire.Workers))
	}
	if wire.TraceID != hdr.Fingerprint[:16] {
		t.Fatalf("wire trace ID %q", wire.TraceID)
	}
}

// TestFleetStragglerDetection scripts the straggler rule under the fake
// clock: three quick completions establish the median, then a cell held
// ten times longer is flagged exactly once, counted, remembered against
// its worker, and surfaced as a run-span event.
func TestFleetStragglerDetection(t *testing.T) {
	clk := NewFakeClock(time.Unix(1000, 0))
	reg := obs.NewRegistry()
	col := &obs.Collector{}
	coord, err := NewCoordinator(CoordinatorConfig{
		Header: testHeader(5), LeaseTTL: time.Hour, Metrics: reg,
		Clock: clk.Now, Trace: obs.NewTracerSink(col),
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Three one-second cells from worker "fast" set the median at 1s.
	for i := 0; i < 3; i++ {
		l, err := coord.Lease(ctx, LeaseRequest{Worker: "fast", Fingerprint: testFP})
		if err != nil {
			t.Fatal(err)
		}
		clk.Advance(time.Second)
		if _, err := coord.Complete(ctx, CompleteRequest{
			Worker: "fast", Fingerprint: testFP, LeaseID: l.LeaseID, Record: rec(l.Unit, 10),
		}); err != nil {
			t.Fatal(err)
		}
	}

	l, err := coord.Lease(ctx, LeaseRequest{Worker: "slow", Fingerprint: testFP})
	if err != nil {
		t.Fatal(err)
	}
	// 10s > 4 (default factor) x 1s median: the next sweep flags it.
	clk.Advance(10 * time.Second)
	if _, err := coord.Status(ctx); err != nil {
		t.Fatal(err)
	}

	if got := reg.Snapshot().Counters["fleet_stragglers_total"]; got != 1 {
		t.Fatalf("fleet_stragglers_total = %d, want 1", got)
	}
	cells, err := coord.Cells(ctx)
	if err != nil {
		t.Fatal(err)
	}
	var flagged int
	for _, cs := range cells.Cells {
		if cs.Straggler {
			flagged++
			if cs.Unit != l.Unit || cs.Worker != "slow" {
				t.Fatalf("straggler row %+v, want cell %d on slow", cs, l.Unit)
			}
		}
	}
	if flagged != 1 {
		t.Fatalf("%d cells flagged, want 1", flagged)
	}
	for _, w := range cells.Workers {
		if w.Worker == "slow" && w.Stragglers != 1 {
			t.Fatalf("slow worker straggler count %d", w.Stragglers)
		}
	}
	// Repeated sweeps must not double-count.
	clk.Advance(time.Second)
	if _, err := coord.Status(ctx); err != nil {
		t.Fatal(err)
	}
	if got := reg.Snapshot().Counters["fleet_stragglers_total"]; got != 1 {
		t.Fatalf("straggler double-counted: %d", got)
	}
	var straggleEvents int
	for _, ev := range col.Drain() {
		if ev.Kind == "event" && ev.Name == "straggler" {
			straggleEvents++
		}
	}
	if straggleEvents != 1 {
		t.Fatalf("%d straggler events, want 1", straggleEvents)
	}

	// The scheduler now prefers pairing "slow" with the remaining fresh
	// cell rather than re-handing it the flagged one after expiry.
	if _, err := coord.Lease(ctx, LeaseRequest{Worker: "slow", Fingerprint: testFP}); err != nil {
		t.Fatal(err)
	}
}

// TestFleetSkewEstimation: renew requests stamped with a skewed worker
// clock converge on the true offset, and merged trace events are shifted
// onto the coordinator's clock.
func TestFleetSkewEstimation(t *testing.T) {
	clk := NewFakeClock(time.Unix(5000, 0))
	col := &obs.Collector{}
	coord, err := NewCoordinator(CoordinatorConfig{
		Header: testHeader(2), LeaseTTL: time.Hour, Clock: clk.Now,
		Trace: obs.NewTracerSink(col),
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	l, err := coord.Lease(ctx, LeaseRequest{Worker: "w", Fingerprint: testFP})
	if err != nil {
		t.Fatal(err)
	}
	// The worker's clock runs 2s behind the coordinator's; renew samples
	// carry 30ms and 10ms of one-way latency — the minimum wins.
	const skew = 2 * time.Second
	for _, latency := range []time.Duration{30 * time.Millisecond, 10 * time.Millisecond} {
		sent := clk.Now().Add(-skew)
		clk.Advance(latency)
		if _, err := coord.Renew(ctx, RenewRequest{
			Worker: "w", Fingerprint: testFP, LeaseID: l.LeaseID,
			SentUnixMS: sent.UnixMilli(),
		}); err != nil {
			t.Fatal(err)
		}
	}
	cells, err := coord.Cells(ctx)
	if err != nil {
		t.Fatal(err)
	}
	var got int64
	for _, w := range cells.Workers {
		if w.Worker == "w" {
			got = w.SkewMillis
		}
	}
	if got != skew.Milliseconds()+10 {
		t.Fatalf("skew estimate %dms, want %dms (smallest latency sample)", got, skew.Milliseconds()+10)
	}

	// A shipped event stamped on the worker's (slow) clock lands on the
	// coordinator's timeline after the shift.
	workerTime := clk.Now().Add(-skew)
	if _, err := coord.Complete(ctx, CompleteRequest{
		Worker: "w", Fingerprint: testFP, LeaseID: l.LeaseID, Record: rec(l.Unit, 10),
		Trace: []obs.TraceEvent{{Time: workerTime, Kind: "event", Name: "marker", Node: "w"}},
	}); err != nil {
		t.Fatal(err)
	}
	var marker *obs.TraceEvent
	for _, ev := range col.Drain() {
		if ev.Name == "marker" {
			ev := ev
			marker = &ev
		}
	}
	if marker == nil {
		t.Fatal("shipped marker event not merged")
	}
	shift := marker.Time.Sub(workerTime)
	if shift != time.Duration(got)*time.Millisecond {
		t.Fatalf("merged event shifted by %v, want %v", shift, time.Duration(got)*time.Millisecond)
	}
}
