package fleet

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"bulkgcd/internal/bulk"
	"bulkgcd/internal/checkpoint"
	"bulkgcd/internal/faultinject"
	"bulkgcd/internal/gcd"
	"bulkgcd/internal/mpnat"
	"bulkgcd/internal/obs"
	"bulkgcd/internal/rsakey"
)

func fleetCorpus(t testing.TB, count, weak int, seed int64) []*mpnat.Nat {
	t.Helper()
	c, err := rsakey.GenerateCorpus(rsakey.CorpusSpec{Count: count, Bits: 64, WeakPairs: weak, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return c.Moduli()
}

func fleetConfig() bulk.Config {
	return bulk.Config{Algorithm: gcd.Approximate, Early: true, TileSize: 5}
}

// assertSameFactors compares findings field by field — the fleet's
// byte-identity contract against a single-process oracle.
func assertSameFactors(t *testing.T, got, want []bulk.Factor) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d factors, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].I != want[i].I || got[i].J != want[i].J || got[i].P.Hex() != want[i].P.Hex() {
			t.Fatalf("factor %d: (%d,%d,%s) != (%d,%d,%s)", i,
				got[i].I, got[i].J, got[i].P.Hex(), want[i].I, want[i].J, want[i].P.Hex())
		}
	}
}

// runFleet drives workers against a coordinator until the scan is done
// and returns the per-worker reports.
func runFleet(t *testing.T, ctx context.Context, c *Coordinator, mk func(id string) WorkerConfig, n int) []*WorkerReport {
	t.Helper()
	reports := make([]*WorkerReport, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cfg := mk(string(rune('a' + i)))
			reports[i], errs[i] = RunWorker(ctx, cfg)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	if err := c.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	return reports
}

// TestFleetEndToEndLoopback: three workers over the in-process
// transport compute the whole grid; the assembled result is identical
// to an uninterrupted local hybrid run, and the journal holds every
// cell exactly once.
func TestFleetEndToEndLoopback(t *testing.T) {
	ms := fleetCorpus(t, 30, 3, 41)
	cfg := fleetConfig()
	oracle, err := bulk.Hybrid(ms, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(oracle.Factors) == 0 {
		t.Fatal("oracle found nothing; corpus is useless")
	}
	hdr, err := bulk.HybridJournalHeader(ms, cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "fleet.jsonl")
	w, err := checkpoint.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	coord, err := NewCoordinator(CoordinatorConfig{
		Header: hdr, LeaseTTL: time.Second, Journal: w, Metrics: obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	lb := NewLoopback(coord)

	ctx := context.Background()
	reports := runFleet(t, ctx, coord, func(id string) WorkerConfig {
		return WorkerConfig{
			ID: id, Transport: lb, Moduli: ms, Config: fleetConfig(),
			Backoff: Backoff{Base: time.Millisecond, Attempts: 5},
		}
	}, 3)

	var completed int
	for _, r := range reports {
		completed += r.Completed
		if r.CoordinatorLost {
			t.Fatalf("report claims lost coordinator: %+v", r)
		}
	}
	if completed != hdr.Units {
		t.Fatalf("workers completed %d cells, grid has %d", completed, hdr.Units)
	}

	runner, err := bulk.NewCellRunner(ms, fleetConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := runner.Assemble(coord.Records())
	if err != nil {
		t.Fatal(err)
	}
	assertSameFactors(t, res.Factors, oracle.Factors)
	if res.Pairs != oracle.Pairs {
		t.Fatalf("pairs %d, oracle %d", res.Pairs, oracle.Pairs)
	}

	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	st, err := checkpoint.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Done) != hdr.Units || st.Ignored != 0 {
		t.Fatalf("journal: %d done of %d, %d ignored", len(st.Done), hdr.Units, st.Ignored)
	}
}

// TestFleetEndToEndHTTP: the same scan over real HTTP — the
// coordinator's handlers mounted on an obs status server (the
// production wiring), workers speaking HTTPTransport.
func TestFleetEndToEndHTTP(t *testing.T) {
	ms := fleetCorpus(t, 24, 2, 42)
	cfg := fleetConfig()
	oracle, err := bulk.Hybrid(ms, cfg)
	if err != nil {
		t.Fatal(err)
	}
	hdr, err := bulk.HybridJournalHeader(ms, cfg)
	if err != nil {
		t.Fatal(err)
	}
	coord, err := NewCoordinator(CoordinatorConfig{Header: hdr, LeaseTTL: time.Second, Metrics: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := obs.ServeStatusOptions("127.0.0.1:0", obs.StatusOptions{
		Registry: obs.NewRegistry(),
		Snapshot: coord.MergedSnapshot,
		Handlers: coord.Handlers(),
		Ready:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	ctx := context.Background()
	runFleet(t, ctx, coord, func(id string) WorkerConfig {
		return WorkerConfig{
			ID: id, Moduli: ms, Config: fleetConfig(),
			Transport: &HTTPTransport{Base: base, Timeout: 2 * time.Second},
			Backoff:   Backoff{Base: 5 * time.Millisecond, Attempts: 5},
		}
	}, 2)

	runner, err := bulk.NewCellRunner(ms, fleetConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := runner.Assemble(coord.Records())
	if err != nil {
		t.Fatal(err)
	}
	assertSameFactors(t, res.Factors, oracle.Factors)

	// The protocol endpoints coexist with the observability ones, and
	// /metrics serves the merged fleet snapshot.
	ht := &HTTPTransport{Base: base}
	st, err := ht.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Done || st.Completed != hdr.Units {
		t.Fatalf("status after scan: %+v", st)
	}
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics = %d", resp.StatusCode)
	}
}

// TestFleetHTTPErrorMapping: protocol sentinels survive the HTTP round
// trip, so worker retry classification works across the wire.
func TestFleetHTTPErrorMapping(t *testing.T) {
	hdr := testHeader(2)
	coord, err := NewCoordinator(CoordinatorConfig{Header: hdr})
	if err != nil {
		t.Fatal(err)
	}
	mux := http.NewServeMux()
	for pattern, h := range coord.Handlers() {
		mux.Handle(pattern, h)
	}
	srv := httptest.NewServer(mux)
	defer srv.Close()
	tr := &HTTPTransport{Base: srv.URL, Timeout: time.Second}
	ctx := context.Background()

	if _, err := tr.Lease(ctx, LeaseRequest{Worker: "w", Fingerprint: "bad"}); !errors.Is(err, ErrFingerprint) {
		t.Fatalf("fingerprint over HTTP: %v", err)
	}
	if _, err := tr.Renew(ctx, RenewRequest{Worker: "w", Fingerprint: testFP, LeaseID: "999"}); !errors.Is(err, ErrExpired) {
		t.Fatalf("expired over HTTP: %v", err)
	}
	l, err := tr.Lease(ctx, LeaseRequest{Worker: "w", Fingerprint: testFP})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Complete(ctx, CompleteRequest{Worker: "w", Fingerprint: testFP, Record: rec(l.Unit, 7)}); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Complete(ctx, CompleteRequest{Worker: "w2", Fingerprint: testFP, Record: rec(l.Unit, 8)}); !errors.Is(err, ErrIntegrity) {
		t.Fatalf("integrity over HTTP: %v", err)
	}
}

// TestFleetWorkerGracefulDegradation: a worker whose coordinator
// vanishes after it finished computing a cell spills the record locally
// and exits cleanly — no error, no wedge, work preserved.
func TestFleetWorkerGracefulDegradation(t *testing.T) {
	ms := fleetCorpus(t, 12, 1, 43)
	cfg := fleetConfig()
	hdr, err := bulk.HybridJournalHeader(ms, cfg)
	if err != nil {
		t.Fatal(err)
	}
	coord, err := NewCoordinator(CoordinatorConfig{Header: hdr, LeaseTTL: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	lb := NewLoopback(coord)
	// The coordinator dies the moment the first completion arrives.
	tr := &dyingTransport{Loopback: lb}

	spillPath := filepath.Join(t.TempDir(), "spill.jsonl")
	rep, err := RunWorker(context.Background(), WorkerConfig{
		ID: "survivor", Transport: tr, Moduli: ms, Config: fleetConfig(),
		Backoff:   Backoff{Base: time.Millisecond, Attempts: 3},
		SpillPath: spillPath,
	})
	if err != nil {
		t.Fatalf("graceful degradation must not error: %v", err)
	}
	if !rep.CoordinatorLost || rep.Spilled != spillPath {
		t.Fatalf("report = %+v", rep)
	}
	st, err := checkpoint.Load(spillPath)
	if err != nil {
		t.Fatalf("spilled journal unreadable: %v", err)
	}
	if err := st.Verify(hdr); err != nil {
		t.Fatalf("spilled journal has wrong identity: %v", err)
	}
	if len(st.Done) != 1 {
		t.Fatalf("spilled %d records, want the held cell", len(st.Done))
	}
}

// dyingTransport kills the coordinator at the first Complete.
type dyingTransport struct {
	*Loopback
	once sync.Once
}

func (d *dyingTransport) Complete(ctx context.Context, req CompleteRequest) (*CompleteResponse, error) {
	d.once.Do(func() { d.SetDown(true) })
	return d.Loopback.Complete(ctx, req)
}

// TestFleetWorkerFingerprintMismatch: a worker configured differently
// from the run (different tile size → different grid) is rejected
// before it can contribute a single record.
func TestFleetWorkerFingerprintMismatch(t *testing.T) {
	ms := fleetCorpus(t, 12, 0, 44)
	hdr, err := bulk.HybridJournalHeader(ms, fleetConfig())
	if err != nil {
		t.Fatal(err)
	}
	coord, err := NewCoordinator(CoordinatorConfig{Header: hdr})
	if err != nil {
		t.Fatal(err)
	}
	wrong := fleetConfig()
	wrong.TileSize = 3
	_, err = RunWorker(context.Background(), WorkerConfig{
		ID: "misfit", Transport: NewLoopback(coord), Moduli: ms, Config: wrong,
		Backoff: Backoff{Base: time.Millisecond, Attempts: 2},
	})
	if !errors.Is(err, ErrFingerprint) {
		t.Fatalf("mismatched worker: %v", err)
	}
}

// TestFleetPoisonedCellEndToEnd: a cell that panics on every worker is
// quarantined by the distinct-worker quorum and the scan still
// terminates, with every other cell completed.
func TestFleetPoisonedCellEndToEnd(t *testing.T) {
	ms := fleetCorpus(t, 20, 0, 45)
	cfg := fleetConfig()
	hdr, err := bulk.HybridJournalHeader(ms, cfg)
	if err != nil {
		t.Fatal(err)
	}
	coord, err := NewCoordinator(CoordinatorConfig{Header: hdr, LeaseTTL: time.Second, FailQuorum: 2})
	if err != nil {
		t.Fatal(err)
	}
	lb := NewLoopback(coord)
	const poisoned = 0
	ctx := context.Background()
	runFleet(t, ctx, coord, func(id string) WorkerConfig {
		wcfg := fleetConfig()
		wcfg.Fault = &faultinject.Hook{Block: func(u int) {
			if u == poisoned {
				panic("poisoned cell")
			}
		}}
		wcfg.Config.Metrics = obs.NewRegistry()
		return WorkerConfig{
			ID: id, Transport: lb, Moduli: ms, Config: wcfg,
			Backoff: Backoff{Base: time.Millisecond, Attempts: 5},
		}
	}, 3)

	bad := coord.BadCells()
	if len(bad) != 1 || bad[poisoned] == "" {
		t.Fatalf("BadCells() = %v", bad)
	}
	st, err := coord.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Done || st.Completed != hdr.Units-1 || st.Quarantined != 1 {
		t.Fatalf("status = %+v", st)
	}
}
