package fleet

import (
	"sync"
	"time"
)

// FakeClock is an injectable clock for deterministic lease-expiry
// tests: the coordinator's notion of "now" advances only when the test
// says so, making "renewal racing expiry" an exact scenario instead of
// a sleep-and-hope one.
type FakeClock struct {
	mu sync.Mutex
	t  time.Time
}

// NewFakeClock starts a clock at t.
func NewFakeClock(t time.Time) *FakeClock {
	return &FakeClock{t: t}
}

// Now returns the current fake time; pass the method value as the
// coordinator's Clock.
func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

// Advance moves the clock forward by d.
func (c *FakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}
