package fleet

import "bulkgcd/internal/obs"

// Metric documentation, registered from init so the coordinator's
// /metrics carries `# HELP` lines and the doc-parity test can diff this
// inventory against DESIGN.md.
func init() {
	for name, help := range map[string]string{
		"fleet_leases_total":                "cell leases granted",
		"fleet_renewals_total":              "lease heartbeats accepted",
		"fleet_completions_total":           "cells completed and accepted",
		"fleet_duplicate_completions_total": "idempotent re-deliveries of an already-completed cell",
		"fleet_cell_failures_total":         "cell failure reports accepted",
		"fleet_lease_expirations_total":     "leases reclaimed after a missed TTL",
		"fleet_integrity_errors_total":      "completions rejected for record mismatch",
		"fleet_quarantined_cells_total":     "cells quarantined by the failure quorum",
		"fleet_pairs_completed_total":       "pairs covered by accepted completions",
		"fleet_stragglers_total":            "leased cells flagged as stragglers",
	} {
		obs.RegisterHelp(name, help)
	}
}
