package fleet

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// TestBackoffDelay: exponential growth from Base, capped at Max, with
// jitter bounded to ±Jitter around the deterministic value.
func TestBackoffDelay(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Max: time.Second, Factor: 2, Jitter: 0, Attempts: 10}.withDefaults()
	rng := rand.New(rand.NewSource(1))
	want := []time.Duration{
		100 * time.Millisecond, // attempt 1 (first retry)
		200 * time.Millisecond,
		400 * time.Millisecond,
		800 * time.Millisecond,
		time.Second, // capped
		time.Second,
	}
	for i, w := range want {
		if got := b.delay(i+1, rng); got != w {
			t.Errorf("delay(%d) = %v, want %v", i+1, got, w)
		}
	}

	j := Backoff{Base: 100 * time.Millisecond, Max: 10 * time.Second, Factor: 2, Jitter: 0.2, Attempts: 10}.withDefaults()
	exact := j
	exact.Jitter = 0
	for i := 1; i < 6; i++ {
		base := exact.delay(i, rng)
		got := j.delay(i, rng)
		lo := time.Duration(float64(base) * 0.8)
		hi := time.Duration(float64(base) * 1.2)
		if got < lo || got > hi {
			t.Errorf("jittered delay(%d) = %v outside [%v, %v]", i, got, lo, hi)
		}
	}
}

// TestRetrierClassification: transient errors burn attempts and end in
// ErrCoordinatorLost; terminal protocol errors short-circuit; ctx
// cancellation wins over everything.
func TestRetrierClassification(t *testing.T) {
	ctx := context.Background()
	fast := Backoff{Base: time.Microsecond, Max: time.Microsecond, Attempts: 4}

	calls := 0
	err := newRetrier(fast, 1).do(ctx, "lease", func(context.Context) error {
		calls++
		return fmt.Errorf("connection refused")
	})
	if !errors.Is(err, ErrCoordinatorLost) || calls != 4 {
		t.Fatalf("transient exhaustion: %v after %d calls", err, calls)
	}

	calls = 0
	err = newRetrier(fast, 1).do(ctx, "renew", func(context.Context) error {
		calls++
		return fmt.Errorf("wrap: %w", ErrExpired)
	})
	if !errors.Is(err, ErrExpired) || calls != 1 {
		t.Fatalf("terminal error: %v after %d calls", err, calls)
	}

	calls = 0
	err = newRetrier(fast, 1).do(ctx, "complete", func(context.Context) error {
		calls++
		if calls < 3 {
			return fmt.Errorf("flaky")
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("eventual success: %v after %d calls", err, calls)
	}

	canceled, cancel := context.WithCancel(ctx)
	cancel()
	err = newRetrier(fast, 1).do(canceled, "fail", func(context.Context) error { return fmt.Errorf("x") })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled ctx: %v", err)
	}
}
