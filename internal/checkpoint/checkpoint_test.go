package checkpoint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func header() Header {
	return Header{V: Version, Engine: "allpairs", Fingerprint: "abc123", Units: 4, TotalPairs: 100}
}

func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(Record{Unit: 0}); err == nil {
		t.Fatal("Append before Begin accepted")
	}
	if err := w.Begin(header()); err != nil {
		t.Fatal(err)
	}
	if err := w.Begin(header()); err == nil {
		t.Fatal("second Begin accepted")
	}
	recs := []Record{
		{Unit: 0, Pairs: 10, Factors: []Factor{{I: 1, J: 2, P: "ff"}}},
		{Unit: 2, Pairs: 30, Bad: []BadPair{{I: 3, J: 4, Err: "boom"}}},
	}
	for _, r := range recs {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal("Close not idempotent:", err)
	}

	st, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Header != header() {
		t.Fatalf("header = %+v", st.Header)
	}
	if err := st.Verify(header()); err != nil {
		t.Fatal(err)
	}
	if len(st.Done) != 2 || st.Ignored != 0 {
		t.Fatalf("done %d ignored %d", len(st.Done), st.Ignored)
	}
	if got := st.Done[0].Factors[0]; got != (Factor{I: 1, J: 2, P: "ff"}) {
		t.Fatalf("factor = %+v", got)
	}
	if got := st.Done[2].Bad[0]; got != (BadPair{I: 3, J: 4, Err: "boom"}) {
		t.Fatalf("bad = %+v", got)
	}
	if st.Pairs() != 40 {
		t.Fatalf("Pairs() = %d", st.Pairs())
	}
}

func TestVerifyMismatch(t *testing.T) {
	st := &State{Header: header()}
	h := header()
	h.Fingerprint = "different"
	if err := st.Verify(h); err == nil {
		t.Error("fingerprint mismatch accepted")
	}
	h = header()
	h.Units = 5
	if err := st.Verify(h); err == nil {
		t.Error("unit-count mismatch accepted")
	}
	// Verify normalizes V itself: callers build headers without it.
	h = header()
	h.V = 0
	if err := st.Verify(h); err != nil {
		t.Errorf("version auto-fill failed: %v", err)
	}
}

// TestTornTrailingLine: a crash mid-write leaves a torn final line; Load
// must skip it and OpenAppend must start cleanly on a fresh line.
func TestTornTrailingLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Begin(header()); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(Record{Unit: 1, Pairs: 7}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate the torn write.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"unit":2,"pa`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	st, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Done) != 1 || st.Ignored != 1 {
		t.Fatalf("done %d ignored %d, want 1/1", len(st.Done), st.Ignored)
	}

	// Appending after the torn line must not corrupt the next record.
	w2, err := OpenAppend(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.Begin(header()); err != nil {
		t.Fatal(err)
	}
	if err := w2.Append(Record{Unit: 3, Pairs: 9}); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	st, err = Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Done) != 2 || st.Done[3].Pairs != 9 {
		t.Fatalf("after append: %+v", st.Done)
	}
}

// TestOpenAppendHeaderMismatch: appending under a different run's header
// must fail at Begin, before any record is written.
func TestOpenAppendHeaderMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Begin(header()); err != nil {
		t.Fatal(err)
	}
	w.Close()

	w2, err := OpenAppend(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	h := header()
	h.Fingerprint = "other"
	if err := w2.Begin(h); err == nil || !strings.Contains(err.Error(), "different run") {
		t.Fatalf("foreign header accepted: %v", err)
	}
}

// TestOpenAppendMissingFile behaves like Create.
func TestOpenAppendMissingFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "new.jsonl")
	w, err := OpenAppend(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Begin(header()); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(Record{Unit: 0, Pairs: 1}); err != nil {
		t.Fatal(err)
	}
	w.Close()
	st, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Done) != 1 {
		t.Fatalf("done = %+v", st.Done)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "garbage.jsonl")
	if err := os.WriteFile(path, []byte("not json\nstill not\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Error("headerless journal accepted")
	}
	if _, err := Load(filepath.Join(dir, "missing.jsonl")); err == nil {
		t.Error("missing file accepted")
	}
}

// TestDuplicateAndOutOfRangeRecords: first occurrence wins; units outside
// the header's range are ignored rather than trusted.
func TestDuplicateAndOutOfRangeRecords(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	content := `{"v":1,"engine":"allpairs","fingerprint":"abc123","units":4,"total_pairs":100}
{"unit":1,"pairs":5}
{"unit":1,"pairs":50}
{"unit":9,"pairs":1}
{"unit":-1,"pairs":1}
`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Done) != 1 || st.Done[1].Pairs != 5 {
		t.Fatalf("done = %+v", st.Done)
	}
	if st.Ignored != 2 {
		t.Fatalf("ignored = %d, want 2", st.Ignored)
	}
}

func compactJournal(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "compact.jsonl")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Begin(header()); err != nil {
		t.Fatal(err)
	}
	// Duplicate records (re-leased completes), a BadCell quarantine, and a
	// torn final line: everything a long fleet run accumulates.
	recs := []Record{
		{Unit: 0, Pairs: 10, Factors: []Factor{{I: 1, J: 2, P: "ff"}}},
		{Unit: 1, Pairs: 20},
		{Unit: 0, Pairs: 10, Factors: []Factor{{I: 1, J: 2, P: "ff"}}},
		{Unit: 1, Pairs: 20},
		{Unit: 2, BadCell: "failed on 3 workers"},
	}
	for _, r := range recs {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data = append(data, []byte(`{"unit":3,"pairs":4`)...) // torn crash fragment
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompact(t *testing.T) {
	path := compactJournal(t)
	before, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if before.Ignored != 1 {
		t.Fatalf("Ignored = %d, want the torn fragment", before.Ignored)
	}
	dropped, err := Compact(path)
	if err != nil {
		t.Fatal(err)
	}
	// 2 duplicate records + 1 torn fragment.
	if dropped != 3 {
		t.Fatalf("dropped = %d, want 3", dropped)
	}
	after, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if after.Header != before.Header {
		t.Fatalf("header changed: %+v", after.Header)
	}
	if len(after.Done) != len(before.Done) || after.Ignored != 0 {
		t.Fatalf("done %d ignored %d after compaction", len(after.Done), after.Ignored)
	}
	for u, rec := range before.Done {
		got := after.Done[u]
		if got.Pairs != rec.Pairs || len(got.Factors) != len(rec.Factors) || got.BadCell != rec.BadCell {
			t.Fatalf("unit %d: %+v != %+v", u, got, rec)
		}
	}
	if q := after.Quarantined(); len(q) != 1 || q[2] != "failed on 3 workers" {
		t.Fatalf("Quarantined() = %v", q)
	}
	// The compacted journal accepts appends like any other.
	w, err := OpenAppend(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Begin(header()); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(Record{Unit: 3, Pairs: 40}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	final, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(final.Done) != 4 {
		t.Fatalf("done = %d after post-compaction append", len(final.Done))
	}
}

// TestCompactTornWrite simulates a crash during a previous compaction: a
// stale, torn temporary file sits next to the journal. The original
// journal must stay fully readable, and a fresh Compact must succeed,
// truncating the stale temporary.
func TestCompactTornWrite(t *testing.T) {
	path := compactJournal(t)
	want, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	// The interrupted compaction tore mid-record and never renamed.
	torn := `{"v":1,"engine":"allpairs","fingerprint":"abc123","units":4,"total_pairs":100}` + "\n" + `{"unit":0,"pa`
	if err := os.WriteFile(path+".compact", []byte(torn), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Done) != len(want.Done) {
		t.Fatalf("journal damaged by torn compaction temp: %d done, want %d", len(got.Done), len(want.Done))
	}
	if _, err := Compact(path); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".compact"); !os.IsNotExist(err) {
		t.Fatalf("stale temp survived compaction: %v", err)
	}
	after, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(after.Done) != len(want.Done) || after.Ignored != 0 {
		t.Fatalf("done %d ignored %d after recovery compaction", len(after.Done), after.Ignored)
	}
}

// TestGrowChain: a growable journal over an append-only corpus must
// resume after the corpus has grown (records bind to the prefix chain,
// not a whole-corpus digest), survive a torn final append, and reject
// records whose chain disagrees with the replayed corpus.
func TestGrowChain(t *testing.T) {
	path := filepath.Join(t.TempDir(), "grow.jsonl")
	hdr := Header{V: Version, Engine: "registry", Fingerprint: "seed-1", Units: 1, Grow: true}
	corpus := [][]byte{[]byte("n0"), []byte("n1"), []byte("n2")}

	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Begin(hdr); err != nil {
		t.Fatal(err)
	}
	c := NewChain(hdr.Fingerprint)
	for i, entry := range corpus {
		if err := w.Append(Record{Unit: i, Pairs: 1, Chain: c.Extend(entry)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a crash tearing the final append.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"unit":3,"chain":"dead`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Resume with a grown corpus: the old records must all verify, and
	// the torn fragment is ignored, not trusted.
	grown := append(append([][]byte{}, corpus...), []byte("n3"), []byte("n4"))
	st, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Ignored != 1 {
		t.Fatalf("Ignored = %d, want the torn fragment", st.Ignored)
	}
	ok, err := st.VerifyChain(hdr.Fingerprint, grown)
	if err != nil {
		t.Fatal(err)
	}
	if len(ok) != len(corpus) {
		t.Fatalf("verified %d records, want %d", len(ok), len(corpus))
	}

	// Appending after the torn line under the same constant header works;
	// units beyond the creation-time count are accepted because Grow is set.
	w2, err := OpenAppend(path)
	if err != nil {
		t.Fatal(err)
	}
	if prior := w2.Prior(); prior == nil || !prior.Grow {
		t.Fatalf("Prior() = %+v, want growable header", prior)
	}
	if err := w2.Begin(hdr); err != nil {
		t.Fatal(err)
	}
	c2 := NewChain(hdr.Fingerprint)
	for _, entry := range corpus {
		c2.Extend(entry)
	}
	for i := len(corpus); i < len(grown); i++ {
		if err := w2.Append(Record{Unit: i, Pairs: 1, Chain: c2.Extend(grown[i])}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	st, err = Load(path)
	if err != nil {
		t.Fatal(err)
	}
	ok, err = st.VerifyChain(hdr.Fingerprint, grown)
	if err != nil {
		t.Fatal(err)
	}
	if len(ok) != len(grown) {
		t.Fatalf("verified %d records after growth, want %d", len(ok), len(grown))
	}

	// An edited corpus diverges at the first changed entry: everything
	// from there on is recomputed, not trusted.
	edited := append([][]byte{}, grown...)
	edited[1] = []byte("tampered")
	ok, err = st.VerifyChain(hdr.Fingerprint, edited)
	if err != nil {
		t.Fatal(err)
	}
	if len(ok) != 1 {
		t.Fatalf("verified %d records over edited corpus, want 1 (unit 0 only)", len(ok))
	}
	if _, hasUnit0 := ok[0]; !hasUnit0 {
		t.Fatal("unit 0 (unedited prefix) should still verify")
	}

	// A non-growable journal refuses chain verification outright.
	fixed := &State{Header: header()}
	if _, err := fixed.VerifyChain("seed", nil); err == nil {
		t.Fatal("VerifyChain accepted a non-growable journal")
	}
}

func TestCompactErrors(t *testing.T) {
	if _, err := Compact(filepath.Join(t.TempDir(), "missing.jsonl")); err == nil {
		t.Fatal("Compact accepted a missing journal")
	}
	bad := filepath.Join(t.TempDir(), "bad.jsonl")
	if err := os.WriteFile(bad, []byte("not a journal\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Compact(bad); err == nil || !strings.Contains(err.Error(), "header") {
		t.Fatalf("Compact on headerless file: %v", err)
	}
}
