// Package checkpoint implements the crash-safe journal that lets a
// long-running bulk GCD scan survive interruption: the engine appends one
// JSONL record per completed work unit (an all-pairs block or an
// incremental stripe), and a resumed run reloads the journal, verifies
// that it belongs to the same corpus and configuration via a fingerprint,
// and skips the recorded units while merging their findings.
//
// Journal format (one JSON value per line):
//
//	{"v":1,"engine":"allpairs","fingerprint":"<sha256 hex>","units":N,"total_pairs":P}
//	{"unit":3,"pairs":2016,"factors":[{"i":1,"j":5,"p":"<hex>"}]}
//	{"unit":0,"pairs":2016,"bad":[{"i":2,"j":9,"err":"..."}]}
//	...
//
// Each record line is written with a single write call after its unit
// fully completes, so a unit's done-ness and its findings are atomic: a
// crash can at worst tear the final line, which Load ignores (the unit is
// simply recomputed). Appending to a journal whose last line is torn is
// safe too: the writer starts on a fresh line, and the torn fragment is
// skipped on the next load.
package checkpoint

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"
)

// Version is the journal format version written into headers.
const Version = 1

// Header identifies the run a journal belongs to. Fingerprint binds the
// corpus and every configuration knob that changes the unit decomposition
// or the findings; the engines compute it (see bulk.JournalHeader).
type Header struct {
	V           int    `json:"v"`
	Engine      string `json:"engine"`
	Fingerprint string `json:"fingerprint"`
	// Units is the number of work units the run is divided into. In a
	// growable journal (Grow set) it is only the count at creation time:
	// records beyond it are accepted, because an append-only corpus keeps
	// creating new units after the header was written.
	Units int `json:"units"`
	// TotalPairs is the number of pair GCDs of the full run.
	TotalPairs int64 `json:"total_pairs"`
	// Grow marks an append-only journal over a growing corpus: the
	// Fingerprint is a prefix hash chain seed (see Chain) rather than a
	// whole-corpus digest, so a corpus that has grown since the journal
	// was written still verifies — the historical prefix is bound
	// record-by-record through Record.Chain instead of all-at-once.
	Grow bool `json:"grow,omitempty"`
}

// Factor is one journaled finding: gcd(n_I, n_J) = P (hex) > 1.
type Factor struct {
	I int    `json:"i"`
	J int    `json:"j"`
	P string `json:"p"`
}

// BadPair is one journaled quarantined pair (the GCD kernel panicked).
type BadPair struct {
	I   int    `json:"i"`
	J   int    `json:"j"`
	Err string `json:"err"`
}

// Record reports one fully completed work unit — or, when BadCell is
// non-empty, one unit the fleet coordinator quarantined instead of
// completing (the unit failed on enough distinct workers that retrying
// forever would wedge the scan). A BadCell record accounts no pairs and
// carries no findings; local resume skips it so the unit is recomputed.
type Record struct {
	Unit    int       `json:"unit"`
	Pairs   int64     `json:"pairs"`
	Factors []Factor  `json:"factors,omitempty"`
	Bad     []BadPair `json:"bad,omitempty"`
	BadCell string    `json:"bad_cell,omitempty"`
	// Chain, in growable journals, is the prefix hash chain value after
	// the corpus entry this record covers (Chain.Sum after Extend number
	// Unit). A resumed run recomputes the chain over its corpus and
	// rejects any record whose Chain disagrees — so a journal verifies
	// against a corpus that has *grown* (every record matches a prefix
	// entry) but not against one that was edited or reordered.
	Chain string `json:"chain,omitempty"`
}

// Writer appends records to a journal file. It is safe for concurrent use
// by the engine's workers.
type Writer struct {
	mu    sync.Mutex
	f     *os.File
	path  string
	began bool
	// prior is the header already present in the file when appending to an
	// existing journal; Begin verifies against it instead of rewriting.
	prior *Header
}

// Create opens a fresh journal at path, truncating any existing file. The
// header is written by the engine via Begin.
func Create(path string) (*Writer, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	return &Writer{f: f, path: path}, nil
}

// OpenAppend opens path for appending, keeping existing records. If the
// file already holds a header, Begin verifies the engine's header against
// it; a missing file behaves like Create. If the existing content does not
// end with a newline (torn final line from a crash), one is inserted so
// new records start cleanly.
func OpenAppend(path string) (*Writer, error) {
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	w := &Writer{f: f, path: path}
	if len(data) > 0 {
		if data[len(data)-1] != '\n' {
			if _, err := f.Write([]byte("\n")); err != nil {
				f.Close()
				return nil, fmt.Errorf("checkpoint: %w", err)
			}
		}
		if hdr, _, _ := parse(data); hdr != nil {
			w.prior = hdr
		}
	}
	return w, nil
}

// Path returns the journal's file path.
func (w *Writer) Path() string { return w.path }

// Prior returns the header already stored in an appended-to journal, or
// nil on a fresh file. Growable-journal owners adopt it so Begin's
// equality check holds across reopens regardless of how far the corpus
// has grown since creation.
func (w *Writer) Prior() *Header {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.prior == nil {
		return nil
	}
	h := *w.prior
	return &h
}

// Begin records the run's header: on a fresh journal it is written as the
// first line; when appending to an existing journal it must match the
// stored header exactly.
func (w *Writer) Begin(h Header) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.began {
		return fmt.Errorf("checkpoint: Begin called twice")
	}
	h.V = Version
	if w.prior != nil {
		if *w.prior != h {
			return fmt.Errorf("checkpoint: journal %s belongs to a different run (fingerprint %.12s..., want %.12s...)",
				w.path, w.prior.Fingerprint, h.Fingerprint)
		}
		w.began = true
		return nil
	}
	if err := w.writeLine(h); err != nil {
		return err
	}
	w.began = true
	return nil
}

// Append journals one completed unit as a single write.
func (w *Writer) Append(rec Record) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if !w.began {
		return fmt.Errorf("checkpoint: Append before Begin")
	}
	return w.writeLine(rec)
}

func (w *Writer) writeLine(v any) error {
	line, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	line = append(line, '\n')
	if _, err := w.f.Write(line); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	return nil
}

// Sync flushes the journal to stable storage.
func (w *Writer) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.f.Sync()
}

// Close syncs and closes the journal file.
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	err := w.f.Sync()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.f = nil
	return err
}

// State is a loaded journal.
type State struct {
	Header Header
	// Done maps unit index to its record; when a unit appears more than
	// once the first occurrence wins.
	Done map[int]Record
	// Ignored counts unparsable lines that were skipped (a torn final line
	// after a crash is the normal cause).
	Ignored int
}

// Load reads and parses the journal at path. Unparsable lines are skipped
// (counted in Ignored): a skipped record only means its unit is recomputed.
func Load(path string) (*State, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	hdr, done, ignored := parse(data)
	if hdr == nil {
		return nil, fmt.Errorf("checkpoint: %s has no valid journal header", path)
	}
	return &State{Header: *hdr, Done: done, Ignored: ignored}, nil
}

// parse scans JSONL content: the first parsable header line, then records.
func parse(data []byte) (hdr *Header, done map[int]Record, ignored int) {
	done = map[int]Record{}
	for _, line := range bytes.Split(data, []byte("\n")) {
		line = bytes.TrimSpace(line)
		if len(line) == 0 {
			continue
		}
		if hdr == nil {
			var h Header
			if err := json.Unmarshal(line, &h); err == nil && h.Fingerprint != "" && h.Units > 0 {
				hdr = &h
				continue
			}
			ignored++
			continue
		}
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil || rec.Unit < 0 || (rec.Unit >= hdr.Units && !hdr.Grow) {
			ignored++
			continue
		}
		if _, dup := done[rec.Unit]; !dup {
			done[rec.Unit] = rec
		}
	}
	return hdr, done, ignored
}

// Verify checks that the journal belongs to the run described by h.
func (s *State) Verify(h Header) error {
	h.V = Version
	if s.Header != h {
		return fmt.Errorf("checkpoint: journal belongs to a different run: engine %q units %d fingerprint %.12s..., want engine %q units %d fingerprint %.12s...",
			s.Header.Engine, s.Header.Units, s.Header.Fingerprint, h.Engine, h.Units, h.Fingerprint)
	}
	return nil
}

// Pairs sums the pair counts of all recorded units.
func (s *State) Pairs() int64 {
	var n int64
	for _, rec := range s.Done {
		n += rec.Pairs
	}
	return n
}

// Quarantined returns the units recorded as BadCell, with reasons.
func (s *State) Quarantined() map[int]string {
	out := map[int]string{}
	for u, rec := range s.Done {
		if rec.BadCell != "" {
			out[u] = rec.BadCell
		}
	}
	return out
}

// Chain is a prefix hash chain over an append-only corpus:
//
//	h_0 = SHA256(seed)
//	h_i = SHA256(h_{i-1} || entry_i)
//
// A growable journal stores h_i (hex) in each record's Chain field. A
// resumed run replays its corpus through a fresh Chain and compares
// sums record by record: any prefix of the grown corpus verifies, while
// an edited, reordered, or truncated corpus diverges at the first
// changed entry. Chain is not safe for concurrent use; the owner
// extends it under its own corpus lock.
type Chain struct {
	sum [sha256.Size]byte
}

// NewChain starts a chain from seed (any stable run identifier; the
// growable journal's Header.Fingerprint by convention).
func NewChain(seed string) *Chain {
	c := &Chain{}
	c.sum = sha256.Sum256([]byte(seed))
	return c
}

// Extend absorbs the next corpus entry and returns the new chain value.
func (c *Chain) Extend(entry []byte) string {
	h := sha256.New()
	h.Write(c.sum[:])
	h.Write(entry)
	h.Sum(c.sum[:0])
	return c.Sum()
}

// Sum returns the current chain value in hex.
func (c *Chain) Sum() string { return hex.EncodeToString(c.sum[:]) }

// VerifyChain checks a loaded growable journal against the corpus
// entries of the current run, in order. It returns the records whose
// Chain matches the recomputed prefix chain, keyed by unit; records
// beyond the corpus (or with a mismatched chain value) are dropped,
// which means they are recomputed rather than trusted. An error is
// returned only if the journal is not a growable journal.
func (s *State) VerifyChain(seed string, entries [][]byte) (map[int]Record, error) {
	if !s.Header.Grow {
		return nil, fmt.Errorf("checkpoint: journal is not growable (header lacks grow flag)")
	}
	c := NewChain(seed)
	ok := make(map[int]Record, len(s.Done))
	for i, entry := range entries {
		want := c.Extend(entry)
		rec, found := s.Done[i]
		if !found {
			continue
		}
		if rec.Chain == want {
			ok[i] = rec
		}
	}
	return ok, nil
}

// Compact rewrites the journal at path to its canonical minimal form:
// the header followed by one record per unit, in unit order. Long
// resumed scans otherwise replay an unbounded append-only file full of
// torn fragments and duplicate records (duplicate completes, repeated
// resumes); compaction drops everything Load would ignore anyway. It
// returns the number of journal lines dropped.
//
// Compaction is crash-safe: the compacted journal is written to a
// temporary sibling file, synced, and renamed over path, so a crash at
// any point leaves either the original journal or the complete
// compacted one — never a torn mix. A stale temporary file from an
// earlier interrupted compaction is truncated and reused.
func Compact(path string) (dropped int, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, fmt.Errorf("checkpoint: compact: %w", err)
	}
	hdr, done, _ := parse(data)
	if hdr == nil {
		return 0, fmt.Errorf("checkpoint: compact: %s has no valid journal header", path)
	}
	lines := 0
	for _, line := range bytes.Split(data, []byte("\n")) {
		if len(bytes.TrimSpace(line)) > 0 {
			lines++
		}
	}
	dropped = lines - 1 - len(done)

	tmp := path + ".compact"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return 0, fmt.Errorf("checkpoint: compact: %w", err)
	}
	w := &Writer{f: f, path: tmp}
	if err := w.Begin(*hdr); err != nil {
		f.Close()
		os.Remove(tmp)
		return 0, err
	}
	units := make([]int, 0, len(done))
	for u := range done {
		units = append(units, u)
	}
	sort.Ints(units)
	for _, u := range units {
		if err := w.Append(done[u]); err != nil {
			f.Close()
			os.Remove(tmp)
			return 0, err
		}
	}
	if err := w.Close(); err != nil {
		os.Remove(tmp)
		return 0, fmt.Errorf("checkpoint: compact: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return 0, fmt.Errorf("checkpoint: compact: %w", err)
	}
	return dropped, nil
}
