// Package simt models SIMT (Single Instruction Multiple Threads)
// execution of the bulk GCD kernels, the effect Section VII of the paper
// uses to explain why Binary Euclidean degrades on the GPU:
//
//	"if CUDA C program has a branch using a if-else statement, then the
//	instructions for the true case are executed first and then those for
//	the false case are executed. [...] Binary Euclidean algorithm has a
//	if-else if-else statement to select one of the three cases [...] the
//	branch divergence degenerates the performance."
//
// The model: threads are grouped into warps; the iteration stream of each
// thread is the recorded gcd.IterShape trace; in every round, each warp
// executes the union of the branch bodies its active threads need, one
// body after another (inactive threads are masked). The cost of a body is
// its word work - the same accounting as Section IV - taken over the
// longest operands of the threads executing it, plus a fixed dispatch
// overhead. A fully converged warp therefore pays for exactly one body
// per round; a diverged warp for up to three (Binary) or two
// (Approximate's beta branch, which in practice never diverges: the
// beta > 0 probability is below 1e-8).
package simt

import (
	"fmt"

	"bulkgcd/internal/gcd"
)

// Machine is a SIMT configuration.
type Machine struct {
	// WarpSize is the number of threads executing in lockstep (32 on CUDA).
	WarpSize int
	// BranchOverhead is the fixed instruction cost charged per branch body
	// a warp executes in a round (dispatch, compare, mask bookkeeping).
	BranchOverhead int64
}

// New validates and returns a Machine.
func New(warpSize int, branchOverhead int64) (*Machine, error) {
	if warpSize < 1 {
		return nil, fmt.Errorf("simt: warp size %d < 1", warpSize)
	}
	if branchOverhead < 0 {
		return nil, fmt.Errorf("simt: negative branch overhead")
	}
	return &Machine{WarpSize: warpSize, BranchOverhead: branchOverhead}, nil
}

// variant identifies a branch body: the Branch plus Approximate's ExtraY
// distinction (the beta > 0 body is longer).
type variant struct {
	branch gcd.Branch
	extraY bool
}

// bodyCost is the word work of one branch body executed over the longest
// operands among the threads taking it - Section IV's counting.
func bodyCost(v variant, maxLX, maxLY int64) int64 {
	switch v.branch {
	case gcd.BranchHalveX:
		return 2 * maxLX
	case gcd.BranchHalveY:
		return 2 * maxLY
	default:
		c := 2*maxLX + maxLY
		if v.extraY {
			c += maxLY
		}
		return c
	}
}

// Result reports a SIMT simulation.
type Result struct {
	// Cycles is the total serialized cost over all warps and rounds.
	Cycles int64
	// IdealCycles is the cost if branch bodies within a round executed
	// concurrently (max instead of sum): the no-divergence floor.
	IdealCycles int64
	// Rounds counts warp-rounds executed (a warp active in a round = 1).
	Rounds int64
	// ConvergedRounds counts warp-rounds where all active threads took
	// the same branch body.
	ConvergedRounds int64
	// Bodies counts branch bodies executed; Bodies - Rounds is the number
	// of extra serialized bodies caused by divergence.
	Bodies int64
	// Threads and GCDs record the workload size.
	Threads int
}

// DivergencePenalty is Cycles / IdealCycles: 1.0 for perfectly converged
// execution, approaching the branch count of the kernel when every warp
// diverges every round.
func (r Result) DivergencePenalty() float64 {
	if r.IdealCycles == 0 {
		return 0
	}
	return float64(r.Cycles) / float64(r.IdealCycles)
}

// ConvergedFraction is the fraction of warp-rounds with no divergence.
func (r Result) ConvergedFraction() float64 {
	if r.Rounds == 0 {
		return 0
	}
	return float64(r.ConvergedRounds) / float64(r.Rounds)
}

// Run simulates the SIMT execution of one iteration-shape trace per
// thread.
func (m *Machine) Run(traces [][]gcd.IterShape) Result {
	res := Result{Threads: len(traces)}
	for base := 0; base < len(traces); base += m.WarpSize {
		end := base + m.WarpSize
		if end > len(traces) {
			end = len(traces)
		}
		m.runWarp(traces[base:end], &res)
	}
	return res
}

// runWarp accumulates one warp's serialized execution into res.
func (m *Machine) runWarp(warp [][]gcd.IterShape, res *Result) {
	// Find the longest thread; rounds run until all threads retire.
	maxIters := 0
	for _, tr := range warp {
		if len(tr) > maxIters {
			maxIters = len(tr)
		}
	}
	for round := 0; round < maxIters; round++ {
		// Gather the branch-body variants of the active threads and the
		// maximal operand lengths per variant.
		type ext struct{ lx, ly int64 }
		variants := map[variant]ext{}
		for _, tr := range warp {
			if round >= len(tr) {
				continue
			}
			sh := tr[round]
			v := variant{branch: sh.Branch, extraY: sh.ExtraY}
			e := variants[v]
			if int64(sh.LX) > e.lx {
				e.lx = int64(sh.LX)
			}
			if int64(sh.LY) > e.ly {
				e.ly = int64(sh.LY)
			}
			variants[v] = e
		}
		if len(variants) == 0 {
			continue
		}
		res.Rounds++
		if len(variants) == 1 {
			res.ConvergedRounds++
		}
		var sum, max int64
		for v, e := range variants {
			c := bodyCost(v, e.lx, e.ly) + m.BranchOverhead
			sum += c
			if c > max {
				max = c
			}
			res.Bodies++
		}
		res.Cycles += sum
		res.IdealCycles += max
	}
}
