package simt

import (
	"math/big"
	"math/rand"
	"testing"

	"bulkgcd/internal/gcd"
	"bulkgcd/internal/mpnat"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 1); err == nil {
		t.Error("warp size 0 accepted")
	}
	if _, err := New(32, -1); err == nil {
		t.Error("negative overhead accepted")
	}
	if _, err := New(32, 4); err != nil {
		t.Errorf("valid machine rejected: %v", err)
	}
}

func mustNew(t *testing.T, w int, ov int64) *Machine {
	t.Helper()
	m, err := New(w, ov)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestConvergedWarp: identical traces never diverge and pay the ideal cost.
func TestConvergedWarp(t *testing.T) {
	m := mustNew(t, 4, 2)
	trace := []gcd.IterShape{
		{LX: 4, LY: 4, Branch: gcd.BranchFull},
		{LX: 3, LY: 3, Branch: gcd.BranchFull},
	}
	traces := [][]gcd.IterShape{trace, trace, trace, trace}
	res := m.Run(traces)
	if res.ConvergedFraction() != 1.0 {
		t.Fatalf("identical traces diverged: %+v", res)
	}
	if res.DivergencePenalty() != 1.0 {
		t.Fatalf("penalty %v, want 1.0", res.DivergencePenalty())
	}
	// Round 1: 2*4+4 + 2 = 14; round 2: 2*3+3 + 2 = 11.
	if res.Cycles != 25 || res.IdealCycles != 25 {
		t.Fatalf("cycles = %d/%d, want 25/25", res.Cycles, res.IdealCycles)
	}
	if res.Rounds != 2 || res.Bodies != 2 {
		t.Fatalf("rounds/bodies = %d/%d, want 2/2", res.Rounds, res.Bodies)
	}
}

// TestDivergedWarp: three different branch bodies serialize.
func TestDivergedWarp(t *testing.T) {
	m := mustNew(t, 4, 0)
	traces := [][]gcd.IterShape{
		{{LX: 4, LY: 4, Branch: gcd.BranchFull}},   // cost 12
		{{LX: 4, LY: 4, Branch: gcd.BranchHalveX}}, // cost 8
		{{LX: 4, LY: 4, Branch: gcd.BranchHalveY}}, // cost 8
		{{LX: 2, LY: 2, Branch: gcd.BranchHalveX}}, // merges with HalveX, max lx=4
	}
	res := m.Run(traces)
	if res.Cycles != 12+8+8 {
		t.Fatalf("cycles = %d, want 28", res.Cycles)
	}
	if res.IdealCycles != 12 {
		t.Fatalf("ideal = %d, want 12", res.IdealCycles)
	}
	if res.Bodies != 3 || res.ConvergedRounds != 0 {
		t.Fatalf("bodies = %d converged = %d", res.Bodies, res.ConvergedRounds)
	}
	if p := res.DivergencePenalty(); p < 2.3 || p > 2.4 {
		t.Fatalf("penalty = %v, want 28/12", p)
	}
}

// TestExtraYIsADistinctBody: beta > 0 threads force a second body.
func TestExtraYIsADistinctBody(t *testing.T) {
	m := mustNew(t, 2, 0)
	traces := [][]gcd.IterShape{
		{{LX: 4, LY: 4, Branch: gcd.BranchFull}},
		{{LX: 4, LY: 4, Branch: gcd.BranchFull, ExtraY: true}},
	}
	res := m.Run(traces)
	// Bodies: 12 and 16 serialized.
	if res.Cycles != 28 || res.Bodies != 2 {
		t.Fatalf("cycles/bodies = %d/%d, want 28/2", res.Cycles, res.Bodies)
	}
}

// TestUnevenThreadLengths: retired threads stop contributing.
func TestUnevenThreadLengths(t *testing.T) {
	m := mustNew(t, 2, 0)
	traces := [][]gcd.IterShape{
		{{LX: 2, LY: 2, Branch: gcd.BranchFull}, {LX: 1, LY: 1, Branch: gcd.BranchFull}},
		{{LX: 2, LY: 2, Branch: gcd.BranchFull}},
	}
	res := m.Run(traces)
	// Round 1 converged (cost 6); round 2 only thread 0 (cost 3).
	if res.Cycles != 9 || res.Rounds != 2 || res.ConvergedRounds != 2 {
		t.Fatalf("got %+v", res)
	}
}

func TestMultipleWarps(t *testing.T) {
	m := mustNew(t, 2, 0)
	full := []gcd.IterShape{{LX: 1, LY: 1, Branch: gcd.BranchFull}}
	halve := []gcd.IterShape{{LX: 1, LY: 1, Branch: gcd.BranchHalveX}}
	// Warp 0: {full, full} converged; warp 1: {full, halve} diverged.
	res := m.Run([][]gcd.IterShape{full, full, full, halve})
	if res.Rounds != 2 || res.ConvergedRounds != 1 {
		t.Fatalf("got %+v", res)
	}
	// Warp 0: 3; warp 1: 3 + 2.
	if res.Cycles != 8 {
		t.Fatalf("cycles = %d, want 8", res.Cycles)
	}
}

func TestEmptyRun(t *testing.T) {
	m := mustNew(t, 32, 4)
	res := m.Run(nil)
	if res.Cycles != 0 || res.DivergencePenalty() != 0 || res.ConvergedFraction() != 0 {
		t.Fatalf("empty run: %+v", res)
	}
}

func randOddNat(r *rand.Rand, bits int) *mpnat.Nat {
	v := new(big.Int)
	for v.BitLen() < bits {
		v.Lsh(v, 32)
		v.Or(v, new(big.Int).SetUint64(uint64(r.Uint32())))
	}
	v.Rsh(v, uint(v.BitLen()-bits))
	v.SetBit(v, bits-1, 1)
	v.SetBit(v, 0, 1)
	return mpnat.FromBig(v)
}

// TestPaperSectionVIIDivergence is the reproduction of the paper's
// branch-divergence observation: on real traces, Binary Euclidean (three
// branch bodies) pays a substantially higher divergence penalty than
// FastBinary and Approximate (one body each, the beta body never taken).
func TestPaperSectionVIIDivergence(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	const p = 64
	m := mustNew(t, 32, 4)
	scratch := gcd.NewScratch(512)
	penalties := map[gcd.Algorithm]float64{}
	converged := map[gcd.Algorithm]float64{}
	for _, alg := range []gcd.Algorithm{gcd.Binary, gcd.FastBinary, gcd.Approximate} {
		traces := make([][]gcd.IterShape, p)
		for j := 0; j < p; j++ {
			x := randOddNat(r, 512)
			y := randOddNat(r, 512)
			_, st := scratch.Compute(alg, x, y, gcd.Options{EarlyBits: 256, RecordShapes: true})
			traces[j] = st.Shapes
		}
		res := m.Run(traces)
		penalties[alg] = res.DivergencePenalty()
		converged[alg] = res.ConvergedFraction()
	}
	if penalties[gcd.Binary] < 1.5 {
		t.Errorf("Binary divergence penalty %.2f, expected > 1.5 (three-way branch)", penalties[gcd.Binary])
	}
	if penalties[gcd.Approximate] > 1.05 {
		t.Errorf("Approximate divergence penalty %.2f, expected ~1 (single body)", penalties[gcd.Approximate])
	}
	if penalties[gcd.FastBinary] > 1.05 {
		t.Errorf("FastBinary divergence penalty %.2f, expected ~1", penalties[gcd.FastBinary])
	}
	if converged[gcd.Binary] >= converged[gcd.Approximate] {
		t.Errorf("Binary converged fraction %.2f not below Approximate %.2f",
			converged[gcd.Binary], converged[gcd.Approximate])
	}
}
