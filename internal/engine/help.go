package engine

import "bulkgcd/internal/obs"

// Metric help strings for the work-stealing scheduler; the doc-parity
// test keeps these and DESIGN.md section 5c in lockstep.
func init() {
	obs.RegisterHelp("engine_steals_total", "work-stealing pool steal-half operations across all engines")
	obs.RegisterHelp("engine_queue_depth", "unclaimed work units across the pool's deques, sampled at steal events")
	obs.RegisterHelp("engine_worker_busy_seconds", "per-worker time spent inside work units (one observation per worker per pool run)")
}
