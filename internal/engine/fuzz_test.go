package engine

import (
	"context"
	"sync/atomic"
	"testing"
)

// FuzzRunCoverage drives the work-stealing pool with adversarial
// (n, workers, grain) shapes and checks the one invariant everything
// else in the repository leans on: every unit index in [0, n) is
// executed exactly once, with a worker index inside [0, workers). The
// fuzzer explores ragged partitions (n not divisible by workers),
// more workers than units, grains larger than a whole partition, and
// the degenerate inline paths (workers <= 1, n <= 1).
func FuzzRunCoverage(f *testing.F) {
	f.Add(uint16(0), uint8(1), uint8(1))
	f.Add(uint16(1), uint8(0), uint8(0))
	f.Add(uint16(97), uint8(7), uint8(3))
	f.Add(uint16(1000), uint8(16), uint8(8))
	f.Add(uint16(5), uint8(200), uint8(1))
	f.Add(uint16(64), uint8(4), uint8(255))
	f.Fuzz(func(t *testing.T, n16 uint16, w8, g8 uint8) {
		n := int(n16) % 2048
		workers := int(w8) % 33 // 0 means GOMAXPROCS
		grain := int(g8)        // 0 means 1

		counts := make([]atomic.Int32, n)
		stats, err := RunStats(context.Background(), n,
			PoolOptions{Workers: workers, Grain: grain},
			func(i, w int) {
				if i < 0 || i >= n {
					panic("unit index out of range")
				}
				if w < 0 || (workers > 0 && w >= workers) {
					panic("worker index out of range")
				}
				counts[i].Add(1)
			})
		if err != nil {
			t.Fatalf("n=%d workers=%d grain=%d: %v", n, workers, grain, err)
		}
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("n=%d workers=%d grain=%d: unit %d ran %d times",
					n, workers, grain, i, c)
			}
		}
		if n > 0 && stats.Workers < 1 {
			t.Fatalf("stats.Workers = %d with %d units", stats.Workers, n)
		}
	})
}
