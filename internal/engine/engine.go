// Package engine holds the configuration surface shared by every attack
// engine in the repository — the all-pairs executor (internal/bulk), the
// Bernstein batch-GCD tree (internal/batchgcd), the tiled product-filter
// hybrid (internal/bulk) and the attack pipeline that drives them
// (internal/attack). Each of those packages embeds Config, so a new
// cross-cutting knob (a metrics registry, a tracer, a fault hook) is
// added exactly once and appears everywhere.
//
// The package also defines Kind, the canonical engine selector the CLIs
// and the public API parse and print.
package engine

import (
	"fmt"
	"runtime"
	"strings"

	"bulkgcd/internal/checkpoint"
	"bulkgcd/internal/faultinject"
	"bulkgcd/internal/obs"
)

// Config is the cross-engine configuration every engine understands.
// The zero value selects the defaults: a GOMAXPROCS-sized pool, no
// progress callbacks, no metrics, no tracing, no journaling.
type Config struct {
	// Workers is the goroutine pool size; 0 means GOMAXPROCS. Every
	// engine guarantees identical findings at every pool size.
	Workers int

	// Progress, when non-nil, receives completion counts in the engine's
	// work units (pairs for the all-pairs and hybrid engines, tree
	// operations for batch GCD). Engines serialize delivery and guarantee
	// strictly increasing done values — invocations never overlap and
	// stale updates are dropped — so callbacks need no locking.
	Progress func(done, total int64)

	// Metrics, when non-nil, receives the run's counters, gauges and
	// histograms (DESIGN.md section 5c lists every exported name). Nil
	// disables collection with no measurable overhead.
	Metrics *obs.Registry

	// Trace, when non-nil, receives structured JSONL span events.
	Trace *obs.Tracer

	// Checkpoint, when non-nil, journals every completed work unit so an
	// interrupted run can be resumed. Resume, when non-nil, is a journal
	// loaded from a previous run whose completed units are skipped.
	// Supported by the pairs and hybrid engines; batch GCD has no
	// resumable unit decomposition and rejects both.
	Checkpoint *checkpoint.Writer
	Resume     *checkpoint.State

	// Fault is the test-only fault-injection hook; nil in production.
	Fault *faultinject.Hook
}

// EffectiveWorkers resolves the pool size a run with this Config uses.
func (c Config) EffectiveWorkers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Kind selects an attack engine. The zero value is Pairs, the paper's
// all-pairs computation.
type Kind int

const (
	// Pairs is the paper's all-pairs GCD engine: one full GCD per pair,
	// block-decomposed over a worker pool.
	Pairs Kind = iota
	// Batch is Bernstein's product/remainder-tree batch GCD.
	Batch
	// Hybrid is the tiled product-filter engine: one subproduct-filter
	// GCD per (modulus, tile) cell, descending to per-pair GCDs only on
	// filter hits.
	Hybrid
)

// Kinds lists every engine in declaration order.
var Kinds = []Kind{Pairs, Batch, Hybrid}

var kindNames = [...]string{"pairs", "batch", "hybrid"}

// String returns the engine's canonical lowercase name, the form
// ParseKind accepts and the CLIs expose.
func (k Kind) String() string {
	if k < Pairs || k > Hybrid {
		return fmt.Sprintf("Kind(%d)", int(k))
	}
	return kindNames[k]
}

// ParseKind parses an engine name (case-insensitive). It accepts the
// canonical names "pairs", "batch" and "hybrid", plus the legacy alias
// "allpairs" for Pairs.
func ParseKind(s string) (Kind, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "pairs", "allpairs":
		return Pairs, nil
	case "batch":
		return Batch, nil
	case "hybrid":
		return Hybrid, nil
	}
	return 0, fmt.Errorf("engine: unknown engine %q (want pairs, batch or hybrid)", s)
}

// KernelKind selects the per-pair GCD executor used by the pairs and
// hybrid engines. The zero value is KernelScalar, the one-pair-at-a-time
// kernel; the batch engine has no per-pair kernel and ignores the knob.
type KernelKind int

const (
	// KernelScalar runs one GCD at a time on row-major operands
	// (internal/gcd).
	KernelScalar KernelKind = iota
	// KernelLanes runs lane-batched GCDs in lockstep over a column-major
	// operand matrix (internal/lanes). Findings are identical to
	// KernelScalar; only throughput and per-pair statistics differ.
	KernelLanes
)

// KernelKinds lists every kernel in declaration order.
var KernelKinds = []KernelKind{KernelScalar, KernelLanes}

var kernelNames = [...]string{"scalar", "lanes"}

// String returns the kernel's canonical lowercase name, the form
// ParseKernelKind accepts and the CLIs expose.
func (k KernelKind) String() string {
	if k < KernelScalar || k > KernelLanes {
		return fmt.Sprintf("KernelKind(%d)", int(k))
	}
	return kernelNames[k]
}

// ParseKernelKind parses a kernel name (case-insensitive).
func ParseKernelKind(s string) (KernelKind, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "scalar":
		return KernelScalar, nil
	case "lanes":
		return KernelLanes, nil
	}
	return 0, fmt.Errorf("engine: unknown kernel %q (want scalar or lanes)", s)
}
