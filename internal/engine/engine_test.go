package engine

import (
	"runtime"
	"testing"
)

func TestEffectiveWorkers(t *testing.T) {
	if got := (Config{}).EffectiveWorkers(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("zero Config: EffectiveWorkers() = %d, want GOMAXPROCS", got)
	}
	if got := (Config{Workers: 3}).EffectiveWorkers(); got != 3 {
		t.Errorf("Workers=3: EffectiveWorkers() = %d", got)
	}
	if got := (Config{Workers: -1}).EffectiveWorkers(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers=-1: EffectiveWorkers() = %d, want GOMAXPROCS", got)
	}
}

func TestKindRoundTrip(t *testing.T) {
	for _, k := range Kinds {
		got, err := ParseKind(k.String())
		if err != nil {
			t.Fatalf("ParseKind(%q): %v", k.String(), err)
		}
		if got != k {
			t.Errorf("ParseKind(%q) = %v, want %v", k.String(), got, k)
		}
	}
	if k, err := ParseKind(" AllPairs "); err != nil || k != Pairs {
		t.Errorf("legacy alias: got %v, %v", k, err)
	}
	if _, err := ParseKind("gpu"); err == nil {
		t.Error("ParseKind(gpu) should fail")
	}
	if got := Kind(42).String(); got != "Kind(42)" {
		t.Errorf("out-of-range String() = %q", got)
	}
}
