package engine

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"bulkgcd/internal/obs"
)

// This file is the shared work-stealing scheduler every parallel engine
// in the repository runs on: the all-pairs block pool, the hybrid cell
// pool, the incremental stripe pool (internal/bulk), the level-wise
// product/remainder tree fan-outs (internal/subprod, internal/batchgcd),
// and the registry's forest descent (internal/registry).
//
// The design is a chunked range-splitting deque. Each worker owns one
// atomic 64-bit word holding a half-open index range packed as
// lo<<32|hi; the n work units are statically partitioned across the
// words up front. An owner claims Grain units from the front of its own
// range with a single CAS; a thief scans the other workers' words and
// carves off the upper half of the largest-looking victim range with one
// CAS, storing the stolen range into its own (empty) word so other
// thieves can re-steal from it. There are no locks, no channels and no
// allocation per unit: the only coordination is one CAS per Grain units
// plus one CAS per steal, so the zero-alloc guarantees of the per-worker
// arenas threaded through fn's worker index survive unchanged.
//
// Worker indices are stable: fn is always called with worker in
// [0, workers), and a given worker index is serviced by exactly one
// goroutine, so fn may keep per-worker scratch (lane kernels, mpnat
// arenas, big.Int quotients) indexed by it without synchronization.
//
// Termination uses an unclaimed-unit counter rather than idle spinning:
// popping decrements it, stealing merely moves units between words, so
// when the counter hits zero no future pop anywhere can succeed and idle
// workers exit immediately instead of waiting for stragglers. The brief
// window in which a stolen range is in neither word is covered by a
// Gosched retry.
//
// A panic in fn cancels the pool (the other workers stop at the next
// unit boundary) and is re-raised on the caller's goroutine once every
// worker has parked, so an engine-level recover sees it exactly as it
// would from a plain loop. Cancellation of ctx is observed at unit
// granularity.

// PoolOptions configures one work-stealing Run.
type PoolOptions struct {
	// Workers is the number of goroutines; <= 0 means GOMAXPROCS(0).
	// The pool never runs more goroutines than there are units.
	Workers int
	// Grain is how many consecutive units an owner claims per CAS on
	// its own deque; <= 0 means 1. Steals always take half the victim's
	// remaining range regardless of Grain. Larger grains amortize the
	// claim CAS for very small units (leaf GCDs) at the cost of coarser
	// cancellation; unit-sized work (blocks, cells, tree nodes) uses 1.
	Grain int
	// Metrics, when non-nil, receives engine_steals_total,
	// engine_queue_depth and engine_worker_busy_seconds.
	Metrics *obs.Registry
}

// PoolStats reports what one Run did, for benchmark harnesses and the
// bulkgcd.bench.v1 core-scaling report.
type PoolStats struct {
	// Workers is the effective pool size after clamping.
	Workers int
	// Steals counts successful steal-half operations.
	Steals int64
	// Busy is per-worker time spent inside fn (not idle or stealing),
	// indexed by worker.
	Busy []time.Duration
}

// BusyTotal sums the per-worker busy times.
func (s *PoolStats) BusyTotal() time.Duration {
	var t time.Duration
	for _, b := range s.Busy {
		t += b
	}
	return t
}

// queueSlot is one worker's packed range, padded to a cache line so
// neighbouring workers' CAS traffic does not false-share.
type queueSlot struct {
	r atomic.Uint64
	_ [56]byte
}

func packRange(lo, hi uint32) uint64 { return uint64(lo)<<32 | uint64(hi) }

func unpackRange(v uint64) (lo, hi uint32) { return uint32(v >> 32), uint32(v) }

type pool struct {
	queues    []queueSlot
	unclaimed atomic.Int64
	steals    atomic.Int64
	grain     uint32
	fn        func(i, worker int)
	depth     *obs.Gauge
}

// pop claims up to grain units from the front of worker w's own range.
func (p *pool) pop(w int) (lo, hi int, ok bool) {
	q := &p.queues[w].r
	for {
		v := q.Load()
		l, h := unpackRange(v)
		if l >= h {
			return 0, 0, false
		}
		g := p.grain
		if h-l < g {
			g = h - l
		}
		if q.CompareAndSwap(v, packRange(l+g, h)) {
			p.unclaimed.Add(-int64(g))
			return int(l), int(l + g), true
		}
	}
}

// steal scans the other workers' ranges and moves the upper half of the
// first non-empty one into worker w's own (empty) slot. Only the owner
// ever stores to its slot and thieves skip empty slots, so the plain
// Store cannot race.
func (p *pool) steal(w int) bool {
	for off := 1; off < len(p.queues); off++ {
		v := (w + off) % len(p.queues)
		q := &p.queues[v].r
		for {
			cur := q.Load()
			l, h := unpackRange(cur)
			if l >= h {
				break
			}
			take := (h - l + 1) / 2
			mid := h - take
			if q.CompareAndSwap(cur, packRange(l, mid)) {
				p.queues[w].r.Store(packRange(mid, h))
				p.steals.Add(1)
				p.depth.Set(float64(p.unclaimed.Load()))
				return true
			}
		}
	}
	return false
}

func (p *pool) worker(ctx context.Context, w int, busy *time.Duration) {
	for {
		if ctx.Err() != nil {
			return
		}
		lo, hi, ok := p.pop(w)
		if !ok {
			if p.steal(w) {
				continue
			}
			if p.unclaimed.Load() == 0 {
				return
			}
			// A stolen range can transiently be in no slot between the
			// thief's CAS and its store; yield and rescan.
			runtime.Gosched()
			continue
		}
		start := time.Now()
		for i := lo; i < hi; i++ {
			if ctx.Err() != nil {
				*busy += time.Since(start)
				return
			}
			p.fn(i, w)
		}
		*busy += time.Since(start)
	}
}

// Run executes fn(i, worker) exactly once for every i in [0, n) across a
// work-stealing pool, discarding the stats. See RunStats.
func Run(ctx context.Context, n int, opt PoolOptions, fn func(i, worker int)) error {
	_, err := RunStats(ctx, n, opt, fn)
	return err
}

// RunStats executes fn(i, worker) exactly once for every i in [0, n)
// across a work-stealing pool and reports steal/busy statistics.
//
// Workers observe ctx at unit granularity and stop cooperatively; the
// ctx error (if any) is returned once all workers have drained, in
// which case some units may not have run. A panic in fn cancels the
// pool and re-panics on the caller's goroutine. n must fit in 32 bits
// (work units are blocks, cells, stripes or tree nodes — all far
// coarser than single pairs).
func RunStats(ctx context.Context, n int, opt PoolOptions, fn func(i, worker int)) (PoolStats, error) {
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	grain := opt.Grain
	if grain < 1 {
		grain = 1
	}
	if n <= 0 {
		return PoolStats{}, ctx.Err()
	}
	if n > 1<<31 {
		panic("engine: work-stealing pool limited to 2^31 units")
	}
	if workers <= 1 {
		st := PoolStats{Workers: 1, Busy: make([]time.Duration, 1)}
		start := time.Now()
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				st.Busy[0] = time.Since(start)
				return st, err
			}
			fn(i, 0)
		}
		st.Busy[0] = time.Since(start)
		return st, ctx.Err()
	}

	stealsTotal := opt.Metrics.Counter("engine_steals_total")
	busyHist := opt.Metrics.Histogram("engine_worker_busy_seconds", obs.DurationBuckets())
	p := &pool{
		queues: make([]queueSlot, workers),
		grain:  uint32(grain),
		fn:     fn,
		depth:  opt.Metrics.Gauge("engine_queue_depth"),
	}
	p.unclaimed.Store(int64(n))
	p.depth.Set(float64(n))
	for w := 0; w < workers; w++ {
		lo := uint32(w * n / workers)
		hi := uint32((w + 1) * n / workers)
		p.queues[w].r.Store(packRange(lo, hi))
	}

	wctx, cancel := context.WithCancel(ctx)
	defer cancel()
	st := PoolStats{Workers: workers, Busy: make([]time.Duration, workers)}
	var panicOnce sync.Once
	var panicked any
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer func() {
				if r := recover(); r != nil {
					panicOnce.Do(func() { panicked = r })
					cancel()
				}
				wg.Done()
			}()
			p.worker(wctx, w, &st.Busy[w])
		}(w)
	}
	wg.Wait()
	p.depth.Set(0)
	if panicked != nil {
		panic(panicked)
	}
	st.Steals = p.steals.Load()
	stealsTotal.Add(st.Steals)
	for _, b := range st.Busy {
		busyHist.ObserveDuration(int64(b))
	}
	return st, ctx.Err()
}
