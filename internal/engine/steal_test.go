package engine

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bulkgcd/internal/obs"
)

// TestRunCoversEveryUnit checks the exactly-once contract over a grid
// of sizes, pool widths and grains, including degenerate shapes.
func TestRunCoversEveryUnit(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 7, 64, 1000} {
		for _, workers := range []int{0, 1, 2, 3, 7, 16, 33} {
			for _, grain := range []int{0, 1, 4, 100} {
				var hits sync.Map
				var count atomic.Int64
				err := Run(context.Background(), n, PoolOptions{Workers: workers, Grain: grain}, func(i, w int) {
					if i < 0 || i >= n {
						t.Errorf("n=%d workers=%d grain=%d: index %d out of range", n, workers, grain, i)
					}
					if workers > 0 && (w < 0 || w >= workers) {
						t.Errorf("n=%d workers=%d grain=%d: worker %d out of range", n, workers, grain, w)
					}
					if _, dup := hits.LoadOrStore(i, true); dup {
						t.Errorf("n=%d workers=%d grain=%d: index %d ran twice", n, workers, grain, i)
					}
					count.Add(1)
				})
				if err != nil {
					t.Fatalf("n=%d workers=%d grain=%d: %v", n, workers, grain, err)
				}
				if got := count.Load(); got != int64(n) {
					t.Fatalf("n=%d workers=%d grain=%d: ran %d units", n, workers, grain, got)
				}
			}
		}
	}
}

// TestRunWorkerIndexIsExclusive verifies a worker index is never
// serviced by two goroutines at once, the property per-worker arenas
// rely on.
func TestRunWorkerIndexIsExclusive(t *testing.T) {
	const workers = 8
	var active [workers]atomic.Int32
	err := Run(context.Background(), 4096, PoolOptions{Workers: workers}, func(i, w int) {
		if active[w].Add(1) != 1 {
			t.Errorf("worker %d entered concurrently", w)
		}
		active[w].Add(-1)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRunStealsUnderSkew plants all the work in a few huge units at the
// front so the statically-partitioned back half of the pool starves
// unless stealing redistributes; with enough tiny trailing units the
// steal counter must move.
func TestRunStealsUnderSkew(t *testing.T) {
	const n = 512
	var sum atomic.Int64
	st, err := RunStats(context.Background(), n, PoolOptions{Workers: 8}, func(i, w int) {
		if i < 4 {
			time.Sleep(20 * time.Millisecond)
		}
		sum.Add(int64(i))
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Load() != int64(n*(n-1)/2) {
		t.Fatalf("sum %d", sum.Load())
	}
	if st.Workers != 8 {
		t.Fatalf("workers %d", st.Workers)
	}
	if st.Steals == 0 {
		t.Fatal("skewed load produced zero steals")
	}
	if len(st.Busy) != 8 || st.BusyTotal() <= 0 {
		t.Fatalf("busy stats %v", st.Busy)
	}
}

// TestRunMetrics wires a registry and checks the scheduler families
// appear with plausible values.
func TestRunMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	_, err := RunStats(context.Background(), 256, PoolOptions{Workers: 4, Metrics: reg}, func(i, w int) {
		if i == 0 {
			time.Sleep(10 * time.Millisecond)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if snap.Counters["engine_steals_total"] < 0 {
		t.Fatal("missing engine_steals_total")
	}
	if got, ok := snap.Gauges["engine_queue_depth"]; !ok || got != 0 {
		t.Fatalf("engine_queue_depth = %v, %v (want 0 after drain)", got, ok)
	}
	h, ok := snap.Histograms["engine_worker_busy_seconds"]
	if !ok || h.Count != 4 {
		t.Fatalf("engine_worker_busy_seconds: ok=%v count=%d, want one observation per worker", ok, h.Count)
	}
}

// TestRunPanicPropagates: a panic in fn must cancel the pool (other
// workers stop claiming) and re-raise on the caller's goroutine.
func TestRunPanicPropagates(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var after atomic.Int64
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("workers=%d: panic did not propagate", workers)
				}
				if s, ok := r.(string); !ok || s != "boom" {
					t.Fatalf("workers=%d: recovered %v", workers, r)
				}
			}()
			_ = Run(context.Background(), 10000, PoolOptions{Workers: workers}, func(i, w int) {
				if i == 37 {
					panic("boom")
				}
				after.Add(1)
			})
		}()
		// Cancellation is cooperative at unit granularity, so a few
		// in-flight units may finish, but the pool must not drain all
		// 10000 units after the panic.
		if after.Load() >= 9999 {
			t.Fatalf("workers=%d: pool kept running after panic (%d units)", workers, after.Load())
		}
	}
}

// TestRunCancellation: cancelling the context mid-run stops the pool
// cooperatively and surfaces the ctx error.
func TestRunCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	err := Run(ctx, 100000, PoolOptions{Workers: 4}, func(i, w int) {
		if ran.Add(1) == 50 {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran.Load() >= 100000 {
		t.Fatal("cancellation did not stop the pool")
	}
}

// TestRunCancelledBeforeStart: an already-cancelled context runs
// nothing (single- and multi-worker paths).
func TestRunCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		var ran atomic.Int64
		err := Run(ctx, 64, PoolOptions{Workers: workers}, func(i, w int) { ran.Add(1) })
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v", workers, err)
		}
		if ran.Load() > int64(workers) {
			t.Fatalf("workers=%d: ran %d units on a dead context", workers, ran.Load())
		}
	}
}

// TestRunHammer drives many concurrent pools at once under the race
// detector to shake out deque races.
func TestRunHammer(t *testing.T) {
	var wg sync.WaitGroup
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			var count atomic.Int64
			if err := Run(context.Background(), 2048, PoolOptions{Workers: 1 + r%5, Grain: 1 + r%3}, func(i, w int) {
				count.Add(1)
			}); err != nil {
				t.Error(err)
			}
			if count.Load() != 2048 {
				t.Errorf("pool %d ran %d units", r, count.Load())
			}
		}(r)
	}
	wg.Wait()
}
