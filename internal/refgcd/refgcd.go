// Package refgcd contains reference implementations of the five Euclidean
// GCD algorithms of the paper, written over math/big with a configurable
// word size d.
//
// These implementations favour clarity and fidelity to the paper's pseudo
// code over speed. They serve three purposes:
//
//  1. With d = 4 they regenerate the paper's worked examples (Tables I-III),
//     step for step, including the (alpha, beta) pairs and case labels of
//     the Approximate Euclidean algorithm.
//  2. With d = 32 they are the oracle against which the production word-level
//     implementations in package gcd are property-tested.
//  3. They record full step traces, which the examples and the tabfmt
//     package turn into the paper's table layout.
//
// All algorithms require odd inputs, as in Section II of the paper; the
// public API in the repository root handles even inputs by the standard
// factor-of-two reductions before reaching this layer.
package refgcd

import (
	"fmt"
	"math/big"
)

// Algorithm identifies one of the five Euclidean algorithms of the paper,
// labelled (A)-(E) as in Tables IV and V.
type Algorithm int

const (
	// Original is (A): repeated X mod Y.
	Original Algorithm = iota
	// Fast is (B): exact quotient, decremented to odd, with rshift.
	Fast
	// Binary is (C): Stein's subtract-and-halve algorithm.
	Binary
	// FastBinary is (D): subtract and strip all trailing zeros.
	FastBinary
	// Approximate is (E): the paper's contribution; quotient approximated
	// by alpha*D^beta from one 2d-bit division.
	Approximate
)

var algNames = [...]string{"Original", "Fast", "Binary", "FastBinary", "Approximate"}

// Letter returns the paper's label (A)-(E) for the algorithm.
func (a Algorithm) Letter() string {
	if a < Original || a > Approximate {
		return "?"
	}
	return string(rune('A' + int(a)))
}

func (a Algorithm) String() string {
	if a < Original || a > Approximate {
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
	return algNames[a]
}

// Algorithms lists all five algorithms in the paper's (A)-(E) order.
var Algorithms = []Algorithm{Original, Fast, Binary, FastBinary, Approximate}

// Options configures a reference run.
type Options struct {
	// WordBits is the word size d. It must be between 2 and 32.
	// The paper uses d = 4 in its worked examples and d = 32 on hardware.
	WordBits int

	// EarlyTerminateBits, when positive, stops the algorithm as soon as Y
	// has fewer than this many bits (the paper's early-terminate variant
	// with threshold s/2). The result is then 1 (coprime) unless Y reached
	// exactly zero, in which case X holds the shared factor.
	EarlyTerminateBits int

	// RecordSteps captures a per-iteration trace in Result.Steps.
	RecordSteps bool

	// MaxIterations aborts runaway loops (0 means the 4*s safety default).
	MaxIterations int
}

// Step records the state of one do-while iteration, as the paper's tables
// print it: X and Y at the start of the iteration, plus the quotient
// information the iteration used.
type Step struct {
	X, Y *big.Int

	// Q is the exact quotient used by Original and Fast (nil otherwise).
	Q *big.Int

	// Alpha is the multiplier actually applied by Approximate, after the
	// even-to-odd decrement when beta == 0 (the paper's Table III prints
	// this post-decrement value). Nil for the other algorithms.
	Alpha *big.Int

	// Beta is Approximate's word-shift exponent.
	Beta int

	// Case is Approximate's approx() case label: "1", "2-A", ... "4-C".
	Case string
}

// Result reports a reference run.
type Result struct {
	Algorithm Algorithm

	// GCD is the computed value: the true gcd for non-terminate runs, and
	// for early-terminate runs either the shared factor (Y reached 0) or 1.
	GCD *big.Int

	// Iterations counts executions of the do-while body.
	Iterations int

	// EarlyTerminated reports that the run stopped on the bit-length
	// threshold with a non-zero Y (inputs coprime for RSA moduli).
	EarlyTerminated bool

	// BetaNonZero counts Approximate iterations that took the beta > 0
	// path (Section V measures this at < 1e-8 for d = 32).
	BetaNonZero int

	// CaseCounts tallies Approximate's approx() case labels.
	CaseCounts map[string]int

	// Steps is the trace when Options.RecordSteps was set.
	Steps []Step
}

// Run executes the reference algorithm alg on x and y.
// Both inputs must be positive and odd; they are not modified.
func Run(alg Algorithm, x, y *big.Int, opt Options) (*Result, error) {
	if opt.WordBits == 0 {
		opt.WordBits = 32
	}
	if opt.WordBits < 2 || opt.WordBits > 32 {
		return nil, fmt.Errorf("refgcd: word size d = %d out of range [2,32]", opt.WordBits)
	}
	if x.Sign() <= 0 || y.Sign() <= 0 {
		return nil, fmt.Errorf("refgcd: inputs must be positive")
	}
	if x.Bit(0) == 0 || y.Bit(0) == 0 {
		return nil, fmt.Errorf("refgcd: inputs must be odd (got even input)")
	}
	X := new(big.Int).Set(x)
	Y := new(big.Int).Set(y)
	if X.Cmp(Y) < 0 {
		X, Y = Y, X
	}
	maxIter := opt.MaxIterations
	if maxIter == 0 {
		maxIter = 4*X.BitLen() + 16
	}
	res := &Result{Algorithm: alg, CaseCounts: map[string]int{}}
	run := stepFuncs[alg]
	if run == nil {
		return nil, fmt.Errorf("refgcd: unknown algorithm %v", alg)
	}
	for {
		if opt.RecordSteps {
			res.Steps = append(res.Steps, Step{X: new(big.Int).Set(X), Y: new(big.Int).Set(Y)})
		}
		var step *Step
		if opt.RecordSteps {
			step = &res.Steps[len(res.Steps)-1]
		}
		run(X, Y, opt.WordBits, res, step)
		if X.Cmp(Y) < 0 {
			X, Y = Y, X
		}
		res.Iterations++
		if res.Iterations > maxIter {
			return nil, fmt.Errorf("refgcd: %v exceeded %d iterations", alg, maxIter)
		}
		if Y.Sign() == 0 {
			break
		}
		if opt.EarlyTerminateBits > 0 && Y.BitLen() < opt.EarlyTerminateBits {
			res.EarlyTerminated = true
			res.GCD = big.NewInt(1)
			return res, nil
		}
	}
	res.GCD = X
	return res, nil
}

// stepFuncs holds the per-iteration body of each algorithm. Each function
// updates X in place (Y is read-only within a step; the caller swaps).
var stepFuncs = map[Algorithm]func(X, Y *big.Int, d int, res *Result, step *Step){
	Original:    stepOriginal,
	Fast:        stepFast,
	Binary:      stepBinary,
	FastBinary:  stepFastBinary,
	Approximate: stepApproximate,
}

func stepOriginal(X, Y *big.Int, _ int, _ *Result, step *Step) {
	q, r := new(big.Int).QuoRem(X, Y, new(big.Int))
	if step != nil {
		step.Q = q
	}
	X.Set(r)
}

func stepFast(X, Y *big.Int, _ int, _ *Result, step *Step) {
	q := new(big.Int).Quo(X, Y)
	if q.Bit(0) == 0 { // Q even: decrement so X - Y*Q is even
		q.Sub(q, big.NewInt(1))
	}
	if step != nil {
		step.Q = new(big.Int).Set(q)
	}
	X.Sub(X, q.Mul(q, Y))
	rshiftStrip(X)
}

func stepBinary(X, Y *big.Int, _ int, _ *Result, _ *Step) {
	switch {
	case X.Bit(0) == 0:
		X.Rsh(X, 1)
	case Y.Bit(0) == 0:
		Y.Rsh(Y, 1)
	default:
		X.Sub(X, Y)
		X.Rsh(X, 1)
	}
}

func stepFastBinary(X, Y *big.Int, _ int, _ *Result, _ *Step) {
	X.Sub(X, Y)
	rshiftStrip(X)
}

func stepApproximate(X, Y *big.Int, d int, res *Result, step *Step) {
	alpha, beta, label := ApproxBig(X, Y, d)
	if res != nil {
		res.CaseCounts[label]++
	}
	if beta == 0 {
		if alpha.Bit(0) == 0 { // alpha even: make it odd
			alpha.Sub(alpha, big.NewInt(1))
		}
		// X <- rshift(X - Y*alpha)
		X.Sub(X, new(big.Int).Mul(Y, alpha))
		rshiftStrip(X)
	} else {
		if res != nil {
			res.BetaNonZero++
		}
		// X <- rshift(X - Y*alpha*D^beta + Y); alpha*D^beta is even, so
		// this subtracts the odd alpha*D^beta - 1 and the result is even.
		t := new(big.Int).Mul(Y, alpha)
		t.Lsh(t, uint(beta*d))
		X.Sub(X, t)
		X.Add(X, Y)
		rshiftStrip(X)
	}
	if step != nil {
		step.Alpha = new(big.Int).Set(alpha)
		step.Beta = beta
		step.Case = label
	}
}

// rshiftStrip removes all trailing zero bits in place (the paper's rshift).
func rshiftStrip(v *big.Int) {
	if v.Sign() == 0 {
		return
	}
	k := 0
	for v.Bit(k) == 0 {
		k++
	}
	v.Rsh(v, uint(k))
}

// WordsOf returns l_X, the number of d-bit words of v (0 for zero).
func WordsOf(v *big.Int, d int) int {
	return (v.BitLen() + d - 1) / d
}

// topWords returns the integer formed by the k most significant d-bit words
// of v, the paper's <x1 x2 ... xk>. v must have at least k words.
func topWords(v *big.Int, k, d int) uint64 {
	l := WordsOf(v, d)
	if l < k {
		panic("refgcd: topWords on too-short value")
	}
	return new(big.Int).Rsh(v, uint((l-k)*d)).Uint64()
}

// ApproxBig is the reference implementation of the paper's approx(X, Y)
// function (Section III) for word size d. It returns a pair (alpha, beta)
// such that alpha * D^beta <= X div Y approximates the quotient, together
// with the case label the decision tree took. It requires X >= Y > 0.
//
// In every case except Case 1 the returned alpha fits in d bits; in Case 1
// it is the exact quotient of two values of at most 2d bits each.
func ApproxBig(X, Y *big.Int, d int) (alpha *big.Int, beta int, label string) {
	lX, lY := WordsOf(X, d), WordsOf(Y, d)
	switch {
	case lX <= 2:
		// Case 1: X (and hence Y) has at most 2 words: exact quotient.
		return new(big.Int).Quo(X, Y), 0, "1"

	case lY == 1:
		x1 := topWords(X, 1, d)
		y1 := topWords(Y, 1, d)
		if x1 >= y1 {
			return quot(x1, y1), lX - 1, "2-A"
		}
		return quot(topWords(X, 2, d), y1), lX - 2, "2-B"

	case lY == 2:
		x12 := topWords(X, 2, d)
		y12 := topWords(Y, 2, d)
		if x12 >= y12 {
			return quot(x12, y12), lX - 2, "3-A"
		}
		return quot(x12, topWords(Y, 1, d)+1), lX - 3, "3-B"

	default:
		x12 := topWords(X, 2, d)
		y12 := topWords(Y, 2, d)
		switch {
		case x12 > y12:
			return quot(x12, y12+1), lX - lY, "4-A"
		case lX > lY:
			return quot(x12, topWords(Y, 1, d)+1), lX - lY - 1, "4-B"
		default:
			return big.NewInt(1), 0, "4-C"
		}
	}
}

func quot(a, b uint64) *big.Int {
	return new(big.Int).SetUint64(a / b)
}
