package refgcd

import (
	"math/big"
	"math/rand"
	"testing"
)

// The paper's running example: X = 1111,1110,1101,1100,1011 (1043915),
// Y = 1011,1011,1011,1011,1011 (768955), gcd = 0101 (5).
const (
	paperX = 1043915
	paperY = 768955
	paperG = 5
)

func run(t *testing.T, alg Algorithm, x, y int64, opt Options) *Result {
	t.Helper()
	res, err := Run(alg, big.NewInt(x), big.NewInt(y), opt)
	if err != nil {
		t.Fatalf("Run(%v): %v", alg, err)
	}
	return res
}

// TestPaperTableI reproduces Table I: Binary Euclidean takes 24 iterations
// and Fast Binary 16 on the running example.
func TestPaperTableI(t *testing.T) {
	opt := Options{WordBits: 4, RecordSteps: true}

	bin := run(t, Binary, paperX, paperY, opt)
	if bin.Iterations != 24 {
		t.Errorf("Binary iterations = %d, want 24", bin.Iterations)
	}
	if bin.GCD.Int64() != paperG {
		t.Errorf("Binary gcd = %v, want %d", bin.GCD, paperG)
	}
	// Row 2 of the table: X = 768955, Y = 0010,0001,1001,0000,1000 (137480).
	if got := bin.Steps[1]; got.X.Int64() != paperY || got.Y.Int64() != 137480 {
		t.Errorf("Binary step 2 = (%v,%v), want (768955,137480)", got.X, got.Y)
	}
	// Row 3: Y = 0001,0000,1100,1000,0100 (68740).
	if got := bin.Steps[2]; got.Y.Int64() != 68740 {
		t.Errorf("Binary step 3 Y = %v, want 68740", got.Y)
	}

	fb := run(t, FastBinary, paperX, paperY, opt)
	if fb.Iterations != 16 {
		t.Errorf("FastBinary iterations = %d, want 16", fb.Iterations)
	}
	if fb.GCD.Int64() != paperG {
		t.Errorf("FastBinary gcd = %v, want %d", fb.GCD, paperG)
	}
	// Row 2: X = 768955, Y = 0100,0011,0010,0001 (17185).
	if got := fb.Steps[1]; got.X.Int64() != paperY || got.Y.Int64() != 17185 {
		t.Errorf("FastBinary step 2 = (%v,%v), want (768955,17185)", got.X, got.Y)
	}
	// Row 3: X = 0101,1011,1100,0100,1101 (375885).
	if got := fb.Steps[2]; got.X.Int64() != 375885 {
		t.Errorf("FastBinary step 3 X = %v, want 375885", got.X)
	}
}

// TestPaperTableII reproduces Table II: Original takes 11 iterations with
// quotients 1,2,1,3,1,10,1,83,1,4,2 and Fast takes 8 with quotients
// 1,43,9,11,1,1,1,5.
func TestPaperTableII(t *testing.T) {
	opt := Options{WordBits: 4, RecordSteps: true}

	orig := run(t, Original, paperX, paperY, opt)
	if orig.Iterations != 11 {
		t.Errorf("Original iterations = %d, want 11", orig.Iterations)
	}
	if orig.GCD.Int64() != paperG {
		t.Errorf("Original gcd = %v", orig.GCD)
	}
	wantQ := []int64{1, 2, 1, 3, 1, 10, 1, 83, 1, 4, 2}
	for i, q := range wantQ {
		if got := orig.Steps[i].Q.Int64(); got != q {
			t.Errorf("Original step %d Q = %d, want %d", i+1, got, q)
		}
	}

	fast := run(t, Fast, paperX, paperY, opt)
	if fast.Iterations != 8 {
		t.Errorf("Fast iterations = %d, want 8", fast.Iterations)
	}
	if fast.GCD.Int64() != paperG {
		t.Errorf("Fast gcd = %v", fast.GCD)
	}
	wantQ = []int64{1, 43, 9, 11, 1, 1, 1, 5}
	for i, q := range wantQ {
		if got := fast.Steps[i].Q.Int64(); got != q {
			t.Errorf("Fast step %d Q = %d, want %d", i+1, got, q)
		}
	}
}

// TestPaperTableIII reproduces Table III: Approximate Euclidean with d = 4
// takes 9 iterations on the running example, with the printed (alpha, beta)
// pairs (post even-decrement) and approx() case labels.
func TestPaperTableIII(t *testing.T) {
	opt := Options{WordBits: 4, RecordSteps: true}
	res := run(t, Approximate, paperX, paperY, opt)

	if res.Iterations != 9 {
		t.Fatalf("Approximate iterations = %d, want 9", res.Iterations)
	}
	if res.GCD.Int64() != paperG {
		t.Fatalf("Approximate gcd = %v, want %d", res.GCD, paperG)
	}
	want := []struct {
		x, y  int64
		alpha int64
		beta  int
		label string
	}{
		{1043915, 768955, 1, 0, "4-A"},
		{768955, 17185, 2, 1, "4-A"},
		{59055, 17185, 3, 0, "4-A"},
		{17185, 1875, 7, 0, "4-B"},
		{1875, 1015, 1, 0, "4-A"},
		{1015, 215, 3, 0, "3-B"},
		{215, 185, 1, 0, "1"},
		{185, 15, 11, 0, "1"},
		{15, 5, 3, 0, "1"},
	}
	for i, w := range want {
		s := res.Steps[i]
		if s.X.Int64() != w.x || s.Y.Int64() != w.y {
			t.Errorf("step %d state = (%v,%v), want (%d,%d)", i+1, s.X, s.Y, w.x, w.y)
		}
		if s.Alpha.Int64() != w.alpha || s.Beta != w.beta || s.Case != w.label {
			t.Errorf("step %d (alpha,beta,case) = (%v,%d,%s), want (%d,%d,%s)",
				i+1, s.Alpha, s.Beta, s.Case, w.alpha, w.beta, w.label)
		}
	}
	if res.BetaNonZero != 1 {
		t.Errorf("BetaNonZero = %d, want 1 (step 2 only)", res.BetaNonZero)
	}
	if res.CaseCounts["4-A"] != 4 || res.CaseCounts["1"] != 3 {
		t.Errorf("case counts = %v", res.CaseCounts)
	}
}

// TestApproxBigPaperExamples checks every worked example the paper gives
// for the individual approx() cases (Section III, d = 4).
func TestApproxBigPaperExamples(t *testing.T) {
	cases := []struct {
		x, y  int64
		alpha int64
		beta  int
		label string
	}{
		{223, 45, 4, 0, "1"},        // Case 1: 223 div 45 = 4
		{2345, 4, 2, 2, "2-A"},      // x1=9 >= y1=4: (9 div 4, 3-1)
		{1234, 12, 6, 1, "2-B"},     // x1=4 < y1=12: (77 div 12, 3-2)
		{2345, 59, 2, 1, "3-A"},     // x1x2=146 >= y1y2=59: (146 div 59, 3-2)
		{2345, 231, 9, 0, "3-B"},    // x1x2=146 < y1y2=231: (146 div 15, 0)
		{54321, 1234, 2, 1, "4-A"},  // (212 div 78, 4-3)
		{54321, 4000, 13, 0, "4-B"}, // (212 div 16, 4-3-1)
		{55555, 1234, 2, 1, "4-A"},  // Section III's lead example
	}
	for _, c := range cases {
		alpha, beta, label := ApproxBig(big.NewInt(c.x), big.NewInt(c.y), 4)
		if alpha.Int64() != c.alpha || beta != c.beta || label != c.label {
			t.Errorf("approx(%d,%d) = (%v,%d,%s), want (%d,%d,%s)",
				c.x, c.y, alpha, beta, label, c.alpha, c.beta, c.label)
		}
	}
}

// TestApproxCase4C exercises the equal-top-words branch.
func TestApproxCase4C(t *testing.T) {
	x, _ := new(big.Int).SetString("fff000000001", 16)
	y, _ := new(big.Int).SetString("fff000000000", 16) // same top words, same length
	alpha, beta, label := ApproxBig(x, y, 4)
	if alpha.Int64() != 1 || beta != 0 || label != "4-C" {
		t.Fatalf("got (%v,%d,%s), want (1,0,4-C)", alpha, beta, label)
	}
}

// TestApproxInvariants property-checks the two guarantees Section III
// claims: alpha*D^beta <= X div Y, and (except Case 1) alpha < D.
func TestApproxInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for _, d := range []int{4, 8, 16, 32} {
		D := new(big.Int).Lsh(big.NewInt(1), uint(d))
		for i := 0; i < 2000; i++ {
			x := randOdd(r, 8+r.Intn(200))
			y := randOdd(r, 1+r.Intn(x.BitLen()))
			if x.Cmp(y) < 0 {
				x, y = y, x
			}
			alpha, beta, label := ApproxBig(x, y, d)
			approx := new(big.Int).Lsh(alpha, uint(beta*d))
			q := new(big.Int).Quo(x, y)
			if approx.Cmp(q) > 0 {
				t.Fatalf("d=%d approx(%v,%v) case %s: %v * D^%d > quotient %v",
					d, x, y, label, alpha, beta, q)
			}
			if alpha.Sign() <= 0 {
				t.Fatalf("d=%d approx(%v,%v) case %s: alpha = %v not positive",
					d, x, y, label, alpha)
			}
			if label != "1" && alpha.Cmp(D) >= 0 {
				t.Fatalf("d=%d case %s: alpha = %v has more than d bits", d, label, alpha)
			}
		}
	}
}

// nextPrime returns the smallest probable prime >= v.
func nextPrime(v *big.Int) *big.Int {
	p := new(big.Int).Set(v)
	p.SetBit(p, 0, 1)
	for !p.ProbablyPrime(32) {
		p.Add(p, big.NewInt(2))
	}
	return p
}

func randOdd(r *rand.Rand, bits int) *big.Int {
	if bits < 1 {
		bits = 1
	}
	v := new(big.Int)
	for v.BitLen() < bits {
		v.Lsh(v, 32)
		v.Or(v, new(big.Int).SetUint64(uint64(r.Uint32())))
	}
	v.Rsh(v, uint(v.BitLen()-bits))
	v.SetBit(v, bits-1, 1)
	v.SetBit(v, 0, 1)
	return v
}

// TestAllAlgorithmsAgainstBigGCD property-checks every algorithm against
// math/big's GCD on random odd inputs at several word sizes.
func TestAllAlgorithmsAgainstBigGCD(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	for _, d := range []int{4, 13, 32} {
		for i := 0; i < 300; i++ {
			x := randOdd(r, 2+r.Intn(160))
			y := randOdd(r, 2+r.Intn(160))
			want := new(big.Int).GCD(nil, nil, x, y)
			for _, alg := range Algorithms {
				res, err := Run(alg, x, y, Options{WordBits: d})
				if err != nil {
					t.Fatalf("d=%d %v(%v,%v): %v", d, alg, x, y, err)
				}
				if res.GCD.Cmp(want) != 0 {
					t.Fatalf("d=%d %v(%v,%v) = %v, want %v", d, alg, x, y, res.GCD, want)
				}
			}
		}
	}
}

// TestSharedFactorRecovered plants a shared prime and checks every
// algorithm recovers exactly it, in both terminate modes.
func TestSharedFactorRecovered(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	p := nextPrime(randOdd(r, 128))
	q1 := nextPrime(randOdd(r, 128))
	q2 := nextPrime(randOdd(r, 128))
	n1 := new(big.Int).Mul(p, q1)
	n2 := new(big.Int).Mul(p, q2)
	for _, alg := range Algorithms {
		for _, early := range []int{0, 128} {
			res, err := Run(alg, n1, n2, Options{EarlyTerminateBits: early})
			if err != nil {
				t.Fatal(err)
			}
			if res.GCD.Cmp(p) != 0 {
				t.Errorf("%v early=%d: gcd = %v, want shared prime", alg, early, res.GCD)
			}
			if res.EarlyTerminated {
				t.Errorf("%v: shared-prime run must not early-terminate", alg)
			}
		}
	}
}

// TestEarlyTerminateCoprime verifies the early-terminate variant returns 1
// quickly for coprime inputs and reports the termination.
func TestEarlyTerminateCoprime(t *testing.T) {
	r := rand.New(rand.NewSource(44))
	for i := 0; i < 20; i++ {
		x := randOdd(r, 256)
		y := randOdd(r, 256)
		if new(big.Int).GCD(nil, nil, x, y).BitLen() > 64 {
			continue // astronomically unlikely; skip to keep the invariant clean
		}
		for _, alg := range Algorithms {
			full, err := Run(alg, x, y, Options{})
			if err != nil {
				t.Fatal(err)
			}
			early, err := Run(alg, x, y, Options{EarlyTerminateBits: 128})
			if err != nil {
				t.Fatal(err)
			}
			if early.GCD.Int64() != 1 || !early.EarlyTerminated {
				t.Errorf("%v: early run = (%v, terminated=%v)", alg, early.GCD, early.EarlyTerminated)
			}
			if early.Iterations >= full.Iterations {
				t.Errorf("%v: early (%d iters) not faster than full (%d)", alg, early.Iterations, full.Iterations)
			}
		}
	}
}

// TestEqualInputs checks the degenerate duplicate-modulus case: gcd(n, n) = n.
func TestEqualInputs(t *testing.T) {
	n := big.NewInt(982451653)
	for _, alg := range Algorithms {
		res, err := Run(alg, n, n, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.GCD.Cmp(n) != 0 {
			t.Errorf("%v: gcd(n,n) = %v, want n", alg, res.GCD)
		}
	}
}

func TestInputValidation(t *testing.T) {
	odd := big.NewInt(15)
	if _, err := Run(Approximate, big.NewInt(14), odd, Options{}); err == nil {
		t.Error("even X accepted")
	}
	if _, err := Run(Approximate, odd, big.NewInt(0), Options{}); err == nil {
		t.Error("zero Y accepted")
	}
	if _, err := Run(Approximate, big.NewInt(-3), odd, Options{}); err == nil {
		t.Error("negative X accepted")
	}
	if _, err := Run(Approximate, odd, odd, Options{WordBits: 1}); err == nil {
		t.Error("d = 1 accepted")
	}
	if _, err := Run(Approximate, odd, odd, Options{WordBits: 64}); err == nil {
		t.Error("d = 64 accepted")
	}
	if _, err := Run(Algorithm(99), odd, odd, Options{}); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

// TestIterationOrdering checks the qualitative claims of Section II:
// on the running example Fast <= Original and FastBinary <= Binary,
// and (E) tracks (B) almost exactly (Table IV: difference ~0.001%).
func TestIterationOrdering(t *testing.T) {
	r := rand.New(rand.NewSource(45))
	sumB, sumE := 0, 0
	for i := 0; i < 100; i++ {
		x := randOdd(r, 512)
		y := randOdd(r, 512)
		var iters [5]int
		for _, alg := range Algorithms {
			res, err := Run(alg, x, y, Options{})
			if err != nil {
				t.Fatal(err)
			}
			iters[alg] = res.Iterations
		}
		if iters[FastBinary] > iters[Binary] {
			t.Errorf("FastBinary (%d) > Binary (%d)", iters[FastBinary], iters[Binary])
		}
		sumB += iters[Fast]
		sumE += iters[Approximate]
	}
	// (E) and (B) must agree to well under 1% on average.
	diff := float64(sumE-sumB) / float64(sumB)
	if diff < 0 {
		diff = -diff
	}
	if diff > 0.01 {
		t.Errorf("mean iterations: Approximate deviates from Fast by %.3f%%", diff*100)
	}
}

func TestAlgorithmStrings(t *testing.T) {
	if Original.Letter() != "A" || Approximate.Letter() != "E" {
		t.Error("letters wrong")
	}
	if Approximate.String() != "Approximate" {
		t.Error("name wrong")
	}
	if Algorithm(99).Letter() != "?" {
		t.Error("out-of-range letter")
	}
}

func BenchmarkReferenceApproximate512(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	x := randOdd(r, 512)
	y := randOdd(r, 512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(Approximate, x, y, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
