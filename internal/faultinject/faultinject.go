// Package faultinject provides deterministic fault injection for the GCD
// engines' chaos tests: seeded triggers that panic inside the pair kernel,
// cancel the run's context at an exact point, or slow a chosen work unit.
//
// The engines carry a *Hook in their Config (nil in production) and call
// through the nil-safe On* wrappers, so the non-injected hot path pays a
// single pointer test. Hooks fire on the engine's worker goroutines and
// must therefore be race-free; the Plan-built hooks only read immutable
// fields and invoke an idempotent context.CancelFunc.
package faultinject

import (
	"context"
	"fmt"
	"time"
)

// Hook receives engine events. A nil *Hook disables injection.
type Hook struct {
	// Pair fires before pair attempt k (run-global 0-based ordinal) on
	// modulus indices (i, j). A panic raised here is quarantined by the
	// bulk engine exactly like a panic inside the GCD kernel.
	Pair func(k int64, i, j int)
	// Block fires when a worker claims work unit u (an all-pairs block or
	// an incremental stripe).
	Block func(u int)
	// Op fires before tree operation k of the batch-GCD engine.
	Op func(k int64)
}

// OnPair invokes Pair if set; safe on a nil hook.
func (h *Hook) OnPair(k int64, i, j int) {
	if h != nil && h.Pair != nil {
		h.Pair(k, i, j)
	}
}

// OnBlock invokes Block if set; safe on a nil hook.
func (h *Hook) OnBlock(u int) {
	if h != nil && h.Block != nil {
		h.Block(u)
	}
}

// OnOp invokes Op if set; safe on a nil hook.
func (h *Hook) OnOp(k int64) {
	if h != nil && h.Op != nil {
		h.Op(k)
	}
}

// Plan is a declarative fault schedule compiled into a Hook. The zero
// value of each trigger means disabled; construct with NewPlan so the
// ordinal triggers default to -1 (0 is a valid ordinal).
type Plan struct {
	// PanicAtPair panics at pair ordinal k; -1 disables. Which (i, j) is
	// the k-th attempt depends on worker interleaving, so use PanicAtIJ
	// when the test asserts exact findings.
	PanicAtPair int64
	// PanicAtIJ panics when the given (i, j) pair is attempted; nil
	// disables. This is the value-targeted variant: quarantining a pair
	// with gcd 1 provably leaves the findings unchanged.
	PanicAtIJ *[2]int
	// CancelAtPair invokes Cancel at pair ordinal k; -1 disables.
	CancelAtPair int64
	// CancelAtOp invokes Cancel at batch-GCD tree operation k; -1 disables.
	CancelAtOp int64
	// SlowUnit sleeps SlowFor when work unit SlowUnit is claimed; -1
	// disables.
	SlowUnit int
	SlowFor  time.Duration
	// Cancel is the CancelFunc the CancelAt* triggers invoke.
	Cancel context.CancelFunc
}

// NewPlan returns a Plan with every trigger disabled.
func NewPlan() *Plan {
	return &Plan{PanicAtPair: -1, CancelAtPair: -1, CancelAtOp: -1, SlowUnit: -1}
}

// Hook compiles the plan. The same hook may be shared by many workers.
func (p *Plan) Hook() *Hook {
	return &Hook{
		Pair: func(k int64, i, j int) {
			if p.CancelAtPair >= 0 && k >= p.CancelAtPair && p.Cancel != nil {
				p.Cancel()
			}
			if p.PanicAtPair >= 0 && k == p.PanicAtPair {
				panic(fmt.Sprintf("faultinject: injected panic at pair ordinal %d (%d,%d)", k, i, j))
			}
			if p.PanicAtIJ != nil && p.PanicAtIJ[0] == i && p.PanicAtIJ[1] == j {
				panic(fmt.Sprintf("faultinject: injected panic at pair (%d,%d)", i, j))
			}
		},
		Block: func(u int) {
			if p.SlowUnit >= 0 && u == p.SlowUnit && p.SlowFor > 0 {
				time.Sleep(p.SlowFor)
			}
		},
		Op: func(k int64) {
			if p.CancelAtOp >= 0 && k >= p.CancelAtOp && p.Cancel != nil {
				p.Cancel()
			}
		},
	}
}
