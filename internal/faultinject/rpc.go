package faultinject

import (
	"math/rand"
	"sync"
	"time"
)

// RPCFault is the fault decision for one protocol message. The zero
// value means "deliver normally". The faults compose with an at-least-
// once protocol: a dropped request never reaches the server (the client
// must retry), a dropped reply was processed but the client cannot know
// (the retry must be idempotent), a duplicate delivers the same request
// twice, and a delay stalls the message long enough for leases to
// expire underneath it.
type RPCFault struct {
	// DropRequest loses the message before the server sees it.
	DropRequest bool
	// DropReply processes the request but loses the response.
	DropReply bool
	// Duplicate delivers the request a second time after the first
	// response (both responses are produced; the client sees the first).
	Duplicate bool
	// Delay stalls the message before delivery.
	Delay time.Duration
}

// RPCPlan draws per-message faults from seeded probabilities, so a
// chaos campaign is deterministic given (seed, message sequence) and a
// failure reproduces from its logged seed. Probabilities are in [0, 1]
// and evaluated in order drop-request, drop-reply, duplicate (mutually
// exclusive: at most one per message); Delay applies independently.
// The zero value injects nothing.
type RPCPlan struct {
	// PDropRequest, PDropReply, PDuplicate are per-message probabilities.
	PDropRequest float64
	PDropReply   float64
	PDuplicate   float64
	// PDelay is the probability of stalling a message by Delay.
	PDelay float64
	Delay  time.Duration
	// Seed fixes the fault sequence; 0 means 1 (stay deterministic).
	Seed int64
	// Exempt exempts whole operations (e.g. "complete") from injection,
	// for campaigns that must preserve a liveness guarantee.
	Exempt map[string]bool

	mu  sync.Mutex
	rng *rand.Rand
}

// Next draws the fault for the next message of operation op ("lease",
// "renew", "complete", ...). Safe for concurrent use; the draw order
// then depends on goroutine interleaving, which is fine — determinism
// per (seed, sequence) is for replaying single-threaded campaigns, and
// concurrent campaigns still get a fixed fault *mix*.
func (p *RPCPlan) Next(op string) RPCFault {
	if p == nil {
		return RPCFault{}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.rng == nil {
		seed := p.Seed
		if seed == 0 {
			seed = 1
		}
		p.rng = rand.New(rand.NewSource(seed))
	}
	// Always burn the same number of draws per message so exempt ops do
	// not shift the sequence of the others.
	roll := p.rng.Float64()
	delayRoll := p.rng.Float64()
	if p.Exempt[op] {
		return RPCFault{}
	}
	var f RPCFault
	switch {
	case roll < p.PDropRequest:
		f.DropRequest = true
	case roll < p.PDropRequest+p.PDropReply:
		f.DropReply = true
	case roll < p.PDropRequest+p.PDropReply+p.PDuplicate:
		f.Duplicate = true
	}
	if delayRoll < p.PDelay {
		f.Delay = p.Delay
	}
	return f
}
