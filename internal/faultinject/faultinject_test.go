package faultinject

import (
	"context"
	"testing"
	"time"
)

// TestNilHookSafe: every On* wrapper must be a no-op on nil hooks and
// nil-field hooks, since that is the production path.
func TestNilHookSafe(t *testing.T) {
	var h *Hook
	h.OnPair(0, 1, 2)
	h.OnBlock(3)
	h.OnOp(4)
	h = &Hook{}
	h.OnPair(0, 1, 2)
	h.OnBlock(3)
	h.OnOp(4)
}

func TestPlanPanicAtPairOrdinal(t *testing.T) {
	p := NewPlan()
	p.PanicAtPair = 2
	h := p.Hook()
	h.OnPair(0, 0, 1)
	h.OnPair(1, 0, 2)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("no panic at the target ordinal")
			}
		}()
		h.OnPair(2, 0, 3)
	}()
	h.OnPair(3, 0, 4) // exact match only: later ordinals pass
}

func TestPlanPanicAtIJ(t *testing.T) {
	p := NewPlan()
	p.PanicAtIJ = &[2]int{5, 9}
	h := p.Hook()
	h.OnPair(0, 5, 8)
	h.OnPair(1, 9, 5) // order matters: only (5,9) triggers
	func() {
		defer func() {
			if recover() == nil {
				t.Error("no panic at the target pair")
			}
		}()
		h.OnPair(2, 5, 9)
	}()
}

func TestPlanCancelAtPair(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := NewPlan()
	p.CancelAtPair = 3
	p.Cancel = cancel
	h := p.Hook()
	h.OnPair(2, 0, 1)
	if ctx.Err() != nil {
		t.Fatal("canceled early")
	}
	// >= semantics: the trigger holds from the target ordinal onward, so a
	// worker that skips past the exact ordinal still fires it.
	h.OnPair(5, 0, 2)
	if ctx.Err() == nil {
		t.Fatal("not canceled at ordinal past the target")
	}
}

func TestPlanCancelAtOp(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := NewPlan()
	p.CancelAtOp = 0
	p.Cancel = cancel
	h := p.Hook()
	h.OnOp(0)
	if ctx.Err() == nil {
		t.Fatal("not canceled at op 0")
	}
}

func TestPlanSlowUnit(t *testing.T) {
	p := NewPlan()
	p.SlowUnit = 1
	p.SlowFor = 10 * time.Millisecond
	h := p.Hook()
	start := time.Now()
	h.OnBlock(0)
	if time.Since(start) >= p.SlowFor {
		t.Fatal("wrong unit slowed")
	}
	start = time.Now()
	h.OnBlock(1)
	if time.Since(start) < p.SlowFor {
		t.Fatal("target unit not slowed")
	}
}

// TestNewPlanDisabled: the fresh plan must not fire anything, including
// at ordinal 0 (the reason the disabled sentinel is -1, not 0).
func TestNewPlanDisabled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := NewPlan()
	p.Cancel = cancel
	h := p.Hook()
	h.OnPair(0, 0, 1)
	h.OnBlock(0)
	h.OnOp(0)
	if ctx.Err() != nil {
		t.Fatal("disabled plan canceled the context")
	}
}
