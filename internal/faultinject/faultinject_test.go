package faultinject

import (
	"context"
	"testing"
	"time"
)

// TestNilHookSafe: every On* wrapper must be a no-op on nil hooks and
// nil-field hooks, since that is the production path.
func TestNilHookSafe(t *testing.T) {
	var h *Hook
	h.OnPair(0, 1, 2)
	h.OnBlock(3)
	h.OnOp(4)
	h = &Hook{}
	h.OnPair(0, 1, 2)
	h.OnBlock(3)
	h.OnOp(4)
}

func TestPlanPanicAtPairOrdinal(t *testing.T) {
	p := NewPlan()
	p.PanicAtPair = 2
	h := p.Hook()
	h.OnPair(0, 0, 1)
	h.OnPair(1, 0, 2)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("no panic at the target ordinal")
			}
		}()
		h.OnPair(2, 0, 3)
	}()
	h.OnPair(3, 0, 4) // exact match only: later ordinals pass
}

func TestPlanPanicAtIJ(t *testing.T) {
	p := NewPlan()
	p.PanicAtIJ = &[2]int{5, 9}
	h := p.Hook()
	h.OnPair(0, 5, 8)
	h.OnPair(1, 9, 5) // order matters: only (5,9) triggers
	func() {
		defer func() {
			if recover() == nil {
				t.Error("no panic at the target pair")
			}
		}()
		h.OnPair(2, 5, 9)
	}()
}

func TestPlanCancelAtPair(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := NewPlan()
	p.CancelAtPair = 3
	p.Cancel = cancel
	h := p.Hook()
	h.OnPair(2, 0, 1)
	if ctx.Err() != nil {
		t.Fatal("canceled early")
	}
	// >= semantics: the trigger holds from the target ordinal onward, so a
	// worker that skips past the exact ordinal still fires it.
	h.OnPair(5, 0, 2)
	if ctx.Err() == nil {
		t.Fatal("not canceled at ordinal past the target")
	}
}

func TestPlanCancelAtOp(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := NewPlan()
	p.CancelAtOp = 0
	p.Cancel = cancel
	h := p.Hook()
	h.OnOp(0)
	if ctx.Err() == nil {
		t.Fatal("not canceled at op 0")
	}
}

func TestPlanSlowUnit(t *testing.T) {
	p := NewPlan()
	p.SlowUnit = 1
	p.SlowFor = 10 * time.Millisecond
	h := p.Hook()
	start := time.Now()
	h.OnBlock(0)
	if time.Since(start) >= p.SlowFor {
		t.Fatal("wrong unit slowed")
	}
	start = time.Now()
	h.OnBlock(1)
	if time.Since(start) < p.SlowFor {
		t.Fatal("target unit not slowed")
	}
}

// TestNewPlanDisabled: the fresh plan must not fire anything, including
// at ordinal 0 (the reason the disabled sentinel is -1, not 0).
func TestNewPlanDisabled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := NewPlan()
	p.Cancel = cancel
	h := p.Hook()
	h.OnPair(0, 0, 1)
	h.OnBlock(0)
	h.OnOp(0)
	if ctx.Err() != nil {
		t.Fatal("disabled plan canceled the context")
	}
}

// TestRPCPlanDeterministic: the same seed draws the same fault sequence
// — the property that makes a chaos failure replayable from its seed.
func TestRPCPlanDeterministic(t *testing.T) {
	draw := func(seed int64) []RPCFault {
		p := &RPCPlan{
			PDropRequest: 0.2, PDropReply: 0.2, PDuplicate: 0.2,
			PDelay: 0.3, Delay: time.Millisecond, Seed: seed,
		}
		out := make([]RPCFault, 50)
		for i := range out {
			out[i] = p.Next("lease")
		}
		return out
	}
	a, b := draw(7), draw(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := draw(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds drew identical sequences")
	}
}

// TestRPCPlanMix: probabilities roughly govern the mix, faults are
// mutually exclusive, and a zero plan injects nothing.
func TestRPCPlanMix(t *testing.T) {
	p := &RPCPlan{PDropRequest: 0.25, PDropReply: 0.25, PDuplicate: 0.25, Seed: 3}
	var dropReq, dropRep, dup, clean int
	const n = 2000
	for i := 0; i < n; i++ {
		f := p.Next("renew")
		set := 0
		if f.DropRequest {
			dropReq++
			set++
		}
		if f.DropReply {
			dropRep++
			set++
		}
		if f.Duplicate {
			dup++
			set++
		}
		if set > 1 {
			t.Fatalf("draw %d set %d faults: %+v", i, set, f)
		}
		if set == 0 {
			clean++
		}
		if f.Delay != 0 {
			t.Fatalf("delay drawn with PDelay=0: %+v", f)
		}
	}
	for name, got := range map[string]int{"drop-request": dropReq, "drop-reply": dropRep, "duplicate": dup, "clean": clean} {
		if got < n/8 || got > n/2 {
			t.Errorf("%s = %d of %d, want roughly %d", name, got, n, n/4)
		}
	}

	var zero *RPCPlan
	if f := zero.Next("lease"); f != (RPCFault{}) {
		t.Fatalf("nil plan injected %+v", f)
	}
	if f := new(RPCPlan).Next("lease"); f != (RPCFault{}) {
		t.Fatalf("zero plan injected %+v", f)
	}
}

// TestRPCPlanExempt: exempting an op suppresses its faults without
// shifting the draw sequence of the other ops.
func TestRPCPlanExempt(t *testing.T) {
	mk := func(exempt bool) *RPCPlan {
		p := &RPCPlan{PDropRequest: 0.5, Seed: 11}
		if exempt {
			p.Exempt = map[string]bool{"complete": true}
		}
		return p
	}
	a, b := mk(false), mk(true)
	for i := 0; i < 100; i++ {
		op := "lease"
		if i%3 == 0 {
			op = "complete"
		}
		fa, fb := a.Next(op), b.Next(op)
		if op == "complete" {
			if fb != (RPCFault{}) {
				t.Fatalf("draw %d: exempt op got fault %+v", i, fb)
			}
			continue
		}
		if fa != fb {
			t.Fatalf("draw %d: exemption shifted sequence: %+v vs %+v", i, fa, fb)
		}
	}
}
