package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// StatusServer serves the live view of a running scan:
//
//	GET /healthz              liveness: {"status":"ok","uptime_seconds":...}
//	GET /metrics              Prometheus text exposition of the registry
//	GET /metrics?format=json  the same snapshot as expvar-style JSON
//	GET /debug/vars           alias for the JSON snapshot
//	GET /debug/pprof/...      the standard net/http/pprof handlers
//
// It binds its own mux (never http.DefaultServeMux, so importing obs
// does not leak handlers into embedding programs) and listens
// immediately on construction, so ":0" yields a usable Addr for tests.
type StatusServer struct {
	ln    net.Listener
	srv   *http.Server
	reg   *Registry
	start time.Time
	done  chan struct{}
}

// ServeStatus starts a status server for reg on addr (host:port; ":0"
// picks a free port). The server runs until Close.
func ServeStatus(addr string, reg *Registry) (*StatusServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: status listener: %w", err)
	}
	s := &StatusServer{
		ln:    ln,
		reg:   reg,
		start: time.Now(),
		done:  make(chan struct{}),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/debug/vars", s.handleVars)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.srv = &http.Server{Handler: mux}
	go func() {
		defer close(s.done)
		_ = s.srv.Serve(ln) // returns ErrServerClosed on Close
	}()
	return s, nil
}

// Addr returns the bound address (resolving ":0").
func (s *StatusServer) Addr() string { return s.ln.Addr().String() }

// Close stops the server and waits for the serve loop to exit.
func (s *StatusServer) Close() error {
	err := s.srv.Close()
	<-s.done
	return err
}

func (s *StatusServer) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]any{
		"status":         "ok",
		"uptime_seconds": time.Since(s.start).Seconds(),
	})
}

func (s *StatusServer) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := s.reg.Snapshot()
	if r.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(snap)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = snap.WritePrometheus(w)
}

func (s *StatusServer) handleVars(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(s.reg.Snapshot())
}
