package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
	"time"
)

// StatusServer serves the live view of a running scan:
//
//	GET /healthz              liveness: {"status":"ok","uptime_seconds":...}
//	GET /readyz               readiness: 200 once accepting work, 503 before
//	                          and again during drain (see SetReady)
//	GET /metrics              Prometheus text exposition of the registry
//	GET /metrics?format=json  the same snapshot as expvar-style JSON
//	GET /timeline             bounded snapshot ring with rates (JSON)
//	GET /dashboard            dependency-free HTML view polling /timeline
//	GET /debug/vars           alias for the JSON snapshot
//	GET /debug/pprof/...      the standard net/http/pprof handlers
//
// It binds its own mux (never http.DefaultServeMux, so importing obs
// does not leak handlers into embedding programs) and listens
// immediately on construction, so ":0" yields a usable Addr for tests.
type StatusServer struct {
	ln       net.Listener
	srv      *http.Server
	start    time.Time
	done     chan struct{}
	ready    atomic.Bool
	snapshot func() *Snapshot
	timeline *TimeSeries
	tlStop   chan struct{}
	tlOnce   sync.Once
	tlDone   chan struct{}
}

// StatusOptions extends ServeStatus for servers that are more than a
// metrics endpoint — a fleet coordinator mounts its protocol handlers
// and swaps in a merged fleet-wide snapshot.
type StatusOptions struct {
	// Registry backs /metrics and /debug/vars; nil serves empty snapshots
	// unless Snapshot overrides it.
	Registry *Registry
	// Snapshot, when non-nil, replaces Registry.Snapshot() as the source
	// for /metrics and /debug/vars (e.g. a coordinator merging worker
	// snapshots into its own). Called per scrape; must be safe for
	// concurrent use.
	Snapshot func() *Snapshot
	// Handlers are additional routes mounted on the server's mux; the
	// patterns must not collide with the built-in endpoints.
	Handlers map[string]http.Handler
	// Ready is the initial /readyz state. ServeStatus (without options)
	// starts ready for backward compatibility; a coordinator typically
	// starts not-ready and flips via SetReady once it is accepting work.
	Ready bool
	// Timeline backs /timeline and /dashboard; nil gets a fresh ring of
	// DefaultTimelineCapacity. The server records one snapshot per
	// TimelineInterval (default one second) until Close/Shutdown.
	Timeline *TimeSeries
	// TimelineInterval is the snapshot cadence; <= 0 means one second.
	TimelineInterval time.Duration
}

// ServeStatus starts a status server for reg on addr (host:port; ":0"
// picks a free port), immediately ready. The server runs until Close.
func ServeStatus(addr string, reg *Registry) (*StatusServer, error) {
	return ServeStatusOptions(addr, StatusOptions{Registry: reg, Ready: true})
}

// ServeStatusOptions starts a status server configured by opts.
func ServeStatusOptions(addr string, opts StatusOptions) (*StatusServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: status listener: %w", err)
	}
	reg := opts.Registry
	s := &StatusServer{
		ln:       ln,
		start:    time.Now(),
		done:     make(chan struct{}),
		snapshot: opts.Snapshot,
	}
	if s.snapshot == nil {
		s.snapshot = reg.Snapshot
	}
	s.ready.Store(opts.Ready)
	s.timeline = opts.Timeline
	if s.timeline == nil {
		s.timeline = NewTimeSeries(0)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/timeline", s.handleTimeline)
	mux.HandleFunc("/dashboard", s.handleDashboard)
	mux.HandleFunc("/debug/vars", s.handleVars)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	for pattern, h := range opts.Handlers {
		mux.Handle(pattern, h)
	}
	s.srv = &http.Server{Handler: mux}
	go func() {
		defer close(s.done)
		_ = s.srv.Serve(ln) // returns ErrServerClosed on Close/Shutdown
	}()

	// Timeline recorder: one snapshot immediately (so /timeline is never
	// empty) then one per interval until the server stops.
	interval := opts.TimelineInterval
	if interval <= 0 {
		interval = time.Second
	}
	s.tlStop = make(chan struct{})
	s.tlDone = make(chan struct{})
	s.timeline.Record(time.Now(), s.snapshot())
	go func() {
		defer close(s.tlDone)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-s.tlStop:
				return
			case now := <-t.C:
				s.timeline.Record(now, s.snapshot())
			}
		}
	}()
	return s, nil
}

// Timeline returns the server's snapshot ring (e.g. to fold its final
// state into a report).
func (s *StatusServer) Timeline() *TimeSeries { return s.timeline }

// stopTimeline halts the recorder goroutine; safe to call repeatedly.
func (s *StatusServer) stopTimeline() {
	s.tlOnce.Do(func() { close(s.tlStop) })
	<-s.tlDone
}

// Addr returns the bound address (resolving ":0").
func (s *StatusServer) Addr() string { return s.ln.Addr().String() }

// SetReady flips the /readyz state: true once the process accepts work,
// false again when drain begins, so load balancers and fleet workers
// stop sending requests before the listener goes away.
func (s *StatusServer) SetReady(ready bool) { s.ready.Store(ready) }

// Close stops the server immediately (in-flight requests are dropped)
// and waits for the serve loop to exit.
func (s *StatusServer) Close() error {
	s.stopTimeline()
	err := s.srv.Close()
	<-s.done
	return err
}

// Shutdown marks the server not-ready and drains gracefully: the
// listener closes, in-flight requests run to completion, and new
// connections are refused. It returns ctx.Err() if the drain outlives
// ctx (remaining requests are then abandoned, as with Close).
func (s *StatusServer) Shutdown(ctx context.Context) error {
	s.ready.Store(false)
	s.stopTimeline()
	err := s.srv.Shutdown(ctx)
	<-s.done
	return err
}

func (s *StatusServer) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]any{
		"status":         "ok",
		"uptime_seconds": time.Since(s.start).Seconds(),
	})
}

func (s *StatusServer) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if !s.ready.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		_ = json.NewEncoder(w).Encode(map[string]any{"status": "draining"})
		return
	}
	_ = json.NewEncoder(w).Encode(map[string]any{"status": "ready"})
}

func (s *StatusServer) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := s.snapshot()
	if r.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(snap)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = snap.WritePrometheus(w)
}

func (s *StatusServer) handleVars(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(s.snapshot())
}

func (s *StatusServer) handleTimeline(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(s.timeline.Timeline())
}

func (s *StatusServer) handleDashboard(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_, _ = w.Write([]byte(dashboardHTML))
}
