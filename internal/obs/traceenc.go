package obs

// Hand-rolled TraceEvent encoder. Span ends ride the engines' per-cell
// path, and encoding/json's reflective marshal was the dominant cost of
// an emission (and most of its garbage). appendEvent produces bytes
// IDENTICAL to json.Marshal of the same event — field order, omitempty
// behavior, HTML escaping, float and timestamp formatting — so trace
// files stay byte-compatible with the pre-existing schema; the golden
// test and TestAppendEventMatchesEncodingJSON enforce the equivalence.

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strconv"
	"time"
	"unicode/utf8"
)

// appendEvent appends ev as one compact JSON object plus a trailing
// newline — exactly what json.Encoder.Encode(ev) would write. It
// returns an error (and no bytes) where json.Marshal would: an
// out-of-range year or a non-finite float.
func appendEvent(buf []byte, ev *TraceEvent) ([]byte, error) {
	var err error
	buf = append(buf, `{"ts":`...)
	if buf, err = appendTime(buf, ev.Time); err != nil {
		return nil, err
	}
	if ev.TraceID != "" {
		buf = append(buf, `,"trace":`...)
		buf = appendString(buf, ev.TraceID)
	}
	if ev.SpanID != "" {
		buf = append(buf, `,"span":`...)
		buf = appendString(buf, ev.SpanID)
	}
	if ev.Parent != "" {
		buf = append(buf, `,"parent":`...)
		buf = appendString(buf, ev.Parent)
	}
	if ev.Node != "" {
		buf = append(buf, `,"node":`...)
		buf = appendString(buf, ev.Node)
	}
	buf = append(buf, `,"kind":`...)
	buf = appendString(buf, ev.Kind)
	buf = append(buf, `,"name":`...)
	buf = appendString(buf, ev.Name)
	if ev.Start != nil {
		buf = append(buf, `,"start":`...)
		if buf, err = appendTime(buf, *ev.Start); err != nil {
			return nil, err
		}
	}
	if ev.DurMS != 0 {
		buf = append(buf, `,"dur_ms":`...)
		if buf, err = appendFloat(buf, ev.DurMS); err != nil {
			return nil, err
		}
	}
	if len(ev.Attrs) > 0 {
		buf = append(buf, `,"attrs":{`...)
		keys := make([]string, 0, len(ev.Attrs))
		for k := range ev.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys) // json.Marshal sorts map keys
		for i, k := range keys {
			if i > 0 {
				buf = append(buf, ',')
			}
			buf = appendString(buf, k)
			buf = append(buf, ':')
			if buf, err = appendValue(buf, ev.Attrs[k]); err != nil {
				return nil, err
			}
		}
		buf = append(buf, '}')
	}
	buf = append(buf, '}', '\n')
	return buf, nil
}

// appendTime appends t as json would: a quoted RFC 3339 timestamp with
// trailing fractional zeros trimmed. time.Time.MarshalJSON rejects
// years outside [0, 9999]; so does this.
func appendTime(buf []byte, t time.Time) ([]byte, error) {
	if y := t.Year(); y < 0 || y >= 10000 {
		return nil, fmt.Errorf("obs: trace timestamp year %d out of RFC 3339 range", y)
	}
	buf = append(buf, '"')
	buf = t.AppendFormat(buf, time.RFC3339Nano)
	return append(buf, '"'), nil
}

// appendFloat appends f in json.Marshal's float syntax: 'f' notation in
// the human range, 'e' notation with a minimal exponent outside it.
func appendFloat(buf []byte, f float64) ([]byte, error) {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return nil, fmt.Errorf("obs: non-finite trace value %v", f)
	}
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	buf = strconv.AppendFloat(buf, f, format, -1, 64)
	if format == 'e' {
		// json trims "e-09" to "e-9".
		if n := len(buf); n >= 4 && buf[n-4] == 'e' && buf[n-3] == '-' && buf[n-2] == '0' {
			buf[n-2] = buf[n-1]
			buf = buf[:n-1]
		}
	}
	return buf, nil
}

// appendValue appends one attribute value. The concrete types the
// engines and the fleet merge path emit are handled inline; anything
// else falls back to json.Marshal, whose compact HTML-escaped output is
// what the inline cases reproduce.
func appendValue(buf []byte, v any) ([]byte, error) {
	switch x := v.(type) {
	case nil:
		return append(buf, "null"...), nil
	case string:
		return appendString(buf, x), nil
	case bool:
		return strconv.AppendBool(buf, x), nil
	case int:
		return strconv.AppendInt(buf, int64(x), 10), nil
	case int64:
		return strconv.AppendInt(buf, x, 10), nil
	case uint64:
		return strconv.AppendUint(buf, x, 10), nil
	case float64:
		return appendFloat(buf, x)
	default:
		raw, err := json.Marshal(v)
		if err != nil {
			return nil, err
		}
		return append(buf, raw...), nil
	}
}

const hexDigits = "0123456789abcdef"

// jsonSafe marks the ASCII bytes json.Marshal passes through verbatim
// with HTML escaping on (its default): printable, except the quote and
// backslash, and the HTML-significant '<', '>' and '&'.
var jsonSafe = func() (safe [utf8.RuneSelf]bool) {
	for b := 0x20; b < utf8.RuneSelf; b++ {
		safe[b] = true
	}
	safe['"'], safe['\\'] = false, false
	safe['<'], safe['>'], safe['&'] = false, false, false
	return
}()

// appendString appends s as a quoted JSON string, matching
// json.Marshal's escaping exactly: backslash shorthands for the quote,
// backslash, newline, carriage return and tab; \u00xx for the other
// control characters and for the HTML-significant ASCII; \ufffd for
// invalid UTF-8; and \u2028 / \u2029 for the two line separators
// JavaScript cannot take raw.
func appendString(buf []byte, s string) []byte {
	buf = append(buf, '"')
	start := 0
	for i := 0; i < len(s); {
		if b := s[i]; b < utf8.RuneSelf {
			if jsonSafe[b] {
				i++
				continue
			}
			buf = append(buf, s[start:i]...)
			switch b {
			case '\\', '"':
				buf = append(buf, '\\', b)
			case '\n':
				buf = append(buf, '\\', 'n')
			case '\r':
				buf = append(buf, '\\', 'r')
			case '\t':
				buf = append(buf, '\\', 't')
			default:
				buf = append(buf, '\\', 'u', '0', '0', hexDigits[b>>4], hexDigits[b&0xF])
			}
			i++
			start = i
			continue
		}
		r, size := utf8.DecodeRuneInString(s[i:])
		if r == utf8.RuneError && size == 1 {
			buf = append(buf, s[start:i]...)
			buf = append(buf, '\\', 'u', 'f', 'f', 'f', 'd')
			i += size
			start = i
			continue
		}
		if r == '\u2028' || r == '\u2029' {
			buf = append(buf, s[start:i]...)
			buf = append(buf, '\\', 'u', '2', '0', '2', hexDigits[r&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	buf = append(buf, s[start:]...)
	return append(buf, '"')
}
