package obs

import (
	"sync"
	"time"
)

// TimeSeries is a bounded ring of periodic Registry snapshots — the
// memory behind GET /timeline and the dashboard. Each Record call
// stores one full snapshot; Timeline renders the ring as a series of
// points with counter deltas converted to per-second rates and
// histogram quantile summaries, so a poller sees throughput over time
// without the server ever growing past its fixed capacity.
type TimeSeries struct {
	mu   sync.Mutex
	cap  int
	pts  []tsPoint // ring buffer, pts[(head+i)%cap] is the i-th oldest
	head int
	n    int
}

type tsPoint struct {
	at   time.Time
	snap *Snapshot
}

// DefaultTimelineCapacity bounds the ring when the caller doesn't: 360
// points is six minutes at the default one-second interval — enough to
// see a straggler develop, small enough to never matter.
const DefaultTimelineCapacity = 360

// NewTimeSeries returns a ring holding at most capacity snapshots
// (DefaultTimelineCapacity when capacity <= 0).
func NewTimeSeries(capacity int) *TimeSeries {
	if capacity <= 0 {
		capacity = DefaultTimelineCapacity
	}
	return &TimeSeries{cap: capacity, pts: make([]tsPoint, capacity)}
}

// Record appends one snapshot taken at the given instant, evicting the
// oldest point once the ring is full. A nil TimeSeries ignores it.
func (ts *TimeSeries) Record(at time.Time, snap *Snapshot) {
	if ts == nil || snap == nil {
		return
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if ts.n < ts.cap {
		ts.pts[(ts.head+ts.n)%ts.cap] = tsPoint{at: at, snap: snap}
		ts.n++
		return
	}
	ts.pts[ts.head] = tsPoint{at: at, snap: snap}
	ts.head = (ts.head + 1) % ts.cap
}

// Len reports the number of stored points.
func (ts *TimeSeries) Len() int {
	if ts == nil {
		return 0
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return ts.n
}

// Timeline is the JSON payload of GET /timeline.
type Timeline struct {
	// Capacity is the ring bound; once Points reaches it, old points
	// fall off the front.
	Capacity int             `json:"capacity"`
	Points   []TimelinePoint `json:"points"`
}

// TimelinePoint is one snapshot instant. Rates carries, for every
// counter, the per-second delta since the previous point (absent on
// the first point). Hists summarizes each histogram down to its count,
// mean and p50/p95/p99 so the dashboard doesn't re-derive quantiles
// from buckets client-side.
type TimelinePoint struct {
	At       time.Time              `json:"ts"`
	Counters map[string]int64       `json:"counters"`
	Gauges   map[string]float64     `json:"gauges,omitempty"`
	Rates    map[string]float64     `json:"rates,omitempty"`
	Hists    map[string]HistSummary `json:"hists,omitempty"`
}

// HistSummary is the quantile digest of one histogram at one instant.
type HistSummary struct {
	Count int64   `json:"count"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// Timeline renders the ring oldest-first. A nil TimeSeries renders
// empty.
func (ts *TimeSeries) Timeline() Timeline {
	if ts == nil {
		return Timeline{}
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	tl := Timeline{Capacity: ts.cap, Points: make([]TimelinePoint, 0, ts.n)}
	var prev *tsPoint
	for i := 0; i < ts.n; i++ {
		p := &ts.pts[(ts.head+i)%ts.cap]
		tp := TimelinePoint{At: p.at, Counters: p.snap.Counters}
		if len(p.snap.Gauges) > 0 {
			tp.Gauges = p.snap.Gauges
		}
		if len(p.snap.Histograms) > 0 {
			tp.Hists = make(map[string]HistSummary, len(p.snap.Histograms))
			for name, h := range p.snap.Histograms {
				tp.Hists[name] = HistSummary{
					Count: h.Count, Mean: h.Mean(),
					P50: h.Quantile(0.50), P95: h.Quantile(0.95), P99: h.Quantile(0.99),
				}
			}
		}
		if prev != nil {
			if dt := p.at.Sub(prev.at).Seconds(); dt > 0 {
				tp.Rates = make(map[string]float64, len(p.snap.Counters))
				for name, v := range p.snap.Counters {
					tp.Rates[name] = float64(v-prev.snap.Counters[name]) / dt
				}
			}
		}
		tl.Points = append(tl.Points, tp)
		prev = p
	}
	return tl
}
