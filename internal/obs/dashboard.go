package obs

// dashboardHTML is the whole /dashboard page: one self-contained HTML
// document, no external assets, no frameworks. It polls /timeline every
// two seconds for throughput, gauges and histogram quantiles, and — on
// a fleet coordinator — /fleet/cells for per-worker attribution and the
// straggler list (the fetch quietly no-ops where that route is absent,
// so the same page works on plain worker status servers).
const dashboardHTML = `<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>bulkgcd scan dashboard</title>
<style>
  body { font: 13px/1.5 -apple-system, "Segoe UI", Roboto, sans-serif;
         margin: 0; padding: 1.2em; background: #11151a; color: #d6dde6; }
  h1 { font-size: 1.1em; margin: 0 0 .8em; color: #8ab4f8; }
  h2 { font-size: .9em; margin: 1.2em 0 .4em; color: #9aa7b5;
       text-transform: uppercase; letter-spacing: .08em; }
  .grid { display: flex; flex-wrap: wrap; gap: 1.5em; }
  .card { background: #1a2027; border: 1px solid #2a323c; border-radius: 6px;
          padding: .8em 1em; min-width: 280px; flex: 1; }
  table { border-collapse: collapse; width: 100%; }
  th, td { text-align: left; padding: .15em .6em .15em 0; font-variant-numeric: tabular-nums; }
  th { color: #9aa7b5; font-weight: 500; }
  td.num { text-align: right; }
  canvas { width: 100%; height: 90px; }
  .big { font-size: 1.6em; color: #e8eef5; }
  .unit { color: #9aa7b5; font-size: .8em; }
  .bar { background: #2a323c; border-radius: 3px; height: 10px; overflow: hidden; }
  .bar > div { background: #8ab4f8; height: 100%; }
  .straggler { color: #f2a65a; }
  .muted { color: #6b7682; }
</style>
</head>
<body>
<h1>bulkgcd scan dashboard <span id="state" class="unit"></span></h1>
<div class="grid">
  <div class="card">
    <h2>throughput</h2>
    <div><span id="rate" class="big">–</span> <span class="unit" id="rateName">pairs/s</span></div>
    <canvas id="spark" width="560" height="90"></canvas>
  </div>
  <div class="card">
    <h2>occupancy</h2>
    <table id="gauges"><tbody></tbody></table>
  </div>
  <div class="card">
    <h2>latency quantiles</h2>
    <table id="hists"><thead><tr><th>histogram</th><th>count</th><th>p50</th><th>p95</th><th>p99</th></tr></thead><tbody></tbody></table>
  </div>
</div>
<div class="grid">
  <div class="card" id="workersCard" style="display:none">
    <h2>workers</h2>
    <table id="workers"><thead><tr><th>worker</th><th>cells</th><th>pairs</th><th></th></tr></thead><tbody></tbody></table>
  </div>
  <div class="card" id="stragglersCard" style="display:none">
    <h2>stragglers</h2>
    <table id="stragglers"><thead><tr><th>cell</th><th>worker</th><th>running</th><th>leases</th></tr></thead><tbody></tbody></table>
  </div>
</div>
<script>
"use strict";
// Preferred throughput counters, most specific first; the dashboard
// follows whichever exists in the snapshot.
const RATE_PREF = ["fleet_pairs_completed_total", "bulk_pairs_total", "batchgcd_findings_total"];
const fmt = v => {
  if (!isFinite(v)) return "–";
  if (v >= 1e6) return (v / 1e6).toFixed(1) + "M";
  if (v >= 1e3) return (v / 1e3).toFixed(1) + "k";
  return v >= 100 ? v.toFixed(0) : v.toPrecision(3);
};
const secs = v => v >= 1 ? v.toFixed(2) + "s" : (v * 1e3).toFixed(2) + "ms";

function drawSpark(series) {
  const c = document.getElementById("spark"), ctx = c.getContext("2d");
  ctx.clearRect(0, 0, c.width, c.height);
  if (series.length < 2) return;
  const max = Math.max(...series, 1e-9);
  ctx.strokeStyle = "#8ab4f8"; ctx.lineWidth = 2; ctx.beginPath();
  series.forEach((v, i) => {
    const x = i / (series.length - 1) * (c.width - 4) + 2;
    const y = c.height - 4 - (v / max) * (c.height - 12);
    i ? ctx.lineTo(x, y) : ctx.moveTo(x, y);
  });
  ctx.stroke();
}

function fillRows(tbodySel, rows) {
  document.querySelector(tbodySel).innerHTML = rows.join("");
}

async function pollTimeline() {
  const tl = await (await fetch("timeline")).json();
  const pts = tl.points || [];
  if (!pts.length) return;
  const last = pts[pts.length - 1];
  const rateName = RATE_PREF.find(n => last.counters && n in last.counters) || Object.keys(last.counters || {})[0];
  const series = pts.map(p => (p.rates && p.rates[rateName]) || 0);
  document.getElementById("rate").textContent = fmt(series[series.length - 1] || 0);
  document.getElementById("rateName").textContent = (rateName || "") + " /s";
  drawSpark(series);

  fillRows("#gauges tbody", Object.entries(last.gauges || {}).sort().map(
    ([k, v]) => "<tr><th>" + k + "</th><td class=num>" + fmt(v) + "</td></tr>"));

  fillRows("#hists tbody", Object.entries(last.hists || {}).sort().map(
    ([k, h]) => "<tr><th>" + k + "</th><td class=num>" + h.count +
      "</td><td class=num>" + secs(h.p50) + "</td><td class=num>" + secs(h.p95) +
      "</td><td class=num>" + secs(h.p99) + "</td></tr>"));
  document.getElementById("state").textContent = "as of " + new Date(last.ts).toLocaleTimeString();
}

async function pollFleet() {
  let body;
  try {
    const resp = await fetch("fleet/cells");
    if (!resp.ok) return;
    body = await resp.json();
  } catch (e) { return; } // not a coordinator; leave fleet cards hidden
  const workers = body.workers || [];
  if (workers.length) {
    document.getElementById("workersCard").style.display = "";
    const maxCells = Math.max(...workers.map(w => w.completed), 1);
    fillRows("#workers tbody", workers.map(w =>
      "<tr><th>" + w.worker + "</th><td class=num>" + w.completed + "</td><td class=num>" +
      fmt(w.pairs) + "</td><td style='min-width:8em'><div class=bar><div style='width:" +
      (100 * w.completed / maxCells).toFixed(0) + "%'></div></div></td></tr>"));
  }
  const strag = (body.cells || []).filter(c => c.straggler);
  if (strag.length) {
    document.getElementById("stragglersCard").style.display = "";
    fillRows("#stragglers tbody", strag.map(c =>
      "<tr><th class=straggler>" + c.unit + "</th><td>" + (c.worker || "<span class=muted>–</span>") +
      "</td><td class=num>" + secs(c.wall_seconds) + "</td><td class=num>" + c.leases + "</td></tr>"));
  }
}

async function tick() {
  try { await pollTimeline(); } catch (e) { /* server draining */ }
  await pollFleet();
}
tick();
setInterval(tick, 2000);
</script>
</body>
</html>
`
