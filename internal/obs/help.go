package obs

import (
	"sort"
	"sync"
)

// The help registry maps metric names to their one-line descriptions,
// feeding the `# HELP` lines of the Prometheus text exposition. Engine
// packages register their metric families from init, so any process
// that links an engine exposes its documentation — and the repository's
// doc-parity test diffs this registry against DESIGN.md's metric table,
// keeping code and docs from drifting.
var (
	helpMu    sync.RWMutex
	helpTexts = map[string]string{}
)

// RegisterHelp associates a help string with a metric name. Later
// registrations of the same name win (harmless: families register
// identical text from init).
func RegisterHelp(name, help string) {
	if name == "" || help == "" {
		return
	}
	helpMu.Lock()
	helpTexts[name] = help
	helpMu.Unlock()
}

// HelpFor returns the registered help for name, "" when unknown.
func HelpFor(name string) string {
	helpMu.RLock()
	defer helpMu.RUnlock()
	return helpTexts[name]
}

// HelpNames returns every registered metric name in lexical order.
func HelpNames() []string {
	helpMu.RLock()
	defer helpMu.RUnlock()
	out := make([]string, 0, len(helpTexts))
	for name := range helpTexts {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
