package obs

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
	"time"
)

// TestAppendEventMatchesEncodingJSON differentially pins the hand-rolled
// trace encoder to encoding/json: for every event shape the engines and
// the fleet merge path produce — plus adversarial strings and floats —
// appendEvent's bytes must equal json.Encoder's. This is what lets the
// fast path replace the reflective marshal without a schema break.
func TestAppendEventMatchesEncodingJSON(t *testing.T) {
	ts := time.Date(2026, 1, 2, 3, 4, 5, 123456789, time.UTC)
	start := ts.Add(-90 * time.Millisecond)
	events := []TraceEvent{
		{Time: ts, Kind: "event", Name: "quarantine", Attrs: map[string]any{"unit": 3, "reason": "panic"}},
		{Time: ts, TraceID: "0123456789abcdef", SpanID: "coordinator:1", Node: "coordinator",
			Kind: "span", Name: "fleet_run", Start: &start, DurMS: 90.125,
			Attrs: map[string]any{"units": int64(12), "done": true, "frac": 0.25}},
		{Time: ts, TraceID: "t", SpanID: "w0:2", Parent: "coordinator:1", Node: "w0",
			Kind: "span", Name: "cell", Start: &start, DurMS: 1e-7,
			Attrs: map[string]any{"pairs": uint64(1 << 40), "nil": nil}},
		// Strings exercising every escape class, HTML escaping included.
		{Time: ts, Kind: "event", Name: `quote " slash \ <tag> & amp`,
			Attrs: map[string]any{"ctl": "a\nb\rc\td\x00e\x1f", "uni": "caf\u00e9 \u2028sep\u2029",
				"bad": string([]byte{0x80, 0xff}) + "ok"}},
		// Float corner cases on both dur_ms and attr values.
		{Time: ts, Kind: "event", Name: "floats", DurMS: 1e21,
			Attrs: map[string]any{"tiny": 1e-9, "neg": -1e-9, "big": 1e22, "zero": 0.0,
				"int": 42.0, "max": math.MaxFloat64}},
		// Attr value of a type the fast path does not special-case.
		{Time: ts, Kind: "event", Name: "fallback",
			Attrs: map[string]any{"list": []int{1, 2, 3}, "m": map[string]string{"k": "<v>"}}},
		// Fractional-second trimming: .25, .0 (dropped dot), full nanos.
		{Time: time.Date(2026, 1, 2, 3, 4, 5, 250000000, time.UTC), Kind: "event", Name: "t1"},
		{Time: time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC), Kind: "event", Name: "t2"},
		{Time: ts.In(time.FixedZone("JST", 9*3600)), Kind: "event", Name: "t3"},
	}
	for _, ev := range events {
		want, err := json.Marshal(ev)
		if err != nil {
			t.Fatalf("%s: reference marshal: %v", ev.Name, err)
		}
		want = append(want, '\n')
		got, err := appendEvent(nil, &ev)
		if err != nil {
			t.Fatalf("%s: appendEvent: %v", ev.Name, err)
		}
		if string(got) != string(want) {
			t.Errorf("%s:\n got %s\nwant %s", ev.Name, got, want)
		}
	}
}

// TestAppendEventRejectsWhatJSONRejects: the fast path must drop the
// same events the reflective marshal would error on, not emit corrupt
// lines for them.
func TestAppendEventRejectsWhatJSONRejects(t *testing.T) {
	ts := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	bad := []TraceEvent{
		{Time: time.Date(10000, 1, 1, 0, 0, 0, 0, time.UTC), Kind: "event", Name: "year"},
		{Time: ts, Kind: "event", Name: "nan", DurMS: math.NaN()},
		{Time: ts, Kind: "event", Name: "inf", Attrs: map[string]any{"v": math.Inf(1)}},
		{Time: ts, Kind: "event", Name: "chan", Attrs: map[string]any{"v": make(chan int)}},
	}
	for _, ev := range bad {
		if _, jerr := json.Marshal(ev); jerr == nil {
			t.Fatalf("%s: expected reference marshal to fail", ev.Name)
		}
		if _, err := appendEvent(nil, &ev); err == nil {
			t.Errorf("%s: appendEvent accepted what json.Marshal rejects", ev.Name)
		}
	}
}

// TestTracerEmitUsesFastPath: an end-to-end write through the Tracer
// still matches a json.Encoder stream for a representative span.
func TestTracerEmitUsesFastPath(t *testing.T) {
	var sb strings.Builder
	tr := NewTracer(&sb)
	at := time.Date(2026, 3, 4, 5, 6, 7, 0, time.UTC)
	tr.SetClock(func() time.Time { at = at.Add(time.Second); return at })
	tr.SetIdentity("deadbeefdeadbeef", "w1")
	s := tr.StartSpan("cell", "cell", 7, "html", "<a&b>")
	s.End("pairs", int64(100))

	var ref strings.Builder
	enc := json.NewEncoder(&ref)
	startAt := time.Date(2026, 3, 4, 5, 6, 8, 0, time.UTC)
	if err := enc.Encode(TraceEvent{
		Time: startAt.Add(time.Second), TraceID: "deadbeefdeadbeef", SpanID: "w1:1", Node: "w1",
		Kind: "span", Name: "cell", Start: &startAt, DurMS: 1000,
		Attrs: map[string]any{"cell": 7, "html": "<a&b>", "pairs": int64(100)},
	}); err != nil {
		t.Fatal(err)
	}
	if sb.String() != ref.String() {
		t.Fatalf("tracer output diverges from json.Encoder:\n got %s\nwant %s", sb.String(), ref.String())
	}
}
