package obs

import (
	"io"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Tracer emits structured run events as JSON Lines: one object per
// line, safe for concurrent use, append-friendly and greppable. The
// engines emit three span kinds — run (one per engine invocation),
// phase (tree level, table cell) and block (bulk work unit) — plus
// point events for irregular occurrences (quarantine, panic recovery,
// checkpoint errors).
//
// A Tracer optionally carries an identity — a trace ID shared by every
// process of one distributed scan, and a node name identifying this
// process — and stamps both on every event. Spans get deterministic
// IDs (node-prefixed sequence numbers) and record their parent span,
// so a fleet's coordinator can merge per-worker event streams into one
// causally-ordered trace.
//
// A nil Tracer discards everything, so engine code traces
// unconditionally. Writes are serialized under a mutex; the engines
// trace at block/phase granularity, far off the per-pair hot path.
type Tracer struct {
	mu   sync.Mutex
	w    io.Writer
	sink Sink

	// state guards the clock and identity; kept separate from mu so
	// identity reads never contend with sink emission.
	state sync.Mutex
	// now is the clock, replaceable in tests for deterministic output.
	now     func() time.Time
	traceID string
	node    string
	seq     atomic.Uint64
}

// Sink receives completed trace events in place of a JSONL writer. A
// worker process traces into an in-memory Collector and ships the
// buffered events to the coordinator; the coordinator traces into a
// file as usual. Implementations must be safe for concurrent use.
type Sink interface {
	EmitTrace(TraceEvent)
}

// NewTracer returns a tracer writing JSONL events to w.
func NewTracer(w io.Writer) *Tracer {
	return &Tracer{w: w, now: time.Now}
}

// NewTracerSink returns a tracer delivering events to s instead of a
// writer.
func NewTracerSink(s Sink) *Tracer {
	return &Tracer{sink: s, now: time.Now}
}

// SetIdentity stamps every subsequent event with the given trace ID and
// node name. Span IDs become "<node>:<seq>", unique across a fleet as
// long as node names are. Safe to call before any event is emitted; a
// nil Tracer ignores it.
func (t *Tracer) SetIdentity(traceID, node string) {
	if t == nil {
		return
	}
	t.state.Lock()
	t.traceID = traceID
	t.node = node
	t.state.Unlock()
}

// SetClock replaces the tracer's clock — tests and skew-corrected
// replay use this for deterministic timestamps. A nil Tracer ignores
// it.
func (t *Tracer) SetClock(now func() time.Time) {
	if t == nil || now == nil {
		return
	}
	t.state.Lock()
	t.now = now
	t.state.Unlock()
}

func (t *Tracer) clock() time.Time {
	t.state.Lock()
	defer t.state.Unlock()
	return t.now()
}

func (t *Tracer) identity() (traceID, node string) {
	t.state.Lock()
	defer t.state.Unlock()
	return t.traceID, t.node
}

// nextID mints a deterministic span ID: the node name (when set)
// prefixing an atomic sequence number.
func (t *Tracer) nextID() string {
	n := t.seq.Add(1)
	_, node := t.identity()
	if node == "" {
		return "s" + strconv.FormatUint(n, 10)
	}
	return node + ":" + strconv.FormatUint(n, 10)
}

// TraceEvent is the one-line wire form of every event. Span ends carry
// the start time and duration; point events carry only Time. TraceID,
// SpanID, Parent and Node are empty (and omitted) on tracers without an
// identity, which keeps single-process traces byte-compatible with the
// pre-fleet schema.
type TraceEvent struct {
	// Time is the event (or span-end) timestamp, RFC 3339 with
	// nanoseconds.
	Time time.Time `json:"ts"`
	// TraceID ties every event of one distributed scan together.
	TraceID string `json:"trace,omitempty"`
	// SpanID is set on spans; Parent is the enclosing span's ID (on
	// spans and on events emitted via Span.Event).
	SpanID string `json:"span,omitempty"`
	Parent string `json:"parent,omitempty"`
	// Node names the process that emitted the event.
	Node string `json:"node,omitempty"`
	// Kind is "event" for point events, "span" for completed spans.
	Kind string `json:"kind"`
	// Name identifies the event: "run", "phase", "block", ...
	Name string `json:"name"`
	// Start and DurMS are set on spans only.
	Start *time.Time `json:"start,omitempty"`
	DurMS float64    `json:"dur_ms,omitempty"`
	// Attrs carries the event's key/value payload.
	Attrs map[string]any `json:"attrs,omitempty"`
}

// attrMap folds alternating key, value pairs into a map (odd trailing
// keys get nil). Kept tiny on purpose: trace attrs are emitted at block
// granularity.
func attrMap(kv []any) map[string]any {
	if len(kv) == 0 {
		return nil
	}
	m := make(map[string]any, (len(kv)+1)/2)
	for i := 0; i+1 < len(kv); i += 2 {
		k, ok := kv[i].(string)
		if !ok {
			continue
		}
		m[k] = kv[i+1]
	}
	return m
}

func (t *Tracer) emit(ev TraceEvent) {
	if t == nil {
		return
	}
	if t.sink != nil {
		t.sink.EmitTrace(ev)
		return
	}
	// Encode outside the writer lock: span ends arrive from every engine
	// worker at once, and serializing the encoding under the mutex would
	// stall them on each other. appendEvent is a hand-rolled encoder that
	// is byte-identical to encoding/json (the golden and differential
	// tests pin this) at a fraction of the reflection cost — span
	// emission sits on the per-cell path, and the BenchmarkHybridTrace-
	// Overhead budget holds it under 2% of engine time.
	line, err := appendEvent(make([]byte, 0, 256), &ev)
	if err != nil {
		return // tracing is best-effort; a failed event must not fail the run
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	_, _ = t.w.Write(line)
}

// EmitEvent emits a fully-formed event verbatim — no identity stamping,
// no clock. The fleet coordinator uses it to append workers' shipped
// (and skew-corrected) events to the merged trace.
func (t *Tracer) EmitEvent(ev TraceEvent) {
	t.emit(ev)
}

// Event emits a point event with alternating key, value attributes.
func (t *Tracer) Event(name string, kv ...any) {
	if t == nil {
		return
	}
	tid, node := t.identity()
	t.emit(TraceEvent{Time: t.clock(), TraceID: tid, Node: node, Kind: "event", Name: name, Attrs: attrMap(kv)})
}

// Span is an open span; End completes and emits it. A nil Span (from a
// nil Tracer) is inert.
type Span struct {
	t      *Tracer
	name   string
	id     string
	parent string
	start  time.Time
	attrs  map[string]any
}

// StartSpan opens a root span. Attributes given here are merged with
// those given to End (End wins on duplicate keys).
func (t *Tracer) StartSpan(name string, kv ...any) *Span {
	return t.startSpan("", name, kv)
}

// StartSpanUnder opens a span whose parent is an externally supplied
// span ID — how a worker hangs its cell spans off the coordinator's
// run span without sharing a Tracer.
func (t *Tracer) StartSpanUnder(parent, name string, kv ...any) *Span {
	return t.startSpan(parent, name, kv)
}

func (t *Tracer) startSpan(parent, name string, kv []any) *Span {
	if t == nil {
		return nil
	}
	return &Span{t: t, name: name, id: t.nextID(), parent: parent, start: t.clock(), attrs: attrMap(kv)}
}

// ID returns the span's ID ("" for a nil span), usable as a parent for
// spans started elsewhere — including on another machine.
func (s *Span) ID() string {
	if s == nil {
		return ""
	}
	return s.id
}

// StartChild opens a child span of s on the same tracer.
func (s *Span) StartChild(name string, kv ...any) *Span {
	if s == nil {
		return nil
	}
	return s.t.startSpan(s.id, name, kv)
}

// Event emits a point event parented to this span.
func (s *Span) Event(name string, kv ...any) {
	if s == nil {
		return
	}
	tid, node := s.t.identity()
	s.t.emit(TraceEvent{Time: s.t.clock(), TraceID: tid, Node: node, Parent: s.id, Kind: "event", Name: name, Attrs: attrMap(kv)})
}

// End completes the span, emitting one line with its start, duration
// and merged attributes.
func (s *Span) End(kv ...any) {
	if s == nil {
		return
	}
	end := s.t.clock()
	attrs := s.attrs
	if extra := attrMap(kv); extra != nil {
		if attrs == nil {
			attrs = extra
		} else {
			for k, v := range extra {
				attrs[k] = v
			}
		}
	}
	start := s.start
	tid, node := s.t.identity()
	s.t.emit(TraceEvent{
		Time:    end,
		TraceID: tid,
		SpanID:  s.id,
		Parent:  s.parent,
		Node:    node,
		Kind:    "span",
		Name:    s.name,
		Start:   &start,
		DurMS:   float64(end.Sub(s.start).Nanoseconds()) / 1e6,
		Attrs:   attrs,
	})
}
