package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Tracer emits structured run events as JSON Lines: one object per
// line, safe for concurrent use, append-friendly and greppable. The
// engines emit three span kinds — run (one per engine invocation),
// phase (tree level, table cell) and block (bulk work unit) — plus
// point events for irregular occurrences (quarantine, panic recovery,
// checkpoint errors).
//
// A nil Tracer discards everything, so engine code traces
// unconditionally. Writes are serialized under a mutex; the engines
// trace at block/phase granularity, far off the per-pair hot path.
type Tracer struct {
	mu  sync.Mutex
	w   io.Writer
	enc *json.Encoder

	// now is the clock, replaceable in tests for deterministic output.
	now func() time.Time
}

// NewTracer returns a tracer writing JSONL events to w.
func NewTracer(w io.Writer) *Tracer {
	return &Tracer{w: w, enc: json.NewEncoder(w), now: time.Now}
}

// TraceEvent is the one-line wire form of every event. Span ends carry
// the start time and duration; point events carry only Time.
type TraceEvent struct {
	// Time is the event (or span-end) timestamp, RFC 3339 with
	// nanoseconds.
	Time time.Time `json:"ts"`
	// Kind is "event" for point events, "span" for completed spans.
	Kind string `json:"kind"`
	// Name identifies the event: "run", "phase", "block", ...
	Name string `json:"name"`
	// Start and DurMS are set on spans only.
	Start *time.Time `json:"start,omitempty"`
	DurMS float64    `json:"dur_ms,omitempty"`
	// Attrs carries the event's key/value payload.
	Attrs map[string]any `json:"attrs,omitempty"`
}

// attrMap folds alternating key, value pairs into a map (odd trailing
// keys get nil). Kept tiny on purpose: trace attrs are emitted at block
// granularity.
func attrMap(kv []any) map[string]any {
	if len(kv) == 0 {
		return nil
	}
	m := make(map[string]any, (len(kv)+1)/2)
	for i := 0; i+1 < len(kv); i += 2 {
		k, ok := kv[i].(string)
		if !ok {
			continue
		}
		m[k] = kv[i+1]
	}
	return m
}

func (t *Tracer) emit(ev TraceEvent) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	_ = t.enc.Encode(ev) // tracing is best-effort; a failed sink must not fail the run
}

// Event emits a point event with alternating key, value attributes.
func (t *Tracer) Event(name string, kv ...any) {
	if t == nil {
		return
	}
	t.emit(TraceEvent{Time: t.now(), Kind: "event", Name: name, Attrs: attrMap(kv)})
}

// Span is an open span; End completes and emits it. A nil Span (from a
// nil Tracer) is inert.
type Span struct {
	t     *Tracer
	name  string
	start time.Time
	attrs map[string]any
}

// StartSpan opens a span. Attributes given here are merged with those
// given to End (End wins on duplicate keys).
func (t *Tracer) StartSpan(name string, kv ...any) *Span {
	if t == nil {
		return nil
	}
	return &Span{t: t, name: name, start: t.now(), attrs: attrMap(kv)}
}

// End completes the span, emitting one line with its start, duration
// and merged attributes.
func (s *Span) End(kv ...any) {
	if s == nil {
		return
	}
	end := s.t.now()
	attrs := s.attrs
	if extra := attrMap(kv); extra != nil {
		if attrs == nil {
			attrs = extra
		} else {
			for k, v := range extra {
				attrs[k] = v
			}
		}
	}
	start := s.start
	s.t.emit(TraceEvent{
		Time:  end,
		Kind:  "span",
		Name:  s.name,
		Start: &start,
		DurMS: float64(end.Sub(s.start).Nanoseconds()) / 1e6,
		Attrs: attrs,
	})
}
