package obs

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"
)

func tsSnap(pairs int64, occ float64) *Snapshot {
	reg := NewRegistry()
	reg.Counter("ts_pairs_total").Add(pairs)
	reg.Gauge("ts_occupancy").Set(occ)
	reg.Histogram("ts_cell_seconds", LinearBuckets(1, 1, 4)).Observe(2.5)
	return reg.Snapshot()
}

// TestTimeSeriesRingAndRates: the ring stays bounded, renders
// oldest-first, and converts counter deltas into per-second rates.
func TestTimeSeriesRingAndRates(t *testing.T) {
	ts := NewTimeSeries(3)
	t0 := time.Unix(100, 0)
	for i := 0; i < 5; i++ {
		// 10 pairs per 2-second step: a 5/s rate everywhere.
		ts.Record(t0.Add(time.Duration(2*i)*time.Second), tsSnap(int64(10*i), 0.5))
	}
	if ts.Len() != 3 {
		t.Fatalf("ring holds %d points, capacity 3", ts.Len())
	}
	tl := ts.Timeline()
	if tl.Capacity != 3 || len(tl.Points) != 3 {
		t.Fatalf("timeline = %d/%d points", len(tl.Points), tl.Capacity)
	}
	// Oldest surviving point is i=2.
	if got := tl.Points[0].Counters["ts_pairs_total"]; got != 20 {
		t.Fatalf("oldest point counter = %d, want 20", got)
	}
	if tl.Points[0].Rates != nil {
		t.Fatal("first rendered point must not carry rates (no predecessor)")
	}
	for _, p := range tl.Points[1:] {
		if got := p.Rates["ts_pairs_total"]; got != 5 {
			t.Fatalf("rate = %v, want 5/s", got)
		}
	}
	// Histogram digests ride every point.
	h := tl.Points[2].Hists["ts_cell_seconds"]
	if h.Count != 1 || h.P50 <= 0 || h.P95 < h.P50 || h.P99 < h.P95 {
		t.Fatalf("hist summary = %+v", h)
	}
}

func TestTimeSeriesNilSafety(t *testing.T) {
	var ts *TimeSeries
	ts.Record(time.Now(), tsSnap(1, 0))
	if ts.Len() != 0 {
		t.Fatal("nil ring has length")
	}
	if tl := ts.Timeline(); len(tl.Points) != 0 {
		t.Fatal("nil ring rendered points")
	}
}

// TestStatusServerTimeline: /timeline serves the recorded ring as JSON
// and /dashboard serves a self-contained HTML page, on every status
// server without extra wiring.
func TestStatusServerTimeline(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("ts_pairs_total").Add(42)
	srv, err := ServeStatusOptions("127.0.0.1:0", StatusOptions{
		Registry: reg, Ready: true, TimelineInterval: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	deadline := time.Now().Add(2 * time.Second)
	var tl Timeline
	for {
		resp, err := http.Get(base + "/timeline")
		if err != nil {
			t.Fatal(err)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
			t.Fatalf("/timeline content type %q", ct)
		}
		err = json.NewDecoder(resp.Body).Decode(&tl)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if len(tl.Points) >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("timeline never accumulated points: %d", len(tl.Points))
		}
		time.Sleep(5 * time.Millisecond)
	}
	if tl.Capacity != DefaultTimelineCapacity {
		t.Fatalf("capacity = %d", tl.Capacity)
	}
	for _, p := range tl.Points {
		if p.Counters["ts_pairs_total"] != 42 {
			t.Fatalf("point = %+v", p)
		}
	}

	resp, err := http.Get(base + "/dashboard")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/dashboard = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Fatalf("/dashboard content type %q", ct)
	}
	buf := make([]byte, 1<<16)
	n, _ := resp.Body.Read(buf)
	body := string(buf[:n])
	for _, want := range []string{"<html", "timeline", "fleet/cells"} {
		if !strings.Contains(body, want) {
			t.Fatalf("dashboard page missing %q", want)
		}
	}
}

// TestSnapshotQuantilesJSON: histogram snapshots carry interpolated
// p50/p95/p99 in their JSON form — what /metrics?format=json, the
// report and the dashboard all consume.
func TestSnapshotQuantilesJSON(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("q_seconds", LinearBuckets(10, 10, 10))
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	data, err := json.Marshal(reg.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Histograms map[string]struct {
			P50 float64 `json:"p50"`
			P95 float64 `json:"p95"`
			P99 float64 `json:"p99"`
		} `json:"histograms"`
	}
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	q := decoded.Histograms["q_seconds"]
	if q.P50 < 40 || q.P50 > 60 || q.P95 < 90 || q.P95 > 100 || q.P99 < q.P95 {
		t.Fatalf("quantiles = %+v", q)
	}
}

// TestPrometheusHelp: registered metric documentation surfaces as
// `# HELP` lines ahead of the `# TYPE` lines; unregistered names stay
// bare (the byte-stability contract of the golden test).
func TestPrometheusHelp(t *testing.T) {
	RegisterHelp("helptest_total", "a documented counter")
	reg := NewRegistry()
	reg.Counter("helptest_total").Add(1)
	reg.Counter("undocumented_total").Add(1)
	var sb strings.Builder
	if err := reg.Snapshot().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "# HELP helptest_total a documented counter\n# TYPE helptest_total counter") {
		t.Fatalf("HELP line missing or misplaced:\n%s", out)
	}
	if strings.Contains(out, "# HELP undocumented_total") {
		t.Fatalf("invented HELP for undocumented metric:\n%s", out)
	}
	if HelpFor("helptest_total") == "" {
		t.Fatal("HelpFor lost the registration")
	}
	names := HelpNames()
	var found bool
	for _, n := range names {
		if n == "helptest_total" {
			found = true
		}
	}
	if !found {
		t.Fatalf("HelpNames() = %v", names)
	}
}
