package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
)

// Snapshot is the plain-data capture of a Registry at one instant. It
// marshals directly to JSON (the expvar-style exposition and the report
// artifact) and renders to the Prometheus text format.
type Snapshot struct {
	Counters   map[string]int64        `json:"counters"`
	Gauges     map[string]float64      `json:"gauges"`
	Histograms map[string]HistSnapshot `json:"histograms"`
}

// HistSnapshot is the captured state of one histogram. Buckets are
// per-bucket (non-cumulative) counts; Buckets[len(Bounds)] is the +Inf
// overflow bucket.
type HistSnapshot struct {
	Bounds  []float64 `json:"bounds"`
	Buckets []int64   `json:"buckets"`
	Count   int64     `json:"count"`
	Sum     float64   `json:"sum"`
	// P50/P95/P99 are bucket-interpolated quantile estimates (see
	// Quantile), refreshed whenever the snapshot is taken or merged so
	// the JSON exposition and reports carry them ready-made.
	P50 float64 `json:"p50"`
	P95 float64 `json:"p95"`
	P99 float64 `json:"p99"`
}

// refreshQuantiles recomputes the cached P50/P95/P99 estimates from the
// current buckets.
func (h *HistSnapshot) refreshQuantiles() {
	h.P50 = h.Quantile(0.50)
	h.P95 = h.Quantile(0.95)
	h.P99 = h.Quantile(0.99)
}

// Mean returns Sum/Count (0 when empty). For integer-valued
// observations such as iteration counts the mean is exact: the sum is
// accumulated as a float64, not reconstructed from buckets.
func (h HistSnapshot) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// Quantile estimates the q-quantile (q in [0,1]) by linear
// interpolation inside the containing bucket, the standard Prometheus
// histogram_quantile estimate. Observations in the +Inf bucket clamp to
// the highest finite bound.
func (h HistSnapshot) Quantile(q float64) float64 {
	if h.Count == 0 || len(h.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.Count)
	var cum int64
	for i, n := range h.Buckets {
		cum += n
		if float64(cum) < rank {
			continue
		}
		if i >= len(h.Bounds) { // +Inf bucket
			return h.Bounds[len(h.Bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = h.Bounds[i-1]
		}
		hi := h.Bounds[i]
		if n == 0 {
			return hi
		}
		frac := (rank - float64(cum-n)) / float64(n)
		return lo + (hi-lo)*frac
	}
	return h.Bounds[len(h.Bounds)-1]
}

// merge folds other into h; the bucket layouts must match.
func (h *HistSnapshot) merge(other HistSnapshot) error {
	if len(h.Bounds) != len(other.Bounds) {
		return fmt.Errorf("obs: merging histograms with different bucket counts (%d vs %d)", len(h.Bounds), len(other.Bounds))
	}
	for i := range h.Bounds {
		if h.Bounds[i] != other.Bounds[i] {
			return fmt.Errorf("obs: merging histograms with different bounds at %d (%g vs %g)", i, h.Bounds[i], other.Bounds[i])
		}
	}
	for i := range h.Buckets {
		h.Buckets[i] += other.Buckets[i]
	}
	h.Count += other.Count
	h.Sum += other.Sum
	h.refreshQuantiles()
	return nil
}

// Merge folds other into s: counters and histogram buckets add, gauges
// take other's value when other has the name (last writer wins, like a
// scrape). Merging the snapshots of per-shard registries must equal the
// snapshot of one shared registry receiving all updates; the obs tests
// assert this equivalence.
func (s *Snapshot) Merge(other *Snapshot) error {
	if other == nil {
		return nil
	}
	for name, v := range other.Counters {
		s.Counters[name] += v
	}
	for name, v := range other.Gauges {
		s.Gauges[name] = v
	}
	for name, oh := range other.Histograms {
		h, ok := s.Histograms[name]
		if !ok {
			cp := HistSnapshot{
				Bounds:  append([]float64(nil), oh.Bounds...),
				Buckets: append([]int64(nil), oh.Buckets...),
				Count:   oh.Count,
				Sum:     oh.Sum,
			}
			cp.refreshQuantiles()
			s.Histograms[name] = cp
			continue
		}
		if err := h.merge(oh); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		s.Histograms[name] = h
	}
	return nil
}

// sortedKeys returns the map's keys in lexical order, for deterministic
// exposition.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// promFloat renders a float the way Prometheus expects (no exponent for
// integral values below 1e15, +Inf spelled out).
func promFloat(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// writeHelp emits the `# HELP` line for name when its family has
// registered documentation (engines register from init; ad-hoc test
// metrics have none, and the format makes HELP optional).
func writeHelp(w io.Writer, name string) error {
	if help := HelpFor(name); help != "" {
		_, err := fmt.Fprintf(w, "# HELP %s %s\n", name, help)
		return err
	}
	return nil
}

// WritePrometheus renders the snapshot in the Prometheus text
// exposition format (version 0.0.4), deterministically ordered so the
// output is golden-testable. Registered metric families get `# HELP`
// lines; histogram buckets are emitted cumulatively with the trailing
// +Inf bucket, per the format.
func (s *Snapshot) WritePrometheus(w io.Writer) error {
	for _, name := range sortedKeys(s.Counters) {
		if err := writeHelp(w, name); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, s.Counters[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Gauges) {
		if err := writeHelp(w, name); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", name, name, promFloat(s.Gauges[name])); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		if err := writeHelp(w, name); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
			return err
		}
		var cum int64
		for i, n := range h.Buckets {
			cum += n
			le := "+Inf"
			if i < len(h.Bounds) {
				le = promFloat(h.Bounds[i])
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, le, cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", name, promFloat(h.Sum), name, h.Count); err != nil {
			return err
		}
	}
	return nil
}
